// Package scanshare is a storage engine testbed that reproduces the
// mechanism of "Increasing Buffer-Locality for Multiple Relational Table
// Scans through Grouping and Throttling" (ICDE 2007): a scan sharing manager
// that groups concurrent table scans by position, throttles group leaders
// that run too far ahead, prioritizes buffer-pool pages by leader/trailer
// status, and places newly starting scans where they can ride on pages other
// scans are already pulling in.
//
// The package offers a small, self-contained engine: heap tables over a
// simulated disk, a priority-aware buffer pool, a volcano-style executor,
// and a deterministic virtual-time kernel, so that the effect of scan
// sharing on physical reads, disk seeks, and end-to-end times can be
// measured reproducibly. The same scan sharing manager
// (internal/core) is engine-agnostic: it only consumes
// start/progress/end calls and emits wait and priority advice, so it can be
// lifted onto a real storage engine unchanged.
//
// # Quick start
//
//	eng, _ := scanshare.New(scanshare.Config{BufferPoolPages: 1000})
//	tbl, _ := eng.LoadTable("lineitem", schema, loadRows)
//	q := scanshare.NewQuery(tbl).Where(pred).Sum("l_extendedprice")
//	report, _ := eng.Run(scanshare.Shared, []scanshare.Job{
//		{Query: q},
//		{Query: q, Start: 10 * time.Second},
//	})
//	fmt.Println(report.Summary())
//
// Running the same jobs with scanshare.Baseline gives the vanilla engine for
// comparison; every experiment in the paper reduces to such a pair of runs.
package scanshare

import (
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/exec"
	"scanshare/internal/record"
)

// Buffer pool replacement policy names, for Config.PoolPolicy and
// PoolConfig.Policy.
const (
	// PoolPolicyLRU is the paper's priority-LRU replacement (default).
	PoolPolicyLRU = buffer.PolicyLRU
	// PoolPolicyPredictive is predictive buffer management: the victim is
	// the frame with the largest estimated time to next use, computed
	// from registered scan positions and speeds.
	PoolPolicyPredictive = buffer.PolicyPredictive
)

// Buffer pool page-translation kinds, for Config.PoolTranslation and
// PoolConfig.Translation.
const (
	// PoolTranslationMap is the classic mutex-guarded per-shard page map
	// (default).
	PoolTranslationMap = buffer.TranslationMap
	// PoolTranslationArray is the flat array translation table with
	// versioned frames: read-mostly hits are served lock-free via an
	// optimistic validation protocol, falling back to the locked path on
	// contention.
	PoolTranslationArray = buffer.TranslationArray
)

// Re-exported schema and value types. These aliases are the package's data
// model; see internal/record for the encoding.
type (
	// Field is one column of a table schema.
	Field = record.Field
	// Schema is an ordered, named, typed column list.
	Schema = record.Schema
	// Tuple is one row: values in schema order.
	Tuple = record.Tuple
	// Value is a dynamically typed field value.
	Value = record.Value
	// Kind enumerates field types.
	Kind = record.Kind
)

// Field kinds.
const (
	KindInt64   = record.KindInt64
	KindFloat64 = record.KindFloat64
	KindString  = record.KindString
	KindDate    = record.KindDate
)

// NewSchema builds a schema from fields; names must be unique and non-empty.
func NewSchema(fields ...Field) (*Schema, error) { return record.NewSchema(fields...) }

// MustSchema is NewSchema panicking on error.
func MustSchema(fields ...Field) *Schema { return record.MustSchema(fields...) }

// Int64 returns a bigint value.
func Int64(v int64) Value { return record.Int64(v) }

// Float64 returns a double value.
func Float64(v float64) Value { return record.Float64(v) }

// String returns a varchar value.
func String(v string) Value { return record.String(v) }

// Date returns a date value (days since epoch).
func Date(days int64) Value { return record.Date(days) }

// Importance is a query's priority class: it scales how much of a scan's
// time the sharing manager may spend on throttling (the paper's proposed
// priority-aware dynamic threshold).
type Importance = core.Importance

// Importance classes.
const (
	// ImportanceNormal uses the configured fairness cap unchanged.
	ImportanceNormal = core.ImportanceNormal
	// ImportanceLow marks background queries (may be throttled more).
	ImportanceLow = core.ImportanceLow
	// ImportanceHigh marks interactive queries (throttled less).
	ImportanceHigh = core.ImportanceHigh
)

// AggKind enumerates aggregate functions for Query.Aggregate.
type AggKind = exec.AggKind

// Aggregate functions.
const (
	Count = exec.AggCount
	Sum   = exec.AggSum
	Avg   = exec.AggAvg
	Min   = exec.AggMin
	Max   = exec.AggMax
)

// SharingEvent is one scan sharing manager decision (a placement, a
// throttle, a scan end), delivered to Engine.TraceSharing callbacks.
type SharingEvent = core.Event

// SharingEvent kinds.
const (
	EventScanStarted      = core.EventScanStarted
	EventScanEnded        = core.EventScanEnded
	EventThrottled        = core.EventThrottled
	EventFairnessExempted = core.EventFairnessExempted
)

// Re-exported scan sharing manager observability types, returned by
// Engine.SharingSnapshot and passed to observers.
type (
	// SharingSnapshot is a consistent view of the ongoing scans and
	// groups inside the scan sharing manager.
	SharingSnapshot = core.Snapshot
	// SharingScanInfo describes one ongoing scan.
	SharingScanInfo = core.ScanInfo
	// SharingGroupInfo describes one scan group with its leader/trailer.
	SharingGroupInfo = core.GroupInfo
)

// Mode selects how Engine.Run executes table scans.
type Mode int

const (
	// Baseline runs classic front-to-back scans with uniform page
	// priorities — the paper's "vanilla" engine.
	Baseline Mode = iota
	// Shared runs scans through the scan sharing manager: intelligent
	// placement, grouping, throttling, and priority hints.
	Shared
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "base"
	case Shared:
		return "shared"
	default:
		return "Mode(?)"
	}
}

// DiskConfig parameterizes the simulated storage device. Zero fields take
// the defaults noted on each field.
type DiskConfig struct {
	// SeekTime per non-sequential read. Default 4ms.
	SeekTime time.Duration
	// TransferPerPage per page read. Default 200µs.
	TransferPerPage time.Duration
	// PageSize in bytes. Default 8192.
	PageSize int
	// SeriesBucket is the granularity of the reads/seeks-over-time
	// series; zero disables series collection.
	SeriesBucket time.Duration
}

// CPUConfig parameterizes query processing cost. Zero fields take defaults.
type CPUConfig struct {
	// PerPageCPU per visited page. Default 20µs.
	PerPageCPU time.Duration
	// PerTupleCPU per tuple at CPU weight 1. Default 2µs.
	PerTupleCPU time.Duration
	// Cores bounds how much query CPU work can run in parallel (the
	// paper's testbeds had 4 CPUs). Zero means unlimited cores — CPU
	// work never queues.
	Cores int
}

// SharingConfig tunes the scan sharing manager. Zero fields take the
// defaults of the paper's prototype; the Disable switches turn individual
// mechanisms off for ablation studies.
type SharingConfig struct {
	// PrefetchExtentPages is the progress-report granularity. Default 16.
	PrefetchExtentPages int
	// ThrottleThresholdExtents is the leader–trailer distance (in
	// extents) that triggers throttling. Default 2.
	ThrottleThresholdExtents int
	// MaxThrottleFraction is the fairness cap on accumulated per-scan
	// delay. Default 0.8.
	MaxThrottleFraction float64
	// MaxWaitPerUpdate caps one inserted wait. Default 250ms.
	MaxWaitPerUpdate time.Duration
	// MinSharePages is the minimum expected sharing to join a scan.
	// Default 32.
	MinSharePages int
	// ResidualBackoffPages is how far behind a finished scan a new scan
	// starts on an idle table. Default BufferPoolPages/4.
	ResidualBackoffPages int

	// AdaptiveReporting stretches the progress-report interval of scans
	// with no coordination partners (the follow-up paper's "more
	// adaptive schemas" future work). Off by default.
	AdaptiveReporting bool

	// EstimatePlacement switches placement from the shipped heuristic to
	// the sharing-potential estimator: expected physical reads are
	// computed for every interesting start location and the cheapest
	// wins (the follow-up paper's calculateReads, adapted to table
	// scans).
	EstimatePlacement bool

	// DisableThrottling turns leader speed control off.
	DisableThrottling bool
	// DisablePriorityHints releases every page at normal priority.
	DisablePriorityHints bool
	// DisablePlacement starts every scan at the beginning of its range.
	DisablePlacement bool
}

// PoolConfig declares one extra named buffer pool.
type PoolConfig struct {
	// Name identifies the pool in LoadTableInPool and Report.Pools.
	Name string
	// Pages is the pool's capacity.
	Pages int
	// Shards overrides Config.PoolShards for this pool; 0 inherits it.
	Shards int
	// Policy overrides Config.PoolPolicy for this pool; "" inherits it.
	Policy string
	// Translation overrides Config.PoolTranslation for this pool; ""
	// inherits it.
	Translation string
}

// Config configures an Engine.
type Config struct {
	// BufferPoolPages is the default buffer pool's capacity in pages.
	// Required.
	BufferPoolPages int
	// Pools declares additional named buffer pools. Each pool gets its
	// own scan sharing manager (the paper: "one ISM per bufferpool");
	// scans only coordinate with scans on tables of the same pool.
	Pools []PoolConfig
	// PoolShards is the number of lock-striped partitions each buffer
	// pool is split into; capacity divides across shards and a page's
	// shard is fixed by its id. 0 or 1 keeps the single-shard pool, whose
	// operation order is fully deterministic under the virtual-time
	// kernel — raise it only for realtime runs, where it removes mutex
	// contention between concurrent scan workers. Shards cannot exceed
	// the pool's page count.
	PoolShards int
	// PoolPolicy selects the buffer pools' replacement policy:
	// PoolPolicyLRU (the paper's priority-LRU, the default when empty) or
	// PoolPolicyPredictive (predictive buffer management: realtime scans
	// register position and speed with the pool and the victim is the
	// frame with the largest estimated time to next use). The predictive
	// policy only receives scan registrations under RunRealtime; in
	// virtual-time Run it degenerates to plain LRU on release order.
	PoolPolicy string
	// PoolTranslation selects the buffer pools' page-translation
	// structure: PoolTranslationMap (the classic mutex-guarded per-shard
	// map, the default when empty) or PoolTranslationArray (a flat page-id
	// → frame array with versioned optimistic latches, giving read-mostly
	// hits a lock-free fast path under RunRealtime). Deterministic replay
	// goldens assume map translation; array translation stays
	// deterministic run-to-run but takes a different (lock-free) hit path.
	PoolTranslation string
	// Disk, CPU and Sharing tune the cost models and the SSM.
	Disk    DiskConfig
	CPU     CPUConfig
	Sharing SharingConfig
	// BusyRetryDelay is the back-off before re-requesting a page whose
	// read is in flight elsewhere. Default 100µs.
	BusyRetryDelay time.Duration
}
