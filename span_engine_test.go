package scanshare_test

import (
	"context"
	"testing"
	"time"

	"scanshare"
	"scanshare/internal/telemetry"
	"scanshare/internal/trace"
)

// engineTracer builds an enabled tracer with an unbounded recorder for the
// engine-level span tests.
func engineTracer(t *testing.T) (*trace.Tracer, *trace.Recorder) {
	t.Helper()
	tr := trace.NewTracerSize(nil, 1<<15)
	rec := &trace.Recorder{}
	tr.Attach(rec)
	tr.Start(2 * time.Millisecond)
	return tr, rec
}

// TestSpanEngineRealtimeRoots checks the engine layer's span wiring: scans
// submitted without a span context get fresh root spans when a tracer is
// passed, the trees assemble cleanly, the dropped count is synced into the
// run counters, and the bench result carries the measured wait breakdown.
func TestSpanEngineRealtimeRoots(t *testing.T) {
	eng, tbl := newEngine(t, 24, 3000) // pool << table: physical reads guaranteed
	tr, rec := engineTracer(t)

	scans := make([]scanshare.RealtimeScan, 4)
	for i := range scans {
		scans[i] = scanshare.RealtimeScan{
			Table:      tbl,
			PageDelay:  20 * time.Microsecond,
			StartDelay: time.Duration(i) * 200 * time.Microsecond,
		}
	}
	rep, err := eng.RunRealtime(context.Background(),
		scanshare.RealtimeOptions{Tracer: tr, PageReadDelay: 100 * time.Microsecond}, scans)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events", d)
	}
	if rep.Counters.TraceDropped != 0 {
		t.Errorf("run counters report %d dropped trace events", rep.Counters.TraceDropped)
	}

	asm := trace.Assemble(rec.Events())
	if len(asm.Trees) != len(scans) || asm.Unclosed != 0 || asm.Orphans != 0 || asm.ExtraRoots != 0 {
		t.Fatalf("assembly = %d trees (%d unclosed, %d orphans, %d extra roots), want %d clean trees",
			len(asm.Trees), asm.Unclosed, asm.Orphans, asm.ExtraRoots, len(scans))
	}
	agg := asm.Aggregate()
	for _, tree := range asm.Trees {
		if tree.Root.Kind != trace.SpanScan {
			t.Errorf("trace %d root is %v, want scan (engine-allocated root)", tree.Trace, tree.Root.Kind)
		}
	}
	if agg.Read == 0 {
		t.Error("no read time attributed despite a pool smaller than the table")
	}

	// The span totals agree exactly with the inline result counters.
	var read, poolWait, throttle time.Duration
	for _, res := range rep.Results {
		read += res.ReadWait
		poolWait += res.PoolWait
		throttle += res.ThrottleWait
	}
	if agg.Read != read || agg.PoolWait != poolWait || agg.Throttle != throttle {
		t.Errorf("span totals read=%v pool=%v throttle=%v, counters say %v/%v/%v",
			agg.Read, agg.PoolWait, agg.Throttle, read, poolWait, throttle)
	}

	// And the schema-versioned bench result exposes the same attribution.
	br := rep.BenchResult(telemetry.BenchParams{})
	if br.BreakdownSeconds["read"] == 0 {
		t.Errorf("bench breakdown missing read component: %v", br.BreakdownSeconds)
	}
	if br.TraceDropped != 0 {
		t.Errorf("bench result reports %d dropped trace events", br.TraceDropped)
	}
}

// TestSpanEngineAggFolds checks the shared-aggregation layer: each query's
// fold work is timed and lands as exactly one fold span under that query's
// scan root.
func TestSpanEngineAggFolds(t *testing.T) {
	const queries = 3
	eng, tbl := newEngine(t, 512, 4000)
	tr, rec := engineTracer(t)

	rep, err := eng.RunRealtimeAggregates(context.Background(),
		scanshare.RealtimeOptions{Tracer: tr}, aggQueries(tbl, queries), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != queries+1 {
		t.Fatalf("%d row sets for %d queries", len(rep.Rows), queries+1)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events", d)
	}

	asm := trace.Assemble(rec.Events())
	if len(asm.Trees) != queries+1 || asm.Unclosed != 0 || asm.Orphans != 0 {
		t.Fatalf("assembly = %d trees (%d unclosed, %d orphans), want %d clean trees",
			len(asm.Trees), asm.Unclosed, asm.Orphans, queries+1)
	}
	for _, tree := range asm.Trees {
		if tree.Root.Kind != trace.SpanScan {
			t.Errorf("trace %d root is %v, want scan", tree.Trace, tree.Root.Kind)
			continue
		}
		folds := 0
		var foldDur time.Duration
		for _, c := range tree.Root.Children {
			if c.Kind == trace.SpanFold {
				folds++
				foldDur += c.Dur()
			}
		}
		if folds != 1 || foldDur <= 0 {
			t.Errorf("trace %d has %d fold spans totalling %v, want exactly one with positive duration",
				tree.Trace, folds, foldDur)
		}
	}
	if b := asm.Aggregate(); b.Fold <= 0 || b.Fold >= b.Total {
		t.Errorf("aggregate fold %v out of range (total %v)", b.Fold, b.Total)
	}
}
