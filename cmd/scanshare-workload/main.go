// Command scanshare-workload inspects the generated TPC-H-like database and
// the 22-query battery: table sizes, query templates, and the per-stream
// permutations used by throughput runs.
//
//	scanshare-workload               # tables + query battery
//	scanshare-workload -streams 5    # also print stream orders
//	scanshare-workload -scale 10     # at another scale
package main

import (
	"flag"
	"fmt"
	"os"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 42, "generation seed")
	streams := flag.Int("streams", 0, "print this many stream permutations")
	flag.Parse()

	gen := workload.GenConfig{ScaleFactor: *scale, Seed: *seed}
	eng := scanshare.MustNew(scanshare.Config{BufferPoolPages: 64})
	db, err := workload.Load(eng, gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("scale %g, seed %d\n\n", *scale, *seed)
	tbl := metrics.NewTable("table", "rows", "pages", "schema")
	for _, t := range db.Tables() {
		tbl.AddRow(t.Name(), fmt.Sprint(t.NumTuples()), fmt.Sprint(t.NumPages()), t.Schema().String())
	}
	fmt.Print(tbl.Render())
	fmt.Printf("total: %d pages; paper-style 5%% buffer pool: %d pages\n\n",
		db.TotalPages(), workload.BufferPoolFor(gen, 0, 0.05))

	qt := metrics.NewTable("query", "table", "range", "cpu weight", "description")
	for _, t := range workload.Templates() {
		qt.AddRow(t.Name, t.Table.String(),
			fmt.Sprintf("[%.0f%%,%.0f%%)", t.StartFrac*100, t.EndFrac*100),
			fmt.Sprintf("%g", t.Weight), t.Description)
	}
	fmt.Print(qt.Render())

	if *streams > 0 {
		fmt.Println()
		templates := workload.Templates()
		for s := 0; s < *streams; s++ {
			fmt.Printf("stream %d:", s)
			for _, idx := range workload.StreamOrder(s) {
				fmt.Printf(" %s", templates[idx].Name)
			}
			fmt.Println()
		}
	}
}
