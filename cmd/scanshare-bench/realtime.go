package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"time"

	"scanshare"
	"scanshare/internal/experiments"
)

// runRealtime executes n concurrent goroutine scans of one synthetic table
// in wall-clock time — the realtime counterpart of the virtual-time
// experiments, exercising the same pool and scan sharing manager with real
// concurrency. Ctrl-C cancels the run gracefully; every scan stops at its
// next page boundary.
//
// Unlike the virtual-time experiments, the printed timings depend on the
// machine; the structural counters (placements, hit ratio, throttles) are
// what to look at.
func runRealtime(p experiments.Params, n, workers int, pageDelay, readDelay time.Duration) error {
	rows := int(30000 * p.Scale)
	eng, err := scanshare.New(scanshare.Config{
		// Sized after load below would be circular; ~100 bytes/row on
		// 8 KiB pages gives the page count up front.
		BufferPoolPages: poolPagesFor(rows, p.BufferFrac),
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: p.ExtentPages},
	})
	if err != nil {
		return err
	}
	schema := scanshare.MustSchema(
		scanshare.Field{Name: "id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "v", Kind: scanshare.KindFloat64},
		scanshare.Field{Name: "tag", Kind: scanshare.KindString},
	)
	rng := rand.New(rand.NewSource(p.Seed))
	tbl, err := eng.LoadTable("rt", schema, func(add func(scanshare.Tuple) error) error {
		for i := 0; i < rows; i++ {
			err := add(scanshare.Tuple{
				scanshare.Int64(int64(i)),
				scanshare.Float64(rng.Float64()),
				scanshare.String(fmt.Sprintf("tag-%02d", rng.Intn(40))),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	scans := make([]scanshare.RealtimeScan, n)
	for i := range scans {
		scans[i] = scanshare.RealtimeScan{
			Table:      tbl,
			StartDelay: time.Duration(i) * 2 * time.Millisecond,
			PageDelay:  pageDelay,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Printf("realtime: %d goroutine scans of %d pages, pool %d pages, %d prefetch workers\n",
		n, tbl.NumPages(), poolPagesFor(rows, p.BufferFrac), workers)
	rep, err := eng.RunRealtime(ctx, scanshare.RealtimeOptions{
		PrefetchWorkers: workers,
		PageReadDelay:   readDelay,
	}, scans)
	if err != nil {
		return err
	}

	for _, res := range rep.Results {
		status := "done"
		if res.Stopped {
			status = "stopped"
		}
		fmt.Printf("  scan %2d: %5d pages (%5d hit / %5d miss), throttled %8v, %s\n",
			res.Scan, res.PagesRead, res.Hits, res.Misses, res.ThrottleWait.Round(time.Microsecond), status)
	}
	fmt.Printf("wall time %v\n", rep.Wall.Round(time.Millisecond))
	fmt.Printf("counters: %s\n", rep.Counters)
	if def, ok := rep.Pools[""]; ok {
		fmt.Printf("pool: %.1f%% hit ratio (%d logical reads, %d evictions)\n",
			100*def.HitRatio(), def.LogicalReads, def.Evictions)
	}
	s := rep.Sharing
	fmt.Printf("sharing: %d joins, %d trails, %d residual, %d cold; %d throttles (%v), %d fairness exemptions\n",
		s.JoinPlacements, s.TrailPlacements, s.ResidualPlacements, s.ColdPlacements,
		s.ThrottleEvents, s.ThrottleTime.Round(time.Millisecond), s.FairnessExemptions)
	return nil
}

// poolPagesFor sizes the pool as frac of the estimated table pages (about
// 100 bytes per row on the default 8 KiB pages), with a small floor.
func poolPagesFor(rows int, frac float64) int {
	estPages := rows / 80
	pages := int(float64(estPages) * frac)
	if pages < 32 {
		pages = 32
	}
	return pages
}
