package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"scanshare"
	"scanshare/internal/experiments"
	"scanshare/internal/metrics"
	"scanshare/internal/telemetry"
	"scanshare/internal/trace"
)

// rtObsFlags bundles the realtime-mode observability knobs: the
// introspection server, the telemetry sampler, the flight recorder, the
// periodic stats reporter, the JSONL event journal, the post-run timeline
// rendering, and the persisted benchmark result.
type rtObsFlags struct {
	httpAddr    string
	statsEvery  time.Duration
	tracePath   string
	timeline    bool
	sampleEvery time.Duration
	flightDir   string
	benchJSON   string
	benchName   string
	// spans forces a tracer (with an in-memory ring-bounded recorder sink)
	// even when no journal or timeline was requested, so the tracing-
	// overhead benchmark can compare spans-on vs spans-off runs of the
	// same workload.
	spans bool
}

// rtFaultFlags bundles the -rt-fault* command-line knobs.
type rtFaultFlags struct {
	scenario    string
	prob        float64
	seed        int64
	readTimeout time.Duration
	retries     int
	detachAfter int
}

// apply turns the flags into a fault plan plus tolerance settings on opts.
// The scenarios are canned shapes of the failure modes the engine degrades
// under:
//
//	errors   — transient read errors on every page; retries absorb them
//	slowband — a permanent latency band over the first eighth of the table
//	stall    — reads in a narrow band stall forever on the first two
//	           attempts, then recover; the per-read timeout unsticks them
//	torn     — short reads on every page, always retried successfully
func (f rtFaultFlags) apply(opts *scanshare.RealtimeOptions, tbl *scanshare.Table) error {
	if f.scenario == "" {
		return nil
	}
	rule := scanshare.FaultRule{Table: tbl, Prob: f.prob}
	switch f.scenario {
	case "errors":
		rule.Kind = scanshare.FaultError
		rule.UntilAttempt = 2
	case "slowband":
		rule.Kind = scanshare.FaultLatency
		rule.Latency = 2 * time.Millisecond
		rule.LastPage = tbl.NumPages() / 8
	case "stall":
		rule.Kind = scanshare.FaultStall
		rule.UntilAttempt = 2
		rule.FirstPage = tbl.NumPages() / 4
		rule.LastPage = tbl.NumPages() / 2
	case "torn":
		rule.Kind = scanshare.FaultTorn
		rule.UntilAttempt = 1
	default:
		return fmt.Errorf("unknown fault scenario %q (want errors, slowband, stall, or torn)", f.scenario)
	}
	opts.Faults = &scanshare.FaultPlan{Seed: f.seed, Rules: []scanshare.FaultRule{rule}}
	opts.ReadTimeout = f.readTimeout
	opts.MaxReadRetries = f.retries
	opts.DetachAfterFailures = f.detachAfter
	opts.ContinueOnPageFailure = true
	return nil
}

// publishRealtimeExpvars hooks this run's engine and tracer into the
// process-wide expvar names. telemetry.PublishExpvar publishes each name at
// most once per process and swaps the provider on later calls, so re-running
// runRealtime (tests drive it directly) never hits the duplicate-Publish
// panic.
func publishRealtimeExpvars(eng *scanshare.Engine, tracer *trace.Tracer) {
	telemetry.PublishExpvar("scanshare_pools", func() any { return eng.PoolStats() })
	telemetry.PublishExpvar("scanshare_sharing", func() any { return eng.SharingSnapshot() })
	telemetry.PublishExpvar("scanshare_trace_dropped", func() any {
		if tracer == nil {
			return 0
		}
		return tracer.Dropped()
	})
}

// gitRev returns the working tree's short revision, or "" when git (or the
// repo) is unavailable — the bench result is still valid without it.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// runRealtime executes n concurrent goroutine scans of one synthetic table
// in wall-clock time — the realtime counterpart of the virtual-time
// experiments, exercising the same pool and scan sharing manager with real
// concurrency. Ctrl-C cancels the run gracefully; every scan stops at its
// next page boundary. SIGQUIT dumps a flight record (recent telemetry
// samples plus the trace tail) and keeps running.
//
// Unlike the virtual-time experiments, the printed timings depend on the
// machine; the structural counters (placements, hit ratio, throttles) are
// what to look at.
func runRealtime(p experiments.Params, n, workers, shards int, policy, translation string, noCoalesce, push bool, pageDelay, readDelay time.Duration, faults rtFaultFlags, obs rtObsFlags) error {
	eng, tbl, poolPages, err := buildRTEngine(p, shards, &policy, &translation)
	if err != nil {
		return err
	}

	scans := make([]scanshare.RealtimeScan, n)
	for i := range scans {
		scans[i] = scanshare.RealtimeScan{
			Table:      tbl,
			StartDelay: time.Duration(i) * 2 * time.Millisecond,
			PageDelay:  pageDelay,
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	col := new(metrics.Collector)
	opts := scanshare.RealtimeOptions{
		PrefetchWorkers:       workers,
		PageReadDelay:         readDelay,
		DisableReadCoalescing: noCoalesce,
		PushDelivery:          push,
		Collector:             col,
	}
	if err := faults.apply(&opts, tbl); err != nil {
		return err
	}

	// Observability: event journal sinks, the telemetry sampler, the flight
	// recorder, the live introspection server, and the periodic stats
	// reporter. The tracer drains its ring on a short ticker so the JSONL
	// journal and expvar counters stay current during the run.
	var tracer *trace.Tracer
	var rec *trace.Recorder
	var traceFile *os.File
	if obs.tracePath != "" || obs.timeline || obs.flightDir != "" || obs.spans {
		tracer = trace.NewTracer(nil)
		if obs.timeline || obs.flightDir != "" || (obs.spans && obs.tracePath == "") {
			rec = &trace.Recorder{Cap: 1 << 16}
			tracer.Attach(rec)
		}
		if obs.tracePath != "" {
			f, err := os.Create(obs.tracePath)
			if err != nil {
				return err
			}
			traceFile = f
			tracer.Attach(trace.NewJSONLSink(f))
		}
		tracer.Start(20 * time.Millisecond)
		opts.Tracer = tracer
	}

	sources := eng.TelemetrySources(col)
	sampler := telemetry.NewSampler(sources, obs.sampleEvery, 0)
	if obs.sampleEvery > 0 {
		sampler.Start()
	}
	flight := &telemetry.FlightRecorder{Sampler: sampler, Dir: obs.flightDir}
	if rec != nil {
		flight.Events = rec.Tail
	}
	dumpFlight := func(reason string) {
		path, err := flight.DumpFile(reason)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flight recorder:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "flight record (%s): %s\n", reason, path)
	}

	// SIGQUIT dumps a flight record instead of killing the process — the
	// "what is it doing right now" lever for a wedged-looking run.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	quitDone := make(chan struct{})
	go func() {
		defer close(quitDone)
		for range quitCh {
			dumpFlight("sigquit")
		}
	}()
	defer func() { signal.Stop(quitCh); close(quitCh); <-quitDone }()

	if obs.httpAddr != "" {
		// The shared telemetry plumbing builds a fresh mux per start and
		// publishes expvar names through the process-wide guard, so a second
		// run in the same process (tests, or serve mode cycling) cannot
		// panic on duplicate registration.
		publishRealtimeExpvars(eng, tracer)
		srv, err := telemetry.StartIntrospection(obs.httpAddr, telemetry.NewDebugMux(&sources))
		if err != nil {
			return fmt.Errorf("introspection server: %w", err)
		}
		addr := srv.Addr()
		fmt.Printf("introspection: http://%s/debug/vars http://%s/debug/pprof/ http://%s/metrics\n",
			addr, addr, addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(sctx); err != nil {
				fmt.Fprintln(os.Stderr, "introspection server shutdown:", err)
			}
		}()
	}

	stopStats := make(chan struct{})
	var statsWG sync.WaitGroup
	if obs.statsEvery > 0 {
		statsWG.Add(1)
		go func() {
			defer statsWG.Done()
			tick := time.NewTicker(obs.statsEvery)
			defer tick.Stop()
			start := time.Now()
			for {
				select {
				case <-stopStats:
					return
				case <-tick.C:
					ps := eng.PoolStats()[""]
					snap := eng.SharingSnapshot()
					line := fmt.Sprintf("[%8v] pool %.1f%% hit, %d evictions",
						time.Since(start).Round(time.Millisecond), 100*ps.HitRatio(), ps.Evictions)
					if bd := ps.EvictionBreakdown(); bd != "" {
						line += " (" + bd + ")"
					}
					line += fmt.Sprintf("; %d scans in %d groups", len(snap.Scans), len(snap.Groups))
					if tracer != nil {
						line += fmt.Sprintf("; trace dropped %d", tracer.Dropped())
					}
					fmt.Println(line)
				}
			}
		}()
	}

	delivery := fmt.Sprintf("%d prefetch workers", workers)
	if push {
		delivery = "push delivery"
	}
	fmt.Printf("realtime: %d goroutine scans of %d pages, pool %d pages (%d shards, %s policy, %s translation), %s\n",
		n, tbl.NumPages(), poolPages, shards, policy, translation, delivery)
	if faults.scenario != "" {
		fmt.Printf("faults: scenario %q, prob %.3f, seed %d; timeout %v, %d retries, detach after %d\n",
			faults.scenario, faults.prob, faults.seed, faults.readTimeout, faults.retries, faults.detachAfter)
	}
	rep, err := eng.RunRealtime(ctx, opts, scans)
	close(stopStats)
	statsWG.Wait()
	sampler.Stop()
	if err != nil && obs.flightDir != "" {
		dumpFlight("run-error: " + err.Error())
	}
	if tracer != nil {
		if cerr := tracer.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace sink: %w", cerr)
		}
		if traceFile != nil {
			if cerr := traceFile.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	if err != nil {
		return err
	}

	for _, res := range rep.Results {
		status := "done"
		if res.Stopped {
			status = "stopped"
		}
		suffix := ""
		if res.ReadRetries > 0 || res.DegradedPages > 0 || res.Detaches > 0 {
			suffix = fmt.Sprintf(", %d retries (%d timeouts), %d degraded, %d detach/%d rejoin",
				res.ReadRetries, res.ReadTimeouts, res.DegradedPages, res.Detaches, res.Rejoins)
		}
		if res.PushBatches > 0 || res.PushSelfPulled > 0 {
			suffix += fmt.Sprintf(", %d batches", res.PushBatches)
			if res.PushDemoted {
				suffix += fmt.Sprintf(" (demoted, %d self-pulled)", res.PushSelfPulled)
			}
		}
		fmt.Printf("  scan %2d: %5d pages (%5d hit / %5d miss), throttled %8v, %s%s\n",
			res.Scan, res.PagesRead, res.Hits, res.Misses, res.ThrottleWait.Round(time.Microsecond), status, suffix)
	}
	fmt.Printf("wall time %v\n", rep.Wall.Round(time.Millisecond))
	fmt.Printf("counters: %s\n", rep.Counters)
	if h := rep.Counters.Histograms(); h != "" {
		fmt.Print(h)
	}
	if def, ok := rep.Pools[""]; ok {
		line := fmt.Sprintf("pool: %.1f%% hit ratio (%d logical reads, %d evictions",
			100*def.HitRatio(), def.LogicalReads, def.Evictions)
		if bd := def.EvictionBreakdown(); bd != "" {
			line += ": " + bd
		}
		line += ")"
		if def.Aborts > 0 {
			line += fmt.Sprintf(", %d aborted reads", def.Aborts)
		}
		fmt.Println(line)
	}
	if def, ok := rep.Pools[""]; ok {
		line := fmt.Sprintf("contention: %d shards, %d busy retries, %d all-pinned, %d reads coalesced",
			def.Shards, def.BusyRetries, def.AllPinned, rep.Counters.ReadsCoalesced)
		if rep.Counters.CoalescedFailures > 0 {
			line += fmt.Sprintf(" (%d failed)", rep.Counters.CoalescedFailures)
		}
		if def.OptimisticHits > 0 || def.OptimisticFallbacks > 0 {
			line += fmt.Sprintf("; optimistic: %d lock-free hits, %d retries, %d fallbacks",
				def.OptimisticHits, def.OptimisticRetries, def.OptimisticFallbacks)
		}
		if len(def.PerShard) > 1 {
			line += "; per-shard reads:"
			for _, sh := range def.PerShard {
				line += fmt.Sprintf(" %d", sh.LogicalReads)
			}
		}
		fmt.Println(line)
	}
	s := rep.Sharing
	fmt.Printf("sharing: %d joins, %d trails, %d residual, %d cold; %d throttles (%v), %d fairness exemptions\n",
		s.JoinPlacements, s.TrailPlacements, s.ResidualPlacements, s.ColdPlacements,
		s.ThrottleEvents, s.ThrottleTime.Round(time.Millisecond), s.FairnessExemptions)
	if f := rep.Faults; f.Reads > 0 {
		fmt.Printf("faults: %d reads saw %d errors, %d latency spikes (%v), %d stalls, %d torn reads\n",
			f.Reads, f.InjectedErrors, f.LatencyEvents, f.InjectedLatency.Round(time.Millisecond), f.Stalls, f.TornReads)
		c := rep.Counters
		fmt.Printf("recovery: %d retries (%d timeouts), %d pages degraded, %d detaches / %d rejoins, %d prefetch failures\n",
			c.ReadRetries, c.ReadTimeouts, c.PagesFailed, c.ScanDetaches, c.ScanRejoins, c.PrefetchFailed)
	}
	if taken := sampler.Taken(); taken > 1 {
		samples := sampler.Samples()
		last := samples[len(samples)-1]
		rates := last.Delta(samples[0])
		fmt.Printf("telemetry: %d samples every %v; run avg %.0f pages/s, %.1f%% interval hit rate, throttle duty %.2f, max group gap %d pages\n",
			taken, sampler.Interval(), rates.PagesPerSec, 100*rates.HitRate, rates.ThrottleDuty, last.MaxGroupGap())
	}
	if obs.tracePath != "" {
		fmt.Printf("trace: wrote %s (%d events dropped)\n", obs.tracePath, tracer.Dropped())
	}
	if rec != nil {
		if asm := trace.Assemble(rec.Events()); len(asm.Trees) > 0 {
			fmt.Printf("\nspans: %d query trees (%d unclosed, %d orphans); scanshare-trace renders them from -rt-trace output\n",
				len(asm.Trees), asm.Unclosed, asm.Orphans)
			fmt.Print(trace.RenderBreakdown(asm.Aggregate(), len(asm.Trees)))
		}
	}
	if rec != nil && obs.timeline {
		evs := rec.Events()
		fmt.Printf("\ntimeline (%d events; %s):\n", len(evs), trace.SummarizeKinds(evs))
		fmt.Print(trace.RenderTimeline(evs))
	}

	if obs.benchJSON != "" {
		res := rep.BenchResult(telemetry.BenchParams{
			Pages:       tbl.NumPages(),
			Scans:       n,
			Workers:     workers,
			PoolPages:   poolPages,
			Shards:      shards,
			Policy:      policy,
			Translation: translation,
			PageDelay:   pageDelay,
			ReadDelay:   readDelay,
			Coalescing:  !noCoalesce,
			Push:        push,
			Spans:       tracer != nil,
		})
		res.Name = obs.benchName
		res.GitRev = gitRev()
		res.RecordedAt = time.Now().UTC().Format(time.RFC3339)
		if err := telemetry.WriteBench(obs.benchJSON, res); err != nil {
			return err
		}
		fmt.Printf("bench result: wrote %s\n", obs.benchJSON)
	}
	return nil
}

// buildRTEngine constructs the wall-clock benchmark engine with its seeded
// synthetic table "rt", shared by the realtime and serve modes so their
// workloads are directly comparable. policy and translation are normalized
// in place to the names the engine resolved the defaults to.
func buildRTEngine(p experiments.Params, shards int, policy, translation *string) (*scanshare.Engine, *scanshare.Table, int, error) {
	rows := int(30000 * p.Scale)
	poolPages := poolPagesFor(rows, p.BufferFrac)
	eng, err := scanshare.New(scanshare.Config{
		// Sized after load below would be circular; ~100 bytes/row on
		// 8 KiB pages gives the page count up front.
		BufferPoolPages: poolPages,
		PoolShards:      shards,
		PoolPolicy:      *policy,
		PoolTranslation: *translation,
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: p.ExtentPages},
	})
	if err != nil {
		return nil, nil, 0, err
	}
	if *policy == "" {
		*policy = scanshare.PoolPolicyLRU
	}
	if *translation == "" {
		*translation = scanshare.PoolTranslationMap
	}
	schema := scanshare.MustSchema(
		scanshare.Field{Name: "id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "v", Kind: scanshare.KindFloat64},
		scanshare.Field{Name: "tag", Kind: scanshare.KindString},
	)
	rng := rand.New(rand.NewSource(p.Seed))
	tbl, err := eng.LoadTable("rt", schema, func(add func(scanshare.Tuple) error) error {
		for i := 0; i < rows; i++ {
			err := add(scanshare.Tuple{
				scanshare.Int64(int64(i)),
				scanshare.Float64(rng.Float64()),
				scanshare.String(fmt.Sprintf("tag-%02d", rng.Intn(40))),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return eng, tbl, poolPages, nil
}

// poolPagesFor sizes the pool as frac of the estimated table pages (about
// 100 bytes per row on the default 8 KiB pages), with a small floor.
func poolPagesFor(rows int, frac float64) int {
	estPages := rows / 80
	pages := int(float64(estPages) * frac)
	if pages < 32 {
		pages = 32
	}
	return pages
}
