package main

import (
	"path/filepath"
	"testing"

	"scanshare/internal/telemetry"
)

// TestBenchTrajectory is the trajectory tripwire over the committed
// BENCH_*.json points at the repo root: every file must carry the current
// schema (ReadBench rejects anything else, so a format change that forgets
// to migrate the trajectory fails here, cross-checking this PR's BENCH_9
// pair against the BENCH_8 baseline), and the push-mode point must hold its
// headline claim — the same 16-scan workload at least as fast pushed as
// pulled, within the 10% gate `make bench-record` enforces at recording
// time.
func TestBenchTrajectory(t *testing.T) {
	root := "../.." // repo root from cmd/scanshare-bench
	read := func(name string) telemetry.BenchResult {
		t.Helper()
		r, err := telemetry.ReadBench(filepath.Join(root, name))
		if err != nil {
			t.Fatalf("trajectory point %s: %v", name, err)
		}
		return r
	}

	prev := read("BENCH_8.json")
	pull := read("BENCH_9_pull.json")
	push := read("BENCH_9.json")

	if prev.Schema != push.Schema || pull.Schema != push.Schema {
		t.Fatalf("schema drift across the trajectory: BENCH_8 %q, BENCH_9_pull %q, BENCH_9 %q",
			prev.Schema, pull.Schema, push.Schema)
	}
	if !push.Params.Push || pull.Params.Push {
		t.Fatalf("delivery-mode params swapped: BENCH_9 push=%v, BENCH_9_pull push=%v",
			push.Params.Push, pull.Params.Push)
	}

	// The pair ran the same workload, so the comparator's full gate
	// applies: matching pages_read, throughput within 10%, hit ratio not
	// collapsed. Push regressing against pull is this PR's failure mode.
	for _, reg := range telemetry.CompareBench(pull, push, 0.10) {
		t.Errorf("push vs pull: %s", reg)
	}
	if push.PagesPerSec < pull.PagesPerSec {
		t.Logf("note: push %.0f pages/s below pull %.0f pages/s (within tolerance)",
			push.PagesPerSec, pull.PagesPerSec)
	}
	if push.BatchesPushed == 0 {
		t.Error("BENCH_9.json recorded no pushed batches; was it recorded with -rt-push?")
	}
	if pull.BatchesPushed != 0 {
		t.Errorf("BENCH_9_pull.json recorded %d pushed batches; expected a pull run", pull.BatchesPushed)
	}
}
