package main

import (
	"path/filepath"
	"testing"

	"scanshare/internal/telemetry"
)

// TestBenchTrajectory is the trajectory tripwire over the committed
// BENCH_*.json points at the repo root: every file must carry the current
// schema (ReadBench rejects anything else, so a format change that forgets
// to migrate the trajectory fails here, cross-checking this PR's BENCH_10
// pair against the BENCH_9 pair), the push-mode point must hold its
// headline claim — the same 16-scan workload at least as fast pushed as
// pulled within the 10% gate — and the tracing-overhead point must hold
// this PR's claim: span emission costs at most the 5% throughput delta
// `make bench-record` enforces at recording time.
func TestBenchTrajectory(t *testing.T) {
	root := "../.." // repo root from cmd/scanshare-bench
	read := func(name string) telemetry.BenchResult {
		t.Helper()
		r, err := telemetry.ReadBench(filepath.Join(root, name))
		if err != nil {
			t.Fatalf("trajectory point %s: %v", name, err)
		}
		return r
	}

	pull := read("BENCH_9_pull.json")
	push := read("BENCH_9.json")
	nospans := read("BENCH_10_nospans.json")
	spans := read("BENCH_10.json")

	if pull.Schema != push.Schema || nospans.Schema != push.Schema || spans.Schema != push.Schema {
		t.Fatalf("schema drift across the trajectory: BENCH_9_pull %q, BENCH_9 %q, BENCH_10_nospans %q, BENCH_10 %q",
			pull.Schema, push.Schema, nospans.Schema, spans.Schema)
	}
	if !push.Params.Push || pull.Params.Push {
		t.Fatalf("delivery-mode params swapped: BENCH_9 push=%v, BENCH_9_pull push=%v",
			push.Params.Push, pull.Params.Push)
	}

	// The push pair ran the same workload, so the comparator's full gate
	// applies: matching pages_read, throughput within 10%, hit ratio not
	// collapsed.
	for _, reg := range telemetry.CompareBench(pull, push, 0.10) {
		t.Errorf("push vs pull: %s", reg)
	}
	if push.BatchesPushed == 0 {
		t.Error("BENCH_9.json recorded no pushed batches; was it recorded with -rt-push?")
	}
	if pull.BatchesPushed != 0 {
		t.Errorf("BENCH_9_pull.json recorded %d pushed batches; expected a pull run", pull.BatchesPushed)
	}

	// The tracing-overhead pair: identical workload, spans off vs on,
	// throughput within the 5% overhead budget.
	if !spans.Params.Spans || nospans.Params.Spans {
		t.Fatalf("span params swapped: BENCH_10 spans=%v, BENCH_10_nospans spans=%v",
			spans.Params.Spans, nospans.Params.Spans)
	}
	for _, reg := range telemetry.CompareBench(nospans, spans, 0.05) {
		t.Errorf("spans-on vs spans-off: %s", reg)
	}
	if spans.PagesPerSec < nospans.PagesPerSec {
		t.Logf("note: tracing overhead %.1f%% (%.0f -> %.0f pages/s, within 5%% budget)",
			100*(nospans.PagesPerSec-spans.PagesPerSec)/nospans.PagesPerSec,
			nospans.PagesPerSec, spans.PagesPerSec)
	}
	if spans.TraceDropped != 0 {
		t.Errorf("BENCH_10.json dropped %d trace events; the overhead number is an undercount", spans.TraceDropped)
	}
}
