// Command scanshare-bench regenerates the paper's tables and figures.
//
// Each experiment runs the same workload on a baseline engine and on a
// sharing engine and prints a paper-style comparison. With no arguments it
// runs the complete suite; pass experiment IDs to run a subset:
//
//	scanshare-bench                 # everything
//	scanshare-bench -list           # what exists
//	scanshare-bench T1 F15 F20      # a selection
//	scanshare-bench -scale 8 -streams 5 T1
//
// All runs are deterministic for a given seed: the workload is generated
// from the seed and executed in virtual time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"scanshare/internal/experiments"
	"scanshare/internal/telemetry"
)

func main() {
	p := experiments.DefaultParams()
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csv", "", "also write machine-readable CSV files into this directory")
	rtScans := flag.Int("realtime", 0, "instead of experiments, run N concurrent goroutine scans in wall-clock time")
	rtWorkers := flag.Int("rt-workers", 4, "realtime mode: prefetch worker count")
	rtPush := flag.Bool("rt-push", false, "realtime mode: push-based delivery (one reader per scan group feeds subscriber channels; -rt-workers is ignored)")
	rtShards := flag.Int("pool-shards", 1, "realtime mode: lock-striped buffer pool shard count (1 = classic single-mutex pool)")
	rtPolicy := flag.String("pool-policy", "", "buffer pool replacement policy: priority-lru (default) or predictive")
	rtTranslation := flag.String("pool-translation", "", "buffer pool page translation: map (default) or array (lock-free optimistic hit path)")
	rtNoCoalesce := flag.Bool("rt-no-coalesce", false, "realtime mode: disable singleflight read coalescing (reproduce busy-poll behavior)")
	rtPageDelay := flag.Duration("rt-pagedelay", 50*time.Microsecond, "realtime mode: per-page processing delay")
	rtReadDelay := flag.Duration("rt-readdelay", 200*time.Microsecond, "realtime mode: per-physical-read device delay")
	var rtObs rtObsFlags
	flag.StringVar(&rtObs.httpAddr, "http", "", "realtime mode: serve expvar and pprof introspection on this address (e.g. localhost:6060)")
	flag.DurationVar(&rtObs.statsEvery, "stats-every", 0, "realtime mode: print a live stats line at this interval (0 = off)")
	flag.StringVar(&rtObs.tracePath, "rt-trace", "", "realtime mode: write the structured event journal as JSONL to this file")
	flag.BoolVar(&rtObs.timeline, "rt-timeline", false, "realtime mode: print the run's event timeline after the summary")
	flag.DurationVar(&rtObs.sampleEvery, "sample-every", 100*time.Millisecond, "realtime mode: telemetry sampling interval (0 = only start/end samples)")
	flag.StringVar(&rtObs.flightDir, "flight-dir", "", "realtime mode: arm the flight recorder; dumps land in this directory on SIGQUIT or run failure")
	flag.StringVar(&rtObs.benchJSON, "bench-json", "", "realtime mode: write a schema-versioned benchmark result JSON to this file")
	flag.StringVar(&rtObs.benchName, "bench-name", "realtime", "realtime mode: name recorded in the -bench-json result")
	flag.BoolVar(&rtObs.spans, "rt-spans", false, "realtime mode: enable span emission even without -rt-trace/-rt-timeline (for measuring tracing overhead)")
	var sv rtServeFlags
	flag.IntVar(&sv.clients, "serve-clients", 0, "instead of experiments, run the multi-tenant scan service in-process and drive it with N seeded concurrent clients")
	flag.IntVar(&sv.tenants, "serve-tenants", 4, "serve mode: tenant count (clients are assigned round-robin)")
	flag.IntVar(&sv.requests, "serve-requests", 4, "serve mode: successful requests each client must complete")
	comparePath := flag.String("compare", "", "compare mode: baseline benchmark JSON; the positional argument is the new result (exits 1 on regression)")
	compareTol := flag.Float64("compare-tolerance", 0.10, "compare mode: allowed fractional throughput drop")
	var rtFaults rtFaultFlags
	flag.StringVar(&rtFaults.scenario, "rt-faults", "", `realtime mode: fault scenario ("errors", "slowband", "stall", "torn")`)
	flag.Float64Var(&rtFaults.prob, "rt-fault-prob", 0.05, "realtime mode: per-(page,attempt) fault probability")
	flag.Int64Var(&rtFaults.seed, "rt-fault-seed", 1, "realtime mode: fault plan seed")
	flag.DurationVar(&rtFaults.readTimeout, "rt-read-timeout", 5*time.Millisecond, "realtime mode: per-read-attempt timeout when faults are on")
	flag.IntVar(&rtFaults.retries, "rt-read-retries", 4, "realtime mode: failed-read retry budget when faults are on")
	flag.IntVar(&rtFaults.detachAfter, "rt-detach-after", 3, "realtime mode: consecutive read failures before a scan detaches from its group (0 = never)")
	flag.Float64Var(&p.Scale, "scale", p.Scale, "workload scale factor")
	flag.Int64Var(&p.Seed, "seed", p.Seed, "data generation seed")
	flag.IntVar(&p.Streams, "streams", p.Streams, "throughput run stream count")
	flag.Float64Var(&p.BufferFrac, "buffer", p.BufferFrac, "buffer pool as a fraction of the database")
	flag.DurationVar(&p.BucketWidth, "bucket", p.BucketWidth, "activity series bucket width")
	flag.Float64Var(&p.StaggerFrac, "stagger", p.StaggerFrac, "staggered-start interval as a fraction of one cold query")
	flag.IntVar(&p.ExtentPages, "extent", p.ExtentPages, "prefetch extent in pages")
	flag.IntVar(&p.Cores, "cores", p.Cores, "CPU cores (0 = unlimited)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags] [experiment-id ...]\n\nflags:\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, spec := range experiments.All() {
			fmt.Printf("%-4s %s\n", spec.ID, spec.Title)
		}
		return
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *comparePath != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: scanshare-bench -compare old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(*comparePath, flag.Arg(0), *compareTol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if sv.clients > 0 {
		if err := runServe(p, sv, *rtShards, *rtPolicy, *rtTranslation, *rtPageDelay, rtObs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *rtScans > 0 {
		if err := runRealtime(p, *rtScans, *rtWorkers, *rtShards, *rtPolicy, *rtTranslation, *rtNoCoalesce, *rtPush, *rtPageDelay, *rtReadDelay, rtFaults, rtObs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	specs := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		specs = specs[:0]
		for _, id := range args {
			spec, err := experiments.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			specs = append(specs, spec)
		}
	}

	for i, spec := range specs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s\n", spec.ID, spec.Title)
		start := time.Now()
		res, err := spec.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.ID, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("(ran in %v)\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// runCompare loads two persisted benchmark results and reports regressions
// of new against old; any finding is returned as an error so the caller
// exits non-zero (the CI tripwire behind `make bench-smoke`).
func runCompare(oldPath, newPath string, tolerance float64) error {
	oldRes, err := telemetry.ReadBench(oldPath)
	if err != nil {
		return err
	}
	newRes, err := telemetry.ReadBench(newPath)
	if err != nil {
		return err
	}
	regs := telemetry.CompareBench(oldRes, newRes, tolerance)
	if len(regs) == 0 {
		fmt.Printf("ok: %s vs %s within tolerance (%.0f pages/s -> %.0f pages/s, hit %.1f%% -> %.1f%%)\n",
			oldPath, newPath, oldRes.PagesPerSec, newRes.PagesPerSec,
			100*oldRes.HitRatio, 100*newRes.HitRatio)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "regression:", r)
	}
	return fmt.Errorf("%d regression(s) comparing %s against %s", len(regs), newPath, oldPath)
}

// writeCSV dumps a result's CSV files, when it offers any.
func writeCSV(dir string, res experiments.Result) error {
	exp, ok := res.(experiments.CSVExporter)
	if !ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range exp.CSV() {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
