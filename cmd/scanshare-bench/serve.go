package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"scanshare"
	"scanshare/internal/experiments"
	"scanshare/internal/metrics"
	"scanshare/internal/server"
	"scanshare/internal/telemetry"
	"scanshare/internal/trace"
)

// rtServeFlags are the serve-mode knobs (-serve-clients and friends).
type rtServeFlags struct {
	clients  int
	tenants  int
	requests int
}

// runServe benchmarks the multi-tenant scan service end to end: it starts an
// in-process server on a loopback port, drives it with the deterministic
// seeded client fleet, and reports throughput, shed rate, and queue-wait
// latency alongside the usual buffer counters. The workload table and pool
// sizing match the plain realtime mode, so the two result files compare
// apples to apples.
func runServe(p experiments.Params, sv rtServeFlags, shards int, policy, translation string, pageDelay time.Duration, obs rtObsFlags) error {
	if sv.tenants <= 0 || sv.clients < sv.tenants {
		return fmt.Errorf("serve mode needs at least one client per tenant (%d clients, %d tenants)", sv.clients, sv.tenants)
	}
	eng, tbl, poolPages, err := buildRTEngine(p, shards, &policy, &translation)
	if err != nil {
		return err
	}

	// Admission limits sized to bite: roughly a quarter of each tenant's
	// client population runs at once, an equal backlog queues, the rest
	// of a burst sheds and retries.
	perTenant := sv.clients / sv.tenants
	cap := max(1, perTenant/4)
	names := make([]string, sv.tenants)
	tenants := make([]server.TenantConfig, sv.tenants)
	for i := range tenants {
		names[i] = fmt.Sprintf("tenant-%d", i)
		tenants[i] = server.TenantConfig{
			Name:          names[i],
			MaxConcurrent: cap,
			MaxQueueDepth: cap,
		}
	}

	// Tracing: -rt-trace journals every request's span tree to JSONL (the
	// scanshare-trace CLI renders them); -rt-spans keeps the spans in an
	// in-memory recorder for the end-of-run breakdown only.
	var tracer *trace.Tracer
	var rec *trace.Recorder
	var traceFile *os.File
	if obs.tracePath != "" || obs.spans {
		tracer = trace.NewTracer(nil)
		if obs.tracePath != "" {
			f, err := os.Create(obs.tracePath)
			if err != nil {
				return err
			}
			traceFile = f
			tracer.Attach(trace.NewJSONLSink(f))
		} else {
			rec = &trace.Recorder{Cap: 1 << 16}
			tracer.Attach(rec)
		}
		tracer.Start(20 * time.Millisecond)
	}

	col := new(metrics.Collector)
	srv, err := server.New(server.Config{
		Engine:    eng,
		Tenants:   tenants,
		PageDelay: pageDelay,
		Realtime:  scanshare.RealtimeOptions{Collector: col},
		Tracer:    tracer,
	})
	if err != nil {
		return err
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		return err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	}()

	// Observability mirrors realtime mode, with the per-tenant admission
	// counters plugged into the sampler and Prometheus families.
	sources := eng.TelemetrySources(col)
	sources.Tenants = srv.TenantStats
	sampler := telemetry.NewSampler(sources, obs.sampleEvery, 0)
	if obs.sampleEvery > 0 {
		sampler.Start()
		defer sampler.Stop()
	}
	if obs.httpAddr != "" {
		telemetry.PublishExpvar("scanshare_pools", func() any { return eng.PoolStats() })
		telemetry.PublishExpvar("scanshare_tenants", func() any { return srv.TenantStats() })
		isrv, err := telemetry.StartIntrospection(obs.httpAddr, telemetry.NewDebugMux(&sources))
		if err != nil {
			return err
		}
		fmt.Printf("introspection: expvar, pprof, and /metrics on http://%s\n", isrv.Addr())
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			isrv.Shutdown(sctx)
		}()
	}

	rows := int(30000 * p.Scale)
	queries := []string{
		"SELECT count(*) FROM rt",
		"SELECT id, v FROM rt LIMIT 50",
		fmt.Sprintf("SELECT count(*) FROM rt WHERE id >= %d", rows/2),
		fmt.Sprintf("SELECT count(*) FROM rt WHERE id >= %d AND id <= %d", rows/4, rows/2),
	}
	fmt.Printf("serve bench: %d clients x %d requests over %d tenants (cap %d, depth %d) against %d pages, pool %d pages, %d shards, policy %s, translation %s\n",
		sv.clients, sv.requests, sv.tenants, cap, cap, tbl.NumPages(), poolPages, shards, policy, translation)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stats, err := server.RunDriver(ctx, server.DriverConfig{
		Addr:              srv.Addr(),
		Clients:           sv.clients,
		Tenants:           names,
		Queries:           queries,
		RequestsPerClient: sv.requests,
		Seed:              p.Seed,
		RetryOnShed:       true,
	})
	if err != nil {
		return err
	}

	if tracer != nil {
		tracer.Close()
		col.SetTraceDropped(int64(tracer.Dropped()))
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Printf("trace: wrote %s\n", obs.tracePath)
		}
	}

	cs := col.Snapshot()
	all := srv.AllStats()
	fmt.Printf("driver: %s\n", stats)
	for _, st := range srv.TenantStats() {
		fmt.Printf("  %s\n", st)
	}
	fmt.Printf("admission: %d admitted, %d shed (%.1f%% shed rate), p99 queue wait %s\n",
		all.Admitted, all.Shed, 100*all.ShedRate(), all.QueueWait.P99)
	fmt.Printf("buffer: %d pages read, %.1f%% hit ratio, %d reads coalesced\n",
		cs.PagesRead, 100*cs.HitRatio(), cs.ReadsCoalesced)
	if rec != nil {
		if asm := trace.Assemble(rec.Events()); len(asm.Trees) > 0 {
			fmt.Printf("\nspans: %d query trees (%d unclosed, %d orphans)\n",
				len(asm.Trees), asm.Unclosed, asm.Orphans)
			fmt.Print(trace.RenderBreakdown(asm.Aggregate(), len(asm.Trees)))
		}
	}

	if obs.benchJSON != "" {
		res := telemetry.BenchResult{
			Params: telemetry.BenchParams{
				Pages:       tbl.NumPages(),
				Scans:       sv.clients * sv.requests,
				PoolPages:   poolPages,
				Shards:      shards,
				Policy:      policy,
				Translation: translation,
				PageDelay:   pageDelay,
				Coalescing:  true,
				Spans:       tracer != nil,
			},
			Name:                obs.benchName,
			GitRev:              gitRev(),
			RecordedAt:          time.Now().UTC().Format(time.RFC3339),
			WallSeconds:         stats.Wall.Seconds(),
			PagesRead:           cs.PagesRead,
			HitRatio:            cs.HitRatio(),
			ThrottleEvents:      cs.ThrottleEvents,
			ThrottleWaitSeconds: cs.ThrottleWait.Seconds(),
			ReadsCoalesced:      cs.ReadsCoalesced,
			RequestsAdmitted:    all.Admitted,
			RequestsShed:        all.Shed,
			ShedRate:            all.ShedRate(),
			Histograms: map[string]telemetry.HistSummary{
				"page_read":     telemetry.SummarizeHist(cs.PageReadLatency),
				"throttle_wait": telemetry.SummarizeHist(cs.ThrottleWaitDist),
				"queue_wait":    telemetry.SummarizeHist(all.QueueWait),
			},
		}
		if stats.Wall > 0 {
			res.PagesPerSec = float64(cs.PagesRead) / stats.Wall.Seconds()
		}
		// Latency attribution over all completed requests, keyed like the
		// span assembler's components so result files and scanshare-trace
		// output line up.
		bd := map[string]float64{}
		for _, c := range []struct {
			name string
			d    time.Duration
		}{
			{"queue", all.QueueWait.Sum},
			{"compile", all.CompileWait},
			{"throttle", all.ThrottleWait},
			{"pool-wait", all.PoolWait},
			{"read", all.ReadWait},
			{"delivery", all.DeliveryWait},
		} {
			if c.d > 0 {
				bd[c.name] = c.d.Seconds()
			}
		}
		if len(bd) > 0 {
			res.BreakdownSeconds = bd
		}
		res.TraceDropped = cs.TraceDropped
		for _, ps := range eng.PoolStats() {
			res.Evictions += ps.Evictions
			res.OptimisticHits += ps.OptimisticHits
			res.OptimisticRetries += ps.OptimisticRetries
			res.OptimisticFallbacks += ps.OptimisticFallbacks
		}
		if err := telemetry.WriteBench(obs.benchJSON, res); err != nil {
			return err
		}
		fmt.Printf("bench result: wrote %s\n", obs.benchJSON)
	}
	return nil
}
