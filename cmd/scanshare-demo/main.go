// Command scanshare-demo shows the scan sharing manager at work: it runs a
// handful of overlapping scans over a generated table and periodically
// prints the manager's view — which scans are running, where they are, how
// they are grouped, who leads and who trails, and how much throttling each
// scan has absorbed.
//
//	scanshare-demo                  # three staggered scans, shared mode
//	scanshare-demo -mode base       # the same workload without sharing
//	scanshare-demo -scans 5 -mismatch
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scanshare"
	"scanshare/internal/workload"
)

func main() {
	mode := flag.String("mode", "shared", `"shared" or "base"`)
	scans := flag.Int("scans", 3, "number of concurrent scans")
	mismatch := flag.Bool("mismatch", false, "give scans different CPU weights so they drift")
	trace := flag.Bool("trace", false, "print every sharing-manager decision")
	scale := flag.Float64("scale", 2, "workload scale factor")
	flag.Parse()

	var m scanshare.Mode
	switch *mode {
	case "shared":
		m = scanshare.Shared
	case "base":
		m = scanshare.Baseline
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *scans < 1 {
		fmt.Fprintln(os.Stderr, "need at least one scan")
		os.Exit(2)
	}

	gen := workload.GenConfig{ScaleFactor: *scale, Seed: 1}
	eng := scanshare.MustNew(scanshare.Config{
		BufferPoolPages: workload.BufferPoolFor(gen, 0, 0.05),
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: 8},
	})
	db, err := workload.Load(eng, gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("database: %d pages, buffer pool: %d pages, mode: %s\n\n",
		db.TotalPages(), workload.BufferPoolFor(gen, 0, 0.05), m)

	jobs := make([]scanshare.Job, *scans)
	for i := range jobs {
		weight := 1.0
		if *mismatch && i%2 == 1 {
			weight = 20
		}
		q := scanshare.NewQuery(db.Lineitem).
			Named(fmt.Sprintf("scan-%d", i)).
			Weight(weight).
			CountAll()
		jobs[i] = scanshare.Job{Query: q, Start: time.Duration(i) * 40 * time.Millisecond, Stream: i}
	}

	if m == scanshare.Shared {
		err = eng.Observe(60*time.Millisecond, func(now time.Duration, snap scanshare.SharingSnapshot) {
			fmt.Printf("t=%-8v %s", now.Round(time.Millisecond), snap)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *trace {
			eng.TraceSharing(func(pool string, ev scanshare.SharingEvent) {
				fmt.Println("   ", ev)
			})
		}
	}

	rep, err := eng.Run(m, jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(rep.Summary())
	fmt.Printf("\nsharing: %d joins, %d trails, %d residual, %d cold; throttled %v over %d events\n",
		rep.Sharing.JoinPlacements, rep.Sharing.TrailPlacements,
		rep.Sharing.ResidualPlacements, rep.Sharing.ColdPlacements,
		rep.Sharing.ThrottleTime.Round(time.Millisecond), rep.Sharing.ThrottleEvents)
}
