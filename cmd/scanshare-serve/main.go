// Command scanshare-serve runs the multi-tenant scan service: a long-lived
// TCP server that accepts SQL requests over a length-prefixed JSON protocol,
// admits them through per-tenant bounded queues with concurrency caps and
// weighted round-robin dispatch, and executes admitted scans through the
// shared buffer pools so concurrent clients benefit from the paper's scan
// grouping and throttling.
//
//	scanshare-serve -addr :7070 -tenants 'acme:4:8:2,beta:2:4:1' -scale 1
//
// Each -tenants entry is name:concurrency:queue-depth:weight (later fields
// optional). The workload table "rt" is generated from -seed at startup,
// matching scanshare-bench's realtime and serve modes. With -http the server
// also exposes expvar, pprof, and Prometheus /metrics with per-tenant
// admission families.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"scanshare"
	"scanshare/internal/experiments"
	"scanshare/internal/metrics"
	"scanshare/internal/server"
	"scanshare/internal/telemetry"
	"scanshare/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	p := experiments.DefaultParams()
	addr := flag.String("addr", "127.0.0.1:7070", "listen address for the scan service")
	httpAddr := flag.String("http", "", "serve expvar, pprof, and /metrics introspection on this address")
	tenantSpec := flag.String("tenants", "alpha:2:4:1,beta:2:4:1", "comma-separated tenant specs name:concurrency[:queue-depth[:weight]]")
	globalCap := flag.Int("max-concurrent", 0, "global concurrent request cap (0 = sum of tenant caps)")
	shards := flag.Int("pool-shards", 4, "lock-striped buffer pool shard count")
	policy := flag.String("pool-policy", "", "buffer pool replacement policy: priority-lru (default) or predictive")
	translation := flag.String("pool-translation", "", "buffer pool page translation: map (default) or array")
	pageDelay := flag.Duration("pagedelay", 50*time.Microsecond, "per-page processing delay charged to every scan")
	readDelay := flag.Duration("readdelay", 200*time.Microsecond, "per-physical-read device delay")
	sampleEvery := flag.Duration("sample-every", time.Second, "telemetry sampling interval (0 = off)")
	tracePath := flag.String("trace", "", "write every request's span tree as a JSONL trace journal to this file (render with scanshare-trace)")
	flightDir := flag.String("flight-dir", "", "arm the flight recorder; dumps land in this directory on SIGQUIT or SLO breach")
	sloQueueP99 := flag.Duration("slo-queue-p99", 0, "dump the flight record when any tenant's p99 queue wait reaches this (0 = off; needs -flight-dir)")
	flag.Float64Var(&p.Scale, "scale", p.Scale, "workload table scale factor")
	flag.Int64Var(&p.Seed, "seed", p.Seed, "workload table generation seed")
	flag.Float64Var(&p.BufferFrac, "buffer", p.BufferFrac, "buffer pool as a fraction of the table")
	flag.Parse()

	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}

	if *sloQueueP99 > 0 && *flightDir == "" {
		return fmt.Errorf("-slo-queue-p99 needs -flight-dir for somewhere to dump")
	}

	eng, tbl, poolPages, err := buildEngine(p, *shards, *policy, *translation)
	if err != nil {
		return err
	}

	// Tracing: the JSONL journal is what scanshare-trace renders; the
	// bounded in-memory recorder gives flight dumps their event tail.
	var tracer *trace.Tracer
	var rec *trace.Recorder
	var traceFile *os.File
	if *tracePath != "" || *flightDir != "" {
		tracer = trace.NewTracer(nil)
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			traceFile = f
			tracer.Attach(trace.NewJSONLSink(f))
		}
		if *flightDir != "" {
			rec = &trace.Recorder{Cap: 1 << 14}
			tracer.Attach(rec)
		}
		tracer.Start(20 * time.Millisecond)
	}

	col := new(metrics.Collector)
	srv, err := server.New(server.Config{
		Engine:        eng,
		Tenants:       tenants,
		MaxConcurrent: *globalCap,
		PageDelay:     *pageDelay,
		Tracer:        tracer,
		Realtime: scanshare.RealtimeOptions{
			PageReadDelay: *readDelay,
			Collector:     col,
		},
	})
	if err != nil {
		return err
	}
	if err := srv.Serve(*addr); err != nil {
		return err
	}
	fmt.Printf("scanshare-serve: listening on %s — table rt (%d pages), pool %d pages, %d tenants\n",
		srv.Addr(), tbl.NumPages(), poolPages, len(tenants))
	for _, t := range tenants {
		fmt.Printf("  tenant %s: concurrency %d, queue depth %d, weight %d\n",
			t.Name, t.MaxConcurrent, t.MaxQueueDepth, t.Weight)
	}

	sources := eng.TelemetrySources(col)
	sources.Tenants = srv.TenantStats
	sampler := telemetry.NewSampler(sources, *sampleEvery, 0)
	if *sampleEvery > 0 {
		sampler.Start()
		defer sampler.Stop()
	}

	sloDone := make(chan struct{})
	if *flightDir != "" {
		flight := &telemetry.FlightRecorder{
			Sampler:      sampler,
			Dir:          *flightDir,
			QueueWaitSLO: *sloQueueP99,
			Tenants:      srv.TenantStats,
		}
		if rec != nil {
			flight.Events = rec.Tail
		}
		dumpFlight := func(reason string) {
			path, err := flight.DumpFile(reason)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flight recorder:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "flight record (%s): %s\n", reason, path)
		}
		// SIGQUIT dumps on demand; the SLO poller dumps automatically the
		// first time a tenant's p99 queue wait crosses the threshold.
		quitCh := make(chan os.Signal, 1)
		signal.Notify(quitCh, syscall.SIGQUIT)
		stopSLO := make(chan struct{})
		go func() {
			defer close(sloDone)
			every := *sampleEvery
			if every <= 0 {
				every = time.Second
			}
			ticker := time.NewTicker(every)
			defer ticker.Stop()
			for {
				select {
				case <-quitCh:
					dumpFlight("sigquit")
				case <-ticker.C:
					paths, err := flight.CheckSLO()
					if err != nil {
						fmt.Fprintln(os.Stderr, "flight recorder:", err)
					}
					for _, p := range paths {
						fmt.Fprintf(os.Stderr, "flight record (slo breach): %s\n", p)
					}
				case <-stopSLO:
					return
				}
			}
		}()
		defer func() { signal.Stop(quitCh); close(stopSLO); <-sloDone }()
	} else {
		close(sloDone)
	}
	if *httpAddr != "" {
		telemetry.PublishExpvar("scanshare_pools", func() any { return eng.PoolStats() })
		telemetry.PublishExpvar("scanshare_tenants", func() any { return srv.TenantStats() })
		isrv, err := telemetry.StartIntrospection(*httpAddr, telemetry.NewDebugMux(&sources))
		if err != nil {
			return err
		}
		fmt.Printf("introspection: expvar, pprof, and /metrics on http://%s\n", isrv.Addr())
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer scancel()
			isrv.Shutdown(sctx)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	fmt.Println("\nscanshare-serve: shutting down")
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Printf("trace: wrote %s (%d events dropped)\n", *tracePath, tracer.Dropped())
		}
	}
	for _, st := range srv.TenantStats() {
		fmt.Printf("  %s\n", st)
	}
	return nil
}

// parseTenants decodes "name:concurrency[:queue-depth[:weight]]" specs.
func parseTenants(spec string) ([]server.TenantConfig, error) {
	var out []server.TenantConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 4 || parts[0] == "" {
			return nil, fmt.Errorf("bad tenant spec %q (want name:concurrency[:queue-depth[:weight]])", entry)
		}
		cfg := server.TenantConfig{Name: parts[0], MaxConcurrent: 2, MaxQueueDepth: 4, Weight: 1}
		for i, dst := range []*int{&cfg.MaxConcurrent, &cfg.MaxQueueDepth, &cfg.Weight} {
			if len(parts) <= i+1 {
				break
			}
			n, err := strconv.Atoi(parts[i+1])
			if err != nil {
				return nil, fmt.Errorf("bad tenant spec %q: %v", entry, err)
			}
			*dst = n
		}
		out = append(out, cfg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in spec %q", spec)
	}
	return out, nil
}

// buildEngine mirrors scanshare-bench's workload: one seeded synthetic table
// "rt" sized by the scale factor, so queries written against the bench work
// here unchanged.
func buildEngine(p experiments.Params, shards int, policy, translation string) (*scanshare.Engine, *scanshare.Table, int, error) {
	rows := int(30000 * p.Scale)
	estPages := rows / 80
	poolPages := int(float64(estPages) * p.BufferFrac)
	if poolPages < 32 {
		poolPages = 32
	}
	eng, err := scanshare.New(scanshare.Config{
		BufferPoolPages: poolPages,
		PoolShards:      shards,
		PoolPolicy:      policy,
		PoolTranslation: translation,
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: p.ExtentPages},
	})
	if err != nil {
		return nil, nil, 0, err
	}
	schema := scanshare.MustSchema(
		scanshare.Field{Name: "id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "v", Kind: scanshare.KindFloat64},
		scanshare.Field{Name: "tag", Kind: scanshare.KindString},
	)
	rng := rand.New(rand.NewSource(p.Seed))
	tbl, err := eng.LoadTable("rt", schema, func(add func(scanshare.Tuple) error) error {
		for i := 0; i < rows; i++ {
			err := add(scanshare.Tuple{
				scanshare.Int64(int64(i)),
				scanshare.Float64(rng.Float64()),
				scanshare.String(fmt.Sprintf("tag-%02d", rng.Intn(40))),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	return eng, tbl, poolPages, nil
}
