// Command scanshare-trace answers "where did this query's time go?" from a
// trace journal. It reads JSONL journals written by -rt-trace (scanshare-bench,
// scanshare-serve) or a flight-recorder dump, reconstructs every query's span
// tree from the span open/close events, and prints per-query trees plus an
// aggregate critical-path breakdown: queue, compile, throttle, pool-wait,
// physical read, push delivery, fold, and residual processing time.
//
// Usage:
//
//	scanshare-trace [flags] journal.jsonl [more.jsonl ...]
//	scanshare-trace [flags] < journal.jsonl
//
// Multiple journals concatenate (span IDs are process-wide, so files from one
// process compose; files from different processes may collide and should be
// inspected separately).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"scanshare/internal/trace"
)

func main() {
	trees := flag.Int("trees", 5, "print the N slowest query trees (-1 = all, 0 = none)")
	traceID := flag.Int64("trace", 0, "print only this trace ID's tree (0 = no filter)")
	perQuery := flag.Bool("per-query", false, "print one breakdown table per query instead of trees")
	aggregate := flag.Bool("aggregate", true, "print the aggregate breakdown over all queries")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: scanshare-trace [flags] [journal.jsonl ...]\n\nReads JSONL trace journals (or stdin) and prints span trees and\ncritical-path latency breakdowns.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var evs []trace.Event
	skipped := 0
	if flag.NArg() == 0 {
		var err error
		evs, skipped, err = trace.DecodeJSONL(os.Stdin)
		if err != nil {
			fatalf("stdin: %v", err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatalf("%v", err)
		}
		fe, fs, err := trace.DecodeJSONL(f)
		f.Close()
		if err != nil {
			fatalf("%s: %v", path, err)
		}
		evs = append(evs, fe...)
		skipped += fs
	}

	asm := trace.Assemble(evs)
	if len(asm.Trees) == 0 {
		fmt.Printf("no span trees in %d events (%d non-event lines skipped)\n", len(evs), skipped)
		fmt.Println("hint: spans are emitted only when the run had a tracer (-rt-trace / serve -trace)")
		os.Exit(1)
	}

	if *traceID != 0 {
		var match *trace.SpanTree
		for _, t := range asm.Trees {
			if t.Trace == *traceID {
				match = t
				break
			}
		}
		if match == nil {
			fatalf("trace %d not found (%d trees in journal)", *traceID, len(asm.Trees))
		}
		fmt.Print(trace.RenderTree(match))
		fmt.Println()
		fmt.Print(trace.RenderBreakdown(match.Breakdown(), 1))
		return
	}

	fmt.Printf("%d events (%d skipped lines), %d query trees", len(evs), skipped, len(asm.Trees))
	if asm.Unclosed > 0 || asm.Orphans > 0 || asm.ExtraRoots > 0 {
		fmt.Printf(" — %d unclosed, %d orphaned, %d extra roots", asm.Unclosed, asm.Orphans, asm.ExtraRoots)
	}
	fmt.Println()
	fmt.Println()

	// Slowest queries first: the trees a latency investigation wants on top.
	byDur := make([]*trace.SpanTree, len(asm.Trees))
	copy(byDur, asm.Trees)
	sort.SliceStable(byDur, func(i, j int) bool {
		return byDur[i].Root.Dur() > byDur[j].Root.Dur()
	})

	n := *trees
	if n < 0 || n > len(byDur) {
		n = len(byDur)
	}
	if *perQuery {
		for _, t := range byDur[:n] {
			fmt.Printf("trace %d:\n", t.Trace)
			fmt.Print(trace.RenderBreakdown(t.Breakdown(), 1))
			fmt.Println()
		}
	} else {
		for _, t := range byDur[:n] {
			fmt.Print(trace.RenderTree(t))
			fmt.Println()
		}
	}

	if *aggregate {
		fmt.Print(trace.RenderBreakdown(asm.Aggregate(), len(asm.Trees)))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scanshare-trace: "+format+"\n", args...)
	os.Exit(1)
}
