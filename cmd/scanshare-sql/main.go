// Command scanshare-sql is a small SQL shell over the generated TPC-H-like
// database: type single-table SELECT statements and see results plus the
// scan-level cost (elapsed virtual time, physical reads, buffer hits).
//
//	scanshare-sql                                  # interactive shell
//	scanshare-sql 'SELECT count(*) FROM lineitem'  # one-shot
//	scanshare-sql -mode base ...                   # without scan sharing
//
// Statements submitted on one line separated by ';' run concurrently as one
// batch — overlap two scans of the same table and watch the sharing engine
// save reads:
//
//	> SELECT sum(l_extendedprice) FROM lineitem; SELECT count(*) FROM lineitem
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"flag"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/sql"
	"scanshare/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 42, "generation seed")
	buffer := flag.Float64("buffer", 0.05, "buffer pool as fraction of the database")
	modeName := flag.String("mode", "shared", `"shared" or "base"`)
	flag.Parse()

	mode := scanshare.Shared
	if *modeName == "base" {
		mode = scanshare.Baseline
	} else if *modeName != "shared" {
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeName)
		os.Exit(2)
	}

	gen := workload.GenConfig{ScaleFactor: *scale, Seed: *seed}
	eng := scanshare.MustNew(scanshare.Config{
		BufferPoolPages: workload.BufferPoolFor(gen, 0, *buffer),
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: 8},
	})
	db, err := workload.Load(eng, gen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if args := flag.Args(); len(args) > 0 {
		if err := runBatch(eng, mode, strings.Join(args, " ")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("scanshare SQL shell — %d pages across %d tables, %s mode\n",
		db.TotalPages(), len(db.Tables()), mode)
	fmt.Println(`tables: lineitem, orders, part, customer — \q quits, ';' joins concurrent statements`)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch line {
		case "":
			continue
		case `\q`, "exit", "quit":
			return
		}
		if err := runBatch(eng, mode, line); err != nil {
			fmt.Println(err)
		}
	}
}

// runBatch compiles the ';'-separated statements and runs them concurrently.
func runBatch(eng *scanshare.Engine, mode scanshare.Mode, line string) error {
	var jobs []scanshare.Job
	var stmts []string
	for _, stmt := range strings.Split(line, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		q, err := eng.SQL(stmt)
		if err != nil {
			return err
		}
		jobs = append(jobs, scanshare.Job{Query: q, Stream: len(jobs)})
		stmts = append(stmts, stmt)
	}
	if len(jobs) == 0 {
		return nil
	}
	rep, err := eng.Run(mode, jobs)
	if err != nil {
		return err
	}
	for i, res := range rep.Results {
		if len(rep.Results) > 1 {
			fmt.Printf("-- [%d] %s\n", i+1, stmts[i])
		}
		printRows(res.Rows)
		fmt.Printf("(%d row(s), %s, %d physical reads, %d buffered)\n",
			len(res.Rows), metrics.FormatDuration(res.Elapsed()),
			res.PhysicalReads, res.LogicalReads-res.PhysicalReads)
	}
	if len(jobs) > 1 {
		line := fmt.Sprintf("batch: %s end to end, %d disk reads, %.0f%% pool hits",
			metrics.FormatDuration(rep.Makespan), rep.Disk.Reads, rep.Pool.HitRatio()*100)
		if rep.Pool.Evictions > 0 {
			line += fmt.Sprintf(", %d evictions (%s)", rep.Pool.Evictions, rep.Pool.EvictionBreakdown())
		}
		fmt.Println(line)
	}
	return nil
}

const maxRows = 20

func printRows(rows []scanshare.Tuple) {
	for i, row := range rows {
		if i == maxRows {
			fmt.Printf("... (%d more)\n", len(rows)-maxRows)
			return
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = renderValue(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}

func renderValue(v scanshare.Value) string {
	switch v.Kind {
	case scanshare.KindInt64:
		return fmt.Sprint(v.I)
	case scanshare.KindFloat64:
		return fmt.Sprintf("%.4f", v.F)
	case scanshare.KindString:
		return v.S
	case scanshare.KindDate:
		return sql.FormatDate(v.I)
	default:
		return v.GoString()
	}
}
