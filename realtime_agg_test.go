package scanshare_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"scanshare"
)

// aggQueries builds N identical GROUP BY queries over tbl plus one filtered
// variant (which can never share state).
func aggQueries(tbl *scanshare.Table, n int) []scanshare.RealtimeAggQuery {
	queries := make([]scanshare.RealtimeAggQuery, 0, n+1)
	for i := 0; i < n; i++ {
		queries = append(queries, scanshare.RealtimeAggQuery{
			Scan:    scanshare.RealtimeScan{Table: tbl, StartDelay: time.Duration(i) * 200 * time.Microsecond},
			GroupBy: []string{"flag"},
			Aggs: []scanshare.RealtimeAggSpec{
				{Kind: scanshare.Count},
				{Kind: scanshare.Sum, Column: "price"},
				{Kind: scanshare.Min, Column: "id"},
				{Kind: scanshare.Max, Column: "id"},
				{Kind: scanshare.Avg, Column: "price"},
			},
		})
	}
	queries = append(queries, scanshare.RealtimeAggQuery{
		Scan:    scanshare.RealtimeScan{Table: tbl},
		GroupBy: []string{"flag"},
		Aggs:    []scanshare.RealtimeAggSpec{{Kind: scanshare.Count}},
		Filter: func(t scanshare.Tuple) bool {
			return t[0].Kind == scanshare.KindInt64 && t[0].I%2 == 0
		},
	})
	return queries
}

func runAggMode(t *testing.T, push, share bool) (*scanshare.RealtimeAggReport, int) {
	t.Helper()
	const queries = 6
	eng, tbl := newEngine(t, 512, 4000)
	if tbl.NumPages() >= 512-32 {
		t.Fatalf("table (%d pages) too large for the resident-pool invariant", tbl.NumPages())
	}
	rep, err := eng.RunRealtimeAggregates(context.Background(),
		scanshare.RealtimeOptions{PushDelivery: push}, aggQueries(tbl, queries), share)
	if err != nil {
		t.Fatalf("push=%v share=%v: %v", push, share, err)
	}
	if len(rep.Rows) != queries+1 {
		t.Fatalf("%d row sets for %d queries", len(rep.Rows), queries+1)
	}
	return rep, tbl.NumPages()
}

// TestRunRealtimeAggregatesParity is the engine-level differential proof: N
// concurrent GROUP BY queries produce byte-identical result sets whether
// they pull privately, push into private tables, or push into one shared
// striped table — and in push mode the N queries issue one physical scan.
func TestRunRealtimeAggregatesParity(t *testing.T) {
	const queries = 6
	pullPrivate, tblPages := runAggMode(t, false, false)
	pushPrivate, _ := runAggMode(t, true, false)
	pushShared, _ := runAggMode(t, true, true)

	// All queries of the same shape agree within a run, and all three
	// execution strategies agree byte for byte.
	ref := scanshare.EncodeAggRows(pullPrivate.Rows[0])
	if len(ref) == 0 {
		t.Fatal("reference result set is empty")
	}
	for name, rep := range map[string]*scanshare.RealtimeAggReport{
		"pull/private": pullPrivate, "push/private": pushPrivate, "push/shared": pushShared,
	} {
		for q := 0; q < queries; q++ {
			if got := scanshare.EncodeAggRows(rep.Rows[q]); !bytes.Equal(got, ref) {
				t.Errorf("%s query %d: result set differs from reference\n got: %q\nwant: %q",
					name, q, got, ref)
			}
		}
	}
	// The filtered query never shares but must agree across modes too.
	filtered := scanshare.EncodeAggRows(pullPrivate.Rows[queries])
	for name, rep := range map[string]*scanshare.RealtimeAggReport{
		"push/private": pushPrivate, "push/shared": pushShared,
	} {
		if got := scanshare.EncodeAggRows(rep.Rows[queries]); !bytes.Equal(got, filtered) {
			t.Errorf("%s filtered query: result set differs from pull reference", name)
		}
	}

	// Shared-state accounting: the identical-shape queries folded into one
	// table; the filtered one stayed private.
	if pushShared.SharedAggFolds == 0 {
		t.Error("push/shared recorded no shared folds")
	}
	if pushShared.Counters.SharedAggFolds != pushShared.SharedAggFolds {
		t.Errorf("collector shared folds %d != report %d",
			pushShared.Counters.SharedAggFolds, pushShared.SharedAggFolds)
	}
	if pullPrivate.SharedAggFolds != 0 || pushPrivate.SharedAggFolds != 0 {
		t.Errorf("private runs recorded shared folds: pull %d push %d",
			pullPrivate.SharedAggFolds, pushPrivate.SharedAggFolds)
	}

	// One physical scan: with the whole table resident the push run's pool
	// misses exactly one lap over the table, however many consumers fed.
	misses := func(rep *scanshare.RealtimeAggReport) int64 {
		var n int64
		for _, p := range rep.Pools {
			n += p.Misses
		}
		return n
	}
	if m := misses(pushShared); m != int64(tblPages) {
		t.Errorf("push/shared pool misses %d, want exactly the table's %d pages", m, tblPages)
	}
	if m := misses(pushPrivate); m != int64(tblPages) {
		t.Errorf("push/private pool misses %d, want exactly the table's %d pages", m, tblPages)
	}
	if mp, ms := misses(pullPrivate), misses(pushShared); ms > mp {
		t.Errorf("push misses %d exceed pull misses %d", ms, mp)
	}

	if pushShared.Counters.BatchesPushed == 0 {
		t.Error("push run recorded no pushed batches")
	}
	if pullPrivate.Counters.BatchesPushed != 0 {
		t.Error("pull run recorded pushed batches")
	}
}

// TestRunRealtimeAggregatesValidation covers the argument errors.
func TestRunRealtimeAggregatesValidation(t *testing.T) {
	eng, tbl := newEngine(t, 64, 200)
	ctx := context.Background()
	if _, err := eng.RunRealtimeAggregates(ctx, scanshare.RealtimeOptions{}, nil, false); err == nil {
		t.Error("no queries accepted")
	}
	if _, err := eng.RunRealtimeAggregates(ctx, scanshare.RealtimeOptions{},
		[]scanshare.RealtimeAggQuery{{GroupBy: []string{"flag"}}}, false); err == nil {
		t.Error("query without table accepted")
	}
	if _, err := eng.RunRealtimeAggregates(ctx, scanshare.RealtimeOptions{},
		[]scanshare.RealtimeAggQuery{{Scan: scanshare.RealtimeScan{Table: tbl}, GroupBy: []string{"nope"}}}, false); err == nil {
		t.Error("unknown group-by column accepted")
	}
	if _, err := eng.RunRealtimeAggregates(ctx, scanshare.RealtimeOptions{},
		[]scanshare.RealtimeAggQuery{{Scan: scanshare.RealtimeScan{Table: tbl}}}, false); err == nil {
		t.Error("query computing nothing accepted")
	}
	if _, err := eng.RunRealtimeAggregates(ctx, scanshare.RealtimeOptions{},
		[]scanshare.RealtimeAggQuery{{
			Scan: scanshare.RealtimeScan{Table: tbl},
			Aggs: []scanshare.RealtimeAggSpec{{Kind: scanshare.Sum, Column: "nope"}},
		}}, false); err == nil {
		t.Error("unknown aggregate column accepted")
	}
}
