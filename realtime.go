package scanshare

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"scanshare/internal/disk"
	"scanshare/internal/fault"
	"scanshare/internal/metrics"
	"scanshare/internal/realtime"
	"scanshare/internal/telemetry"
	"scanshare/internal/trace"
)

// RealtimeScan describes one scan stream for RunRealtime: a sequential read
// of a table range executed by a real goroutine in wall-clock time.
type RealtimeScan struct {
	// Table to scan. Required.
	Table *Table
	// StartPage and EndPage bound the scan to [StartPage, EndPage) in
	// table-relative pages; EndPage == 0 means "to the end of the table".
	StartPage, EndPage int
	// EstimatedDuration seeds the SSM's speed estimate and bounds the
	// throttling fairness cap. Zero means unknown.
	EstimatedDuration time.Duration
	// Importance scales the scan's throttling allowance.
	Importance Importance
	// StartDelay staggers the scan's start.
	StartDelay time.Duration
	// StopAfterPages, when positive, terminates the scan early after that
	// many pages — a query abandoned mid-flight.
	StopAfterPages int
	// PageDelay models per-page processing cost as a wall-clock sleep.
	PageDelay time.Duration
	// OnPage, when set, receives every page the scan processes — in
	// footprint order, from the scan's own goroutine (pull mode) or as
	// pushed batches arrive (RealtimeOptions.PushDelivery). data is an
	// immutable buffer frame reference: consumers must not mutate it but
	// may retain it. Degraded pages are skipped.
	OnPage func(pageNo int, data []byte)
	// Span, when valid, parents the scan's span tree under an existing
	// trace — the server sets it to attribute a scan to its request. When
	// zero and a tracer is active, RunRealtime allocates a fresh root so
	// every traced scan still produces a complete tree.
	Span trace.SpanContext
}

// FaultKind classifies an injected read failure. The kinds mirror
// internal/fault: an outright error, a latency spike, an indefinite stall
// (unstuck only by ReadTimeout or cancellation), and a torn (short) read.
type FaultKind int

const (
	FaultError FaultKind = iota
	FaultLatency
	FaultStall
	FaultTorn
)

// FaultRule describes one class of injected read fault. Whether a given read
// attempt misbehaves is a pure function of (plan seed, rule index, page,
// attempt), so the same plan replays the same failure schedule on every run.
type FaultRule struct {
	// Kind selects the failure mode.
	Kind FaultKind
	// Table, when set, scopes the rule to that table and makes FirstPage
	// and LastPage table-relative. When nil the bounds are device-absolute
	// page IDs.
	Table *Table
	// FirstPage and LastPage bound the rule, inclusive. LastPage == 0
	// means "to the end of the table" (with Table set) or "no upper bound".
	FirstPage, LastPage int
	// Prob is the per-(page, attempt) probability in (0, 1] that the rule
	// fires.
	Prob float64
	// UntilAttempt, when positive, restricts the rule to read attempts
	// < UntilAttempt, so retries past it succeed ("fail then recover").
	UntilAttempt int
	// Latency is the injected delay for FaultLatency rules.
	Latency time.Duration
}

// FaultPlan is a declarative, seeded fault schedule for RunRealtime. Rules
// are checked in order; the first matching rule that clears its probability
// roll fires.
type FaultPlan struct {
	Seed  int64
	Rules []FaultRule
}

// FaultStats summarizes the faults a plan actually injected during one run.
type FaultStats struct {
	// Reads counts read attempts that reached the fault layer.
	Reads int64
	// InjectedErrors, LatencyEvents, Stalls, and TornReads count served
	// faults by kind.
	InjectedErrors int64
	LatencyEvents  int64
	Stalls         int64
	TornReads      int64
	// InjectedLatency is the total delay added by latency faults.
	InjectedLatency time.Duration
}

// RealtimeOptions tunes RunRealtime.
type RealtimeOptions struct {
	// PrefetchWorkers sets the read-ahead worker pool size; 0 disables
	// prefetching.
	PrefetchWorkers int
	// PrefetchQueueExtents bounds the prefetch request queue; 0 picks a
	// default proportional to the worker count.
	PrefetchQueueExtents int
	// PageReadDelay is a wall-clock sleep charged per physical page read,
	// standing in for device transfer time (the virtual-time disk cost
	// model does not apply in this mode).
	PageReadDelay time.Duration

	// PushDelivery switches scan execution from pull to push: one reader
	// goroutine per scanned table drains the page range once per demand
	// lap and fans immutable page-batch references out to the scans, which
	// become subscribers (group membership by subscription, throttling by
	// flow control). Results are observationally identical to pull mode;
	// PrefetchWorkers is ignored since the reader is the read-ahead.
	PushDelivery bool
	// PushBatchPages is the push-mode delivery batch size in pages; 0
	// picks the sharing config's prefetch extent.
	PushBatchPages int
	// SubscriberQueueBatches bounds each subscriber's delivery channel in
	// batches; 0 picks a default. Smaller values couple the group tighter.
	SubscriberQueueBatches int
	// PushStallBudget caps the total time the push reader may spend
	// blocked on one subscriber's full channel before demoting it to
	// pulling its remainder itself; 0 derives the cap from the fairness
	// throttle fraction and the scan's estimated duration.
	PushStallBudget time.Duration

	// Faults, when non-nil, injects the plan's deterministic read failures
	// underneath the page store.
	Faults *FaultPlan
	// ReadTimeout bounds each page-read attempt; 0 means no bound. A
	// timeout is required to survive FaultStall rules.
	ReadTimeout time.Duration
	// MaxReadRetries is how many times a failed page read is retried with
	// exponential backoff before the failure is surfaced; 0 disables
	// retries.
	MaxReadRetries int
	// RetryBackoff and MaxRetryBackoff shape the exponential backoff
	// between retries; zero values pick defaults.
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	// DetachAfterFailures detaches a scan from its group's coordination
	// after that many consecutive failed read attempts; it rejoins on the
	// first successful read. 0 disables detaching.
	DetachAfterFailures int
	// ContinueOnPageFailure makes scans skip pages whose reads keep
	// failing after all retries (counting them as DegradedPages) instead
	// of aborting the scan.
	ContinueOnPageFailure bool

	// DisableReadCoalescing turns off singleflight read coalescing, which
	// is on by default: a scan missing on a page that another scan (or a
	// prefetch worker) is already reading waits on that read and shares
	// its outcome instead of sleep-polling, so scan-group members never
	// issue duplicate physical I/O for the same page. Disable it to
	// reproduce the pre-coalescing busy-poll behavior in comparisons.
	DisableReadCoalescing bool

	// DisablePredictiveFeed stops scans from feeding their footprint,
	// position, and speed to a scan-aware buffer pool (Config.PoolPolicy
	// PoolPolicyPredictive). The feed is on by default whenever the pool
	// consumes it and a no-op otherwise; disabling it isolates the
	// predictive policy's LRU-degenerate behavior in experiments.
	DisablePredictiveFeed bool

	// Collector, when non-nil, receives the run's activity counters
	// instead of an internal throwaway one, so live observers — the
	// telemetry sampler, the Prometheus exporter, expvar — can watch the
	// run as it happens and a caller can Reset and reuse one collector
	// across runs. The report's Counters snapshot is taken from it at the
	// end of the run either way.
	Collector *metrics.Collector

	// Tracer, when non-nil, journals the run's structured events — scan
	// lifecycle, group merges and splits, leader/trailer handoffs,
	// throttle waits, detach/rejoin, evictions with priority, and page
	// failures — into its event ring. The tracer is attached to every
	// pool and sharing manager for the duration of the call and detached
	// afterwards (an Engine.AttachTracer registration, if any, is
	// restored).
	Tracer *trace.Tracer
}

// RealtimeScanResult is the per-scan outcome of a RunRealtime call.
type RealtimeScanResult = realtime.ScanResult

// RealtimeReport is the outcome of one RunRealtime call.
type RealtimeReport struct {
	// Results holds one entry per input scan, index-aligned.
	Results []RealtimeScanResult
	// Wall is the wall-clock duration of the whole run.
	Wall time.Duration
	// Counters aggregates the run's page and scan activity across pools.
	Counters metrics.CollectorStats
	// Pools breaks buffer activity down per pool for this run.
	Pools map[string]PoolStats
	// Sharing summarizes SSM activity (cumulative over the engine's
	// lifetime, like Report.Sharing).
	Sharing SharingStats
	// Faults reports what the fault plan injected; zero when no plan was
	// set.
	Faults FaultStats
}

// BenchResult converts the report into the persisted benchmark shape.
// params records the workload knobs (the report cannot reconstruct them);
// the caller fills in Name/GitRev/RecordedAt before writing.
func (r *RealtimeReport) BenchResult(params telemetry.BenchParams) telemetry.BenchResult {
	out := telemetry.BenchResult{
		Params:              params,
		WallSeconds:         r.Wall.Seconds(),
		PagesRead:           r.Counters.PagesRead,
		HitRatio:            r.Counters.HitRatio(),
		ThrottleEvents:      r.Counters.ThrottleEvents,
		ThrottleWaitSeconds: r.Counters.ThrottleWait.Seconds(),
		ReadsCoalesced:      r.Counters.ReadsCoalesced,
		BatchesPushed:       r.Counters.BatchesPushed,
		SubscriberStalls:    r.Counters.SubscriberStalls,
		PushDemotions:       r.Counters.PushDemotions,
		SharedAggFolds:      r.Counters.SharedAggFolds,
		Histograms: map[string]telemetry.HistSummary{
			"page_read":      telemetry.SummarizeHist(r.Counters.PageReadLatency),
			"throttle_wait":  telemetry.SummarizeHist(r.Counters.ThrottleWaitDist),
			"prefetch_delay": telemetry.SummarizeHist(r.Counters.PrefetchQueueDelay),
		},
	}
	if r.Wall > 0 {
		out.PagesPerSec = float64(r.Counters.PagesRead) / r.Wall.Seconds()
	}
	for _, p := range r.Pools {
		out.Evictions += p.Evictions
		out.OptimisticHits += p.OptimisticHits
		out.OptimisticRetries += p.OptimisticRetries
		out.OptimisticFallbacks += p.OptimisticFallbacks
	}
	var pool, read, delivery time.Duration
	for i := range r.Results {
		pool += r.Results[i].PoolWait
		read += r.Results[i].ReadWait
		delivery += r.Results[i].DeliveryWait
	}
	bd := map[string]float64{}
	for _, c := range []struct {
		name string
		d    time.Duration
	}{
		{"throttle", r.Counters.ThrottleWait},
		{"pool-wait", pool},
		{"read", read},
		{"delivery", delivery},
	} {
		if c.d > 0 {
			bd[c.name] = c.d.Seconds()
		}
	}
	if len(bd) > 0 {
		out.BreakdownSeconds = bd
	}
	out.TraceDropped = r.Counters.TraceDropped
	return out
}

// compilePlan translates the public fault plan into the internal one,
// resolving table-relative page bounds to device pages.
func (e *Engine) compilePlan(p *FaultPlan) (fault.Plan, error) {
	out := fault.Plan{Seed: p.Seed}
	for i, r := range p.Rules {
		ir := fault.Rule{
			Kind:         fault.Kind(r.Kind),
			FirstPage:    disk.PageID(r.FirstPage),
			LastPage:     disk.PageID(r.LastPage),
			Prob:         r.Prob,
			UntilAttempt: r.UntilAttempt,
			Latency:      r.Latency,
		}
		if t := r.Table; t != nil {
			if t.eng != e {
				return fault.Plan{}, fmt.Errorf("scanshare: fault rule %d targets a table of another engine", i)
			}
			if r.FirstPage < 0 || r.FirstPage >= t.NumPages() ||
				(r.LastPage != 0 && (r.LastPage < r.FirstPage || r.LastPage >= t.NumPages())) {
				return fault.Plan{}, fmt.Errorf("scanshare: fault rule %d page range [%d,%d] outside table %q (%d pages)",
					i, r.FirstPage, r.LastPage, t.Name(), t.NumPages())
			}
			first := t.tbl.FirstPage()
			ir.FirstPage = first + disk.PageID(r.FirstPage)
			last := r.LastPage
			if last == 0 {
				last = t.NumPages() - 1
			}
			ir.LastPage = first + disk.PageID(last)
		}
		out.Rules = append(out.Rules, ir)
	}
	if err := out.Validate(); err != nil {
		return fault.Plan{}, fmt.Errorf("scanshare: %w", err)
	}
	return out, nil
}

// rtStore adapts the simulated device to the realtime page-store interface:
// contents come from the same backing pages the virtual-time mode reads, but
// through ReadRaw, so wall-clock reads never disturb the device's
// virtual-time head position or busy window.
type rtStore struct {
	dev   *disk.Device
	delay time.Duration
}

func (s rtStore) ReadPage(pid disk.PageID) ([]byte, error) {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return s.dev.ReadRaw(pid)
}

// RunRealtime executes the scans as concurrent goroutines in wall-clock
// time — the realtime counterpart of the virtual-time Run. Scans go through
// the same buffer pools and scan sharing managers as Shared-mode queries:
// placements, grouping, priority hints, and throttling all apply, with
// throttle advice honored as real context-aware sleeps. Cancelling ctx stops
// every scan at its next page boundary; cancelled scans are reported Stopped,
// not failed.
//
// Scans only coordinate within their table's buffer pool, as in Run; scans
// of tables in different pools proceed independently and concurrently.
//
// The engine's virtual clock does not advance: a virtual-time Run may follow
// a realtime one on the same engine (the pools keep their contents, which is
// the warm-database behavior Run documents).
func (e *Engine) RunRealtime(ctx context.Context, opts RealtimeOptions, scans []RealtimeScan) (*RealtimeReport, error) {
	if len(scans) == 0 {
		return nil, errors.New("scanshare: RunRealtime with no scans")
	}
	for i, sc := range scans {
		if sc.Table == nil {
			return nil, fmt.Errorf("scanshare: realtime scan %d has no table", i)
		}
		if sc.Table.eng != e {
			return nil, fmt.Errorf("scanshare: realtime scan %d targets a table of another engine", i)
		}
	}

	col := opts.Collector
	if col == nil {
		col = new(metrics.Collector)
	}
	var store realtime.PageStore = rtStore{dev: e.dev, delay: opts.PageReadDelay}
	var faultStore *fault.Store
	if opts.Faults != nil {
		plan, err := e.compilePlan(opts.Faults)
		if err != nil {
			return nil, err
		}
		faultStore, err = fault.NewStore(store, plan)
		if err != nil {
			return nil, fmt.Errorf("scanshare: %w", err)
		}
		store = faultStore
	}
	poolsBefore := e.poolStatsSnapshot()

	// Resolve the run's tracer: an explicit opts.Tracer is attached for the
	// duration of the call; otherwise a tracer already attached to the
	// engine (the serve path) is used as-is. tr may be nil — every span
	// method is nil-safe.
	tr := opts.Tracer
	if tr != nil {
		prev := e.tracer
		e.AttachTracer(tr)
		defer e.AttachTracer(prev)
	} else {
		tr = e.tracer
	}

	// Group the scans by buffer pool; each pool gets its own runner, all
	// runners execute concurrently.
	type poolBatch struct {
		rt      *poolRT
		specs   []realtime.ScanSpec
		indices []int // spec j came from scans[indices[j]]
	}
	batches := make(map[string]*poolBatch)
	for i, sc := range scans {
		rt := sc.Table.rt
		b := batches[rt.name]
		if b == nil {
			b = &poolBatch{rt: rt}
			batches[rt.name] = b
		}
		span := sc.Span
		if !span.Valid() {
			// Root allocation is a no-op (zero context) when no tracer is
			// active, so untraced runs stay span-free.
			span = tr.Root()
		}
		first := sc.Table.tbl.FirstPage()
		b.specs = append(b.specs, realtime.ScanSpec{
			Table:             sc.Table.coreTableID(),
			TablePages:        sc.Table.NumPages(),
			StartPage:         sc.StartPage,
			EndPage:           sc.EndPage,
			PageID:            func(pageNo int) disk.PageID { return first + disk.PageID(pageNo) },
			EstimatedDuration: sc.EstimatedDuration,
			Importance:        sc.Importance,
			StartDelay:        sc.StartDelay,
			StopAfterPages:    sc.StopAfterPages,
			PageDelay:         sc.PageDelay,
			OnPage:            sc.OnPage,
			Span:              span,
		})
		b.indices = append(b.indices, i)
	}

	report := &RealtimeReport{
		Results: make([]RealtimeScanResult, len(scans)),
		Pools:   make(map[string]PoolStats, len(batches)),
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	bi := 0
	for _, b := range batches {
		b, bi := b, bi
		runner, err := realtime.NewRunner(realtime.Config{
			Pool:                   b.rt.pool,
			Manager:                b.rt.ssm,
			Store:                  store,
			Collector:              col,
			PrefetchWorkers:        opts.PrefetchWorkers,
			PrefetchQueueExtents:   opts.PrefetchQueueExtents,
			ReadTimeout:            opts.ReadTimeout,
			MaxReadRetries:         opts.MaxReadRetries,
			RetryBackoff:           opts.RetryBackoff,
			MaxRetryBackoff:        opts.MaxRetryBackoff,
			DetachAfterFailures:    opts.DetachAfterFailures,
			ContinueOnPageFailure:  opts.ContinueOnPageFailure,
			CoalesceReads:          !opts.DisableReadCoalescing,
			DisablePoolFeed:        opts.DisablePredictiveFeed,
			Tracer:                 tr,
			PushDelivery:           opts.PushDelivery,
			PushBatchPages:         opts.PushBatchPages,
			SubscriberQueueBatches: opts.SubscriberQueueBatches,
			PushStallBudget:        opts.PushStallBudget,
		})
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, err := runner.Run(ctx, b.specs)
			if err != nil {
				errs[bi] = fmt.Errorf("pool %q: %w", b.rt.name, err)
			}
			for j, res := range results {
				res.Scan = b.indices[j]
				report.Results[b.indices[j]] = res
			}
		}()
		bi++
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	report.Wall = time.Since(start)
	if tr != nil {
		col.SetTraceDropped(int64(tr.Dropped()))
	}
	report.Counters = col.Snapshot()
	if faultStore != nil {
		c := faultStore.Counters()
		report.Faults = FaultStats{
			Reads:           c.Reads,
			InjectedErrors:  c.InjectedErrors,
			LatencyEvents:   c.LatencyEvents,
			Stalls:          c.Stalls,
			TornReads:       c.TornReads,
			InjectedLatency: c.InjectedLatency,
		}
	}
	for name, rt := range e.pools {
		if delta := poolDeltaShards(rt.pool.ShardStats(), poolsBefore[name]); delta.LogicalReads > 0 || delta.Evictions > 0 {
			report.Pools[name] = delta
		}
		report.Sharing = report.Sharing.add(sharingStats(rt.ssm.Stats()))
	}
	return report, nil
}
