package scanshare

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"scanshare/internal/exec"
	"scanshare/internal/metrics"
	"scanshare/internal/trace"
)

// RealtimeAggSpec is one aggregate column of a realtime GROUP BY consumer:
// a function over a named table column (the column is ignored for Count).
type RealtimeAggSpec struct {
	Kind   AggKind
	Column string
}

// RealtimeAggQuery is one GROUP BY query executed as a realtime scan
// consumer: the scan delivers pages, the query folds their tuples into
// aggregation state as they arrive.
type RealtimeAggQuery struct {
	// Scan is the underlying table scan. Scan.OnPage may be set and is
	// chained before the aggregation fold.
	Scan RealtimeScan
	// GroupBy names the grouping columns (may be empty for a plain
	// aggregate).
	GroupBy []string
	// Aggs are the aggregate output columns.
	Aggs []RealtimeAggSpec
	// Filter, when set, drops tuples before aggregation.
	Filter func(Tuple) bool
}

// RealtimeAggReport is the outcome of RunRealtimeAggregates.
type RealtimeAggReport struct {
	*RealtimeReport
	// Rows holds each query's result rows, index-aligned with the input
	// queries, sorted deterministically by group key encoding.
	Rows [][]Tuple
	// SharedAggFolds is how many tuple folds went into shared (cross-
	// query) aggregation state; zero when sharing was off or no query
	// shape repeated.
	SharedAggFolds int64
}

// aggShapeKey identifies queries that may share aggregation state: same
// table, same grouping, same aggregates, and no private filter.
func aggShapeKey(q *RealtimeAggQuery, groupBy []int, aggs []exec.AggSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "t%d|s%d..%d|", q.Scan.Table.coreTableID(), q.Scan.StartPage, q.Scan.EndPage)
	for _, o := range groupBy {
		fmt.Fprintf(&b, "g%d,", o)
	}
	for _, a := range aggs {
		fmt.Fprintf(&b, "a%d:%d,", a.Kind, a.Ordinal)
	}
	return b.String()
}

// RunRealtimeAggregates executes N GROUP BY queries as consumers of
// realtime scans: each query's tuples are folded into aggregation state
// directly from the pages its scan delivers. With opts.PushDelivery the N
// scans of one table collapse into one physical push stream, and with
// shareState the aggregation state collapses too — queries of identical
// shape (same table, footprint, grouping, aggregates, and no filter) fold
// into one mutex-striped shared hash table instead of N private ones, so
// both the page stream and the group state exist once per table.
//
// Result rows are deterministic (sorted by group key encoding) and
// identical across delivery modes and sharing settings.
func (e *Engine) RunRealtimeAggregates(ctx context.Context, opts RealtimeOptions, queries []RealtimeAggQuery, shareState bool) (*RealtimeAggReport, error) {
	if len(queries) == 0 {
		return nil, errors.New("scanshare: RunRealtimeAggregates with no queries")
	}
	if opts.Collector == nil {
		opts.Collector = new(metrics.Collector)
	}

	// Resolve the tracer the run will use (RunRealtime applies the same
	// rule) so fold work can be attributed to each scan's span. Roots are
	// allocated here, before the OnPage chain is built, because the fold
	// wrapper needs the scan's span identity.
	tr := opts.Tracer
	if tr == nil {
		tr = e.tracer
	}

	consumers := make([]*exec.GroupByConsumer, len(queries))
	states := make(map[string]*exec.SharedAggState)
	scans := make([]RealtimeScan, len(queries))
	foldWait := make([]time.Duration, len(queries))
	for i := range queries {
		q := &queries[i]
		if q.Scan.Table == nil {
			return nil, fmt.Errorf("scanshare: aggregate query %d has no table", i)
		}
		schema := q.Scan.Table.Schema()
		groupBy := make([]int, len(q.GroupBy))
		for j, name := range q.GroupBy {
			ord, err := schema.Ordinal(name)
			if err != nil {
				return nil, fmt.Errorf("scanshare: aggregate query %d: %w", i, err)
			}
			groupBy[j] = ord
		}
		aggs := make([]exec.AggSpec, len(q.Aggs))
		for j, a := range q.Aggs {
			spec := exec.AggSpec{Kind: a.Kind}
			if a.Kind != exec.AggCount {
				ord, err := schema.Ordinal(a.Column)
				if err != nil {
					return nil, fmt.Errorf("scanshare: aggregate query %d: %w", i, err)
				}
				spec.Ordinal = ord
			}
			aggs[j] = spec
		}
		if len(groupBy) == 0 && len(aggs) == 0 {
			return nil, fmt.Errorf("scanshare: aggregate query %d computes nothing", i)
		}

		c := &exec.GroupByConsumer{Schema: schema, Pred: q.Filter, GroupBy: groupBy, Aggs: aggs}
		// Sharing needs identical work per tuple: a private filter or an
		// early stop would make the shared rows diverge from what this
		// query would have computed alone.
		if shareState && q.Filter == nil && q.Scan.StopAfterPages == 0 {
			key := aggShapeKey(q, groupBy, aggs)
			st := states[key]
			if st == nil {
				var err error
				st, err = exec.NewSharedAggState(groupBy, aggs, 0)
				if err != nil {
					return nil, fmt.Errorf("scanshare: aggregate query %d: %w", i, err)
				}
				states[key] = st
			}
			c.Shared = st
		}
		consumers[i] = c

		scan := q.Scan
		if !scan.Span.Valid() {
			scan.Span = tr.Root()
		}
		fold := c.OnPage
		if scan.Span.Valid() {
			// Tracing is on: time each fold. One scan's OnPage calls are
			// sequential (scan goroutine in pull mode, consumer goroutine
			// in push mode), so a plain per-query accumulator suffices;
			// the run's WaitGroup orders the final read after all writes.
			i, inner := i, fold
			fold = func(pageNo int, data []byte) {
				t0 := time.Now()
				inner(pageNo, data)
				foldWait[i] += time.Since(t0)
			}
		}
		if user := scan.OnPage; user != nil {
			scan.OnPage = func(pageNo int, data []byte) {
				user(pageNo, data)
				fold(pageNo, data)
			}
		} else {
			scan.OnPage = fold
		}
		scans[i] = scan
	}

	report, err := e.RunRealtime(ctx, opts, scans)
	if err != nil {
		return nil, err
	}
	// Report each query's total fold time as one span under its scan. The
	// tracer outlives RunRealtime's attach/detach, so emitting after the
	// run is fine; the assembler sums by kind and does not require children
	// to nest temporally inside their parent.
	for i, d := range foldWait {
		if d > 0 {
			tr.EmitSpan(scans[i].Span, trace.SpanFold, int64(i),
				int64(scans[i].Table.coreTableID()), d)
		}
	}

	out := &RealtimeAggReport{RealtimeReport: report, Rows: make([][]Tuple, len(queries))}
	sharedRows := make(map[*exec.SharedAggState][]Tuple)
	var errs []error
	for i, c := range consumers {
		if _, err := c.Results(); err != nil {
			errs = append(errs, fmt.Errorf("scanshare: aggregate query %d: %w", i, err))
			continue
		}
		if st := c.Shared; st != nil {
			rows, ok := sharedRows[st]
			if !ok {
				rows = st.Rows()
				sharedRows[st] = rows
			}
			out.Rows[i] = rows
			continue
		}
		rows, _ := c.Results()
		out.Rows[i] = rows
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}

	for st := range sharedRows {
		out.SharedAggFolds += st.Folds()
	}
	if out.SharedAggFolds > 0 {
		opts.Collector.SharedAggFolded(out.SharedAggFolds)
		out.Counters = opts.Collector.Snapshot()
	}
	return out, nil
}

// EncodeAggRows renders aggregation result rows as deterministic bytes for
// byte-identical comparison across delivery modes and sharing settings.
func EncodeAggRows(rows []Tuple) []byte { return exec.EncodeRows(rows) }
