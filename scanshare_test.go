package scanshare_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"scanshare"
)

func demoSchema() *scanshare.Schema {
	return scanshare.MustSchema(
		scanshare.Field{Name: "id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "price", Kind: scanshare.KindFloat64},
		scanshare.Field{Name: "flag", Kind: scanshare.KindString},
		scanshare.Field{Name: "day", Kind: scanshare.KindDate},
	)
}

// newEngine builds an engine with a small deterministic table of rows rows.
func newEngine(t *testing.T, poolPages, rows int) (*scanshare.Engine, *scanshare.Table) {
	t.Helper()
	eng, err := scanshare.New(scanshare.Config{
		BufferPoolPages: poolPages,
		Disk: scanshare.DiskConfig{
			SeekTime:        time.Millisecond,
			TransferPerPage: 100 * time.Microsecond,
			PageSize:        1024,
			SeriesBucket:    5 * time.Millisecond,
		},
		Sharing: scanshare.SharingConfig{PrefetchExtentPages: 4, MinSharePages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := eng.LoadTable("demo", demoSchema(), func(add func(scanshare.Tuple) error) error {
		for i := 0; i < rows; i++ {
			err := add(scanshare.Tuple{
				scanshare.Int64(int64(i)),
				scanshare.Float64(float64(i) * 1.5),
				scanshare.String([]string{"A", "B", "C"}[i%3]),
				scanshare.Date(int64(i % 365)),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, tbl
}

func TestNewValidation(t *testing.T) {
	if _, err := scanshare.New(scanshare.Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := scanshare.New(scanshare.Config{BufferPoolPages: -1}); err == nil {
		t.Error("negative pool accepted")
	}
	if _, err := scanshare.New(scanshare.Config{BufferPoolPages: 10, BusyRetryDelay: -1}); err == nil {
		t.Error("negative BusyRetryDelay accepted")
	}
}

func TestLoadAndLookup(t *testing.T) {
	eng, tbl := newEngine(t, 50, 500)
	if tbl.Name() != "demo" || tbl.NumTuples() != 500 || tbl.NumPages() <= 0 {
		t.Errorf("table = %s / %d tuples / %d pages", tbl.Name(), tbl.NumTuples(), tbl.NumPages())
	}
	got, err := eng.Lookup("demo")
	if err != nil || got.Name() != "demo" {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := eng.Lookup("ghost"); err == nil {
		t.Error("lookup of missing table succeeded")
	}
	if eng.DatabasePages() != tbl.NumPages() {
		t.Errorf("DatabasePages = %d, want %d", eng.DatabasePages(), tbl.NumPages())
	}
}

func TestLoadErrorsPropagate(t *testing.T) {
	eng, _ := newEngine(t, 50, 10)
	_, err := eng.LoadTable("broken", demoSchema(), func(add func(scanshare.Tuple) error) error {
		return fmt.Errorf("source exploded")
	})
	if err == nil || !strings.Contains(err.Error(), "source exploded") {
		t.Errorf("load error = %v", err)
	}
	if _, err := eng.LoadTable("demo", demoSchema(), func(func(scanshare.Tuple) error) error { return nil }); err == nil {
		t.Error("duplicate table name accepted")
	}
}

func TestRunSimpleQuery(t *testing.T) {
	eng, tbl := newEngine(t, 100, 600)
	q := scanshare.NewQuery(tbl).Named("count-all").CountAll()
	rep, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: q}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	res := rep.Results[0]
	if len(res.Rows) != 1 || res.Rows[0][0].I != 600 {
		t.Errorf("count = %v", res.Rows)
	}
	if res.Name != "count-all" {
		t.Errorf("name = %q", res.Name)
	}
	if res.Elapsed() <= 0 || rep.Makespan < res.Elapsed() {
		t.Errorf("timing inconsistent: elapsed=%v makespan=%v", res.Elapsed(), rep.Makespan)
	}
	if rep.Disk.Reads == 0 || rep.Pool.Misses == 0 {
		t.Errorf("device stats empty: %+v %+v", rep.Disk, rep.Pool)
	}
}

func TestModesReturnIdenticalRows(t *testing.T) {
	build := func() (*scanshare.Engine, *scanshare.Query) {
		eng, tbl := newEngine(t, 20, 800)
		// Integer aggregates only: float sums are order-dependent and a
		// wrap-around scan legitimately sums in a different order (see
		// the workload package's epsilon-based equivalence tests).
		q := scanshare.NewQuery(tbl).
			Where(func(tup scanshare.Tuple) bool { return tup[0].I%7 == 0 }).
			GroupBy("flag").
			CountAll().
			Aggregate(scanshare.Min, "id").
			Aggregate(scanshare.Max, "id")
		return eng, q
	}

	run := func(mode scanshare.Mode) []scanshare.QueryResult {
		eng, q := build()
		jobs := []scanshare.Job{
			{Query: q, Stream: 0},
			{Query: q, Start: 3 * time.Millisecond, Stream: 1},
			{Query: q, Start: 6 * time.Millisecond, Stream: 2},
		}
		rep, err := eng.Run(mode, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Results
	}

	base := run(scanshare.Baseline)
	shared := run(scanshare.Shared)
	if len(base) != len(shared) {
		t.Fatal("result count mismatch")
	}
	for i := range base {
		if fmt.Sprint(base[i].Rows) != fmt.Sprint(shared[i].Rows) {
			t.Errorf("job %d rows differ between modes:\nbase:   %v\nshared: %v",
				i, base[i].Rows, shared[i].Rows)
		}
	}
}

func TestSharedModeReducesPhysicalReads(t *testing.T) {
	run := func(mode scanshare.Mode) (int64, time.Duration) {
		eng, tbl := newEngine(t, 15, 2000)
		q := scanshare.NewQuery(tbl).CountAll()
		jobs := []scanshare.Job{
			{Query: q, Stream: 0},
			{Query: q, Start: 5 * time.Millisecond, Stream: 1},
			{Query: q, Start: 10 * time.Millisecond, Stream: 2},
		}
		rep, err := eng.Run(mode, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Disk.Reads, rep.Makespan
	}
	baseReads, baseTime := run(scanshare.Baseline)
	sharedReads, sharedTime := run(scanshare.Shared)
	if sharedReads >= baseReads {
		t.Errorf("reads: shared=%d base=%d", sharedReads, baseReads)
	}
	if sharedTime >= baseTime {
		t.Errorf("makespan: shared=%v base=%v", sharedTime, baseTime)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() string {
		eng, tbl := newEngine(t, 15, 1000)
		q := scanshare.NewQuery(tbl).Weight(3).CountAll()
		rep, err := eng.Run(scanshare.Shared, []scanshare.Job{
			{Query: q}, {Query: q, Start: 2 * time.Millisecond}, {Query: q, Start: 7 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Summary()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("non-deterministic run:\n%s\nvs\n%s", first, again)
		}
	}
}

func TestRunValidation(t *testing.T) {
	eng, tbl := newEngine(t, 50, 100)
	q := scanshare.NewQuery(tbl)
	if _, err := eng.Run(scanshare.Baseline, nil); err == nil {
		t.Error("empty job list accepted")
	}
	if _, err := eng.Run(scanshare.Baseline, []scanshare.Job{{}}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: q, Start: -1}}); err == nil {
		t.Error("negative start accepted")
	}
	other, otherTbl := newEngine(t, 50, 100)
	_ = other
	if _, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: scanshare.NewQuery(otherTbl)}}); err == nil {
		t.Error("cross-engine query accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	eng, tbl := newEngine(t, 50, 100)
	cases := map[string]*scanshare.Query{
		"bad range":         scanshare.NewQuery(tbl).Range(0.9, 0.1),
		"range above 1":     scanshare.NewQuery(tbl).Range(0, 1.5),
		"unknown column":    scanshare.NewQuery(tbl).Sum("nope"),
		"unknown group col": scanshare.NewQuery(tbl).GroupBy("nope").CountAll(),
		"agg not projected": scanshare.NewQuery(tbl).Select("id").Sum("price"),
	}
	for name, q := range cases {
		if _, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: q}}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRangeQueryScansSubset(t *testing.T) {
	eng, tbl := newEngine(t, 200, 1000)
	full, err := eng.Run(scanshare.Baseline, []scanshare.Job{
		{Query: scanshare.NewQuery(tbl).CountAll()},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2, tbl2 := newEngine(t, 200, 1000)
	half, err := eng2.Run(scanshare.Baseline, []scanshare.Job{
		{Query: scanshare.NewQuery(tbl2).Range(0.5, 1).CountAll()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if half.Results[0].PhysicalReads >= full.Results[0].PhysicalReads {
		t.Errorf("range scan read %d pages, full %d", half.Results[0].PhysicalReads, full.Results[0].PhysicalReads)
	}
	if half.Results[0].Rows[0][0].I >= full.Results[0].Rows[0][0].I {
		t.Errorf("range count %d >= full count %d", half.Results[0].Rows[0][0].I, full.Results[0].Rows[0][0].I)
	}
}

func TestProjectionAndLimit(t *testing.T) {
	eng, tbl := newEngine(t, 50, 300)
	q := scanshare.NewQuery(tbl).Select("flag", "id").Limit(5)
	rep, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: q}})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Results[0].Rows
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	if len(rows[0]) != 2 || rows[0][0].Kind != scanshare.KindString {
		t.Errorf("projected row = %#v", rows[0])
	}
}

func TestReportAggregations(t *testing.T) {
	eng, tbl := newEngine(t, 30, 1000)
	q1 := scanshare.NewQuery(tbl).Named("alpha").CountAll()
	q2 := scanshare.NewQuery(tbl).Named("beta").Weight(4).CountAll()
	rep, err := eng.Run(scanshare.Shared, []scanshare.Job{
		{Query: q1, Stream: 0},
		{Query: q2, Stream: 0, Start: time.Millisecond},
		{Query: q1, Stream: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := rep.PerStream()
	if len(streams) != 2 || streams[0] <= 0 || streams[1] <= 0 {
		t.Errorf("PerStream = %v", streams)
	}
	queries := rep.PerQuery()
	if len(queries) != 2 || queries["alpha"] <= 0 || queries["beta"] <= 0 {
		t.Errorf("PerQuery = %v", queries)
	}
	cpu, io, _, _ := rep.TotalAcct()
	if cpu <= 0 || io <= 0 {
		t.Errorf("TotalAcct = %v %v", cpu, io)
	}
	sum := rep.Summary()
	for _, want := range []string{"mode=shared", "alpha", "beta", "hit ratio"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestDiskSeriesCollected(t *testing.T) {
	eng, tbl := newEngine(t, 30, 2000)
	rep, err := eng.Run(scanshare.Baseline, []scanshare.Job{
		{Query: scanshare.NewQuery(tbl).CountAll()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DiskSeries) == 0 {
		t.Fatal("no disk series despite SeriesBucket")
	}
	var total int64
	for i, s := range rep.DiskSeries {
		total += s.Reads
		if i > 0 && s.Offset <= rep.DiskSeries[i-1].Offset {
			t.Error("series not sorted by offset")
		}
	}
	if total != rep.Disk.Reads {
		t.Errorf("series reads %d != stats reads %d", total, rep.Disk.Reads)
	}
}

func TestSuccessiveRunsContinueTimeline(t *testing.T) {
	eng, tbl := newEngine(t, 200, 500)
	q := scanshare.NewQuery(tbl).CountAll()
	r1, err := eng.Run(scanshare.Shared, []scanshare.Job{{Query: q}})
	if err != nil {
		t.Fatal(err)
	}
	t1 := eng.Now()
	if t1 <= 0 {
		t.Error("virtual time did not advance")
	}
	r2, err := eng.Run(scanshare.Shared, []scanshare.Job{{Query: q}})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Now() <= t1 {
		t.Error("second run did not advance time")
	}
	// The pool is warm after run 1 (it holds the whole table).
	if r2.Disk.Reads >= r1.Disk.Reads {
		t.Errorf("second run reads %d, first %d: pool should be warm", r2.Disk.Reads, r1.Disk.Reads)
	}
}

func TestRunStreamsSequentialWithinStream(t *testing.T) {
	eng, tbl := newEngine(t, 100, 800)
	q1 := scanshare.NewQuery(tbl).Named("first").CountAll()
	q2 := scanshare.NewQuery(tbl).Named("second").Avg("price")
	rep, err := eng.RunStreams(scanshare.Shared, [][]scanshare.StreamItem{
		{{Query: q1}, {Query: q2, ThinkTime: 5 * time.Millisecond}},
		{{Query: q1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results", len(rep.Results))
	}
	var first, second scanshare.QueryResult
	for _, r := range rep.Results {
		if r.Stream == 0 && r.Name == "first" {
			first = r
		}
		if r.Stream == 0 && r.Name == "second" {
			second = r
		}
	}
	if second.Start < first.End+5*time.Millisecond {
		t.Errorf("second query started at %v, before first ended (%v) plus think time", second.Start, first.End)
	}
	if second.Rows[0][0].Kind != scanshare.KindFloat64 {
		t.Errorf("avg returned %#v", second.Rows[0])
	}
	streams := rep.PerStream()
	if len(streams) != 2 {
		t.Errorf("PerStream = %v", streams)
	}
}

func TestRunStreamsValidation(t *testing.T) {
	eng, tbl := newEngine(t, 100, 100)
	q := scanshare.NewQuery(tbl)
	if _, err := eng.RunStreams(scanshare.Shared, nil); err == nil {
		t.Error("no streams accepted")
	}
	if _, err := eng.RunStreams(scanshare.Shared, [][]scanshare.StreamItem{{}}); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := eng.RunStreams(scanshare.Shared, [][]scanshare.StreamItem{{{Query: nil}}}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := eng.RunStreams(scanshare.Shared, [][]scanshare.StreamItem{{{Query: q, ThinkTime: -1}}}); err == nil {
		t.Error("negative think time accepted")
	}
	_, otherTbl := newEngine(t, 100, 100)
	if _, err := eng.RunStreams(scanshare.Shared, [][]scanshare.StreamItem{{{Query: scanshare.NewQuery(otherTbl)}}}); err == nil {
		t.Error("cross-engine stream accepted")
	}
	// Errors inside a stream propagate with context.
	bad := scanshare.NewQuery(tbl).Sum("missing-column")
	_, err := eng.RunStreams(scanshare.Shared, [][]scanshare.StreamItem{{{Query: q}, {Query: bad}}})
	if err == nil || !strings.Contains(err.Error(), "missing-column") {
		t.Errorf("stream error = %v, want the column error with context", err)
	}
}

func TestPackageLevelRunAndMustNew(t *testing.T) {
	eng := scanshare.MustNew(scanshare.Config{BufferPoolPages: 32})
	tbl, err := eng.LoadTable("t", demoSchema(), func(add func(scanshare.Tuple) error) error {
		return add(scanshare.Tuple{scanshare.Int64(1), scanshare.Float64(2), scanshare.String("x"), scanshare.Date(3)})
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scanshare.Run(eng, scanshare.Baseline, []scanshare.Job{{Query: scanshare.NewQuery(tbl).CountAll()}})
	if err != nil || rep.Results[0].Rows[0][0].I != 1 {
		t.Errorf("Run = %v, %v", rep, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew with bad config did not panic")
		}
	}()
	scanshare.MustNew(scanshare.Config{})
}

func TestQueryImportanceReducesThrottling(t *testing.T) {
	// An interactive (high-importance) leader is throttled less than a
	// normal one in the same drift scenario.
	run := func(imp scanshare.Importance) time.Duration {
		eng, tbl := newEngine(t, 60, 3000)
		fast := scanshare.NewQuery(tbl).Named("fast").Importance(imp).CountAll()
		slow := scanshare.NewQuery(tbl).Named("slow").Weight(60).CountAll()
		rep, err := eng.Run(scanshare.Shared, []scanshare.Job{
			{Query: fast, Stream: 0},
			{Query: slow, Stream: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Name == "fast" {
				return r.ThrottleWait
			}
		}
		t.Fatal("fast query missing")
		return 0
	}
	normal := run(scanshare.ImportanceNormal)
	high := run(scanshare.ImportanceHigh)
	if normal <= 0 {
		t.Fatalf("scenario did not throttle at all (normal=%v)", normal)
	}
	if high >= normal {
		t.Errorf("high-importance query throttled %v, normal %v; want less", high, normal)
	}
}

func TestSharingSnapshotIdle(t *testing.T) {
	eng, _ := newEngine(t, 32, 100)
	snap := eng.SharingSnapshot()
	if len(snap.Scans) != 0 || len(snap.Groups) != 0 {
		t.Errorf("idle snapshot = %+v", snap)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := scanshare.NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	s, err := scanshare.NewSchema(scanshare.Field{Name: "a", Kind: scanshare.KindInt64})
	if err != nil || s.NumFields() != 1 {
		t.Errorf("NewSchema = %v, %v", s, err)
	}
}

func TestObserverSeesScansAndGroups(t *testing.T) {
	eng, tbl := newEngine(t, 15, 2000)
	q := scanshare.NewQuery(tbl).CountAll()
	var ticks int
	var sawScans, sawGroups bool
	err := eng.Observe(2*time.Millisecond, func(now time.Duration, snap scanshare.SharingSnapshot) {
		ticks++
		if len(snap.Scans) > 0 {
			sawScans = true
		}
		if len(snap.Groups) > 0 {
			sawGroups = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(scanshare.Shared, []scanshare.Job{
		{Query: q}, {Query: q, Start: 3 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ticks == 0 || !sawScans || !sawGroups {
		t.Errorf("observer: ticks=%d sawScans=%v sawGroups=%v", ticks, sawScans, sawGroups)
	}
	// Observers are one-shot: the next run must not invoke them again.
	before := ticks
	if _, err := eng.Run(scanshare.Shared, []scanshare.Job{{Query: q}}); err != nil {
		t.Fatal(err)
	}
	if ticks != before {
		t.Error("observer survived into the next run")
	}
}

func TestObserveValidation(t *testing.T) {
	eng, _ := newEngine(t, 15, 100)
	if err := eng.Observe(0, func(time.Duration, scanshare.SharingSnapshot) {}); err == nil {
		t.Error("zero interval accepted")
	}
	if err := eng.Observe(time.Second, nil); err == nil {
		t.Error("nil observer accepted")
	}
}

func TestColumnStatsAndClustering(t *testing.T) {
	eng, tbl := newEngine(t, 32, 500)
	// "id" is inserted 0..499 in order: clustered, range [0,499].
	min, max, ok := tbl.ColumnRange("id")
	if !ok || min.I != 0 || max.I != 499 {
		t.Errorf("id range = %v..%v ok=%v", min, max, ok)
	}
	if !tbl.Clustered("id") {
		t.Error("monotone column not detected as clustered")
	}
	// "day" cycles i%365: not monotone.
	if tbl.Clustered("day") {
		t.Error("cycling column detected as clustered")
	}
	if _, _, ok := tbl.ColumnRange("ghost"); ok {
		t.Error("range of unknown column reported")
	}
	if tbl.Clustered("ghost") {
		t.Error("unknown column reported clustered")
	}
	// Stats survive Lookup.
	looked, err := eng.Lookup(tbl.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !looked.Clustered("id") {
		t.Error("stats lost through Lookup")
	}
}

func TestMultiplePoolsIsolateSharing(t *testing.T) {
	eng, err := scanshare.New(scanshare.Config{
		BufferPoolPages: 20,
		Pools:           []scanshare.PoolConfig{{Name: "hot", Pages: 40}},
		Disk:            scanshare.DiskConfig{PageSize: 1024},
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: 4, MinSharePages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	load := func(name, pool string) *scanshare.Table {
		tbl, err := eng.LoadTableInPool(name, pool, demoSchema(), func(add func(scanshare.Tuple) error) error {
			for i := 0; i < 1500; i++ {
				if err := add(scanshare.Tuple{
					scanshare.Int64(int64(i)), scanshare.Float64(1), scanshare.String("x"), scanshare.Date(0),
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	cold := load("cold_table", "")
	hot := load("hot_table", "hot")
	if cold.Pool() != "" || hot.Pool() != "hot" {
		t.Errorf("pool assignment: %q / %q", cold.Pool(), hot.Pool())
	}

	q1 := scanshare.NewQuery(cold).Named("cold").CountAll()
	q2 := scanshare.NewQuery(hot).Named("hot").CountAll()
	var crossGroups bool
	eng.Observe(2*time.Millisecond, func(_ time.Duration, snap scanshare.SharingSnapshot) {
		for _, g := range snap.Groups {
			tables := map[int]bool{}
			for range g.Members {
				tables[int(g.Table)] = true
			}
			if len(tables) > 1 {
				crossGroups = true
			}
		}
	})
	rep, err := eng.Run(scanshare.Shared, []scanshare.Job{
		{Query: q1, Stream: 0},
		{Query: q1, Start: 2 * time.Millisecond, Stream: 1},
		{Query: q2, Stream: 2},
		{Query: q2, Start: 2 * time.Millisecond, Stream: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if crossGroups {
		t.Error("a group spanned pools")
	}
	if len(rep.Pools) != 2 {
		t.Fatalf("Pools = %v", rep.Pools)
	}
	def, hotStats := rep.Pools[""], rep.Pools["hot"]
	if def.LogicalReads == 0 || hotStats.LogicalReads == 0 {
		t.Errorf("per-pool stats empty: %+v", rep.Pools)
	}
	if rep.Pool.LogicalReads != def.LogicalReads+hotStats.LogicalReads {
		t.Error("aggregate pool stats do not sum the per-pool stats")
	}
	// Sharing happened inside both pools independently.
	if rep.Sharing.JoinPlacements+rep.Sharing.TrailPlacements < 2 {
		t.Errorf("expected sharing in both pools: %+v", rep.Sharing)
	}
}

func TestPoolConfigValidation(t *testing.T) {
	if _, err := scanshare.New(scanshare.Config{
		BufferPoolPages: 10,
		Pools:           []scanshare.PoolConfig{{Name: "", Pages: 10}},
	}); err == nil {
		t.Error("empty pool name accepted")
	}
	if _, err := scanshare.New(scanshare.Config{
		BufferPoolPages: 10,
		Pools:           []scanshare.PoolConfig{{Name: "a", Pages: 10}, {Name: "a", Pages: 10}},
	}); err == nil {
		t.Error("duplicate pool name accepted")
	}
	if _, err := scanshare.New(scanshare.Config{
		BufferPoolPages: 10,
		Pools:           []scanshare.PoolConfig{{Name: "a", Pages: 0}},
	}); err == nil {
		t.Error("zero-size pool accepted")
	}
	eng := scanshare.MustNew(scanshare.Config{BufferPoolPages: 10})
	if _, err := eng.LoadTableInPool("t", "ghost", demoSchema(), func(func(scanshare.Tuple) error) error { return nil }); err == nil {
		t.Error("unknown pool accepted")
	}
}

func TestLookupPreservesPool(t *testing.T) {
	eng, err := scanshare.New(scanshare.Config{
		BufferPoolPages: 16,
		Pools:           []scanshare.PoolConfig{{Name: "p2", Pages: 16}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.LoadTableInPool("t", "p2", demoSchema(), func(add func(scanshare.Tuple) error) error {
		return add(scanshare.Tuple{scanshare.Int64(1), scanshare.Float64(2), scanshare.String("x"), scanshare.Date(3)})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Lookup("t")
	if err != nil || got.Pool() != "p2" {
		t.Errorf("Lookup pool = %q, %v", got.Pool(), err)
	}
	// Queries on a looked-up table must still run against its own pool.
	rep, err := eng.Run(scanshare.Shared, []scanshare.Job{{Query: scanshare.NewQuery(got).CountAll()}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pools["p2"].LogicalReads == 0 {
		t.Error("query did not hit the table's pool")
	}
}

func TestModeString(t *testing.T) {
	if scanshare.Baseline.String() != "base" || scanshare.Shared.String() != "shared" {
		t.Error("mode names wrong")
	}
	if scanshare.Mode(9).String() != "Mode(?)" {
		t.Error("unknown mode name wrong")
	}
}

func TestBoundedCoresSerializeCPUWork(t *testing.T) {
	// Four CPU-heavy queries on one core must take ~4x as long as on
	// unlimited cores, with the queueing visible in the accounting.
	run := func(cores int) (time.Duration, time.Duration) {
		eng, err := scanshare.New(scanshare.Config{
			BufferPoolPages: 200,
			CPU:             scanshare.CPUConfig{Cores: cores},
			Disk:            scanshare.DiskConfig{PageSize: 1024},
		})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := eng.LoadTable("t", demoSchema(), func(add func(scanshare.Tuple) error) error {
			for i := 0; i < 2000; i++ {
				if err := add(scanshare.Tuple{
					scanshare.Int64(int64(i)), scanshare.Float64(1), scanshare.String("x"), scanshare.Date(0),
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		q := scanshare.NewQuery(tbl).Weight(40).CountAll()
		jobs := []scanshare.Job{{Query: q}, {Query: q}, {Query: q}, {Query: q}}
		rep, err := eng.Run(scanshare.Baseline, jobs)
		if err != nil {
			t.Fatal(err)
		}
		var queue time.Duration
		for _, r := range rep.Results {
			queue += r.CPUQueueWait
		}
		return rep.Makespan, queue
	}
	unlimited, q0 := run(0)
	single, q1 := run(1)
	if q0 != 0 {
		t.Errorf("unlimited cores queued %v", q0)
	}
	if q1 <= 0 {
		t.Error("single core recorded no CPU queueing")
	}
	if single < unlimited*3 {
		t.Errorf("single-core makespan %v, unlimited %v: want ~4x serialization", single, unlimited)
	}
}

func TestNegativeCoresRejected(t *testing.T) {
	if _, err := scanshare.New(scanshare.Config{BufferPoolPages: 10, CPU: scanshare.CPUConfig{Cores: -2}}); err == nil {
		t.Error("negative cores accepted")
	}
}

func TestAdaptiveReportingReducesSSMCalls(t *testing.T) {
	run := func(adaptive bool) int64 {
		eng, err := scanshare.New(scanshare.Config{
			BufferPoolPages: 30,
			Disk:            scanshare.DiskConfig{PageSize: 1024},
			Sharing: scanshare.SharingConfig{
				PrefetchExtentPages: 4,
				AdaptiveReporting:   adaptive,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := eng.LoadTable("t", demoSchema(), func(add func(scanshare.Tuple) error) error {
			for i := 0; i < 3000; i++ {
				if err := add(scanshare.Tuple{
					scanshare.Int64(int64(i)), scanshare.Float64(1), scanshare.String("x"), scanshare.Date(0),
				}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// One lone scan: adaptive mode should report ~4x less often.
		rep, err := eng.Run(scanshare.Shared, []scanshare.Job{
			{Query: scanshare.NewQuery(tbl).CountAll()},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Sharing.ProgressReports
	}
	fixed := run(false)
	adaptive := run(true)
	if adaptive*3 > fixed {
		t.Errorf("adaptive reporting did not reduce calls: %d vs %d", adaptive, fixed)
	}
	if adaptive == 0 {
		t.Error("no progress reports at all")
	}
}

func TestTraceSharingDeliversEvents(t *testing.T) {
	eng, tbl := newEngine(t, 15, 2000)
	q := scanshare.NewQuery(tbl).CountAll()
	var starts, ends int
	eng.TraceSharing(func(pool string, ev scanshare.SharingEvent) {
		if pool != "" {
			t.Errorf("unexpected pool %q", pool)
		}
		switch ev.Kind {
		case scanshare.EventScanStarted:
			starts++
		case scanshare.EventScanEnded:
			ends++
		}
	})
	_, err := eng.Run(scanshare.Shared, []scanshare.Job{
		{Query: q}, {Query: q, Start: 3 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if starts != 2 || ends != 2 {
		t.Errorf("starts=%d ends=%d, want 2/2", starts, ends)
	}
	// Tracing can be turned off.
	eng.TraceSharing(nil)
	before := starts
	if _, err := eng.Run(scanshare.Shared, []scanshare.Job{{Query: q}}); err != nil {
		t.Fatal(err)
	}
	if starts != before {
		t.Error("events delivered after tracing disabled")
	}
}

func TestJoinQueryEndToEnd(t *testing.T) {
	eng, err := scanshare.New(scanshare.Config{BufferPoolPages: 64, Disk: scanshare.DiskConfig{PageSize: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	orders, err := eng.LoadTable("orders", scanshare.MustSchema(
		scanshare.Field{Name: "o_id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "o_cust", Kind: scanshare.KindInt64},
	), func(add func(scanshare.Tuple) error) error {
		for i := 0; i < 600; i++ {
			if err := add(scanshare.Tuple{scanshare.Int64(int64(i)), scanshare.Int64(int64(i % 50))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	customers, err := eng.LoadTable("customers", scanshare.MustSchema(
		scanshare.Field{Name: "c_id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "segment", Kind: scanshare.KindString},
	), func(add func(scanshare.Tuple) error) error {
		for i := 0; i < 50; i++ {
			if err := add(scanshare.Tuple{scanshare.Int64(int64(i)), scanshare.String([]string{"retail", "corp"}[i%2])}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Orders per segment: join orders to customers (12 orders per
	// customer on average, duplicate join keys on the probe side).
	q := scanshare.NewQuery(customers).
		Join(scanshare.NewQuery(orders), "c_id", "o_cust").
		Named("orders-by-segment").
		GroupBy("segment").CountAll().
		OrderBy("segment")
	rep, err := eng.Run(scanshare.Shared, []scanshare.Job{{Query: q}})
	if err != nil {
		t.Fatal(err)
	}
	rows := rep.Results[0].Rows
	if len(rows) != 2 {
		t.Fatalf("got %d segments: %v", len(rows), rows)
	}
	if rows[0][0].S != "corp" || rows[1][0].S != "retail" {
		t.Errorf("segment order: %v", rows)
	}
	if rows[0][1].I+rows[1][1].I != 600 {
		t.Errorf("joined order count = %d + %d, want 600", rows[0][1].I, rows[1][1].I)
	}

	// Post-join Where filters combined tuples (o_id from the right side).
	filtered := scanshare.NewQuery(customers).
		Join(scanshare.NewQuery(orders), "c_id", "o_cust").
		Where(func(tup scanshare.Tuple) bool { return tup[2].I < 100 }).
		CountAll()
	rep, err = eng.Run(scanshare.Shared, []scanshare.Job{{Query: filtered}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Results[0].Rows[0][0].I; got != 100 {
		t.Errorf("filtered join count = %d, want 100", got)
	}
}

func TestJoinQueryValidation(t *testing.T) {
	eng, tbl := newEngine(t, 64, 200)
	tbl2, err := eng.LoadTable("demo2", demoSchema(), func(add func(scanshare.Tuple) error) error {
		return add(scanshare.Tuple{scanshare.Int64(1), scanshare.Float64(2), scanshare.String("x"), scanshare.Date(3)})
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(q *scanshare.Query) error {
		_, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: q}})
		return err
	}
	// Side with aggregation is rejected.
	if err := run(scanshare.NewQuery(tbl).CountAll().Join(scanshare.NewQuery(tbl2), "id", "id")); err == nil {
		t.Error("aggregated join side accepted")
	}
	// Kind mismatch on join columns.
	if err := run(scanshare.NewQuery(tbl).Join(scanshare.NewQuery(tbl2), "id", "flag")); err == nil {
		t.Error("mismatched join kinds accepted")
	}
	// Unknown join column.
	if err := run(scanshare.NewQuery(tbl).Join(scanshare.NewQuery(tbl2), "ghost", "id")); err == nil {
		t.Error("unknown join column accepted")
	}
	// Ambiguous output column (both tables have "id").
	if err := run(scanshare.NewQuery(tbl).Join(scanshare.NewQuery(tbl2), "id", "id").Select("id")); err == nil {
		t.Error("ambiguous column accepted")
	}
	// Nested join.
	j := scanshare.NewQuery(tbl).Join(scanshare.NewQuery(tbl2), "id", "id")
	if err := run(j.Join(scanshare.NewQuery(tbl2), "id", "id")); err == nil {
		t.Error("nested join accepted")
	}
}

func TestJoinScansShareWithOtherQueries(t *testing.T) {
	// The probe scan of a join shares with a concurrent plain scan of the
	// same table.
	run := func(mode scanshare.Mode) int64 {
		eng, tbl := newEngine(t, 15, 3000)
		dim, err := eng.LoadTable("dim", scanshare.MustSchema(
			scanshare.Field{Name: "k", Kind: scanshare.KindInt64},
		), func(add func(scanshare.Tuple) error) error {
			for i := 0; i < 100; i++ {
				if err := add(scanshare.Tuple{scanshare.Int64(int64(i))}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		join := scanshare.NewQuery(dim).Join(scanshare.NewQuery(tbl), "k", "id").CountAll()
		plain := scanshare.NewQuery(tbl).CountAll()
		rep, err := eng.Run(mode, []scanshare.Job{
			{Query: plain},
			{Query: join, Start: 4 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Disk.Reads
	}
	base := run(scanshare.Baseline)
	shared := run(scanshare.Shared)
	if shared >= base {
		t.Errorf("join probe scan did not share: %d vs %d reads", shared, base)
	}
}

func TestJoinRejectsTopLevelScanKnobs(t *testing.T) {
	eng, tbl := newEngine(t, 64, 100)
	q := scanshare.NewQuery(tbl).Join(scanshare.NewQuery(tbl), "id", "id")
	// (self-join on the same table: column ambiguity only matters when
	// referencing columns; a bare CountAll over it is fine semantically,
	// but the Weight below must be rejected first)
	q.Weight(5).CountAll()
	if _, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: q}}); err == nil {
		t.Error("top-level Weight on a join accepted")
	}
}
