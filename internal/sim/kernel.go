// Package sim implements a small deterministic discrete-event simulation
// kernel. It exists because the paper's evaluation metrics — end-to-end
// query times, disk reads, disk seeks, and the split of query time into CPU
// work and I/O wait — depend on the *relative timing* of concurrently running
// scans, and relative timing on a shared CI machine is noise. Running the
// workload in virtual time makes every experiment reproducible bit-for-bit.
//
// The model is cooperative coroutines over a single virtual timeline:
//
//   - A Kernel owns virtual "now" and a min-heap of pending events.
//   - A Proc is a goroutine spawned through the kernel. Exactly one Proc (or
//     the kernel itself) runs at any instant; control is handed over
//     explicitly, so simulated state needs no locking and interleavings are
//     deterministic (ties on the timeline are broken by spawn/schedule order).
//   - A Proc advances the timeline by calling Sleep. Work is modelled as
//     "do the state change instantaneously, then Sleep for its cost".
//
// This is the classic process-interaction style of discrete-event simulation,
// restricted to the single primitive (Sleep) that the scan workload needs.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Kernel is a deterministic discrete-event scheduler. Create one with New,
// add processes with Spawn (before or during Run), and call Run to execute
// the simulation to completion.
//
// A Kernel is not safe for concurrent use from outside its own processes:
// Spawn and Run must be called either from the goroutine that owns the kernel
// (before Run / between Runs) or from within a running Proc.
type Kernel struct {
	now    time.Duration
	events eventQueue
	seq    uint64
	// yield is signalled by the currently running process when it hands
	// control back to the scheduler loop.
	yield   chan struct{}
	running bool
	live    int // processes spawned and not yet finished
}

// New returns an empty kernel at virtual time zero.
func New() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Live returns the number of spawned processes that have not finished yet.
func (k *Kernel) Live() int { return k.live }

// Proc is a simulated process. Its methods must only be called from the
// goroutine executing the process body.
type Proc struct {
	k        *Kernel
	name     string
	resume   chan struct{}
	finished bool
	slept    time.Duration
	panicked any // non-nil if the body panicked; re-raised by Run
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.now }

// Slept returns the total virtual time this process has spent in Sleep.
func (p *Proc) Slept() time.Duration { return p.slept }

// Spawn registers a new process whose body is fn. The process becomes
// runnable at virtual time now+delay. fn runs on its own goroutine but under
// the kernel's cooperative scheduling: it executes only between its calls to
// Sleep.
func (k *Kernel) Spawn(name string, delay time.Duration, fn func(p *Proc)) *Proc {
	if delay < 0 {
		panic("sim: Spawn with negative delay")
	}
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.live++
	go func() {
		defer func() {
			// A panicking process must still hand control back, or
			// the kernel would deadlock; Run re-raises the panic
			// on its own goroutine.
			p.panicked = recover()
			p.finished = true
			k.live--
			k.yield <- struct{}{}
		}()
		<-p.resume // wait until the kernel dispatches us for the first time
		fn(p)
	}()
	k.schedule(p, k.now+delay)
	return p
}

// Sleep advances the process's local view of time by d: the process is
// suspended and resumes once virtual time reaches now+d. Sleeping for zero is
// allowed and simply re-queues the process behind other events scheduled for
// the same instant, which is how a process politely yields.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic("sim: Sleep with negative duration")
	}
	if p.finished {
		panic("sim: Sleep on finished process")
	}
	p.slept += d
	p.k.schedule(p, p.k.now+d)
	p.k.yield <- struct{}{}
	<-p.resume
}

// Run executes events until no process remains runnable. It returns the
// virtual time at which the simulation quiesced. Run panics if a process
// deadlocks the simulation by blocking on anything other than Sleep.
func (k *Kernel) Run() time.Duration {
	if k.running {
		panic("sim: Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(event)
		if ev.at < k.now {
			panic(fmt.Sprintf("sim: event at %v is before now %v", ev.at, k.now))
		}
		k.now = ev.at
		ev.p.resume <- struct{}{}
		<-k.yield
		if ev.p.panicked != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", ev.p.name, ev.p.panicked))
		}
	}
	if k.live > 0 {
		panic(fmt.Sprintf("sim: %d process(es) still live but no events pending", k.live))
	}
	return k.now
}

func (k *Kernel) schedule(p *Proc, at time.Duration) {
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, p: p})
}

// event is a pending resumption of a process at a point in virtual time.
// seq breaks ties so that simultaneous events run in schedule order.
type event struct {
	at  time.Duration
	seq uint64
	p   *Proc
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}
