package sim

import (
	"fmt"
	"sync"
	"time"
)

// Resource models a pool of identical servers (CPU cores, disk arms) that
// serve one request each at a time in virtual time. A request issued at
// `now` with a given service cost is assigned to the earliest-free server;
// the returned latency includes any queueing delay.
//
// The simulated disk has its own single-server queue with seek-dependent
// service times; Resource covers the simpler fixed-cost case, e.g. limiting
// how much query CPU work can proceed in parallel on an n-core machine.
type Resource struct {
	mu     sync.Mutex
	freeAt []time.Duration
	// queued accumulates time requests spent waiting for a server.
	queued time.Duration
}

// NewResource creates a resource with n servers.
func NewResource(n int) (*Resource, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: resource with %d servers", n)
	}
	return &Resource{freeAt: make([]time.Duration, n)}, nil
}

// MustNewResource is NewResource for known-good n.
func MustNewResource(n int) *Resource {
	r, err := NewResource(n)
	if err != nil {
		panic(err)
	}
	return r
}

// Servers returns the server count.
func (r *Resource) Servers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.freeAt)
}

// Reserve books `cost` of service starting no earlier than now on the
// earliest-free server and returns the total latency the caller must wait
// (queueing delay + cost).
func (r *Resource) Reserve(now, cost time.Duration) time.Duration {
	if cost <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	best := 0
	for i, f := range r.freeAt {
		if f < r.freeAt[best] {
			best = i
		}
	}
	start := now
	if r.freeAt[best] > start {
		start = r.freeAt[best]
	}
	r.freeAt[best] = start + cost
	r.queued += start - now
	return start + cost - now
}

// QueuedTime returns the total time requests spent waiting for a server.
func (r *Resource) QueuedTime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queued
}
