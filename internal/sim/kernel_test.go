package sim

import (
	"strings"
	"testing"
	"time"
)

func TestSingleProcessAdvancesTime(t *testing.T) {
	k := New()
	var at []time.Duration
	k.Spawn("p", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			at = append(at, p.Now())
			p.Sleep(10 * time.Millisecond)
		}
		at = append(at, p.Now())
	})
	end := k.Run()
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(at) != len(want) {
		t.Fatalf("got %d observations, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("observation %d: got %v, want %v", i, at[i], want[i])
		}
	}
	if end != 30*time.Millisecond {
		t.Errorf("Run returned %v, want 30ms", end)
	}
}

func TestSpawnDelayDefersStart(t *testing.T) {
	k := New()
	var started time.Duration
	k.Spawn("late", 42*time.Millisecond, func(p *Proc) { started = p.Now() })
	k.Run()
	if started != 42*time.Millisecond {
		t.Errorf("process started at %v, want 42ms", started)
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		k := New()
		var trace []string
		step := func(name string, d time.Duration, n int) func(*Proc) {
			return func(p *Proc) {
				for i := 0; i < n; i++ {
					trace = append(trace, name)
					p.Sleep(d)
				}
			}
		}
		k.Spawn("a", 0, step("a", 3*time.Millisecond, 4))
		k.Spawn("b", 0, step("b", 2*time.Millisecond, 6))
		k.Run()
		return trace
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: trace length %d != %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d: trace diverges at %d: %q != %q", i, j, again[j], first[j])
			}
		}
	}
}

func TestTiesRunInScheduleOrder(t *testing.T) {
	k := New()
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		k.Spawn(name, 5*time.Millisecond, func(p *Proc) { order = append(order, name) })
	}
	k.Run()
	if got := order[0] + order[1] + order[2]; got != "xyz" {
		t.Errorf("simultaneous events ran in order %q, want xyz", got)
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", 0, func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", 0, func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	// a yields at time 0; b (scheduled at time 0) must run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got order %v, want %v", order, want)
		}
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	k := New()
	var childStart time.Duration
	k.Spawn("parent", 0, func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		k.Spawn("child", 3*time.Millisecond, func(c *Proc) { childStart = c.Now() })
		p.Sleep(20 * time.Millisecond)
	})
	k.Run()
	if childStart != 10*time.Millisecond {
		t.Errorf("child started at %v, want 10ms", childStart)
	}
}

func TestSleptAccounting(t *testing.T) {
	k := New()
	var proc *Proc
	proc = k.Spawn("p", 0, func(p *Proc) {
		p.Sleep(4 * time.Millisecond)
		p.Sleep(6 * time.Millisecond)
	})
	k.Run()
	if proc.Slept() != 10*time.Millisecond {
		t.Errorf("Slept = %v, want 10ms", proc.Slept())
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := New()
	panicked := make(chan bool, 1)
	k.Spawn("p", 0, func(p *Proc) {
		defer func() {
			panicked <- recover() != nil
			// Re-panic would tear down the kernel; instead finish cleanly.
		}()
		p.Sleep(-time.Millisecond)
	})
	k.Run()
	if !<-panicked {
		t.Error("negative Sleep did not panic")
	}
}

func TestProcessPanicPropagatesToRun(t *testing.T) {
	k := New()
	k.Spawn("ok", 0, func(p *Proc) { p.Sleep(time.Millisecond) })
	k.Spawn("boom", 0, func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-raise the process panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "kaboom") || !strings.Contains(msg, "boom") {
			t.Errorf("panic value = %v, want process name and message", r)
		}
	}()
	k.Run()
}

func TestClockTracksKernel(t *testing.T) {
	k := New()
	c := ClockOf(k)
	k.Spawn("p", 0, func(p *Proc) {
		if c.Now() != 0 {
			t.Errorf("clock at start: %v", c.Now())
		}
		p.Sleep(time.Second)
		if c.Now() != time.Second {
			t.Errorf("clock after sleep: %v", c.Now())
		}
	})
	k.Run()
}

func TestManyProcessesQuiesce(t *testing.T) {
	k := New()
	total := 0
	for i := 0; i < 100; i++ {
		i := i
		k.Spawn("p", time.Duration(i)*time.Microsecond, func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(time.Duration(1+i%7) * time.Microsecond)
			}
			total++
		})
	}
	k.Run()
	if total != 100 {
		t.Errorf("only %d processes finished", total)
	}
	if k.Live() != 0 {
		t.Errorf("Live = %d after Run", k.Live())
	}
}

func TestResourceSingleServerSerializes(t *testing.T) {
	r := MustNewResource(1)
	if lat := r.Reserve(0, 10*time.Millisecond); lat != 10*time.Millisecond {
		t.Errorf("first reservation latency %v", lat)
	}
	// Issued at t=5ms while busy until 10ms: waits 5ms then serves 10ms.
	if lat := r.Reserve(5*time.Millisecond, 10*time.Millisecond); lat != 15*time.Millisecond {
		t.Errorf("queued reservation latency %v, want 15ms", lat)
	}
	if q := r.QueuedTime(); q != 5*time.Millisecond {
		t.Errorf("QueuedTime = %v, want 5ms", q)
	}
}

func TestResourceParallelServers(t *testing.T) {
	r := MustNewResource(2)
	r.Reserve(0, 10*time.Millisecond)
	if lat := r.Reserve(0, 10*time.Millisecond); lat != 10*time.Millisecond {
		t.Errorf("second server not used: latency %v", lat)
	}
	// Third request queues behind the earlier of the two.
	if lat := r.Reserve(0, 4*time.Millisecond); lat != 14*time.Millisecond {
		t.Errorf("third reservation latency %v, want 14ms", lat)
	}
	if r.Servers() != 2 {
		t.Errorf("Servers = %d", r.Servers())
	}
}

func TestResourceZeroCostFree(t *testing.T) {
	r := MustNewResource(1)
	if lat := r.Reserve(0, 0); lat != 0 {
		t.Errorf("zero-cost reservation latency %v", lat)
	}
}

func TestResourceValidation(t *testing.T) {
	if _, err := NewResource(0); err == nil {
		t.Error("zero servers accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewResource(0) did not panic")
		}
	}()
	MustNewResource(-1)
}
