package sim

import (
	"time"

	"scanshare/internal/vclock"
)

// Clock adapts a Kernel to the vclock.Clock interface so components that
// only need to *read* time (the scan sharing manager, the disk model) can be
// wired to either virtual or wall time without knowing which.
type Clock struct{ k *Kernel }

// ClockOf returns a vclock.Clock view of the kernel's virtual time.
func ClockOf(k *Kernel) Clock { return Clock{k: k} }

// Now returns the kernel's current virtual time.
func (c Clock) Now() time.Duration { return c.k.Now() }

var _ vclock.Clock = Clock{}
