package vclock

import (
	"testing"
	"time"
)

func TestWallMonotone(t *testing.T) {
	var w Wall
	a := w.Now()
	b := w.Now()
	if b < a {
		t.Errorf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestManualStartsAtGivenTime(t *testing.T) {
	m := NewManual(5 * time.Second)
	if m.Now() != 5*time.Second {
		t.Errorf("Now = %v, want 5s", m.Now())
	}
}

func TestManualAdvance(t *testing.T) {
	m := NewManual(0)
	m.Advance(time.Second)
	m.Advance(2 * time.Second)
	if m.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", m.Now())
	}
}

func TestManualSet(t *testing.T) {
	m := NewManual(time.Second)
	m.Set(10 * time.Second)
	if m.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", m.Now())
	}
}

func TestManualSetBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set backwards did not panic")
		}
	}()
	m := NewManual(time.Second)
	m.Set(0)
}

func TestManualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	NewManual(0).Advance(-1)
}
