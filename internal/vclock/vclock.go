// Package vclock provides a minimal clock abstraction so that the scan
// sharing machinery can run either against the wall clock (inside a real
// engine) or against a deterministic virtual clock (inside the discrete-event
// simulator used by the benchmark harness).
//
// Time is represented as a time.Duration offset from an arbitrary epoch.
// Everything in this repository that needs "now" takes it either from a Clock
// or as an explicit parameter, which keeps the core algorithms trivially
// testable.
package vclock

import (
	"sync"
	"time"
)

// Clock reports the current time as an offset from the clock's epoch.
type Clock interface {
	Now() time.Duration
}

// Wall is a Clock backed by the operating system clock. The zero value is
// ready to use; its epoch is fixed on the first call to Now.
type Wall struct {
	once  sync.Once
	epoch time.Time
}

// Now returns the elapsed wall time since the first call to Now.
func (w *Wall) Now() time.Duration {
	w.once.Do(func() { w.epoch = time.Now() })
	return time.Since(w.epoch)
}

// Manual is a Clock that only moves when told to. It is safe for concurrent
// use and is primarily a testing aid; the simulator has its own notion of
// virtual time.
type Manual struct {
	mu  sync.Mutex
	now time.Duration
}

// NewManual returns a Manual clock set to the given time.
func NewManual(start time.Duration) *Manual {
	return &Manual{now: start}
}

// Now returns the clock's current time.
func (m *Manual) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: time never moves backwards anywhere in this repository.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("vclock: Manual.Advance called with negative duration")
	}
	m.mu.Lock()
	m.now += d
	m.mu.Unlock()
}

// Set moves the clock to an absolute time. Setting the clock backwards
// panics.
func (m *Manual) Set(now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now < m.now {
		panic("vclock: Manual.Set would move time backwards")
	}
	m.now = now
}
