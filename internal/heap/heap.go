// Package heap implements read-optimized heap tables over the simulated
// disk: tuples packed into slotted pages, pages allocated as one contiguous
// extent per table.
//
// Contiguity matters to the experiments: a single table scan reading pages in
// order is sequential at the device and pays (almost) no seeks, while two
// interleaved scans at different positions seek constantly — the exact
// pathology the paper's grouping mechanism removes. Tables are immutable once
// built (the paper's workload is a read-only decision-support database).
//
// Page format, little-endian:
//
//	[0:2]   uint16 tuple count n
//	[2:2+2n] uint16 tuple offsets, relative to the start of the data area
//	[2+2n:] tuple data (concatenated record encodings)
package heap

import (
	"encoding/binary"
	"fmt"

	"scanshare/internal/disk"
	"scanshare/internal/record"
)

const pageHeaderSize = 2
const slotSize = 2

// Table is an immutable heap table resident on a Device.
type Table struct {
	name   string
	schema *record.Schema
	dev    *disk.Device
	first  disk.PageID
	pages  int
	tuples int64
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *record.Schema { return t.schema }

// NumPages returns the number of data pages.
func (t *Table) NumPages() int { return t.pages }

// NumTuples returns the number of rows.
func (t *Table) NumTuples() int64 { return t.tuples }

// FirstPage returns the device PageID of the table's first page; the
// table occupies [FirstPage, FirstPage+NumPages).
func (t *Table) FirstPage() disk.PageID { return t.first }

// PageID maps a table-relative page number to the device PageID.
func (t *Table) PageID(pageNo int) (disk.PageID, error) {
	if pageNo < 0 || pageNo >= t.pages {
		return disk.InvalidPage, fmt.Errorf("heap: page %d out of range [0,%d)", pageNo, t.pages)
	}
	return t.first + disk.PageID(pageNo), nil
}

// Builder accumulates tuples into pages and materializes a Table.
type Builder struct {
	name     string
	schema   *record.Schema
	dev      *disk.Device
	pageSize int

	pages    [][]byte // fully encoded pages
	offsets  []uint16 // slots of the page under construction
	data     []byte   // data area of the page under construction
	tuples   int64
	finished bool
}

// NewBuilder starts building a table on dev.
func NewBuilder(dev *disk.Device, name string, schema *record.Schema) (*Builder, error) {
	if name == "" {
		return nil, fmt.Errorf("heap: empty table name")
	}
	if schema == nil {
		return nil, fmt.Errorf("heap: nil schema")
	}
	return &Builder{name: name, schema: schema, dev: dev, pageSize: dev.Model().PageSize}, nil
}

// Append adds one tuple, starting a new page when the current one is full.
func (b *Builder) Append(t record.Tuple) error {
	if b.finished {
		return fmt.Errorf("heap: Append after Finish")
	}
	size, err := record.EncodedSize(b.schema, t)
	if err != nil {
		return err
	}
	payload := b.pageSize - pageHeaderSize
	if size+slotSize > payload {
		return fmt.Errorf("heap: tuple of %d bytes does not fit a %d-byte page", size, b.pageSize)
	}
	need := pageHeaderSize + (len(b.offsets)+1)*slotSize + len(b.data) + size
	if need > b.pageSize {
		b.flushPage()
	}
	b.offsets = append(b.offsets, uint16(len(b.data)))
	b.data, err = record.Encode(b.data, b.schema, t)
	if err != nil {
		return err
	}
	b.tuples++
	return nil
}

func (b *Builder) flushPage() {
	n := len(b.offsets)
	page := make([]byte, 0, pageHeaderSize+n*slotSize+len(b.data))
	page = binary.LittleEndian.AppendUint16(page, uint16(n))
	for _, off := range b.offsets {
		page = binary.LittleEndian.AppendUint16(page, off)
	}
	page = append(page, b.data...)
	b.pages = append(b.pages, page)
	b.offsets = b.offsets[:0]
	b.data = b.data[:0]
}

// Finish writes all pages to the device and returns the Table. A table must
// contain at least one tuple.
func (b *Builder) Finish() (*Table, error) {
	if b.finished {
		return nil, fmt.Errorf("heap: Finish called twice")
	}
	if len(b.offsets) > 0 {
		b.flushPage()
	}
	b.finished = true
	if len(b.pages) == 0 {
		return nil, fmt.Errorf("heap: table %q has no tuples", b.name)
	}
	first, err := b.dev.Allocate(len(b.pages))
	if err != nil {
		return nil, err
	}
	for i, page := range b.pages {
		if err := b.dev.Write(first+disk.PageID(i), page); err != nil {
			return nil, fmt.Errorf("heap: writing page %d of %q: %w", i, b.name, err)
		}
	}
	t := &Table{
		name:   b.name,
		schema: b.schema,
		dev:    b.dev,
		first:  first,
		pages:  len(b.pages),
		tuples: b.tuples,
	}
	b.pages = nil
	return t, nil
}

// PageView provides access to the tuples of one encoded page.
type PageView struct {
	schema *record.Schema
	buf    []byte
	n      int
	data   []byte // data area
	slots  []byte // raw slot directory
}

// View parses the page header and slot directory of buf. The data is not
// copied; buf must stay immutable while the view is used.
func View(schema *record.Schema, buf []byte) (PageView, error) {
	if len(buf) < pageHeaderSize {
		return PageView{}, fmt.Errorf("heap: page of %d bytes has no header", len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf))
	dirEnd := pageHeaderSize + n*slotSize
	if dirEnd > len(buf) {
		return PageView{}, fmt.Errorf("heap: slot directory of %d entries exceeds page", n)
	}
	return PageView{
		schema: schema,
		buf:    buf,
		n:      n,
		slots:  buf[pageHeaderSize:dirEnd],
		data:   buf[dirEnd:],
	}, nil
}

// NumTuples returns the number of tuples on the page.
func (v PageView) NumTuples() int { return v.n }

// Tuple decodes tuple i into dst (reusing its backing array) and returns it.
func (v PageView) Tuple(dst record.Tuple, i int) (record.Tuple, error) {
	if i < 0 || i >= v.n {
		return nil, fmt.Errorf("heap: tuple %d out of range [0,%d)", i, v.n)
	}
	off := int(binary.LittleEndian.Uint16(v.slots[i*slotSize:]))
	if off > len(v.data) {
		return nil, fmt.Errorf("heap: tuple %d offset %d beyond data area", i, off)
	}
	t, _, err := record.Decode(dst, v.schema, v.data[off:])
	return t, err
}

// ForEach decodes every tuple on the page in slot order and calls fn. The
// tuple passed to fn is reused between calls; fn must not retain it.
func (v PageView) ForEach(fn func(record.Tuple) error) error {
	var scratch record.Tuple
	for i := 0; i < v.n; i++ {
		t, err := v.Tuple(scratch, i)
		if err != nil {
			return err
		}
		scratch = t
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}
