package heap

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"scanshare/internal/disk"
	"scanshare/internal/record"
)

func testDevice() *disk.Device {
	return disk.MustNew(disk.Model{
		SeekTime:        time.Millisecond,
		TransferPerPage: 100 * time.Microsecond,
		PageSize:        512,
	}, 0)
}

func testSchema() *record.Schema {
	return record.MustSchema(
		record.Field{Name: "k", Kind: record.KindInt64},
		record.Field{Name: "v", Kind: record.KindString},
	)
}

func buildTable(t *testing.T, dev *disk.Device, rows int) *Table {
	t.Helper()
	b, err := NewBuilder(dev, "t", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := b.Append(record.Tuple{record.Int64(int64(i)), record.String(fmt.Sprintf("row-%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// readAll reads the table back through the device page by page.
func readAll(t *testing.T, tbl *Table, dev *disk.Device) []record.Tuple {
	t.Helper()
	var out []record.Tuple
	for p := 0; p < tbl.NumPages(); p++ {
		pid, err := tbl.PageID(p)
		if err != nil {
			t.Fatal(err)
		}
		buf, _, err := dev.Read(0, pid)
		if err != nil {
			t.Fatal(err)
		}
		v, err := View(tbl.Schema(), buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < v.NumTuples(); i++ {
			tup, err := v.Tuple(nil, i)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, append(record.Tuple(nil), tup...))
		}
	}
	return out
}

func TestBuildAndReadBack(t *testing.T) {
	dev := testDevice()
	tbl := buildTable(t, dev, 100)
	if tbl.NumTuples() != 100 {
		t.Errorf("NumTuples = %d", tbl.NumTuples())
	}
	if tbl.NumPages() < 2 {
		t.Errorf("expected multiple pages for 100 rows of 512-byte pages, got %d", tbl.NumPages())
	}
	rows := readAll(t, tbl, dev)
	if len(rows) != 100 {
		t.Fatalf("read back %d rows", len(rows))
	}
	for i, row := range rows {
		if row[0].I != int64(i) || row[1].S != fmt.Sprintf("row-%d", i) {
			t.Fatalf("row %d = %#v", i, row)
		}
	}
}

func TestTableIsContiguousOnDevice(t *testing.T) {
	dev := testDevice()
	a := buildTable(t, dev, 50)
	b := buildTable(t, dev, 50)
	if a.FirstPage()+disk.PageID(a.NumPages()) != b.FirstPage() {
		t.Errorf("tables not contiguous: a=[%d,+%d), b starts at %d",
			a.FirstPage(), a.NumPages(), b.FirstPage())
	}
}

func TestPageIDBounds(t *testing.T) {
	dev := testDevice()
	tbl := buildTable(t, dev, 10)
	if _, err := tbl.PageID(-1); err == nil {
		t.Error("negative page accepted")
	}
	if _, err := tbl.PageID(tbl.NumPages()); err == nil {
		t.Error("out-of-range page accepted")
	}
	pid, err := tbl.PageID(0)
	if err != nil || pid != tbl.FirstPage() {
		t.Errorf("PageID(0) = %d, %v", pid, err)
	}
}

func TestBuilderValidation(t *testing.T) {
	dev := testDevice()
	if _, err := NewBuilder(dev, "", testSchema()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewBuilder(dev, "t", nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestEmptyTableRejected(t *testing.T) {
	b, _ := NewBuilder(testDevice(), "t", testSchema())
	if _, err := b.Finish(); err == nil {
		t.Error("empty table accepted")
	}
}

func TestOversizedTupleRejected(t *testing.T) {
	b, _ := NewBuilder(testDevice(), "t", testSchema())
	huge := record.Tuple{record.Int64(1), record.String(string(make([]byte, 600)))}
	if err := b.Append(huge); err == nil {
		t.Error("tuple larger than a page accepted")
	}
}

func TestAppendAfterFinishRejected(t *testing.T) {
	dev := testDevice()
	b, _ := NewBuilder(dev, "t", testSchema())
	b.Append(record.Tuple{record.Int64(1), record.String("x")})
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(record.Tuple{record.Int64(2), record.String("y")}); err == nil {
		t.Error("Append after Finish accepted")
	}
	if _, err := b.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
}

func TestAppendWrongSchemaRejected(t *testing.T) {
	b, _ := NewBuilder(testDevice(), "t", testSchema())
	if err := b.Append(record.Tuple{record.String("wrong"), record.String("x")}); err == nil {
		t.Error("mis-typed tuple accepted")
	}
}

func TestViewRejectsCorruptPages(t *testing.T) {
	s := testSchema()
	if _, err := View(s, []byte{}); err == nil {
		t.Error("empty page accepted")
	}
	// Claims 100 tuples but has no slot directory.
	if _, err := View(s, []byte{100, 0, 0}); err == nil {
		t.Error("overlong slot directory accepted")
	}
}

func TestViewTupleBounds(t *testing.T) {
	dev := testDevice()
	tbl := buildTable(t, dev, 5)
	buf, _, _ := dev.Read(0, tbl.FirstPage())
	v, err := View(tbl.Schema(), buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Tuple(nil, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := v.Tuple(nil, v.NumTuples()); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestForEach(t *testing.T) {
	dev := testDevice()
	tbl := buildTable(t, dev, 30)
	buf, _, _ := dev.Read(0, tbl.FirstPage())
	v, _ := View(tbl.Schema(), buf)
	var keys []int64
	err := v.ForEach(func(tup record.Tuple) error {
		keys = append(keys, tup[0].I)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != v.NumTuples() {
		t.Fatalf("ForEach visited %d of %d", len(keys), v.NumTuples())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			t.Fatalf("keys not in insertion order: %v", keys)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	dev := testDevice()
	tbl := buildTable(t, dev, 10)
	buf, _, _ := dev.Read(0, tbl.FirstPage())
	v, _ := View(tbl.Schema(), buf)
	calls := 0
	err := v.ForEach(func(record.Tuple) error {
		calls++
		return fmt.Errorf("stop")
	})
	if err == nil || calls != 1 {
		t.Errorf("err=%v calls=%d, want error after 1 call", err, calls)
	}
}

// TestRoundTripProperty builds tables from random tuples and verifies a full
// readback matches, regardless of how tuples pack into pages.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(200)
		dev := testDevice()
		b, _ := NewBuilder(dev, "t", testSchema())
		want := make([]record.Tuple, 0, rows)
		for i := 0; i < rows; i++ {
			s := make([]byte, rng.Intn(40))
			for j := range s {
				s[j] = byte('a' + rng.Intn(26))
			}
			tup := record.Tuple{record.Int64(rng.Int63()), record.String(string(s))}
			if err := b.Append(tup); err != nil {
				return false
			}
			want = append(want, tup)
		}
		tbl, err := b.Finish()
		if err != nil || tbl.NumTuples() != int64(rows) {
			return false
		}
		var got []record.Tuple
		for p := 0; p < tbl.NumPages(); p++ {
			pid, _ := tbl.PageID(p)
			buf, _, err := dev.Read(0, pid)
			if err != nil {
				return false
			}
			v, err := View(tbl.Schema(), buf)
			if err != nil {
				return false
			}
			if err := v.ForEach(func(tup record.Tuple) error {
				got = append(got, append(record.Tuple(nil), tup...))
				return nil
			}); err != nil {
				return false
			}
		}
		return reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
