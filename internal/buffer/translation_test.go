package buffer

import (
	"errors"
	"math"
	"testing"

	"scanshare/internal/disk"
)

func TestNormalizeTranslation(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"", TranslationMap, true},
		{TranslationMap, TranslationMap, true},
		{TranslationArray, TranslationArray, true},
		{"Array", "", false},
		{"hash", "", false},
	}
	for _, c := range cases {
		got, err := NormalizeTranslation(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("NormalizeTranslation(%q) = %q, %v; want %q, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if got := Translations(); len(got) != 2 || got[0] != TranslationMap || got[1] != TranslationArray {
		t.Errorf("Translations() = %v", got)
	}
}

// newArrayPool builds a single-shard array-translation pool for the
// edge-case tests; the tiny capacity makes eviction deterministic.
func newArrayPool(t *testing.T, capacity int) *Pool {
	t.Helper()
	return MustNewPoolOpts(PoolOptions{Capacity: capacity, Translation: TranslationArray})
}

// fillPage drives one page through the full miss cycle and leaves it
// unpinned at prio.
func fillPage(t *testing.T, p *Pool, pid disk.PageID, prio Priority) {
	t.Helper()
	st, _ := p.Acquire(pid)
	if st != Miss {
		t.Fatalf("Acquire(%d) = %v, want miss", pid, st)
	}
	if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
		t.Fatalf("Fill(%d): %v", pid, err)
	}
	if err := p.Release(pid, prio); err != nil {
		t.Fatalf("Release(%d): %v", pid, err)
	}
}

// TestTranslationGrowsOnDemand: the array starts with zero coverage and
// grows in whole chunks as misses reserve frames; an optimistic read of an
// uncovered page id is a fallback, not a crash, and becomes a lock-free hit
// once the page is resident.
func TestTranslationGrowsOnDemand(t *testing.T) {
	p := newArrayPool(t, 4)
	if got := p.xlate.covered(); got != 0 {
		t.Fatalf("fresh pool covers %d pages, want 0", got)
	}
	if _, ok := p.ReadOptimistic(7); ok {
		t.Fatal("ReadOptimistic hit on an empty pool")
	}
	fillPage(t, p, 7, PriorityNormal)
	if got := p.xlate.covered(); got != xlateChunkPages {
		t.Fatalf("after pid 7: covered %d, want one chunk (%d)", got, xlateChunkPages)
	}
	data, ok := p.ReadOptimistic(7)
	if !ok || len(data) != 1 || data[0] != 7 {
		t.Fatalf("ReadOptimistic(7) = %v, %v after fill", data, ok)
	}

	// A pid in a later chunk grows the directory without moving the old
	// chunk: page 7 stays optimistically readable through the same entry.
	far := disk.PageID(3*xlateChunkPages + 11)
	before := p.xlate.entry(7)
	fillPage(t, p, far, PriorityNormal)
	if got, want := p.xlate.covered(), 4*xlateChunkPages; got != want {
		t.Fatalf("after pid %d: covered %d, want %d", far, got, want)
	}
	if after := p.xlate.entry(7); after != before {
		t.Fatal("directory growth relocated an existing translation entry")
	}
	if _, ok := p.ReadOptimistic(7); !ok {
		t.Fatal("page 7 no longer optimistically readable after growth")
	}
	if _, ok := p.ReadOptimistic(far); !ok {
		t.Fatalf("page %d not optimistically readable after fill", far)
	}
	p.CheckInvariants()

	st := p.Stats()
	if st.OptHits == 0 || st.OptFallbacks == 0 {
		t.Fatalf("optimistic counters not tracking: %+v", st)
	}
}

// TestTranslationOutOfRange: negative page ids and ids at or past the array
// cap never enter the flat array — they live in the overflow map, where the
// locked path serves them with full semantics while the optimistic path
// always declines.
func TestTranslationOutOfRange(t *testing.T) {
	p := newArrayPool(t, 4)
	for _, pid := range []disk.PageID{-1, -12345, MaxTranslationPages, MaxTranslationPages + 99} {
		fillPage(t, p, pid, PriorityNormal)
		if !p.Contains(pid) {
			t.Fatalf("out-of-range page %d not resident after fill", pid)
		}
		if _, ok := p.ReadOptimistic(pid); ok {
			t.Fatalf("out-of-range page %d served optimistically", pid)
		}
		// The locked hit path still works.
		st, data := p.Acquire(pid)
		if st != Hit || data[0] != byte(pid) {
			t.Fatalf("Acquire(%d) = %v, %v; want locked hit", pid, st, data)
		}
		if err := p.Release(pid, PriorityNormal); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.xlate.covered(); got != 0 {
		t.Fatalf("out-of-range pids grew the array to %d pages", got)
	}
	p.CheckInvariants()

	// Overflow pages evict like any other: fill past capacity and check
	// nothing leaks.
	for pid := disk.PageID(0); pid < 8; pid++ {
		fillPage(t, p, pid, PriorityNormal)
	}
	if got := p.Len(); got > p.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", got, p.Capacity())
	}
	p.CheckInvariants()
}

// TestOptimisticPendingFallback: a page mid-read (pending frame, odd
// version) must not be optimistically readable — the locked path knows how
// to wait on the in-flight I/O, the fast path does not.
func TestOptimisticPendingFallback(t *testing.T) {
	p := newArrayPool(t, 4)
	if st, _ := p.Acquire(3); st != Miss {
		t.Fatal("expected miss")
	}
	if _, ok := p.ReadOptimistic(3); ok {
		t.Fatal("ReadOptimistic hit a pending frame")
	}
	if err := p.Fill(3, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.ReadOptimistic(3); !ok {
		t.Fatal("ReadOptimistic missed a filled frame")
	}
	st := p.Stats()
	if st.OptFallbacks != 1 || st.OptHits != 1 || st.OptRetries != 0 {
		t.Fatalf("counters = %+v, want 1 fallback, 1 hit, 0 retries", st)
	}
}

// TestErrAllPinnedParity: a full shard of pinned frames surfaces AllPinned
// with the same classification and the same sentinel error under both
// translations.
func TestErrAllPinnedParity(t *testing.T) {
	for _, translation := range Translations() {
		t.Run(translation, func(t *testing.T) {
			p := MustNewPoolOpts(PoolOptions{Capacity: 2, Translation: translation})
			for pid := disk.PageID(0); pid < 2; pid++ {
				if st, _ := p.Acquire(pid); st != Miss {
					t.Fatalf("Acquire(%d): want miss", pid)
				}
				if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
					t.Fatal(err)
				}
				// Keep the pin: the shard fills up with pinned frames.
			}
			st, _ := p.Acquire(9)
			if st != AllPinned {
				t.Fatalf("Acquire on full pinned shard = %v, want all-pinned", st)
			}
			if !errors.Is(st.Err(), ErrAllPinned) {
				t.Fatalf("Status.Err() = %v, want ErrAllPinned", st.Err())
			}
			if got := p.Stats().AllPinned; got != 1 {
				t.Fatalf("AllPinned counter = %d, want 1", got)
			}
			// With a read in flight instead, both translations classify the
			// full shard as Busy, not AllPinned.
			if err := p.Release(0, PriorityEvict); err != nil {
				t.Fatal(err)
			}
			if st, _ := p.Acquire(10); st != Miss { // evicts page 0
				t.Fatalf("Acquire(10) = %v, want miss", st)
			}
			if st, _ := p.Acquire(11); st != Busy {
				t.Fatalf("Acquire with pending read = %v, want busy", st)
			}
			p.CheckInvariants()
		})
	}
}

// TestEvictionRacesValidatingReader replays, step by step, the interleaving
// the optimistic protocol exists to defeat: a reader loads the translation
// entry and the frame's (even) version, the page is evicted and the frame
// recycled for a new occupant, and the reader then tries to validate. Both
// fence points must trip it: the version changed, and the content cell
// either cleared or carries the new occupant's pid.
func TestEvictionRacesValidatingReader(t *testing.T) {
	p := newArrayPool(t, 1)
	fillPage(t, p, 5, PriorityEvict)

	// Reader half 1: snapshot entry, frame, version — then stall.
	e := p.xlate.entry(5)
	f := e.Load()
	if f == nil {
		t.Fatal("page 5 not in the array")
	}
	v1 := f.version.Load()
	if v1&1 != 0 {
		t.Fatalf("settled frame has odd version %d", v1)
	}
	c1 := f.content.Load()
	if c1 == nil || c1.pid != 5 {
		t.Fatal("content cell missing before eviction")
	}

	// Eviction: page 9 takes the only frame (capacity 1, LIFO freelist, so
	// it is the same frame object the reader holds).
	fillPage(t, p, 9, PriorityNormal)
	if e.Load() != nil {
		t.Fatal("old entry still populated after eviction")
	}
	f2 := p.xlate.entry(9).Load()
	if f2 != f {
		t.Fatal("recycle did not reuse the frame; the race cannot be staged")
	}

	// Reader half 2: validation must fail on every fence.
	if got := f.version.Load(); got == v1 {
		t.Fatalf("version unchanged (%d) across evict+refill", got)
	}
	c2 := f.content.Load()
	if c2 == c1 {
		t.Fatal("content cell not republished for the new occupant")
	}
	if c2 == nil || c2.pid != 9 {
		t.Fatalf("new content cell carries pid %v, want 9", c2)
	}
	// The snapshot the reader already copied is still intact: eviction
	// recycles the frame, never the published cell.
	if c1.pid != 5 || c1.data[0] != 5 {
		t.Fatal("retired content cell was mutated")
	}
	// And the pool-level path agrees: the old pid falls back, the new hits.
	if _, ok := p.ReadOptimistic(5); ok {
		t.Fatal("evicted page still optimistically readable")
	}
	if data, ok := p.ReadOptimistic(9); !ok || data[0] != 9 {
		t.Fatal("new occupant not optimistically readable")
	}
	p.CheckInvariants()
}

// TestVersionWraparound: validation compares versions for equality only, so
// the protocol survives the counter overflowing — parity and inequality
// both hold across the uint64 wrap.
func TestVersionWraparound(t *testing.T) {
	p := newArrayPool(t, 1)
	fillPage(t, p, 5, PriorityEvict)
	f := p.xlate.entry(5).Load()

	// Push the settled frame to the edge of the counter (MaxUint64-1 is
	// even, so parity is preserved). Done before any concurrency, like a
	// pool that has simply lived long enough.
	f.version.Store(math.MaxUint64 - 1)
	if data, ok := p.ReadOptimistic(5); !ok || data[0] != 5 {
		t.Fatal("read failed at the pre-wrap version")
	}
	v1 := f.version.Load()

	// Evict + refill wraps the counter: evict bumps to MaxUint64 (odd,
	// in transition), recycle wraps to 0 (even, free), reserve to 1 (odd,
	// pending), fill to 2 (even, settled).
	fillPage(t, p, 9, PriorityNormal)
	if f2 := p.xlate.entry(9).Load(); f2 != f {
		t.Fatal("recycle did not reuse the frame")
	}
	if got := f.version.Load(); got != 2 {
		t.Fatalf("post-wrap version = %d, want 2", got)
	}
	if got := f.version.Load(); got == v1 {
		t.Fatal("wrap produced an equal version; stale validation would pass")
	}
	if data, ok := p.ReadOptimistic(9); !ok || data[0] != 9 {
		t.Fatal("read failed after the wrap")
	}
	p.CheckInvariants()
}

// TestMapTranslationNoOptimisticPath: under the default map translation
// ReadOptimistic declines immediately, with no side effects and no
// counters — that silence is what keeps the deterministic replay goldens
// byte-identical.
func TestMapTranslationNoOptimisticPath(t *testing.T) {
	p := MustNewPool(4)
	if got := p.Translation(); got != TranslationMap {
		t.Fatalf("Translation() = %q, want map", got)
	}
	fillPage(t, p, 3, PriorityNormal)
	if _, ok := p.ReadOptimistic(3); ok {
		t.Fatal("map pool served an optimistic read")
	}
	st := p.Stats()
	if st.OptHits != 0 || st.OptRetries != 0 || st.OptFallbacks != 0 {
		t.Fatalf("map pool recorded optimistic counters: %+v", st)
	}
}

// TestTranslationPresize: TranslationPages pre-grows coverage so the first
// misses never take the growth lock, clamped to the array cap.
func TestTranslationPresize(t *testing.T) {
	p := MustNewPoolOpts(PoolOptions{
		Capacity: 4, Translation: TranslationArray, TranslationPages: xlateChunkPages + 1,
	})
	if got, want := p.xlate.covered(), 2*xlateChunkPages; got != want {
		t.Fatalf("pre-sized coverage %d, want %d", got, want)
	}
	// Pre-sizing is ignored under map translation.
	m := MustNewPoolOpts(PoolOptions{Capacity: 4, TranslationPages: 1 << 20})
	if m.xlate != nil {
		t.Fatal("map pool allocated a translation array")
	}
	if _, err := NewPoolOpts(PoolOptions{Capacity: 4, Translation: TranslationArray, TranslationPages: -1}); err == nil {
		t.Fatal("negative pre-size accepted")
	}
	if _, err := NewPoolOpts(PoolOptions{Capacity: 4, Translation: "radix"}); err == nil {
		t.Fatal("unknown translation accepted")
	}
}
