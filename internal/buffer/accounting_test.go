package buffer

import (
	"errors"
	"testing"

	"scanshare/internal/disk"
	"scanshare/internal/trace"
)

func TestAbortCorrectsMissAccounting(t *testing.T) {
	p := MustNewPool(4)

	// Two delivered misses, one aborted one (failed read), one hit.
	load(t, p, 1)
	load(t, p, 2)
	if st, _ := p.Acquire(3); st != Miss {
		t.Fatalf("acquire 3: %v, want miss", st)
	}
	if err := p.Abort(3); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	p.Release(1, PriorityNormal)
	if st := load(t, p, 1); st != Hit {
		t.Fatalf("re-acquire 1: %v, want hit", st)
	}

	s := p.Stats()
	if s.Misses != 3 || s.Aborts != 1 || s.Fills != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 3 misses, 1 abort, 2 fills, 1 hit", s)
	}
	// Pages actually handed to callers: pages 1 (miss), 2 (miss), 1 (hit).
	if got := s.PagesDelivered(); got != 3 {
		t.Errorf("PagesDelivered = %d, want 3", got)
	}
	if s.Misses != s.Fills+s.Aborts {
		t.Errorf("Misses (%d) != Fills (%d) + Aborts (%d)", s.Misses, s.Fills, s.Aborts)
	}
	// HitRatio excludes the aborted miss from the denominator: 1 hit out of
	// 3 delivered acquires, not 1 out of 4.
	if got, want := s.HitRatio(), 1.0/3.0; got != want {
		t.Errorf("HitRatio = %g, want %g", got, want)
	}
	p.CheckInvariants()
}

func TestHitRatioAllAborted(t *testing.T) {
	p := MustNewPool(2)
	if st, _ := p.Acquire(1); st != Miss {
		t.Fatal("expected miss")
	}
	p.Abort(1)
	if got := p.Stats().HitRatio(); got != 0 {
		t.Errorf("HitRatio with only aborted reads = %g, want 0", got)
	}
}

func TestAllPinnedSentinel(t *testing.T) {
	p := MustNewPool(2)
	load(t, p, 1)
	load(t, p, 2)

	st, _ := p.Acquire(3)
	if st != AllPinned {
		t.Fatalf("acquire into fully pinned pool: %v, want all-pinned", st)
	}
	if !errors.Is(st.Err(), ErrAllPinned) {
		t.Errorf("Status.Err() = %v, want ErrAllPinned", st.Err())
	}
	if s := p.Stats(); s.AllPinned != 1 || s.BusyRetries != 0 {
		t.Errorf("stats = %+v, want 1 all-pinned, 0 busy", s)
	}
	for _, ok := range []Status{Hit, Miss, Busy} {
		if ok.Err() != nil {
			t.Errorf("Status(%v).Err() = %v, want nil", ok, ok.Err())
		}
	}
}

func TestFullPoolWithInflightReadIsBusy(t *testing.T) {
	// One frame is pending (read in flight), the other pinned: the pool is
	// full but the in-flight read will free a frame, so the right answer is
	// Busy, not AllPinned.
	p := MustNewPool(2)
	load(t, p, 1) // pinned, valid
	if st, _ := p.Acquire(2); st != Miss {
		t.Fatal("expected miss to reserve the pending frame")
	}
	// Frame for page 2 is pending now; pool is full.
	if st, _ := p.Acquire(3); st != Busy {
		t.Errorf("acquire with an in-flight read: want busy")
	}
	if s := p.Stats(); s.BusyRetries != 1 || s.AllPinned != 0 {
		t.Errorf("stats = %+v, want 1 busy, 0 all-pinned", s)
	}
	p.CheckInvariants()
}

func TestPoolEmitsEvictionTraceEvents(t *testing.T) {
	tr := trace.NewTracer(nil)
	rec := &trace.Recorder{}
	tr.Attach(rec)

	p := MustNewPool(2)
	p.SetTracer(tr)
	load(t, p, 1)
	p.Release(1, PriorityLow)
	load(t, p, 2)
	p.Release(2, PriorityHigh)
	load(t, p, 3) // evicts page 1 (low beats high)
	tr.Flush()

	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1 eviction", len(evs))
	}
	ev := evs[0]
	if ev.Kind != trace.KindEvict || ev.Page != 1 || Priority(ev.Prio) != PriorityLow {
		t.Errorf("eviction event = %+v, want page 1 at low priority", ev)
	}
	if s := p.Stats(); s.EvictionsByPr[PriorityLow] != 1 {
		t.Errorf("EvictionsByPr = %v, want one low-priority eviction", s.EvictionsByPr)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer close: %v", err)
	}
}

// TestAbortedFrameLeavesNoResidue guards the Abort path's frame-table and
// pending-counter bookkeeping under interleaved traffic.
func TestAbortedFrameLeavesNoResidue(t *testing.T) {
	p := MustNewPool(4)
	for i := 0; i < 50; i++ {
		pid := disk.PageID(i % 6)
		st, _ := p.Acquire(pid)
		switch st {
		case Miss:
			if i%3 == 0 {
				if err := p.Abort(pid); err != nil {
					t.Fatalf("Abort(%d): %v", pid, err)
				}
				continue
			}
			if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
				t.Fatalf("Fill(%d): %v", pid, err)
			}
			fallthrough
		case Hit:
			if err := p.Release(pid, PriorityNormal); err != nil {
				t.Fatalf("Release(%d): %v", pid, err)
			}
		}
		p.CheckInvariants()
	}
	s := p.Stats()
	if s.Aborts == 0 {
		t.Fatal("scenario produced no aborts")
	}
	if s.Misses != s.Fills+s.Aborts {
		t.Errorf("Misses (%d) != Fills (%d) + Aborts (%d)", s.Misses, s.Fills, s.Aborts)
	}
}
