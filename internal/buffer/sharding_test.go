package buffer

import (
	"sync"
	"testing"

	"scanshare/internal/disk"
)

func TestNewPoolShardsValidation(t *testing.T) {
	bad := []struct{ capacity, shards int }{
		{0, 1}, {-1, 1}, {8, 0}, {8, -2}, {4, 5}, {1, 2},
	}
	for _, tc := range bad {
		if _, err := NewPoolShards(tc.capacity, tc.shards); err == nil {
			t.Errorf("NewPoolShards(%d, %d) accepted", tc.capacity, tc.shards)
		}
	}
	for _, tc := range []struct{ capacity, shards int }{{1, 1}, {8, 8}, {100, 7}} {
		p, err := NewPoolShards(tc.capacity, tc.shards)
		if err != nil {
			t.Fatalf("NewPoolShards(%d, %d): %v", tc.capacity, tc.shards, err)
		}
		if p.Capacity() != tc.capacity || p.NumShards() != tc.shards {
			t.Errorf("NewPoolShards(%d, %d) = capacity %d, shards %d",
				tc.capacity, tc.shards, p.Capacity(), p.NumShards())
		}
	}
}

// TestShardCapacitySplit checks the even split with remainder-to-the-front:
// every frame of the total capacity is assigned to exactly one shard, and no
// two shards differ by more than one frame.
func TestShardCapacitySplit(t *testing.T) {
	for _, tc := range []struct{ capacity, shards int }{
		{10, 3}, {16, 16}, {17, 4}, {100, 7}, {5, 1},
	} {
		p := MustNewPoolShards(tc.capacity, tc.shards)
		total, min, max := 0, tc.capacity, 0
		for _, s := range p.shards {
			total += s.capacity
			if s.capacity < min {
				min = s.capacity
			}
			if s.capacity > max {
				max = s.capacity
			}
		}
		if total != tc.capacity {
			t.Errorf("capacity %d over %d shards: shard capacities sum to %d", tc.capacity, tc.shards, total)
		}
		if min < 1 || max-min > 1 {
			t.Errorf("capacity %d over %d shards: uneven split min %d max %d", tc.capacity, tc.shards, min, max)
		}
	}
}

// TestShardIndexSpreadsSequentialPages checks the routing hash: sequential
// page ids — the access pattern of every table scan — must spread across
// shards rather than clumping, or striping buys nothing for the workload the
// paper cares about.
func TestShardIndexSpreadsSequentialPages(t *testing.T) {
	const shards, pages = 8, 8000
	p := MustNewPoolShards(shards*8, shards)
	var counts [shards]int
	for pid := 0; pid < pages; pid++ {
		counts[p.shardIndex(disk.PageID(pid))]++
	}
	want := pages / shards
	for i, n := range counts {
		if n < want/2 || n > want*2 {
			t.Errorf("shard %d got %d of %d sequential pages (expected near %d): %v",
				i, n, pages, want, counts)
		}
	}
}

// TestShardStatsSumsToStats drives a multi-shard pool and checks the
// aggregate snapshot is exactly the sum of the per-shard ones.
func TestShardStatsSumsToStats(t *testing.T) {
	p := MustNewPoolShards(12, 4)
	for pid := disk.PageID(0); pid < 30; pid++ {
		st, _ := p.Acquire(pid)
		if st != Miss {
			continue
		}
		if pid%5 == 0 {
			_ = p.Abort(pid)
			continue
		}
		_ = p.Fill(pid, nil)
		_ = p.Release(pid, Priority(pid%4))
	}
	per := p.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries", len(per))
	}
	var sum Stats
	for _, s := range per {
		sum.Add(s)
	}
	if got := p.Stats(); got != sum {
		t.Errorf("Stats() = %+v, sum of shards = %+v", got, sum)
	}
}

// TestLenAndContainsLockFree hammers one shard's pages from a writer while
// readers poll Len and Contains; under -race this verifies introspection no
// longer needs (or takes) a global lock.
func TestLenAndContainsLockFree(t *testing.T) {
	p := MustNewPoolShards(16, 4)
	done := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
					if n := p.Len(); n < 0 || n > p.Capacity() {
						t.Errorf("Len() = %d outside [0, %d]", n, p.Capacity())
						return
					}
					_ = p.Contains(3)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		pid := disk.PageID(i % 24)
		st, _ := p.Acquire(pid)
		if st == Miss {
			_ = p.Fill(pid, nil)
			st = Hit
		}
		if st == Hit {
			_ = p.Release(pid, PriorityNormal)
		}
	}
	close(done)
	readers.Wait()
	p.CheckInvariants()
	if n := p.Len(); n > p.Capacity() {
		t.Errorf("final Len() = %d exceeds capacity %d", n, p.Capacity())
	}
}
