// Array-based page translation with an optimistic lock-free read path.
//
// Under TranslationMap (the default) each shard resolves page id → frame
// through a mutex-guarded Go map, exactly as the classic pool always has;
// that mode stays byte-identical so the deterministic replay goldens hold.
// Under TranslationArray the pool instead keeps a flat array of frame
// pointers indexed by page id — the vmcache design ("Making Array-Based
// Translation Practical for Modern, High-Performance Buffer Management") —
// plus a version counter per frame, which together give read-mostly hits a
// lock-free fast path:
//
//	entry := array[pid]            // atomic load, no lock
//	f := entry.Load()              // frame pointer (nil: not resident)
//	v1 := f.version.Load()         // odd: frame in transition, fall back
//	c := f.content.Load()          // immutable (pid, data) cell
//	ok := c.pid == pid && f.version.Load() == v1
//
// The version is even while a frame is settled (free or holding a valid
// page) and odd while it is in transition (a pending read, or being
// recycled). Every mutation of a frame's identity happens under the owning
// shard's mutex and is fenced by two version bumps — odd before the frame's
// translation entry or content changes, even after — so an optimistic reader
// that raced a recycle always sees either an odd version or a changed one
// and retries. Because the (pid, data) pair lives in a single immutable cell
// published with an atomic store, a validated read can never observe a torn
// mix of two occupants, and the content load carries the happens-before
// edge that makes the whole path clean under the race detector. Validation
// compares versions for equality only, so counter wraparound is harmless:
// parity and inequality both survive uint64 overflow.
//
// The array is sized from the observed page-id space, not preallocated at
// the 8-byte-per-possible-page worst case: it grows in fixed chunks (the
// chunk directory is copy-on-write, chunks themselves never move, so lock
// free readers just load the current directory). Page ids that fall outside
// the array's hard cap — negative ids, or ids past MaxTranslationPages —
// are explicitly rejected by the fast path and tracked in a small per-shard
// overflow map instead, so the locked path serves them with identical
// semantics (including ErrAllPinned classification).
package buffer

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scanshare/internal/disk"
)

// Translation table kinds, accepted by NewPoolOpts and the engine-level
// Config.PoolTranslation / scanshare-bench -pool-translation plumbing.
const (
	// TranslationMap is the classic mutex-guarded per-shard map. It is the
	// default, has no optimistic read path, and is the only mode the
	// byte-exact replay goldens run under.
	TranslationMap = "map"
	// TranslationArray is the flat array translation table with versioned
	// frames and the optimistic lock-free read path (ReadOptimistic).
	TranslationArray = "array"
)

// Translations returns the known translation table kinds, default first.
func Translations() []string { return []string{TranslationMap, TranslationArray} }

// NormalizeTranslation maps a translation kind to its canonical form (""
// means the default map translation) or reports an error naming the valid
// choices.
func NormalizeTranslation(name string) (string, error) {
	switch name {
	case "", TranslationMap:
		return TranslationMap, nil
	case TranslationArray:
		return TranslationArray, nil
	}
	return "", fmt.Errorf("buffer: unknown translation %q (valid: %q, %q)", name, TranslationMap, TranslationArray)
}

const (
	// xlateChunkPages is the translation array growth quantum: coverage
	// extends in chunks of this many page ids.
	xlateChunkPages = 4096
	// MaxTranslationPages caps the flat array. Page ids at or past the cap
	// (and negative ids) never enter the array: the optimistic path rejects
	// them and the locked path tracks them in the shard's overflow map.
	MaxTranslationPages = 1 << 22
	// optMaxRetries bounds how often an optimistic read revalidates before
	// giving up and taking the locked path; under heavy recycling of one
	// frame the pessimistic path is the productive choice.
	optMaxRetries = 8
)

// pageContent is the immutable payload cell an optimistic read validates
// against. A frame publishes a fresh cell on every Fill and clears it on
// recycle; the cell itself is never mutated, so a reader that obtained a
// pointer to it can use pid and data without further synchronization.
type pageContent struct {
	pid  disk.PageID
	data []byte
}

// xlateChunk is one fixed-size block of translation entries. Chunks never
// move once allocated; only the directory slice grows.
type xlateChunk [xlateChunkPages]atomic.Pointer[frame]

// translation is the pool-wide flat page-id → frame array, shared by all
// shards (each page id still belongs to exactly one shard; the shard's
// mutex guards all stores to its entries). Reads are lock-free: load the
// chunk directory, index twice.
type translation struct {
	// growMu serializes directory growth; it is only taken on the miss path
	// when coverage must extend, with the reserving shard's mutex held
	// (lock order: shard.mu → growMu, never the reverse).
	growMu sync.Mutex
	chunks atomic.Pointer[[]*xlateChunk]
}

// newTranslation returns a table pre-grown to cover pages page ids (clamped
// to the cap); zero means grow entirely on demand.
func newTranslation(pages int) *translation {
	t := &translation{}
	if pages > 0 {
		if pages > MaxTranslationPages {
			pages = MaxTranslationPages
		}
		t.ensure(disk.PageID(pages - 1))
	}
	return t
}

// inRange reports whether pid can ever live in the flat array.
func (t *translation) inRange(pid disk.PageID) bool {
	return pid >= 0 && pid < MaxTranslationPages
}

// entry returns the translation slot for pid, or nil when pid is out of
// range or coverage has not grown that far yet. Lock-free.
func (t *translation) entry(pid disk.PageID) *atomic.Pointer[frame] {
	if !t.inRange(pid) {
		return nil
	}
	dir := t.chunks.Load()
	if dir == nil {
		return nil
	}
	ci := int(pid) / xlateChunkPages
	if ci >= len(*dir) {
		return nil
	}
	return &(*dir)[ci][int(pid)%xlateChunkPages]
}

// ensure grows coverage to include pid and returns its slot, or nil when
// pid is out of range (the caller falls back to its overflow map). The
// directory is copy-on-write: a new slice is built with the old chunk
// pointers plus freshly allocated chunks, then published with one atomic
// store, so concurrent entry() calls always see a consistent directory and
// existing entries never relocate.
func (t *translation) ensure(pid disk.PageID) *atomic.Pointer[frame] {
	if e := t.entry(pid); e != nil {
		return e
	}
	if !t.inRange(pid) {
		return nil
	}
	t.growMu.Lock()
	defer t.growMu.Unlock()
	want := int(pid)/xlateChunkPages + 1
	old := t.chunks.Load()
	have := 0
	if old != nil {
		have = len(*old)
	}
	if want > have { // recheck under growMu: another shard may have grown
		dir := make([]*xlateChunk, want)
		if old != nil {
			copy(dir, *old)
		}
		for i := have; i < want; i++ {
			dir[i] = new(xlateChunk)
		}
		t.chunks.Store(&dir)
	}
	return t.entry(pid)
}

// covered returns the number of page ids the array currently spans. Tests
// and the reference model use it to predict fast-path reachability.
func (t *translation) covered() int {
	dir := t.chunks.Load()
	if dir == nil {
		return 0
	}
	return len(*dir) * xlateChunkPages
}

// Translation returns the pool's canonical translation kind.
func (p *Pool) Translation() string { return p.translation }

// ReadOptimistic attempts the lock-free fast path for a read-only view of
// page pid. On success the returned data is an immutable snapshot that was
// the valid content of pid at some instant during the call; the caller must
// NOT Release it — optimistic reads do not pin. The page may be evicted at
// any moment after return, but the returned slice stays intact (eviction
// recycles the frame, not the published content cell).
//
// ok is false when the fast path cannot serve the read — the pool uses map
// translation, pid is outside array coverage, the page is absent or in
// transition, or validation kept failing — and the caller should fall back
// to Acquire. Map-translation pools return immediately with no side
// effects, which keeps the deterministic replay goldens byte-identical.
func (p *Pool) ReadOptimistic(pid disk.PageID) ([]byte, bool) {
	if p.xlate == nil {
		return nil, false
	}
	s := p.shardFor(pid)
	e := p.xlate.entry(pid)
	if e == nil {
		s.optFallbacks.Add(1)
		return nil, false
	}
	for try := 0; try < optMaxRetries; try++ {
		f := e.Load()
		if f == nil {
			// Not resident: nothing to validate, miss path required.
			s.optFallbacks.Add(1)
			return nil, false
		}
		v1 := f.version.Load()
		if v1&1 != 0 {
			// In transition (read in flight, or mid-recycle): the locked
			// path knows how to wait; the fast path does not.
			s.optFallbacks.Add(1)
			return nil, false
		}
		c := f.content.Load()
		if c == nil || c.pid != pid || f.version.Load() != v1 {
			// The frame was recycled between our loads; the entry may
			// already point at a fresh frame, so re-read and try again.
			s.optRetries.Add(1)
			continue
		}
		// Feed the hit back to replacement: one relaxed store the
		// priority-LRU victim walk reads as a CLOCK second chance. A racing
		// eviction may recycle the frame between validation and this store,
		// granting the next occupant one undeserved reprieve — benign, and
		// reserveLocked clears the bit anyway. The predictive policy ignores
		// it: its relevance estimates are refreshed by the scan feed
		// (UpdateScan runs per page processed, optimistic or not).
		f.touched.Store(true)
		s.optHits.Add(1)
		return c.data, true
	}
	s.optFallbacks.Add(1)
	return nil, false
}
