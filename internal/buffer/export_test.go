package buffer

// CheckInvariants exposes the internal consistency check to tests.
func (p *Pool) CheckInvariants() { p.checkInvariants() }
