package buffer

import (
	"fmt"
	"sync/atomic"
	"testing"

	"scanshare/internal/disk"
)

// BenchmarkPoolAcquireRelease measures the acquire/release hot path under
// goroutine contention for several stripe counts. The working set fits in the
// pool (no evictions), so after warmup the benchmark is a pure lock-and-map
// microbenchmark: with one shard every goroutine serializes on a single
// mutex; with more, concurrent acquires mostly land on different stripes.
// Run with -cpu 1,4,8 (make bench-pool) to see the scaling surface —
// single-CPU numbers mostly show the striping overhead, multi-CPU numbers the
// contention relief.
func BenchmarkPoolAcquireRelease(b *testing.B) {
	const (
		capacity   = 4096
		workingSet = 2048
	)
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pool := MustNewPoolShards(capacity, shards)
			warmPool(b, pool, workingSet)
			var nextGoroutine atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stagger each goroutine's walk so they collide on pages
				// (and shards) at realistic, varying offsets.
				i := int(nextGoroutine.Add(1)) * 7919
				for pb.Next() {
					pid := disk.PageID(i % workingSet)
					i++
					st, _ := pool.Acquire(pid)
					switch st {
					case Hit:
						_ = pool.Release(pid, PriorityNormal)
					case Miss:
						_ = pool.Fill(pid, nil)
						_ = pool.Release(pid, PriorityNormal)
					}
				}
			})
			b.StopTimer()
			pool.CheckInvariants()
		})
	}
}

// warmPool fills pages 0..workingSet-1 and leaves them unpinned at normal
// priority, so a benchmark's steady state is all hits.
func warmPool(b *testing.B, pool *Pool, workingSet disk.PageID) {
	b.Helper()
	for pid := disk.PageID(0); pid < workingSet; pid++ {
		if st, _ := pool.Acquire(pid); st != Miss {
			b.Fatalf("warmup acquire(%d) = %v", pid, st)
		}
		if err := pool.Fill(pid, []byte{byte(pid)}); err != nil {
			b.Fatal(err)
		}
		if err := pool.Release(pid, PriorityNormal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolAcquireHitParallel is the translation A/B on the read-mostly
// hit path: every goroutine runs the runner's fetch discipline — try
// ReadOptimistic, fall back to Acquire/Release — against a fully warm pool,
// so every operation is a hit and the two translations differ only in how
// the hit is served. Map translation declines the optimistic call in one
// branch and takes the shard mutex both ways; array translation serves the
// hit with three atomic loads and a validation load, no mutex, no pin
// bookkeeping. Run with -cpu 1,4,8 (make bench-pool): the single-CPU
// numbers bound the fast path's raw overhead, the multi-CPU numbers show
// the mutex convoy the optimistic path sidesteps.
func BenchmarkPoolAcquireHitParallel(b *testing.B) {
	const (
		capacity   = 4096
		workingSet = 2048
	)
	for _, translation := range Translations() {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/shards=%d", translation, shards), func(b *testing.B) {
				pool := MustNewPoolOpts(PoolOptions{
					Capacity: capacity, Shards: shards, Translation: translation,
				})
				warmPool(b, pool, workingSet)
				var nextGoroutine atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := int(nextGoroutine.Add(1)) * 7919
					for pb.Next() {
						pid := disk.PageID(i % workingSet)
						i++
						if _, ok := pool.ReadOptimistic(pid); ok {
							continue
						}
						if st, _ := pool.Acquire(pid); st == Hit {
							_ = pool.Release(pid, PriorityNormal)
						}
					}
				})
				b.StopTimer()
				pool.CheckInvariants()
				st := pool.Stats()
				if translation == TranslationArray && st.OptHits == 0 {
					b.Fatal("array benchmark never took the optimistic path")
				}
			})
		}
	}
}
