package buffer

import (
	"fmt"
	"sync/atomic"
	"testing"

	"scanshare/internal/disk"
)

// BenchmarkPoolAcquireRelease measures the acquire/release hot path under
// goroutine contention for several stripe counts. The working set fits in the
// pool (no evictions), so after warmup the benchmark is a pure lock-and-map
// microbenchmark: with one shard every goroutine serializes on a single
// mutex; with more, concurrent acquires mostly land on different stripes.
// Run with -cpu 1,4,8 (make bench-pool) to see the scaling surface —
// single-CPU numbers mostly show the striping overhead, multi-CPU numbers the
// contention relief.
func BenchmarkPoolAcquireRelease(b *testing.B) {
	const (
		capacity   = 4096
		workingSet = 2048
	)
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pool := MustNewPoolShards(capacity, shards)
			for pid := disk.PageID(0); pid < workingSet; pid++ {
				if st, _ := pool.Acquire(pid); st != Miss {
					b.Fatalf("warmup acquire(%d) = %v", pid, st)
				}
				if err := pool.Fill(pid, nil); err != nil {
					b.Fatal(err)
				}
				if err := pool.Release(pid, PriorityNormal); err != nil {
					b.Fatal(err)
				}
			}
			var nextGoroutine atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stagger each goroutine's walk so they collide on pages
				// (and shards) at realistic, varying offsets.
				i := int(nextGoroutine.Add(1)) * 7919
				for pb.Next() {
					pid := disk.PageID(i % workingSet)
					i++
					st, _ := pool.Acquire(pid)
					switch st {
					case Hit:
						_ = pool.Release(pid, PriorityNormal)
					case Miss:
						_ = pool.Fill(pid, nil)
						_ = pool.Release(pid, PriorityNormal)
					}
				}
			})
			b.StopTimer()
			pool.CheckInvariants()
		})
	}
}
