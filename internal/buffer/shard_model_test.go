package buffer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"scanshare/internal/disk"
)

// modelFrame is one page's state in the reference model.
type modelFrame struct {
	pins    int
	prio    Priority
	pending bool
}

// modelEntry is one unpinned page in a model policy's order, with the
// priority it was released at (needed for the per-priority eviction
// counters).
type modelEntry struct {
	pid  disk.PageID
	prio Priority
}

// modelPolicy is the reference-side mirror of replacementPolicy: it orders a
// shard's unpinned pages and picks victims. One implementation per pool
// policy, each written against the documented semantics rather than the
// implementation.
type modelPolicy interface {
	insert(pid disk.PageID, prio Priority)
	remove(pid disk.PageID, prio Priority)
	victim() (disk.PageID, Priority, bool)
}

// modelLRU is the paper's priority-LRU: per-priority FIFOs, victim from the
// front of the lowest occupied level, with the optimistic read path's CLOCK
// second chance — a touched page at the front is skipped once (bit cleared,
// moved to the back) before it can be victimized. touched is the shard's
// per-page view of the frame bit; under map translation it stays empty and
// the walk is the classic front-pop.
type modelLRU struct {
	levels  [numPriorities][]modelEntry
	touched map[disk.PageID]bool
}

func (m *modelLRU) insert(pid disk.PageID, prio Priority) {
	m.levels[prio] = append(m.levels[prio], modelEntry{pid, prio})
}

func (m *modelLRU) remove(pid disk.PageID, prio Priority) {
	lvl := m.levels[prio]
	for i, e := range lvl {
		if e.pid == pid {
			m.levels[prio] = append(lvl[:i], lvl[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("model: page %d not on level %d", pid, prio))
}

func (m *modelLRU) victim() (disk.PageID, Priority, bool) {
	for prio := PriorityEvict; prio < numPriorities; prio++ {
		if len(m.levels[prio]) == 0 {
			continue
		}
		// Bounded second-chance walk, mirroring lruPolicy.victim: each
		// touched front entry is cleared and rotated to the back once; if
		// the whole level was touched, the original front (now cleared)
		// is evicted anyway.
		for n := len(m.levels[prio]); n > 0; n-- {
			e := m.levels[prio][0]
			if m.touched[e.pid] {
				delete(m.touched, e.pid)
				m.levels[prio] = append(m.levels[prio][1:], e)
				continue
			}
			m.levels[prio] = m.levels[prio][1:]
			return e.pid, e.prio, true
		}
		e := m.levels[prio][0]
		m.levels[prio] = m.levels[prio][1:]
		return e.pid, e.prio, true
	}
	return disk.InvalidPage, 0, false
}

// modelScan is one registered scan in the reference registry.
type modelScan struct {
	base               int64
	start, end, origin int
	seed               float64
	processed          int
	speed              float64
	active             bool
}

// modelScanTable mirrors the pool-level scan registry. It is shared by every
// model shard's predictive policy, like the real scanTable.
type modelScanTable struct {
	scans map[int64]*modelScan
}

func newModelScanTable() *modelScanTable {
	return &modelScanTable{scans: make(map[int64]*modelScan)}
}

func (t *modelScanTable) register(id int64, base int64, start, end, origin int, seed float64) {
	if end <= start || origin < start || origin >= end {
		return // invalid registrations are advisory no-ops
	}
	t.scans[id] = &modelScan{base: base, start: start, end: end, origin: origin, seed: seed, active: true}
}

func (t *modelScanTable) update(id int64, processed int, speed float64) {
	s, ok := t.scans[id]
	if !ok {
		return
	}
	if processed < 0 {
		processed = 0
	}
	if max := s.end - s.start; processed > max {
		processed = max
	}
	s.processed = processed
	s.speed = speed
}

func (t *modelScanTable) setActive(id int64, active bool) {
	if s, ok := t.scans[id]; ok {
		s.active = active
	}
}

func (t *modelScanTable) unregister(id int64) { delete(t.scans, id) }

// modelNextUse is the reference estimator: seconds until some active scan
// next reads pid under the circular straight-line model, +Inf when no scan
// will.
func modelNextUse(t *modelScanTable, pid disk.PageID) float64 {
	best := math.Inf(1)
	for _, s := range t.scans {
		if !s.active {
			continue
		}
		speed := s.speed
		if speed <= 0 {
			speed = s.seed
		}
		if speed <= 0 {
			speed = 1.0
		}
		pageNo := int(int64(pid) - s.base)
		if pageNo < s.start || pageNo >= s.end {
			continue
		}
		length := s.end - s.start
		rank := pageNo - s.origin
		if rank < 0 {
			rank += length
		}
		if rank < s.processed {
			continue
		}
		if est := float64(rank-s.processed) / speed; est < best {
			best = est
		}
	}
	return best
}

// modelPredictive is the reference predictive policy: one release-order
// list; the victim is the frame with the strictly largest next-use estimate,
// earliest-released on ties, +Inf winning outright.
type modelPredictive struct {
	order []modelEntry
	scans *modelScanTable
}

func (m *modelPredictive) insert(pid disk.PageID, prio Priority) {
	m.order = append(m.order, modelEntry{pid, prio})
}

func (m *modelPredictive) remove(pid disk.PageID, prio Priority) {
	for i, e := range m.order {
		if e.pid == pid {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("model: page %d not on release order", pid))
}

func (m *modelPredictive) victim() (disk.PageID, Priority, bool) {
	if len(m.order) == 0 {
		return disk.InvalidPage, 0, false
	}
	best, bestEst := -1, math.Inf(-1)
	for i, e := range m.order {
		est := modelNextUse(m.scans, e.pid)
		if math.IsInf(est, 1) {
			best = i
			break
		}
		if best < 0 || est > bestEst {
			best, bestEst = i, est
		}
	}
	e := m.order[best]
	m.order = append(m.order[:best], m.order[best+1:]...)
	return e.pid, e.prio, true
}

// modelShard is a single-lock reference implementation of one pool shard
// with the full operation surface — pending frames, Abort, ReleaseRetain,
// multi-pin — written against the documented semantics rather than the
// implementation. (The simpler refPool in model_test.go predates Abort and
// models only the single-pin hit/miss/evict core.) The differential test
// instantiates one modelShard per pool shard and routes operations with the
// pool's own shardIndex, so every Acquire outcome and every counter must
// match exactly, for any shard count and either replacement policy.
type modelShard struct {
	capacity int
	frames   map[disk.PageID]*modelFrame
	policy   modelPolicy
	pending  int
	stats    Stats
	// touched mirrors the per-frame optimistic-read bit: set by a modeled
	// ReadOptimistic hit, consumed by the LRU second-chance walk, cleared
	// when a page is released (recency refreshed) or leaves the shard.
	touched map[disk.PageID]bool
}

func newModelShard(capacity int, policy modelPolicy) *modelShard {
	m := &modelShard{capacity: capacity, frames: make(map[disk.PageID]*modelFrame), policy: policy, touched: map[disk.PageID]bool{}}
	if lru, ok := policy.(*modelLRU); ok {
		lru.touched = m.touched
	}
	return m
}

func (m *modelShard) evict() bool {
	pid, prio, ok := m.policy.victim()
	if !ok {
		return false
	}
	delete(m.frames, pid)
	delete(m.touched, pid)
	m.stats.Evictions++
	m.stats.EvictionsByPr[prio]++
	return true
}

func (m *modelShard) acquire(pid disk.PageID) Status {
	if f, ok := m.frames[pid]; ok {
		if f.pending {
			m.stats.BusyRetries++
			return Busy
		}
		if f.pins == 0 {
			m.policy.remove(pid, f.prio)
		}
		f.pins++
		m.stats.LogicalReads++
		m.stats.Hits++
		return Hit
	}
	if len(m.frames) >= m.capacity && !m.evict() {
		if m.pending > 0 {
			m.stats.BusyRetries++
			return Busy
		}
		m.stats.AllPinned++
		return AllPinned
	}
	m.frames[pid] = &modelFrame{pins: 1, pending: true}
	m.pending++
	m.stats.LogicalReads++
	m.stats.Misses++
	return Miss
}

func (m *modelShard) fill(pid disk.PageID) {
	f := m.frames[pid]
	f.pending = false
	m.pending--
	m.stats.Fills++
}

func (m *modelShard) abort(pid disk.PageID) {
	delete(m.frames, pid)
	delete(m.touched, pid)
	m.pending--
	m.stats.Aborts++
}

func (m *modelShard) release(pid disk.PageID, prio Priority) {
	f := m.frames[pid]
	f.pins--
	f.prio = prio
	if f.pins == 0 {
		delete(m.touched, pid)
		m.policy.insert(pid, prio)
	}
}

func (m *modelShard) releaseRetain(pid disk.PageID) {
	f := m.frames[pid]
	f.pins--
	if f.pins == 0 {
		delete(m.touched, pid)
		m.policy.insert(pid, f.prio)
	}
}

// contains mirrors Pool.Contains: resident and valid.
func (m *modelShard) contains(pid disk.PageID) bool {
	f, ok := m.frames[pid]
	return ok && !f.pending
}

// modelXlate mirrors the array translation table's observable state: how
// many page ids the flat array currently covers. Coverage grows in whole
// chunks when a miss reserves a frame for an in-range pid; out-of-range
// pids (negative, or past the cap) never touch it.
type modelXlate struct {
	covered int
}

func modelInRange(pid disk.PageID) bool {
	return pid >= 0 && pid < MaxTranslationPages
}

// reserve records the coverage growth a miss-reserve of pid causes.
func (x *modelXlate) reserve(pid disk.PageID) {
	if x == nil || !modelInRange(pid) {
		return
	}
	if want := (int(pid)/xlateChunkPages + 1) * xlateChunkPages; want > x.covered {
		x.covered = want
	}
}

// readOptimistic predicts ReadOptimistic for a single-threaded array pool
// and mutates the model counters exactly as the real fast path does: a hit
// iff pid is in array coverage, resident, and valid; every declined call is
// exactly one fallback; no retries can occur without concurrency. Hits fold
// into Hits and LogicalReads the way snapshotLocked folds the atomic
// counters.
func (m *modelShard) readOptimistic(pid disk.PageID, x *modelXlate) bool {
	if !modelInRange(pid) || int(pid) >= x.covered {
		m.stats.OptFallbacks++
		return false
	}
	f, ok := m.frames[pid]
	if !ok || f.pending {
		m.stats.OptFallbacks++
		return false
	}
	m.stats.OptHits++
	m.stats.Hits++
	m.stats.LogicalReads++
	m.touched[pid] = true // recency feedback the LRU second chance consumes
	return true
}

// TestShardedPoolMatchesModel is the model-based differential test: the real
// pool and the per-shard reference models are driven through the same
// randomized operation sequence — acquires, fills, aborts, releases at every
// priority, priority-retaining releases, multi-pins, optimistic reads, and
// (for the predictive policy) scan registration traffic — and every Acquire
// status, every ReadOptimistic outcome, every counter, and the final
// residency set must agree exactly, per shard and in aggregate. The matrix
// crosses both translation tables with both policies and 1/4/16 shards:
// with one shard this pins down the classic single-mutex semantics the
// replay harness depends on; with several it proves striping changed the
// locking, not the per-shard replacement behavior; across policies it
// proves the policy interface, not the shard plumbing, decides the victims;
// across translations it proves the array table and its overflow map change
// how frames are found, never which outcomes callers see. The pid stream
// occasionally strays outside the array's hard cap (negative ids, ids past
// MaxTranslationPages) so the overflow path faces the same differential
// scrutiny.
func TestShardedPoolMatchesModel(t *testing.T) {
	for _, translation := range Translations() {
		for _, policy := range Policies() {
			for _, shards := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", translation, policy, shards), func(t *testing.T) {
					for seed := int64(0); seed < 8; seed++ {
						runShardedModelSeq(t, translation, policy, shards, seed)
					}
				})
			}
		}
	}
}

func runShardedModelSeq(t *testing.T, translation, policy string, shards int, seed int64) {
	t.Helper()
	const (
		capacity  = 17 // >= the largest shard count in the matrix
		pageRange = 40
		steps     = 1500
	)
	rng := rand.New(rand.NewSource(seed))
	pool := MustNewPoolOpts(PoolOptions{
		Capacity: capacity, Shards: shards, Policy: policy, Translation: translation,
	})

	// The model's view of array-translation coverage; nil under map
	// translation, where ReadOptimistic declines without counting anything.
	var xlate *modelXlate
	if translation == TranslationArray {
		xlate = &modelXlate{}
	}

	// Mostly in-universe page ids, with an occasional excursion outside the
	// flat array's representable range to exercise the overflow map.
	outliers := []disk.PageID{-2, -1, MaxTranslationPages, MaxTranslationPages + 1}
	randPid := func() disk.PageID {
		if rng.Intn(12) == 0 {
			return outliers[rng.Intn(len(outliers))]
		}
		return disk.PageID(rng.Intn(pageRange))
	}
	allPids := func() []disk.PageID {
		out := make([]disk.PageID, 0, pageRange+len(outliers))
		for p := 0; p < pageRange; p++ {
			out = append(out, disk.PageID(p))
		}
		return append(out, outliers...)
	}()

	// One reference model per shard, with the pool's exact capacity split.
	// The predictive models share one scan registry, like the real shards
	// share the pool-level scan table.
	scanTbl := newModelScanTable()
	newPolicyModel := func() modelPolicy {
		if policy == PolicyPredictive {
			return &modelPredictive{scans: scanTbl}
		}
		return &modelLRU{}
	}
	refs := make([]*modelShard, shards)
	base, extra := capacity/shards, capacity%shards
	for i := range refs {
		c := base
		if i < extra {
			c++
		}
		refs[i] = newModelShard(c, newPolicyModel())
	}
	ref := func(pid disk.PageID) *modelShard { return refs[pool.shardIndex(pid)] }

	// Driver-side view of what we hold: pin counts on valid frames, and the
	// set of pending frames we reserved and still owe a Fill or Abort.
	pins := map[disk.PageID]int{}
	pendingOwned := map[disk.PageID]bool{}
	sortedKeys := func(m map[disk.PageID]int) []disk.PageID {
		out := make([]disk.PageID, 0, len(m))
		for pid := range m {
			out = append(out, pid)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	sortedPending := func() []disk.PageID {
		out := make([]disk.PageID, 0, len(pendingOwned))
		for pid := range pendingOwned {
			out = append(out, pid)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	checkStats := func(step int) {
		t.Helper()
		var want Stats
		for _, m := range refs {
			want.Add(m.stats)
		}
		if got := pool.Stats(); got != want {
			t.Fatalf("%s shards=%d seed=%d step %d: stats diverge\npool:  %+v\nmodel: %+v",
				policy, shards, seed, step, got, want)
		}
		// The per-shard breakdown must match exactly too: the fold of the
		// lock-free optimistic counters into each shard's snapshot is part
		// of the contract the report plumbing builds on.
		for i, got := range pool.ShardStats() {
			if got != refs[i].stats {
				t.Fatalf("%s shards=%d seed=%d step %d: shard %d stats diverge\npool:  %+v\nmodel: %+v",
					policy, shards, seed, step, i, got, refs[i].stats)
			}
		}
	}

	// scanEvent drives the pool's scan-registration API and mirrors it into
	// the model registry. On the LRU pool the calls must be no-ops; the model
	// registry is simply never consulted there, so any effect they had on
	// eviction would show up as a divergence.
	speeds := []float64{0, -3, 0.25, 1, 4, 50}
	scanEvent := func() {
		id := int64(rng.Intn(2))
		switch rng.Intn(5) {
		case 0: // register, sometimes with an invalid footprint
			start := rng.Intn(pageRange - 1)
			end := start + 1 + rng.Intn(pageRange-start)
			origin := start + rng.Intn(end-start)
			if rng.Intn(5) == 0 {
				end = start // invalid: must be ignored by both sides
			}
			seedSpeed := speeds[rng.Intn(len(speeds))]
			pool.RegisterScan(id, ScanFootprint{Base: 0, Start: start, End: end, Origin: origin}, seedSpeed)
			scanTbl.register(id, 0, start, end, origin, seedSpeed)
		case 1, 2: // progress report, possibly out of range
			processed := rng.Intn(pageRange+10) - 5
			sp := speeds[rng.Intn(len(speeds))]
			pool.UpdateScan(id, processed, sp)
			scanTbl.update(id, processed, sp)
		case 3:
			active := rng.Intn(2) == 0
			pool.SetScanActive(id, active)
			scanTbl.setActive(id, active)
		default:
			pool.UnregisterScan(id)
			scanTbl.unregister(id)
		}
	}

	for step := 0; step < steps; step++ {
		switch r := rng.Intn(14); {
		case r < 4: // acquire a page, possibly one we already hold
			pid := randPid()
			got, _ := pool.Acquire(pid)
			want := ref(pid).acquire(pid)
			if got != want {
				t.Fatalf("%s shards=%d seed=%d step %d: Acquire(%d) = %v, model says %v",
					policy, shards, seed, step, pid, got, want)
			}
			switch got {
			case Hit:
				pins[pid]++
			case Miss:
				pendingOwned[pid] = true
				xlate.reserve(pid)
			}
		case r < 6: // settle a pending frame we own: usually Fill, sometimes Abort
			owned := sortedPending()
			if len(owned) == 0 {
				continue
			}
			pid := owned[rng.Intn(len(owned))]
			delete(pendingOwned, pid)
			if rng.Intn(4) == 0 {
				if err := pool.Abort(pid); err != nil {
					t.Fatalf("%s shards=%d seed=%d step %d: Abort(%d): %v", policy, shards, seed, step, pid, err)
				}
				ref(pid).abort(pid)
			} else {
				if err := pool.Fill(pid, []byte{byte(pid)}); err != nil {
					t.Fatalf("%s shards=%d seed=%d step %d: Fill(%d): %v", policy, shards, seed, step, pid, err)
				}
				ref(pid).fill(pid)
				pins[pid]++
			}
		case r < 9: // release one pin at a random priority
			held := sortedKeys(pins)
			if len(held) == 0 {
				continue
			}
			pid := held[rng.Intn(len(held))]
			prio := Priority(rng.Intn(NumPriorities))
			if err := pool.Release(pid, prio); err != nil {
				t.Fatalf("%s shards=%d seed=%d step %d: Release(%d, %v): %v", policy, shards, seed, step, pid, prio, err)
			}
			ref(pid).release(pid, prio)
			if pins[pid]--; pins[pid] == 0 {
				delete(pins, pid)
			}
		case r < 10: // priority-retaining release
			held := sortedKeys(pins)
			if len(held) == 0 {
				continue
			}
			pid := held[rng.Intn(len(held))]
			if err := pool.ReleaseRetain(pid); err != nil {
				t.Fatalf("%s shards=%d seed=%d step %d: ReleaseRetain(%d): %v", policy, shards, seed, step, pid, err)
			}
			ref(pid).releaseRetain(pid)
			if pins[pid]--; pins[pid] == 0 {
				delete(pins, pid)
			}
		case r < 12: // optimistic lock-free read attempt
			pid := randPid()
			data, ok := pool.ReadOptimistic(pid)
			want := false
			if xlate != nil {
				want = ref(pid).readOptimistic(pid, xlate)
			}
			if ok != want {
				t.Fatalf("%s shards=%d seed=%d step %d: ReadOptimistic(%d) = %v, model says %v",
					policy, shards, seed, step, pid, ok, want)
			}
			if ok && (len(data) != 1 || data[0] != byte(pid)) {
				t.Fatalf("%s shards=%d seed=%d step %d: ReadOptimistic(%d) returned %v",
					policy, shards, seed, step, pid, data)
			}
		default: // scan registration traffic
			scanEvent()
		}

		if step%100 == 99 {
			checkStats(step)
			pool.CheckInvariants()
			for _, pid := range allPids {
				if got, want := pool.Contains(pid), ref(pid).contains(pid); got != want {
					t.Fatalf("%s shards=%d seed=%d step %d: Contains(%d) = %v, model says %v",
						policy, shards, seed, step, pid, got, want)
				}
			}
		}
	}

	// Final agreement: counters, occupancy, the valid-residency set, and the
	// ISSUE's stats identity, plus the pool's own structural invariants.
	checkStats(steps)
	pool.CheckInvariants()
	wantLen := 0
	for _, m := range refs {
		wantLen += len(m.frames)
	}
	if got := pool.Len(); got != wantLen {
		t.Fatalf("%s shards=%d seed=%d: Len() = %d, model has %d resident", policy, shards, seed, got, wantLen)
	}
	for _, pid := range allPids {
		if got, want := pool.Contains(pid), ref(pid).contains(pid); got != want {
			t.Fatalf("%s shards=%d seed=%d: Contains(%d) = %v, model says %v", policy, shards, seed, pid, got, want)
		}
	}
	if xlate != nil {
		if got := pool.xlate.covered(); got != xlate.covered {
			t.Fatalf("%s shards=%d seed=%d: array covers %d pages, model says %d",
				policy, shards, seed, got, xlate.covered)
		}
	}
	st := pool.Stats()
	if st.PagesDelivered() != st.Hits+st.Misses-st.Aborts {
		t.Fatalf("%s shards=%d seed=%d: delivered identity broken: %+v", policy, shards, seed, st)
	}
	if want := st.Fills + st.Aborts + int64(len(pendingOwned)); st.Misses != want {
		t.Fatalf("%s shards=%d seed=%d: misses %d != fills %d + aborts %d + %d still pending",
			policy, shards, seed, st.Misses, st.Fills, st.Aborts, len(pendingOwned))
	}
}
