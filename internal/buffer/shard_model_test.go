package buffer

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"scanshare/internal/disk"
)

// modelFrame is one page's state in the reference model.
type modelFrame struct {
	pins    int
	prio    Priority
	pending bool
}

// modelShard is a single-lock reference implementation of one pool shard
// with the full operation surface — pending frames, Abort, ReleaseRetain,
// multi-pin — written against the documented semantics rather than the
// implementation. (The simpler refPool in model_test.go predates Abort and
// models only the single-pin hit/miss/evict core.) The differential test
// instantiates one modelShard per pool shard and routes operations with the
// pool's own shardIndex, so every Acquire outcome and every counter must
// match exactly, for any shard count.
type modelShard struct {
	capacity int
	frames   map[disk.PageID]*modelFrame
	// levels[p] holds unpinned valid pages released at priority p, least
	// recently released first.
	levels  [numPriorities][]disk.PageID
	pending int
	stats   Stats
}

func newModelShard(capacity int) *modelShard {
	return &modelShard{capacity: capacity, frames: make(map[disk.PageID]*modelFrame)}
}

func (m *modelShard) removeFromLevel(pid disk.PageID, prio Priority) {
	lvl := m.levels[prio]
	for i, p := range lvl {
		if p == pid {
			m.levels[prio] = append(lvl[:i], lvl[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("model: page %d not on level %d", pid, prio))
}

func (m *modelShard) evict() bool {
	for prio := PriorityEvict; prio < numPriorities; prio++ {
		if len(m.levels[prio]) == 0 {
			continue
		}
		victim := m.levels[prio][0]
		m.levels[prio] = m.levels[prio][1:]
		delete(m.frames, victim)
		m.stats.Evictions++
		m.stats.EvictionsByPr[prio]++
		return true
	}
	return false
}

func (m *modelShard) acquire(pid disk.PageID) Status {
	if f, ok := m.frames[pid]; ok {
		if f.pending {
			m.stats.BusyRetries++
			return Busy
		}
		if f.pins == 0 {
			m.removeFromLevel(pid, f.prio)
		}
		f.pins++
		m.stats.LogicalReads++
		m.stats.Hits++
		return Hit
	}
	if len(m.frames) >= m.capacity && !m.evict() {
		if m.pending > 0 {
			m.stats.BusyRetries++
			return Busy
		}
		m.stats.AllPinned++
		return AllPinned
	}
	m.frames[pid] = &modelFrame{pins: 1, pending: true}
	m.pending++
	m.stats.LogicalReads++
	m.stats.Misses++
	return Miss
}

func (m *modelShard) fill(pid disk.PageID) {
	f := m.frames[pid]
	f.pending = false
	m.pending--
	m.stats.Fills++
}

func (m *modelShard) abort(pid disk.PageID) {
	delete(m.frames, pid)
	m.pending--
	m.stats.Aborts++
}

func (m *modelShard) release(pid disk.PageID, prio Priority) {
	f := m.frames[pid]
	f.pins--
	f.prio = prio
	if f.pins == 0 {
		m.levels[prio] = append(m.levels[prio], pid)
	}
}

func (m *modelShard) releaseRetain(pid disk.PageID) {
	f := m.frames[pid]
	f.pins--
	if f.pins == 0 {
		m.levels[f.prio] = append(m.levels[f.prio], pid)
	}
}

// contains mirrors Pool.Contains: resident and valid.
func (m *modelShard) contains(pid disk.PageID) bool {
	f, ok := m.frames[pid]
	return ok && !f.pending
}

// TestShardedPoolMatchesModel is the model-based differential test: the real
// pool and the per-shard reference models are driven through the same
// randomized operation sequence — acquires, fills, aborts, releases at every
// priority, priority-retaining releases, multi-pins — and every Acquire
// status, every counter, and the final residency set must agree exactly.
// With one shard this pins down the classic single-mutex semantics the replay
// harness depends on; with several it proves striping changed the locking,
// not the per-shard replacement behavior.
func TestShardedPoolMatchesModel(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				runShardedModelSeq(t, shards, seed)
			}
		})
	}
}

func runShardedModelSeq(t *testing.T, shards int, seed int64) {
	t.Helper()
	const (
		capacity  = 13
		pageRange = 40
		steps     = 1500
	)
	rng := rand.New(rand.NewSource(seed))
	pool := MustNewPoolShards(capacity, shards)

	// One reference model per shard, with the pool's exact capacity split.
	refs := make([]*modelShard, shards)
	base, extra := capacity/shards, capacity%shards
	for i := range refs {
		c := base
		if i < extra {
			c++
		}
		refs[i] = newModelShard(c)
	}
	ref := func(pid disk.PageID) *modelShard { return refs[pool.shardIndex(pid)] }

	// Driver-side view of what we hold: pin counts on valid frames, and the
	// set of pending frames we reserved and still owe a Fill or Abort.
	pins := map[disk.PageID]int{}
	pendingOwned := map[disk.PageID]bool{}
	sortedKeys := func(m map[disk.PageID]int) []disk.PageID {
		out := make([]disk.PageID, 0, len(m))
		for pid := range m {
			out = append(out, pid)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	sortedPending := func() []disk.PageID {
		out := make([]disk.PageID, 0, len(pendingOwned))
		for pid := range pendingOwned {
			out = append(out, pid)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	checkStats := func(step int) {
		t.Helper()
		var want Stats
		for _, m := range refs {
			want.Add(m.stats)
		}
		if got := pool.Stats(); got != want {
			t.Fatalf("shards=%d seed=%d step %d: stats diverge\npool:  %+v\nmodel: %+v",
				shards, seed, step, got, want)
		}
	}

	for step := 0; step < steps; step++ {
		switch r := rng.Intn(10); {
		case r < 4: // acquire a page, possibly one we already hold
			pid := disk.PageID(rng.Intn(pageRange))
			got, _ := pool.Acquire(pid)
			want := ref(pid).acquire(pid)
			if got != want {
				t.Fatalf("shards=%d seed=%d step %d: Acquire(%d) = %v, model says %v",
					shards, seed, step, pid, got, want)
			}
			switch got {
			case Hit:
				pins[pid]++
			case Miss:
				pendingOwned[pid] = true
			}
		case r < 6: // settle a pending frame we own: usually Fill, sometimes Abort
			owned := sortedPending()
			if len(owned) == 0 {
				continue
			}
			pid := owned[rng.Intn(len(owned))]
			delete(pendingOwned, pid)
			if rng.Intn(4) == 0 {
				if err := pool.Abort(pid); err != nil {
					t.Fatalf("shards=%d seed=%d step %d: Abort(%d): %v", shards, seed, step, pid, err)
				}
				ref(pid).abort(pid)
			} else {
				if err := pool.Fill(pid, []byte{byte(pid)}); err != nil {
					t.Fatalf("shards=%d seed=%d step %d: Fill(%d): %v", shards, seed, step, pid, err)
				}
				ref(pid).fill(pid)
				pins[pid]++
			}
		case r < 9: // release one pin at a random priority
			held := sortedKeys(pins)
			if len(held) == 0 {
				continue
			}
			pid := held[rng.Intn(len(held))]
			prio := Priority(rng.Intn(NumPriorities))
			if err := pool.Release(pid, prio); err != nil {
				t.Fatalf("shards=%d seed=%d step %d: Release(%d, %v): %v", shards, seed, step, pid, prio, err)
			}
			ref(pid).release(pid, prio)
			if pins[pid]--; pins[pid] == 0 {
				delete(pins, pid)
			}
		default: // priority-retaining release
			held := sortedKeys(pins)
			if len(held) == 0 {
				continue
			}
			pid := held[rng.Intn(len(held))]
			if err := pool.ReleaseRetain(pid); err != nil {
				t.Fatalf("shards=%d seed=%d step %d: ReleaseRetain(%d): %v", shards, seed, step, pid, err)
			}
			ref(pid).releaseRetain(pid)
			if pins[pid]--; pins[pid] == 0 {
				delete(pins, pid)
			}
		}

		if step%100 == 99 {
			checkStats(step)
			pool.CheckInvariants()
		}
	}

	// Final agreement: counters, occupancy, the valid-residency set, and the
	// ISSUE's stats identity, plus the pool's own structural invariants.
	checkStats(steps)
	pool.CheckInvariants()
	wantLen := 0
	for _, m := range refs {
		wantLen += len(m.frames)
	}
	if got := pool.Len(); got != wantLen {
		t.Fatalf("shards=%d seed=%d: Len() = %d, model has %d resident", shards, seed, got, wantLen)
	}
	for p := 0; p < pageRange; p++ {
		pid := disk.PageID(p)
		if got, want := pool.Contains(pid), ref(pid).contains(pid); got != want {
			t.Fatalf("shards=%d seed=%d: Contains(%d) = %v, model says %v", shards, seed, pid, got, want)
		}
	}
	st := pool.Stats()
	if st.PagesDelivered() != st.Hits+st.Misses-st.Aborts {
		t.Fatalf("shards=%d seed=%d: delivered identity broken: %+v", shards, seed, st)
	}
	if want := st.Fills + st.Aborts + int64(len(pendingOwned)); st.Misses != want {
		t.Fatalf("shards=%d seed=%d: misses %d != fills %d + aborts %d + %d still pending",
			shards, seed, st.Misses, st.Fills, st.Aborts, len(pendingOwned))
	}
}
