// Package buffer implements the page buffer pool that concurrent scans
// share.
//
// The pool mirrors the interface the paper assumes of DB2's bufferpool: pages
// are fetched and pinned, processed, and then *released with a priority*. The
// priority is a hint to the replacement policy about how soon the page will
// be needed again; the scan sharing manager exploits it by releasing a group
// leader's pages at high priority (the rest of its group is right behind and
// will re-read them) and a trailer's pages at low priority (nobody follows
// closely, so they are the cheapest pages to victimize).
//
// Replacement is pluggable behind a per-shard policy interface. The default
// is the paper's "priority, then LRU": the victim is the least recently
// released unpinned page of the lowest occupied priority level. With every
// page released at the same priority this degenerates to plain LRU, which is
// the paper's baseline. The alternative PolicyPredictive replaces the hint
// scheme with per-page time-to-next-use estimates fed by scan registrations
// (see predictive.go).
//
// The pool is lock-striped: capacity is partitioned across N shards and a
// page id hashes to exactly one shard, which owns the page's frame, its
// position on the priority/LRU lists, and the counters it contributes to.
// Replacement is local to the shard (the victim search never crosses a shard
// boundary), so two scans touching pages in different shards never contend
// on a mutex. Aggregate Stats() sums exact per-shard snapshots. With a
// single shard the pool is byte-for-byte the classic global-mutex design,
// which is what the deterministic replay harness relies on.
//
// The pool deliberately knows nothing about scans, groups, or the sharing
// manager — the paper's design point is that the caching system can remain a
// black box, with the mechanism confined to the scan operators.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"scanshare/internal/disk"
	"scanshare/internal/trace"
)

// Priority is a page release priority hint. Higher values survive longer in
// the pool.
type Priority int

// Priority levels, lowest (first victimized) to highest (last victimized).
const (
	// PriorityEvict marks a page as immediately reusable; trailer scans
	// release pages at this level.
	PriorityEvict Priority = iota
	// PriorityLow is for pages unlikely to be needed again soon.
	PriorityLow
	// PriorityNormal is the default for scans outside any sharing group;
	// the baseline engine releases every page at this level.
	PriorityNormal
	// PriorityHigh is for pages needed again soon; group leaders release
	// at this level because their group mates are right behind them.
	PriorityHigh

	numPriorities
)

// NumPriorities is the number of defined priority levels, for sizing
// per-priority breakdowns outside the package.
const NumPriorities = int(numPriorities)

// String returns a short human-readable name for the priority.
func (p Priority) String() string {
	switch p {
	case PriorityEvict:
		return "evict"
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Valid reports whether p is one of the defined levels.
func (p Priority) Valid() bool { return p >= PriorityEvict && p < numPriorities }

// Status is the outcome of an Acquire call.
type Status int

const (
	// Hit: the page was in the pool; it is now pinned and Data is valid.
	Hit Status = iota
	// Miss: the page was not in the pool; a frame has been reserved and
	// pinned for the caller, who must perform the physical read and call
	// Fill (or Abort on failure).
	Miss
	// Busy: another caller is currently reading this page from disk, or
	// the page's shard is full but an in-flight read holds a frame that
	// will soon become evictable. The caller should wait a little and
	// retry; this models waiting on an in-flight I/O.
	Busy
	// AllPinned: the page's shard is full, every frame in it is pinned by
	// an active caller, and no read is in flight there that could free
	// one. Retrying on an I/O timescale is pointless — a frame only frees
	// when some caller releases — so callers back off for longer (or
	// fail) instead of spinning. Err returns ErrAllPinned for this status.
	AllPinned
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Busy:
		return "busy"
	case AllPinned:
		return "all-pinned"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Err returns the sentinel error corresponding to a failure status:
// ErrAllPinned for AllPinned, nil for every other status. It lets callers
// use errors.Is on an Acquire outcome they choose to surface as an error.
func (s Status) Err() error {
	if s == AllPinned {
		return ErrAllPinned
	}
	return nil
}

// Stats is a snapshot of the pool counters. For a sharded pool it is the sum
// of exact per-shard snapshots (each shard's counters are mutated under that
// shard's mutex, so every summand is internally consistent).
type Stats struct {
	LogicalReads  int64 // Acquire calls that returned Hit or Miss, plus optimistic hits
	Hits          int64 // includes OptHits: every hit, locked or lock-free
	Misses        int64
	Aborts        int64 // misses whose physical read failed (Abort), never delivered
	Fills         int64 // misses completed by Fill
	BusyRetries   int64 // Acquire calls that returned Busy
	AllPinned     int64 // Acquire calls that returned AllPinned
	Evictions     int64
	EvictionsByPr [numPriorities]int64
	// Optimistic read-path counters (always zero under map translation).
	// OptHits is the lock-free subset of Hits; OptRetries counts validation
	// failures that re-ran the optimistic loop; OptFallbacks counts
	// ReadOptimistic calls that gave up and sent the caller to Acquire.
	OptHits      int64
	OptRetries   int64
	OptFallbacks int64
}

// Add accumulates o into s, for aggregating per-shard snapshots.
func (s *Stats) Add(o Stats) {
	s.LogicalReads += o.LogicalReads
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Aborts += o.Aborts
	s.Fills += o.Fills
	s.BusyRetries += o.BusyRetries
	s.AllPinned += o.AllPinned
	s.Evictions += o.Evictions
	for i := range s.EvictionsByPr {
		s.EvictionsByPr[i] += o.EvictionsByPr[i]
	}
	s.OptHits += o.OptHits
	s.OptRetries += o.OptRetries
	s.OptFallbacks += o.OptFallbacks
}

// PagesDelivered returns the number of Acquire calls that actually put page
// data in the caller's hands: hits plus misses, minus the misses whose
// physical read failed and was aborted. The accounting invariant
//
//	Hits + Misses - Aborts == PagesDelivered
//
// holds by construction here and is asserted against independent per-caller
// counts in the chaos suite.
func (s Stats) PagesDelivered() int64 {
	return s.Hits + s.Misses - s.Aborts
}

// HitRatio returns the fraction of delivered pages served from the pool.
// Aborted misses are excluded from the denominator: a miss whose read failed
// delivered nothing, so counting it would understate locality under fault
// injection.
func (s Stats) HitRatio() float64 {
	delivered := s.LogicalReads - s.Aborts
	if delivered <= 0 {
		return 0
	}
	return float64(s.Hits) / float64(delivered)
}

// ErrAllPinned is the sentinel for the AllPinned acquire status: the page's
// shard is full of pinned frames with no in-flight read that could free one.
// Status.Err exposes it for errors.Is.
var ErrAllPinned = errors.New("buffer: all frames pinned")

type frameState int

const (
	framePending frameState = iota // reserved; disk read in flight
	frameValid
	// frameFree marks an array-translation frame sitting on its shard's
	// freelist between occupants; map-translation frames are garbage
	// collected instead and never carry this state.
	frameFree
)

type frame struct {
	pid   disk.PageID
	data  []byte
	pins  int
	state frameState
	prio  Priority
	// elem is the frame's node in its priority level's LRU list while the
	// frame is unpinned; nil while pinned or pending.
	elem *list.Element

	// version and content implement the optimistic latch under array
	// translation (see translation.go). version is even while the frame is
	// settled and odd while in transition; every identity change is fenced
	// by bumps on both sides, under the shard mutex. content is the
	// immutable (pid, data) cell optimistic readers validate against. Both
	// stay zero under map translation.
	version atomic.Uint64
	content atomic.Pointer[pageContent]
	// touched is the optimistic read path's recency feedback: a validated
	// ReadOptimistic sets it (one uncontended atomic store, no lock, no
	// policy churn) and the priority-LRU victim walk consumes it as a CLOCK
	// second chance, so a hot set served entirely lock-free is not the first
	// thing evicted. Release clears it (a release refreshes recency by
	// itself) and reserve clears any stale bit a racing reader stored on a
	// recycled frame. Never set under map translation, which keeps the
	// classic replay goldens byte-identical.
	touched atomic.Bool
}

// shard is one lock-striped partition of the pool: a fixed slice of the
// total capacity with its own frame table, priority/LRU lists, and counters,
// all guarded by its own mutex. A page id maps to exactly one shard, so
// every operation on a page locks only that shard.
type shard struct {
	mu       sync.Mutex
	capacity int
	// frames is the classic map translation table; nil under array
	// translation, where the shared xlate array plus the overflow map play
	// its role. Every mode branch in this file keys off `s.frames != nil`
	// so the map path stays operation-for-operation identical to the
	// pre-array code (the replay goldens pin that).
	frames map[disk.PageID]*frame
	// xlate is the pool-wide array translation table (nil under map
	// translation). Stores to entries owned by this shard happen under mu;
	// loads are lock-free (ReadOptimistic).
	xlate *translation
	// overflow tracks resident pages whose ids the flat array rejects
	// (negative, or past MaxTranslationPages); normally empty. Array mode
	// only.
	overflow map[disk.PageID]*frame
	// all/free preallocate the shard's frames under array translation so
	// eviction recycles real frame memory (the version protocol needs
	// stable frame identities to fence). free is a LIFO stack.
	all  []*frame
	free []*frame
	// Optimistic read-path counters, updated without mu (the fast path
	// holds no lock); folded into Stats snapshots.
	optHits      atomic.Int64
	optRetries   atomic.Int64
	optFallbacks atomic.Int64
	// evictHook, when set (tests only, before any concurrency starts), runs
	// under mu after a victim is fully unlinked and recycled; the
	// linearizability harness uses it to timestamp retirements.
	evictHook func(pid disk.PageID)
	// policy orders the unpinned frames and picks eviction victims; every
	// call into it happens under mu. The default is the priority-LRU of
	// the paper, preserved operation-for-operation by lruPolicy.
	policy replacementPolicy
	// pending counts frames in framePending state (reads in flight); it
	// lets a full-shard Acquire distinguish "wait for I/O" (Busy) from
	// "every frame pinned by a caller" (AllPinned).
	pending int
	stats   Stats
	// resident mirrors len(frames) so Len() can sum shard occupancy
	// without taking any lock (the -http introspection endpoint polls it
	// while benchmarks run).
	resident atomic.Int64
	// tracer points at the pool-wide tracer slot.
	tracer *atomic.Pointer[trace.Tracer]
}

// Pool is a fixed-capacity page cache with priority-aware replacement,
// lock-striped across one or more shards. It is safe for concurrent use.
type Pool struct {
	capacity    int
	policy      string // canonical replacement policy name
	translation string // canonical translation kind name
	shards      []*shard
	// xlate is the shared array translation table; nil under map
	// translation (which also disables the optimistic read path).
	xlate *translation
	// scans is the predictive policy's scan registry, shared by all
	// shards; nil under policies that ignore scan registrations.
	scans *scanTable
	// tracer, when set, receives an eviction event per victimized frame.
	// Emission is non-blocking, so holding a shard lock across it is fine.
	tracer atomic.Pointer[trace.Tracer]
}

// SetTracer attaches tr (may be nil to detach) as the pool's observability
// journal; evictions emit a trace event per victim with the priority the
// page was released at.
func (p *Pool) SetTracer(tr *trace.Tracer) {
	p.tracer.Store(tr)
}

// NewPool creates a single-shard pool with room for capacity pages. A
// single-shard pool behaves exactly like the classic global-mutex design —
// deterministic replay (Sched) and the golden-timeline tests depend on that.
func NewPool(capacity int) (*Pool, error) {
	return NewPoolShards(capacity, 1)
}

// NewPoolShards creates a pool with room for capacity pages striped across
// shards partitions. Capacity is split as evenly as possible (the first
// capacity mod shards shards get one extra frame); every shard must get at
// least one frame, so shards cannot exceed capacity. Eviction is local to a
// shard, so with many shards a hot shard can evict while a cold shard has
// idle frames — that is the price of lock-freedom between partitions, and
// why shard counts should stay well below capacity (see CONCURRENCY.md).
func NewPoolShards(capacity, shards int) (*Pool, error) {
	return NewPoolPolicy(capacity, shards, PolicyLRU)
}

// NewPoolPolicy creates a pool with the given capacity, shard count, and
// replacement policy name ("" selects the default priority-LRU; see
// Policies). Capacity and shard constraints are those of NewPoolShards.
func NewPoolPolicy(capacity, shards int, policy string) (*Pool, error) {
	if shards <= 0 {
		// PoolOptions treats a zero shard count as "default to one"; the
		// positional constructors keep their stricter contract.
		return nil, fmt.Errorf("buffer: non-positive shard count %d", shards)
	}
	return NewPoolOpts(PoolOptions{Capacity: capacity, Shards: shards, Policy: policy})
}

// PoolOptions configures NewPoolOpts. The zero value of every field except
// Capacity selects the default: one shard, priority-LRU replacement, map
// translation.
type PoolOptions struct {
	// Capacity is the total frame count, split across shards; required.
	Capacity int
	// Shards is the lock-stripe count (0 means 1); must not exceed
	// Capacity.
	Shards int
	// Policy is the replacement policy name ("" means priority-LRU; see
	// Policies).
	Policy string
	// Translation selects the page-translation structure ("" means the
	// classic per-shard map; see Translations). TranslationArray enables
	// the optimistic lock-free read path (ReadOptimistic).
	Translation string
	// TranslationPages pre-grows array-translation coverage to this many
	// page ids (e.g. the table catalog's total page count) so steady-state
	// misses never take the growth lock; coverage still grows on demand
	// beyond it. Ignored under map translation.
	TranslationPages int
}

// NewPoolOpts creates a pool from o; it is the full-width constructor the
// NewPool/NewPoolShards/NewPoolPolicy wrappers delegate to.
func NewPoolOpts(o PoolOptions) (*Pool, error) {
	capacity, shards := o.Capacity, o.Shards
	if shards == 0 {
		shards = 1
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("buffer: non-positive capacity %d", capacity)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("buffer: non-positive shard count %d", shards)
	}
	if shards > capacity {
		return nil, fmt.Errorf("buffer: %d shards exceed capacity %d (every shard needs a frame)", shards, capacity)
	}
	canonical, err := NormalizePolicy(o.Policy)
	if err != nil {
		return nil, err
	}
	xkind, err := NormalizeTranslation(o.Translation)
	if err != nil {
		return nil, err
	}
	if o.TranslationPages < 0 {
		return nil, fmt.Errorf("buffer: negative translation pre-size %d", o.TranslationPages)
	}
	p := &Pool{capacity: capacity, policy: canonical, translation: xkind, shards: make([]*shard, shards)}
	if canonical == PolicyPredictive {
		p.scans = newScanTable()
	}
	if xkind == TranslationArray {
		p.xlate = newTranslation(o.TranslationPages)
	}
	base, extra := capacity/shards, capacity%shards
	for i := range p.shards {
		c := base
		if i < extra {
			c++
		}
		s := &shard{
			capacity: c,
			policy:   newPolicy(canonical, p.scans),
			tracer:   &p.tracer,
		}
		if p.xlate == nil {
			s.frames = make(map[disk.PageID]*frame, c)
		} else {
			s.xlate = p.xlate
			s.overflow = make(map[disk.PageID]*frame)
			s.all = make([]*frame, c)
			s.free = make([]*frame, 0, c)
			for j := range s.all {
				f := &frame{state: frameFree}
				s.all[j] = f
				s.free = append(s.free, f)
			}
		}
		p.shards[i] = s
	}
	return p, nil
}

// MustNewPoolOpts is NewPoolOpts for known-good parameters; it panics on
// error.
func MustNewPoolOpts(o PoolOptions) *Pool {
	p, err := NewPoolOpts(o)
	if err != nil {
		panic(err)
	}
	return p
}

// MustNewPool is NewPool for known-good parameters; it panics on error.
func MustNewPool(capacity int) *Pool {
	p, err := NewPool(capacity)
	if err != nil {
		panic(err)
	}
	return p
}

// MustNewPoolShards is NewPoolShards for known-good parameters; it panics on
// error.
func MustNewPoolShards(capacity, shards int) *Pool {
	p, err := NewPoolShards(capacity, shards)
	if err != nil {
		panic(err)
	}
	return p
}

// MustNewPoolPolicy is NewPoolPolicy for known-good parameters; it panics on
// error.
func MustNewPoolPolicy(capacity, shards int, policy string) *Pool {
	p, err := NewPoolPolicy(capacity, shards, policy)
	if err != nil {
		panic(err)
	}
	return p
}

// shardFor returns the shard owning pid. The single-shard case skips the
// hash so the classic pool pays nothing for the striping machinery; the
// multi-shard case runs the page id through a 64-bit finalizer (splitmix64's
// mixer) so that sequential page ids — the common case for table scans —
// spread uniformly instead of striping by low bits.
func (p *Pool) shardFor(pid disk.PageID) *shard {
	return p.shards[p.shardIndex(pid)]
}

// shardIndex returns the index of the shard owning pid; the differential
// model tests use it to route reference-model operations the same way.
func (p *Pool) shardIndex(pid disk.PageID) int {
	if len(p.shards) == 1 {
		return 0
	}
	x := uint64(pid)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(len(p.shards)))
}

// Capacity returns the pool's total frame count across all shards.
func (p *Pool) Capacity() int { return p.capacity }

// NumShards returns the number of lock-striped partitions.
func (p *Pool) NumShards() int { return len(p.shards) }

// Len returns the number of resident (valid or pending) pages. It sums
// per-shard atomic occupancy counters and takes no locks, so introspection
// endpoints can poll it without perturbing the hot path.
func (p *Pool) Len() int {
	n := int64(0)
	for _, s := range p.shards {
		n += s.resident.Load()
	}
	return int(n)
}

// ShardOccupancy returns the number of resident (valid or pending) pages in
// each shard, in shard order. Like Len it reads the per-shard atomic
// occupancy counters and takes no locks, so the telemetry sampler can poll
// occupancy skew mid-run without perturbing the hot path.
func (p *Pool) ShardOccupancy() []int {
	out := make([]int, len(p.shards))
	for i, s := range p.shards {
		out[i] = int(s.resident.Load())
	}
	return out
}

// lookupLocked resolves pid to its resident frame, or nil. Under map
// translation it is the classic map probe; under array translation it loads
// the flat-array entry (or, for out-of-range ids, the overflow map).
func (s *shard) lookupLocked(pid disk.PageID) *frame {
	if s.frames != nil {
		return s.frames[pid]
	}
	if e := s.xlate.entry(pid); e != nil {
		return e.Load()
	}
	if len(s.overflow) != 0 {
		return s.overflow[pid]
	}
	return nil
}

// occupiedLocked returns the number of resident (valid or pending) frames.
func (s *shard) occupiedLocked() int {
	if s.frames != nil {
		return len(s.frames)
	}
	return len(s.all) - len(s.free)
}

// reserveLocked creates and links a pending, pinned frame for pid; the
// caller has verified a frame is available. Map translation allocates a
// fresh frame exactly as the classic pool did. Array translation recycles
// one from the freelist, moves its version even→odd (in transition) BEFORE
// publishing it in the translation entry, and grows array coverage on
// demand — out-of-range ids land in the overflow map and are simply never
// optimistically readable.
func (s *shard) reserveLocked(pid disk.PageID) *frame {
	if s.frames != nil {
		f := &frame{pid: pid, pins: 1, state: framePending}
		s.frames[pid] = f
		return f
	}
	n := len(s.free) - 1
	f := s.free[n]
	s.free[n] = nil
	s.free = s.free[:n]
	f.pid = pid
	f.pins = 1
	f.state = framePending
	f.prio = 0
	f.touched.Store(false)
	f.version.Add(1) // even→odd: in transition until Fill or Abort settles it
	if e := s.xlate.ensure(pid); e != nil {
		e.Store(f)
	} else {
		s.overflow[pid] = f
	}
	return f
}

// unlinkLocked removes f from the translation structure (frame map, array
// entry, or overflow map). Array mode: the caller must have made f's
// version odd first, so an optimistic reader holding a stale entry load
// fails validation rather than trusting a dangling frame.
func (s *shard) unlinkLocked(f *frame) {
	if s.frames != nil {
		delete(s.frames, f.pid)
		return
	}
	if e := s.xlate.entry(f.pid); e != nil && e.Load() == f {
		e.Store(nil)
	} else {
		delete(s.overflow, f.pid)
	}
}

// recycleLocked returns an unlinked array-mode frame to the freelist. If
// the frame was settled (even version: an evicted valid page) the first
// bump moves it odd before content is cleared; an aborted pending frame is
// already odd. The final bump settles the version even for the next
// occupant — net effect: every occupancy changes the version, so equality
// validation is ABA-proof even across wraparound.
func (s *shard) recycleLocked(f *frame) {
	if f.version.Load()&1 == 0 {
		f.version.Add(1)
	}
	f.content.Store(nil)
	f.data = nil
	f.pid = 0
	f.prio = 0
	f.state = frameFree
	f.version.Add(1)
	s.free = append(s.free, f)
}

// Contains reports whether pid is resident and valid (useful in tests; a
// pending frame does not count). Only the owning shard is locked.
func (p *Pool) Contains(pid disk.PageID) bool {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookupLocked(pid)
	return f != nil && f.state == frameValid
}

// Acquire pins page pid if resident, or reserves a frame for it.
//
// On Hit, the returned data is valid and must be treated as read-only; the
// caller must eventually call Release. On Miss, the caller owns the pending
// frame: it must read the page from storage and call Fill, then eventually
// Release. On Busy, nothing is pinned; retry after a short wait.
func (p *Pool) Acquire(pid disk.PageID) (Status, []byte) {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()

	if f := s.lookupLocked(pid); f != nil {
		if f.state == framePending {
			s.stats.BusyRetries++
			return Busy, nil
		}
		if f.pins == 0 {
			s.policy.remove(f)
		}
		f.pins++
		s.stats.LogicalReads++
		s.stats.Hits++
		return Hit, f.data
	}

	if s.occupiedLocked() >= s.capacity && !s.evictLocked() {
		if s.pending > 0 {
			// An in-flight read holds at least one frame that will be
			// filled and released shortly; waiting on an I/O timescale
			// is the right backoff.
			s.stats.BusyRetries++
			return Busy, nil
		}
		// Every frame in this shard is pinned by an active caller and
		// nothing is in flight: only a Release can free one.
		s.stats.AllPinned++
		return AllPinned, nil
	}

	s.reserveLocked(pid)
	s.resident.Add(1)
	s.pending++
	s.stats.LogicalReads++
	s.stats.Misses++
	return Miss, nil
}

// evictLocked asks the shard's policy for a victim and frees its frame. It
// reports whether a frame was freed. Accounting — the frame table, resident
// counter, eviction stats (keyed by the priority the victim was released
// at), and the trace event — is the shard's job, uniform across policies.
func (s *shard) evictLocked() bool {
	victim := s.policy.victim()
	if victim == nil {
		return false
	}
	pid := victim.pid
	// Array translation: make the version odd BEFORE the entry and content
	// change, so an optimistic reader that already loaded the frame pointer
	// cannot validate against the dying occupancy (the second bump happens
	// in recycleLocked once the frame is scrubbed).
	if s.frames == nil {
		victim.version.Add(1)
	}
	s.unlinkLocked(victim)
	s.resident.Add(-1)
	s.stats.Evictions++
	s.stats.EvictionsByPr[victim.prio]++
	s.tracer.Load().Emit(trace.Event{
		Kind: trace.KindEvict, Page: int64(pid), Prio: int8(victim.prio),
		Scan: trace.NoID, Peer: trace.NoID, Table: trace.NoID,
	})
	if s.frames == nil {
		// The version is already odd; recycle clears content and settles it.
		s.recycleLocked(victim)
	}
	if s.evictHook != nil {
		s.evictHook(pid)
	}
	return true
}

// Fill completes a Miss: it installs data as the content of the pending
// frame reserved by the calling Acquire. The frame stays pinned.
func (p *Pool) Fill(pid disk.PageID, data []byte) error {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookupLocked(pid)
	if f == nil {
		return fmt.Errorf("buffer: Fill of non-resident page %d", pid)
	}
	if f.state != framePending {
		return fmt.Errorf("buffer: Fill of already-valid page %d", pid)
	}
	f.data = data
	f.state = frameValid
	s.pending--
	s.stats.Fills++
	if s.frames == nil {
		// Publish the immutable content cell, then settle the version
		// odd→even; only after this store can an optimistic read validate.
		// Coalesced misses go through here too, and the runner's flight
		// table only wakes waiters after Fill returns, so versions are
		// always settled before waiters retry.
		f.content.Store(&pageContent{pid: pid, data: data})
		f.version.Add(1)
	}
	return nil
}

// Abort releases a pending frame without filling it, e.g. after a failed
// disk read.
func (p *Pool) Abort(pid disk.PageID) error {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookupLocked(pid)
	if f == nil || f.state != framePending {
		return fmt.Errorf("buffer: Abort of page %d that is not pending", pid)
	}
	s.unlinkLocked(f)
	if s.frames == nil {
		// The frame's version has been odd since reserveLocked; recycling
		// settles it even with no occupant.
		s.recycleLocked(f)
	}
	s.resident.Add(-1)
	s.pending--
	// The reserving Acquire counted a Miss, but the page was never
	// delivered; Aborts is the correction term that keeps
	// Hits + Misses - Aborts equal to pages actually handed to callers.
	s.stats.Aborts++
	return nil
}

// Release unpins page pid, recording prio as its replacement priority. When
// the pin count reaches zero the page becomes evictable at that priority.
func (p *Pool) Release(pid disk.PageID, prio Priority) error {
	if !prio.Valid() {
		return fmt.Errorf("buffer: invalid release priority %d", prio)
	}
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookupLocked(pid)
	if f == nil {
		return fmt.Errorf("buffer: Release of non-resident page %d", pid)
	}
	if f.state != frameValid {
		return fmt.Errorf("buffer: Release of pending page %d", pid)
	}
	if f.pins <= 0 {
		return fmt.Errorf("buffer: Release of unpinned page %d", pid)
	}
	f.pins--
	f.prio = prio
	if f.pins == 0 {
		// The release itself is the recency signal (insert goes to the back
		// of its level), so any pending second chance is consumed here.
		f.touched.Store(false)
		s.policy.insert(f)
	}
	return nil
}

// ReleaseRetain unpins page pid without changing its replacement priority:
// the frame keeps whatever priority its last Release recorded. Prefetchers
// use it when they find a page already resident, where a plain Release would
// overwrite the priority the owning scan chose (e.g. demote a leader's
// high-priority page to normal just because a prefetch worker touched it).
func (p *Pool) ReleaseRetain(pid disk.PageID) error {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.lookupLocked(pid)
	if f == nil {
		return fmt.Errorf("buffer: ReleaseRetain of non-resident page %d", pid)
	}
	if f.state != frameValid {
		return fmt.Errorf("buffer: ReleaseRetain of pending page %d", pid)
	}
	if f.pins <= 0 {
		return fmt.Errorf("buffer: ReleaseRetain of unpinned page %d", pid)
	}
	f.pins--
	if f.pins == 0 {
		f.touched.Store(false)
		s.policy.insert(f)
	}
	return nil
}

// Stats returns a snapshot of the pool counters: the sum of exact per-shard
// snapshots. Each shard is locked in turn, so the aggregate is a sum of
// internally-consistent shard states (not a single instantaneous cut across
// shards — concurrent operations on other shards may land between reads,
// which is the standard striped-counter tradeoff).
func (p *Pool) Stats() Stats {
	var total Stats
	for _, s := range p.shards {
		s.mu.Lock()
		total.Add(s.snapshotLocked())
		s.mu.Unlock()
	}
	return total
}

// snapshotLocked folds the lock-free optimistic counters into the shard's
// mutex-guarded counters: optimistic hits are hits (and logical reads) like
// any other, they just never took the lock. With no concurrent optimistic
// readers (every deterministic test) the fold is exact; mid-flight it is
// the usual striped-counter approximation.
func (s *shard) snapshotLocked() Stats {
	out := s.stats
	oh := s.optHits.Load()
	out.OptHits = oh
	out.OptRetries = s.optRetries.Load()
	out.OptFallbacks = s.optFallbacks.Load()
	out.Hits += oh
	out.LogicalReads += oh
	return out
}

// ShardStats returns one exact counter snapshot per shard, in shard order.
// Report plumbing uses it for the per-shard contention breakdown.
func (p *Pool) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		out[i] = s.snapshotLocked()
		s.mu.Unlock()
	}
	return out
}

// ResetStats clears the counters but leaves the cache contents intact.
func (p *Pool) ResetStats() {
	for _, s := range p.shards {
		s.mu.Lock()
		s.stats = Stats{}
		s.optHits.Store(0)
		s.optRetries.Store(0)
		s.optFallbacks.Store(0)
		s.mu.Unlock()
	}
}

// CheckInvariants panics if internal bookkeeping is inconsistent. It exists
// for tests — the pool's own and those of concurrent layers built on top —
// as a cheap way to assert a stress run left the structure coherent. Each
// shard is checked under its own lock, then the aggregate identities.
func (p *Pool) CheckInvariants() {
	var agg Stats
	for i, s := range p.shards {
		s.mu.Lock()
		s.checkInvariantsLocked(i)
		agg.Add(s.snapshotLocked())
		s.mu.Unlock()
	}
	if delivered := agg.Hits + agg.Misses - agg.Aborts; delivered < 0 {
		panic(fmt.Sprintf("buffer: negative pages delivered (%d hits + %d misses - %d aborts)",
			agg.Hits, agg.Misses, agg.Aborts))
	}
}

func (s *shard) checkInvariantsLocked(idx int) {
	occupied := s.occupiedLocked()
	if occupied > s.capacity {
		panic(fmt.Sprintf("buffer: shard %d has %d frames resident, capacity %d", idx, occupied, s.capacity))
	}
	if got := s.resident.Load(); got != int64(occupied) {
		panic(fmt.Sprintf("buffer: shard %d resident counter %d but %d frames in table", idx, got, occupied))
	}
	s.policy.check(s, idx)
	pending := 0
	s.forEachFrameLocked(func(pid disk.PageID, f *frame) {
		if f.pid != pid {
			panic("buffer: frame table key mismatch")
		}
		if s.lookupLocked(pid) != f {
			panic(fmt.Sprintf("buffer: page %d frame not reachable through translation", pid))
		}
		if f.pins == 0 && f.state == frameValid && f.elem == nil {
			panic(fmt.Sprintf("buffer: unpinned valid page %d not on any level list", pid))
		}
		if f.state == framePending {
			pending++
		}
		if s.frames == nil {
			// The optimistic-latch protocol: version parity must track
			// settledness, and a settled valid frame's content cell must
			// agree with its identity.
			odd := f.version.Load()&1 == 1
			if (f.state == framePending) != odd {
				panic(fmt.Sprintf("buffer: page %d state %d with version parity %v", pid, f.state, odd))
			}
			if f.state == frameValid {
				c := f.content.Load()
				if c == nil || c.pid != pid {
					panic(fmt.Sprintf("buffer: valid page %d with stale or missing content cell", pid))
				}
			}
		}
	})
	if pending != s.pending {
		panic(fmt.Sprintf("buffer: shard %d has %d pending frames resident but pending counter is %d", idx, pending, s.pending))
	}
	if s.frames == nil {
		nonFree := 0
		for _, f := range s.all {
			if f.state != frameFree {
				nonFree++
			}
		}
		if nonFree != occupied {
			panic(fmt.Sprintf("buffer: shard %d has %d non-free frames but occupancy %d", idx, nonFree, occupied))
		}
		for _, f := range s.free {
			if f.state != frameFree || f.version.Load()&1 != 0 || f.content.Load() != nil {
				panic(fmt.Sprintf("buffer: shard %d freelist holds an unsettled frame", idx))
			}
		}
	}
}

// forEachFrameLocked visits every resident frame with its page id.
func (s *shard) forEachFrameLocked(fn func(pid disk.PageID, f *frame)) {
	if s.frames != nil {
		for pid, f := range s.frames {
			fn(pid, f)
		}
		return
	}
	for _, f := range s.all {
		if f.state != frameFree {
			fn(f.pid, f)
		}
	}
}
