package buffer

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"scanshare/internal/disk"
)

func panicf(format string, args ...any) { panic(fmt.Sprintf(format, args...)) }

// This file implements predictive buffer management (arXiv 1208.4170, "From
// Cooperative Scans to Predictive Buffer Management"): instead of steering
// replacement with leader/trailer priority hints, scans register their
// footprint, position, and speed with the pool, and the policy computes each
// frame's time to next use — the victim is the frame whose next use is
// furthest away (Belady's rule under the straight-line scan model).
//
// Registration is deliberately lock-cheap: the scan table is a pool-level
// map guarded by an RWMutex that only Register/Unregister take exclusively;
// the per-report position/speed updates are atomic stores under a read lock,
// so concurrent scans never serialize on each other's progress reports.
// Victim selection snapshots the active scans once (read lock, atomic loads)
// and then walks the shard's release-order list without any shared lock.
//
// Lock order: shard.mu → scanTable.mu (read). Registration paths take only
// scanTable.mu, never a shard lock, so there is no cycle.

// defaultScanSpeed is the pages-per-second floor used when a scan has no
// usable speed estimate (unreported, stalled, or a negative sample): the
// estimator needs a positive speed to order pages by distance, and 1 page/s
// preserves the ordering by pure page distance.
const defaultScanSpeed = 1.0

// ScanFootprint describes the pages a registered scan will visit, for the
// predictive replacement policy. Pages are identified in device page space
// via Base: the scan visits device pages Base+Start … Base+End-1, starting
// at Base+Origin and wrapping circularly at End back to Start (the engine's
// scans start mid-table when the sharing manager places them there).
type ScanFootprint struct {
	// Base is the device page id of table-relative page 0, assuming the
	// table's pages are contiguous on the device (true for every store in
	// this engine).
	Base disk.PageID
	// Start and End bound the scan's range [Start, End) in table-relative
	// page numbers.
	Start, End int
	// Origin is the table-relative page the scan began at; it must lie in
	// [Start, End).
	Origin int
}

func (fp ScanFootprint) valid() bool {
	return fp.End > fp.Start && fp.Origin >= fp.Start && fp.Origin < fp.End
}

// scanReg is one registered scan. The footprint and seed speed are immutable
// after registration; position, speed, and activity are atomics so that
// UpdateScan and SetScanActive touch no mutex beyond the table's read lock.
type scanReg struct {
	fp   ScanFootprint
	seed float64 // speed fallback from the scan's a-priori estimate
	// processed is how many pages of the footprint the scan has consumed
	// (in circular visit order from Origin).
	processed atomic.Int64
	// speedBits holds the latest pages-per-second estimate as float64 bits.
	speedBits atomic.Uint64
	// inactive marks detached scans, whose estimates are unreliable; the
	// estimator skips them.
	inactive atomic.Bool
}

// scanTable is the pool-level registry of active scans, shared by every
// shard's predictive policy instance.
type scanTable struct {
	mu    sync.RWMutex
	scans map[int64]*scanReg
}

func newScanTable() *scanTable {
	return &scanTable{scans: make(map[int64]*scanReg)}
}

// scanSnap is one scan's state at victim-selection time, with the speed
// fallbacks already resolved to a positive value.
type scanSnap struct {
	fp        ScanFootprint
	processed int
	speed     float64
}

// snapshot copies the active scans into dst (reused across calls by the
// caller) under the read lock, resolving each scan's effective speed.
func (t *scanTable) snapshot(dst []scanSnap) []scanSnap {
	dst = dst[:0]
	t.mu.RLock()
	for _, r := range t.scans {
		if r.inactive.Load() {
			continue
		}
		speed := math.Float64frombits(r.speedBits.Load())
		if speed <= 0 {
			speed = r.seed
		}
		if speed <= 0 {
			speed = defaultScanSpeed
		}
		dst = append(dst, scanSnap{fp: r.fp, processed: int(r.processed.Load()), speed: speed})
	}
	t.mu.RUnlock()
	return dst
}

// nextUseEstimate returns the estimated time in seconds until some active
// scan next reads device page pid: the minimum over the registered scans of
// (pages until the scan reaches pid) / (scan speed). Pages outside every
// footprint, or already consumed by every scan that covers them, estimate
// +Inf — they are the first victims. The result depends only on the set of
// snapshots, not their order, so map-iteration nondeterminism in snapshot
// cannot change a victim choice.
func nextUseEstimate(regs []scanSnap, pid disk.PageID) float64 {
	best := math.Inf(1)
	for i := range regs {
		r := &regs[i]
		pageNo := int(int64(pid) - int64(r.fp.Base))
		if pageNo < r.fp.Start || pageNo >= r.fp.End {
			continue
		}
		length := r.fp.End - r.fp.Start
		// rank is the page's position in the scan's circular visit order
		// from Origin: 0 for the origin page, length-1 for the page just
		// behind it.
		rank := pageNo - r.fp.Origin
		if rank < 0 {
			rank += length
		}
		if rank < r.processed {
			continue // already consumed; this scan never returns to it
		}
		if t := float64(rank-r.processed) / r.speed; t < best {
			best = t
		}
	}
	return best
}

// predictivePolicy is the per-shard state of predictive buffer management: a
// single release-order list (least recently released at the front) plus the
// shared scan table. Victim selection walks the list computing next-use
// estimates and evicts the strict maximum; ties keep the earliest-released
// frame, so with no scans registered the policy is exactly LRU on release
// order. Release priority is recorded on the frame (it still feeds the
// per-priority eviction counters) but does not influence ordering — position
// knowledge subsumes the leader/trailer hints.
//
// victim is O(frames × scans) per eviction. Shard capacity and scan counts
// are small (tens to a few thousand frames, a handful of scans), and
// eviction already implies a physical read on the miss path, so the linear
// walk is cheap relative to the I/O it precedes.
type predictivePolicy struct {
	order *list.List // unpinned frames, least recently released first
	scans *scanTable
	snap  []scanSnap // scratch, reused across victim calls
}

func (p *predictivePolicy) insert(f *frame) {
	f.elem = p.order.PushBack(f)
}

func (p *predictivePolicy) remove(f *frame) {
	p.order.Remove(f.elem)
	f.elem = nil
}

func (p *predictivePolicy) victim() *frame {
	if p.order.Len() == 0 {
		return nil
	}
	p.snap = p.scans.snapshot(p.snap)
	var best *list.Element
	bestEst := math.Inf(-1)
	for e := p.order.Front(); e != nil; e = e.Next() {
		f := e.Value.(*frame)
		est := nextUseEstimate(p.snap, f.pid)
		if math.IsInf(est, 1) {
			// Nothing will ever read this frame again; the earliest
			// released such frame wins outright.
			best = e
			break
		}
		if best == nil || est > bestEst {
			best, bestEst = e, est
		}
	}
	f := p.order.Remove(best).(*frame)
	f.elem = nil
	return f
}

func (p *predictivePolicy) check(s *shard, idx int) {
	for e := p.order.Front(); e != nil; e = e.Next() {
		f := e.Value.(*frame)
		if f.pins != 0 {
			panicf("buffer: pinned page %d on predictive release list (shard %d)", f.pid, idx)
		}
		if s.lookupLocked(f.pid) != f {
			panicf("buffer: page %d on predictive release list but not in frame table (shard %d)", f.pid, idx)
		}
	}
}

// --- Pool-level scan registration API -------------------------------------
//
// All of these are no-ops on pools whose policy is not scan-aware, so the
// realtime runner can call them unconditionally.

// ScanAware reports whether the pool's replacement policy consumes scan
// registrations (true for the predictive policy).
func (p *Pool) ScanAware() bool { return p.scans != nil }

// Policy returns the canonical name of the pool's replacement policy.
func (p *Pool) Policy() string { return p.policy }

// RegisterScan registers scan id with footprint fp and an a-priori speed
// estimate in pages per second (0 if unknown). Invalid footprints are
// ignored: registration is advisory and a malformed one must not poison
// eviction. Re-registering an id replaces its previous registration.
func (p *Pool) RegisterScan(id int64, fp ScanFootprint, seedSpeed float64) {
	if p.scans == nil || !fp.valid() {
		return
	}
	r := &scanReg{fp: fp, seed: seedSpeed}
	p.scans.mu.Lock()
	p.scans.scans[id] = r
	p.scans.mu.Unlock()
}

// UpdateScan records scan id's progress: processed pages consumed (in
// circular visit order from its origin) and the latest speed estimate in
// pages per second. Non-positive speeds fall back to the registration seed.
// Unknown ids are ignored.
func (p *Pool) UpdateScan(id int64, processed int, speed float64) {
	if p.scans == nil {
		return
	}
	p.scans.mu.RLock()
	r := p.scans.scans[id]
	p.scans.mu.RUnlock()
	if r == nil {
		return
	}
	if processed < 0 {
		processed = 0
	}
	if max := r.fp.End - r.fp.Start; processed > max {
		processed = max
	}
	r.processed.Store(int64(processed))
	r.speedBits.Store(math.Float64bits(speed))
}

// SetScanActive marks scan id active or inactive. Detached scans (whose
// progress reports stop) are set inactive so stale positions do not protect
// pages; a rejoin reactivates them. Unknown ids are ignored.
func (p *Pool) SetScanActive(id int64, active bool) {
	if p.scans == nil {
		return
	}
	p.scans.mu.RLock()
	r := p.scans.scans[id]
	p.scans.mu.RUnlock()
	if r != nil {
		r.inactive.Store(!active)
	}
}

// UnregisterScan removes scan id's registration; its pages lose their
// protection immediately.
func (p *Pool) UnregisterScan(id int64) {
	if p.scans == nil {
		return
	}
	p.scans.mu.Lock()
	delete(p.scans.scans, id)
	p.scans.mu.Unlock()
}

// RegisteredScans returns the number of currently registered scans (zero for
// non-scan-aware pools); introspection and tests use it.
func (p *Pool) RegisteredScans() int {
	if p.scans == nil {
		return 0
	}
	p.scans.mu.RLock()
	defer p.scans.mu.RUnlock()
	return len(p.scans.scans)
}
