package buffer

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"scanshare/internal/disk"
)

// load simulates a full fetch cycle: acquire, fill on miss, leaving the page
// pinned. It fails the test on Busy since single-threaded tests should never
// see one unless the pool is exhausted.
func load(t *testing.T, p *Pool, pid disk.PageID) Status {
	t.Helper()
	st, _ := p.Acquire(pid)
	if st == Miss {
		if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
			t.Fatalf("Fill(%d): %v", pid, err)
		}
	}
	return st
}

func TestNewPoolRejectsBadCapacity(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Error("NewPool(0) succeeded")
	}
	if _, err := NewPool(-5); err == nil {
		t.Error("NewPool(-5) succeeded")
	}
}

func TestMissThenHit(t *testing.T) {
	p := MustNewPool(4)
	if st := load(t, p, 7); st != Miss {
		t.Fatalf("first acquire: %v, want miss", st)
	}
	p.Release(7, PriorityNormal)
	st, data := p.Acquire(7)
	if st != Hit {
		t.Fatalf("second acquire: %v, want hit", st)
	}
	if len(data) != 1 || data[0] != 7 {
		t.Errorf("hit returned wrong data: %v", data)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.LogicalReads != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPendingPageIsBusyForOthers(t *testing.T) {
	p := MustNewPool(4)
	if st, _ := p.Acquire(1); st != Miss {
		t.Fatal("expected miss")
	}
	// Second acquirer arrives before Fill: models waiting on in-flight I/O.
	if st, _ := p.Acquire(1); st != Busy {
		t.Error("acquire of pending page should be Busy")
	}
	p.Fill(1, []byte{1})
	if st, _ := p.Acquire(1); st != Hit {
		t.Error("acquire after Fill should Hit")
	}
}

func TestEvictionIsLRUWithinLevel(t *testing.T) {
	p := MustNewPool(2)
	load(t, p, 1)
	p.Release(1, PriorityNormal)
	load(t, p, 2)
	p.Release(2, PriorityNormal)
	// Touch page 1 so page 2 becomes least recently released.
	load(t, p, 1)
	p.Release(1, PriorityNormal)
	load(t, p, 3) // must evict 2
	if p.Contains(2) {
		t.Error("page 2 should have been evicted (LRU)")
	}
	if !p.Contains(1) {
		t.Error("page 1 should still be resident")
	}
}

func TestEvictionPrefersLowerPriority(t *testing.T) {
	p := MustNewPool(3)
	load(t, p, 1)
	p.Release(1, PriorityHigh)
	load(t, p, 2)
	p.Release(2, PriorityEvict)
	load(t, p, 3)
	p.Release(3, PriorityNormal)
	load(t, p, 4) // evicts 2 (lowest priority), not 1 (oldest)
	if p.Contains(2) {
		t.Error("PriorityEvict page survived over higher levels")
	}
	if !p.Contains(1) || !p.Contains(3) {
		t.Error("higher-priority pages were evicted")
	}
	s := p.Stats()
	if s.EvictionsByPr[PriorityEvict] != 1 || s.Evictions != 1 {
		t.Errorf("eviction accounting wrong: %+v", s)
	}
}

func TestHighPriorityOutlivesManyNormalPages(t *testing.T) {
	// A leader's high-priority page must survive a stream of normal
	// releases that exceeds pool capacity — the mechanism the sharing
	// manager relies on.
	p := MustNewPool(8)
	load(t, p, 100)
	p.Release(100, PriorityHigh)
	for pid := disk.PageID(0); pid < 20; pid++ {
		load(t, p, pid)
		p.Release(pid, PriorityNormal)
	}
	if !p.Contains(100) {
		t.Error("high-priority page was evicted by normal-priority churn")
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p := MustNewPool(2)
	load(t, p, 1) // stays pinned
	load(t, p, 2) // stays pinned
	if st, _ := p.Acquire(3); st != AllPinned {
		t.Errorf("acquire with all frames pinned: %v, want all-pinned", st)
	}
	p.Release(1, PriorityNormal)
	if st, _ := p.Acquire(3); st != Miss {
		t.Error("acquire after release should reserve a frame")
	}
	if p.Contains(1) {
		t.Error("released page should have been the victim")
	}
	if !p.Contains(2) {
		t.Error("pinned page 2 was evicted")
	}
}

func TestMultiplePins(t *testing.T) {
	p := MustNewPool(2)
	load(t, p, 1)
	if st, _ := p.Acquire(1); st != Hit {
		t.Fatal("second pin should hit")
	}
	p.Release(1, PriorityNormal)
	// Still pinned once; must not be evictable.
	load(t, p, 2)
	p.Release(2, PriorityNormal)
	if st, _ := p.Acquire(3); st != Miss {
		t.Fatal("expected miss for page 3")
	}
	if p.Contains(1) == false {
		t.Error("page 1 evicted while still pinned once")
	}
	if p.Contains(2) {
		t.Error("page 2 should have been the victim")
	}
}

func TestReleaseErrors(t *testing.T) {
	p := MustNewPool(2)
	if err := p.Release(9, PriorityNormal); err == nil {
		t.Error("release of non-resident page succeeded")
	}
	p.Acquire(1)
	if err := p.Release(1, PriorityNormal); err == nil {
		t.Error("release of pending page succeeded")
	}
	p.Fill(1, nil)
	if err := p.Release(1, Priority(99)); err == nil {
		t.Error("release with invalid priority succeeded")
	}
	p.Release(1, PriorityNormal)
	if err := p.Release(1, PriorityNormal); err == nil {
		t.Error("double release succeeded")
	}
}

func TestFillErrors(t *testing.T) {
	p := MustNewPool(2)
	if err := p.Fill(5, nil); err == nil {
		t.Error("Fill of non-resident page succeeded")
	}
	load(t, p, 1)
	if err := p.Fill(1, nil); err == nil {
		t.Error("double Fill succeeded")
	}
}

func TestAbortFreesFrame(t *testing.T) {
	p := MustNewPool(1)
	if st, _ := p.Acquire(1); st != Miss {
		t.Fatal("expected miss")
	}
	if err := p.Abort(1); err != nil {
		t.Fatal(err)
	}
	if st, _ := p.Acquire(2); st != Miss {
		t.Error("frame not freed by Abort")
	}
	if err := p.Abort(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Abort(2); err == nil {
		t.Error("double Abort succeeded")
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Error("empty stats hit ratio should be 0")
	}
	s = Stats{LogicalReads: 4, Hits: 3}
	if s.HitRatio() != 0.75 {
		t.Errorf("HitRatio = %v, want 0.75", s.HitRatio())
	}
}

func TestPriorityString(t *testing.T) {
	for pr, want := range map[Priority]string{
		PriorityEvict:  "evict",
		PriorityLow:    "low",
		PriorityNormal: "normal",
		PriorityHigh:   "high",
		Priority(9):    "Priority(9)",
	} {
		if pr.String() != want {
			t.Errorf("Priority(%d).String() = %q, want %q", int(pr), pr.String(), want)
		}
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Hit: "hit", Miss: "miss", Busy: "busy", Status(7): "Status(7)"} {
		if st.String() != want {
			t.Errorf("Status.String() = %q, want %q", st.String(), want)
		}
	}
}

func TestResetStats(t *testing.T) {
	p := MustNewPool(2)
	load(t, p, 1)
	p.ResetStats()
	if s := p.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset: %+v", s)
	}
	if !p.Contains(1) || p.Len() != 1 {
		t.Error("reset should not drop cached pages")
	}
}

// TestRandomWorkloadInvariants drives the pool with random operation
// sequences and checks the internal invariants plus capacity bounds after
// every step.
func TestRandomWorkloadInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := MustNewPool(1 + rng.Intn(16))
		pinned := map[disk.PageID]int{}
		for step := 0; step < 500; step++ {
			pid := disk.PageID(rng.Intn(64))
			switch rng.Intn(3) {
			case 0, 1: // fetch
				st, _ := p.Acquire(pid)
				switch st {
				case Miss:
					if rng.Intn(10) == 0 {
						p.Abort(pid)
					} else {
						p.Fill(pid, []byte{byte(pid)})
						pinned[pid]++
					}
				case Hit:
					pinned[pid]++
				case Busy:
					// fine; try something else next step
				}
			case 2: // release one pin if we hold any
				for held, n := range pinned {
					if n > 0 {
						if err := p.Release(held, Priority(rng.Intn(int(numPriorities)))); err != nil {
							return false
						}
						if n == 1 {
							delete(pinned, held)
						} else {
							pinned[held] = n - 1
						}
						break
					}
				}
			}
			p.CheckInvariants()
			if p.Len() > p.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccessIsSafe(t *testing.T) {
	p := MustNewPool(32)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				pid := disk.PageID(rng.Intn(100))
				st, _ := p.Acquire(pid)
				switch st {
				case Miss:
					if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
						done <- fmt.Errorf("fill: %w", err)
						return
					}
					fallthrough
				case Hit:
					if err := p.Release(pid, Priority(rng.Intn(int(numPriorities)))); err != nil {
						done <- fmt.Errorf("release: %w", err)
						return
					}
				case Busy:
					// retry next iteration
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	p.CheckInvariants()
}
