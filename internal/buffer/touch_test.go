package buffer

import (
	"testing"

	"scanshare/internal/disk"
)

// fillRelease misses pid in, fills it, and releases it at prio.
func fillRelease(t *testing.T, p *Pool, pid disk.PageID, prio Priority) {
	t.Helper()
	st, _ := p.Acquire(pid)
	if st != Miss {
		t.Fatalf("Acquire(%d) = %v, want Miss", pid, st)
	}
	if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
		t.Fatalf("Fill(%d): %v", pid, err)
	}
	if err := p.Release(pid, prio); err != nil {
		t.Fatalf("Release(%d): %v", pid, err)
	}
}

// TestOptimisticHitsProtectHotSet is the regression test for the satellite
// fix: before the touch path, pages served exclusively through ReadOptimistic
// never refreshed their LRU recency, so a cold churn stream would evict the
// hottest pages in the pool first. Now every validated optimistic hit sets
// the frame's touched bit and the priority-LRU victim walk grants it a
// second chance, so a hot set that is read lock-free on every round survives
// a churn stream several times the pool's capacity.
func TestOptimisticHitsProtectHotSet(t *testing.T) {
	const (
		capacity = 8
		hotPages = 4
		churn    = 64 // cold pages streamed through, 8x capacity
	)
	for _, policy := range Policies() {
		t.Run(policy, func(t *testing.T) {
			p := MustNewPoolOpts(PoolOptions{
				Capacity: capacity, Policy: policy, Translation: TranslationArray,
			})
			// For the predictive policy the hot set's protection comes from
			// the scan feed, not the touched bit: keep a registered scan
			// whose upcoming pages are exactly the hot set, as the realtime
			// runner's feed would.
			if policy == PolicyPredictive {
				p.RegisterScan(1, ScanFootprint{Start: 0, End: hotPages, Origin: 0}, 1)
			}
			for pid := disk.PageID(0); pid < hotPages; pid++ {
				fillRelease(t, p, pid, PriorityNormal)
			}
			// Optimistic-heavy steady state: every round reads the whole hot
			// set lock-free, then faults in one cold page. The cold pages are
			// released at the same priority as the hot set, so without the
			// touch path the hot pages (least recently *released*) would be
			// the first victims.
			for i := 0; i < churn; i++ {
				for pid := disk.PageID(0); pid < hotPages; pid++ {
					if _, ok := p.ReadOptimistic(pid); !ok {
						t.Fatalf("round %d: hot page %d was evicted (ReadOptimistic declined)", i, pid)
					}
				}
				fillRelease(t, p, disk.PageID(1000+i), PriorityNormal)
			}
			for pid := disk.PageID(0); pid < hotPages; pid++ {
				if !p.Contains(pid) {
					t.Errorf("hot page %d not resident after churn", pid)
				}
			}
			st := p.Stats()
			if want := int64(churn * hotPages); st.OptHits != want {
				t.Errorf("OptHits = %d, want %d (every hot read lock-free)", st.OptHits, want)
			}
			p.CheckInvariants()
		})
	}
}

// TestSecondChanceDoesNotLivelock pins down the bounded-walk guarantee: when
// every unpinned frame is touched, eviction must still succeed (the walk
// clears each bit once and falls back to the original front), not spin or
// report the shard unevictable.
func TestSecondChanceDoesNotLivelock(t *testing.T) {
	const capacity = 4
	p := MustNewPoolOpts(PoolOptions{Capacity: capacity, Translation: TranslationArray})
	for pid := disk.PageID(0); pid < capacity; pid++ {
		fillRelease(t, p, pid, PriorityNormal)
	}
	for pid := disk.PageID(0); pid < capacity; pid++ {
		if _, ok := p.ReadOptimistic(pid); !ok {
			t.Fatalf("ReadOptimistic(%d) declined on a resident page", pid)
		}
	}
	// The pool is full and every frame touched: the next miss must still
	// find a victim, and it must be page 0 (the original front, its second
	// chance consumed along with everyone else's).
	st, _ := p.Acquire(disk.PageID(100))
	if st != Miss {
		t.Fatalf("Acquire(100) = %v, want Miss", st)
	}
	if err := p.Fill(100, []byte{100}); err != nil {
		t.Fatal(err)
	}
	if p.Contains(0) {
		t.Error("page 0 should have been the victim after all second chances were spent")
	}
	for pid := disk.PageID(1); pid < capacity; pid++ {
		if !p.Contains(pid) {
			t.Errorf("page %d evicted out of order", pid)
		}
	}
	if got := p.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d, want 1", got)
	}
	p.CheckInvariants()
}

// TestMapTranslationNeverTouches pins the staleness contract for the classic
// pool: under map translation ReadOptimistic declines without side effects,
// no touched bit is ever set, and eviction is byte-for-byte the paper's
// priority-LRU — which the deterministic replay goldens depend on.
func TestMapTranslationNeverTouches(t *testing.T) {
	p := MustNewPool(2)
	fillRelease(t, p, 1, PriorityNormal)
	fillRelease(t, p, 2, PriorityNormal)
	if _, ok := p.ReadOptimistic(1); ok {
		t.Fatal("map-translation pool served an optimistic read")
	}
	fillRelease(t, p, 3, PriorityNormal)
	if p.Contains(1) {
		t.Error("page 1 survived; the optimistic probe must not have refreshed it")
	}
	st := p.Stats()
	if st.OptHits != 0 || st.OptRetries != 0 {
		t.Errorf("map pool recorded optimistic traffic: %+v", st)
	}
}
