package buffer

import (
	"math"
	"testing"

	"scanshare/internal/disk"
)

// snapOf builds the estimator's input from a pool's live scan table, the
// same way victim selection does.
func snapOf(t *testing.T, p *Pool) []scanSnap {
	t.Helper()
	if p.scans == nil {
		t.Fatal("pool is not scan-aware")
	}
	return p.scans.snapshot(nil)
}

// TestNextUseEstimate drives the estimator through its edge cases via the
// public registration API: stalled and backward speed samples, detached and
// rejoined scans, positions past the end of the footprint, pages outside
// every footprint, and wrap-around visit order.
func TestNextUseEstimate(t *testing.T) {
	type scan struct {
		id        int64
		fp        ScanFootprint
		seed      float64
		processed int
		speed     float64
		update    bool // apply processed/speed via UpdateScan
		inactive  bool
	}
	cases := []struct {
		name  string
		scans []scan
		pid   disk.PageID
		want  float64 // math.Inf(1) for "never"
	}{
		{
			name: "no scans registered",
			pid:  5, want: math.Inf(1),
		},
		{
			name:  "page ahead of one scan",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10}},
			pid:   40, want: 4, // 40 pages ahead at 10 pages/s
		},
		{
			name: "page already consumed",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10,
				update: true, processed: 50, speed: 10}},
			pid: 40, want: math.Inf(1),
		},
		{
			name:  "page outside every footprint",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10}},
			pid:   150, want: math.Inf(1),
		},
		{
			name: "stalled scan falls back to seed speed",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 5,
				update: true, processed: 10, speed: 0}},
			pid: 20, want: 2, // 10 pages ahead at the 5 pages/s seed
		},
		{
			name: "speed crossing zero falls back to seed speed",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 5,
				update: true, processed: 10, speed: -3}},
			pid: 20, want: 2,
		},
		{
			name: "no usable speed at all falls back to 1 page/s",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 0,
				update: true, processed: 10, speed: 0}},
			pid: 20, want: 10,
		},
		{
			name: "detached scan protects nothing",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10,
				inactive: true}},
			pid: 40, want: math.Inf(1),
		},
		{
			name: "rejoined scan protects again",
			scans: []scan{
				{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10, inactive: true},
				{id: 2, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10},
			},
			pid: 40, want: 4,
		},
		{
			name: "progress past EOF clamps to footprint length",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10,
				update: true, processed: 100000, speed: 10}},
			pid: 99, want: math.Inf(1),
		},
		{
			name: "negative progress clamps to zero",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 10,
				update: true, processed: -7, speed: 10}},
			pid: 40, want: 4,
		},
		{
			name:  "wrap-around: page behind a mid-table origin",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 60}, seed: 10}},
			// rank of page 40 is (40-60)+100 = 80 pages ahead in visit order
			pid: 40, want: 8,
		},
		{
			name: "minimum over multiple scans wins",
			scans: []scan{
				{id: 1, fp: ScanFootprint{Start: 0, End: 100, Origin: 0}, seed: 1},
				{id: 2, fp: ScanFootprint{Start: 0, End: 100, Origin: 30}, seed: 1},
			},
			// scan 1 reaches page 40 in 40s; scan 2 in (40-30)=10s
			pid: 40, want: 10,
		},
		{
			name:  "base offset maps device pages into table space",
			scans: []scan{{id: 1, fp: ScanFootprint{Base: 1000, Start: 0, End: 100, Origin: 0}, seed: 10}},
			pid:   1040, want: 4,
		},
		{
			name:  "invalid footprint is never registered",
			scans: []scan{{id: 1, fp: ScanFootprint{Start: 10, End: 10, Origin: 10}, seed: 10}},
			pid:   10, want: math.Inf(1),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pool := MustNewPoolPolicy(8, 1, PolicyPredictive)
			for _, s := range tc.scans {
				pool.RegisterScan(s.id, s.fp, s.seed)
				if s.update {
					pool.UpdateScan(s.id, s.processed, s.speed)
				}
				if s.inactive {
					pool.SetScanActive(s.id, false)
				}
			}
			got := nextUseEstimate(snapOf(t, pool), tc.pid)
			if got != tc.want {
				t.Fatalf("estimate(%d) = %v, want %v", tc.pid, got, tc.want)
			}
		})
	}
}

// fillAndRelease makes pid resident and unpinned at Normal priority.
func fillAndRelease(t *testing.T, p *Pool, pid disk.PageID) {
	t.Helper()
	if st, _ := p.Acquire(pid); st != Miss {
		t.Fatalf("Acquire(%d) = %v, want Miss", pid, st)
	}
	if err := p.Fill(pid, []byte{byte(pid)}); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(pid, PriorityNormal); err != nil {
		t.Fatal(err)
	}
}

// TestPredictiveVictimChoice checks end-to-end that eviction follows the
// estimates: the page furthest from any scan's next use goes first, consumed
// pages go before upcoming ones, and with no scans the policy degenerates to
// release-order LRU.
func TestPredictiveVictimChoice(t *testing.T) {
	t.Run("furthest next use evicted first", func(t *testing.T) {
		pool := MustNewPoolPolicy(3, 1, PolicyPredictive)
		pool.RegisterScan(1, ScanFootprint{Start: 0, End: 30, Origin: 0}, 10)
		pool.UpdateScan(1, 5, 10)
		// Pages 6, 12, 25 are all upcoming; 25 is furthest.
		for _, pid := range []disk.PageID{25, 6, 12} {
			fillAndRelease(t, pool, pid)
		}
		if st, _ := pool.Acquire(9); st != Miss {
			t.Fatalf("Acquire(9) = %v, want Miss", st)
		}
		if pool.Contains(25) {
			t.Error("page 25 (furthest next use) survived eviction")
		}
		for _, pid := range []disk.PageID{6, 12} {
			if !pool.Contains(pid) {
				t.Errorf("page %d evicted ahead of page 25", pid)
			}
		}
	})

	t.Run("consumed page evicted before upcoming ones", func(t *testing.T) {
		pool := MustNewPoolPolicy(3, 1, PolicyPredictive)
		pool.RegisterScan(1, ScanFootprint{Start: 0, End: 30, Origin: 0}, 10)
		pool.UpdateScan(1, 10, 10)
		// Page 2 is behind the scan (never reused); 12 and 28 are ahead.
		for _, pid := range []disk.PageID{28, 2, 12} {
			fillAndRelease(t, pool, pid)
		}
		if st, _ := pool.Acquire(9); st != Miss {
			t.Fatalf("Acquire(9) = %v, want Miss", st)
		}
		if pool.Contains(2) {
			t.Error("consumed page 2 survived while upcoming pages were resident")
		}
		if !pool.Contains(28) || !pool.Contains(12) {
			t.Error("an upcoming page was evicted ahead of the consumed one")
		}
	})

	t.Run("no scans degenerates to release-order LRU", func(t *testing.T) {
		pool := MustNewPoolPolicy(3, 1, PolicyPredictive)
		for _, pid := range []disk.PageID{7, 3, 5} {
			fillAndRelease(t, pool, pid)
		}
		if st, _ := pool.Acquire(9); st != Miss {
			t.Fatalf("Acquire(9) = %v, want Miss", st)
		}
		if pool.Contains(7) {
			t.Error("least recently released page 7 survived eviction")
		}
		if !pool.Contains(3) || !pool.Contains(5) {
			t.Error("more recently released page evicted first")
		}
	})

	t.Run("unregister drops protection", func(t *testing.T) {
		pool := MustNewPoolPolicy(2, 1, PolicyPredictive)
		pool.RegisterScan(1, ScanFootprint{Start: 0, End: 30, Origin: 0}, 10)
		for _, pid := range []disk.PageID{20, 4} {
			fillAndRelease(t, pool, pid)
		}
		pool.UnregisterScan(1)
		if n := pool.RegisteredScans(); n != 0 {
			t.Fatalf("RegisteredScans() = %d after unregister", n)
		}
		// Without the scan both pages estimate +Inf; release order decides.
		if st, _ := pool.Acquire(9); st != Miss {
			t.Fatalf("Acquire(9) = %v, want Miss", st)
		}
		if pool.Contains(20) {
			t.Error("earliest released page 20 survived after unregister")
		}
	})
}
