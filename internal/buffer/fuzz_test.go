package buffer

import (
	"testing"

	"scanshare/internal/disk"
)

// FuzzPoolOps interprets the fuzzer's bytes as an operation sequence against
// a small sharded pool — two bits of opcode, five bits of page id per byte —
// while tracking which frames the driver holds so every call is legal. The
// policy byte selects the replacement policy, and acquire opcodes with the
// 0x20 bit set become scan-registration events (register, progress report,
// activity toggle, unregister), so the same op streams run under both
// policies and interleave registration traffic with pin churn. After each
// input the pool must pass CheckInvariants and the cross-policy invariants
// must hold: the counter identities, capacity, pinned-page residency, and
// the registration count (zero on non-scan-aware pools); the fuzzer's job is
// to find an op order that corrupts the policy order, the pending counter,
// or the stats.
func FuzzPoolOps(f *testing.F) {
	f.Add(uint8(1), uint8(0), []byte{0x00, 0x40, 0x80})
	f.Add(uint8(4), uint8(1), []byte{0x00, 0x01, 0x02, 0x03, 0x41, 0x82, 0xc3, 0x00})
	f.Add(uint8(7), uint8(0), []byte{0x1f, 0x5f, 0x9f, 0xdf, 0x1f, 0x5f})
	f.Add(uint8(2), uint8(1), []byte{0x20, 0x28, 0x00, 0x01, 0x21, 0x02, 0x42, 0x82, 0x2c, 0x03, 0x23})
	f.Fuzz(func(t *testing.T, shardByte, policyByte uint8, ops []byte) {
		shards := int(shardByte%8) + 1
		capacity := shards + 5
		policies := Policies()
		policy := policies[int(policyByte)%len(policies)]
		pool := MustNewPoolPolicy(capacity, shards, policy)

		// Footprint variants for register events; the last is invalid and
		// must be ignored.
		footprints := [4]ScanFootprint{
			{Start: 0, End: 32, Origin: 0},
			{Start: 4, End: 20, Origin: 10},
			{Start: 0, End: 32, Origin: 31},
			{Start: 5, End: 5, Origin: 5},
		}

		pins := map[disk.PageID]int{}
		pending := map[disk.PageID]bool{}
		regs := map[int64]bool{}
		for _, b := range ops {
			pid := disk.PageID(b & 0x1f)
			switch b >> 6 {
			case 0:
				if b&0x20 != 0 {
					// Scan-registration event: bits 0-1 pick the kind,
					// bit 2 the scan id, bits 3-4 the parameter variant.
					id := int64(b >> 2 & 1)
					v := int(b >> 3 & 3)
					switch b & 3 {
					case 0:
						pool.RegisterScan(id, footprints[v], float64(v))
						if pool.ScanAware() && footprints[v].valid() {
							regs[id] = true
						}
					case 1:
						pool.UpdateScan(id, v*8-4, float64(v)-1)
					case 2:
						pool.SetScanActive(id, v&1 == 0)
					default:
						pool.UnregisterScan(id)
						delete(regs, id)
					}
					continue
				}
				st, _ := pool.Acquire(pid)
				switch st {
				case Hit:
					pins[pid]++
				case Miss:
					pending[pid] = true
				}
			case 1: // settle the page if we owe it a read: fill or abort
				if !pending[pid] {
					continue
				}
				delete(pending, pid)
				if b&0x20 != 0 {
					if err := pool.Abort(pid); err != nil {
						t.Fatalf("Abort(%d): %v", pid, err)
					}
					continue
				}
				if err := pool.Fill(pid, []byte{byte(pid)}); err != nil {
					t.Fatalf("Fill(%d): %v", pid, err)
				}
				pins[pid]++
			case 2: // release one pin at a priority from the low opcode bits
				if pins[pid] == 0 {
					continue
				}
				prio := Priority(int(b>>5) % NumPriorities)
				if err := pool.Release(pid, prio); err != nil {
					t.Fatalf("Release(%d, %v): %v", pid, prio, err)
				}
				if pins[pid]--; pins[pid] == 0 {
					delete(pins, pid)
				}
			case 3: // priority-retaining release
				if pins[pid] == 0 {
					continue
				}
				if err := pool.ReleaseRetain(pid); err != nil {
					t.Fatalf("ReleaseRetain(%d): %v", pid, err)
				}
				if pins[pid]--; pins[pid] == 0 {
					delete(pins, pid)
				}
			}
		}

		pool.CheckInvariants()
		st := pool.Stats()
		if st.PagesDelivered() != st.Hits+st.Misses-st.Aborts {
			t.Fatalf("delivered identity broken: %+v", st)
		}
		if want := st.Fills + st.Aborts + int64(len(pending)); st.Misses != want {
			t.Fatalf("misses %d != fills %d + aborts %d + %d pending", st.Misses, st.Fills, st.Aborts, len(pending))
		}
		if pool.Len() > pool.Capacity() {
			t.Fatalf("len %d exceeds capacity %d", pool.Len(), pool.Capacity())
		}
		// Pinned pages can never be evicted, whatever the policy chooses.
		for pid, n := range pins {
			if n > 0 && !pool.Contains(pid) {
				t.Fatalf("pinned page %d (pins=%d) not resident", pid, n)
			}
		}
		switch want := len(regs); {
		case !pool.ScanAware() && pool.RegisteredScans() != 0:
			t.Fatalf("policy %s reports %d registered scans, want 0", policy, pool.RegisteredScans())
		case pool.ScanAware() && pool.RegisteredScans() != want:
			t.Fatalf("registered scans %d, want %d", pool.RegisteredScans(), want)
		}
	})
}
