package buffer

import (
	"testing"

	"scanshare/internal/disk"
)

// FuzzPoolOps interprets the fuzzer's bytes as an operation sequence against
// a small sharded pool — two bits of opcode, five bits of page id per byte —
// while tracking which frames the driver holds so every call is legal. The
// policy byte selects the replacement policy in its low bits and the
// translation table in its top bit (0x80: array translation with the
// optimistic read path), and acquire opcodes with the 0x20 bit set become
// scan-registration events (register, progress report, activity toggle,
// unregister), so the same op streams run under both policies, both
// translations, and interleaved registration traffic. A settle opcode for a
// page with no read in flight doubles as an optimistic-read probe, whose
// outcome is checked against residency (map pools must always decline).
// After each input the pool must pass CheckInvariants and the cross-policy
// invariants must hold: the counter identities, capacity, pinned-page
// residency, and the registration count (zero on non-scan-aware pools); the
// fuzzer's job is to find an op order that corrupts the policy order, the
// pending counter, the version protocol, or the stats.
func FuzzPoolOps(f *testing.F) {
	f.Add(uint8(1), uint8(0), []byte{0x00, 0x40, 0x80})
	f.Add(uint8(4), uint8(1), []byte{0x00, 0x01, 0x02, 0x03, 0x41, 0x82, 0xc3, 0x00})
	f.Add(uint8(7), uint8(0), []byte{0x1f, 0x5f, 0x9f, 0xdf, 0x1f, 0x5f})
	f.Add(uint8(2), uint8(1), []byte{0x20, 0x28, 0x00, 0x01, 0x21, 0x02, 0x42, 0x82, 0x2c, 0x03, 0x23})
	f.Add(uint8(1), uint8(0x80), []byte{0x00, 0x40, 0x41, 0x80, 0x01, 0x41, 0x41})
	f.Add(uint8(3), uint8(0x81), []byte{0x00, 0x40, 0x80, 0x01, 0x41, 0x81, 0x02, 0x62, 0x40, 0x41})
	f.Fuzz(func(t *testing.T, shardByte, policyByte uint8, ops []byte) {
		shards := int(shardByte%8) + 1
		capacity := shards + 5
		policies := Policies()
		policy := policies[int(policyByte&0x7f)%len(policies)]
		translation := TranslationMap
		if policyByte&0x80 != 0 {
			translation = TranslationArray
		}
		pool := MustNewPoolOpts(PoolOptions{
			Capacity: capacity, Shards: shards, Policy: policy, Translation: translation,
		})

		// Footprint variants for register events; the last is invalid and
		// must be ignored.
		footprints := [4]ScanFootprint{
			{Start: 0, End: 32, Origin: 0},
			{Start: 4, End: 20, Origin: 10},
			{Start: 0, End: 32, Origin: 31},
			{Start: 5, End: 5, Origin: 5},
		}

		pins := map[disk.PageID]int{}
		pending := map[disk.PageID]bool{}
		regs := map[int64]bool{}
		for _, b := range ops {
			pid := disk.PageID(b & 0x1f)
			switch b >> 6 {
			case 0:
				if b&0x20 != 0 {
					// Scan-registration event: bits 0-1 pick the kind,
					// bit 2 the scan id, bits 3-4 the parameter variant.
					id := int64(b >> 2 & 1)
					v := int(b >> 3 & 3)
					switch b & 3 {
					case 0:
						pool.RegisterScan(id, footprints[v], float64(v))
						if pool.ScanAware() && footprints[v].valid() {
							regs[id] = true
						}
					case 1:
						pool.UpdateScan(id, v*8-4, float64(v)-1)
					case 2:
						pool.SetScanActive(id, v&1 == 0)
					default:
						pool.UnregisterScan(id)
						delete(regs, id)
					}
					continue
				}
				st, _ := pool.Acquire(pid)
				switch st {
				case Hit:
					pins[pid]++
				case Miss:
					pending[pid] = true
				}
			case 1: // settle the page if we owe it a read: fill or abort
				if !pending[pid] {
					// Nothing to settle: probe the optimistic path instead.
					// Single-threaded, the outcome is fully determined: a
					// hit iff the pool is array-translation and the page is
					// resident and valid, with the fill payload intact.
					data, ok := pool.ReadOptimistic(pid)
					want := translation == TranslationArray && pool.Contains(pid)
					if ok != want {
						t.Fatalf("ReadOptimistic(%d) = %v, want %v (translation %s)", pid, ok, want, translation)
					}
					if ok && (len(data) != 1 || data[0] != byte(pid)) {
						t.Fatalf("ReadOptimistic(%d) returned %v", pid, data)
					}
					continue
				}
				delete(pending, pid)
				if b&0x20 != 0 {
					if err := pool.Abort(pid); err != nil {
						t.Fatalf("Abort(%d): %v", pid, err)
					}
					continue
				}
				if err := pool.Fill(pid, []byte{byte(pid)}); err != nil {
					t.Fatalf("Fill(%d): %v", pid, err)
				}
				pins[pid]++
			case 2: // release one pin at a priority from the low opcode bits
				if pins[pid] == 0 {
					continue
				}
				prio := Priority(int(b>>5) % NumPriorities)
				if err := pool.Release(pid, prio); err != nil {
					t.Fatalf("Release(%d, %v): %v", pid, prio, err)
				}
				if pins[pid]--; pins[pid] == 0 {
					delete(pins, pid)
				}
			case 3: // priority-retaining release
				if pins[pid] == 0 {
					continue
				}
				if err := pool.ReleaseRetain(pid); err != nil {
					t.Fatalf("ReleaseRetain(%d): %v", pid, err)
				}
				if pins[pid]--; pins[pid] == 0 {
					delete(pins, pid)
				}
			}
		}

		pool.CheckInvariants()
		st := pool.Stats()
		if st.PagesDelivered() != st.Hits+st.Misses-st.Aborts {
			t.Fatalf("delivered identity broken: %+v", st)
		}
		if want := st.Fills + st.Aborts + int64(len(pending)); st.Misses != want {
			t.Fatalf("misses %d != fills %d + aborts %d + %d pending", st.Misses, st.Fills, st.Aborts, len(pending))
		}
		if pool.Len() > pool.Capacity() {
			t.Fatalf("len %d exceeds capacity %d", pool.Len(), pool.Capacity())
		}
		// Pinned pages can never be evicted, whatever the policy chooses.
		for pid, n := range pins {
			if n > 0 && !pool.Contains(pid) {
				t.Fatalf("pinned page %d (pins=%d) not resident", pid, n)
			}
		}
		switch want := len(regs); {
		case !pool.ScanAware() && pool.RegisteredScans() != 0:
			t.Fatalf("policy %s reports %d registered scans, want 0", policy, pool.RegisteredScans())
		case pool.ScanAware() && pool.RegisteredScans() != want:
			t.Fatalf("registered scans %d, want %d", pool.RegisteredScans(), want)
		}
	})
}

// FuzzTranslation attacks the chunked copy-on-write translation directory
// and its range discipline directly, then replays the same page-id stream
// through a tiny array-translation pool. Each 3-byte group decodes to a
// page id spanning the interesting ranges — within the first chunk, across
// chunk boundaries, just below and at the hard cap, and negative — and
// alternates ensure/entry calls. Invariants after every op: coverage is a
// whole number of chunks and never exceeds the cap; entry() is non-nil
// exactly for in-range ids below coverage; ensure() rejects exactly the
// out-of-range ids; growth never relocates an existing entry (a sentinel
// stored before growth must load back identical after). The pool replay
// then checks that any id the fuzzer invents — overflow ids included —
// survives a full miss/fill/read/release cycle with the invariant checker
// green.
func FuzzTranslation(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x81, 0x10, 0x00, 0x42, 0xff, 0xff})
	f.Add([]byte{0xc0, 0x00, 0x01, 0x03, 0x00, 0x02, 0x80, 0x00, 0x03})
	f.Add([]byte{0x41, 0x0f, 0xff, 0x01, 0x10, 0x00, 0xc1, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, ops []byte) {
		// Decode one op per 3-byte group: 2 bits opcode, then a 22-bit value
		// stretched across the ranges worth probing.
		type op struct {
			ensure bool
			pid    disk.PageID
		}
		var seq []op
		for i := 0; i+2 < len(ops); i += 3 {
			v := int(ops[i]&0x3f)<<16 | int(ops[i+1])<<8 | int(ops[i+2])
			pid := disk.PageID(v)
			switch ops[i] >> 6 & 3 {
			case 1: // shift near the cap boundary
				pid = MaxTranslationPages - 2 + disk.PageID(v%5)
			case 2: // negative
				pid = -1 - disk.PageID(v)
			case 3: // cross early chunk boundaries
				pid = disk.PageID(v % (3 * xlateChunkPages))
			}
			seq = append(seq, op{ensure: ops[i]&0x20 != 0, pid: pid})
		}

		tr := newTranslation(0)
		sentinels := map[disk.PageID]*frame{}
		for _, o := range seq {
			if o.ensure {
				e := tr.ensure(o.pid)
				switch {
				case !tr.inRange(o.pid):
					if e != nil {
						t.Fatalf("ensure(%d) accepted an out-of-range pid", o.pid)
					}
				case e == nil:
					t.Fatalf("ensure(%d) failed for an in-range pid", o.pid)
				default:
					if sentinels[o.pid] == nil {
						f := &frame{pid: o.pid}
						sentinels[o.pid] = f
						e.Store(f)
					}
				}
			}
			covered := tr.covered()
			if covered%xlateChunkPages != 0 || covered > MaxTranslationPages {
				t.Fatalf("coverage %d is not a whole chunk count under the cap", covered)
			}
			e := tr.entry(o.pid)
			if want := tr.inRange(o.pid) && int(o.pid) < covered; (e != nil) != want {
				t.Fatalf("entry(%d) = %v with coverage %d", o.pid, e, covered)
			}
			// Chunk stability: every sentinel stored so far must still be
			// reachable, bitwise the same frame, through the grown directory.
			for pid, f := range sentinels {
				se := tr.entry(pid)
				if se == nil || se.Load() != f {
					t.Fatalf("growth lost the sentinel for page %d", pid)
				}
			}
		}

		// Pool replay: the same id stream through a real array pool.
		pool := MustNewPoolOpts(PoolOptions{Capacity: 4, Translation: TranslationArray})
		for _, o := range seq {
			st, _ := pool.Acquire(o.pid)
			switch st {
			case Miss:
				if err := pool.Fill(o.pid, []byte{byte(o.pid)}); err != nil {
					t.Fatalf("Fill(%d): %v", o.pid, err)
				}
			case Hit:
			default:
				continue // Busy/AllPinned cannot happen single-threaded with all pins released
			}
			data, ok := pool.ReadOptimistic(o.pid)
			if want := pool.xlate.inRange(o.pid); ok != want {
				t.Fatalf("ReadOptimistic(%d) = %v, want %v (resident)", o.pid, ok, want)
			}
			if ok && data[0] != byte(o.pid) {
				t.Fatalf("ReadOptimistic(%d) returned %v", o.pid, data)
			}
			if err := pool.Release(o.pid, PriorityNormal); err != nil {
				t.Fatalf("Release(%d): %v", o.pid, err)
			}
		}
		pool.CheckInvariants()
	})
}
