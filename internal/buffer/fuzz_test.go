package buffer

import (
	"testing"

	"scanshare/internal/disk"
)

// FuzzPoolOps interprets the fuzzer's bytes as an operation sequence against
// a small sharded pool — two bits of opcode, five bits of page id per byte —
// while tracking which frames the driver holds so every call is legal. After
// each input the pool must pass CheckInvariants and the counter identities
// must hold; the fuzzer's job is to find an op order that corrupts the level
// lists, the pending counter, or the stats.
func FuzzPoolOps(f *testing.F) {
	f.Add(uint8(1), []byte{0x00, 0x40, 0x80})
	f.Add(uint8(4), []byte{0x00, 0x01, 0x02, 0x03, 0x41, 0x82, 0xc3, 0x00})
	f.Add(uint8(7), []byte{0x1f, 0x5f, 0x9f, 0xdf, 0x1f, 0x5f})
	f.Fuzz(func(t *testing.T, shardByte uint8, ops []byte) {
		shards := int(shardByte%8) + 1
		capacity := shards + 5
		pool := MustNewPoolShards(capacity, shards)

		pins := map[disk.PageID]int{}
		pending := map[disk.PageID]bool{}
		for _, b := range ops {
			pid := disk.PageID(b & 0x1f)
			switch b >> 6 {
			case 0: // acquire
				st, _ := pool.Acquire(pid)
				switch st {
				case Hit:
					pins[pid]++
				case Miss:
					pending[pid] = true
				}
			case 1: // settle the page if we owe it a read: fill or abort
				if !pending[pid] {
					continue
				}
				delete(pending, pid)
				if b&0x20 != 0 {
					if err := pool.Abort(pid); err != nil {
						t.Fatalf("Abort(%d): %v", pid, err)
					}
					continue
				}
				if err := pool.Fill(pid, []byte{byte(pid)}); err != nil {
					t.Fatalf("Fill(%d): %v", pid, err)
				}
				pins[pid]++
			case 2: // release one pin at a priority from the low opcode bits
				if pins[pid] == 0 {
					continue
				}
				prio := Priority(int(b>>5) % NumPriorities)
				if err := pool.Release(pid, prio); err != nil {
					t.Fatalf("Release(%d, %v): %v", pid, prio, err)
				}
				if pins[pid]--; pins[pid] == 0 {
					delete(pins, pid)
				}
			case 3: // priority-retaining release
				if pins[pid] == 0 {
					continue
				}
				if err := pool.ReleaseRetain(pid); err != nil {
					t.Fatalf("ReleaseRetain(%d): %v", pid, err)
				}
				if pins[pid]--; pins[pid] == 0 {
					delete(pins, pid)
				}
			}
		}

		pool.CheckInvariants()
		st := pool.Stats()
		if st.PagesDelivered() != st.Hits+st.Misses-st.Aborts {
			t.Fatalf("delivered identity broken: %+v", st)
		}
		if want := st.Fills + st.Aborts + int64(len(pending)); st.Misses != want {
			t.Fatalf("misses %d != fills %d + aborts %d + %d pending", st.Misses, st.Fills, st.Aborts, len(pending))
		}
		if pool.Len() > pool.Capacity() {
			t.Fatalf("len %d exceeds capacity %d", pool.Len(), pool.Capacity())
		}
	})
}
