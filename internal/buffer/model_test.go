package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scanshare/internal/disk"
)

// refPool is an obviously-correct reference implementation of the pool's
// replacement contract: unpinned pages live in per-priority FIFO lists
// (least recently released first); the victim is the front of the lowest
// occupied priority level. The real pool must evict exactly the same pages
// in the same order.
type refPool struct {
	capacity int
	pinned   map[disk.PageID]int
	levels   [numPriorities][]disk.PageID
}

func newRefPool(capacity int) *refPool {
	return &refPool{capacity: capacity, pinned: map[disk.PageID]int{}}
}

func (r *refPool) resident(pid disk.PageID) bool {
	if _, ok := r.pinned[pid]; ok {
		return true
	}
	for lvl := range r.levels {
		for _, p := range r.levels[lvl] {
			if p == pid {
				return true
			}
		}
	}
	return false
}

func (r *refPool) size() int {
	n := len(r.pinned)
	for lvl := range r.levels {
		n += len(r.levels[lvl])
	}
	return n
}

// acquire mirrors Pool.Acquire for the single-pin workload the model test
// drives (each page pinned at most once at a time). It returns hit status
// and the PageID it evicted (InvalidPage if none).
func (r *refPool) acquire(pid disk.PageID) (hit bool, victim disk.PageID, ok bool) {
	victim = disk.InvalidPage
	// Hit on an unpinned resident page promotes it to pinned.
	for lvl := range r.levels {
		for i, p := range r.levels[lvl] {
			if p == pid {
				r.levels[lvl] = append(r.levels[lvl][:i], r.levels[lvl][i+1:]...)
				r.pinned[pid] = 1
				return true, victim, true
			}
		}
	}
	if _, pinnedAlready := r.pinned[pid]; pinnedAlready {
		// The model test never double-pins; treat as error.
		return false, victim, false
	}
	if r.size() >= r.capacity {
		evicted := false
		for lvl := range r.levels {
			if len(r.levels[lvl]) > 0 {
				victim = r.levels[lvl][0]
				r.levels[lvl] = r.levels[lvl][1:]
				evicted = true
				break
			}
		}
		if !evicted {
			return false, victim, false // all pinned: busy
		}
	}
	r.pinned[pid] = 1
	return false, victim, true
}

func (r *refPool) release(pid disk.PageID, prio Priority) {
	delete(r.pinned, pid)
	r.levels[prio] = append(r.levels[prio], pid)
}

// TestPoolMatchesReferenceModel drives the real pool and the reference model
// with the same random operation stream and insists on identical residency
// after every step.
func TestPoolMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 2 + rng.Intn(12)
		pool := MustNewPool(capacity)
		ref := newRefPool(capacity)
		held := map[disk.PageID]bool{}

		for step := 0; step < 400; step++ {
			if rng.Intn(2) == 0 && len(held) > 0 {
				// Release a random held page at a random priority.
				var pid disk.PageID = -1
				n := rng.Intn(len(held))
				for p := range held {
					if n == 0 {
						pid = p
						break
					}
					n--
				}
				prio := Priority(rng.Intn(int(numPriorities)))
				if err := pool.Release(pid, prio); err != nil {
					t.Logf("seed %d step %d: release: %v", seed, step, err)
					return false
				}
				ref.release(pid, prio)
				delete(held, pid)
			} else {
				pid := disk.PageID(rng.Intn(40))
				if held[pid] {
					continue // keep the single-pin discipline
				}
				st, _ := pool.Acquire(pid)
				refHit, _, refOK := ref.acquire(pid)
				switch st {
				case Busy, AllPinned:
					if refOK {
						t.Logf("seed %d step %d: pool %v, model not", seed, step, st)
						return false
					}
					continue
				case Hit:
					if !refOK || !refHit {
						t.Logf("seed %d step %d: pool hit, model %v/%v", seed, step, refHit, refOK)
						return false
					}
				case Miss:
					if !refOK || refHit {
						t.Logf("seed %d step %d: pool miss, model %v/%v", seed, step, refHit, refOK)
						return false
					}
					pool.Fill(pid, []byte{byte(pid)})
				}
				held[pid] = true
			}
			// Residency must agree exactly.
			for pid := disk.PageID(0); pid < 40; pid++ {
				real := pool.Contains(pid) || held[pid]
				if real != ref.resident(pid) {
					t.Logf("seed %d step %d: page %d residency pool=%v model=%v",
						seed, step, pid, real, ref.resident(pid))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
