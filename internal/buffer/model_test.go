package buffer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scanshare/internal/disk"
)

// refPool is an obviously-correct reference implementation of the pool's
// replacement contract for the single-pin workload the quick.Check harness
// drives. Under priority-LRU, unpinned pages live in per-priority FIFO lists
// (least recently released first) and the victim is the front of the lowest
// occupied priority level. Under the predictive policy, unpinned pages live
// in one global release-order list and the victim is the page with the
// largest next-use estimate against the registered scans (earliest released
// on ties, no-coverage pages first). The real pool must evict exactly the
// same pages in the same order.
type refPool struct {
	capacity int
	policy   string
	pinned   map[disk.PageID]int
	levels   [numPriorities][]disk.PageID // priority-lru order
	order    []disk.PageID                // predictive release order
	scans    *modelScanTable              // predictive registrations
}

func newRefPool(capacity int, policy string) *refPool {
	return &refPool{
		capacity: capacity,
		policy:   policy,
		pinned:   map[disk.PageID]int{},
		scans:    newModelScanTable(),
	}
}

func (r *refPool) resident(pid disk.PageID) bool {
	if _, ok := r.pinned[pid]; ok {
		return true
	}
	for lvl := range r.levels {
		for _, p := range r.levels[lvl] {
			if p == pid {
				return true
			}
		}
	}
	for _, p := range r.order {
		if p == pid {
			return true
		}
	}
	return false
}

func (r *refPool) size() int {
	n := len(r.pinned) + len(r.order)
	for lvl := range r.levels {
		n += len(r.levels[lvl])
	}
	return n
}

// unpin removes pid from the policy order, reporting whether it was there.
func (r *refPool) unpin(pid disk.PageID) bool {
	for lvl := range r.levels {
		for i, p := range r.levels[lvl] {
			if p == pid {
				r.levels[lvl] = append(r.levels[lvl][:i], r.levels[lvl][i+1:]...)
				return true
			}
		}
	}
	for i, p := range r.order {
		if p == pid {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return true
		}
	}
	return false
}

// evict picks and removes the policy's victim, reporting success.
func (r *refPool) evict() bool {
	if r.policy == PolicyPredictive {
		if len(r.order) == 0 {
			return false
		}
		best, bestEst := -1, math.Inf(-1)
		for i, p := range r.order {
			est := modelNextUse(r.scans, p)
			if math.IsInf(est, 1) {
				best = i
				break
			}
			if best < 0 || est > bestEst {
				best, bestEst = i, est
			}
		}
		r.order = append(r.order[:best], r.order[best+1:]...)
		return true
	}
	for lvl := range r.levels {
		if len(r.levels[lvl]) > 0 {
			r.levels[lvl] = r.levels[lvl][1:]
			return true
		}
	}
	return false
}

// acquire mirrors Pool.Acquire for the single-pin workload the model test
// drives (each page pinned at most once at a time). It returns hit status.
func (r *refPool) acquire(pid disk.PageID) (hit bool, ok bool) {
	// Hit on an unpinned resident page promotes it to pinned.
	if r.unpin(pid) {
		r.pinned[pid] = 1
		return true, true
	}
	if _, pinnedAlready := r.pinned[pid]; pinnedAlready {
		// The model test never double-pins; treat as error.
		return false, false
	}
	if r.size() >= r.capacity && !r.evict() {
		return false, false // all pinned: busy
	}
	r.pinned[pid] = 1
	return false, true
}

func (r *refPool) release(pid disk.PageID, prio Priority) {
	delete(r.pinned, pid)
	if r.policy == PolicyPredictive {
		r.order = append(r.order, pid)
		return
	}
	r.levels[prio] = append(r.levels[prio], pid)
}

// TestPoolMatchesReferenceModel drives the real pool and the reference model
// with the same random operation stream and insists on identical residency
// after every step, once per replacement policy. The predictive run keeps
// two live scan registrations (mirrored on both sides, updated mid-stream)
// so eviction is exercised with real position knowledge, not just the
// no-scans LRU degenerate case.
func TestPoolMatchesReferenceModel(t *testing.T) {
	const pageRange = 40
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				capacity := 2 + rng.Intn(12)
				pool := MustNewPoolPolicy(capacity, 1, policy)
				ref := newRefPool(capacity, policy)
				held := map[disk.PageID]bool{}

				registerScan := func(id int64) {
					start := rng.Intn(pageRange - 1)
					end := start + 1 + rng.Intn(pageRange-start)
					origin := start + rng.Intn(end-start)
					seedSpeed := float64(1 + rng.Intn(8))
					pool.RegisterScan(id, ScanFootprint{Start: start, End: end, Origin: origin}, seedSpeed)
					ref.scans.register(id, 0, start, end, origin, seedSpeed)
				}
				if policy == PolicyPredictive {
					registerScan(1)
					registerScan(2)
				}

				for step := 0; step < 400; step++ {
					if policy == PolicyPredictive && rng.Intn(12) == 0 {
						// Move a scan forward (or re-place it) on both sides.
						id := int64(1 + rng.Intn(2))
						if rng.Intn(6) == 0 {
							registerScan(id)
						} else {
							processed := rng.Intn(pageRange)
							sp := float64(rng.Intn(6)) // 0 exercises the seed fallback
							pool.UpdateScan(id, processed, sp)
							ref.scans.update(id, processed, sp)
						}
					}
					if rng.Intn(2) == 0 && len(held) > 0 {
						// Release a random held page at a random priority.
						var pid disk.PageID = -1
						n := rng.Intn(len(held))
						for p := range held {
							if n == 0 {
								pid = p
								break
							}
							n--
						}
						prio := Priority(rng.Intn(int(numPriorities)))
						if err := pool.Release(pid, prio); err != nil {
							t.Logf("seed %d step %d: release: %v", seed, step, err)
							return false
						}
						ref.release(pid, prio)
						delete(held, pid)
					} else {
						pid := disk.PageID(rng.Intn(pageRange))
						if held[pid] {
							continue // keep the single-pin discipline
						}
						st, _ := pool.Acquire(pid)
						refHit, refOK := ref.acquire(pid)
						switch st {
						case Busy, AllPinned:
							if refOK {
								t.Logf("seed %d step %d: pool %v, model not", seed, step, st)
								return false
							}
							continue
						case Hit:
							if !refOK || !refHit {
								t.Logf("seed %d step %d: pool hit, model %v/%v", seed, step, refHit, refOK)
								return false
							}
						case Miss:
							if !refOK || refHit {
								t.Logf("seed %d step %d: pool miss, model %v/%v", seed, step, refHit, refOK)
								return false
							}
							pool.Fill(pid, []byte{byte(pid)})
						}
						held[pid] = true
					}
					// Residency must agree exactly.
					for pid := disk.PageID(0); pid < pageRange; pid++ {
						real := pool.Contains(pid) || held[pid]
						if real != ref.resident(pid) {
							t.Logf("seed %d step %d: page %d residency pool=%v model=%v",
								seed, step, pid, real, ref.resident(pid))
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}
