// Linearizability-style harness for the optimistic read path.
//
// The optimistic protocol's whole claim is a one-liner: a validated
// lock-free read returns a snapshot that WAS the valid content of that page
// at some instant between the call's start and its end. Two tests attack
// that claim from different angles:
//
//   - TestOptimisticTornReads is the memory-level detector: every fill
//     publishes a sentinel pattern derived from (pid, generation), readers
//     hammer ReadOptimistic while evictions recycle frames underneath them,
//     and any byte inconsistent with the header means a torn read — two
//     occupants mixed in one observation.
//
//   - TestOptimisticLinearizability is the history-level checker: a global
//     atomic logical clock stamps each version's publication (before Fill)
//     and retirement (under the shard lock, via the evictHook seam, after
//     the frame is recycled), and each read's start and end. A read of
//     version k is linearizable iff its window overlaps k's lifetime:
//     pub(k) <= readEnd and ret(k) >= readStart. A validated read of a
//     version that was retired wholly before the read began, or published
//     wholly after it ended, is a linearizability violation even if the
//     bytes happen to be intact.
//
// Both run under -race in `make check`'s race pass (including -cpu 2,8),
// where the atomics-only fast path must also be free of data races.
package buffer

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scanshare/internal/disk"
)

// sentinelLen is the payload size for the harness pages: big enough that a
// torn read (a mix of two occupants) cannot hide in the header.
const sentinelLen = 128

// sentinelPage builds the generation-k payload for pid: an 8+8 byte header
// naming (pid, k) and a body whose every byte is a function of both. Any
// observation whose body disagrees with its own header is torn.
func sentinelPage(pid disk.PageID, k int64) []byte {
	data := make([]byte, sentinelLen)
	binary.LittleEndian.PutUint64(data[0:8], uint64(pid))
	binary.LittleEndian.PutUint64(data[8:16], uint64(k))
	fill := byte(int64(pid)*31 + k*17 + 7)
	for i := 16; i < len(data); i++ {
		data[i] = fill
	}
	return data
}

// checkSentinel decodes an observed payload and verifies internal
// consistency, returning the generation it claims to be.
func checkSentinel(pid disk.PageID, data []byte) (int64, error) {
	if len(data) != sentinelLen {
		return 0, fmt.Errorf("payload length %d, want %d", len(data), sentinelLen)
	}
	gotPid := disk.PageID(binary.LittleEndian.Uint64(data[0:8]))
	k := int64(binary.LittleEndian.Uint64(data[8:16]))
	if gotPid != pid {
		return k, fmt.Errorf("header pid %d, asked for %d", gotPid, pid)
	}
	want := byte(int64(pid)*31 + k*17 + 7)
	for i := 16; i < len(data); i++ {
		if data[i] != want {
			return k, fmt.Errorf("generation %d: byte %d is %#x, want %#x (torn read)", k, i, data[i], want)
		}
	}
	return k, nil
}

// TestOptimisticTornReads: N reader goroutines hammer the lock-free path
// while writers churn pages through a pool far smaller than the page
// universe, so frames recycle constantly. Sentinel payloads make any
// mixed-version observation self-evident.
func TestOptimisticTornReads(t *testing.T) {
	const (
		capacity  = 8
		pageRange = 64
		readers   = 4
		writers   = 2
	)
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 50 * time.Millisecond
	}
	pool := MustNewPoolOpts(PoolOptions{Capacity: capacity, Translation: TranslationArray})

	var gens [pageRange]atomic.Int64 // per-page fill generation
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				pid := disk.PageID(rng.Intn(pageRange))
				st, data := pool.Acquire(pid)
				switch st {
				case Hit:
					if _, err := checkSentinel(pid, data); err != nil {
						t.Errorf("locked hit on page %d: %v", pid, err)
						stop.Store(true)
					}
					pool.Release(pid, Priority(rng.Intn(NumPriorities)))
				case Miss:
					k := gens[pid].Add(1)
					if err := pool.Fill(pid, sentinelPage(pid, k)); err != nil {
						t.Errorf("Fill(%d): %v", pid, err)
						stop.Store(true)
						return
					}
					pool.Release(pid, Priority(rng.Intn(NumPriorities)))
				default: // Busy, AllPinned: another writer owns the frame
					runtime.Gosched()
				}
			}
		}(int64(w) + 1)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				pid := disk.PageID(rng.Intn(pageRange))
				data, ok := pool.ReadOptimistic(pid)
				if !ok {
					continue
				}
				if _, err := checkSentinel(pid, data); err != nil {
					t.Errorf("optimistic read of page %d: %v", pid, err)
					stop.Store(true)
					return
				}
			}
		}(int64(r) + 100)
	}

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	pool.CheckInvariants()

	st := pool.Stats()
	if st.OptHits == 0 {
		t.Fatal("the detector never exercised the optimistic path")
	}
	if st.Evictions == 0 {
		t.Fatal("the detector never recycled a frame; nothing was at risk")
	}
	t.Logf("torn-read detector: %d optimistic hits, %d retries, %d fallbacks, %d evictions",
		st.OptHits, st.OptRetries, st.OptFallbacks, st.Evictions)
}

// linVersion is one (pid, generation) lifetime in the linearizability
// history: pub is a clock stamp taken strictly before the version became
// readable, ret one taken strictly after it stopped being readable (0 while
// still live).
type linVersion struct {
	pub, ret int64
}

// linHistory is the shared lifetime ledger. Writers record publications,
// the evictHook records retirements (it runs under the shard mutex, so the
// lock order is shard.mu -> linHistory.mu; readers take only linHistory.mu).
type linHistory struct {
	clock atomic.Int64
	mu    sync.Mutex
	vers  map[[2]int64]*linVersion // {pid, k} -> lifetime
	cur   map[int64]int64          // pid -> live generation
}

func newLinHistory() *linHistory {
	return &linHistory{vers: make(map[[2]int64]*linVersion), cur: make(map[int64]int64)}
}

// published records that generation k of pid is about to be filled; the
// returned stamp precedes the instant the version became readable.
func (h *linHistory) published(pid disk.PageID, k int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.vers[[2]int64{int64(pid), k}] = &linVersion{pub: h.clock.Add(1)}
	h.cur[int64(pid)] = k
}

// retired records that pid's live generation just became unreachable (the
// evict hook runs after the frame's version went odd and the entry was
// unlinked, so the stamp follows the instant optimistic validation started
// failing).
func (h *linHistory) retired(pid disk.PageID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	k, ok := h.cur[int64(pid)]
	if !ok {
		return // aborted before fill: no published version to retire
	}
	delete(h.cur, int64(pid))
	if v := h.vers[[2]int64{int64(pid), k}]; v != nil {
		v.ret = h.clock.Add(1)
	}
}

// window looks up generation k of pid and returns its recorded lifetime;
// ret is 0 while the version is still live.
func (h *linHistory) window(pid disk.PageID, k int64) (pub, ret int64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, found := h.vers[[2]int64{int64(pid), k}]
	if !found {
		return 0, 0, false
	}
	return v.pub, v.ret, true
}

// TestOptimisticLinearizability checks every validated optimistic read
// against the version-lifetime history: the read's [start, end] window must
// overlap the observed version's [pub, ret] lifetime. Payload integrity is
// checked too, so this subsumes the torn-read property while additionally
// rejecting stale (already-retired) and phantom (not-yet-published)
// observations.
func TestOptimisticLinearizability(t *testing.T) {
	const (
		capacity  = 8
		pageRange = 48
		readers   = 4
		writers   = 2
	)
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 50 * time.Millisecond
	}
	pool := MustNewPoolOpts(PoolOptions{Capacity: capacity, Translation: TranslationArray})
	hist := newLinHistory()
	// The evict hook runs under the shard mutex after the victim is fully
	// unlinked and recycled; it must be installed before any concurrency.
	for _, s := range pool.shards {
		s.evictHook = hist.retired
	}

	var gens [pageRange]atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	var checked atomic.Int64

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				pid := disk.PageID(rng.Intn(pageRange))
				st, data := pool.Acquire(pid)
				switch st {
				case Hit:
					if _, err := checkSentinel(pid, data); err != nil {
						t.Errorf("locked hit on page %d: %v", pid, err)
						stop.Store(true)
					}
					pool.Release(pid, Priority(rng.Intn(NumPriorities)))
				case Miss:
					k := gens[pid].Add(1)
					// Publication stamp strictly precedes readability:
					// the version cannot validate before Fill's content
					// store, which happens after this call returns.
					hist.published(pid, k)
					if err := pool.Fill(pid, sentinelPage(pid, k)); err != nil {
						t.Errorf("Fill(%d): %v", pid, err)
						stop.Store(true)
						return
					}
					pool.Release(pid, Priority(rng.Intn(NumPriorities)))
				default:
					runtime.Gosched()
				}
			}
		}(int64(w) + 1)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				pid := disk.PageID(rng.Intn(pageRange))
				c1 := hist.clock.Add(1)
				data, ok := pool.ReadOptimistic(pid)
				c2 := hist.clock.Add(1)
				if !ok {
					continue
				}
				k, err := checkSentinel(pid, data)
				if err != nil {
					t.Errorf("optimistic read of page %d: %v", pid, err)
					stop.Store(true)
					return
				}
				pub, ret, found := hist.window(pid, k)
				if !found {
					t.Errorf("page %d: observed generation %d was never published", pid, k)
					stop.Store(true)
					return
				}
				if pub > c2 {
					t.Errorf("page %d gen %d: published at %d, after the read ended at %d (phantom)",
						pid, k, pub, c2)
					stop.Store(true)
					return
				}
				if ret != 0 && ret < c1 {
					t.Errorf("page %d gen %d: retired at %d, before the read began at %d (stale)",
						pid, k, ret, c1)
					stop.Store(true)
					return
				}
				checked.Add(1)
			}
		}(int64(r) + 100)
	}

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	pool.CheckInvariants()

	st := pool.Stats()
	if checked.Load() == 0 {
		t.Fatal("no optimistic read was ever checked against the history")
	}
	if st.Evictions == 0 {
		t.Fatal("no version was ever retired; the history was never at risk")
	}
	t.Logf("linearizability: %d reads checked (%d optimistic hits, %d retries, %d fallbacks), %d retirements",
		checked.Load(), st.OptHits, st.OptRetries, st.OptFallbacks, st.Evictions)
}
