package buffer

import (
	"container/list"
	"fmt"
)

// Replacement policy names, accepted by NewPoolPolicy and the engine-level
// Config.PoolPolicy / scanshare-bench -pool-policy plumbing.
const (
	// PolicyLRU is the paper's priority-LRU replacement: the victim is the
	// least recently released unpinned frame of the lowest occupied
	// priority level. It is the default and the only policy with a fully
	// deterministic operation order, which the replay harness depends on.
	PolicyLRU = "priority-lru"
	// PolicyPredictive is predictive buffer management (arXiv 1208.4170,
	// "From Cooperative Scans to Predictive Buffer Management"): scans
	// register their position and speed with the pool, each frame gets a
	// time-to-next-use estimate, and the victim is the frame with the
	// largest estimated reuse distance. With no scans registered it
	// degenerates to plain LRU on release order.
	PolicyPredictive = "predictive"
)

// Policies returns the known replacement policy names, default first.
func Policies() []string { return []string{PolicyLRU, PolicyPredictive} }

// NormalizePolicy maps a policy name to its canonical form ("" means the
// default priority-LRU) or reports an error naming the valid choices.
func NormalizePolicy(name string) (string, error) {
	switch name {
	case "", PolicyLRU:
		return PolicyLRU, nil
	case PolicyPredictive:
		return PolicyPredictive, nil
	}
	return "", fmt.Errorf("buffer: unknown replacement policy %q (valid: %q, %q)", name, PolicyLRU, PolicyPredictive)
}

// replacementPolicy is the per-shard eviction strategy. Every method is
// called with the owning shard's mutex held, so implementations need no
// locking of their own for frame bookkeeping (policy state shared across
// shards, like the predictive scan table, synchronizes separately).
//
// The shard keeps ownership of the frame table, pin counts, stats, and trace
// emission; the policy only orders the unpinned frames and picks victims.
// A frame is handed to the policy by insert when its pin count reaches zero
// (with frame.prio already set to the release priority) and taken back by
// remove when it is re-pinned. victim must detach and return an unpinned
// frame, or nil when it holds none.
type replacementPolicy interface {
	// insert adds f, just unpinned, to the policy's order. It must set
	// f.elem to a non-nil node so the shard can tell the frame is
	// policy-held.
	insert(f *frame)
	// remove detaches f, about to be re-pinned, and must nil f.elem.
	remove(f *frame)
	// victim picks, detaches, and returns the frame to evict, or nil when
	// no unpinned frame exists. The returned frame's prio field is the
	// priority it was last released at, which the shard uses for the
	// per-priority eviction counters.
	victim() *frame
	// check panics if the policy's view of shard s (index idx) is
	// inconsistent: every held frame must be unpinned and present in the
	// shard's frame table. Used by CheckInvariants.
	check(s *shard, idx int)
}

// newPolicy builds the per-shard policy state for a canonical policy name.
// The predictive policy shares the pool-level scan table.
func newPolicy(policy string, scans *scanTable) replacementPolicy {
	switch policy {
	case PolicyPredictive:
		return &predictivePolicy{order: list.New(), scans: scans}
	default:
		return newLRUPolicy()
	}
}

// lruPolicy is the classic priority-LRU replacement extracted from the
// original pool: one FIFO list per priority level, least recently released
// at the front, victim taken from the front of the lowest occupied level.
// The operation order is identical to the pre-refactor inline code, so a
// single-shard pool under this policy stays bit-identical for the golden
// replay tests.
type lruPolicy struct {
	// levels[p] holds unpinned frames released at priority p, least
	// recently released at the front (the eviction end).
	levels [numPriorities]*list.List
}

func newLRUPolicy() *lruPolicy {
	p := &lruPolicy{}
	for i := range p.levels {
		p.levels[i] = list.New()
	}
	return p
}

func (p *lruPolicy) insert(f *frame) {
	f.elem = p.levels[f.prio].PushBack(f)
}

func (p *lruPolicy) remove(f *frame) {
	p.levels[f.prio].Remove(f.elem)
	f.elem = nil
}

func (p *lruPolicy) victim() *frame {
	for prio := PriorityEvict; prio < numPriorities; prio++ {
		lvl := p.levels[prio]
		if lvl.Len() == 0 {
			continue
		}
		// Second-chance walk: a frame whose touched bit was set by a
		// validated optimistic read (array translation only; see
		// ReadOptimistic) gets one reprieve — bit cleared, moved to the back
		// of its level — before it can be victimized. The walk is bounded by
		// the level's length, so when every frame was touched the pass
		// degrades to clearing all bits and evicting the original front:
		// exactly CLOCK on top of the paper's priority-LRU. Under map
		// translation no bit is ever set and this is the classic front-pop.
		for n := lvl.Len(); n > 0; n-- {
			e := lvl.Front()
			f := e.Value.(*frame)
			if f.touched.CompareAndSwap(true, false) {
				lvl.MoveToBack(e)
				continue
			}
			lvl.Remove(e)
			f.elem = nil
			return f
		}
		f := lvl.Remove(lvl.Front()).(*frame)
		f.elem = nil
		return f
	}
	return nil
}

func (p *lruPolicy) check(s *shard, idx int) {
	for i := range p.levels {
		for e := p.levels[i].Front(); e != nil; e = e.Next() {
			f := e.Value.(*frame)
			if f.pins != 0 {
				panic(fmt.Sprintf("buffer: pinned page %d on level list", f.pid))
			}
			if f.prio != Priority(i) {
				panic(fmt.Sprintf("buffer: page %d on level %d but prio %d", f.pid, i, f.prio))
			}
			if s.lookupLocked(f.pid) != f {
				panic(fmt.Sprintf("buffer: page %d level-list entry not in frame table", f.pid))
			}
		}
	}
}
