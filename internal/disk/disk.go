// Package disk simulates the storage device underneath the buffer pool.
//
// The paper's evaluation hinges on two device-level observables: the amount
// of data physically read and the number of disk seeks (its Figures plot both
// over time, and its headline table reports ~33% read and ~34% seek
// reductions). This package provides a page-addressed device with a simple,
// explicit cost model that makes those observables first-class:
//
//   - reading page p immediately after page p-1 of the same allocation is
//     sequential: it costs only transfer time;
//   - any other read incurs a seek (head movement + rotational settle) before
//     the transfer.
//
// The device also models *contention*: it serves one request at a time, so a
// read issued while the device is busy queues behind the in-flight request.
// This reproduces the paper's observation that drifting scans "affect the
// leader itself negatively since its I/O requests get delayed more due to a
// busier disk".
//
// Pages carry real bytes. Tables allocate contiguous page extents, write
// encoded tuples into them, and later read them back through the buffer pool,
// so a "physical read" in an experiment is an actual copy of an actual page.
package disk

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PageID addresses a page on the device. The device's page space is linear;
// allocations (tables) own contiguous ranges of it.
type PageID int64

// InvalidPage is a sentinel PageID that no allocation ever contains.
const InvalidPage PageID = -1

// Model holds the device cost parameters.
//
// The defaults (DefaultModel) are loosely calibrated to the mid-2000s
// enterprise drives of the paper's testbeds: a few milliseconds per seek and
// a sustained transfer rate in the tens of MB/s. Absolute values do not
// matter for reproducing the paper's *shape*; the seek/transfer ratio does.
type Model struct {
	// SeekTime is charged for every non-sequential read.
	SeekTime time.Duration
	// TransferPerPage is charged for every page read, seek or not.
	TransferPerPage time.Duration
	// PageSize is the size of a page in bytes; it scales the "KB read"
	// series and the backing storage.
	PageSize int
}

// DefaultModel returns the cost model used by the experiment harness:
// 8 KiB pages, 4 ms seeks, 0.2 ms per-page transfer (≈ 40 MB/s sustained).
func DefaultModel() Model {
	return Model{
		SeekTime:        4 * time.Millisecond,
		TransferPerPage: 200 * time.Microsecond,
		PageSize:        8 * 1024,
	}
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if m.SeekTime < 0 {
		return fmt.Errorf("disk: negative SeekTime %v", m.SeekTime)
	}
	if m.TransferPerPage <= 0 {
		return fmt.Errorf("disk: non-positive TransferPerPage %v", m.TransferPerPage)
	}
	if m.PageSize <= 0 {
		return fmt.Errorf("disk: non-positive PageSize %d", m.PageSize)
	}
	return nil
}

// Stats is a snapshot of the device counters.
type Stats struct {
	Reads     int64         // pages physically read
	Seeks     int64         // non-sequential reads
	BytesRead int64         // Reads * PageSize
	BusyTime  time.Duration // total time the device spent serving requests
	QueueWait time.Duration // total time requests waited for the device
}

// Sub returns s - o, counter by counter. It is used to compute per-interval
// deltas.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Reads:     s.Reads - o.Reads,
		Seeks:     s.Seeks - o.Seeks,
		BytesRead: s.BytesRead - o.BytesRead,
		BusyTime:  s.BusyTime - o.BusyTime,
		QueueWait: s.QueueWait - o.QueueWait,
	}
}

// Sample is one entry of the device's time-bucketed activity series,
// mirroring the per-interval bars of the paper's "reads over time" and
// "seeks over time" figures.
type Sample struct {
	Bucket    time.Duration // start of the interval
	Reads     int64
	Seeks     int64
	BytesRead int64
}

// Device is a simulated page-addressed disk. It is safe for concurrent use,
// although under the simulation kernel calls are naturally serialized.
type Device struct {
	mu    sync.Mutex
	model Model

	pages   [][]byte // backing store, indexed by PageID
	alloced PageID   // next unallocated page

	head   PageID        // page after the last one read (InvalidPage+...)
	freeAt time.Duration // virtual time at which the device becomes idle

	stats Stats

	bucketWidth time.Duration
	buckets     map[time.Duration]*Sample
}

// New creates a device with the given cost model. bucketWidth sets the
// granularity of the activity series; zero disables series collection.
func New(model Model, bucketWidth time.Duration) (*Device, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if bucketWidth < 0 {
		return nil, fmt.Errorf("disk: negative bucket width %v", bucketWidth)
	}
	d := &Device{model: model, head: InvalidPage, bucketWidth: bucketWidth}
	if bucketWidth > 0 {
		d.buckets = make(map[time.Duration]*Sample)
	}
	return d, nil
}

// MustNew is New for known-good parameters; it panics on error.
func MustNew(model Model, bucketWidth time.Duration) *Device {
	d, err := New(model, bucketWidth)
	if err != nil {
		panic(err)
	}
	return d
}

// Model returns the device's cost model.
func (d *Device) Model() Model { return d.model }

// Allocate reserves n contiguous pages and returns the first PageID. The
// pages are zero-filled lazily on first write.
func (d *Device) Allocate(n int) (PageID, error) {
	if n <= 0 {
		return InvalidPage, fmt.Errorf("disk: allocate %d pages", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.alloced
	d.alloced += PageID(n)
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, nil)
	}
	return first, nil
}

// AllocatedPages returns the total number of allocated pages.
func (d *Device) AllocatedPages() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(d.alloced)
}

// Write stores data as the content of page p. The copy is taken immediately;
// writes are not part of the cost model (the workload is read-only after
// load, as in the paper's TPC-H runs).
func (d *Device) Write(p PageID, data []byte) error {
	if len(data) > d.model.PageSize {
		return fmt.Errorf("disk: page %d write of %d bytes exceeds page size %d", p, len(data), d.model.PageSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if p < 0 || p >= d.alloced {
		return fmt.Errorf("disk: write to unallocated page %d", p)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.pages[p] = buf
	return nil
}

// Read performs a physical read of page p issued at virtual time now.
// It returns the page contents and the latency the issuing process must
// charge itself (queueing delay + seek, if any + transfer).
//
// The returned slice is the device's own copy; callers must not modify it.
func (d *Device) Read(now time.Duration, p PageID) ([]byte, time.Duration, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p < 0 || p >= d.alloced {
		return nil, 0, fmt.Errorf("disk: read of unallocated page %d", p)
	}

	start := now
	if d.freeAt > start {
		start = d.freeAt // queue behind the in-flight request
	}
	queueWait := start - now

	service := d.model.TransferPerPage
	seek := p != d.head
	if seek {
		service += d.model.SeekTime
		d.stats.Seeks++
	}
	d.head = p + 1
	d.freeAt = start + service

	d.stats.Reads++
	d.stats.BytesRead += int64(d.model.PageSize)
	d.stats.BusyTime += service
	d.stats.QueueWait += queueWait
	d.record(now, seek)

	data := d.pages[p]
	if data == nil {
		data = []byte{}
	}
	return data, queueWait + service, nil
}

// ReadRaw returns the contents of page p without engaging the cost model:
// no latency is computed and the head position, busy window, counters, and
// activity series stay untouched. The realtime execution mode reads through
// it — its reads happen in wall-clock time, and letting them advance the
// device's virtual-time state (head, freeAt) would corrupt any virtual-time
// Run that follows on the same engine.
//
// The returned slice is the device's own copy; callers must not modify it.
func (d *Device) ReadRaw(p PageID) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p < 0 || p >= d.alloced {
		return nil, fmt.Errorf("disk: read of unallocated page %d", p)
	}
	data := d.pages[p]
	if data == nil {
		data = []byte{}
	}
	return data, nil
}

func (d *Device) record(now time.Duration, seek bool) {
	if d.buckets == nil {
		return
	}
	b := now - now%d.bucketWidth
	s := d.buckets[b]
	if s == nil {
		s = &Sample{Bucket: b}
		d.buckets[b] = s
	}
	s.Reads++
	s.BytesRead += int64(d.model.PageSize)
	if seek {
		s.Seeks++
	}
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Series returns the activity series ordered by bucket start time. Buckets
// with no activity are omitted.
func (d *Device) Series() []Sample {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Sample, 0, len(d.buckets))
	for _, s := range d.buckets {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Bucket < out[j].Bucket })
	return out
}

// ResetStats clears the counters and the activity series but keeps the data
// and the head position.
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	if d.buckets != nil {
		d.buckets = make(map[time.Duration]*Sample)
	}
}
