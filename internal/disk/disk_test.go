package disk

import (
	"testing"
	"testing/quick"
	"time"
)

func testModel() Model {
	return Model{SeekTime: 4 * time.Millisecond, TransferPerPage: 200 * time.Microsecond, PageSize: 8192}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		ok   bool
	}{
		{"default", DefaultModel(), true},
		{"negative seek", Model{SeekTime: -1, TransferPerPage: 1, PageSize: 1}, false},
		{"zero transfer", Model{SeekTime: 1, TransferPerPage: 0, PageSize: 1}, false},
		{"zero page size", Model{SeekTime: 1, TransferPerPage: 1, PageSize: 0}, false},
		{"zero seek ok", Model{SeekTime: 0, TransferPerPage: 1, PageSize: 1}, true},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestAllocateIsContiguous(t *testing.T) {
	d := MustNew(testModel(), 0)
	a, err := d.Allocate(10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Allocate(5)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 10 {
		t.Errorf("allocations at %d and %d, want 0 and 10", a, b)
	}
	if d.AllocatedPages() != 15 {
		t.Errorf("AllocatedPages = %d, want 15", d.AllocatedPages())
	}
}

func TestAllocateRejectsNonPositive(t *testing.T) {
	d := MustNew(testModel(), 0)
	if _, err := d.Allocate(0); err == nil {
		t.Error("Allocate(0) succeeded")
	}
	if _, err := d.Allocate(-3); err == nil {
		t.Error("Allocate(-3) succeeded")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := MustNew(testModel(), 0)
	p, _ := d.Allocate(1)
	want := []byte("hello page")
	if err := d.Write(p, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("read %q, want %q", got, want)
	}
}

func TestWriteBoundsChecked(t *testing.T) {
	d := MustNew(testModel(), 0)
	if err := d.Write(0, []byte("x")); err == nil {
		t.Error("write to unallocated page succeeded")
	}
	p, _ := d.Allocate(1)
	if err := d.Write(p, make([]byte, 9000)); err == nil {
		t.Error("oversized write succeeded")
	}
}

func TestReadBoundsChecked(t *testing.T) {
	d := MustNew(testModel(), 0)
	if _, _, err := d.Read(0, 0); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if _, _, err := d.Read(0, -1); err == nil {
		t.Error("read of negative page succeeded")
	}
}

func TestSequentialReadsSkipSeek(t *testing.T) {
	m := testModel()
	d := MustNew(m, 0)
	first, _ := d.Allocate(5)
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		_, lat, err := d.Read(now, first+PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		want := m.TransferPerPage
		if i == 0 {
			want += m.SeekTime // first read always seeks
		}
		if lat != want {
			t.Errorf("read %d: latency %v, want %v", i, lat, want)
		}
		now += lat
	}
	s := d.Stats()
	if s.Reads != 5 || s.Seeks != 1 {
		t.Errorf("stats = %+v, want 5 reads / 1 seek", s)
	}
}

func TestRandomReadsSeekEveryTime(t *testing.T) {
	m := testModel()
	d := MustNew(m, 0)
	first, _ := d.Allocate(100)
	now := time.Duration(0)
	for _, off := range []PageID{50, 3, 80, 4, 99} {
		_, lat, _ := d.Read(now, first+off)
		now += lat
	}
	if s := d.Stats(); s.Seeks != 5 {
		t.Errorf("Seeks = %d, want 5", s.Seeks)
	}
}

func TestInterleavedScansCauseSeeks(t *testing.T) {
	// Two scans ping-ponging over disjoint regions seek on every read;
	// this is exactly the pathology that scan sharing removes.
	d := MustNew(testModel(), 0)
	a, _ := d.Allocate(10)
	b, _ := d.Allocate(10)
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		_, lat, _ := d.Read(now, a+PageID(i))
		now += lat
		_, lat, _ = d.Read(now, b+PageID(i))
		now += lat
	}
	if s := d.Stats(); s.Seeks != 20 {
		t.Errorf("Seeks = %d, want 20 (every read seeks)", s.Seeks)
	}
}

func TestQueueingDelaysOverlappingRequests(t *testing.T) {
	m := testModel()
	d := MustNew(m, 0)
	p, _ := d.Allocate(2)
	_, lat0, _ := d.Read(0, p)
	// Issue a second request while the first is still in flight.
	_, lat1, _ := d.Read(lat0/2, p+1)
	wantQueue := lat0 - lat0/2
	if lat1 != wantQueue+m.TransferPerPage {
		t.Errorf("queued read latency %v, want %v", lat1, wantQueue+m.TransferPerPage)
	}
	if s := d.Stats(); s.QueueWait != wantQueue {
		t.Errorf("QueueWait = %v, want %v", s.QueueWait, wantQueue)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Seeks: 4, BytesRead: 100, BusyTime: time.Second, QueueWait: time.Millisecond}
	b := Stats{Reads: 3, Seeks: 1, BytesRead: 30, BusyTime: time.Millisecond, QueueWait: 0}
	got := a.Sub(b)
	if got.Reads != 7 || got.Seeks != 3 || got.BytesRead != 70 {
		t.Errorf("Sub = %+v", got)
	}
}

func TestSeriesBucketsActivity(t *testing.T) {
	d := MustNew(testModel(), 10*time.Millisecond)
	p, _ := d.Allocate(4)
	d.Read(0, p)
	d.Read(1*time.Millisecond, p+1)
	d.Read(25*time.Millisecond, p+2)
	series := d.Series()
	if len(series) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(series), series)
	}
	if series[0].Bucket != 0 || series[0].Reads != 2 {
		t.Errorf("bucket 0 = %+v, want 2 reads at t=0", series[0])
	}
	if series[1].Bucket != 20*time.Millisecond || series[1].Reads != 1 {
		t.Errorf("bucket 1 = %+v, want 1 read at t=20ms", series[1])
	}
}

func TestSeriesDisabled(t *testing.T) {
	d := MustNew(testModel(), 0)
	p, _ := d.Allocate(1)
	d.Read(0, p)
	if s := d.Series(); len(s) != 0 {
		t.Errorf("series collected despite zero bucket width: %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	d := MustNew(testModel(), time.Millisecond)
	p, _ := d.Allocate(1)
	d.Read(0, p)
	d.ResetStats()
	if s := d.Stats(); s.Reads != 0 || s.Seeks != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	if len(d.Series()) != 0 {
		t.Error("series not cleared by reset")
	}
}

func TestReadLatencyAndStatsProperties(t *testing.T) {
	// Property: for any read sequence, latency is at least the transfer
	// time, seek accounting matches a reference model of head movement,
	// and the byte counter is exactly reads * page size.
	f := func(offsets []uint8) bool {
		d := MustNew(testModel(), 0)
		first, _ := d.Allocate(256)
		now := time.Duration(0)
		var reads, wantSeeks int64
		head := InvalidPage
		for _, off := range offsets {
			p := first + PageID(off)
			_, lat, err := d.Read(now, p)
			if err != nil || lat < d.Model().TransferPerPage {
				return false
			}
			reads++
			if p != head {
				wantSeeks++
			}
			head = p + 1
			now += lat
		}
		s := d.Stats()
		return s.Reads == reads &&
			s.Seeks == wantSeeks &&
			s.BytesRead == reads*int64(d.Model().PageSize)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
