package experiments

import (
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// PolicyResult compares the two placement policies — the shipped heuristic
// and the sharing-potential estimator — on the throughput workload (A6).
type PolicyResult struct {
	BaseMakespan      time.Duration
	HeuristicMakespan time.Duration
	EstimateMakespan  time.Duration
	HeuristicReads    int64
	EstimateReads     int64
	BaseReads         int64

	HeuristicGain float64 // end-to-end gain of the heuristic over base
	EstimateGain  float64 // end-to-end gain of the estimator over base
}

// PlacementPolicies (A6) runs the multi-stream throughput workload under
// both placement policies and against the baseline.
func PlacementPolicies(p Params) (*PolicyResult, error) {
	run := func(mode scanshare.Mode, sharing scanshare.SharingConfig) (*scanshare.Report, error) {
		eng, db, err := buildEngine(p, sharing)
		if err != nil {
			return nil, err
		}
		return eng.RunStreams(mode, workload.ThroughputStreams(db, p.Streams))
	}
	base, err := run(scanshare.Baseline, scanshare.SharingConfig{})
	if err != nil {
		return nil, err
	}
	heur, err := run(scanshare.Shared, scanshare.SharingConfig{})
	if err != nil {
		return nil, err
	}
	est, err := run(scanshare.Shared, scanshare.SharingConfig{EstimatePlacement: true})
	if err != nil {
		return nil, err
	}
	return &PolicyResult{
		BaseMakespan:      base.Makespan,
		HeuristicMakespan: heur.Makespan,
		EstimateMakespan:  est.Makespan,
		BaseReads:         base.Disk.Reads,
		HeuristicReads:    heur.Disk.Reads,
		EstimateReads:     est.Disk.Reads,
		HeuristicGain:     metrics.GainDur(base.Makespan, heur.Makespan),
		EstimateGain:      metrics.GainDur(base.Makespan, est.Makespan),
	}, nil
}

// Render prints the three-way comparison.
func (r *PolicyResult) Render() string {
	var b strings.Builder
	b.WriteString("A6 — placement policies: heuristic vs sharing-potential estimator\n")
	tbl := metrics.NewTable("engine", "end-to-end", "disk reads", "gain vs base")
	tbl.AddRow("baseline", metrics.FormatDuration(r.BaseMakespan), fmt.Sprint(r.BaseReads), "-")
	tbl.AddRow("shared (heuristic)", metrics.FormatDuration(r.HeuristicMakespan),
		fmt.Sprint(r.HeuristicReads), metrics.Pct(r.HeuristicGain))
	tbl.AddRow("shared (estimator)", metrics.FormatDuration(r.EstimateMakespan),
		fmt.Sprint(r.EstimateReads), metrics.Pct(r.EstimateGain))
	b.WriteString(tbl.Render())
	b.WriteString("both policies must beat the baseline; the estimator trades O(|S|^2)\n")
	b.WriteString("placement cost for slightly better-informed start locations\n")
	return b.String()
}
