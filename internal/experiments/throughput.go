package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// Throughput holds one base/shared pair of multi-stream TPC-H-style
// throughput runs. It backs the T1 table and the F17–F20 figures.
type Throughput struct {
	P      Params
	Base   *scanshare.Report
	Shared *scanshare.Report
}

// RunThroughput executes the throughput workload in both modes on fresh,
// identically configured engines.
func RunThroughput(p Params) (*Throughput, error) {
	run := func(mode scanshare.Mode) (*scanshare.Report, error) {
		eng, db, err := buildEngine(p, scanshare.SharingConfig{})
		if err != nil {
			return nil, err
		}
		return eng.RunStreams(mode, workload.ThroughputStreams(db, p.Streams))
	}
	base, err := run(scanshare.Baseline)
	if err != nil {
		return nil, err
	}
	shared, err := run(scanshare.Shared)
	if err != nil {
		return nil, err
	}
	return &Throughput{P: p, Base: base, Shared: shared}, nil
}

// Table1Result is the analog of the paper's Table 1: overall gains of the
// sharing prototype over the vanilla engine on the throughput run.
type Table1Result struct {
	BaseMakespan, SharedMakespan time.Duration
	BaseReads, SharedReads       int64
	BaseSeeks, SharedSeeks       int64

	EndToEndGain float64
	ReadGain     float64
	SeekGain     float64
}

// Table1 computes the headline gains.
func (t *Throughput) Table1() *Table1Result {
	return &Table1Result{
		BaseMakespan:   t.Base.Makespan,
		SharedMakespan: t.Shared.Makespan,
		BaseReads:      t.Base.Disk.Reads,
		SharedReads:    t.Shared.Disk.Reads,
		BaseSeeks:      t.Base.Disk.Seeks,
		SharedSeeks:    t.Shared.Disk.Seeks,
		EndToEndGain:   metrics.GainDur(t.Base.Makespan, t.Shared.Makespan),
		ReadGain:       metrics.GainInt(t.Base.Disk.Reads, t.Shared.Disk.Reads),
		SeekGain:       metrics.GainInt(t.Base.Disk.Seeks, t.Shared.Disk.Seeks),
	}
}

// Render prints the Table 1 analog.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("T1 — throughput run (Table 1 analog)\n")
	tbl := metrics.NewTable("metric", "base", "shared", "gain")
	tbl.AddRow("end-to-end time",
		metrics.FormatDuration(r.BaseMakespan), metrics.FormatDuration(r.SharedMakespan),
		metrics.Pct(r.EndToEndGain))
	tbl.AddRow("disk reads (pages)",
		fmt.Sprint(r.BaseReads), fmt.Sprint(r.SharedReads), metrics.Pct(r.ReadGain))
	tbl.AddRow("disk seeks",
		fmt.Sprint(r.BaseSeeks), fmt.Sprint(r.SharedSeeks), metrics.Pct(r.SeekGain))
	b.WriteString(tbl.Render())
	b.WriteString("paper: end-to-end +21%, disk reads +33%, disk seeks +34%\n")
	return b.String()
}

// SeriesResult is a base-vs-shared activity-over-time figure (F17 or F18).
type SeriesResult struct {
	ID, Title string
	// Buckets is the common time axis (bucket start offsets).
	Buckets []time.Duration
	// BaseValues and SharedValues are the per-bucket activity (bytes for
	// F17, seeks for F18); a run that already ended contributes zeros.
	BaseValues, SharedValues []float64
	// Unit names the measured quantity.
	Unit string
}

// seriesOf aligns both runs' samples on a common bucket axis.
func (t *Throughput) seriesOf(id, title, unit string, pick func(scanshare.DiskSample) float64) *SeriesResult {
	width := t.P.BucketWidth
	if width <= 0 {
		width = 500 * time.Millisecond
	}
	end := t.Base.Makespan
	if t.Shared.Makespan > end {
		end = t.Shared.Makespan
	}
	n := int(end/width) + 1
	res := &SeriesResult{
		ID: id, Title: title, Unit: unit,
		Buckets:      make([]time.Duration, n),
		BaseValues:   make([]float64, n),
		SharedValues: make([]float64, n),
	}
	for i := range res.Buckets {
		res.Buckets[i] = time.Duration(i) * width
	}
	fill := func(series []scanshare.DiskSample, into []float64) {
		for _, s := range series {
			idx := int(s.Offset / width)
			if idx >= 0 && idx < n {
				into[idx] += pick(s)
			}
		}
	}
	fill(t.Base.DiskSeries, res.BaseValues)
	fill(t.Shared.DiskSeries, res.SharedValues)
	return res
}

// Figure17 is the "amount of data read from disk over time" figure.
func (t *Throughput) Figure17() *SeriesResult {
	return t.seriesOf("F17", "disk KB read over time", "KB",
		func(s scanshare.DiskSample) float64 { return float64(s.Bytes) / 1024 })
}

// Figure18 is the "disk seeks over time" figure.
func (t *Throughput) Figure18() *SeriesResult {
	return t.seriesOf("F18", "disk seeks over time", "seeks",
		func(s scanshare.DiskSample) float64 { return float64(s.Seeks) })
}

// Totals returns the summed base and shared series values.
func (r *SeriesResult) Totals() (base, shared float64) {
	for i := range r.BaseValues {
		base += r.BaseValues[i]
		shared += r.SharedValues[i]
	}
	return
}

// EndsSooner reports whether the shared run's activity stops in an earlier
// bucket than the base run's.
func (r *SeriesResult) EndsSooner() bool {
	last := func(vals []float64) int {
		end := -1
		for i, v := range vals {
			if v > 0 {
				end = i
			}
		}
		return end
	}
	return last(r.SharedValues) < last(r.BaseValues)
}

// Render prints both series as labelled bar charts.
func (r *SeriesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	labels := make([]string, len(r.Buckets))
	for i, off := range r.Buckets {
		labels[i] = metrics.FormatDuration(off)
	}
	base, shared := r.Totals()
	fmt.Fprintf(&b, "base (total %.0f %s):\n%s", base, r.Unit, metrics.Bars(labels, r.BaseValues, 50))
	fmt.Fprintf(&b, "shared (total %.0f %s):\n%s", shared, r.Unit, metrics.Bars(labels, r.SharedValues, 50))
	fmt.Fprintf(&b, "paper: shared activity below base in most intervals, run ends sooner (here: %v)\n", r.EndsSooner())
	return b.String()
}

// StreamGain is one stream's end-to-end comparison.
type StreamGain struct {
	Stream       int
	Base, Shared time.Duration
	Gain         float64
}

// Figure19Result is the per-stream gains figure.
type Figure19Result struct {
	Streams []StreamGain
}

// Figure19 computes per-stream end-to-end gains.
func (t *Throughput) Figure19() *Figure19Result {
	base := t.Base.PerStream()
	shared := t.Shared.PerStream()
	ids := make([]int, 0, len(base))
	for s := range base {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	res := &Figure19Result{}
	for _, s := range ids {
		res.Streams = append(res.Streams, StreamGain{
			Stream: s,
			Base:   base[s],
			Shared: shared[s],
			Gain:   metrics.GainDur(base[s], shared[s]),
		})
	}
	return res
}

// MinGain returns the smallest per-stream gain.
func (r *Figure19Result) MinGain() float64 {
	min := 1.0
	for _, s := range r.Streams {
		if s.Gain < min {
			min = s.Gain
		}
	}
	return min
}

// Render prints the per-stream table.
func (r *Figure19Result) Render() string {
	var b strings.Builder
	b.WriteString("F19 — per-stream end-to-end gains\n")
	tbl := metrics.NewTable("stream", "base", "shared", "gain")
	for _, s := range r.Streams {
		tbl.AddRow(fmt.Sprint(s.Stream+1),
			metrics.FormatDuration(s.Base), metrics.FormatDuration(s.Shared), metrics.Pct(s.Gain))
	}
	b.WriteString(tbl.Render())
	b.WriteString("paper: each stream gains similarly from the improved bufferpool sharing\n")
	return b.String()
}

// QueryGain is one query template's mean execution comparison.
type QueryGain struct {
	Name         string
	Base, Shared time.Duration
	Gain         float64
}

// Figure20Result is the per-query gains figure.
type Figure20Result struct {
	Queries []QueryGain
}

// Figure20 computes per-query mean execution times in both modes.
func (t *Throughput) Figure20() *Figure20Result {
	base := t.Base.PerQuery()
	shared := t.Shared.PerQuery()
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	// Sort q1..q22 numerically.
	sort.Slice(names, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(names[i], "q%d", &a)
		fmt.Sscanf(names[j], "q%d", &b)
		if a != b {
			return a < b
		}
		return names[i] < names[j]
	})
	res := &Figure20Result{}
	for _, name := range names {
		res.Queries = append(res.Queries, QueryGain{
			Name:   name,
			Base:   base[name],
			Shared: shared[name],
			Gain:   metrics.GainDur(base[name], shared[name]),
		})
	}
	return res
}

// WorstGain returns the most negative per-query gain (the largest
// regression; positive if nothing regressed).
func (r *Figure20Result) WorstGain() float64 {
	worst := 1.0
	for _, q := range r.Queries {
		if q.Gain < worst {
			worst = q.Gain
		}
	}
	return worst
}

// Render prints the per-query table.
func (r *Figure20Result) Render() string {
	var b strings.Builder
	b.WriteString("F20 — per-query mean execution times (5-stream run)\n")
	tbl := metrics.NewTable("query", "base", "shared", "gain")
	for _, q := range r.Queries {
		tbl.AddRow(q.Name,
			metrics.FormatDuration(q.Base), metrics.FormatDuration(q.Shared), metrics.Pct(q.Gain))
	}
	b.WriteString(tbl.Render())
	b.WriteString("paper: gains vary with the queries' scans, no query shows a (substantial) negative effect\n")
	return b.String()
}
