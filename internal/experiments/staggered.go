package experiments

import (
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// Breakdown is the per-run time decomposition, the analog of the paper's
// iostat user/system/idle/wait chart.
type Breakdown struct {
	CPU, IO, Busy, Throttle time.Duration
}

// Total returns the summed decomposition.
func (b Breakdown) Total() time.Duration { return b.CPU + b.IO + b.Busy + b.Throttle }

// WaitShare returns the fraction of time spent waiting (I/O + busy).
func (b Breakdown) WaitShare() float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.IO+b.Busy) / float64(total)
}

func breakdownOf(rep *scanshare.Report) Breakdown {
	cpu, io, busy, throttle := rep.TotalAcct()
	return Breakdown{CPU: cpu, IO: io, Busy: busy, Throttle: throttle}
}

// StaggeredResult reports a staggered-start experiment (F15 or F16): n
// copies of one query started a fixed interval apart, in both modes.
type StaggeredResult struct {
	ID, Title string
	Stagger   time.Duration

	BaseBreakdown, SharedBreakdown Breakdown
	// BaseRuns and SharedRuns are the per-copy elapsed times in start
	// order (first, second, third...).
	BaseRuns, SharedRuns []time.Duration
	// Gains are the per-copy end-to-end gains.
	Gains []float64
}

// Figure15 staggers three copies of the I/O-bound Q6 analog (a full
// lineitem scan with a selective predicate at low CPU weight).
func Figure15(p Params) (*StaggeredResult, error) {
	return runStaggered(p, "F15", "3 staggered I/O-intensive queries (Q6 analog)",
		func(db *workload.DB) *scanshare.Query {
			return scanshare.NewQuery(db.Lineitem).Named("q6-full").Weight(0.5).
				Where(func(t scanshare.Tuple) bool {
					return t[8].I >= workload.HotStartDay && t[4].F >= 0.05 && t[4].F <= 0.07 && t[2].F < 24
				}).Sum("l_extendedprice")
		})
}

// Figure16 staggers three copies of the CPU-bound Q1 analog.
func Figure16(p Params) (*StaggeredResult, error) {
	return runStaggered(p, "F16", "3 staggered CPU-intensive queries (Q1 analog)",
		func(db *workload.DB) *scanshare.Query { return workload.Q1(db) })
}

// runStaggered calibrates the stagger interval against one cold execution of
// the query, then runs three staggered copies in each mode.
func runStaggered(p Params, id, title string, mk func(*workload.DB) *scanshare.Query) (*StaggeredResult, error) {
	const copies = 3

	// Calibration: one cold run to size the stagger interval, mirroring
	// the paper's fixed 10s against multi-minute queries.
	eng, db, err := buildEngine(p, scanshare.SharingConfig{})
	if err != nil {
		return nil, err
	}
	rep, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: mk(db)}})
	if err != nil {
		return nil, err
	}
	stagger := time.Duration(p.StaggerFrac * float64(rep.Results[0].Elapsed()))

	run := func(mode scanshare.Mode) (*scanshare.Report, error) {
		eng, db, err := buildEngine(p, scanshare.SharingConfig{})
		if err != nil {
			return nil, err
		}
		return eng.Run(mode, workload.StaggeredJobs(mk(db), copies, stagger))
	}
	base, err := run(scanshare.Baseline)
	if err != nil {
		return nil, err
	}
	shared, err := run(scanshare.Shared)
	if err != nil {
		return nil, err
	}

	res := &StaggeredResult{
		ID: id, Title: title, Stagger: stagger,
		BaseBreakdown:   breakdownOf(base),
		SharedBreakdown: breakdownOf(shared),
	}
	for i := 0; i < copies; i++ {
		b := base.Results[i].Elapsed()
		s := shared.Results[i].Elapsed()
		res.BaseRuns = append(res.BaseRuns, b)
		res.SharedRuns = append(res.SharedRuns, s)
		res.Gains = append(res.Gains, metrics.GainDur(b, s))
	}
	return res, nil
}

// MinGain returns the smallest per-copy gain.
func (r *StaggeredResult) MinGain() float64 {
	min := 1.0
	for _, g := range r.Gains {
		if g < min {
			min = g
		}
	}
	return min
}

// Render prints the decomposition chart and the per-run timings.
func (r *StaggeredResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (stagger %s)\n", r.ID, r.Title, metrics.FormatDuration(r.Stagger))

	tbl := metrics.NewTable("component", "base", "shared")
	row := func(name string, base, shared time.Duration) {
		tbl.AddRow(name, metrics.FormatDuration(base), metrics.FormatDuration(shared))
	}
	row("cpu (user)", r.BaseBreakdown.CPU, r.SharedBreakdown.CPU)
	row("i/o wait", r.BaseBreakdown.IO, r.SharedBreakdown.IO)
	row("busy wait", r.BaseBreakdown.Busy, r.SharedBreakdown.Busy)
	row("throttle", r.BaseBreakdown.Throttle, r.SharedBreakdown.Throttle)
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "wait share: base %s, shared %s\n",
		metrics.Pct(r.BaseBreakdown.WaitShare()), metrics.Pct(r.SharedBreakdown.WaitShare()))

	runs := metrics.NewTable("run", "base", "shared", "gain")
	for i := range r.BaseRuns {
		runs.AddRow(fmt.Sprintf("%d%s", i+1, ordinal(i+1)),
			metrics.FormatDuration(r.BaseRuns[i]),
			metrics.FormatDuration(r.SharedRuns[i]),
			metrics.Pct(r.Gains[i]))
	}
	b.WriteString(runs.Render())
	return b.String()
}

func ordinal(n int) string {
	switch n {
	case 1:
		return "st"
	case 2:
		return "nd"
	case 3:
		return "rd"
	default:
		return "th"
	}
}
