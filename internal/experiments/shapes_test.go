package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// sharedThroughput caches one throughput pair at test scale; several shape
// tests read different views of the same pair.
var (
	tpOnce sync.Once
	tpVal  *Throughput
	tpErr  error
)

func testThroughput(t *testing.T) *Throughput {
	t.Helper()
	tpOnce.Do(func() { tpVal, tpErr = RunThroughput(TestParams()) })
	if tpErr != nil {
		t.Fatal(tpErr)
	}
	return tpVal
}

func TestParamsValidation(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Error(err)
	}
	if err := TestParams().Validate(); err != nil {
		t.Error(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Scale = 0 },
		func(p *Params) { p.Streams = 0 },
		func(p *Params) { p.BufferFrac = 0 },
		func(p *Params) { p.BufferFrac = 3 },
		func(p *Params) { p.StaggerFrac = -1 },
		func(p *Params) { p.ExtentPages = -1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, want := range []string{"T1", "F15", "F16", "F17", "F18", "F19", "F20", "OV", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"} {
		spec, err := Lookup(want)
		if err != nil || spec.ID != want {
			t.Errorf("Lookup(%s) = %+v, %v", want, spec, err)
		}
	}
	if _, err := Lookup("Z9"); err == nil {
		t.Error("unknown experiment found")
	}
	if len(All()) != 16 {
		t.Errorf("All() has %d experiments, want 16", len(All()))
	}
}

// A6: both placement policies must beat the baseline; neither should be
// drastically worse than the other.
func TestShapePlacementPolicies(t *testing.T) {
	r, err := PlacementPolicies(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.HeuristicGain < 0.1 {
		t.Errorf("heuristic gain %.1f%%, want > 10%%", r.HeuristicGain*100)
	}
	if r.EstimateGain < 0.1 {
		t.Errorf("estimator gain %.1f%%, want > 10%%", r.EstimateGain*100)
	}
	if r.EstimateReads >= r.BaseReads {
		t.Error("estimator policy did not reduce reads over baseline")
	}
}

// A8: three policy variants over identical seeded streams. Wall-clock and
// miss counts are timing-dependent in realtime mode, so assert structure
// only: every variant processes the same logical pages, and hit ratios are
// sane.
func TestShapePredictivePolicyAB(t *testing.T) {
	r, err := PredictivePolicyAB(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(r.Runs))
	}
	wantPages := int64(r.Scans * r.Pages)
	for _, run := range r.Runs {
		if run.PagesRead != wantPages {
			t.Errorf("%s: read %d logical pages, want %d", run.Label, run.PagesRead, wantPages)
		}
		if run.HitRatio <= 0 || run.HitRatio > 1 {
			t.Errorf("%s: hit ratio %.3f out of range", run.Label, run.HitRatio)
		}
	}
	if r.Runs[0].Policy != "priority-lru" || r.Runs[1].Policy != "predictive" {
		t.Errorf("unexpected policy order: %+v", r.Runs)
	}
}

// T1: the headline table. Paper: end-to-end +21%, reads +33%, seeks +34%.
// At test scale we assert the direction and a conservative magnitude.
func TestShapeTable1(t *testing.T) {
	r := testThroughput(t).Table1()
	if r.EndToEndGain < 0.15 {
		t.Errorf("end-to-end gain %.1f%%, want >= 15%%", r.EndToEndGain*100)
	}
	if r.ReadGain < 0.15 {
		t.Errorf("disk read gain %.1f%%, want >= 15%%", r.ReadGain*100)
	}
	if r.SeekGain < 0.15 {
		t.Errorf("disk seek gain %.1f%%, want >= 15%%", r.SeekGain*100)
	}
	if r.SharedMakespan >= r.BaseMakespan {
		t.Error("shared run not faster than base")
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Error("render missing table reference")
	}
}

// F15: staggered I/O-bound queries. Paper: each run gains > 50%, I/O wait
// share roughly halves.
func TestShapeFigure15(t *testing.T) {
	r, err := Figure15(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.MinGain() < 0.5 {
		t.Errorf("min per-run gain %.1f%%, want > 50%%", r.MinGain()*100)
	}
	if r.SharedBreakdown.WaitShare() >= r.BaseBreakdown.WaitShare() {
		t.Errorf("wait share did not drop: base %.2f shared %.2f",
			r.BaseBreakdown.WaitShare(), r.SharedBreakdown.WaitShare())
	}
	if r.BaseBreakdown.CPU != r.SharedBreakdown.CPU {
		t.Errorf("CPU work differs between modes: %v vs %v",
			r.BaseBreakdown.CPU, r.SharedBreakdown.CPU)
	}
	if r.Stagger <= 0 {
		t.Error("stagger not calibrated")
	}
}

// F16: staggered CPU-bound queries. Paper: wait share is small but sharing
// still improves every run noticeably.
func TestShapeFigure16(t *testing.T) {
	r, err := Figure16(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.MinGain() < 0.2 {
		t.Errorf("min per-run gain %.1f%%, want > 20%%", r.MinGain()*100)
	}
	if r.SharedBreakdown.WaitShare() >= r.BaseBreakdown.WaitShare() {
		t.Error("wait share did not drop")
	}
	// CPU-bound: in the shared run CPU dominates the wait components.
	if r.SharedBreakdown.CPU < r.SharedBreakdown.IO {
		t.Errorf("Q1 analog not CPU-bound when shared: cpu=%v io=%v",
			r.SharedBreakdown.CPU, r.SharedBreakdown.IO)
	}
}

// F17/F18: activity over time. Paper: shared activity is lower overall and
// the run ends sooner.
func TestShapeFigures17And18(t *testing.T) {
	tp := testThroughput(t)
	for _, r := range []*SeriesResult{tp.Figure17(), tp.Figure18()} {
		base, shared := r.Totals()
		if shared >= base {
			t.Errorf("%s: shared total %.0f >= base %.0f", r.ID, shared, base)
		}
		if !r.EndsSooner() {
			t.Errorf("%s: shared run does not end sooner", r.ID)
		}
		if len(r.Buckets) != len(r.BaseValues) || len(r.Buckets) != len(r.SharedValues) {
			t.Errorf("%s: misaligned series", r.ID)
		}
		if !strings.Contains(r.Render(), "#") {
			t.Errorf("%s: render has no bars", r.ID)
		}
	}
}

// F19: per-stream gains. Paper: every stream gains, roughly evenly.
func TestShapeFigure19(t *testing.T) {
	r := testThroughput(t).Figure19()
	if len(r.Streams) != TestParams().Streams {
		t.Fatalf("got %d streams", len(r.Streams))
	}
	if r.MinGain() < 0.1 {
		t.Errorf("min stream gain %.1f%%, want > 10%%", r.MinGain()*100)
	}
	min, max := 1.0, -1.0
	for _, s := range r.Streams {
		if s.Gain < min {
			min = s.Gain
		}
		if s.Gain > max {
			max = s.Gain
		}
	}
	if max-min > 0.15 {
		t.Errorf("stream gains uneven: spread %.1f%% (min %.1f%%, max %.1f%%)",
			(max-min)*100, min*100, max*100)
	}
}

// F20: per-query gains. Paper: no query shows a negative effect. At test
// scale the sub-1%-of-workload queries carry scheduling noise, so the
// assertion distinguishes substantial queries (which must all gain) from
// tiny ones (which may wobble a little).
func TestShapeFigure20(t *testing.T) {
	r := testThroughput(t).Figure20()
	if len(r.Queries) != 22 {
		t.Fatalf("got %d queries", len(r.Queries))
	}
	var sum float64
	for _, q := range r.Queries {
		sum += q.Gain
		if q.Base >= time.Second && q.Gain <= 0 {
			t.Errorf("substantial query %s regressed: %.1f%%", q.Name, q.Gain*100)
		}
	}
	if mean := sum / float64(len(r.Queries)); mean < 0.1 {
		t.Errorf("mean per-query gain %.1f%%, want > 10%%", mean*100)
	}
	if worst := r.WorstGain(); worst < -0.4 {
		t.Errorf("worst per-query regression %.1f%%, beyond noise allowance", worst*100)
	}
}

// OV: the sharing machinery must not slow down a lone stream.
func TestShapeOverhead(t *testing.T) {
	r, err := Overhead(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Overhead > 0.01 || r.Overhead < -0.05 {
		t.Errorf("single-stream overhead %.2f%%, want within (-5%%, 1%%)", r.Overhead*100)
	}
}

// A1: throttling must reduce disk reads on drift-prone scan pairs.
func TestShapeAblationThrottle(t *testing.T) {
	r, err := AblationNoThrottle(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadPenalty < 0.05 {
		t.Errorf("read penalty without throttling %.1f%%, want > 5%%", r.ReadPenalty*100)
	}
	if r.FullHitRatio <= r.AblatedHitRatio {
		t.Error("throttling did not improve the hit ratio")
	}
}

// A2: priority hints must reduce disk reads under churn.
func TestShapeAblationPriority(t *testing.T) {
	r, err := AblationNoPriority(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadPenalty < 0.01 {
		t.Errorf("read penalty without hints %.1f%%, want > 1%%", r.ReadPenalty*100)
	}
}

// A3: placement must matter on widely staggered scans.
func TestShapeAblationPlacement(t *testing.T) {
	r, err := AblationNoPlacement(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadPenalty < 0.1 {
		t.Errorf("read penalty without placement %.1f%%, want > 10%%", r.ReadPenalty*100)
	}
	if r.TimePenalty < 0.5 {
		t.Errorf("time penalty without placement %.1f%%, want > 50%%", r.TimePenalty*100)
	}
}

// A4: the buffer sweep must show the crossover — strong gains when the pool
// is a few percent of the database, converging to parity once everything
// fits.
func TestShapeBufferSweep(t *testing.T) {
	r, err := BufferSweep(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("sweep has %d points", len(r.Points))
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if first.ReadGain < 0.2 {
		t.Errorf("smallest-pool read gain %.1f%%, want > 20%%", first.ReadGain*100)
	}
	if last.ReadGain > 0.05 || last.ReadGain < -0.05 {
		t.Errorf("full-database read gain %.1f%%, want ~0 (crossover)", last.ReadGain*100)
	}
	if last.TimeGain > 0.1 || last.TimeGain < -0.1 {
		t.Errorf("full-database time gain %.1f%%, want ~0", last.TimeGain*100)
	}
	if first.ReadGain <= last.ReadGain {
		t.Error("gain does not shrink as the pool grows")
	}
}

// A5: tight thresholds must hold drifting groups together at least as well
// as loose ones.
func TestShapeThrottleSweep(t *testing.T) {
	r, err := ThrottleSweep(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 4 {
		t.Fatalf("sweep has %d points", len(r.Points))
	}
	tight, loose := r.Points[0], r.Points[len(r.Points)-1]
	if tight.ReadGain < loose.ReadGain {
		t.Errorf("tight threshold (%.1f%%) worse than loose (%.1f%%)",
			tight.ReadGain*100, loose.ReadGain*100)
	}
	if tight.ReadGain <= 0 {
		t.Errorf("tight threshold shows no gain: %.1f%%", tight.ReadGain*100)
	}
}

// A7: the sharing gain must widen with concurrency — more overlapping scans
// mean more reuse — and be near zero for a single stream.
func TestShapeStreamSweep(t *testing.T) {
	r, err := StreamSweep(TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	solo := r.GainAt(1)
	if solo > 0.02 || solo < -0.02 {
		t.Errorf("single-stream gain %.1f%%, want ~0", solo*100)
	}
	if r.GainAt(8) <= r.GainAt(2) {
		t.Errorf("gain does not widen with streams: 2->%.1f%%, 8->%.1f%%",
			r.GainAt(2)*100, r.GainAt(8)*100)
	}
	if r.GainAt(8) < 0.25 {
		t.Errorf("8-stream gain %.1f%%, want > 25%%", r.GainAt(8)*100)
	}
}

// Determinism: the same experiment renders identically across runs.
func TestExperimentsAreDeterministic(t *testing.T) {
	p := TestParams()
	p.Scale = 0.5
	run := func() string {
		tp, err := RunThroughput(p)
		if err != nil {
			t.Fatal(err)
		}
		return tp.Table1().Render() + tp.Figure19().Render()
	}
	first := run()
	if again := run(); again != first {
		t.Fatalf("non-deterministic experiment:\n%s\nvs\n%s", first, again)
	}
}

// Every experiment result must export plottable CSV, with a header row and
// at least one data row per file.
func TestAllResultsExportCSV(t *testing.T) {
	p := TestParams()
	p.Scale = 0.5
	seen := map[string]bool{}
	for _, spec := range []string{"T1", "F17", "F19", "F20", "OV", "A1", "A4", "A6", "A7", "F15"} {
		s, err := Lookup(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		exp, ok := res.(CSVExporter)
		if !ok {
			t.Errorf("%s result does not export CSV", spec)
			continue
		}
		for name, content := range exp.CSV() {
			if seen[name] {
				t.Errorf("duplicate CSV file name %q", name)
			}
			seen[name] = true
			lines := strings.Split(strings.TrimRight(content, "\n"), "\n")
			if len(lines) < 2 {
				t.Errorf("%s/%s has %d lines", spec, name, len(lines))
			}
			cols := strings.Count(lines[0], ",")
			for i, line := range lines {
				if strings.Count(line, ",") != cols {
					t.Errorf("%s/%s line %d has inconsistent columns", spec, name, i)
					break
				}
			}
		}
	}
}

// The headline gains must survive CPU contention: on a paper-like 4-core
// box the baseline CPU-bound phases slow down, but sharing still wins.
func TestShapeTable1WithBoundedCores(t *testing.T) {
	p := TestParams()
	p.Cores = 4
	tp, err := RunThroughput(p)
	if err != nil {
		t.Fatal(err)
	}
	r := tp.Table1()
	if r.EndToEndGain < 0.15 || r.ReadGain < 0.15 {
		t.Errorf("gains under 4 cores: time %.1f%%, reads %.1f%%",
			r.EndToEndGain*100, r.ReadGain*100)
	}
}
