package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
)

// PredictiveRun is one engine configuration's outcome in the A8 policy A/B:
// the same seeded scan streams executed under one replacement policy and
// coordination setting.
type PredictiveRun struct {
	Label     string
	Policy    string
	Wall      time.Duration
	HitRatio  float64 // hits / pages read, from the run's collector
	PagesRead int64
	Misses    int64
	Throttles int64
}

// PredictiveResult compares priority-LRU under grouping+throttling against
// predictive buffer management (A8) on identical seeded realtime streams.
type PredictiveResult struct {
	Scans     int
	Pages     int
	PoolPages int
	Runs      []PredictiveRun
}

// PredictivePolicyAB (A8) runs the same seeded realtime scan streams three
// ways: the paper's mechanism (priority-LRU pool steered by grouping,
// throttling, and priority hints), predictive buffer management with all
// coordination off (the follow-up paper's claim: position knowledge at the
// pool replaces scan cooperation), and predictive with coordination kept on.
// Each run builds a fresh engine with an identically seeded table and
// identical scan specs, so hit ratios and end-to-end times are directly
// comparable.
func PredictivePolicyAB(p Params) (*PredictiveResult, error) {
	rows := int(8000 * p.Scale)
	// The table lands at ~rows/320 heap pages; size the pool to a quarter
	// of that so every variant runs under real eviction pressure — with the
	// pool close to table size all policies trivially converge.
	poolPages := rows / 320 / 4
	if poolPages < 12 {
		poolPages = 12
	}

	type variant struct {
		label   string
		policy  string
		sharing scanshare.SharingConfig
	}
	base := scanshare.SharingConfig{PrefetchExtentPages: p.ExtentPages}
	uncoordinated := base
	uncoordinated.DisableThrottling = true
	uncoordinated.DisablePriorityHints = true
	uncoordinated.DisablePlacement = true
	variants := []variant{
		{"priority-lru + grouping/throttling", scanshare.PoolPolicyLRU, base},
		{"predictive, coordination off", scanshare.PoolPolicyPredictive, uncoordinated},
		{"predictive + grouping/throttling", scanshare.PoolPolicyPredictive, base},
	}

	res := &PredictiveResult{Scans: p.Streams, PoolPages: poolPages}
	for _, v := range variants {
		eng, err := scanshare.New(scanshare.Config{
			BufferPoolPages: poolPages,
			PoolPolicy:      v.policy,
			Sharing:         v.sharing,
		})
		if err != nil {
			return nil, err
		}
		tbl, err := loadSyntheticTable(eng, rows, p.Seed)
		if err != nil {
			return nil, err
		}
		res.Pages = tbl.NumPages()

		scans := make([]scanshare.RealtimeScan, p.Streams)
		estDur := time.Duration(tbl.NumPages()) * 200 * time.Microsecond
		for i := range scans {
			scans[i] = scanshare.RealtimeScan{
				Table:             tbl,
				EstimatedDuration: estDur,
				StartDelay:        time.Duration(i) * 2 * time.Millisecond,
				PageDelay:         120 * time.Microsecond,
			}
		}
		rep, err := eng.RunRealtime(context.Background(), scanshare.RealtimeOptions{
			PrefetchWorkers: 2,
			PageReadDelay:   300 * time.Microsecond,
		}, scans)
		if err != nil {
			return nil, fmt.Errorf("A8 %s: %w", v.label, err)
		}
		cs := rep.Counters
		res.Runs = append(res.Runs, PredictiveRun{
			Label:     v.label,
			Policy:    v.policy,
			Wall:      rep.Wall,
			HitRatio:  cs.HitRatio(),
			PagesRead: cs.PagesRead,
			Misses:    cs.Misses,
			Throttles: cs.ThrottleEvents,
		})
	}
	return res, nil
}

// loadSyntheticTable loads the deterministic synthetic table every A8
// variant scans: rows generated from seed alone, so each fresh engine holds
// byte-identical pages.
func loadSyntheticTable(eng *scanshare.Engine, rows int, seed int64) (*scanshare.Table, error) {
	schema := scanshare.MustSchema(
		scanshare.Field{Name: "id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "v", Kind: scanshare.KindFloat64},
		scanshare.Field{Name: "tag", Kind: scanshare.KindString},
	)
	// splitmix64-style generator: cheap, deterministic, dependency-free.
	state := uint64(seed)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	return eng.LoadTable("ab", schema, func(add func(scanshare.Tuple) error) error {
		for i := 0; i < rows; i++ {
			err := add(scanshare.Tuple{
				scanshare.Int64(int64(i)),
				scanshare.Float64(float64(next()%1000) / 1000),
				scanshare.String(fmt.Sprintf("tag-%02d", next()%40)),
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// Render prints the three-way policy comparison.
func (r *PredictiveResult) Render() string {
	var b strings.Builder
	b.WriteString("A8 — replacement policy A/B: predictive buffer management vs grouping+throttling\n")
	fmt.Fprintf(&b, "%d scans over %d pages, pool %d pages; identical seeded streams per run\n",
		r.Scans, r.Pages, r.PoolPages)
	tbl := metrics.NewTable("configuration", "end-to-end", "hit ratio", "pages read", "misses", "throttles")
	for _, run := range r.Runs {
		tbl.AddRow(run.Label, metrics.FormatDuration(run.Wall),
			fmt.Sprintf("%.1f%%", 100*run.HitRatio),
			fmt.Sprint(run.PagesRead), fmt.Sprint(run.Misses), fmt.Sprint(run.Throttles))
	}
	b.WriteString(tbl.Render())
	b.WriteString("wall-clock rows depend on the machine; the hit-ratio column is the\n")
	b.WriteString("structural signal (predictive should hold locality without hints)\n")
	return b.String()
}
