package experiments

import (
	"os"
	"testing"
)

// TestDefaultScaleThroughput runs the throughput pair at the bench harness's
// default scale and logs the T1/F19/F20 views. It only runs when
// SCANSHARE_FULL=1 to keep the ordinary test suite fast.
func TestDefaultScaleThroughput(t *testing.T) {
	if os.Getenv("SCANSHARE_FULL") == "" {
		t.Skip("set SCANSHARE_FULL=1 for the default-scale run")
	}
	tp, err := RunThroughput(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s\n%s", tp.Table1().Render(), tp.Figure19().Render(), tp.Figure20().Render())
}
