package experiments

import (
	"fmt"
	"strings"
	"time"
)

// CSVExporter is implemented by experiment results that can emit
// machine-readable data for external plotting. CSV returns file contents
// keyed by a suggested file name (without directory).
type CSVExporter interface {
	CSV() map[string]string
}

// csvBuilder accumulates one CSV file.
type csvBuilder struct {
	b strings.Builder
}

func (c *csvBuilder) row(cells ...string) {
	c.b.WriteString(strings.Join(cells, ","))
	c.b.WriteByte('\n')
}

func (c *csvBuilder) String() string { return c.b.String() }

func secs(d time.Duration) string { return fmt.Sprintf("%.6f", d.Seconds()) }
func pct(f float64) string        { return fmt.Sprintf("%.4f", f) }

// CSV exports the headline table.
func (r *Table1Result) CSV() map[string]string {
	var c csvBuilder
	c.row("metric", "base", "shared", "gain")
	c.row("end_to_end_seconds", secs(r.BaseMakespan), secs(r.SharedMakespan), pct(r.EndToEndGain))
	c.row("disk_reads", fmt.Sprint(r.BaseReads), fmt.Sprint(r.SharedReads), pct(r.ReadGain))
	c.row("disk_seeks", fmt.Sprint(r.BaseSeeks), fmt.Sprint(r.SharedSeeks), pct(r.SeekGain))
	return map[string]string{"t1_throughput.csv": c.String()}
}

// CSV exports the activity-over-time series.
func (r *SeriesResult) CSV() map[string]string {
	var c csvBuilder
	c.row("bucket_seconds", "base_"+r.Unit, "shared_"+r.Unit)
	for i, off := range r.Buckets {
		c.row(secs(off), fmt.Sprintf("%.4f", r.BaseValues[i]), fmt.Sprintf("%.4f", r.SharedValues[i]))
	}
	name := strings.ToLower(r.ID) + "_series.csv"
	return map[string]string{name: c.String()}
}

// CSV exports the per-stream gains.
func (r *Figure19Result) CSV() map[string]string {
	var c csvBuilder
	c.row("stream", "base_seconds", "shared_seconds", "gain")
	for _, s := range r.Streams {
		c.row(fmt.Sprint(s.Stream+1), secs(s.Base), secs(s.Shared), pct(s.Gain))
	}
	return map[string]string{"f19_per_stream.csv": c.String()}
}

// CSV exports the per-query gains.
func (r *Figure20Result) CSV() map[string]string {
	var c csvBuilder
	c.row("query", "base_seconds", "shared_seconds", "gain")
	for _, q := range r.Queries {
		c.row(q.Name, secs(q.Base), secs(q.Shared), pct(q.Gain))
	}
	return map[string]string{"f20_per_query.csv": c.String()}
}

// CSV exports the staggered-run decomposition and per-run timings.
func (r *StaggeredResult) CSV() map[string]string {
	var c csvBuilder
	c.row("component", "base_seconds", "shared_seconds")
	c.row("cpu", secs(r.BaseBreakdown.CPU), secs(r.SharedBreakdown.CPU))
	c.row("io_wait", secs(r.BaseBreakdown.IO), secs(r.SharedBreakdown.IO))
	c.row("busy_wait", secs(r.BaseBreakdown.Busy), secs(r.SharedBreakdown.Busy))
	c.row("throttle", secs(r.BaseBreakdown.Throttle), secs(r.SharedBreakdown.Throttle))

	var runs csvBuilder
	runs.row("run", "base_seconds", "shared_seconds", "gain")
	for i := range r.BaseRuns {
		runs.row(fmt.Sprint(i+1), secs(r.BaseRuns[i]), secs(r.SharedRuns[i]), pct(r.Gains[i]))
	}
	id := strings.ToLower(r.ID)
	return map[string]string{
		id + "_breakdown.csv": c.String(),
		id + "_runs.csv":      runs.String(),
	}
}

// CSV exports the single-stream overhead check.
func (r *OverheadResult) CSV() map[string]string {
	var c csvBuilder
	c.row("base_seconds", "shared_seconds", "overhead")
	c.row(secs(r.BaseMakespan), secs(r.SharedMakespan), pct(r.Overhead))
	return map[string]string{"ov_overhead.csv": c.String()}
}

// CSV exports an ablation comparison.
func (r *AblationResult) CSV() map[string]string {
	var c csvBuilder
	c.row("metric", "full", "ablated")
	c.row("disk_reads", fmt.Sprint(r.FullReads), fmt.Sprint(r.AblatedReads))
	c.row("end_to_end_seconds", secs(r.FullMakespan), secs(r.AblatedMakespan))
	c.row("hit_ratio", pct(r.FullHitRatio), pct(r.AblatedHitRatio))
	name := strings.ToLower(r.ID) + "_ablation.csv"
	return map[string]string{name: c.String()}
}

// CSV exports a parameter sweep.
func (r *SweepResult) CSV() map[string]string {
	var c csvBuilder
	c.row("setting", "base_reads", "shared_reads", "read_gain", "time_gain")
	for _, pt := range r.Points {
		c.row(pt.Label, fmt.Sprint(pt.BaseReads), fmt.Sprint(pt.SharedReads),
			pct(pt.ReadGain), pct(pt.TimeGain))
	}
	name := strings.ToLower(r.ID) + "_sweep.csv"
	return map[string]string{name: c.String()}
}

// CSV exports the placement-policy comparison.
func (r *PolicyResult) CSV() map[string]string {
	var c csvBuilder
	c.row("engine", "end_to_end_seconds", "disk_reads", "gain_vs_base")
	c.row("base", secs(r.BaseMakespan), fmt.Sprint(r.BaseReads), "")
	c.row("heuristic", secs(r.HeuristicMakespan), fmt.Sprint(r.HeuristicReads), pct(r.HeuristicGain))
	c.row("estimator", secs(r.EstimateMakespan), fmt.Sprint(r.EstimateReads), pct(r.EstimateGain))
	return map[string]string{"a6_policies.csv": c.String()}
}

// CSV exports the stream-count sweep.
func (r *StreamSweepResult) CSV() map[string]string {
	var c csvBuilder
	c.row("streams", "base_seconds", "shared_seconds", "time_gain", "read_gain")
	for _, pt := range r.Points {
		c.row(fmt.Sprint(pt.Streams), secs(pt.BaseMakespan), secs(pt.SharedMakespan),
			pct(pt.TimeGain), pct(pt.ReadGain))
	}
	return map[string]string{"a7_streams.csv": c.String()}
}
