package experiments

import (
	"testing"

	"scanshare"
)

// TestProbeBigPoolParity is a diagnostic for the A4 sweep's full-database
// row: with the whole database in the pool, base and shared runs should be
// near-identical. It logs the detailed reports to explain any gap.
func TestProbeBigPoolParity(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	p := TestParams()
	p.BufferFrac = 1.2
	stagger, err := sweepStagger(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []scanshare.Mode{scanshare.Baseline, scanshare.Shared} {
		eng, db, err := buildEngine(p, scanshare.SharingConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(mode, sweepScenario(db, stagger))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("mode=%s\n%s\nsharing: %+v", mode, rep.Summary(), rep.Sharing)
		for _, q := range rep.Results {
			t.Logf("  %s s%d: cpu=%v io=%v busy=%v throttle=%v phys=%d",
				q.Name, q.Stream, q.CPU, q.IOWait, q.BusyWait, q.ThrottleWait, q.PhysicalReads)
		}
	}
}
