package experiments

import "testing"

// TestSmokeAll prints every experiment's report at test scale; shape
// assertions live in the dedicated tests below this file.
func TestSmokeAll(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke run is not short")
	}
	p := TestParams()
	for _, spec := range All() {
		res, err := spec.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		t.Logf("%s\n%s", spec.ID, res.Render())
	}
}
