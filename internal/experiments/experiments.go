// Package experiments contains one driver per table and figure of the
// paper's evaluation, plus the ablation and sensitivity studies called out
// in DESIGN.md. Every driver runs the same workload twice — once on a
// baseline engine, once on a sharing engine — and reports paper-style
// comparisons: end-to-end gains, disk read/seek gains, time decompositions,
// and activity-over-time series.
//
// All experiments are deterministic: seeded data generation plus virtual
// time make every run bit-for-bit reproducible, so the expected shapes are
// asserted in ordinary tests as well as printed by the bench harness.
//
// Experiment IDs follow DESIGN.md: T1 (throughput table), F15–F20 (figures),
// OV (overhead), A1–A3 (ablations), A4–A5 (sensitivity sweeps), A6
// (placement-policy extension), A7 (concurrency scaling).
package experiments

import (
	"fmt"
	"time"

	"scanshare"
	"scanshare/internal/workload"
)

// Params sizes an experiment run.
type Params struct {
	// Scale is the workload scale factor (see workload.GenConfig).
	Scale float64
	// Seed drives data generation.
	Seed int64
	// Streams is the throughput run's stream count; the paper uses 5.
	Streams int
	// BufferFrac sizes the buffer pool as a fraction of the database;
	// the paper uses about 5%.
	BufferFrac float64
	// BucketWidth is the granularity of the reads/seeks-over-time series.
	BucketWidth time.Duration
	// StaggerFrac sets the staggered-query start interval as a fraction
	// of one cold query execution (the paper's 10s against multi-minute
	// queries is a few percent).
	StaggerFrac float64
	// ExtentPages is the SSM's prefetch extent. The harness scales it
	// down from DB2's 16 pages so that the 2-extent throttle threshold
	// stays a small fraction of the (scaled-down) buffer pool, matching
	// the paper's proportions.
	ExtentPages int
	// Cores bounds parallel CPU work (0 = unlimited). The default
	// harness runs unbounded, which makes baseline CPU-bound runs faster
	// than the paper's 4-CPU boxes and the reported gains conservative.
	Cores int
}

// DefaultParams returns the configuration used by the bench harness:
// scale 4 (≈1900 database pages), 5 streams, 5% buffer pool.
func DefaultParams() Params {
	return Params{
		Scale:       4,
		Seed:        42,
		Streams:     5,
		BufferFrac:  0.05,
		BucketWidth: 500 * time.Millisecond,
		StaggerFrac: 0.10,
		ExtentPages: 8,
	}
}

// TestParams returns a smaller configuration for the unit-test suite.
func TestParams() Params {
	p := DefaultParams()
	p.Scale = 1.5
	p.ExtentPages = 4
	p.Streams = 3
	p.BucketWidth = 250 * time.Millisecond
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale <= 0 {
		return fmt.Errorf("experiments: non-positive scale %g", p.Scale)
	}
	if p.Streams <= 0 {
		return fmt.Errorf("experiments: non-positive stream count %d", p.Streams)
	}
	if p.BufferFrac <= 0 || p.BufferFrac > 2 {
		return fmt.Errorf("experiments: buffer fraction %g out of range", p.BufferFrac)
	}
	if p.StaggerFrac < 0 {
		return fmt.Errorf("experiments: negative stagger fraction")
	}
	if p.ExtentPages < 0 {
		return fmt.Errorf("experiments: negative extent pages")
	}
	if p.Cores < 0 {
		return fmt.Errorf("experiments: negative core count")
	}
	return nil
}

// buildEngine creates an engine sized per the params and loads the workload
// database into it.
func buildEngine(p Params, sharing scanshare.SharingConfig) (*scanshare.Engine, *workload.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	gen := workload.GenConfig{ScaleFactor: p.Scale, Seed: p.Seed}
	pool := workload.BufferPoolFor(gen, 0, p.BufferFrac)
	if sharing.PrefetchExtentPages == 0 && p.ExtentPages > 0 {
		sharing.PrefetchExtentPages = p.ExtentPages
	}
	eng, err := scanshare.New(scanshare.Config{
		BufferPoolPages: pool,
		Disk:            scanshare.DiskConfig{SeriesBucket: p.BucketWidth},
		CPU:             scanshare.CPUConfig{Cores: p.Cores},
		Sharing:         sharing,
	})
	if err != nil {
		return nil, nil, err
	}
	db, err := workload.Load(eng, gen)
	if err != nil {
		return nil, nil, err
	}
	return eng, db, nil
}

// Result is what every experiment driver returns: a renderable report.
type Result interface {
	// Render returns the experiment's textual report, including the
	// paper-style table or figure it regenerates.
	Render() string
}

// Spec names an experiment for the command-line harness.
type Spec struct {
	// ID is the DESIGN.md experiment ID (e.g. "T1", "F15").
	ID string
	// Title describes the experiment.
	Title string
	// Run executes the experiment.
	Run func(Params) (Result, error)
}

// All returns every experiment, in DESIGN.md order.
func All() []Spec {
	return []Spec{
		{ID: "T1", Title: "5-stream throughput run: end-to-end, disk read and seek gains (Table 1)",
			Run: func(p Params) (Result, error) { return runView(p, (*Throughput).Table1) }},
		{ID: "F15", Title: "3 staggered I/O-bound queries (Q6): time decomposition and per-run gains (Figure 15)",
			Run: func(p Params) (Result, error) { return Figure15(p) }},
		{ID: "F16", Title: "3 staggered CPU-bound queries (Q1): time decomposition and per-run gains (Figure 16)",
			Run: func(p Params) (Result, error) { return Figure16(p) }},
		{ID: "F17", Title: "disk bytes read over time, base vs shared (Figure 17)",
			Run: func(p Params) (Result, error) { return runView(p, (*Throughput).Figure17) }},
		{ID: "F18", Title: "disk seeks over time, base vs shared (Figure 18)",
			Run: func(p Params) (Result, error) { return runView(p, (*Throughput).Figure18) }},
		{ID: "F19", Title: "per-stream end-to-end gains (Figure 19)",
			Run: func(p Params) (Result, error) { return runView(p, (*Throughput).Figure19) }},
		{ID: "F20", Title: "per-query mean execution times, base vs shared (Figure 20)",
			Run: func(p Params) (Result, error) { return runView(p, (*Throughput).Figure20) }},
		{ID: "OV", Title: "single-stream overhead of the sharing machinery",
			Run: func(p Params) (Result, error) { return Overhead(p) }},
		{ID: "A1", Title: "ablation: throttling disabled (drift)",
			Run: func(p Params) (Result, error) { return AblationNoThrottle(p) }},
		{ID: "A2", Title: "ablation: priority hints disabled",
			Run: func(p Params) (Result, error) { return AblationNoPriority(p) }},
		{ID: "A3", Title: "ablation: placement disabled",
			Run: func(p Params) (Result, error) { return AblationNoPlacement(p) }},
		{ID: "A4", Title: "sensitivity: buffer pool size sweep (crossover)",
			Run: func(p Params) (Result, error) { return BufferSweep(p) }},
		{ID: "A5", Title: "sensitivity: throttle threshold sweep",
			Run: func(p Params) (Result, error) { return ThrottleSweep(p) }},
		{ID: "A6", Title: "extension: heuristic vs estimator placement policy",
			Run: func(p Params) (Result, error) { return PlacementPolicies(p) }},
		{ID: "A7", Title: "scaling: sharing benefit vs stream count",
			Run: func(p Params) (Result, error) { return StreamSweep(p) }},
		{ID: "A8", Title: "extension: predictive buffer management vs grouping+throttling",
			Run: func(p Params) (Result, error) { return PredictivePolicyAB(p) }},
	}
}

// runView runs the throughput pair and extracts one of its views.
func runView[R Result](p Params, view func(*Throughput) R) (Result, error) {
	tp, err := RunThroughput(p)
	if err != nil {
		return nil, err
	}
	return view(tp), nil
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiments: no experiment %q", id)
}
