package experiments

import (
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// AblationResult compares the full mechanism against the mechanism with one
// feature disabled, on a scenario chosen to isolate that feature.
type AblationResult struct {
	ID, Title string
	// Feature names what was disabled.
	Feature string

	FullReads, AblatedReads       int64
	FullMakespan, AblatedMakespan time.Duration
	FullHitRatio, AblatedHitRatio float64

	// ReadPenalty is the relative extra disk reads the ablated run pays
	// over the full mechanism (ablated/full - 1); TimePenalty likewise
	// for the makespan. Positive means the feature helps.
	ReadPenalty float64
	TimePenalty float64
}

// calibrateScan measures one cold execution of the query on a fresh engine,
// to size stagger intervals relative to actual scan durations.
func calibrateScan(p Params, mk func(*workload.DB) *scanshare.Query) (time.Duration, error) {
	eng, db, err := buildEngine(p, scanshare.SharingConfig{})
	if err != nil {
		return 0, err
	}
	rep, err := eng.Run(scanshare.Baseline, []scanshare.Job{{Query: mk(db)}})
	if err != nil {
		return 0, err
	}
	return rep.Results[0].Elapsed(), nil
}

// ablationScenario runs the given streams under two sharing configs — the
// reference configuration versus one with an additional feature disabled —
// and compares.
func ablationScenario(p Params, id, title, feature string,
	reference, ablate scanshare.SharingConfig,
	streams func(*workload.DB) [][]scanshare.StreamItem) (*AblationResult, error) {

	run := func(sharing scanshare.SharingConfig) (*scanshare.Report, error) {
		eng, db, err := buildEngine(p, sharing)
		if err != nil {
			return nil, err
		}
		return eng.RunStreams(scanshare.Shared, streams(db))
	}
	full, err := run(reference)
	if err != nil {
		return nil, err
	}
	ablated, err := run(ablate)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		ID: id, Title: title, Feature: feature,
		FullReads:       full.Disk.Reads,
		AblatedReads:    ablated.Disk.Reads,
		FullMakespan:    full.Makespan,
		AblatedMakespan: ablated.Makespan,
		FullHitRatio:    full.Pool.HitRatio(),
		AblatedHitRatio: ablated.Pool.HitRatio(),
		ReadPenalty:     ratioMinusOne(float64(ablated.Disk.Reads), float64(full.Disk.Reads)),
		TimePenalty:     ratioMinusOne(float64(ablated.Makespan), float64(full.Makespan)),
	}, nil
}

// ratioMinusOne returns a/b - 1, or 0 when b is non-positive.
func ratioMinusOne(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a/b - 1
}

// fullScan returns a weight-w full scan of the biggest table.
func fullScan(db *workload.DB, name string, w float64) *scanshare.Query {
	return scanshare.NewQuery(db.Lineitem).Named(name).Weight(w).CountAll()
}

// AblationNoThrottle (A1) measures what throttling contributes. The scenario
// pairs an I/O-bound scan with a much slower CPU-bound scan of the same
// table: placement aligns them, but only throttling keeps them together —
// without it the fast scan runs ahead until the slow scan's pages are gone
// and most pages are read twice.
func AblationNoThrottle(p Params) (*AblationResult, error) {
	return ablationScenario(p, "A1", "throttling disabled on mismatched-speed scans", "throttling",
		scanshare.SharingConfig{},
		scanshare.SharingConfig{DisableThrottling: true},
		func(db *workload.DB) [][]scanshare.StreamItem {
			return [][]scanshare.StreamItem{
				{{Query: fullScan(db, "fast", 1)}},
				{{Query: fullScan(db, "slow", 40)}},
			}
		})
}

// AblationNoPriority (A2) measures what leader/trailer page priorities
// contribute. A fast scan leads a much slower scan of the same table —
// throttling holds their distance near the threshold — while other streams
// churn the pool with scans of another table. With hints the leader's
// high-priority pages outlive the churn until the trailer needs them; with
// plain LRU the mixed release stream evicts them first and the trailer
// falls back to disk.
func AblationNoPriority(p Params) (*AblationResult, error) {
	// Hold the group distance at ~8 extents: wider than the share of the
	// LRU window the leader's pages get under churn, but still within
	// the pool, so only the priority hints can preserve the pages.
	reference := scanshare.SharingConfig{ThrottleThresholdExtents: 8}
	ablated := reference
	ablated.DisablePriorityHints = true
	return ablationScenario(p, "A2", "priority hints disabled on grouped scans under churn", "priority hints",
		reference, ablated,
		func(db *workload.DB) [][]scanshare.StreamItem {
			churn := func() []scanshare.StreamItem {
				items := make([]scanshare.StreamItem, 4)
				for i := range items {
					items[i] = scanshare.StreamItem{
						Query: scanshare.NewQuery(db.Orders).Named("churn").Weight(1).CountAll(),
					}
				}
				return items
			}
			return [][]scanshare.StreamItem{
				{{Query: fullScan(db, "lead", 0.5)}},
				{{Query: fullScan(db, "trail", 24)}},
				churn(),
				churn(),
			}
		})
}

// AblationNoPlacement (A3) measures what placement contributes. The second
// scan starts so long after the first that, from page zero, the two could
// never group (their distance exceeds the pool budget); only placement —
// joining the ongoing scan's position — enables sharing.
func AblationNoPlacement(p Params) (*AblationResult, error) {
	scanTime, err := calibrateScan(p, func(db *workload.DB) *scanshare.Query {
		return fullScan(db, "cal", 1)
	})
	if err != nil {
		return nil, err
	}
	stagger := scanTime / 4
	return ablationScenario(p, "A3", "placement disabled on widely staggered scans", "placement",
		scanshare.SharingConfig{},
		scanshare.SharingConfig{DisablePlacement: true},
		func(db *workload.DB) [][]scanshare.StreamItem {
			return [][]scanshare.StreamItem{
				{{Query: fullScan(db, "first", 1)}},
				{{Query: fullScan(db, "second", 1), ThinkTime: stagger}},
				{{Query: fullScan(db, "third", 1), ThinkTime: 2 * stagger}},
			}
		})
}

// Render prints the full-vs-ablated comparison.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	tbl := metrics.NewTable("metric", "full mechanism", "without "+r.Feature)
	tbl.AddRow("disk reads", fmt.Sprint(r.FullReads), fmt.Sprint(r.AblatedReads))
	tbl.AddRow("end-to-end time",
		metrics.FormatDuration(r.FullMakespan), metrics.FormatDuration(r.AblatedMakespan))
	tbl.AddRow("pool hit ratio", metrics.Pct(r.FullHitRatio), metrics.Pct(r.AblatedHitRatio))
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "without %s: %s more disk reads, %s more time\n",
		r.Feature, metrics.Pct(r.ReadPenalty), metrics.Pct(r.TimePenalty))
	return b.String()
}
