package experiments

import (
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// StreamPoint is one stream-count setting of the scaling sweep.
type StreamPoint struct {
	Streams                      int
	BaseMakespan, SharedMakespan time.Duration
	BaseReads, SharedReads       int64
	TimeGain                     float64
	ReadGain                     float64
}

// StreamSweepResult is the A7 experiment: how the benefit of scan sharing
// scales with concurrency. The paper argues that "the reduced disk
// utilization may be used to scale to a larger number of streams with the
// same hardware" — so the sharing engine's makespan should grow much more
// slowly with stream count than the baseline's, and the gain should widen.
type StreamSweepResult struct {
	Points []StreamPoint
}

// StreamSweep runs the throughput workload at increasing stream counts.
func StreamSweep(p Params) (*StreamSweepResult, error) {
	res := &StreamSweepResult{}
	for _, n := range []int{1, 2, 4, 8} {
		pp := p
		pp.Streams = n
		run := func(mode scanshare.Mode) (*scanshare.Report, error) {
			eng, db, err := buildEngine(pp, scanshare.SharingConfig{})
			if err != nil {
				return nil, err
			}
			return eng.RunStreams(mode, workload.ThroughputStreams(db, n))
		}
		base, err := run(scanshare.Baseline)
		if err != nil {
			return nil, err
		}
		shared, err := run(scanshare.Shared)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, StreamPoint{
			Streams:        n,
			BaseMakespan:   base.Makespan,
			SharedMakespan: shared.Makespan,
			BaseReads:      base.Disk.Reads,
			SharedReads:    shared.Disk.Reads,
			TimeGain:       metrics.GainDur(base.Makespan, shared.Makespan),
			ReadGain:       metrics.GainInt(base.Disk.Reads, shared.Disk.Reads),
		})
	}
	return res, nil
}

// GainAt returns the end-to-end gain at the given stream count, or -1.
func (r *StreamSweepResult) GainAt(streams int) float64 {
	for _, pt := range r.Points {
		if pt.Streams == streams {
			return pt.TimeGain
		}
	}
	return -1
}

// Render prints the scaling table.
func (r *StreamSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("A7 — benefit vs concurrency (stream-count sweep)\n")
	tbl := metrics.NewTable("streams", "base time", "shared time", "time gain", "read gain")
	for _, pt := range r.Points {
		tbl.AddRow(fmt.Sprint(pt.Streams),
			metrics.FormatDuration(pt.BaseMakespan), metrics.FormatDuration(pt.SharedMakespan),
			metrics.Pct(pt.TimeGain), metrics.Pct(pt.ReadGain))
	}
	b.WriteString(tbl.Render())
	b.WriteString("paper: reduced disk utilization lets the same hardware carry more streams —\n")
	b.WriteString("the gain should widen as concurrency grows\n")
	return b.String()
}
