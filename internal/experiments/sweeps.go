package experiments

import (
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// SweepPoint is one parameter setting's base-vs-shared comparison.
type SweepPoint struct {
	// Label names the setting (e.g. "5%" or "2 extents").
	Label string
	// Value is the numeric setting, for assertions.
	Value float64

	BaseReads, SharedReads       int64
	BaseMakespan, SharedMakespan time.Duration
	ReadGain                     float64
	TimeGain                     float64
}

// SweepResult is a parameter sweep (A4 or A5).
type SweepResult struct {
	ID, Title, Parameter string
	Points               []SweepPoint
}

// sweepScenario returns the jobs used by both sweeps: three full scans of
// the biggest table, each started a quarter of a cold scan after the
// previous one.
func sweepScenario(db *workload.DB, stagger time.Duration) []scanshare.Job {
	q := scanshare.NewQuery(db.Lineitem).Named("scan").Weight(1).CountAll()
	return workload.StaggeredJobs(q, 3, stagger)
}

// BufferSweep (A4) varies the buffer pool from 1% to 120% of the database
// and measures the sharing gain at each size. The paper's mechanism matters
// most when the pool is much smaller than the scanned data; once the table
// fits in the pool, base and shared converge (the crossover).
func BufferSweep(p Params) (*SweepResult, error) {
	stagger, err := sweepStagger(p)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 1.20}
	res := &SweepResult{ID: "A4", Title: "buffer pool size sweep", Parameter: "pool (fraction of database)"}
	for _, frac := range fracs {
		pp := p
		pp.BufferFrac = frac
		point, err := sweepPoint(pp, scanshare.SharingConfig{}, stagger, fmt.Sprintf("%.0f%%", frac*100), frac)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// sweepStagger calibrates the sweep scenario's start interval to a quarter
// of one cold scan.
func sweepStagger(p Params) (time.Duration, error) {
	scanTime, err := calibrateScan(p, func(db *workload.DB) *scanshare.Query {
		return fullScan(db, "cal", 1)
	})
	if err != nil {
		return 0, err
	}
	return scanTime / 4, nil
}

// ThrottleSweep (A5) varies the throttle threshold from one extent to 32
// extents on the drift-prone scenario (an I/O-bound scan paired with a much
// slower CPU-bound scan). Throttling only fires while the group drifts, so
// the threshold's effect shows exactly here: too loose and the pair
// separates before throttling reacts; tight thresholds keep the pair
// together at the cost of more inserted waits.
func ThrottleSweep(p Params) (*SweepResult, error) {
	res := &SweepResult{ID: "A5", Title: "throttle threshold sweep", Parameter: "threshold (prefetch extents)"}
	for _, extents := range []int{1, 2, 4, 8, 16, 32} {
		sharing := scanshare.SharingConfig{ThrottleThresholdExtents: extents}
		point, err := sweepPointJobs(p, sharing, fmt.Sprintf("%d", extents), float64(extents),
			func(db *workload.DB) []scanshare.Job {
				return []scanshare.Job{
					{Query: fullScan(db, "fast", 1), Stream: 0},
					{Query: fullScan(db, "slow", 40), Stream: 1},
				}
			})
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// sweepPoint runs the staggered sweep scenario in both modes.
func sweepPoint(p Params, sharing scanshare.SharingConfig, stagger time.Duration, label string, value float64) (SweepPoint, error) {
	return sweepPointJobs(p, sharing, label, value, func(db *workload.DB) []scanshare.Job {
		return sweepScenario(db, stagger)
	})
}

// sweepPointJobs runs arbitrary jobs in both modes under one setting.
func sweepPointJobs(p Params, sharing scanshare.SharingConfig, label string, value float64,
	jobs func(*workload.DB) []scanshare.Job) (SweepPoint, error) {
	run := func(mode scanshare.Mode) (*scanshare.Report, error) {
		eng, db, err := buildEngine(p, sharing)
		if err != nil {
			return nil, err
		}
		return eng.Run(mode, jobs(db))
	}
	base, err := run(scanshare.Baseline)
	if err != nil {
		return SweepPoint{}, err
	}
	shared, err := run(scanshare.Shared)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Label:          label,
		Value:          value,
		BaseReads:      base.Disk.Reads,
		SharedReads:    shared.Disk.Reads,
		BaseMakespan:   base.Makespan,
		SharedMakespan: shared.Makespan,
		ReadGain:       metrics.GainInt(base.Disk.Reads, shared.Disk.Reads),
		TimeGain:       metrics.GainDur(base.Makespan, shared.Makespan),
	}, nil
}

// Render prints the sweep table.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	tbl := metrics.NewTable(r.Parameter, "base reads", "shared reads", "read gain", "time gain")
	for _, pt := range r.Points {
		tbl.AddRow(pt.Label, fmt.Sprint(pt.BaseReads), fmt.Sprint(pt.SharedReads),
			metrics.Pct(pt.ReadGain), metrics.Pct(pt.TimeGain))
	}
	b.WriteString(tbl.Render())
	return b.String()
}
