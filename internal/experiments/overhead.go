package experiments

import (
	"fmt"
	"strings"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/workload"
)

// OverheadResult compares a single-stream run in both modes. With only one
// stream there is nothing to share, so any difference is the cost (or, via
// residual placement, the benefit) of running scans through the sharing
// machinery. The paper reports overhead well below 1% of end-to-end time.
type OverheadResult struct {
	BaseMakespan, SharedMakespan time.Duration
	// Overhead is how much slower the shared run was (negative when the
	// machinery helped, e.g. through residual buffer reuse).
	Overhead float64
}

// Overhead runs one full query stream alone in each mode.
func Overhead(p Params) (*OverheadResult, error) {
	run := func(mode scanshare.Mode) (time.Duration, error) {
		eng, db, err := buildEngine(p, scanshare.SharingConfig{})
		if err != nil {
			return 0, err
		}
		rep, err := eng.RunStreams(mode, workload.ThroughputStreams(db, 1))
		if err != nil {
			return 0, err
		}
		return rep.Makespan, nil
	}
	base, err := run(scanshare.Baseline)
	if err != nil {
		return nil, err
	}
	shared, err := run(scanshare.Shared)
	if err != nil {
		return nil, err
	}
	return &OverheadResult{
		BaseMakespan:   base,
		SharedMakespan: shared,
		Overhead:       -metrics.GainDur(base, shared),
	}, nil
}

// Render prints the single-stream comparison.
func (r *OverheadResult) Render() string {
	var b strings.Builder
	b.WriteString("OV — single-stream overhead of the sharing machinery\n")
	tbl := metrics.NewTable("metric", "base", "shared")
	tbl.AddRow("end-to-end time",
		metrics.FormatDuration(r.BaseMakespan), metrics.FormatDuration(r.SharedMakespan))
	b.WriteString(tbl.Render())
	fmt.Fprintf(&b, "overhead: %s (paper: well below 1%%)\n", metrics.Pct(r.Overhead))
	return b.String()
}
