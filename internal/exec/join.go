package exec

import (
	"fmt"

	"scanshare/internal/record"
)

// HashJoin is an equi-join: it materializes the Left (build) input into a
// hash table keyed on LeftOrdinal, then streams the Right (probe) input and
// emits one concatenated tuple (left fields followed by right fields) per
// match.
//
// Joins matter to the scan sharing story because the paper's TPC-H workload
// is full of them: a join's inputs are table scans, and those scans share
// buffer-pool pages with every other scan of the same tables exactly like
// stand-alone scans do. The join itself is pure CPU-side plumbing.
type HashJoin struct {
	Left, Right  Operator
	LeftOrdinal  int
	RightOrdinal int

	table map[string][]record.Tuple
	// pending holds the remaining matches for the current probe tuple.
	pending []record.Tuple
	probe   record.Tuple
	out     record.Tuple
}

// Open opens both inputs; the build happens lazily on the first Next.
func (j *HashJoin) Open(env *Env) error {
	if j.Left == nil || j.Right == nil {
		return fmt.Errorf("exec: HashJoin needs Left and Right")
	}
	if j.LeftOrdinal < 0 || j.RightOrdinal < 0 {
		return fmt.Errorf("exec: negative join ordinal")
	}
	j.table = nil
	j.pending = nil
	if err := j.Left.Open(env); err != nil {
		return err
	}
	if err := j.Right.Open(env); err != nil {
		j.Left.Close()
		return err
	}
	return nil
}

// build drains the left input into the hash table.
func (j *HashJoin) build() error {
	j.table = make(map[string][]record.Tuple)
	var key []byte
	for {
		t, ok, err := j.Left.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if j.LeftOrdinal >= len(t) {
			return fmt.Errorf("exec: join ordinal %d out of range for build tuple", j.LeftOrdinal)
		}
		key = appendKey(key[:0], t[j.LeftOrdinal])
		j.table[string(key)] = append(j.table[string(key)], append(record.Tuple(nil), t...))
	}
}

// Next emits the next joined tuple. The returned tuple is reused.
func (j *HashJoin) Next() (record.Tuple, bool, error) {
	if j.table == nil {
		if err := j.build(); err != nil {
			return nil, false, err
		}
	}
	var key []byte
	for {
		if len(j.pending) > 0 {
			left := j.pending[0]
			j.pending = j.pending[1:]
			j.out = j.out[:0]
			j.out = append(j.out, left...)
			j.out = append(j.out, j.probe...)
			return j.out, true, nil
		}
		t, ok, err := j.Right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.RightOrdinal >= len(t) {
			return nil, false, fmt.Errorf("exec: join ordinal %d out of range for probe tuple", j.RightOrdinal)
		}
		key = appendKey(key[:0], t[j.RightOrdinal])
		matches := j.table[string(key)]
		if len(matches) == 0 {
			continue
		}
		j.probe = append(j.probe[:0], t...)
		j.pending = matches
	}
}

// Close closes both inputs, reporting the first error.
func (j *HashJoin) Close() error {
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
