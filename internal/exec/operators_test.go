package exec

import (
	"testing"

	"scanshare/internal/record"
	"scanshare/internal/sim"
)

// runPlan executes a plan over the fixture table on a fresh process and
// returns its rows.
func runPlan(t *testing.T, f *fixture, mkPlan func() Operator) []record.Tuple {
	t.Helper()
	res := f.spawn("plan", 0, false, mkPlan)
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	return res.rows
}

func TestFilterSelectsMatchingRows(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Filter{
			Input: f.scan(false, 1),
			Pred:  func(tup record.Tuple) bool { return tup[0].I%10 == 0 },
		}
	})
	if len(rows) != fixtureRows/10 {
		t.Fatalf("filter returned %d rows, want %d", len(rows), fixtureRows/10)
	}
	for _, row := range rows {
		if row[0].I%10 != 0 {
			t.Fatalf("filter leaked row %v", row)
		}
	}
}

func TestFilterValidation(t *testing.T) {
	var flt Filter
	if err := flt.Open(nil); err == nil {
		t.Error("empty Filter accepted")
	}
}

func TestProjectSelectsColumns(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Project{Input: f.scan(false, 1), Ordinals: []int{2, 0}}
	})
	if len(rows) != fixtureRows {
		t.Fatalf("project returned %d rows", len(rows))
	}
	if rows[5][0].Kind != record.KindString || rows[5][1].I != 5 {
		t.Errorf("projected row = %#v", rows[5])
	}
	if len(rows[0]) != 2 {
		t.Errorf("projected width = %d, want 2", len(rows[0]))
	}
}

func TestProjectValidation(t *testing.T) {
	f := newFixture(t, 100)
	res := f.spawn("p", 0, false, func() Operator {
		return &Project{Input: f.scan(false, 1), Ordinals: []int{99}}
	})
	f.k.Run()
	if res.err == nil {
		t.Error("out-of-range ordinal accepted")
	}
	var p Project
	if err := p.Open(nil); err == nil {
		t.Error("Project without input accepted")
	}
	p2 := Project{Input: &TableScan{}}
	if err := p2.Open(nil); err == nil {
		t.Error("Project without ordinals accepted")
	}
}

func TestLimitStopsEarlyAndSavesIO(t *testing.T) {
	f := newFixture(t, 100)
	res := f.spawn("l", 0, false, func() Operator {
		return &Limit{Input: f.scan(false, 1), N: 10}
	})
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.rows) != 10 {
		t.Fatalf("limit returned %d rows", len(res.rows))
	}
	if res.acct.PhysicalReads >= int64(f.tbl.NumPages()) {
		t.Errorf("limit did not stop early: %d physical reads", res.acct.PhysicalReads)
	}
}

func TestLimitValidation(t *testing.T) {
	l := Limit{Input: &TableScan{}, N: -1}
	if err := l.Open(nil); err == nil {
		t.Error("negative limit accepted")
	}
	var l2 Limit
	if err := l2.Open(nil); err == nil {
		t.Error("Limit without input accepted")
	}
}

func TestAggregateUngrouped(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Aggregate{
			Input: f.scan(false, 1),
			Aggs: []AggSpec{
				{Kind: AggCount},
				{Kind: AggSum, Ordinal: 0},
				{Kind: AggAvg, Ordinal: 0},
				{Kind: AggMin, Ordinal: 0},
				{Kind: AggMax, Ordinal: 0},
			},
		}
	})
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	row := rows[0]
	n := int64(fixtureRows)
	wantSum := float64(n*(n-1)) / 2
	if row[0].I != n {
		t.Errorf("count = %d, want %d", row[0].I, n)
	}
	if row[1].F != wantSum {
		t.Errorf("sum = %g, want %g", row[1].F, wantSum)
	}
	if row[2].F != wantSum/float64(n) {
		t.Errorf("avg = %g", row[2].F)
	}
	if row[3].I != 0 || row[4].I != n-1 {
		t.Errorf("min/max = %v/%v", row[3], row[4])
	}
}

func TestAggregateGrouped(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		// Group by k % 4 via a projection trick: filter leaves all
		// rows; grouping column is the string prefix... simpler:
		// group on a computed bucket is not supported, so group on
		// the float column v = k/2 truncated to 2 distinct values via
		// predicate split. Instead group by the varchar column's
		// existence is pointless; use k itself bucketed by Filter.
		return &Aggregate{
			Input:   &Filter{Input: f.scan(false, 1), Pred: func(tup record.Tuple) bool { return tup[0].I < 20 }},
			GroupBy: []int{0},
			Aggs:    []AggSpec{{Kind: AggCount}},
		}
	})
	if len(rows) != 20 {
		t.Fatalf("got %d groups, want 20", len(rows))
	}
	for _, row := range rows {
		if row[1].I != 1 {
			t.Errorf("group %v count = %d, want 1", row[0], row[1].I)
		}
	}
}

func TestAggregateGroupedByString(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Aggregate{
			Input:   &Limit{Input: f.scan(false, 1), N: 4},
			GroupBy: []int{2},
			Aggs:    []AggSpec{{Kind: AggCount}, {Kind: AggSum, Ordinal: 1}},
		}
	})
	if len(rows) != 4 {
		t.Fatalf("got %d groups, want 4 distinct strings", len(rows))
	}
	// Sorted by key encoding: value-0000 .. value-0003.
	if rows[0][0].S != "value-0000" || rows[3][0].S != "value-0003" {
		t.Errorf("group order: %v ... %v", rows[0][0], rows[3][0])
	}
}

func TestAggregateEmptyInputUngrouped(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Aggregate{
			Input: &Filter{Input: f.scan(false, 1), Pred: func(record.Tuple) bool { return false }},
			Aggs:  []AggSpec{{Kind: AggCount}, {Kind: AggSum, Ordinal: 1}},
		}
	})
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	if rows[0][0].I != 0 || rows[0][1].F != 0 {
		t.Errorf("empty aggregate = %#v", rows[0])
	}
}

func TestAggregateEmptyInputGrouped(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Aggregate{
			Input:   &Filter{Input: f.scan(false, 1), Pred: func(record.Tuple) bool { return false }},
			GroupBy: []int{0},
			Aggs:    []AggSpec{{Kind: AggCount}},
		}
	})
	if len(rows) != 0 {
		t.Errorf("grouped aggregate over empty input returned %d rows", len(rows))
	}
}

func TestAggregateValidation(t *testing.T) {
	var a Aggregate
	if err := a.Open(nil); err == nil {
		t.Error("Aggregate without input accepted")
	}
	a2 := Aggregate{Input: &TableScan{}}
	if err := a2.Open(nil); err == nil {
		t.Error("Aggregate with nothing to compute accepted")
	}
	f := newFixture(t, 100)
	res := f.spawn("a", 0, false, func() Operator {
		return &Aggregate{Input: f.scan(false, 1), Aggs: []AggSpec{{Kind: AggSum, Ordinal: 42}}}
	})
	f.k.Run()
	if res.err == nil {
		t.Error("out-of-range aggregate ordinal accepted")
	}
	g := newFixture(t, 100)
	res = g.spawn("a", 0, false, func() Operator {
		return &Aggregate{Input: g.scan(false, 1), GroupBy: []int{-1}, Aggs: []AggSpec{{Kind: AggCount}}}
	})
	g.k.Run()
	if res.err == nil {
		t.Error("out-of-range group-by ordinal accepted")
	}
}

func TestAggKindString(t *testing.T) {
	want := map[AggKind]string{
		AggCount: "count", AggSum: "sum", AggAvg: "avg", AggMin: "min", AggMax: "max", AggKind(9): "AggKind(9)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("AggKind.String() = %q, want %q", k.String(), s)
		}
	}
}

func TestAcctAddAndWallTime(t *testing.T) {
	a := Acct{CPU: 1, IO: 2, Busy: 3, Throttle: 4, LogicalReads: 5, PhysicalReads: 6, TuplesRead: 7, TuplesOut: 8}
	b := a.Add(a)
	if b.CPU != 2 || b.IO != 4 || b.Busy != 6 || b.Throttle != 8 || b.LogicalReads != 10 ||
		b.PhysicalReads != 12 || b.TuplesRead != 14 || b.TuplesOut != 16 {
		t.Errorf("Add = %+v", b)
	}
	if a.WallTime() != 10 {
		t.Errorf("WallTime = %v", a.WallTime())
	}
}

func TestEnvValidation(t *testing.T) {
	f := newFixture(t, 10)
	f.k.Spawn("v", 0, func(p *sim.Proc) {
		good := f.env(p, false)
		if err := good.Validate(); err != nil {
			t.Errorf("valid env rejected: %v", err)
		}
		cases := []func(*Env){
			func(e *Env) { e.Proc = nil },
			func(e *Env) { e.Device = nil },
			func(e *Env) { e.Pool = nil },
			func(e *Env) { e.BusyRetryDelay = 0 },
			func(e *Env) { e.Cost.PerPageCPU = -1 },
		}
		for i, mutate := range cases {
			e := *good
			mutate(&e)
			if err := e.Validate(); err == nil {
				t.Errorf("case %d: invalid env accepted", i)
			}
		}
	})
	f.k.Run()
}

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSortAscendingAndDescending(t *testing.T) {
	f := newFixture(t, 100)
	asc := runPlan(t, f, func() Operator {
		return &Sort{
			Input: &Limit{Input: f.scan(false, 1), N: 50},
			Keys:  []SortKey{{Ordinal: 1, Desc: true}, {Ordinal: 0}},
		}
	})
	if len(asc) != 50 {
		t.Fatalf("got %d rows", len(asc))
	}
	for i := 1; i < len(asc); i++ {
		if asc[i][1].F > asc[i-1][1].F {
			t.Fatalf("descending key violated at %d", i)
		}
		if asc[i][1].F == asc[i-1][1].F && asc[i][0].I < asc[i-1][0].I {
			t.Fatalf("secondary ascending key violated at %d", i)
		}
	}
}

func TestSortByStringColumn(t *testing.T) {
	f := newFixture(t, 100)
	rows := runPlan(t, f, func() Operator {
		return &Sort{
			Input: &Limit{Input: f.scan(false, 1), N: 20},
			Keys:  []SortKey{{Ordinal: 2}},
		}
	})
	for i := 1; i < len(rows); i++ {
		if rows[i][2].S < rows[i-1][2].S {
			t.Fatalf("string sort violated at %d", i)
		}
	}
}

func TestSortValidation(t *testing.T) {
	var s Sort
	if err := s.Open(nil); err == nil {
		t.Error("Sort without input accepted")
	}
	s2 := Sort{Input: &TableScan{}}
	if err := s2.Open(nil); err == nil {
		t.Error("Sort without keys accepted")
	}
	f := newFixture(t, 100)
	res := f.spawn("s", 0, false, func() Operator {
		return &Sort{Input: f.scan(false, 1), Keys: []SortKey{{Ordinal: 99}}}
	})
	f.k.Run()
	if res.err == nil {
		t.Error("out-of-range sort ordinal accepted")
	}
}

func TestSortMakesSharedScanOrderDeterministic(t *testing.T) {
	// A shared scan that wrapped around emits rows out of storage order;
	// Sort restores a deterministic order regardless of the origin.
	f := newFixture(t, 100)
	warm := f.spawn("warm", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if warm.err != nil {
		t.Fatal(warm.err)
	}
	res := f.spawn("sorted", 0, true, func() Operator {
		return &Sort{Input: f.scan(true, 1), Keys: []SortKey{{Ordinal: 0}}}
	})
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.rows) != fixtureRows {
		t.Fatalf("got %d rows", len(res.rows))
	}
	for i, row := range res.rows {
		if row[0].I != int64(i) {
			t.Fatalf("row %d key %d; sort did not restore order", i, row[0].I)
		}
	}
}

func TestHashJoinMatchesReference(t *testing.T) {
	// Self-join the fixture on k%... the fixture has unique keys, so a
	// self-join on the key column yields exactly one match per row.
	f := newFixture(t, 200)
	rows := runPlan(t, f, func() Operator {
		return &HashJoin{
			Left:         &Limit{Input: f.scan(false, 1), N: 100},
			Right:        &Limit{Input: f.scan(false, 1), N: 150},
			LeftOrdinal:  0,
			RightOrdinal: 0,
		}
	})
	if len(rows) != 100 {
		t.Fatalf("got %d joined rows, want 100 (intersection)", len(rows))
	}
	for _, row := range rows {
		if len(row) != 6 {
			t.Fatalf("joined width %d, want 6", len(row))
		}
		if row[0].I != row[3].I {
			t.Fatalf("join key mismatch: %v vs %v", row[0], row[3])
		}
	}
}

func TestHashJoinOnStringColumn(t *testing.T) {
	f := newFixture(t, 200)
	rows := runPlan(t, f, func() Operator {
		return &HashJoin{
			Left:         &Filter{Input: f.scan(false, 1), Pred: func(tp record.Tuple) bool { return tp[0].I < 3 }},
			Right:        &Filter{Input: f.scan(false, 1), Pred: func(tp record.Tuple) bool { return tp[0].I < 3 }},
			LeftOrdinal:  2,
			RightOrdinal: 2,
		}
	})
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
}

func TestHashJoinNoMatches(t *testing.T) {
	f := newFixture(t, 200)
	rows := runPlan(t, f, func() Operator {
		return &HashJoin{
			Left:         &Filter{Input: f.scan(false, 1), Pred: func(tp record.Tuple) bool { return tp[0].I < 5 }},
			Right:        &Filter{Input: f.scan(false, 1), Pred: func(tp record.Tuple) bool { return tp[0].I >= 5 }},
			LeftOrdinal:  0,
			RightOrdinal: 0,
		}
	})
	if len(rows) != 0 {
		t.Fatalf("got %d rows, want none", len(rows))
	}
}

func TestHashJoinValidation(t *testing.T) {
	var j HashJoin
	if err := j.Open(nil); err == nil {
		t.Error("join without inputs accepted")
	}
	j2 := HashJoin{Left: &TableScan{}, Right: &TableScan{}, LeftOrdinal: -1}
	if err := j2.Open(nil); err == nil {
		t.Error("negative ordinal accepted")
	}
}
