package exec

import (
	"fmt"
	"sort"

	"scanshare/internal/record"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	// Ordinal indexes the input tuple.
	Ordinal int
	// Desc reverses the order for this key.
	Desc bool
}

// Sort materializes its input and emits it ordered by the keys.
//
// Sort exists for a reason the paper spells out: a sharing scan does not
// deliver tuples in storage order (it starts mid-range and wraps around), so
// a query that needs ordered output must either fall back to an unshared
// scan or sort explicitly. An explicit Sort keeps the scan shareable; its
// memory cost is the materialized input.
type Sort struct {
	Input Operator
	Keys  []SortKey

	rows []record.Tuple
	pos  int
}

// Open opens the input and validates the keys.
func (s *Sort) Open(env *Env) error {
	if s.Input == nil {
		return fmt.Errorf("exec: Sort needs Input")
	}
	if len(s.Keys) == 0 {
		return fmt.Errorf("exec: Sort with no keys")
	}
	s.rows = nil
	s.pos = 0
	return s.Input.Open(env)
}

// Next drains and sorts the input on first call, then emits rows in order.
func (s *Sort) Next() (record.Tuple, bool, error) {
	if s.rows == nil {
		if err := s.run(); err != nil {
			return nil, false, err
		}
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true, nil
}

func (s *Sort) run() error {
	s.rows = []record.Tuple{}
	for {
		t, ok, err := s.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for _, k := range s.Keys {
			if k.Ordinal < 0 || k.Ordinal >= len(t) {
				return fmt.Errorf("exec: sort ordinal %d out of range", k.Ordinal)
			}
		}
		s.rows = append(s.rows, append(record.Tuple(nil), t...))
	}
	var sortErr error
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, k := range s.Keys {
			a, b := s.rows[i][k.Ordinal], s.rows[j][k.Ordinal]
			if a.Kind != b.Kind {
				sortErr = fmt.Errorf("exec: sort key %d mixes kinds", k.Ordinal)
				return false
			}
			c := record.Compare(a, b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// Close closes the input.
func (s *Sort) Close() error { return s.Input.Close() }
