package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scanshare/internal/heap"
	"scanshare/internal/record"
)

// Shared aggregation for push-based scan delivery.
//
// N concurrent GROUP BY queries over one table traditionally run N scans and
// N private hash tables. With push delivery the N scans already collapse into
// one physical reader; this file collapses the aggregation side: a
// GroupByConsumer folds the tuples of each delivered page straight into a
// hash table from the scan's OnPage callback, either a private per-consumer
// aggTable or one SharedAggState — a mutex-striped table all consumers of the
// same query shape fold into, so the group state too exists once per table
// rather than once per query ("Global Hash Tables Strike Back!", PAPERS.md).

// SharedAggState is one GROUP BY hash table folded into by many concurrent
// consumers. Groups are partitioned over mutex-striped sub-tables by key
// hash — the same key always lands on the same stripe, so stripes hold
// disjoint key sets and merge trivially at the end.
type SharedAggState struct {
	groupBy []int
	aggs    []AggSpec
	stripes []aggStripe
	folds   atomic.Int64

	// Page claims keep the shared table exactly-once even though every
	// sharing consumer is delivered every page: the first consumer to
	// claim a page folds its tuples, the rest skip it. Requires all
	// sharers to scan the same footprint (the caller's shape key).
	claimMu sync.Mutex
	claimed map[int]struct{}
}

type aggStripe struct {
	mu  sync.Mutex
	tbl *aggTable
}

// NewSharedAggState builds a shared table for the given query shape.
// stripes <= 0 picks 8.
func NewSharedAggState(groupBy []int, aggs []AggSpec, stripes int) (*SharedAggState, error) {
	if len(groupBy) == 0 && len(aggs) == 0 {
		return nil, fmt.Errorf("exec: shared aggregation with nothing to compute")
	}
	if stripes <= 0 {
		stripes = 8
	}
	s := &SharedAggState{
		groupBy: groupBy,
		aggs:    aggs,
		stripes: make([]aggStripe, stripes),
		claimed: make(map[int]struct{}),
	}
	for i := range s.stripes {
		s.stripes[i].tbl = newAggTable(groupBy, aggs)
	}
	return s, nil
}

// Fold accumulates one tuple. Safe for concurrent use; only the owning
// stripe is locked.
func (s *SharedAggState) Fold(t record.Tuple) error {
	var kb [64]byte
	key := kb[:0]
	for _, ord := range s.groupBy {
		if ord < 0 || ord >= len(t) {
			return fmt.Errorf("exec: group-by ordinal %d out of range", ord)
		}
		key = appendKey(key, t[ord])
	}
	st := &s.stripes[fnv64(key)%uint64(len(s.stripes))]
	st.mu.Lock()
	err := st.tbl.fold(t)
	st.mu.Unlock()
	if err == nil {
		s.folds.Add(1)
	}
	return err
}

// Folds returns how many tuples have been folded in so far.
func (s *SharedAggState) Folds() int64 { return s.folds.Load() }

// ClaimPage reserves pageNo for the calling consumer. Exactly one of the
// sharing consumers wins each page and folds its tuples; the others skip it.
func (s *SharedAggState) ClaimPage(pageNo int) bool {
	s.claimMu.Lock()
	_, dup := s.claimed[pageNo]
	if !dup {
		s.claimed[pageNo] = struct{}{}
	}
	s.claimMu.Unlock()
	return !dup
}

// Rows merges the stripes and returns the deterministic sorted result rows.
// Call it after every folding consumer has finished.
func (s *SharedAggState) Rows() []record.Tuple {
	merged := make(map[string]*aggState)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k, g := range st.tbl.groups {
			merged[k] = g // stripe key sets are disjoint
		}
		st.mu.Unlock()
	}
	return finalizeGroups(merged, s.groupBy, s.aggs)
}

// GroupByConsumer folds the tuples of scanned heap pages into GROUP BY state
// from a realtime scan's OnPage callback. Zero value plus the exported
// fields is ready to use; OnPage and Results are called from the one scan
// goroutine that owns the consumer (SharedAggState handles cross-consumer
// concurrency when set).
type GroupByConsumer struct {
	// Schema decodes the table's heap pages. Required.
	Schema *record.Schema
	// Pred, when set, filters tuples before aggregation.
	Pred func(record.Tuple) bool
	// GroupBy and Aggs define the query shape (ordinals into the schema).
	GroupBy []int
	Aggs    []AggSpec
	// Shared, when set, folds into the cross-consumer striped table
	// instead of a private one; Results then returns nil rows (read the
	// shared state once, via SharedAggState.Rows).
	Shared *SharedAggState

	local *aggTable
	pages int64
	err   error
}

// OnPage folds every tuple of one heap page; it has the realtime
// ScanSpec.OnPage signature. Errors latch: the first one is kept and later
// pages are ignored, surfacing through Results.
func (c *GroupByConsumer) OnPage(pageNo int, data []byte) {
	if c.err != nil {
		return
	}
	if c.Shared != nil && !c.Shared.ClaimPage(pageNo) {
		return // another sharing consumer already folded this page
	}
	view, err := heap.View(c.Schema, data)
	if err != nil {
		c.err = fmt.Errorf("exec: page %d: %w", pageNo, err)
		return
	}
	if c.local == nil && c.Shared == nil {
		c.local = newAggTable(c.GroupBy, c.Aggs)
	}
	c.pages++
	c.err = view.ForEach(func(t record.Tuple) error {
		if c.Pred != nil && !c.Pred(t) {
			return nil
		}
		if c.Shared != nil {
			return c.Shared.Fold(t)
		}
		return c.local.fold(t)
	})
}

// Pages returns how many pages the consumer folded.
func (c *GroupByConsumer) Pages() int64 { return c.pages }

// Results returns the consumer's sorted result rows, or the first error its
// pages produced. With Shared set the rows live in the shared state and nil
// is returned here.
func (c *GroupByConsumer) Results() ([]record.Tuple, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.Shared != nil {
		return nil, nil
	}
	tb := c.local
	if tb == nil {
		tb = newAggTable(c.GroupBy, c.Aggs)
	}
	return tb.rows(), nil
}

// EncodeRows renders result rows as deterministic bytes (the group-key
// encoding per value, one row per line), for byte-identical comparison
// across execution modes.
func EncodeRows(rows []record.Tuple) []byte {
	var out []byte
	for _, r := range rows {
		for _, v := range r {
			out = appendKey(out, v)
		}
		out = append(out, '\n')
	}
	return out
}

// fnv64 is FNV-1a over b, allocation-free.
func fnv64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
