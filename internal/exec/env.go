// Package exec is the query execution layer: volcano-style operators over
// heap tables, the buffer pool, and the simulated disk, with per-query cost
// accounting.
//
// The package contains the two scan operators at the heart of the paper:
//
//   - TableScan with Shared=false is the baseline scanner: it reads its page
//     range front to back and releases every page at the default priority.
//     This is "vanilla DB2" in the experiments.
//   - TableScan with Shared=true is the sharing scanner: it asks the scan
//     sharing manager where to start, scans with wrap-around from there,
//     reports its progress at prefetch-extent granularity, sleeps when the
//     manager throttles it, and releases pages at the priority the manager
//     advises.
//
// Every unit of simulated work — CPU per tuple batch, latency per physical
// read, wait per throttle — is charged to the process's virtual clock and to
// the query's accounting record, so experiments can report the same
// user/wait time decomposition the paper measures with iostat.
package exec

import (
	"fmt"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/sim"
)

// CostModel holds the CPU cost parameters of query processing.
type CostModel struct {
	// PerPageCPU is the fixed processing cost of visiting a page (slot
	// directory walk, buffer bookkeeping).
	PerPageCPU time.Duration
	// PerTupleCPU is the cost of decoding one tuple and evaluating a
	// baseline predicate on it. Scan operators scale it by their
	// CPUWeight to model cheap (Q6-like) versus expensive (Q1-like)
	// expression work.
	PerTupleCPU time.Duration
}

// DefaultCostModel returns the CPU model used by the experiment harness,
// calibrated so that a weight-1 scan is I/O-bound and a weight-8+ scan is
// CPU-bound under the default disk model.
func DefaultCostModel() CostModel {
	return CostModel{
		PerPageCPU:  20 * time.Microsecond,
		PerTupleCPU: 2 * time.Microsecond,
	}
}

// Validate reports whether the model is usable.
func (c CostModel) Validate() error {
	if c.PerPageCPU < 0 || c.PerTupleCPU < 0 {
		return fmt.Errorf("exec: negative CPU cost in %+v", c)
	}
	return nil
}

// Acct accumulates where a query's virtual time went, mirroring the paper's
// user/system/idle/wait decomposition: CPU is "user time", IO is time blocked
// on physical reads, Busy is time spent waiting for pages being read by
// someone else (or for a free frame), and Throttle is wait inserted by the
// scan sharing manager.
type Acct struct {
	CPU      time.Duration
	IO       time.Duration
	Busy     time.Duration
	Throttle time.Duration
	// CPUQueue is time spent waiting for a CPU core when the engine
	// models a bounded core count; it is part of WallTime but not of CPU
	// (which counts pure service time).
	CPUQueue time.Duration

	LogicalReads  int64 // page requests issued to the buffer pool
	PhysicalReads int64 // page requests that went to disk
	TuplesRead    int64
	TuplesOut     int64
}

// WallTime returns the total accounted virtual time.
func (a Acct) WallTime() time.Duration {
	return a.CPU + a.CPUQueue + a.IO + a.Busy + a.Throttle
}

// Add returns the element-wise sum of two accounting records.
func (a Acct) Add(b Acct) Acct {
	return Acct{
		CPU:           a.CPU + b.CPU,
		CPUQueue:      a.CPUQueue + b.CPUQueue,
		IO:            a.IO + b.IO,
		Busy:          a.Busy + b.Busy,
		Throttle:      a.Throttle + b.Throttle,
		LogicalReads:  a.LogicalReads + b.LogicalReads,
		PhysicalReads: a.PhysicalReads + b.PhysicalReads,
		TuplesRead:    a.TuplesRead + b.TuplesRead,
		TuplesOut:     a.TuplesOut + b.TuplesOut,
	}
}

// Env is the execution context of one query: the simulated process it runs
// on, the storage stack it reads through, and the sharing manager it
// coordinates with (nil for baseline runs).
type Env struct {
	Proc   *sim.Proc
	Device *disk.Device
	Pool   *buffer.Pool
	SSM    *core.Manager // nil disables scan sharing entirely
	Cost   CostModel
	// CPU optionally bounds how much query CPU work can run in parallel
	// (an n-core machine). Nil means unlimited cores.
	CPU *sim.Resource

	// BusyRetryDelay is how long a scan backs off before re-requesting a
	// page whose read is in flight elsewhere.
	BusyRetryDelay time.Duration

	// UpdateEveryPages is the progress-report interval of shared scans,
	// in pages; it defaults to the SSM's prefetch extent.
	UpdateEveryPages int

	Acct Acct
}

// Validate reports whether the environment is usable.
func (e *Env) Validate() error {
	if e.Proc == nil {
		return fmt.Errorf("exec: Env without process")
	}
	if e.Device == nil {
		return fmt.Errorf("exec: Env without device")
	}
	if e.Pool == nil {
		return fmt.Errorf("exec: Env without buffer pool")
	}
	if err := e.Cost.Validate(); err != nil {
		return err
	}
	if e.BusyRetryDelay <= 0 {
		return fmt.Errorf("exec: non-positive BusyRetryDelay %v", e.BusyRetryDelay)
	}
	return nil
}

// now returns the current virtual time.
func (e *Env) now() time.Duration { return e.Proc.Now() }

// chargeCPU advances virtual time by d of CPU work, queueing for a core
// when the environment models a bounded core count.
func (e *Env) chargeCPU(d time.Duration) {
	if d <= 0 {
		return
	}
	if e.CPU != nil {
		latency := e.CPU.Reserve(e.now(), d)
		e.Proc.Sleep(latency)
		e.Acct.CPU += d
		e.Acct.CPUQueue += latency - d
		return
	}
	e.Proc.Sleep(d)
	e.Acct.CPU += d
}

// chargeThrottle advances virtual time by d as SSM-inserted wait.
func (e *Env) chargeThrottle(d time.Duration) {
	if d <= 0 {
		return
	}
	e.Proc.Sleep(d)
	e.Acct.Throttle += d
}

// fetchPage pins page pid, reading it from disk on a miss and backing off
// while another scan's read of the same page is in flight. The returned
// bytes are valid until the page is released and must not be modified.
func (e *Env) fetchPage(pid disk.PageID) ([]byte, error) {
	for {
		st, data := e.Pool.Acquire(pid)
		switch st {
		case buffer.Hit:
			e.Acct.LogicalReads++
			return data, nil
		case buffer.Miss:
			e.Acct.LogicalReads++
			e.Acct.PhysicalReads++
			data, latency, err := e.Device.Read(e.now(), pid)
			if err != nil {
				e.Pool.Abort(pid)
				return nil, err
			}
			// Model the I/O in flight: time passes before the
			// frame becomes valid, and concurrent requesters see
			// Busy until then.
			e.Proc.Sleep(latency)
			e.Acct.IO += latency
			if err := e.Pool.Fill(pid, data); err != nil {
				return nil, err
			}
			return data, nil
		case buffer.Busy, buffer.AllPinned:
			// AllPinned gets the same retry as Busy here: simulated
			// processes only unpin when they run, virtual time is
			// free, and the next release makes the retry succeed.
			// (The realtime runner, where waiting costs wall time,
			// backs off much longer for AllPinned.)
			e.Proc.Sleep(e.BusyRetryDelay)
			e.Acct.Busy += e.BusyRetryDelay
		default:
			return nil, fmt.Errorf("exec: unexpected acquire status %v", st)
		}
	}
}

// releasePage returns a pinned page to the pool at the given SSM hint.
func (e *Env) releasePage(pid disk.PageID, hint core.PagePriority) error {
	return e.Pool.Release(pid, poolPriority(hint))
}

// poolPriority maps the SSM's engine-agnostic hint onto the buffer pool's
// priority levels.
func poolPriority(hint core.PagePriority) buffer.Priority {
	switch hint {
	case core.PageLow:
		return buffer.PriorityLow
	case core.PageHigh:
		return buffer.PriorityHigh
	default:
		return buffer.PriorityNormal
	}
}
