package exec

import (
	"bytes"
	"sync"
	"testing"

	"scanshare/internal/record"
)

// sharedAggFixtureRows feeds raw heap pages of the standard fixture table to
// N GroupByConsumers concurrently, as a push stream would.
func sharedAggPages(t *testing.T, f *fixture) [][]byte {
	t.Helper()
	pages := make([][]byte, f.tbl.NumPages())
	for i := range pages {
		pid, err := f.tbl.PageID(i)
		if err != nil {
			t.Fatal(err)
		}
		data, err := f.dev.ReadRaw(pid)
		if err != nil {
			t.Fatal(err)
		}
		pages[i] = data
	}
	return pages
}

// TestSharedAggStateMatchesPrivate: N consumers folding every page into one
// shared striped table produce exactly the rows one private consumer
// computes, the claim map keeps the fold exactly-once, and the encoding is
// byte-identical.
func TestSharedAggStateMatchesPrivate(t *testing.T) {
	f := newFixture(t, 64)
	pages := sharedAggPages(t, f)

	// Group by nothing (one global row) and by the string column.
	for _, tc := range []struct {
		name    string
		groupBy []int
		aggs    []AggSpec
	}{
		{"ungrouped", nil, []AggSpec{{Kind: AggCount}, {Kind: AggSum, Ordinal: 1}, {Kind: AggMin, Ordinal: 0}, {Kind: AggMax, Ordinal: 0}}},
		{"by-string", []int{2}, []AggSpec{{Kind: AggCount}, {Kind: AggAvg, Ordinal: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			private := &GroupByConsumer{Schema: f.tbl.Schema(), GroupBy: tc.groupBy, Aggs: tc.aggs}
			for i, data := range pages {
				private.OnPage(i, data)
			}
			wantRows, err := private.Results()
			if err != nil {
				t.Fatal(err)
			}
			want := EncodeRows(wantRows)

			const consumers = 5
			shared, err := NewSharedAggState(tc.groupBy, tc.aggs, 4)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				cons := &GroupByConsumer{Schema: f.tbl.Schema(), GroupBy: tc.groupBy, Aggs: tc.aggs, Shared: shared}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i, data := range pages {
						cons.OnPage(i, data)
					}
					if rows, err := cons.Results(); err != nil || rows != nil {
						t.Errorf("shared consumer: rows %v err %v, want nil/nil", rows, err)
					}
				}()
			}
			wg.Wait()

			if got := EncodeRows(shared.Rows()); !bytes.Equal(got, want) {
				t.Errorf("shared rows differ from private rows\n got: %q\nwant: %q", got, want)
			}
			// Exactly-once: the claim map admits each page once, so the
			// fold count equals the table's tuples — not consumers times
			// that.
			if shared.Folds() != f.tbl.NumTuples() {
				t.Errorf("folds %d, want %d (exactly one fold per tuple)", shared.Folds(), f.tbl.NumTuples())
			}
		})
	}
}

// TestSharedAggValidation: a shared state must compute something, and fold
// errors surface.
func TestSharedAggValidation(t *testing.T) {
	if _, err := NewSharedAggState(nil, nil, 0); err == nil {
		t.Error("empty shared state accepted")
	}
	s, err := NewSharedAggState([]int{5}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Fold(record.Tuple{record.Int64(1)}); err == nil {
		t.Error("out-of-range group-by ordinal accepted")
	}
}

// TestGroupByConsumerBadPage: a page that is not a heap page latches an
// error that Results surfaces; later pages are ignored.
func TestGroupByConsumerBadPage(t *testing.T) {
	f := newFixture(t, 64)
	pages := sharedAggPages(t, f)
	c := &GroupByConsumer{Schema: f.tbl.Schema(), Aggs: []AggSpec{{Kind: AggCount}}}
	c.OnPage(0, []byte{1, 2, 3})
	c.OnPage(1, pages[1])
	if _, err := c.Results(); err == nil {
		t.Error("torn page did not surface through Results")
	}
	if c.Pages() != 0 {
		t.Errorf("consumer folded %d pages after the error", c.Pages())
	}
}
