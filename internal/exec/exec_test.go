package exec

import (
	"fmt"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/heap"
	"scanshare/internal/record"
	"scanshare/internal/sim"
)

// fixture wires a kernel, device, pool, SSM and one table together.
type fixture struct {
	k    *sim.Kernel
	dev  *disk.Device
	pool *buffer.Pool
	ssm  *core.Manager
	tbl  *heap.Table
}

const fixtureRows = 1000

// newFixture builds a ~40-page table of fixtureRows rows on a fresh stack.
func newFixture(t *testing.T, poolPages int) *fixture {
	t.Helper()
	dev := disk.MustNew(disk.Model{
		SeekTime:        time.Millisecond,
		TransferPerPage: 100 * time.Microsecond,
		PageSize:        1024,
	}, 0)
	schema := record.MustSchema(
		record.Field{Name: "k", Kind: record.KindInt64},
		record.Field{Name: "v", Kind: record.KindFloat64},
		record.Field{Name: "s", Kind: record.KindString},
	)
	b, err := heap.NewBuilder(dev, "fixture", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fixtureRows; i++ {
		err := b.Append(record.Tuple{
			record.Int64(int64(i)),
			record.Float64(float64(i) / 2),
			record.String(fmt.Sprintf("value-%04d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The fixture table is only ~30 pages; shrink the extent so that the
	// default 2-extent throttle threshold (8 pages here) fits inside it.
	cfg := core.DefaultConfig(poolPages)
	cfg.MinSharePages = 1
	cfg.PrefetchExtentPages = 4
	return &fixture{
		k:    sim.New(),
		dev:  dev,
		pool: buffer.MustNewPool(poolPages),
		ssm:  core.MustNewManager(cfg),
		tbl:  tbl,
	}
}

func (f *fixture) env(p *sim.Proc, shared bool) *Env {
	e := &Env{
		Proc:           p,
		Device:         f.dev,
		Pool:           f.pool,
		Cost:           DefaultCostModel(),
		BusyRetryDelay: 50 * time.Microsecond,
	}
	if shared {
		e.SSM = f.ssm
	}
	return e
}

// result of one spawned query.
type result struct {
	rows []record.Tuple
	acct Acct
	err  error
	took time.Duration
}

// spawn runs the plan built by mkPlan on a new simulated process.
func (f *fixture) spawn(name string, delay time.Duration, shared bool, mkPlan func() Operator) *result {
	res := &result{}
	f.k.Spawn(name, delay, func(p *sim.Proc) {
		begin := p.Now()
		env := f.env(p, shared)
		res.rows, res.err = Collect(env, mkPlan())
		res.acct = env.Acct
		res.took = p.Now() - begin
	})
	return res
}

func (f *fixture) scan(shared bool, weight float64) *TableScan {
	return &TableScan{Table: f.tbl, TableID: 0, CPUWeight: weight, Shared: shared}
}

func TestBaselineScanReadsAllTuplesInOrder(t *testing.T) {
	f := newFixture(t, 100)
	res := f.spawn("q", 0, false, func() Operator { return f.scan(false, 1) })
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.rows) != fixtureRows {
		t.Fatalf("got %d rows, want %d", len(res.rows), fixtureRows)
	}
	for i, row := range res.rows {
		if row[0].I != int64(i) {
			t.Fatalf("row %d has key %d; baseline scan must be in order", i, row[0].I)
		}
	}
	if res.acct.PhysicalReads != int64(f.tbl.NumPages()) {
		t.Errorf("cold scan did %d physical reads, want %d", res.acct.PhysicalReads, f.tbl.NumPages())
	}
	if res.acct.CPU <= 0 || res.acct.IO <= 0 {
		t.Errorf("accounting missing: %+v", res.acct)
	}
	if res.acct.WallTime() != res.took {
		t.Errorf("accounted %v != elapsed %v", res.acct.WallTime(), res.took)
	}
}

func TestWarmScanHitsBuffer(t *testing.T) {
	f := newFixture(t, 100) // pool holds the whole table
	first := f.spawn("q1", 0, false, func() Operator { return f.scan(false, 1) })
	f.k.Run()
	if first.err != nil {
		t.Fatal(first.err)
	}
	second := f.spawn("q2", 0, false, func() Operator { return f.scan(false, 1) })
	f.k.Run()
	if second.err != nil {
		t.Fatal(second.err)
	}
	if second.acct.PhysicalReads != 0 {
		t.Errorf("warm scan did %d physical reads", second.acct.PhysicalReads)
	}
	if second.acct.IO != 0 {
		t.Errorf("warm scan waited %v on I/O", second.acct.IO)
	}
}

func TestScanRangeRestriction(t *testing.T) {
	f := newFixture(t, 100)
	res := f.spawn("q", 0, false, func() Operator {
		s := f.scan(false, 1)
		s.StartPage = 2
		s.EndPage = 5
		return s
	})
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.acct.PhysicalReads != 3 {
		t.Errorf("range scan read %d pages, want 3", res.acct.PhysicalReads)
	}
	if len(res.rows) == 0 || len(res.rows) >= fixtureRows {
		t.Errorf("range scan returned %d rows", len(res.rows))
	}
}

func TestScanValidation(t *testing.T) {
	f := newFixture(t, 100)
	cases := []func(*TableScan){
		func(s *TableScan) { s.Table = nil },
		func(s *TableScan) { s.CPUWeight = -1 },
		func(s *TableScan) { s.StartPage = -1 },
		func(s *TableScan) { s.StartPage = 10; s.EndPage = 10 },
		func(s *TableScan) { s.EndPage = f.tbl.NumPages() + 1 },
	}
	for i, mutate := range cases {
		i, mutate := i, mutate
		res := f.spawn("q", 0, false, func() Operator {
			s := f.scan(false, 1)
			mutate(s)
			return s
		})
		f.k.Run()
		if res.err == nil {
			t.Errorf("case %d: invalid scan accepted", i)
		}
	}
}

func TestDoubleOpenRejected(t *testing.T) {
	f := newFixture(t, 100)
	var err2 error
	f.k.Spawn("q", 0, func(p *sim.Proc) {
		env := f.env(p, false)
		s := f.scan(false, 1)
		if err := s.Open(env); err != nil {
			t.Error(err)
			return
		}
		err2 = s.Open(env)
		s.Close()
	})
	f.k.Run()
	if err2 == nil {
		t.Error("double Open accepted")
	}
}

func TestNextBeforeOpenRejected(t *testing.T) {
	f := newFixture(t, 100)
	s := f.scan(false, 1)
	if _, _, err := s.Next(); err == nil {
		t.Error("Next before Open accepted")
	}
}

func TestSharedScanRegistersAndDeregisters(t *testing.T) {
	f := newFixture(t, 100)
	res := f.spawn("q", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.rows) != fixtureRows {
		t.Errorf("shared scan returned %d rows", len(res.rows))
	}
	if f.ssm.ActiveScans() != 0 {
		t.Errorf("%d scans still registered after Close", f.ssm.ActiveScans())
	}
	if st := f.ssm.Stats(); st.ScansStarted != 1 || st.ScansFinished != 1 {
		t.Errorf("SSM stats: %+v", st)
	}
}

func TestSharedScanWrapAroundSeesEveryTupleOnce(t *testing.T) {
	f := newFixture(t, 100)
	// Warm up a scan, end it, so the next scan gets a residual placement
	// in the middle of the table and must wrap around.
	warm := f.spawn("warm", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if warm.err != nil {
		t.Fatal(warm.err)
	}
	res := f.spawn("wrapped", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.rows) != fixtureRows {
		t.Fatalf("wrapped scan returned %d rows, want %d", len(res.rows), fixtureRows)
	}
	seen := make(map[int64]bool, fixtureRows)
	for _, row := range res.rows {
		if seen[row[0].I] {
			t.Fatalf("key %d seen twice", row[0].I)
		}
		seen[row[0].I] = true
	}
	if len(seen) != fixtureRows {
		t.Errorf("saw %d distinct keys", len(seen))
	}
}

func TestResidualPlacementSavesIO(t *testing.T) {
	// Pool smaller than the table: after scan 1 ends, the pool holds the
	// tail of the table. A residual-placed scan 2 starts near that tail
	// and must hit, while a cold-placed baseline re-reads everything.
	f := newFixture(t, 20)
	first := f.spawn("q1", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if first.err != nil {
		t.Fatal(first.err)
	}
	second := f.spawn("q2", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if second.err != nil {
		t.Fatal(second.err)
	}
	if st := f.ssm.Stats(); st.ResidualPlacements != 1 {
		t.Fatalf("expected a residual placement: %+v", st)
	}
	if second.acct.PhysicalReads >= int64(f.tbl.NumPages()) {
		t.Errorf("residual scan did %d physical reads, want < %d",
			second.acct.PhysicalReads, f.tbl.NumPages())
	}
}

func TestConcurrentSharedScansShareReads(t *testing.T) {
	// The second scan starts once the first is well past the pool's
	// reach: a baseline scan starting at page 0 then misses everywhere,
	// while a sharing scan joins the ongoing scan's position and rides
	// its pages. (Two scans starting at the same instant share even in
	// the baseline — the paper calls that "chance" sharing.)
	const stagger = 3 * time.Millisecond

	f := newFixture(t, 10)
	a := f.spawn("a", 0, true, func() Operator { return f.scan(true, 1) })
	b := f.spawn("b", stagger, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	if st := f.ssm.Stats(); st.JoinPlacements != 1 {
		t.Fatalf("second scan did not join the first: %+v", st)
	}
	shared := a.acct.PhysicalReads + b.acct.PhysicalReads

	// Baseline: same two scans, no SSM, fresh stack.
	g := newFixture(t, 10)
	ba := g.spawn("a", 0, false, func() Operator { return g.scan(false, 1) })
	bb := g.spawn("b", stagger, false, func() Operator { return g.scan(false, 1) })
	g.k.Run()
	if ba.err != nil || bb.err != nil {
		t.Fatal(ba.err, bb.err)
	}
	base := ba.acct.PhysicalReads + bb.acct.PhysicalReads

	if shared >= base {
		t.Errorf("sharing did not reduce physical reads: shared=%d base=%d", shared, base)
	}
}

func TestThrottleShowsUpInAccounting(t *testing.T) {
	f := newFixture(t, 30)
	// The ~29-page fixture table is shorter than 4x the default threshold,
	// which would exempt it from throttling; tighten the extent so the
	// drift machinery engages.
	cfg := core.DefaultConfig(30)
	cfg.MinSharePages = 1
	cfg.PrefetchExtentPages = 2
	f.ssm = core.MustNewManager(cfg)
	fast := f.spawn("fast", 0, true, func() Operator { return f.scan(true, 1) })
	slow := f.spawn("slow", 0, true, func() Operator { return f.scan(true, 50) })
	f.k.Run()
	if fast.err != nil || slow.err != nil {
		t.Fatal(fast.err, slow.err)
	}
	if fast.acct.Throttle <= 0 {
		t.Errorf("fast scan was never throttled: %+v", fast.acct)
	}
	if st := f.ssm.Stats(); st.ThrottleEvents == 0 {
		t.Errorf("no throttle events: %+v", st)
	}
}

func TestBusyWaitOnInFlightRead(t *testing.T) {
	// Two identical scans starting at the same instant race for the same
	// pages; the loser of each race must wait on the in-flight read.
	f := newFixture(t, 100)
	a := f.spawn("a", 0, true, func() Operator { return f.scan(true, 1) })
	b := f.spawn("b", 0, true, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	if a.acct.Busy+b.acct.Busy <= 0 {
		t.Error("no busy-wait recorded despite racing scans")
	}
}

func TestSharedScanWithoutSSMFallsBackToBaseline(t *testing.T) {
	f := newFixture(t, 100)
	res := f.spawn("q", 0, false /* env without SSM */, func() Operator { return f.scan(true, 1) })
	f.k.Run()
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.rows) != fixtureRows {
		t.Errorf("got %d rows", len(res.rows))
	}
	for i, row := range res.rows {
		if row[0].I != int64(i) {
			t.Fatal("fallback scan not in order")
		}
	}
}

func TestFetchPageErrorFreesReservedFrame(t *testing.T) {
	// A failed physical read must Abort the reserved frame so the pool
	// does not leak a pending entry.
	f := newFixture(t, 4)
	f.k.Spawn("q", 0, func(p *sim.Proc) {
		env := f.env(p, false)
		bogus := disk.PageID(1 << 30)
		if _, err := env.fetchPage(bogus); err == nil {
			t.Error("fetch of unallocated page succeeded")
		}
		// The frame must be free again: acquiring it yields Miss, not
		// Busy-on-pending.
		st, _ := f.pool.Acquire(bogus)
		if st != buffer.Miss {
			t.Errorf("after failed fetch, Acquire = %v, want miss", st)
		}
		f.pool.Abort(bogus)
	})
	f.k.Run()
}

func TestScanErrorReleasesSSMRegistration(t *testing.T) {
	// A shared scan whose plan fails mid-stream must still deregister via
	// Close so the SSM does not track ghosts.
	f := newFixture(t, 100)
	res := f.spawn("q", 0, true, func() Operator {
		return &Filter{
			Input: f.scan(true, 1),
			Pred: func(tup record.Tuple) bool {
				if tup[0].I == 500 {
					panic("predicate exploded") // recovered below
				}
				return true
			},
		}
	})
	func() {
		defer func() { recover() }()
		f.k.Run()
	}()
	_ = res
	// The panic escaped through Collect without Close; directly verify
	// the documented contract instead: Close on an opened shared scan
	// deregisters.
	g := newFixture(t, 100)
	g.k.Spawn("q", 0, func(p *sim.Proc) {
		env := g.env(p, true)
		s := g.scan(true, 1)
		if err := s.Open(env); err != nil {
			t.Error(err)
			return
		}
		if g.ssm.ActiveScans() != 1 {
			t.Errorf("ActiveScans = %d after Open", g.ssm.ActiveScans())
		}
		if err := s.Close(); err != nil {
			t.Error(err)
		}
		if g.ssm.ActiveScans() != 0 {
			t.Errorf("ActiveScans = %d after Close", g.ssm.ActiveScans())
		}
		if err := s.Close(); err != nil {
			t.Errorf("second Close errored: %v", err)
		}
	})
	g.k.Run()
}

func TestEstimateDurationPositive(t *testing.T) {
	f := newFixture(t, 100)
	f.k.Spawn("q", 0, func(p *sim.Proc) {
		env := f.env(p, true)
		s := f.scan(true, 1)
		if err := s.Open(env); err != nil {
			t.Error(err)
			return
		}
		if est := s.estimateDuration(); est <= 0 {
			t.Errorf("estimateDuration = %v", est)
		}
		s.Close()
	})
	f.k.Run()
}
