package exec

import (
	"fmt"
	"time"

	"scanshare/internal/core"
	"scanshare/internal/heap"
	"scanshare/internal/record"
)

// Operator is the volcano-style iterator every plan node implements. Open
// prepares the node, Next produces the next tuple (ok=false at end of
// stream), Close releases resources. Tuples returned by Next may be reused
// by subsequent calls; callers that retain them must copy.
type Operator interface {
	Open(env *Env) error
	Next() (record.Tuple, bool, error)
	Close() error
}

// TableScan reads a page range of a heap table and emits its tuples.
//
// With Shared=false it behaves like a classic scanner: front-to-back reads,
// default release priority. With Shared=true and a non-nil env.SSM, it
// registers with the scan sharing manager, starts wherever the manager
// places it (wrapping around the end of its range), reports progress at
// extent granularity, sleeps through throttle advice, and releases pages at
// the advised priority.
type TableScan struct {
	Table   *heap.Table
	TableID core.TableID
	// StartPage and EndPage restrict the scan to [StartPage, EndPage) in
	// table-relative pages; EndPage == 0 means the end of the table.
	StartPage, EndPage int
	// CPUWeight scales the per-tuple CPU cost to model the query's
	// expression complexity (1 = cheap I/O-bound predicate, 8+ =
	// expensive Q1-style arithmetic).
	CPUWeight float64
	// Shared selects the sharing scan protocol.
	Shared bool
	// EstimatedDuration optionally seeds the SSM's speed estimate; when
	// zero, Open derives an estimate from the cost and disk models.
	EstimatedDuration time.Duration
	// Importance is the query's priority class, scaling how much of this
	// scan's time the SSM may spend on throttling.
	Importance core.Importance

	env      *Env
	scanID   core.ScanID
	origin   int // first page of the wrap-around order
	start    int
	end      int
	visited  int // pages processed so far
	pageView heap.PageView
	pageIdx  int // next tuple on the current page
	havePage bool
	scratch  record.Tuple
	opened   bool
	sharing  bool
	priority core.PagePriority
	interval int
	reportAt int // visited-page count of the next progress report
}

// Open validates the scan and, in sharing mode, registers it with the SSM.
func (t *TableScan) Open(env *Env) error {
	if t.opened {
		return fmt.Errorf("exec: scan opened twice")
	}
	if err := env.Validate(); err != nil {
		return err
	}
	if t.Table == nil {
		return fmt.Errorf("exec: scan of nil table")
	}
	if t.CPUWeight < 0 {
		return fmt.Errorf("exec: negative CPUWeight %g", t.CPUWeight)
	}
	t.env = env
	t.start = t.StartPage
	t.end = t.EndPage
	if t.end == 0 {
		t.end = t.Table.NumPages()
	}
	if t.start < 0 || t.end > t.Table.NumPages() || t.start >= t.end {
		return fmt.Errorf("exec: scan range [%d,%d) invalid for table %q with %d pages",
			t.start, t.end, t.Table.Name(), t.Table.NumPages())
	}
	t.origin = t.start
	t.priority = core.PageNormal
	t.sharing = t.Shared && env.SSM != nil
	if t.sharing {
		t.interval = env.UpdateEveryPages
		if t.interval <= 0 {
			t.interval = env.SSM.Config().PrefetchExtentPages
		}
		est := t.EstimatedDuration
		if est == 0 {
			est = t.estimateDuration()
		}
		id, placement, err := env.SSM.StartScan(core.ScanOpts{
			Table:             t.TableID,
			TablePages:        t.Table.NumPages(),
			StartPage:         t.start,
			EndPage:           t.end,
			EstimatedDuration: est,
			Importance:        t.Importance,
		}, env.now())
		if err != nil {
			return err
		}
		t.scanID = id
		t.origin = placement.Origin
		t.reportAt = t.interval
	}
	t.opened = true
	return nil
}

// estimateDuration is the optimizer-style estimate handed to the SSM: the
// expected time of a cold, unshared execution of this scan. Like a real
// cost model it charges transfer and CPU per page plus an expected seek
// share — under concurrent scans roughly every other read loses
// sequentiality to interleaving, so half a seek per page is assumed. The
// estimate seeds the SSM's speed tracking and bounds throttling fairness;
// an estimate that ignored seeks entirely would exhaust the fairness
// allowance long before throttling could pay off.
func (t *TableScan) estimateDuration() time.Duration {
	pages := t.end - t.start
	model := t.env.Device.Model()
	perPage := model.TransferPerPage + model.SeekTime/2 + t.env.Cost.PerPageCPU
	tuplesPerPage := float64(t.Table.NumTuples()) / float64(t.Table.NumPages())
	perPage += time.Duration(tuplesPerPage * t.CPUWeight * float64(t.env.Cost.PerTupleCPU))
	return time.Duration(pages) * perPage
}

// pageNo returns the table-relative page for the i-th visited page in
// wrap-around order.
func (t *TableScan) pageNo(i int) int {
	length := t.end - t.start
	return t.start + (t.origin-t.start+i)%length
}

// Next emits the next tuple, loading and processing pages as needed.
func (t *TableScan) Next() (record.Tuple, bool, error) {
	if !t.opened {
		return nil, false, fmt.Errorf("exec: Next on unopened scan")
	}
	for {
		if t.havePage {
			if t.pageIdx < t.pageView.NumTuples() {
				tup, err := t.pageView.Tuple(t.scratch, t.pageIdx)
				if err != nil {
					return nil, false, err
				}
				t.scratch = tup
				t.pageIdx++
				t.env.Acct.TuplesRead++
				return tup, true, nil
			}
			t.havePage = false
		}
		if t.visited >= t.end-t.start {
			return nil, false, nil
		}
		if err := t.loadNextPage(); err != nil {
			return nil, false, err
		}
	}
}

// loadNextPage fetches the next page in scan order, charges its processing
// cost, releases it at the advised priority, and — in sharing mode —
// reports progress and applies throttle advice at extent boundaries.
func (t *TableScan) loadNextPage() error {
	pageNo := t.pageNo(t.visited)
	pid, err := t.Table.PageID(pageNo)
	if err != nil {
		return err
	}
	data, err := t.env.fetchPage(pid)
	if err != nil {
		return err
	}
	view, err := heap.View(t.Table.Schema(), data)
	if err != nil {
		t.env.releasePage(pid, t.priority)
		return err
	}

	// Charge the page's processing cost up front, at page granularity:
	// one simulator event per page instead of per tuple.
	cpu := t.env.Cost.PerPageCPU +
		time.Duration(float64(view.NumTuples())*t.CPUWeight*float64(t.env.Cost.PerTupleCPU))
	t.env.chargeCPU(cpu)

	t.visited++
	if t.sharing && (t.visited >= t.reportAt || t.visited == t.end-t.start) {
		adv, err := t.env.SSM.ReportProgress(t.scanID, t.visited, t.env.now())
		if err != nil {
			t.env.releasePage(pid, t.priority)
			return err
		}
		t.priority = adv.Priority
		next := adv.NextReportPages
		if next <= 0 {
			next = t.interval
		}
		t.reportAt = t.visited + next
		if adv.Wait > 0 {
			t.env.chargeThrottle(adv.Wait)
		}
	}

	if err := t.env.releasePage(pid, t.priority); err != nil {
		return err
	}
	t.pageView = view
	t.pageIdx = 0
	t.havePage = true
	return nil
}

// Close deregisters a sharing scan from the SSM. It is safe to call on a
// scan whose Open failed.
func (t *TableScan) Close() error {
	if !t.opened {
		return nil
	}
	t.opened = false
	if t.sharing {
		return t.env.SSM.EndScan(t.scanID, t.env.now())
	}
	return nil
}
