package exec

import (
	"fmt"
	"math"
	"sort"

	"scanshare/internal/record"
)

// Filter passes through the tuples of Input for which Pred returns true.
// Predicate CPU cost is modelled by the scan's CPUWeight, not charged here,
// so predicates themselves should be cheap Go code.
type Filter struct {
	Input Operator
	Pred  func(record.Tuple) bool

	env *Env
}

// Open opens the input.
func (f *Filter) Open(env *Env) error {
	if f.Input == nil || f.Pred == nil {
		return fmt.Errorf("exec: Filter needs Input and Pred")
	}
	f.env = env
	return f.Input.Open(env)
}

// Next returns the next tuple satisfying the predicate.
func (f *Filter) Next() (record.Tuple, bool, error) {
	for {
		t, ok, err := f.Input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(t) {
			return t, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.Input.Close() }

// Project emits, for every input tuple, the values at the given ordinals.
type Project struct {
	Input    Operator
	Ordinals []int

	out record.Tuple
}

// Open opens the input.
func (p *Project) Open(env *Env) error {
	if p.Input == nil {
		return fmt.Errorf("exec: Project needs Input")
	}
	if len(p.Ordinals) == 0 {
		return fmt.Errorf("exec: Project with no ordinals")
	}
	return p.Input.Open(env)
}

// Next projects the next input tuple. The returned tuple is reused.
func (p *Project) Next() (record.Tuple, bool, error) {
	t, ok, err := p.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.out = p.out[:0]
	for _, ord := range p.Ordinals {
		if ord < 0 || ord >= len(t) {
			return nil, false, fmt.Errorf("exec: projection ordinal %d out of range", ord)
		}
		p.out = append(p.out, t[ord])
	}
	return p.out, true, nil
}

// Close closes the input.
func (p *Project) Close() error { return p.Input.Close() }

// Limit emits at most N tuples of its input.
type Limit struct {
	Input Operator
	N     int64

	seen int64
}

// Open opens the input.
func (l *Limit) Open(env *Env) error {
	if l.Input == nil {
		return fmt.Errorf("exec: Limit needs Input")
	}
	if l.N < 0 {
		return fmt.Errorf("exec: negative limit %d", l.N)
	}
	l.seen = 0
	return l.Input.Open(env)
}

// Next forwards tuples until the limit is reached.
func (l *Limit) Next() (record.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.Input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.seen++
	return t, true, nil
}

// Close closes the input.
func (l *Limit) Close() error { return l.Input.Close() }

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate functions supported by the Aggregate operator.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL name of the aggregate.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggSpec is one aggregate column: a function over an input ordinal.
// For AggCount the ordinal is ignored.
type AggSpec struct {
	Kind    AggKind
	Ordinal int
}

// Aggregate is a hash aggregation over its input: one output tuple per
// distinct combination of the GroupBy ordinals (or exactly one tuple with no
// GroupBy), laid out as group-by values followed by aggregate values in spec
// order. Output groups are sorted by their key encoding for determinism.
type Aggregate struct {
	Input   Operator
	GroupBy []int
	Aggs    []AggSpec

	results []record.Tuple
	pos     int
}

type aggState struct {
	key    record.Tuple
	counts []int64
	sums   []float64
	mins   []record.Value
	maxs   []record.Value
	seen   []bool
}

// Open opens the input and validates the specification. The aggregation
// itself runs on the first Next call.
func (a *Aggregate) Open(env *Env) error {
	if a.Input == nil {
		return fmt.Errorf("exec: Aggregate needs Input")
	}
	if len(a.Aggs) == 0 && len(a.GroupBy) == 0 {
		return fmt.Errorf("exec: Aggregate with nothing to compute")
	}
	a.results = nil
	a.pos = 0
	return a.Input.Open(env)
}

// Next drains the input on first call and then emits result rows.
func (a *Aggregate) Next() (record.Tuple, bool, error) {
	if a.results == nil {
		if err := a.run(); err != nil {
			return nil, false, err
		}
	}
	if a.pos >= len(a.results) {
		return nil, false, nil
	}
	t := a.results[a.pos]
	a.pos++
	return t, true, nil
}

func (a *Aggregate) run() error {
	tb := newAggTable(a.GroupBy, a.Aggs)
	for {
		t, ok, err := a.Input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := tb.fold(t); err != nil {
			return err
		}
	}
	a.results = tb.rows()
	return nil
}

// aggTable is the hash-aggregation core shared by the Aggregate operator and
// the push-mode GroupByConsumer: fold tuples in, take deterministic sorted
// rows out. Not safe for concurrent folds — SharedAggState stripes these.
type aggTable struct {
	groupBy []int
	aggs    []AggSpec
	groups  map[string]*aggState
	keyBuf  []byte
}

func newAggTable(groupBy []int, aggs []AggSpec) *aggTable {
	return &aggTable{groupBy: groupBy, aggs: aggs, groups: make(map[string]*aggState)}
}

// fold accumulates one input tuple into its group.
func (tb *aggTable) fold(t record.Tuple) error {
	tb.keyBuf = tb.keyBuf[:0]
	var key record.Tuple
	for _, ord := range tb.groupBy {
		if ord < 0 || ord >= len(t) {
			return fmt.Errorf("exec: group-by ordinal %d out of range", ord)
		}
		key = append(key, t[ord])
		tb.keyBuf = appendKey(tb.keyBuf, t[ord])
	}
	st := tb.groups[string(tb.keyBuf)]
	if st == nil {
		st = &aggState{
			key:    key,
			counts: make([]int64, len(tb.aggs)),
			sums:   make([]float64, len(tb.aggs)),
			mins:   make([]record.Value, len(tb.aggs)),
			maxs:   make([]record.Value, len(tb.aggs)),
			seen:   make([]bool, len(tb.aggs)),
		}
		tb.groups[string(tb.keyBuf)] = st
	}
	for i, spec := range tb.aggs {
		if spec.Kind == AggCount {
			st.counts[i]++
			continue
		}
		if spec.Ordinal < 0 || spec.Ordinal >= len(t) {
			return fmt.Errorf("exec: aggregate ordinal %d out of range", spec.Ordinal)
		}
		v := t[spec.Ordinal]
		st.counts[i]++
		switch spec.Kind {
		case AggSum, AggAvg:
			st.sums[i] += numeric(v)
		case AggMin:
			if !st.seen[i] || record.Compare(v, st.mins[i]) < 0 {
				st.mins[i] = v
			}
		case AggMax:
			if !st.seen[i] || record.Compare(v, st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
		default:
			return fmt.Errorf("exec: unknown aggregate %v", spec.Kind)
		}
		st.seen[i] = true
	}
	return nil
}

// rows finalizes the table: one row per group, sorted by key encoding, with
// the SQL empty-ungrouped special case.
func (tb *aggTable) rows() []record.Tuple {
	return finalizeGroups(tb.groups, tb.groupBy, tb.aggs)
}

// finalizeGroups renders group states as sorted result rows; shared between
// aggTable and the striped SharedAggState (whose key spaces are disjoint and
// merge into one map).
func finalizeGroups(groups map[string]*aggState, groupBy []int, aggs []AggSpec) []record.Tuple {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	results := make([]record.Tuple, 0, len(keys))
	for _, k := range keys {
		st := groups[k]
		row := append(record.Tuple(nil), st.key...)
		for i, spec := range aggs {
			switch spec.Kind {
			case AggCount:
				row = append(row, record.Int64(st.counts[i]))
			case AggSum:
				row = append(row, record.Float64(st.sums[i]))
			case AggAvg:
				if st.counts[i] == 0 {
					row = append(row, record.Float64(0))
				} else {
					row = append(row, record.Float64(st.sums[i]/float64(st.counts[i])))
				}
			case AggMin:
				row = append(row, st.mins[i])
			case AggMax:
				row = append(row, st.maxs[i])
			}
		}
		results = append(results, row)
	}
	if len(results) == 0 && len(groupBy) == 0 {
		// SQL semantics: an ungrouped aggregate over an empty input
		// still yields one row.
		row := record.Tuple{}
		for _, spec := range aggs {
			if spec.Kind == AggCount {
				row = append(row, record.Int64(0))
			} else {
				row = append(row, record.Float64(0))
			}
		}
		results = append(results, row)
	}
	return results
}

// numeric widens a value for summation.
func numeric(v record.Value) float64 {
	switch v.Kind {
	case record.KindInt64, record.KindDate:
		return float64(v.I)
	case record.KindFloat64:
		return v.F
	default:
		return 0
	}
}

// appendKey appends a self-delimiting encoding of v for group hashing.
func appendKey(dst []byte, v record.Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case record.KindString:
		dst = append(dst, v.S...)
		dst = append(dst, 0)
	default:
		bits := uint64(v.I)
		if v.Kind == record.KindFloat64 {
			bits = math.Float64bits(v.F)
		}
		for shift := 0; shift < 64; shift += 8 {
			dst = append(dst, byte(bits>>shift))
		}
	}
	return dst
}

// Close closes the input.
func (a *Aggregate) Close() error { return a.Input.Close() }

// Collect opens root, drains it, closes it, and returns copies of all output
// tuples. It is the standard way to run a plan to completion.
func Collect(env *Env, root Operator) ([]record.Tuple, error) {
	if err := root.Open(env); err != nil {
		return nil, err
	}
	var out []record.Tuple
	for {
		t, ok, err := root.Next()
		if err != nil {
			root.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, append(record.Tuple(nil), t...))
		env.Acct.TuplesOut++
	}
	if err := root.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
