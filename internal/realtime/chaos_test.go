package realtime

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
	"scanshare/internal/metrics"
)

// checkGroupInvariants validates the structural grouping invariants on one
// consistent Manager snapshot: every group names its trailer first and its
// leader last, members are in circular position order with forward hops
// summing to the group extent, the total extent respects the pool budget,
// no scan is in two groups, and detached scans are in none.
func checkGroupInvariants(t *testing.T, snap core.Snapshot, tablePages, budget int) {
	t.Helper()
	scans := make(map[core.ScanID]core.ScanInfo, len(snap.Scans))
	for _, sc := range snap.Scans {
		scans[sc.ID] = sc
	}
	grouped := make(map[core.ScanID]bool)
	total := 0
	for _, g := range snap.Groups {
		if len(g.Members) == 0 {
			t.Errorf("empty group on table %d", g.Table)
			continue
		}
		if g.Trailer != g.Members[0] {
			t.Errorf("group trailer %d is not the first member %d", g.Trailer, g.Members[0])
		}
		if g.Leader != g.Members[len(g.Members)-1] {
			t.Errorf("group leader %d is not the last member %d", g.Leader, g.Members[len(g.Members)-1])
		}
		span := 0
		for i, id := range g.Members {
			if grouped[id] {
				t.Errorf("scan %d is a member of two groups", id)
			}
			grouped[id] = true
			sc, ok := scans[id]
			if !ok {
				t.Errorf("group member %d is not a registered scan", id)
				continue
			}
			if sc.Detached {
				t.Errorf("detached scan %d is still grouped", id)
			}
			if sc.Table != g.Table {
				t.Errorf("scan %d of table %d grouped under table %d", id, sc.Table, g.Table)
			}
			if i > 0 {
				prev, ok := scans[g.Members[i-1]]
				if !ok {
					continue
				}
				d := sc.Position - prev.Position
				if d < 0 {
					d += tablePages
				}
				span += d
			}
		}
		if span != g.ExtentPages {
			t.Errorf("group extent %d pages, but member hops span %d (members %v)",
				g.ExtentPages, span, g.Members)
		}
		total += g.ExtentPages
	}
	if total > budget {
		t.Errorf("total group extent %d pages exceeds the pool budget %d", total, budget)
	}
}

// TestChaosStress is the fault-injected counterpart of TestRunnerStress: 20
// free-running goroutine scans (-race exercised) driven through a fault plan
// combining a permanently bad page band, a stall band that recovers on retry,
// transient error bursts, and latency spikes. The runner must absorb all of
// it: transient faults vanish into retries, stalls are cut by the per-read
// timeout, the bad band degrades deterministically, and scans crossing it
// detach from — and later rejoin — group coordination while a concurrent
// poller verifies the grouping invariants never break. The whole scenario
// runs under both translation tables: the array variant routes read-mostly
// hits through the lock-free optimistic path while evictions recycle frames
// underneath it, which is exactly the interleaving the race pass exists to
// interrogate.
func TestChaosStress(t *testing.T) {
	for _, translation := range buffer.Translations() {
		t.Run(translation, func(t *testing.T) { runChaosStress(t, translation) })
	}
}

func runChaosStress(t *testing.T, translation string) {
	const (
		tablePages = 400
		poolPages  = 200
		pageBytes  = 64
		scans      = 20
		base       = disk.PageID(1000)

		badFirst, badLast = 300, 310 // device pages base+badFirst..base+badLast fail every attempt
	)
	plan := fault.Plan{
		Seed: 7,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: base + badFirst, LastPage: base + badLast, Prob: 1},
			{Kind: fault.KindStall, FirstPage: base + 100, LastPage: base + 140, Prob: 0.3, UntilAttempt: 1},
			{Kind: fault.KindError, Prob: 0.15, UntilAttempt: 2},
			{Kind: fault.KindLatency, Prob: 0.05, Latency: 200 * time.Microsecond},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: pageBytes}, plan)

	pool := buffer.MustNewPoolOpts(buffer.PoolOptions{Capacity: poolPages, Translation: translation})
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	col := new(metrics.Collector)
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Collector:             col,
		PrefetchWorkers:       4,
		ReadTimeout:           2 * time.Millisecond,
		MaxReadRetries:        3,
		RetryBackoff:          50 * time.Microsecond,
		MaxRetryBackoff:       200 * time.Microsecond,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }
	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            pageID,
			EstimatedDuration: 10 * time.Millisecond,
			Importance:        core.Importance(i % 3),
			StartDelay:        time.Duration(i) * 400 * time.Microsecond,
			PageDelay:         time.Duration(10+5*(i%4)) * time.Microsecond,
		}
	}
	// Partial ranges that dodge the bad band, and mid-flight terminations.
	specs[5].StartPage, specs[5].EndPage = 50, 250
	specs[11].StartPage, specs[11].EndPage = 50, 250
	specs[7].StopAfterPages = 60
	specs[17].StopAfterPages = 5

	// Poll snapshots throughout: the grouping invariants must hold at every
	// instant of the detach/rejoin churn, not just at the end.
	pollDone := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-pollDone:
				return
			default:
				checkGroupInvariants(t, mgr.Snapshot(), tablePages, poolPages)
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	results, err := r.Run(context.Background(), specs)
	close(pollDone)
	poller.Wait()
	if err != nil {
		t.Fatal(err)
	}

	pool.CheckInvariants()
	if n := mgr.ActiveScans(); n != 0 {
		t.Errorf("%d scans still registered", n)
	}

	// At rest every miss either completed (Fill) or was walked back
	// (Abort), and the abort correction keeps the delivered-pages identity
	// exact. This fault plan guarantees failed reads, so Aborts must move.
	ps := pool.Stats()
	if ps.Misses != ps.Fills+ps.Aborts {
		t.Errorf("pool accounting: misses %d != fills %d + aborts %d", ps.Misses, ps.Fills, ps.Aborts)
	}
	if ps.Aborts == 0 {
		t.Error("fault plan produced no aborted reads; the abort path went unexercised")
	}
	if got, want := ps.PagesDelivered(), ps.Hits+ps.Fills; got != want {
		t.Errorf("pages delivered %d, want hits %d + fills %d", got, ps.Hits, ps.Fills)
	}

	// The bad band degrades deterministically: the fault decision is a pure
	// function of (seed, rule, page, attempt), so exactly the band pages in
	// range fail for every scan, and the checksum over the surviving pages
	// is exact.
	fullSum := wantChecksum(base, 0, tablePages, pageBytes) - wantChecksum(base, badFirst, badLast+1, pageBytes)
	partialSum := wantChecksum(base, 50, 250, pageBytes)
	var sum struct{ retries, timeouts, degraded, detaches, rejoins, pages int64 }
	for i, res := range results {
		spec := specs[i]
		if res.Hits+res.Misses != int64(res.PagesRead+res.DegradedPages) {
			t.Errorf("scan %d: hits %d + misses %d != pages %d + degraded %d",
				i, res.Hits, res.Misses, res.PagesRead, res.DegradedPages)
		}
		sum.retries += res.ReadRetries
		sum.timeouts += res.ReadTimeouts
		sum.degraded += int64(res.DegradedPages)
		sum.detaches += int64(res.Detaches)
		sum.rejoins += int64(res.Rejoins)
		sum.pages += int64(res.PagesRead)
		if spec.StopAfterPages > 0 {
			continue // termination point vs. band is timing-dependent
		}
		if spec.EndPage != 0 {
			// The partial range misses the bad band entirely.
			if res.DegradedPages != 0 || res.Checksum != partialSum {
				t.Errorf("scan %d: degraded %d, checksum %d, want 0 and %d",
					i, res.DegradedPages, res.Checksum, partialSum)
			}
			continue
		}
		if want := badLast - badFirst + 1; res.DegradedPages != want {
			t.Errorf("scan %d: %d degraded pages, want exactly the %d-page bad band",
				i, res.DegradedPages, want)
		}
		if res.PagesRead != tablePages-(badLast-badFirst+1) {
			t.Errorf("scan %d: read %d pages, want %d", i, res.PagesRead, tablePages-(badLast-badFirst+1))
		}
		if res.Checksum != fullSum {
			t.Errorf("scan %d: checksum %d, want %d (read wrong pages?)", i, res.Checksum, fullSum)
		}
		if res.Detaches < 1 {
			t.Errorf("scan %d crossed the bad band without detaching", i)
		}
	}
	if sum.detaches == 0 || sum.degraded == 0 || sum.retries == 0 {
		t.Errorf("chaos run injected nothing: %+v", sum)
	}
	if sum.rejoins > sum.detaches {
		t.Errorf("%d rejoins exceed %d detaches", sum.rejoins, sum.detaches)
	}

	// Collector, manager, and per-scan counters must agree.
	cs := col.Snapshot()
	if cs.ReadRetries != sum.retries || cs.ReadTimeouts != sum.timeouts ||
		cs.PagesFailed != sum.degraded || cs.ScanDetaches != sum.detaches || cs.ScanRejoins != sum.rejoins {
		t.Errorf("collector failure counters %+v disagree with result sums %+v", cs, sum)
	}
	// The collector counts every acquired page, including ones whose read
	// later failed — the degraded pages appear as misses.
	if cs.PagesRead != sum.pages+sum.degraded {
		t.Errorf("collector pages %d, results total %d + %d degraded", cs.PagesRead, sum.pages, sum.degraded)
	}
	st := mgr.Stats()
	if st.ScanDetaches != sum.detaches || st.ScanRejoins != sum.rejoins {
		t.Errorf("manager detach/rejoin stats %d/%d, results %d/%d",
			st.ScanDetaches, st.ScanRejoins, sum.detaches, sum.rejoins)
	}
	if st.ScansStarted != scans || st.ScansFinished != scans {
		t.Errorf("manager stats unbalanced: %+v", st)
	}

	fc := store.Counters()
	if fc.InjectedErrors == 0 || fc.Stalls == 0 || fc.LatencyEvents == 0 {
		t.Errorf("fault plan barely fired: %+v", fc)
	}

	// Translation-specific accounting: per-scan optimistic hits, the pool's
	// lock-free counters, and the collector must tell one story — and the
	// array variant must actually have driven traffic through the fast path,
	// or this whole subtest proved nothing about it.
	var optSum int64
	for _, res := range results {
		optSum += res.OptimisticHits
	}
	if translation == buffer.TranslationMap {
		if optSum != 0 || ps.OptHits != 0 || cs.OptimisticHits != 0 {
			t.Errorf("map translation recorded optimistic hits: scans %d, pool %d, collector %d",
				optSum, ps.OptHits, cs.OptimisticHits)
		}
		return
	}
	if optSum == 0 {
		t.Error("array-translation chaos run never hit the optimistic path")
	}
	if cs.OptimisticHits != optSum {
		t.Errorf("collector optimistic hits %d, per-scan sum %d", cs.OptimisticHits, optSum)
	}
	// Scan workers are the only ReadOptimistic callers (prefetch stages
	// pages through Acquire), so the pool's count must match the per-scan
	// sum exactly, and every optimistic hit is also a hit.
	if ps.OptHits != optSum {
		t.Errorf("pool optimistic hits %d, per-scan sum %d", ps.OptHits, optSum)
	}
	if ps.OptHits > ps.Hits {
		t.Errorf("optimistic hits %d exceed total hits %d", ps.OptHits, ps.Hits)
	}
}

// chaosRun executes one Sched-harnessed run with fault injection and returns
// the scheduling trace, the manager event trace, and the results. Latency
// faults advance the virtual clock, and stalls resolve through the wall-clock
// read timeout while every other worker stays parked, so the whole run is a
// pure function of the two seeds.
func chaosRun(t *testing.T, schedSeed, faultSeed int64) ([]TraceStep, []core.Event, []ScanResult) {
	t.Helper()
	const (
		tablePages = 160
		poolPages  = 96
		scans      = 6
		badFirst   = 100
		badLast    = 104
	)
	plan := fault.Plan{
		Seed: faultSeed,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: badFirst, LastPage: badLast, Prob: 1},
			{Kind: fault.KindStall, FirstPage: 40, LastPage: 60, Prob: 0.25, UntilAttempt: 1},
			{Kind: fault.KindError, Prob: 0.1, UntilAttempt: 2},
			{Kind: fault.KindLatency, Prob: 0.1, Latency: 300 * time.Microsecond},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: 16}, plan)

	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	var events []core.Event
	mgr.SetOnEvent(func(ev core.Event) { events = append(events, ev) })

	sched := NewSched(schedSeed, scans, 500*time.Microsecond)
	store.SetSleep(sched.Sleep) // latency spikes advance the virtual clock
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Clock:                 sched.Clock(),
		Sleep:                 sched.Sleep,
		Hook:                  sched.Hook,
		ReadTimeout:           time.Millisecond,
		MaxReadRetries:        3,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
			EstimatedDuration: time.Duration(5+i) * time.Millisecond,
			StartDelay:        time.Duration(i) * time.Millisecond,
			PageDelay:         time.Duration(50+10*(i%3)) * time.Microsecond,
		}
	}
	specs[4].StartPage, specs[4].EndPage = 30, 130

	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if n := mgr.ActiveScans(); n != 0 {
		t.Fatalf("sched seed %d: %d scans leaked", schedSeed, n)
	}
	pool.CheckInvariants()
	return sched.Trace(), events, results
}

// TestChaosReplaysSeed is the fault-layer determinism guarantee end to end:
// one (schedule seed, fault seed) pair replays to an identical schedule
// trace, an identical manager event trace — detach and rejoin transitions
// included, timestamps and all — and identical per-scan results.
func TestChaosReplaysSeed(t *testing.T) {
	trace1, events1, res1 := chaosRun(t, 42, 9)
	trace2, events2, res2 := chaosRun(t, 42, 9)
	if len(trace1) == 0 {
		t.Fatal("empty schedule trace")
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Errorf("chaos run did not replay: traces diverge\nfirst:\n%s\nsecond:\n%s",
			FormatTrace(trace1), FormatTrace(trace2))
	}
	if !reflect.DeepEqual(events1, events2) {
		t.Errorf("manager event traces diverge (%d vs %d events)", len(events1), len(events2))
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("per-scan results diverge:\nfirst:  %+v\nsecond: %+v", res1, res2)
	}

	// The plan's bad band guarantees degradation and detaches happened at
	// all — a replay of two healthy runs would prove nothing.
	var detaches, rejoins, degraded int
	for _, res := range res1 {
		detaches += res.Detaches
		rejoins += res.Rejoins
		degraded += res.DegradedPages
	}
	if detaches == 0 || degraded == 0 {
		t.Errorf("chaos plan injected no degradation (%d detaches, %d degraded pages)", detaches, degraded)
	}
	var evDetach, evRejoin int
	for _, ev := range events1 {
		switch ev.Kind {
		case core.EventScanDetached:
			evDetach++
		case core.EventScanRejoined:
			evRejoin++
		}
	}
	if evDetach != detaches || evRejoin != rejoins {
		t.Errorf("event trace has %d detaches / %d rejoins, results say %d / %d",
			evDetach, evRejoin, detaches, rejoins)
	}

	// A different schedule seed must explore a different interleaving, and a
	// different fault seed a different failure schedule.
	trace3, _, _ := chaosRun(t, 1337, 9)
	if reflect.DeepEqual(trace1, trace3) {
		t.Logf("sched seeds 42 and 1337 produced identical traces (%d steps)", len(trace1))
	}
	_, _, res4 := chaosRun(t, 42, 10)
	same := true
	for i := range res1 {
		if res1[i].ReadRetries != res4[i].ReadRetries || res1[i].ReadTimeouts != res4[i].ReadTimeouts {
			same = false
		}
	}
	if same {
		t.Logf("fault seeds 9 and 10 injected identical retry schedules")
	}
}

// TestChaosSweep replays a small sweep of (schedule, fault) seed pairs; every
// pair must reproduce its own trace. This is the debugging loop a chaos
// failure would be hunted with, kept in-tree so it cannot rot.
func TestChaosSweep(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		a, _, _ := chaosRun(t, seed, seed+100)
		b, _, _ := chaosRun(t, seed, seed+100)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed pair (%d,%d) did not replay", seed, seed+100)
		}
	}
}

// TestChaosScenarios drives focused single-failure-mode scenarios through
// free-running runs: a transient error burst that retries absorb completely,
// one permanently slow scan (its table sits in a latency band) that must not
// disturb healthy scans, and a stall-then-recover band cut by read timeouts.
func TestChaosScenarios(t *testing.T) {
	const (
		tablePages = 120
		poolPages  = 64
		pageBytes  = 32
		baseA      = disk.PageID(0)    // healthy table
		baseB      = disk.PageID(5000) // second table for the slow-scan case
	)
	fullSum := wantChecksum(baseA, 0, tablePages, pageBytes)
	slowSum := wantChecksum(baseB, 0, tablePages, pageBytes)

	cases := []struct {
		name         string
		rules        []fault.Rule
		slowScan     bool // add a scan of table B alongside the table-A scans
		wantRetries  bool
		wantTimeouts bool
	}{
		{
			name:        "error-burst",
			rules:       []fault.Rule{{Kind: fault.KindError, Prob: 0.3, UntilAttempt: 3}},
			wantRetries: true,
		},
		{
			name: "slow-scan",
			rules: []fault.Rule{{
				Kind: fault.KindLatency, FirstPage: baseB, LastPage: baseB + tablePages - 1,
				Prob: 1, Latency: 300 * time.Microsecond,
			}},
			slowScan: true,
		},
		{
			name: "stall-then-recover",
			rules: []fault.Rule{{
				Kind: fault.KindStall, Prob: 0.1, UntilAttempt: 1,
			}},
			wantRetries:  true,
			wantTimeouts: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := fault.MustNewStore(testStore{pageBytes: pageBytes},
				fault.Plan{Seed: 3, Rules: tc.rules})
			pool := buffer.MustNewPool(poolPages)
			mgr := core.MustNewManager(testManagerConfig(poolPages))
			col := new(metrics.Collector)
			r, err := NewRunner(Config{
				Pool:                pool,
				Manager:             mgr,
				Store:               store,
				Collector:           col,
				PrefetchWorkers:     2,
				ReadTimeout:         2 * time.Millisecond,
				MaxReadRetries:      4,
				RetryBackoff:        50 * time.Microsecond,
				DetachAfterFailures: 3,
			})
			if err != nil {
				t.Fatal(err)
			}

			specs := make([]ScanSpec, 6)
			for i := range specs {
				specs[i] = ScanSpec{
					Table:      1,
					TablePages: tablePages,
					PageID:     func(pageNo int) disk.PageID { return baseA + disk.PageID(pageNo) },
					StartDelay: time.Duration(i) * 300 * time.Microsecond,
					PageDelay:  20 * time.Microsecond,
				}
			}
			if tc.slowScan {
				specs = append(specs, ScanSpec{
					Table:      2,
					TablePages: tablePages,
					PageID:     func(pageNo int) disk.PageID { return baseB + disk.PageID(pageNo) },
				})
			}

			results, err := r.Run(context.Background(), specs)
			if err != nil {
				t.Fatal(err)
			}
			pool.CheckInvariants()
			for i, res := range results {
				// Every scenario is survivable: no failures surface, no
				// pages are lost, every byte arrives intact.
				if res.Err != nil || res.Stopped {
					t.Errorf("scan %d did not complete: err=%v stopped=%v", i, res.Err, res.Stopped)
				}
				if res.PagesRead != tablePages || res.DegradedPages != 0 {
					t.Errorf("scan %d: %d pages read, %d degraded; want %d and 0",
						i, res.PagesRead, res.DegradedPages, tablePages)
				}
				want := fullSum
				if tc.slowScan && i == len(results)-1 {
					want = slowSum
				}
				if res.Checksum != want {
					t.Errorf("scan %d: checksum %d, want %d", i, res.Checksum, want)
				}
			}

			cs := col.Snapshot()
			if tc.wantRetries && cs.ReadRetries == 0 {
				t.Error("no retries recorded under an error scenario")
			}
			if tc.wantTimeouts && cs.ReadTimeouts == 0 {
				t.Error("no read timeouts recorded under a stall scenario")
			}
			if tc.slowScan {
				if fc := store.Counters(); fc.LatencyEvents == 0 {
					t.Error("latency rule never fired for the slow table")
				}
			}
		})
	}
}
