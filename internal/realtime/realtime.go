// Package realtime executes scan streams as real goroutines against the
// shared buffer pool and scan sharing manager.
//
// The discrete-event kernel in internal/sim reproduces the paper's results in
// virtual time, where a single goroutine serializes every interaction with
// the Manager and the Pool. A production engine has no such serializer: many
// workers hammer one pool and one manager concurrently, throttle advice is
// honored with actual sleeps, and scans start, wrap, and die mid-flight at
// arbitrary real times. This package is that execution mode:
//
//   - Runner runs N scans as goroutines. Each scan registers with the
//     Manager, reads its pages through the Pool (filling misses from a
//     PageStore), reports progress at prefetch-extent granularity, sleeps
//     through throttle advice with context-aware waits, releases pages at
//     the advised priority, and deregisters on completion, cancellation, or
//     a configured mid-flight stop.
//   - A bounded worker-pool prefetch pipeline reads upcoming extents into
//     the pool ahead of the scans. Requests from group members covering the
//     same pages coalesce: the queue is deduplicated per page in flight, and
//     already-resident pages are left untouched (ReleaseRetain).
//   - A Hook test point fires at every Manager call site, which is what the
//     deterministic schedule-perturbation harness (Sched) latches onto: with
//     a Hook, a seeded Sched serializes the workers at those points in a
//     pseudo-random but fully reproducible order, so an interleaving bug
//     reproduces from its seed alone.
//
// See CONCURRENCY.md at the repository root for the locking discipline and
// for how to replay a failing interleaving.
package realtime

import (
	"context"
	"fmt"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/metrics"
	"scanshare/internal/trace"
	"scanshare/internal/vclock"
)

// Site labels a hook point inside a scan worker. "Before" sites fire before
// the named call, "after" sites (past tense) fire once it returned; a
// perturbation hook may block at any of them.
type Site string

// Hook sites, in the order a scan visits them.
const (
	// SiteSpawn fires when the scan goroutine starts, before its start
	// delay.
	SiteSpawn Site = "spawn"
	// SiteStartScan and SiteStarted bracket Manager.StartScan.
	SiteStartScan Site = "start-scan"
	SiteStarted   Site = "started"
	// SiteBusy fires before backing off on a Busy page acquire.
	SiteBusy Site = "busy"
	// SiteRetry fires before backing off on a failed or timed-out store
	// read, one firing per retry attempt.
	SiteRetry Site = "retry"
	// SiteDetach and SiteDetached bracket Manager.DetachScan when a scan's
	// consecutive read failures cross the degradation threshold.
	SiteDetach   Site = "detach"
	SiteDetached Site = "detached"
	// SiteRejoin and SiteRejoined bracket Manager.RejoinScan when a
	// detached scan's reads recover.
	SiteRejoin   Site = "rejoin"
	SiteRejoined Site = "rejoined"
	// SiteReport and SiteReported bracket Manager.ReportProgress.
	SiteReport   Site = "report"
	SiteReported Site = "reported"
	// SiteThrottle fires before sleeping a throttle wait.
	SiteThrottle Site = "throttle"
	// SiteEndScan and SiteEnded bracket Manager.EndScan.
	SiteEndScan Site = "end-scan"
	SiteEnded   Site = "ended"
	// SiteExit fires exactly once when the scan goroutine finishes, after
	// any SiteEnded. Scheduler hooks use it to retire the worker; it must
	// not block.
	SiteExit Site = "exit"
)

// Hook observes (and, in perturbation harnesses, delays) a scan worker at a
// site. It is called from the worker's own goroutine.
type Hook func(scan int, site Site)

// PageStore supplies page contents for buffer-pool misses. Implementations
// must be safe for concurrent use; the returned bytes are handed to
// Pool.Fill and must not be mutated afterwards.
type PageStore interface {
	ReadPage(pid disk.PageID) ([]byte, error)
}

// StoreFunc adapts a function to the PageStore interface.
type StoreFunc func(pid disk.PageID) ([]byte, error)

// ReadPage calls f.
func (f StoreFunc) ReadPage(pid disk.PageID) ([]byte, error) { return f(pid) }

// ContextStore is an optional PageStore extension for stores that honor
// cancellation and distinguish retry attempts (fault.Store implements it).
// When the configured store provides it, the runner passes the per-read
// context — carrying the ReadTimeout deadline — and the attempt number, so
// an injected stall unblocks at the deadline without leaking a goroutine and
// attempt-windowed fault rules see true attempt counts.
type ContextStore interface {
	PageStore
	ReadPageAt(ctx context.Context, pid disk.PageID, attempt int) ([]byte, error)
}

// Config assembles the shared structures a Runner operates on and its
// tuning knobs. Pool, Manager, and Store are required.
type Config struct {
	Pool    *buffer.Pool
	Manager *core.Manager
	Store   PageStore

	// Clock supplies the timestamps passed to the Manager. Defaults to a
	// wall clock; perturbation harnesses substitute a deterministic one.
	Clock vclock.Clock

	// Collector receives activity counters; optional. All runner and
	// prefetcher counters funnel into it.
	Collector *metrics.Collector

	// Tracer receives the runner's own observability events (currently
	// page-failure declarations); optional. Manager decision events and
	// pool evictions are journaled by attaching the same Tracer to those
	// components — the runner deliberately does not rewire structures it
	// does not own.
	Tracer *trace.Tracer

	// PrefetchWorkers sets the size of the prefetch worker pool; 0
	// disables prefetching. PrefetchQueueExtents bounds the request
	// channel (defaults to 2×workers); when the queue is full, requests
	// are dropped, not blocked on — prefetch is best-effort.
	PrefetchWorkers      int
	PrefetchQueueExtents int

	// BusyRetryDelay is the backoff before re-requesting a page whose
	// read is in flight elsewhere. Defaults to 200µs.
	BusyRetryDelay time.Duration

	// ReadTimeout bounds one page-store read attempt; 0 disables the
	// bound. For a ContextStore the deadline is passed through the read's
	// context; for a plain PageStore the read runs in a helper goroutine
	// and the runner abandons it at the deadline (the goroutine is
	// reclaimed when the underlying read eventually returns).
	ReadTimeout time.Duration

	// MaxReadRetries is how many times a failed or timed-out store read
	// is retried (with exponential backoff) before the page is declared
	// failed. 0 keeps the pre-fault behavior: the first error is final.
	MaxReadRetries int

	// RetryBackoff is the wait before the first read retry; it doubles
	// per attempt up to MaxRetryBackoff. Defaults: 200µs, capped at 10ms.
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration

	// DetachAfterFailures is the number of consecutive failed read
	// attempts after which the scan is detached from group coordination
	// until a read succeeds again; 0 disables degradation-driven
	// detaching.
	DetachAfterFailures int

	// ContinueOnPageFailure makes a scan skip a page whose retries are
	// exhausted — recording it as degraded — instead of failing the whole
	// scan. Off by default: a permanent page failure fails the scan.
	ContinueOnPageFailure bool

	// CoalesceReads enables singleflight read coalescing: a scan that
	// misses on a page another caller is already reading blocks on that
	// read's completion and shares its outcome, instead of sleep-polling
	// with BusyRetryDelay. Group members then never duplicate physical
	// I/O on shared pages. Off by default because waiters block on
	// channels rather than at Hook sites, which the deterministic Sched
	// harness cannot serialize — replay-based tests must leave this off
	// (see CONCURRENCY.md).
	CoalesceReads bool

	// DisablePoolFeed stops the runner from feeding scan footprints and
	// position/speed samples to a scan-aware pool (buffer.PolicyPredictive).
	// The feed is on by default whenever the pool consumes it and is a
	// no-op otherwise; disabling it isolates the predictive policy's
	// LRU-degenerate behavior in experiments.
	DisablePoolFeed bool

	// PushDelivery switches the runner from pull to push mode: one reader
	// goroutine per scanned table drains the table's page range, pushing
	// immutable page-batch references through bounded per-subscriber
	// channels. Scans become subscribers — they attach mid-stream with a
	// catch-up cursor and complete after exactly one lap over their
	// footprint — and throttling becomes flow control: the reader blocks
	// on the slowest subscriber's full channel, bounded per subscriber by
	// the manager's fairness cap, past which the subscriber is demoted to
	// pulling its remainder itself. Prefetching is redundant in this mode
	// (the reader is the read-ahead stream) and is not started. See
	// CONCURRENCY.md for the hub's locking and promotion protocol.
	PushDelivery bool

	// PushBatchPages is the page count of one pushed batch. Defaults to
	// the manager's PrefetchExtentPages.
	PushBatchPages int

	// SubscriberQueueBatches bounds each subscriber's batch channel;
	// defaults to 4. Smaller values couple the reader more tightly to the
	// slowest subscriber; larger ones let speeds diverge further before
	// flow control engages.
	SubscriberQueueBatches int

	// PushStallBudget overrides the per-subscriber bound on reader stall
	// time before the subscriber is demoted. Zero derives the bound from
	// the manager's fairness cap (MaxThrottleFraction of the scan's
	// estimated duration), exactly as pull-mode throttling does.
	PushStallBudget time.Duration

	// Sleep waits for d or until ctx is done. Defaults to a timer-based
	// wait; perturbation harnesses substitute a virtual-clock advance.
	Sleep func(ctx context.Context, d time.Duration)

	// Hook, when set, fires at every Site. Nil means no instrumentation.
	Hook Hook

	// OnAdvice, when set, observes every progress report's advice from
	// the worker's goroutine (after SiteReported). Used by parity tests
	// and decision tracing.
	OnAdvice func(scan int, processed int, adv core.Advice)
}

// ScanSpec describes one scan stream.
type ScanSpec struct {
	// Table and TablePages identify and size the scanned table.
	Table      core.TableID
	TablePages int
	// StartPage and EndPage bound the scan to [StartPage, EndPage);
	// EndPage == 0 means the end of the table.
	StartPage, EndPage int
	// PageID maps a table-relative page number to its device page.
	PageID func(pageNo int) disk.PageID
	// EstimatedDuration and Importance are passed to the Manager.
	EstimatedDuration time.Duration
	Importance        core.Importance
	// StartDelay staggers the scan's start.
	StartDelay time.Duration
	// StopAfterPages > 0 terminates the scan mid-flight after that many
	// pages, modelling a query that ends early (LIMIT, error, kill).
	StopAfterPages int
	// PageDelay, when positive, is slept after each page to model
	// per-page processing cost; it creates the speed differentials that
	// make grouping and throttling interesting.
	PageDelay time.Duration
	// OnPage, when set, observes every page the scan processes, in visit
	// order, from the scan's own goroutine: pull-mode workers call it
	// before releasing the frame, push-mode subscribers as they accept
	// pages from a batch. data is an immutable pool frame reference —
	// consumers must not mutate or grow it, but may retain it (pool page
	// content cells are never rewritten in place). Degraded pages are
	// skipped, exactly like checksumming.
	OnPage func(pageNo int, data []byte)
	// Span, when valid, is the pre-allocated identity of this scan's span
	// (trace.Child of the enclosing request, or trace.Root for a bare
	// scan). The runner opens it around the scan lifecycle and parents
	// every throttle/pool-wait/read/delivery span under it; callers that
	// pre-allocate it can parent their own spans (shared-agg folds) to the
	// scan. The zero value disables span emission for this scan — which
	// keeps replay-determinism goldens byte-stable — without touching the
	// inline wait counters in ScanResult.
	Span trace.SpanContext
}

// ScanResult reports one scan's outcome.
type ScanResult struct {
	Scan      int // index into the spec slice
	ID        core.ScanID
	Placement core.Placement

	PagesRead   int
	Hits        int64
	Misses      int64
	BusyRetries int64
	// OptimisticHits is the subset of Hits served by the pool's lock-free
	// read path (array translation only): the page was delivered without
	// pinning, so no Release follows. Always zero under map translation.
	OptimisticHits int64
	// ReadRetries counts store read attempts that were retried after an
	// error or timeout; ReadTimeouts counts the timed-out subset.
	ReadRetries  int64
	ReadTimeouts int64
	// DegradedPages counts pages skipped after exhausting read retries
	// (only with Config.ContinueOnPageFailure). Such pages appear in
	// Misses but not PagesRead.
	DegradedPages int
	// CoalescedReads counts misses resolved by joining another caller's
	// in-flight read (Config.CoalesceReads); a successfully coalesced
	// page is then accounted as a Hit on re-acquire. CoalescedFailures
	// counts coalesced waits that ended in the leading read's error —
	// such pages appear in DegradedPages (or fail the scan) without a
	// Miss of their own, since this scan never owned a pool frame for
	// them.
	CoalescedReads, CoalescedFailures int64
	// Detaches and Rejoins count degradation transitions: how often the
	// scan was detached from group coordination and re-admitted.
	Detaches, Rejoins int
	// Checksum folds one byte of every processed page, so the race
	// detector sees workers reading shared frame bytes and tests can
	// assert all workers observed identical table contents.
	Checksum uint64

	// PushBatches counts batches this subscriber accepted from the push
	// stream; PushSelfPulled counts footprint pages it fetched itself
	// after demotion (or zero). Both are zero in pull mode.
	PushBatches    int
	PushSelfPulled int
	// PushDemoted marks a subscriber that exhausted its stall budget and
	// finished by pulling.
	PushDemoted bool

	ThrottleWait time.Duration
	// PoolWait is time blocked on buffer-pool contention: busy retries,
	// all-pinned backoff, and coalesced-flight waits. ReadWait is time in
	// physical page reads this scan led (including retry backoff); in push
	// mode it is the reader-side read time attributed to this subscriber
	// while it owned the stream's reads. DeliveryWait is push-mode time
	// blocked on the subscriber's batch channel. All three are measured
	// only on their slow paths — the pool-hit fast path records nothing —
	// and accumulate whether or not tracing is on, so the server's
	// per-tenant breakdown needs no tracer.
	PoolWait     time.Duration
	ReadWait     time.Duration
	DeliveryWait time.Duration

	Started, Done time.Duration // Config.Clock times
	Stopped       bool          // terminated before covering its range
	Err           error
}

// Runner executes batches of scans against one pool/manager pair.
type Runner struct {
	cfg Config
	// ctxStore is cfg.Store's ContextStore extension, or nil; asserted
	// once so the per-page read path avoids a repeated type switch.
	ctxStore ContextStore
	// flights is the singleflight registry for physical reads, shared by
	// scan workers and prefetch workers; nil when CoalesceReads is off.
	flights *flightTable
	// skipPageCount suppresses the collector's per-page hit/miss counting
	// in fetchPage. Set only on the push hub's reader-side Runner copy:
	// subscribers account the pages they are delivered, so the reader's
	// own acquires would double-count every page against pull mode.
	skipPageCount bool
}

// NewRunner validates cfg, applies defaults, and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("realtime: Config without Pool")
	}
	if cfg.Manager == nil {
		return nil, fmt.Errorf("realtime: Config without Manager")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("realtime: Config without Store")
	}
	if cfg.PrefetchWorkers < 0 {
		return nil, fmt.Errorf("realtime: negative PrefetchWorkers %d", cfg.PrefetchWorkers)
	}
	if cfg.BusyRetryDelay < 0 {
		return nil, fmt.Errorf("realtime: negative BusyRetryDelay %v", cfg.BusyRetryDelay)
	}
	if cfg.ReadTimeout < 0 || cfg.RetryBackoff < 0 || cfg.MaxRetryBackoff < 0 {
		return nil, fmt.Errorf("realtime: negative read-failure knob")
	}
	if cfg.MaxReadRetries < 0 {
		return nil, fmt.Errorf("realtime: negative MaxReadRetries %d", cfg.MaxReadRetries)
	}
	if cfg.DetachAfterFailures < 0 {
		return nil, fmt.Errorf("realtime: negative DetachAfterFailures %d", cfg.DetachAfterFailures)
	}
	if cfg.PushBatchPages < 0 || cfg.SubscriberQueueBatches < 0 || cfg.PushStallBudget < 0 {
		return nil, fmt.Errorf("realtime: negative push-delivery knob")
	}
	if cfg.Clock == nil {
		cfg.Clock = &vclock.Wall{}
	}
	if cfg.Collector == nil {
		cfg.Collector = new(metrics.Collector)
	}
	if cfg.BusyRetryDelay == 0 {
		cfg.BusyRetryDelay = 200 * time.Microsecond
	}
	if cfg.PrefetchQueueExtents <= 0 {
		cfg.PrefetchQueueExtents = 2 * cfg.PrefetchWorkers
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 200 * time.Microsecond
	}
	if cfg.MaxRetryBackoff == 0 {
		cfg.MaxRetryBackoff = 10 * time.Millisecond
	}
	if cfg.MaxRetryBackoff < cfg.RetryBackoff {
		cfg.MaxRetryBackoff = cfg.RetryBackoff
	}
	if cfg.PushBatchPages == 0 {
		cfg.PushBatchPages = cfg.Manager.Config().PrefetchExtentPages
	}
	if cfg.SubscriberQueueBatches == 0 {
		cfg.SubscriberQueueBatches = 4
	}
	if cfg.Sleep == nil {
		cfg.Sleep = ctxSleep
	}
	r := &Runner{cfg: cfg}
	r.ctxStore, _ = cfg.Store.(ContextStore)
	if cfg.CoalesceReads {
		r.flights = newFlightTable()
	}
	return r, nil
}

// Collector returns the runner's collector (the configured one, or the
// default the runner created).
func (r *Runner) Collector() *metrics.Collector { return r.cfg.Collector }

// ctxSleep waits for d or until ctx is done, whichever comes first.
func ctxSleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// poolPriority maps the Manager's engine-agnostic hint onto the pool's
// priority levels (same mapping as the virtual-time executor).
func poolPriority(hint core.PagePriority) buffer.Priority {
	switch hint {
	case core.PageLow:
		return buffer.PriorityLow
	case core.PageHigh:
		return buffer.PriorityHigh
	default:
		return buffer.PriorityNormal
	}
}
