package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/metrics"
)

// pushTestRunner builds a runner in push mode over testStore pages.
func pushTestRunner(t *testing.T, poolPages int, mut func(*Config)) (*Runner, *buffer.Pool, *metrics.Collector) {
	t.Helper()
	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	col := new(metrics.Collector)
	cfg := Config{
		Pool:         pool,
		Manager:      mgr,
		Store:        testStore{pageBytes: 64},
		Collector:    col,
		PushDelivery: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, pool, col
}

// TestPushDeliveryBasic: several full-table subscribers with staggered
// starts complete with exact coverage, correct checksums, and one physical
// lap over the table.
func TestPushDeliveryBasic(t *testing.T) {
	const (
		tablePages = 200
		poolPages  = 256 // >= tablePages: the stream's lap stays resident
		scans      = 6
		base       = disk.PageID(500)
	)
	r, pool, col := pushTestRunner(t, poolPages, nil)
	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }

	var mu sync.Mutex
	visits := make([]map[int]int, scans)
	specs := make([]ScanSpec, scans)
	for i := range specs {
		i := i
		visits[i] = make(map[int]int)
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     pageID,
			StartDelay: time.Duration(i) * 300 * time.Microsecond,
			OnPage: func(pageNo int, data []byte) {
				if len(data) == 0 {
					t.Error("OnPage with empty data")
				}
				mu.Lock()
				visits[i][pageNo]++
				mu.Unlock()
			},
		}
	}

	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	want := wantChecksum(base, 0, tablePages, 64)
	for i, res := range results {
		if res.PagesRead != tablePages {
			t.Errorf("scan %d: PagesRead %d, want %d", i, res.PagesRead, tablePages)
		}
		if res.Checksum != want {
			t.Errorf("scan %d: checksum %#x, want %#x", i, res.Checksum, want)
		}
		if res.Stopped || res.Err != nil {
			t.Errorf("scan %d: stopped=%v err=%v", i, res.Stopped, res.Err)
		}
		if res.PushBatches == 0 {
			t.Errorf("scan %d: no batches recorded", i)
		}
		if len(visits[i]) != tablePages {
			t.Errorf("scan %d: visited %d distinct pages, want %d", i, len(visits[i]), tablePages)
		}
		for p, n := range visits[i] {
			if n != 1 {
				t.Errorf("scan %d: page %d visited %d times", i, p, n)
			}
		}
	}

	// One physical lap: the table was read from the store exactly once,
	// however many subscribers consumed it.
	if misses := pool.Stats().Misses; misses != tablePages {
		t.Errorf("pool misses %d, want %d (one physical scan)", misses, tablePages)
	}
	cs := col.Snapshot()
	if cs.BatchesPushed == 0 {
		t.Error("collector recorded no pushed batches")
	}
	if cs.PagesRead != int64(scans*tablePages) {
		t.Errorf("collector PagesRead %d, want %d (delivered pages)", cs.PagesRead, scans*tablePages)
	}
	if cs.ScansStarted != scans || cs.ScansEnded != scans {
		t.Errorf("scan lifecycle: started %d ended %d, want %d", cs.ScansStarted, cs.ScansEnded, scans)
	}
}

// TestPushPartialRangesAndStops: partial footprints and mid-flight stops
// keep exact per-footprint coverage; the stream skips stretches nobody
// needs.
func TestPushPartialRangesAndStops(t *testing.T) {
	const (
		tablePages = 300
		poolPages  = 320
		base       = disk.PageID(0)
	)
	r, _, _ := pushTestRunner(t, poolPages, nil)
	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }

	specs := []ScanSpec{
		{Table: 1, TablePages: tablePages, PageID: pageID, StartPage: 10, EndPage: 110},
		{Table: 1, TablePages: tablePages, PageID: pageID, StartPage: 150, EndPage: 300},
		{Table: 1, TablePages: tablePages, PageID: pageID, StopAfterPages: 40},
		{Table: 1, TablePages: tablePages, PageID: pageID, StartPage: 50, EndPage: 120,
			StartDelay: 500 * time.Microsecond},
	}
	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := results[0].Checksum, wantChecksum(base, 10, 110, 64); got != want || results[0].PagesRead != 100 {
		t.Errorf("scan 0: pages %d checksum %#x, want 100 / %#x", results[0].PagesRead, got, want)
	}
	if got, want := results[1].Checksum, wantChecksum(base, 150, 300, 64); got != want || results[1].PagesRead != 150 {
		t.Errorf("scan 1: pages %d checksum %#x, want 150 / %#x", results[1].PagesRead, got, want)
	}
	if !results[2].Stopped || results[2].PagesRead > 40 {
		t.Errorf("scan 2: stopped=%v pages=%d, want stopped, <=40", results[2].Stopped, results[2].PagesRead)
	}
	if got, want := results[3].Checksum, wantChecksum(base, 50, 120, 64); got != want || results[3].PagesRead != 70 {
		t.Errorf("scan 3: pages %d checksum %#x, want 70 / %#x", results[3].PagesRead, got, want)
	}
}

// TestPushBackpressureStarvationBound is the fairness proof: a deliberately
// slow subscriber must not stall the group past its stall budget. The fast
// subscribers complete, the reader's throttle-wait (stall) histogram stays
// under the bound, and the slow subscriber is demoted but still reaches
// exact coverage by pulling its remainder.
func TestPushBackpressureStarvationBound(t *testing.T) {
	const (
		tablePages = 128
		poolPages  = 160
		fastScans  = 3
		budget     = 10 * time.Millisecond
		base       = disk.PageID(0)
	)
	r, _, col := pushTestRunner(t, poolPages, func(cfg *Config) {
		cfg.PushStallBudget = budget
		cfg.SubscriberQueueBatches = 1
		cfg.PushBatchPages = 8
	})
	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }

	specs := make([]ScanSpec, fastScans+1)
	for i := 0; i < fastScans; i++ {
		specs[i] = ScanSpec{Table: 1, TablePages: tablePages, PageID: pageID}
	}
	// The slow consumer: 2ms per page would hold the group for ~256ms,
	// far past the 10ms budget.
	specs[fastScans] = ScanSpec{Table: 1, TablePages: tablePages, PageID: pageID,
		PageDelay: 2 * time.Millisecond}

	start := time.Now()
	results, err := r.Run(context.Background(), specs)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	want := wantChecksum(base, 0, tablePages, 64)
	for i := 0; i < fastScans; i++ {
		if results[i].Err != nil || results[i].PagesRead != tablePages || results[i].Checksum != want {
			t.Errorf("fast scan %d: pages %d err %v", i, results[i].PagesRead, results[i].Err)
		}
		if results[i].PushDemoted {
			t.Errorf("fast scan %d demoted", i)
		}
	}
	slow := results[fastScans]
	if !slow.PushDemoted {
		t.Fatal("slow subscriber was not demoted")
	}
	if slow.PushSelfPulled == 0 {
		t.Error("demoted subscriber pulled nothing itself")
	}
	if slow.PagesRead != tablePages || slow.Checksum != want {
		t.Errorf("slow scan: pages %d checksum %#x, want %d / %#x",
			slow.PagesRead, slow.Checksum, tablePages, want)
	}

	cs := col.Snapshot()
	if cs.SubscriberStalls == 0 {
		t.Error("no subscriber stalls recorded")
	}
	if cs.PushDemotions == 0 {
		t.Error("no demotions recorded")
	}
	// Each individual reader stall is clipped at the remaining budget; a
	// generous scheduling slack keeps the bound assertion robust.
	if maxWait := cs.ThrottleWaitDist.Max; maxWait > budget+200*time.Millisecond {
		t.Errorf("reader stall %v exceeds budget %v (+slack)", maxWait, budget)
	}
	// The group must not be held to the slow consumer's pace: the slow
	// scan alone needs ~256ms of processing; the fast scans' stream must
	// finish well under a multiple of that.
	if wall > 5*time.Second {
		t.Errorf("run took %v; backpressure appears unbounded", wall)
	}
}

// TestPushCancellation: cancelling the run mid-stream stops subscribers as
// Stopped, not failed, and the reader goroutine exits.
func TestPushCancellation(t *testing.T) {
	const tablePages = 400
	r, _, _ := pushTestRunner(t, 64, nil)
	pageID := func(pageNo int) disk.PageID { return disk.PageID(pageNo) }

	ctx, cancel := context.WithCancel(context.Background())
	specs := []ScanSpec{
		{Table: 1, TablePages: tablePages, PageID: pageID, PageDelay: 500 * time.Microsecond},
		{Table: 1, TablePages: tablePages, PageID: pageID, PageDelay: 500 * time.Microsecond},
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	results, err := r.Run(ctx, specs)
	if err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("scan %d: err %v", i, res.Err)
		}
		if res.PagesRead == tablePages && !res.Stopped {
			continue // raced to completion before cancel; fine
		}
		if !res.Stopped {
			t.Errorf("scan %d: not marked stopped after cancel (pages %d)", i, res.PagesRead)
		}
	}
}

// TestPushOnPagePullMode: the OnPage callback also fires in pull mode, page
// for page, so consumers are mode-agnostic.
func TestPushOnPagePullMode(t *testing.T) {
	const tablePages = 60
	pool := buffer.MustNewPool(80)
	mgr := core.MustNewManager(testManagerConfig(80))
	r, err := NewRunner(Config{Pool: pool, Manager: mgr, Store: testStore{pageBytes: 64}})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	specs := []ScanSpec{{
		Table: 1, TablePages: tablePages,
		PageID: func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
		OnPage: func(pageNo int, data []byte) { seen[pageNo]++ },
	}}
	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(seen) != tablePages {
		t.Fatalf("pull OnPage saw %d pages, want %d", len(seen), tablePages)
	}
	for p, n := range seen {
		if n != 1 {
			t.Errorf("page %d seen %d times", p, n)
		}
	}
}

// TestPushTableSizeMismatch: specs disagreeing on a table's page count are
// rejected up front.
func TestPushTableSizeMismatch(t *testing.T) {
	r, _, _ := pushTestRunner(t, 64, nil)
	pageID := func(pageNo int) disk.PageID { return disk.PageID(pageNo) }
	_, err := r.Run(context.Background(), []ScanSpec{
		{Table: 1, TablePages: 100, PageID: pageID},
		{Table: 1, TablePages: 200, PageID: pageID},
	})
	if err == nil {
		t.Fatal("mismatched TablePages accepted")
	}
}
