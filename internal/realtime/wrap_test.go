package realtime

import (
	"context"
	"reflect"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
)

// TestWrapAroundVisitOrder is the table-driven contract test for join
// placement's circular visit order: a scan placed at joinLoc must cover its
// range as [joinLoc, end) ++ [start, joinLoc), page by page, in order. An
// ongoing "driver" scan is registered directly with the manager and parked at
// joinLoc so the runner's scan joins at a chosen position; the spec's PageID
// callback records every visited page.
func TestWrapAroundVisitOrder(t *testing.T) {
	const (
		poolPages = 8 // small pool: keeps the trailing window to 4 pages
		extent    = 8
	)
	cases := []struct {
		name       string
		tablePages int
		start, end int // scan range; end 0 = table end
		joinLoc    int // driver position = expected origin
		detachAt   int // visit index at which the driver detaches; -1 = never
	}{
		{name: "no-wrap-at-start", tablePages: 40, joinLoc: 0, detachAt: -1},
		{name: "mid-table", tablePages: 40, joinLoc: 21, detachAt: -1},
		{name: "at-extent-boundary", tablePages: 40, joinLoc: extent, detachAt: -1},
		{name: "at-second-extent-boundary", tablePages: 40, joinLoc: 2 * extent, detachAt: -1},
		{name: "one-before-extent-boundary", tablePages: 40, joinLoc: extent - 1, detachAt: -1},
		{name: "one-past-extent-boundary", tablePages: 40, joinLoc: extent + 1, detachAt: -1},
		{name: "last-page", tablePages: 40, joinLoc: 39, detachAt: -1},
		{name: "partial-range", tablePages: 40, start: 10, end: 30, joinLoc: 20, detachAt: -1},
		{name: "partial-range-at-range-start", tablePages: 40, start: 10, end: 30, joinLoc: 10, detachAt: -1},
		{name: "single-page-table", tablePages: 1, joinLoc: 0, detachAt: -1},
		{name: "driver-detaches-mid-wrap", tablePages: 40, joinLoc: 16, detachAt: 30},
		{name: "driver-detaches-before-wrap", tablePages: 40, joinLoc: 16, detachAt: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.DefaultConfig(poolPages)
			cfg.PrefetchExtentPages = extent
			cfg.MinSharePages = 1
			cfg.MaxWaitPerUpdate = 100 * time.Microsecond
			mgr := core.MustNewManager(cfg)
			pool := buffer.MustNewPool(poolPages)

			// The driver scans the whole table and is parked at joinLoc.
			driver, _, err := mgr.StartScan(core.ScanOpts{Table: 1, TablePages: tc.tablePages}, 0)
			if err != nil {
				t.Fatal(err)
			}
			if tc.joinLoc > 0 {
				if _, err := mgr.ReportProgress(driver, tc.joinLoc, time.Millisecond); err != nil {
					t.Fatal(err)
				}
			}

			var visited []int
			spec := ScanSpec{
				Table:      1,
				TablePages: tc.tablePages,
				StartPage:  tc.start,
				EndPage:    tc.end,
				PageID: func(pageNo int) disk.PageID {
					visited = append(visited, pageNo)
					if tc.detachAt >= 0 && len(visited)-1 == tc.detachAt {
						if err := mgr.DetachScan(driver, 2*time.Millisecond); err != nil {
							t.Error(err)
						}
					}
					return disk.PageID(pageNo)
				},
			}
			r, err := NewRunner(Config{Pool: pool, Manager: mgr, Store: testStore{pageBytes: 16}})
			if err != nil {
				t.Fatal(err)
			}
			results, err := r.Run(context.Background(), []ScanSpec{spec})
			if err != nil {
				t.Fatal(err)
			}
			res := results[0]
			if res.Placement.JoinedScan != driver || res.Placement.Origin != tc.joinLoc {
				t.Fatalf("placement %+v, want a join on scan %d at page %d",
					res.Placement, driver, tc.joinLoc)
			}

			// The circular contract, spelled out: [joinLoc, end) ++ [start, joinLoc).
			end := tc.end
			if end == 0 {
				end = tc.tablePages
			}
			var want []int
			for p := tc.joinLoc; p < end; p++ {
				want = append(want, p)
			}
			for p := tc.start; p < tc.joinLoc; p++ {
				want = append(want, p)
			}
			if !reflect.DeepEqual(visited, want) {
				t.Errorf("visit order:\n got %v\nwant %v", visited, want)
			}
			if res.PagesRead != end-tc.start {
				t.Errorf("read %d pages, want %d", res.PagesRead, end-tc.start)
			}
			if want := wantChecksum(0, tc.start, end, 16); res.Checksum != want {
				t.Errorf("checksum %d, want %d (coverage incomplete?)", res.Checksum, want)
			}

			if tc.detachAt >= 0 {
				// The join is a placement-time decision: the driver
				// detaching mid-flight must not disturb the already
				// running scan's coverage, and the driver must still
				// be marked detached.
				for _, sc := range mgr.Snapshot().Scans {
					if sc.ID == driver && !sc.Detached {
						t.Error("driver not detached")
					}
				}
			}
			if err := mgr.EndScan(driver, time.Second); err != nil {
				t.Fatal(err)
			}
			if n := mgr.ActiveScans(); n != 0 {
				t.Errorf("%d scans leaked", n)
			}
			pool.CheckInvariants()
		})
	}
}
