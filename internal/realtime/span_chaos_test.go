package realtime

import (
	"context"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
	"scanshare/internal/metrics"
	"scanshare/internal/trace"
)

// Chaos suite for the span layer: fault-injected runs — detaches, rejoins,
// degraded pages, push demotions — must still produce complete span trees
// (every span closed, no orphans, no extra roots), and the span-derived wait
// totals must agree exactly with the always-on inline ScanResult counters,
// since both sides record the same measured durations.

// spanChaosTracer builds an enabled tracer big enough that a chaos run drops
// nothing, draining into an unbounded recorder.
func spanChaosTracer(t *testing.T) (*trace.Tracer, *trace.Recorder) {
	t.Helper()
	tr := trace.NewTracerSize(nil, 1<<16)
	rec := &trace.Recorder{}
	tr.Attach(rec)
	tr.Start(time.Millisecond)
	return tr, rec
}

// finishSpanRun closes the tracer and assembles its journal, failing the
// test if the ring dropped anything (the rig is sized so it must not — a
// drop would make the exact-counter comparisons below meaningless).
func finishSpanRun(t *testing.T, tr *trace.Tracer, rec *trace.Recorder) *trace.Assembly {
	t.Helper()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events; test rig undersized", d)
	}
	return trace.Assemble(rec.Events())
}

// checkSpanTrees asserts the structural contract on an assembled chaos run:
// one tree per scan, every span closed, no orphans, no extra roots, every
// root a scan span.
func checkSpanTrees(t *testing.T, asm *trace.Assembly, scans int) {
	t.Helper()
	if len(asm.Trees) != scans {
		t.Errorf("%d span trees, want one per scan (%d)", len(asm.Trees), scans)
	}
	if asm.Unclosed != 0 || asm.Orphans != 0 || asm.ExtraRoots != 0 {
		t.Errorf("assembly not clean: %d unclosed, %d orphans, %d extra roots",
			asm.Unclosed, asm.Orphans, asm.ExtraRoots)
	}
	for _, tree := range asm.Trees {
		if tree.Root.Kind != trace.SpanScan {
			t.Errorf("trace %d root is %v, want scan", tree.Trace, tree.Root.Kind)
		}
		if tree.Root.Dur() <= 0 {
			t.Errorf("trace %d root has non-positive duration %v", tree.Trace, tree.Root.Dur())
		}
	}
}

// TestSpanChaosPullFaults runs the pull-mode fault gauntlet — a permanently
// bad band forcing detach/rejoin churn, a stall band cut by read timeouts,
// and a transient error burst — with every scan carrying its own root span.
// Every tree must close, and the span totals must match the inline counters.
func TestSpanChaosPullFaults(t *testing.T) {
	const (
		tablePages = 200
		poolPages  = 100
		pageBytes  = 32
		scans      = 8
		base       = disk.PageID(3000)

		badFirst, badLast = 150, 155
	)
	plan := fault.Plan{
		Seed: 11,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: base + badFirst, LastPage: base + badLast, Prob: 1},
			{Kind: fault.KindStall, FirstPage: base + 60, LastPage: base + 80, Prob: 0.3, UntilAttempt: 1},
			{Kind: fault.KindError, Prob: 0.1, UntilAttempt: 2},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: pageBytes}, plan)
	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	col := new(metrics.Collector)
	tr, rec := spanChaosTracer(t)
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Collector:             col,
		Tracer:                tr,
		PrefetchWorkers:       2,
		ReadTimeout:           2 * time.Millisecond,
		MaxReadRetries:        3,
		RetryBackoff:          50 * time.Microsecond,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) },
			StartDelay: time.Duration(i) * 300 * time.Microsecond,
			PageDelay:  20 * time.Microsecond,
			Span:       tr.Root(),
		}
	}
	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	asm := finishSpanRun(t, tr, rec)
	checkSpanTrees(t, asm, scans)

	// The run must actually have churned, or the closed-tree claim is weak.
	var sum struct{ detaches, degraded int }
	var throttle, read, pool2 time.Duration
	for _, res := range results {
		sum.detaches += res.Detaches
		sum.degraded += res.DegradedPages
		throttle += res.ThrottleWait
		read += res.ReadWait
		pool2 += res.PoolWait
	}
	if sum.detaches == 0 || sum.degraded == 0 {
		t.Errorf("fault plan injected nothing: %+v", sum)
	}

	// Exactness: span emission and the ScanResult counters record the same
	// measured duration at every slow-path site, so the aggregated tree
	// breakdown equals the summed counters to the nanosecond.
	agg := asm.Aggregate()
	if agg.Throttle != throttle {
		t.Errorf("span throttle total %v, counters say %v", agg.Throttle, throttle)
	}
	if agg.Read != read {
		t.Errorf("span read total %v, counters say %v", agg.Read, read)
	}
	if agg.PoolWait != pool2 {
		t.Errorf("span pool-wait total %v, counters say %v", agg.PoolWait, pool2)
	}
	if agg.Read == 0 {
		t.Error("no read spans; the miss path went unexercised")
	}
}

// TestSpanChaosPushDemotion drives the push-delivery fault plan — torn
// reads, a permanently bad band that exhausts each promoted owner's retries,
// stalls — and checks span trees survive subscriber demotion and promotion:
// the reader emits read/pool-wait spans under whichever subscriber owns the
// moment, and every tree still closes with no orphans.
func TestSpanChaosPushDemotion(t *testing.T) {
	const (
		tablePages = 240
		poolPages  = 280
		pageBytes  = 64
		scans      = 6
		base       = disk.PageID(4000)

		badFirst, badLast = 180, 185
	)
	plan := fault.Plan{
		Seed: 5,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: base + badFirst, LastPage: base + badLast, Prob: 1},
			{Kind: fault.KindTorn, FirstPage: base + 40, LastPage: base + 70, Prob: 1, UntilAttempt: 1},
			{Kind: fault.KindStall, FirstPage: base + 100, LastPage: base + 115, Prob: 0.5, UntilAttempt: 1},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: pageBytes}, plan)
	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	tr, rec := spanChaosTracer(t)
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Tracer:                tr,
		PushDelivery:          true,
		PushBatchPages:        8,
		ReadTimeout:           2 * time.Millisecond,
		MaxReadRetries:        3,
		RetryBackoff:          50 * time.Microsecond,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) },
			StartDelay: time.Duration(i) * 300 * time.Microsecond,
			Span:       tr.Root(),
		}
	}
	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}

	asm := finishSpanRun(t, tr, rec)
	checkSpanTrees(t, asm, scans)

	var detaches int
	var read, pool2, delivery time.Duration
	for _, res := range results {
		detaches += res.Detaches
		read += res.ReadWait
		pool2 += res.PoolWait
		delivery += res.DeliveryWait
	}
	if detaches == 0 {
		t.Error("push chaos run demoted nobody; promotion path unexercised")
	}
	agg := asm.Aggregate()
	// Reader-side reads are attributed to the owning subscriber's span with
	// the same measured durations the result counters merge at close.
	if agg.Read != read {
		t.Errorf("span read total %v, counters say %v", agg.Read, read)
	}
	if agg.PoolWait != pool2 {
		t.Errorf("span pool-wait total %v, counters say %v", agg.PoolWait, pool2)
	}
	// The final blocked receive (the one that observes the channel close)
	// counts toward DeliveryWait but emits no span, so spans lower-bound it.
	if agg.Delivery > delivery {
		t.Errorf("span delivery total %v exceeds counter total %v", agg.Delivery, delivery)
	}
	if agg.Delivery == 0 && delivery > 0 {
		t.Error("delivery waits recorded but no delivery spans emitted")
	}
}

// TestSpanChaosSilentWithoutSpecSpan pins the opt-in contract the replay and
// golden-journal tests depend on: a run whose specs carry no span context
// journals zero span events even with a tracer attached and faults firing.
func TestSpanChaosSilentWithoutSpecSpan(t *testing.T) {
	const tablePages = 60
	store := fault.MustNewStore(testStore{pageBytes: 16},
		fault.Plan{Seed: 2, Rules: []fault.Rule{{Kind: fault.KindError, Prob: 0.2, UntilAttempt: 2}}})
	pool := buffer.MustNewPool(48)
	mgr := core.MustNewManager(testManagerConfig(48))
	tr, rec := spanChaosTracer(t)
	r, err := NewRunner(Config{
		Pool: pool, Manager: mgr, Store: store, Tracer: tr,
		ReadTimeout: 2 * time.Millisecond, MaxReadRetries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]ScanSpec, 3)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
		}
	}
	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindSpanOpen || ev.Kind == trace.KindSpanClose {
			t.Fatalf("span event %+v journaled without a spec span context", ev)
		}
	}
	if asm := trace.Assemble(rec.Events()); len(asm.Trees) != 0 {
		t.Errorf("assembled %d trees from a span-less run", len(asm.Trees))
	}
}
