package realtime

import (
	"sync"

	"scanshare/internal/disk"
)

// flightTable is the singleflight registry for physical page reads. A caller
// that wins a pool Miss registers its read here before touching the store;
// any other scan that then misses on the same page (the pool reports Busy
// while the frame is pending) finds the flight and blocks on its done
// channel instead of sleep-polling. When the read completes — Fill or Abort,
// success or failure — the leader publishes the outcome and closes the
// channel, waking every waiter at once.
//
// The pool already guarantees at most one pending read per page (the pending
// frame), so at most one live flight exists per page id; the table just
// makes that read's completion observable. All methods are safe on a nil
// *flightTable, which is how the runner spells "coalescing disabled".
//
// Coalescing waiters block on channels, not at Hook sites, so this layer is
// incompatible with the deterministic Sched harness (which requires every
// live worker to park at a hook); Config.CoalesceReads is therefore opt-in
// and off in all replay-based tests. See CONCURRENCY.md.
type flightTable struct {
	mu sync.Mutex
	m  map[disk.PageID]*flight
}

// flight is one in-flight physical read. err is written exactly once, before
// done is closed; the channel close is the happens-before edge that lets
// waiters read it without the table lock. fallback marks a best-effort
// (prefetch) read: its failure tells waiters to re-acquire and read the page
// themselves under their own retry policy, rather than inheriting an error
// from a reader that never retries.
type flight struct {
	done     chan struct{}
	err      error
	fallback bool
}

func newFlightTable() *flightTable {
	return &flightTable{m: make(map[disk.PageID]*flight)}
}

// begin registers a flight for pid and returns it. Returns nil on a nil
// table (coalescing disabled).
func (t *flightTable) begin(pid disk.PageID, fallback bool) *flight {
	if t == nil {
		return nil
	}
	fl := &flight{done: make(chan struct{}), fallback: fallback}
	t.mu.Lock()
	t.m[pid] = fl
	t.mu.Unlock()
	return fl
}

// lookup returns pid's live flight, if any.
func (t *flightTable) lookup(pid disk.PageID) (*flight, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	fl, ok := t.m[pid]
	t.mu.Unlock()
	return fl, ok
}

// finish publishes the read's outcome and wakes all waiters. The leader must
// settle the pool frame first (Fill on success, Abort on failure) so a woken
// waiter's re-Acquire observes the final state: Hit after a fill, Miss after
// an abort. The delete is pointer-guarded so a finish racing a newer flight
// for the same page never removes the newer entry. No-op when t or fl is nil.
func (t *flightTable) finish(pid disk.PageID, fl *flight, err error) {
	if t == nil || fl == nil {
		return
	}
	fl.err = err
	t.mu.Lock()
	if t.m[pid] == fl {
		delete(t.m, pid)
	}
	t.mu.Unlock()
	close(fl.done)
}
