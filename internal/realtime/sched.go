package realtime

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"scanshare/internal/vclock"
)

// Sched is the deterministic schedule-perturbation harness. It turns the
// free-running goroutines of a Runner into a reproducible interleaving:
// plugged in as the Runner's Hook, Sleep, and Clock, it parks every scan
// worker at each hook site and releases exactly one — chosen by a seeded
// RNG — once all live workers are parked. Between two releases only a
// single worker runs, so the order of every Manager and Pool interaction,
// and therefore the whole decision trace, is a pure function of the seed.
//
// That is the property that makes interleaving bugs debuggable: a failure
// observed at seed S replays identically under seed S, and sweeping seeds
// explores distinct interleavings the way jittered wall-clock scheduling
// never reliably would. The harness deliberately serializes execution —
// it trades away the parallelism that `go test -race` with free-running
// goroutines exercises, which is why the test suite runs both.
//
// The clock is virtual: each release advances a Manual clock by a seeded
// jitter, and Sleep advances it by the requested duration instead of
// blocking, so traces are stable across machines and -race slowdowns.
//
// Workers must be registered up front (workers argument), and every worker
// must fire SiteExit exactly once; the Runner guarantees both for one Run
// with len(specs) == workers. Prefetch workers are not instrumented — run
// the harness with PrefetchWorkers == 0.
type Sched struct {
	maxJitter time.Duration
	clock     *vclock.Manual

	mu      sync.Mutex
	rng     *rand.Rand
	live    int
	waiters []schedWaiter
	trace   []TraceStep
}

type schedWaiter struct {
	scan int
	site Site
	ch   chan struct{}
}

// TraceStep is one scheduling decision: worker scan was released at site
// when the virtual clock read Now.
type TraceStep struct {
	Scan int
	Site Site
	Now  time.Duration
}

// String renders the step compactly, e.g. "12.5ms scan3 report".
func (s TraceStep) String() string {
	return fmt.Sprintf("%v scan%d %s", s.Now, s.Scan, s.Site)
}

// NewSched creates a harness for the given worker count. maxJitter bounds
// the virtual-time advance injected per scheduling step (0 keeps the clock
// still except for Sleep calls).
func NewSched(seed int64, workers int, maxJitter time.Duration) *Sched {
	if workers <= 0 {
		panic("realtime: Sched with no workers")
	}
	if maxJitter < 0 {
		panic("realtime: Sched with negative jitter")
	}
	return &Sched{
		maxJitter: maxJitter,
		clock:     vclock.NewManual(0),
		rng:       rand.New(rand.NewSource(seed)),
		live:      workers,
	}
}

// Clock returns the harness's virtual clock, for Config.Clock.
func (s *Sched) Clock() vclock.Clock { return s.clock }

// Sleep advances the virtual clock by d instead of blocking, for
// Config.Sleep.
func (s *Sched) Sleep(ctx context.Context, d time.Duration) {
	if d > 0 {
		s.clock.Advance(d)
	}
}

// Hook parks the calling worker at site until the harness releases it, for
// Config.Hook. SiteExit retires the worker instead of parking it.
func (s *Sched) Hook(scan int, site Site) {
	if site == SiteExit {
		s.mu.Lock()
		s.live--
		s.trace = append(s.trace, TraceStep{Scan: scan, Site: site, Now: s.clock.Now()})
		if s.live > 0 && len(s.waiters) == s.live {
			s.dispatchLocked()
		}
		s.mu.Unlock()
		return
	}

	ch := make(chan struct{})
	s.mu.Lock()
	// Keep waiters ordered by scan index: the order in which workers
	// reach their first park is scheduling-dependent (they all start
	// concurrently), but the *set* of parked workers is not. Picking by
	// rank over a sorted list makes the choice a pure function of the
	// seed and the set.
	at := len(s.waiters)
	for at > 0 && s.waiters[at-1].scan > scan {
		at--
	}
	s.waiters = append(s.waiters, schedWaiter{})
	copy(s.waiters[at+1:], s.waiters[at:])
	s.waiters[at] = schedWaiter{scan: scan, site: site, ch: ch}
	if len(s.waiters) == s.live {
		s.dispatchLocked()
	}
	s.mu.Unlock()
	<-ch
}

// dispatchLocked picks one parked worker with the seeded RNG, advances the
// clock, records the step, and releases the worker. Called with mu held and
// every live worker parked — the invariant that makes the pick, and thus
// the trace, deterministic.
func (s *Sched) dispatchLocked() {
	i := s.rng.Intn(len(s.waiters))
	w := s.waiters[i]
	s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
	if s.maxJitter > 0 {
		s.clock.Advance(time.Duration(s.rng.Int63n(int64(s.maxJitter))))
	}
	s.trace = append(s.trace, TraceStep{Scan: w.scan, Site: w.site, Now: s.clock.Now()})
	close(w.ch)
}

// Trace returns the recorded schedule. Only call it after the Run using
// this harness has returned.
func (s *Sched) Trace() []TraceStep {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TraceStep(nil), s.trace...)
}

// FormatTrace renders a trace one step per line, for failure reports.
func FormatTrace(steps []TraceStep) string {
	var b strings.Builder
	for _, st := range steps {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}
