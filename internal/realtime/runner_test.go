package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/metrics"
)

// testStore serves synthetic pages whose first and last bytes encode the
// page ID, so scans can checksum what they read.
type testStore struct{ pageBytes int }

func (s testStore) ReadPage(pid disk.PageID) ([]byte, error) {
	n := s.pageBytes
	if n < 2 {
		n = 2
	}
	data := make([]byte, n)
	data[0] = byte(pid)
	data[n-1] = byte(pid >> 8)
	return data, nil
}

// wantChecksum is the checksum a scan accumulates over pages [base+start,
// base+end) of testStore content, independent of visit order.
func wantChecksum(base disk.PageID, start, end, pageBytes int) uint64 {
	var sum uint64
	for p := start; p < end; p++ {
		pid := base + disk.PageID(p)
		data := make([]byte, pageBytes)
		data[0] = byte(pid)
		data[pageBytes-1] = byte(pid >> 8)
		sum += uint64(data[0]) + uint64(data[len(data)-1])<<8
	}
	return sum
}

func testManagerConfig(poolPages int) core.Config {
	cfg := core.DefaultConfig(poolPages)
	cfg.PrefetchExtentPages = 8
	cfg.MinSharePages = 4
	// Keep real sleeps short: throttling behavior is exercised, test
	// wall time stays bounded.
	cfg.MaxWaitPerUpdate = 300 * time.Microsecond
	return cfg
}

// TestRunnerStress runs 20 concurrent goroutine scans — staggered starts,
// mixed speeds, partial ranges, mid-scan terminations — against one shared
// pool and manager, with the prefetch pipeline on and concurrent metadata
// readers polling throughout. Run with -race; this is the suite's main
// concurrency workout.
func TestRunnerStress(t *testing.T) {
	const (
		tablePages = 400
		poolPages  = 200
		pageBytes  = 64
		scans      = 20
	)
	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	store := testStore{pageBytes: pageBytes}

	// Trace events through the observer to verify delivery is race-free
	// and complete.
	var traceMu sync.Mutex
	var trace []core.Event
	mgr.SetOnEvent(func(ev core.Event) {
		traceMu.Lock()
		trace = append(trace, ev)
		traceMu.Unlock()
	})

	col := new(metrics.Collector)
	r, err := NewRunner(Config{
		Pool:            pool,
		Manager:         mgr,
		Store:           store,
		Collector:       col,
		PrefetchWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	const base = disk.PageID(1000)
	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }
	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            pageID,
			EstimatedDuration: 10 * time.Millisecond,
			Importance:        core.Importance(i % 3),
			StartDelay:        time.Duration(i) * 400 * time.Microsecond,
			PageDelay:         time.Duration(10+5*(i%4)) * time.Microsecond,
		}
	}
	// A few partial-range scans and mid-flight terminations.
	specs[5].StartPage, specs[5].EndPage = 50, 250
	specs[11].StartPage, specs[11].EndPage = 50, 250
	specs[7].StopAfterPages = 60
	specs[13].StopAfterPages = 100
	specs[17].StopAfterPages = 5

	// Concurrent readers: snapshots, stats, and config reads must be safe
	// while the scans mutate everything.
	readerDone := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readerDone:
					return
				default:
					_ = mgr.Snapshot()
					_ = mgr.Stats()
					_ = mgr.Config()
					_ = mgr.ActiveScans()
					_ = pool.Stats()
					_ = col.Snapshot()
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
	}

	results, err := r.Run(context.Background(), specs)
	close(readerDone)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	pool.CheckInvariants()
	if n := mgr.ActiveScans(); n != 0 {
		t.Errorf("%d scans still registered", n)
	}

	fullSum := wantChecksum(base, 0, tablePages, pageBytes)
	partialSum := wantChecksum(base, 50, 250, pageBytes)
	for i, res := range results {
		spec := specs[i]
		length := tablePages - spec.StartPage
		if spec.EndPage != 0 {
			length = spec.EndPage - spec.StartPage
		}
		want := length
		if spec.StopAfterPages > 0 && spec.StopAfterPages < length {
			want = spec.StopAfterPages
			if !res.Stopped {
				t.Errorf("scan %d: not marked stopped", i)
			}
		}
		if res.PagesRead != want {
			t.Errorf("scan %d: read %d pages, want %d", i, res.PagesRead, want)
		}
		if res.Hits+res.Misses != int64(res.PagesRead) {
			t.Errorf("scan %d: hits %d + misses %d != pages %d", i, res.Hits, res.Misses, res.PagesRead)
		}
		if spec.StopAfterPages == 0 {
			wantSum := fullSum
			if spec.EndPage != 0 {
				wantSum = partialSum
			}
			if res.Checksum != wantSum {
				t.Errorf("scan %d: checksum %d, want %d (read wrong pages?)", i, res.Checksum, wantSum)
			}
		}
	}

	st := mgr.Stats()
	if st.ScansStarted != scans || st.ScansFinished != scans {
		t.Errorf("manager stats unbalanced: %+v", st)
	}
	if total := st.JoinPlacements + st.TrailPlacements + st.ResidualPlacements + st.ColdPlacements; total != scans {
		t.Errorf("placements (%d) do not add up to %d", total, scans)
	}
	// With 20 overlapping scans of one table, placement must have found
	// sharing partners; joins at an ongoing position imply wrap-around.
	if st.JoinPlacements+st.TrailPlacements == 0 {
		t.Errorf("no join or trail placements across %d overlapping scans: %+v", scans, st)
	}

	cs := col.Snapshot()
	if cs.ScansStarted != scans || cs.ScansEnded != scans || cs.ScansStopped != 3 {
		t.Errorf("collector scan counters: %+v", cs)
	}
	var pagesTotal int64
	for _, res := range results {
		pagesTotal += int64(res.PagesRead)
	}
	if cs.PagesRead != pagesTotal {
		t.Errorf("collector pages %d, results total %d", cs.PagesRead, pagesTotal)
	}
	if cs.ThrottleEvents != st.ThrottleEvents {
		t.Errorf("collector throttles %d, manager %d", cs.ThrottleEvents, st.ThrottleEvents)
	}

	traceMu.Lock()
	defer traceMu.Unlock()
	var started, ended, throttled int64
	for _, ev := range trace {
		switch ev.Kind {
		case core.EventScanStarted:
			started++
		case core.EventScanEnded:
			ended++
		case core.EventThrottled:
			throttled++
		}
	}
	if started != st.ScansStarted || ended != st.ScansFinished || throttled != st.ThrottleEvents {
		t.Errorf("event trace (%d started, %d ended, %d throttled) disagrees with stats %+v",
			started, ended, throttled, st)
	}
}

// TestRunnerCancel cancels the context mid-run and checks every scan
// deregisters cleanly and is reported stopped rather than failed.
func TestRunnerCancel(t *testing.T) {
	pool := buffer.MustNewPool(128)
	mgr := core.MustNewManager(testManagerConfig(128))
	r, err := NewRunner(Config{
		Pool:    pool,
		Manager: mgr,
		Store:   testStore{pageBytes: 16},
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, 16)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: 10000,
			PageID:     func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
			PageDelay:  20 * time.Microsecond, // long-running: cancel hits mid-scan
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	results, err := r.Run(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.Stopped {
			t.Errorf("scan %d ran to completion despite cancel (read %d pages)", i, res.PagesRead)
		}
	}
	if n := mgr.ActiveScans(); n != 0 {
		t.Errorf("%d scans leaked after cancel", n)
	}
	pool.CheckInvariants()
}

// TestNewRunnerValidation covers the config error paths.
func TestNewRunnerValidation(t *testing.T) {
	pool := buffer.MustNewPool(8)
	mgr := core.MustNewManager(core.DefaultConfig(8))
	store := testStore{pageBytes: 8}
	cases := []Config{
		{Manager: mgr, Store: store},
		{Pool: pool, Store: store},
		{Pool: pool, Manager: mgr},
		{Pool: pool, Manager: mgr, Store: store, PrefetchWorkers: -1},
		{Pool: pool, Manager: mgr, Store: store, BusyRetryDelay: -time.Second},
	}
	for i, cfg := range cases {
		if _, err := NewRunner(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}

	r, err := NewRunner(Config{Pool: pool, Manager: mgr, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]ScanSpec{
		{},
		{{Table: 1, TablePages: 0, PageID: func(int) disk.PageID { return 0 }}},
		{{Table: 1, TablePages: 10}},
		{{Table: 1, TablePages: 10, PageID: func(int) disk.PageID { return 0 }, StartDelay: -1}},
	}
	for i, specs := range bad {
		if _, err := r.Run(context.Background(), specs); err == nil {
			t.Errorf("bad specs %d accepted", i)
		}
	}
}
