package realtime

import (
	"sync"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/disk"
	"scanshare/internal/metrics"
)

// maxFailedPages bounds the prefetcher's failed-page memory; past it the set
// is reset wholesale (coarse, but the set only exists to stop the pipeline
// from hammering known-bad pages back to back).
const maxFailedPages = 1 << 14

// prefetcher is the bounded worker-pool read-ahead pipeline. Scan workers
// enqueue the device pages of their next prefetch extent; workers drain the
// queue and stage missing pages in the pool so the scans hit instead of
// stalling on the store.
//
// Three properties keep it from fighting the scans it serves:
//
//   - Best-effort admission: enqueue never blocks. When the queue is full
//     the extent is dropped (and counted) — the scan will simply read those
//     pages itself, as it would without a prefetcher.
//   - Coalescing: pages already being fetched by another worker are skipped
//     via the in-flight set, so the members of a scan group — who request
//     largely identical extents — share one read-ahead stream instead of
//     issuing duplicate store reads.
//   - Failure dedup: a page whose read failed is remembered and skipped on
//     later extents, so one bad page cannot occupy the pipeline every time
//     a group member's extent covers it. The scans still read it themselves,
//     with retries — only the best-effort pipeline gives up. The read
//     function is timeout-bounded by the Runner, so a stalling page delays
//     one worker for at most one ReadTimeout instead of wedging it.
type prefetcher struct {
	pool *buffer.Pool
	read func(pid disk.PageID) ([]byte, error)
	col  *metrics.Collector
	now  func() time.Duration

	reqs chan prefetchReq
	wg   sync.WaitGroup

	// flights, when non-nil, is the runner's singleflight registry: the
	// pipeline registers its reads there so scans that miss on a page
	// being prefetched join the prefetch read instead of sleep-polling.
	// Prefetch flights are marked best-effort — on failure, waiters fall
	// back to their own (retrying) read rather than inheriting the error
	// of a reader that never retries.
	flights *flightTable

	mu       sync.Mutex
	inflight map[disk.PageID]struct{}
	failed   map[disk.PageID]struct{}
}

// prefetchReq is one queued extent plus its enqueue time, so the pickup
// delay — how long the request sat behind others in the bounded queue — can
// be observed into the collector's queue-delay histogram.
type prefetchReq struct {
	pids []disk.PageID
	at   time.Duration
}

// newPrefetcher starts workers goroutines draining a queue of at most
// queueExtents pending extents. read performs one page read; the Runner
// passes its timeout-bounded store read. now supplies queue-delay
// timestamps (the Runner's clock, so the delay histogram is deterministic
// under the replay harness).
func newPrefetcher(pool *buffer.Pool, read func(pid disk.PageID) ([]byte, error), col *metrics.Collector, now func() time.Duration, workers, queueExtents int, flights *flightTable) *prefetcher {
	p := &prefetcher{
		pool:     pool,
		read:     read,
		col:      col,
		now:      now,
		flights:  flights,
		reqs:     make(chan prefetchReq, queueExtents),
		inflight: make(map[disk.PageID]struct{}),
		failed:   make(map[disk.PageID]struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// enqueue offers one extent to the pipeline without blocking.
func (p *prefetcher) enqueue(pids []disk.PageID) {
	if len(pids) == 0 {
		return
	}
	select {
	case p.reqs <- prefetchReq{pids: pids, at: p.now()}:
		p.col.PrefetchEnqueued()
	default:
		p.col.PrefetchDropped()
	}
}

// stop drains the pipeline and joins the workers. Callers must guarantee no
// further enqueue calls.
func (p *prefetcher) stop() {
	close(p.reqs)
	p.wg.Wait()
}

func (p *prefetcher) worker() {
	defer p.wg.Done()
	for req := range p.reqs {
		p.col.PrefetchPicked()
		p.col.PrefetchDelayed(p.now() - req.at)
		for _, pid := range req.pids {
			p.fetch(pid)
		}
	}
}

// fetch stages one page in the pool. Failures are recorded and the page is
// skipped thereafter: a prefetch that cannot complete leaves the work — and
// the retry policy — to the scan.
func (p *prefetcher) fetch(pid disk.PageID) {
	p.mu.Lock()
	if _, bad := p.failed[pid]; bad {
		p.mu.Unlock()
		return
	}
	if _, busy := p.inflight[pid]; busy {
		p.mu.Unlock()
		return
	}
	p.inflight[pid] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.inflight, pid)
		p.mu.Unlock()
	}()

	switch st, _ := p.pool.Acquire(pid); st {
	case buffer.Hit:
		// Already resident: unpin without disturbing the priority the
		// owning scan released it at.
		p.pool.ReleaseRetain(pid)
	case buffer.Miss:
		fl := p.flights.begin(pid, true)
		data, err := p.read(pid)
		if err != nil {
			p.pool.Abort(pid)
			p.flights.finish(pid, fl, err)
			p.markFailed(pid)
			return
		}
		ferr := p.pool.Fill(pid, data)
		p.flights.finish(pid, fl, ferr)
		if ferr != nil {
			return
		}
		// Normal priority: the scan that asked for the extent is about
		// to re-acquire the page and release it at the advised level.
		p.pool.Release(pid, buffer.PriorityNormal)
		p.col.PrefetchFilled()
	case buffer.Busy:
		// Someone is reading it right now; nothing left to stage.
	case buffer.AllPinned:
		// Pool saturated with pinned frames; prefetching ahead of the
		// scans cannot help until they release, so skip the page.
	}
}

// markFailed records a failed page for the dedup set.
func (p *prefetcher) markFailed(pid disk.PageID) {
	p.mu.Lock()
	if len(p.failed) >= maxFailedPages {
		p.failed = make(map[disk.PageID]struct{})
	}
	p.failed[pid] = struct{}{}
	p.mu.Unlock()
	p.col.PrefetchFailed()
}
