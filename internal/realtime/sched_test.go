package realtime

import (
	"context"
	"reflect"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
)

// perturbedRun executes one harnessed run with the given seed and returns
// the scheduling trace plus the manager's decision-event trace.
func perturbedRun(t *testing.T, seed int64) ([]TraceStep, []core.Event) {
	t.Helper()
	const (
		tablePages = 160
		poolPages  = 96
		scans      = 6
	)
	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))

	var events []core.Event
	mgr.SetOnEvent(func(ev core.Event) { events = append(events, ev) })
	// The harness serializes workers, so the unsynchronized append above
	// is safe — and the race detector confirms it, which is itself a
	// regression test for the Sched serialization invariant.

	sched := NewSched(seed, scans, 500*time.Microsecond)
	r, err := NewRunner(Config{
		Pool:    pool,
		Manager: mgr,
		Store:   testStore{pageBytes: 16},
		Clock:   sched.Clock(),
		Sleep:   sched.Sleep,
		Hook:    sched.Hook,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
			EstimatedDuration: time.Duration(5+i) * time.Millisecond,
			StartDelay:        time.Duration(i) * time.Millisecond,
			PageDelay:         time.Duration(50+10*(i%3)) * time.Microsecond,
		}
	}
	specs[2].StopAfterPages = 40
	specs[4].StartPage, specs[4].EndPage = 30, 130

	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if n := mgr.ActiveScans(); n != 0 {
		t.Fatalf("seed %d: %d scans leaked", seed, n)
	}
	pool.CheckInvariants()
	return sched.Trace(), events
}

// TestSchedReplaysSeed is the harness's core guarantee: the same seed
// replays to an identical schedule and an identical manager decision trace
// — timestamps included, since the clock is virtual — while different seeds
// explore different interleavings.
func TestSchedReplaysSeed(t *testing.T) {
	trace1, events1 := perturbedRun(t, 42)
	trace2, events2 := perturbedRun(t, 42)
	if len(trace1) == 0 {
		t.Fatal("empty schedule trace")
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Errorf("seed 42 did not replay: traces diverge\nfirst:\n%s\nsecond:\n%s",
			FormatTrace(trace1), FormatTrace(trace2))
	}
	if !reflect.DeepEqual(events1, events2) {
		t.Errorf("seed 42 did not replay: manager event traces diverge (%d vs %d events)",
			len(events1), len(events2))
	}

	trace3, _ := perturbedRun(t, 1337)
	if reflect.DeepEqual(trace1, trace3) {
		// Not impossible, merely absurdly unlikely; flag it without
		// failing so a cosmic coincidence cannot break CI.
		t.Logf("seeds 42 and 1337 produced identical traces (%d steps)", len(trace1))
	}
}

// TestSchedSweep runs a small seed sweep; each seed must replay its own
// trace. This is the loop a debugging session runs to hunt an interleaving
// bug, kept in-tree so the machinery cannot rot.
func TestSchedSweep(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		a, _ := perturbedRun(t, seed)
		b, _ := perturbedRun(t, seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d did not replay", seed)
		}
	}
}
