package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
)

// FuzzPushSubscribe drives randomized attach/detach/rejoin/EOF interleavings
// through the push hub — staggered subscriptions, partial footprints,
// mid-stream stops, consumer pacing, tiny queues, and recoverable fault
// bands — and checks every outcome against the reference model: a scan that
// neither stopped nor failed was delivered exactly the pages of its
// footprint, each exactly once, with the content checksum to prove it.
func FuzzPushSubscribe(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x10, 0x22, 0x33})
	f.Add([]byte{0xff, 0x01, 0x80, 0x40, 0x20, 0x10})
	f.Add([]byte{0x07, 0x9a, 0x55, 0xaa, 0x00, 0xff, 0x13, 0x37})
	f.Add([]byte{0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42, 0x42})

	f.Fuzz(func(t *testing.T, in []byte) {
		next := func() byte {
			if len(in) == 0 {
				return 0
			}
			b := in[0]
			in = in[1:]
			return b
		}

		const pageBytes = 32
		base := disk.PageID(1000)
		tablePages := 16 + int(next())%48
		poolPages := tablePages + 16
		batch := 1 + int(next())%8
		queue := 1 + int(next())%4
		faultMode := next() % 3

		var store PageStore = testStore{pageBytes: pageBytes}
		switch faultMode {
		case 1: // transient errors: always recover within the retry budget
			store = fault.MustNewStore(store, fault.Plan{
				Seed: int64(next()) + 1,
				Rules: []fault.Rule{
					{Kind: fault.KindError, Prob: 0.3, UntilAttempt: 1},
				},
			})
		case 2: // torn first reads: the retry must absorb every one
			store = fault.MustNewStore(store, fault.Plan{
				Seed: int64(next()) + 1,
				Rules: []fault.Rule{
					{Kind: fault.KindTorn, FirstPage: base, LastPage: base + disk.PageID(tablePages/2), Prob: 1, UntilAttempt: 1},
				},
			})
		}

		scans := 1 + int(next())%6
		specs := make([]ScanSpec, scans)
		visits := make([]map[int]int, scans)
		var mu sync.Mutex
		pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }
		for i := range specs {
			i := i
			visits[i] = make(map[int]int)
			start := int(next()) % tablePages
			length := 1 + int(next())%(tablePages-start)
			spec := ScanSpec{
				Table:      1,
				TablePages: tablePages,
				PageID:     pageID,
				StartPage:  start,
				EndPage:    start + length,
				StartDelay: time.Duration(next()%8) * 100 * time.Microsecond,
				PageDelay:  time.Duration(next()%2) * 50 * time.Microsecond,
				OnPage: func(pageNo int, data []byte) {
					if len(data) != pageBytes {
						t.Errorf("scan %d: page %d delivered with %d bytes, want %d",
							i, pageNo, len(data), pageBytes)
					}
					mu.Lock()
					visits[i][pageNo]++
					mu.Unlock()
				},
			}
			if next()%4 == 0 { // EOF mid-stream: detach by stopping early
				spec.StopAfterPages = 1 + int(next())%length
			}
			specs[i] = spec
		}

		pool := buffer.MustNewPool(poolPages)
		mgr := core.MustNewManager(testManagerConfig(poolPages))
		r, err := NewRunner(Config{
			Pool:                   pool,
			Manager:                mgr,
			Store:                  store,
			PushDelivery:           true,
			PushBatchPages:         batch,
			SubscriberQueueBatches: queue,
			ReadTimeout:            2 * time.Millisecond,
			MaxReadRetries:         3,
			RetryBackoff:           20 * time.Microsecond,
			MaxRetryBackoff:        100 * time.Microsecond,
			DetachAfterFailures:    2,
		})
		if err != nil {
			t.Fatal(err)
		}

		// The run must terminate on its own; the deadline only converts a
		// hang into a diagnosable failure instead of a fuzzer timeout.
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		results, err := r.Run(ctx, specs)
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if ctx.Err() != nil {
			t.Fatal("push run hit the hang deadline")
		}

		for i, res := range results {
			spec := specs[i]
			footprint := spec.EndPage - spec.StartPage
			if res.Stopped {
				if spec.StopAfterPages == 0 {
					t.Errorf("scan %d stopped without a stop budget", i)
				} else if res.PagesRead != spec.StopAfterPages {
					t.Errorf("scan %d: stopped at %d pages, budget %d",
						i, res.PagesRead, spec.StopAfterPages)
				}
				continue
			}
			// Model: full footprint, every page once, exact content.
			if res.PagesRead != footprint || res.DegradedPages != 0 {
				t.Errorf("scan %d: read %d pages (%d degraded), footprint is %d",
					i, res.PagesRead, res.DegradedPages, footprint)
			}
			if want := wantChecksum(base, spec.StartPage, spec.EndPage, pageBytes); res.Checksum != want {
				t.Errorf("scan %d: checksum %#x, want %#x", i, res.Checksum, want)
			}
			mu.Lock()
			if len(visits[i]) != footprint {
				t.Errorf("scan %d: %d distinct pages visited, want %d", i, len(visits[i]), footprint)
			}
			for p, n := range visits[i] {
				if n != 1 {
					t.Errorf("scan %d: page %d delivered %d times", i, p, n)
				}
				if p < spec.StartPage || p >= spec.EndPage {
					t.Errorf("scan %d: page %d outside footprint [%d,%d)",
						i, p, spec.StartPage, spec.EndPage)
				}
			}
			mu.Unlock()
		}
		if n := mgr.ActiveScans(); n != 0 {
			t.Errorf("%d scans still registered", n)
		}
		pool.CheckInvariants()
	})
}
