package realtime

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/sim"
)

// The parity test checks that the realtime goroutine runner and the
// virtual-time sim kernel extract the *same logical decisions* from the
// Manager for an identical 4-scan script: placements (join/trail/residual/
// cold), page-priority hints per progress report, and the decision-event
// sequence. Only timing may differ between the modes, so the script is
// built to be timing-free: every Manager call is assigned a global step
// index, the sim side executes step k at virtual time k·1ms, and the
// realtime side gates the same calls through a turnstile hook that admits
// them in exactly script order. Scans advance in lockstep (one extent per
// round), so gaps never grow and no throttles fire — what remains is the
// purely structural decision trace, which must match exactly.

type parityKind int

const (
	parityStart parityKind = iota
	parityReport
	parityEnd
)

type parityStep struct {
	scan  int
	kind  parityKind
	pages int // for parityReport: total pages processed at this report
}

// parityScript interleaves the scans round-robin: scan i starts in round
// startRound[i], then reports one extent per round until it has covered
// tablePages, ending immediately after its final report.
func parityScript(startRound []int, tablePages, extent int) []parityStep {
	var steps []parityStep
	started := make([]bool, len(startRound))
	ended := make([]bool, len(startRound))
	for r := 0; ; r++ {
		live := false
		for i, sr := range startRound {
			if sr > r {
				live = true
				continue
			}
			if sr == r {
				steps = append(steps, parityStep{scan: i, kind: parityStart})
				started[i] = true
			}
			if !started[i] || ended[i] {
				continue
			}
			pages := extent * (r - sr + 1)
			if pages > tablePages {
				pages = tablePages
			}
			steps = append(steps, parityStep{scan: i, kind: parityReport, pages: pages})
			if pages == tablePages {
				steps = append(steps, parityStep{scan: i, kind: parityEnd})
				ended[i] = true
			} else {
				live = true
			}
		}
		if !live {
			return steps
		}
	}
}

// parityTrace is what one execution mode extracted from the Manager.
type parityTrace struct {
	ids        []core.ScanID
	placements []core.Placement
	advices    [][]core.Advice // per scan, in report order
	events     []core.Event    // decision events, Time zeroed
	stats      core.Stats      // ThrottleTime zeroed (virtual vs real waits)
}

func normalizeEvents(events []core.Event) []core.Event {
	out := make([]core.Event, len(events))
	for i, ev := range events {
		ev.Time = 0
		out[i] = ev
	}
	return out
}

// runSimScript executes the script on the sim kernel: one Proc per scan,
// performing step k at virtual time k·1ms, calling the Manager directly.
func runSimScript(t *testing.T, cfg core.Config, script []parityStep, scans, tablePages int) parityTrace {
	t.Helper()
	mgr := core.MustNewManager(cfg)
	tr := parityTrace{
		ids:        make([]core.ScanID, scans),
		placements: make([]core.Placement, scans),
		advices:    make([][]core.Advice, scans),
	}
	mgr.SetOnEvent(func(ev core.Event) { tr.events = append(tr.events, ev) })

	perScan := make([][]int, scans) // global step indices, per scan
	for k, st := range script {
		perScan[st.scan] = append(perScan[st.scan], k)
	}

	k := sim.New()
	stepTime := func(idx int) time.Duration { return time.Duration(idx) * time.Millisecond }
	for i := 0; i < scans; i++ {
		i := i
		mine := perScan[i]
		k.Spawn(fmt.Sprintf("scan%d", i), stepTime(mine[0]), func(p *sim.Proc) {
			for _, idx := range mine {
				if d := stepTime(idx) - p.Now(); d > 0 {
					p.Sleep(d)
				}
				st := script[idx]
				switch st.kind {
				case parityStart:
					id, pl, err := mgr.StartScan(core.ScanOpts{
						Table:      1,
						TablePages: tablePages,
					}, p.Now())
					if err != nil {
						panic(err)
					}
					tr.ids[i], tr.placements[i] = id, pl
				case parityReport:
					adv, err := mgr.ReportProgress(tr.ids[i], st.pages, p.Now())
					if err != nil {
						panic(err)
					}
					tr.advices[i] = append(tr.advices[i], adv)
				case parityEnd:
					if err := mgr.EndScan(tr.ids[i], p.Now()); err != nil {
						panic(err)
					}
				}
			}
		})
	}
	k.Run()
	if n := mgr.ActiveScans(); n != 0 {
		t.Fatalf("sim: %d scans leaked", n)
	}
	tr.events = normalizeEvents(tr.events)
	tr.stats = mgr.Stats()
	tr.stats.ThrottleTime = 0
	return tr
}

// turnstile admits the realtime workers' Manager calls in script order: a
// worker parks at SiteStartScan/SiteReport/SiteEndScan until the global
// position reaches its next scripted step, and advances the position at the
// matching Started/Reported/Ended site. Everything between Manager calls —
// page fetches, releases, busy retries — runs freely concurrent.
type turnstile struct {
	mu   sync.Mutex
	cond *sync.Cond
	pos  int
	next [][]int // per scan: remaining global step indices
	errs []string
}

func newTurnstile(script []parityStep, scans int) *turnstile {
	ts := &turnstile{next: make([][]int, scans)}
	ts.cond = sync.NewCond(&ts.mu)
	for k, st := range script {
		ts.next[st.scan] = append(ts.next[st.scan], k)
	}
	return ts
}

func (ts *turnstile) Hook(scan int, site Site) {
	switch site {
	case SiteStartScan, SiteReport, SiteEndScan:
		ts.mu.Lock()
		if len(ts.next[scan]) == 0 {
			// The worker is making a call the script did not predict;
			// record it and let it through rather than deadlock.
			ts.errs = append(ts.errs, fmt.Sprintf("scan %d: unscripted %s", scan, site))
			ts.mu.Unlock()
			return
		}
		for ts.pos != ts.next[scan][0] {
			ts.cond.Wait()
		}
		ts.mu.Unlock()
	case SiteStarted, SiteReported, SiteEnded:
		ts.mu.Lock()
		if len(ts.next[scan]) > 0 {
			ts.next[scan] = ts.next[scan][1:]
		}
		ts.pos++
		ts.cond.Broadcast()
		ts.mu.Unlock()
	}
}

// runRealScript executes the script with real goroutines through a Runner,
// the turnstile enforcing the script's Manager-call order.
func runRealScript(t *testing.T, cfg core.Config, script []parityStep, scans, tablePages int) parityTrace {
	t.Helper()
	pool := buffer.MustNewPool(cfg.BufferPoolPages)
	mgr := core.MustNewManager(cfg)
	tr := parityTrace{
		ids:        make([]core.ScanID, scans),
		placements: make([]core.Placement, scans),
		advices:    make([][]core.Advice, scans),
	}
	// Event delivery happens inside Manager calls, which the turnstile
	// serializes, so the unsynchronized append is race-free — and -race
	// verifies that claim on every run.
	mgr.SetOnEvent(func(ev core.Event) { tr.events = append(tr.events, ev) })

	ts := newTurnstile(script, scans)
	r, err := NewRunner(Config{
		Pool:    pool,
		Manager: mgr,
		Store:   testStore{pageBytes: 16},
		Hook:    ts.Hook,
		// OnAdvice runs after SiteReported releases the turnstile, so it
		// may race globally across scans; each worker appends only to its
		// own scan's slice, which is single-writer and safe.
		OnAdvice: func(scan, processed int, adv core.Advice) {
			tr.advices[scan] = append(tr.advices[scan], adv)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
		}
	}
	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.errs) > 0 {
		t.Fatalf("turnstile protocol violations: %v", ts.errs)
	}
	for i, res := range results {
		tr.ids[i], tr.placements[i] = res.ID, res.Placement
	}
	if n := mgr.ActiveScans(); n != 0 {
		t.Fatalf("realtime: %d scans leaked", n)
	}
	pool.CheckInvariants()
	tr.events = normalizeEvents(tr.events)
	tr.stats = mgr.Stats()
	tr.stats.ThrottleTime = 0
	return tr
}

func TestSimRealtimeParity(t *testing.T) {
	const (
		tablePages = 240
		poolPages  = 96
		extent     = 8
		scans      = 4
	)
	cfg := core.DefaultConfig(poolPages)
	cfg.PrefetchExtentPages = extent
	cfg.MinSharePages = 4

	startRound := []int{0, 2, 5, 8}
	script := parityScript(startRound, tablePages, extent)

	simTr := runSimScript(t, cfg, script, scans, tablePages)
	realTr := runRealScript(t, cfg, script, scans, tablePages)

	// The script keeps the scans in lockstep, so gaps never grow and no
	// throttle may fire in either mode; with that, every remaining decision
	// is structural and must be identical.
	if simTr.stats.ThrottleEvents != 0 || realTr.stats.ThrottleEvents != 0 {
		t.Fatalf("lockstep script throttled: sim %d, realtime %d events",
			simTr.stats.ThrottleEvents, realTr.stats.ThrottleEvents)
	}

	if !reflect.DeepEqual(simTr.ids, realTr.ids) {
		t.Errorf("scan IDs diverge: sim %v, realtime %v", simTr.ids, realTr.ids)
	}
	if !reflect.DeepEqual(simTr.placements, realTr.placements) {
		t.Errorf("placements diverge:\nsim:      %+v\nrealtime: %+v",
			simTr.placements, realTr.placements)
	}
	for i := range simTr.advices {
		if !reflect.DeepEqual(simTr.advices[i], realTr.advices[i]) {
			t.Errorf("scan %d advice traces diverge (%d vs %d reports):\nsim:      %+v\nrealtime: %+v",
				i, len(simTr.advices[i]), len(realTr.advices[i]), simTr.advices[i], realTr.advices[i])
		}
	}
	if !reflect.DeepEqual(simTr.events, realTr.events) {
		t.Errorf("event traces diverge (%d vs %d events)", len(simTr.events), len(realTr.events))
		max := len(simTr.events)
		if len(realTr.events) > max {
			max = len(realTr.events)
		}
		for k := 0; k < max; k++ {
			var s, r string
			if k < len(simTr.events) {
				s = simTr.events[k].String()
			}
			if k < len(realTr.events) {
				r = realTr.events[k].String()
			}
			if s != r {
				t.Errorf("  step %d: sim %q, realtime %q", k, s, r)
			}
		}
	}
	if !reflect.DeepEqual(simTr.stats, realTr.stats) {
		t.Errorf("manager stats diverge:\nsim:      %+v\nrealtime: %+v", simTr.stats, realTr.stats)
	}

	// Sanity: the script actually exercised sharing — later scans must have
	// joined or trailed earlier ones, and leader/trailer hints must appear.
	if simTr.stats.JoinPlacements+simTr.stats.TrailPlacements == 0 {
		t.Errorf("script produced no shared placements: %+v", simTr.stats)
	}
	var high, low bool
	for _, advs := range simTr.advices {
		for _, adv := range advs {
			if adv.Priority == core.PageHigh {
				high = true
			}
			if adv.Priority == core.PageLow {
				low = true
			}
		}
	}
	if !high || !low {
		t.Errorf("script produced no leader/trailer priority hints (high=%v low=%v)", high, low)
	}
}
