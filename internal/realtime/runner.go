package realtime

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
)

// Run executes the specs concurrently, one goroutine per scan, and returns
// one result per spec (index-aligned). Cancelling ctx stops every scan at
// its next page boundary; stopped scans are deregistered cleanly and their
// results marked Stopped rather than failed. The returned error joins hard
// failures only (Manager rejections, store errors) — cancellation is not an
// error.
func (r *Runner) Run(ctx context.Context, specs []ScanSpec) ([]ScanResult, error) {
	if len(specs) == 0 {
		return nil, errors.New("realtime: Run with no scans")
	}
	for i, spec := range specs {
		if spec.TablePages <= 0 {
			return nil, fmt.Errorf("realtime: scan %d of table with %d pages", i, spec.TablePages)
		}
		if spec.PageID == nil {
			return nil, fmt.Errorf("realtime: scan %d without a PageID mapping", i)
		}
		if spec.StartDelay < 0 || spec.PageDelay < 0 || spec.StopAfterPages < 0 {
			return nil, fmt.Errorf("realtime: scan %d has a negative knob", i)
		}
	}

	var pf *prefetcher
	if r.cfg.PrefetchWorkers > 0 {
		pf = newPrefetcher(r.cfg.Pool, r.cfg.Store, r.cfg.Collector,
			r.cfg.PrefetchWorkers, r.cfg.PrefetchQueueExtents)
	}

	results := make([]ScanResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runScan(ctx, i, specs[i], pf, &results[i])
		}()
	}
	wg.Wait()
	if pf != nil {
		pf.stop()
	}

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("scan %d: %w", i, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// runScan is the body of one scan worker.
func (r *Runner) runScan(ctx context.Context, idx int, spec ScanSpec, pf *prefetcher, res *ScanResult) {
	cfg := &r.cfg
	res.Scan = idx
	res.ID = core.NoScan
	hook := func(site Site) {
		if cfg.Hook != nil {
			cfg.Hook(idx, site)
		}
	}
	defer hook(SiteExit)

	hook(SiteSpawn)
	if spec.StartDelay > 0 {
		cfg.Sleep(ctx, spec.StartDelay)
	}
	if ctx.Err() != nil {
		res.Stopped = true
		return
	}

	end := spec.EndPage
	if end == 0 {
		end = spec.TablePages
	}
	length := end - spec.StartPage

	hook(SiteStartScan)
	id, pl, err := cfg.Manager.StartScan(core.ScanOpts{
		Table:             spec.Table,
		TablePages:        spec.TablePages,
		StartPage:         spec.StartPage,
		EndPage:           spec.EndPage,
		EstimatedDuration: spec.EstimatedDuration,
		Importance:        spec.Importance,
	}, cfg.Clock.Now())
	hook(SiteStarted)
	if err != nil {
		res.Err = err
		return
	}
	cfg.Collector.ScanStarted()
	res.ID = id
	res.Placement = pl
	res.Started = cfg.Clock.Now()

	// The scan always deregisters, whatever path it leaves on: leaked
	// registrations would pin group structure and placement decisions for
	// every later scan of the table.
	defer func() {
		hook(SiteEndScan)
		if err := cfg.Manager.EndScan(id, cfg.Clock.Now()); err != nil && res.Err == nil {
			res.Err = err
		}
		hook(SiteEnded)
		cfg.Collector.ScanEnded(res.Stopped)
		res.Done = cfg.Clock.Now()
	}()

	limit := length
	if spec.StopAfterPages > 0 && spec.StopAfterPages < length {
		limit = spec.StopAfterPages
		res.Stopped = true
	}
	interval := cfg.Manager.Config().PrefetchExtentPages
	reportAt := interval
	prio := core.PageNormal

	pageNo := func(i int) int {
		return spec.StartPage + (pl.Origin-spec.StartPage+i)%length
	}

	for v := 0; v < limit; v++ {
		if ctx.Err() != nil {
			res.Stopped = true
			return
		}
		// At each extent boundary, ask the prefetch pipeline to stage
		// the following extent. Requests are deduplicated downstream,
		// so a whole group effectively issues one read-ahead stream.
		if pf != nil && v%interval == 0 {
			pf.enqueue(r.extentPIDs(spec, pageNo, v+interval, limit, interval))
		}

		pid := spec.PageID(pageNo(v))
		data, ok := r.fetchPage(ctx, idx, pid, hook, res)
		if !ok {
			return
		}
		if len(data) > 0 {
			res.Checksum += uint64(data[0]) + uint64(data[len(data)-1])<<8
		}
		res.PagesRead++
		if spec.PageDelay > 0 {
			cfg.Sleep(ctx, spec.PageDelay)
		}

		done := v + 1
		if done >= reportAt || done == limit {
			hook(SiteReport)
			adv, err := cfg.Manager.ReportProgress(id, done, cfg.Clock.Now())
			hook(SiteReported)
			if err != nil {
				r.releasePage(pid, prio, res)
				res.Err = err
				return
			}
			if cfg.OnAdvice != nil {
				cfg.OnAdvice(idx, done, adv)
			}
			prio = adv.Priority
			next := adv.NextReportPages
			if next <= 0 {
				next = interval
			}
			reportAt = done + next
			if adv.Wait > 0 {
				cfg.Collector.Throttled(adv.Wait)
				res.ThrottleWait += adv.Wait
				hook(SiteThrottle)
				cfg.Sleep(ctx, adv.Wait)
			}
		}
		r.releasePage(pid, prio, res)
	}
}

// fetchPage pins pid, filling it from the store on a miss and backing off
// while another worker's read is in flight. ok=false means the scan should
// stop (context cancelled or hard error, recorded in res).
func (r *Runner) fetchPage(ctx context.Context, idx int, pid disk.PageID, hook func(Site), res *ScanResult) ([]byte, bool) {
	cfg := &r.cfg
	for {
		st, data := cfg.Pool.Acquire(pid)
		switch st {
		case buffer.Hit:
			cfg.Collector.PageHit()
			res.Hits++
			return data, true
		case buffer.Miss:
			cfg.Collector.PageMiss()
			res.Misses++
			data, err := cfg.Store.ReadPage(pid)
			if err != nil {
				cfg.Pool.Abort(pid)
				res.Err = err
				return nil, false
			}
			if err := cfg.Pool.Fill(pid, data); err != nil {
				res.Err = err
				return nil, false
			}
			return data, true
		case buffer.Busy:
			cfg.Collector.BusyRetry()
			res.BusyRetries++
			hook(SiteBusy)
			cfg.Sleep(ctx, cfg.BusyRetryDelay)
			if ctx.Err() != nil {
				res.Stopped = true
				return nil, false
			}
		default:
			res.Err = fmt.Errorf("realtime: unexpected acquire status %v", st)
			return nil, false
		}
	}
}

// releasePage unpins a processed page at the advised priority, recording
// bookkeeping errors (they indicate a runner bug, not a workload condition).
func (r *Runner) releasePage(pid disk.PageID, prio core.PagePriority, res *ScanResult) {
	if err := r.cfg.Pool.Release(pid, poolPriority(prio)); err != nil && res.Err == nil {
		res.Err = err
	}
}

// extentPIDs collects the device pages of the extent starting at scan-order
// index from, clipped to the scan's limit.
func (r *Runner) extentPIDs(spec ScanSpec, pageNo func(int) int, from, limit, interval int) []disk.PageID {
	if from >= limit {
		return nil
	}
	to := from + interval
	if to > limit {
		to = limit
	}
	pids := make([]disk.PageID, 0, to-from)
	for i := from; i < to; i++ {
		pids = append(pids, spec.PageID(pageNo(i)))
	}
	return pids
}
