package realtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/trace"
)

// allPinnedBackoff scales BusyRetryDelay for the AllPinned acquire status:
// with no read in flight a frame only frees when another scan releases one,
// so the retry cadence follows page processing, not I/O completion.
const allPinnedBackoff = 8

// Run executes the specs concurrently, one goroutine per scan, and returns
// one result per spec (index-aligned). Cancelling ctx stops every scan at
// its next page boundary; stopped scans are deregistered cleanly and their
// results marked Stopped rather than failed. The returned error joins hard
// failures only (Manager rejections, store errors) — cancellation is not an
// error.
func (r *Runner) Run(ctx context.Context, specs []ScanSpec) ([]ScanResult, error) {
	if len(specs) == 0 {
		return nil, errors.New("realtime: Run with no scans")
	}
	for i, spec := range specs {
		if spec.TablePages <= 0 {
			return nil, fmt.Errorf("realtime: scan %d of table with %d pages", i, spec.TablePages)
		}
		if spec.PageID == nil {
			return nil, fmt.Errorf("realtime: scan %d without a PageID mapping", i)
		}
		if spec.StartDelay < 0 || spec.PageDelay < 0 || spec.StopAfterPages < 0 {
			return nil, fmt.Errorf("realtime: scan %d has a negative knob", i)
		}
	}

	if r.cfg.PushDelivery {
		return r.runPush(ctx, specs)
	}

	var pf *prefetcher
	if r.cfg.PrefetchWorkers > 0 {
		// Prefetch reads share the scans' timeout discipline (one
		// attempt, no retries — prefetch is best-effort), so a stalling
		// page cannot wedge a worker and starve the group's shared
		// read-ahead stream.
		read := func(pid disk.PageID) ([]byte, error) { return r.storeRead(ctx, pid, 0) }
		pf = newPrefetcher(r.cfg.Pool, read, r.cfg.Collector, r.cfg.Clock.Now,
			r.cfg.PrefetchWorkers, r.cfg.PrefetchQueueExtents, r.flights)
	}

	results := make([]ScanResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.runScan(ctx, i, specs[i], pf, &results[i])
		}()
	}
	wg.Wait()
	if pf != nil {
		pf.stop()
	}

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("scan %d: %w", i, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// feedsPool reports whether the runner feeds scan registrations to the pool:
// the pool's policy must consume them and the feed must not be disabled.
func (r *Runner) feedsPool() bool {
	return r.cfg.Pool.ScanAware() && !r.cfg.DisablePoolFeed
}

// runScan is the body of one scan worker.
func (r *Runner) runScan(ctx context.Context, idx int, spec ScanSpec, pf *prefetcher, res *ScanResult) {
	cfg := &r.cfg
	res.Scan = idx
	res.ID = core.NoScan
	hook := func(site Site) {
		if cfg.Hook != nil {
			cfg.Hook(idx, site)
		}
	}
	defer hook(SiteExit)

	hook(SiteSpawn)
	if spec.StartDelay > 0 {
		cfg.Sleep(ctx, spec.StartDelay)
	}
	if ctx.Err() != nil {
		res.Stopped = true
		return
	}

	end := spec.EndPage
	if end == 0 {
		end = spec.TablePages
	}
	length := end - spec.StartPage

	hook(SiteStartScan)
	id, pl, err := cfg.Manager.StartScan(core.ScanOpts{
		Table:             spec.Table,
		TablePages:        spec.TablePages,
		StartPage:         spec.StartPage,
		EndPage:           spec.EndPage,
		EstimatedDuration: spec.EstimatedDuration,
		Importance:        spec.Importance,
	}, cfg.Clock.Now())
	hook(SiteStarted)
	if err != nil {
		res.Err = err
		return
	}
	cfg.Collector.ScanStarted()
	res.ID = id
	res.Placement = pl
	res.Started = cfg.Clock.Now()

	// The scan span covers everything from here through EndScan; its close
	// (registered before the EndScan defer, so it runs after) carries the
	// scan's duration. With no pre-allocated spec.Span this is all no-ops.
	span := cfg.Tracer.OpenSpan(spec.Span, trace.SpanScan, int64(id), int64(spec.Table))
	defer span.Close()
	sc := span.Context()

	// A scan-aware pool (predictive policy) learns this scan's footprint
	// and initial speed estimate; progress reports below keep it current.
	// Every store in the engine lays table pages out contiguously, so the
	// device page of table-relative page 0 anchors the footprint.
	feedPool := r.feedsPool()
	if feedPool {
		base := spec.PageID(spec.StartPage) - disk.PageID(spec.StartPage)
		var seed float64
		if f, ok := cfg.Manager.ScanFeed(id); ok {
			seed = f.SpeedPagesSec
		}
		cfg.Pool.RegisterScan(int64(id), buffer.ScanFootprint{
			Base: base, Start: spec.StartPage, End: end, Origin: pl.Origin,
		}, seed)
		cfg.Collector.ScanFeedRegistered()
	}

	// The scan always deregisters, whatever path it leaves on: leaked
	// registrations would pin group structure and placement decisions for
	// every later scan of the table.
	defer func() {
		cfg.Pool.UnregisterScan(int64(id))
		hook(SiteEndScan)
		if err := cfg.Manager.EndScan(id, cfg.Clock.Now()); err != nil && res.Err == nil {
			res.Err = err
		}
		hook(SiteEnded)
		cfg.Collector.ScanEnded(res.Stopped)
		res.Done = cfg.Clock.Now()
	}()

	limit := length
	if spec.StopAfterPages > 0 && spec.StopAfterPages < length {
		limit = spec.StopAfterPages
		res.Stopped = true
	}
	interval := cfg.Manager.Config().PrefetchExtentPages
	reportAt := interval
	prio := core.PageNormal
	var deg degradeState

	pageNo := func(i int) int {
		return spec.StartPage + (pl.Origin-spec.StartPage+i)%length
	}

	for v := 0; v < limit; v++ {
		if ctx.Err() != nil {
			res.Stopped = true
			return
		}
		// At each extent boundary, ask the prefetch pipeline to stage
		// the following extent. Requests are deduplicated downstream,
		// so a whole group effectively issues one read-ahead stream.
		if pf != nil && v%interval == 0 {
			pf.enqueue(r.extentPIDs(spec, pageNo, v+interval, limit, interval))
		}

		pid := spec.PageID(pageNo(v))
		data, out := r.fetchPage(ctx, id, sc, pid, hook, res, &deg)
		if out == fetchStop {
			return
		}
		pinned := out == fetchOK
		if pinned || out == fetchOKOpt {
			if len(data) > 0 {
				res.Checksum += uint64(data[0]) + uint64(data[len(data)-1])<<8
			}
			if spec.OnPage != nil && data != nil {
				spec.OnPage(pageNo(v), data)
			}
			res.PagesRead++
		}
		if spec.PageDelay > 0 {
			cfg.Sleep(ctx, spec.PageDelay)
		}

		// Progress counts degraded (skipped) pages too: the manager
		// tracks the scan's *position*, and the scan has moved past the
		// page whether or not its bytes arrived.
		done := v + 1
		if done >= reportAt || done == limit {
			hook(SiteReport)
			adv, err := cfg.Manager.ReportProgress(id, done, cfg.Clock.Now())
			hook(SiteReported)
			if err != nil {
				if pinned {
					r.releasePage(pid, prio, res)
				}
				res.Err = err
				return
			}
			if cfg.OnAdvice != nil {
				cfg.OnAdvice(idx, done, adv)
			}
			if feedPool {
				if f, ok := cfg.Manager.ScanFeed(id); ok {
					cfg.Pool.UpdateScan(int64(id), f.Processed, f.SpeedPagesSec)
					cfg.Collector.ScanFeedUpdated()
				}
			}
			prio = adv.Priority
			next := adv.NextReportPages
			if next <= 0 {
				next = interval
			}
			reportAt = done + next
			if adv.Wait > 0 {
				cfg.Collector.Throttled(adv.Wait)
				res.ThrottleWait += adv.Wait
				hook(SiteThrottle)
				cfg.Sleep(ctx, adv.Wait)
				cfg.Tracer.EmitSpan(sc, trace.SpanThrottle, int64(id), int64(spec.Table), adv.Wait)
			}
		}
		if pinned {
			r.releasePage(pid, prio, res)
		}
	}
}

// degradeState tracks one scan's read-failure streak across pages and
// whether the scan is currently detached from its group. It lives on the
// scan worker's stack; the Manager holds the authoritative detached flag,
// this copy just avoids redundant Detach/Rejoin calls.
type degradeState struct {
	consecutive int // consecutive failed store read attempts
	detached    bool
}

// fetchOutcome says what fetchPage produced.
type fetchOutcome int

const (
	// fetchOK: the page is pinned and data is valid; the caller must
	// release it.
	fetchOK fetchOutcome = iota
	// fetchOKOpt: data is valid but came from the pool's optimistic
	// lock-free read path — nothing is pinned and the caller must NOT
	// release.
	fetchOKOpt
	// fetchSkip: the page permanently failed and the scan continues
	// degraded; nothing is pinned.
	fetchSkip
	// fetchStop: the scan must stop (cancellation or hard error, recorded
	// in res); nothing is pinned.
	fetchStop
)

// fetchPage pins pid, filling it from the store on a miss — with timeouts,
// retries, and degradation tracking — and backing off while another worker's
// read is in flight. sc is the owning scan's span context: physical reads
// and pool waits emit child spans under it and accumulate in res, all on
// the slow paths only — a pool hit measures nothing.
func (r *Runner) fetchPage(ctx context.Context, id core.ScanID, sc trace.SpanContext, pid disk.PageID, hook func(Site), res *ScanResult, deg *degradeState) ([]byte, fetchOutcome) {
	cfg := &r.cfg
	for {
		// Lock-free fast path first: under array translation a resident,
		// settled page is served without touching the shard mutex (and
		// without pinning — eviction can't tear the immutable content cell
		// out from under us). Map-translation pools return false
		// immediately with no side effects, so the deterministic replay
		// goldens are unaffected. Retrying it per loop iteration also lets
		// a Busy waiter catch the page the moment a coalesced Fill settles
		// its version.
		if data, ok := cfg.Pool.ReadOptimistic(pid); ok {
			if !r.skipPageCount {
				cfg.Collector.PageHit()
				cfg.Collector.OptimisticHit()
			}
			res.Hits++
			res.OptimisticHits++
			return data, fetchOKOpt
		}
		st, data := cfg.Pool.Acquire(pid)
		switch st {
		case buffer.Hit:
			if !r.skipPageCount {
				cfg.Collector.PageHit()
			}
			res.Hits++
			return data, fetchOK
		case buffer.Miss:
			if !r.skipPageCount {
				cfg.Collector.PageMiss()
			}
			res.Misses++
			// This caller won the pool's pending frame and leads the
			// physical read; with coalescing on, register the flight so
			// group members missing on the same page join it instead of
			// sleep-polling. The frame must be settled (Fill/Abort)
			// before finish wakes them.
			fl := r.flights.begin(pid, false)
			readStart := cfg.Clock.Now()
			data, err := r.readPage(ctx, id, pid, hook, res, deg)
			readWait := cfg.Clock.Now() - readStart
			res.ReadWait += readWait
			cfg.Tracer.EmitSpan(sc, trace.SpanRead, int64(id), trace.NoID, readWait)
			if err != nil {
				cfg.Pool.Abort(pid)
				r.flights.finish(pid, fl, err)
				if ctx.Err() != nil {
					res.Stopped = true
					return nil, fetchStop
				}
				cfg.Collector.PageFailed()
				cfg.Tracer.Emit(trace.Event{
					Kind: trace.KindPageFailed, Scan: int64(id), Page: int64(pid),
					Peer: trace.NoID, Table: trace.NoID, Prio: -1,
				})
				if cfg.ContinueOnPageFailure {
					res.DegradedPages++
					return nil, fetchSkip
				}
				res.Err = err
				return nil, fetchStop
			}
			if err := cfg.Pool.Fill(pid, data); err != nil {
				r.flights.finish(pid, fl, err)
				res.Err = err
				return nil, fetchStop
			}
			r.flights.finish(pid, fl, nil)
			return data, fetchOK
		case buffer.Busy:
			if fl, ok := r.flights.lookup(pid); ok {
				out, retry := r.waitFlight(ctx, id, sc, pid, fl, res)
				if retry {
					continue
				}
				return nil, out
			}
			cfg.Collector.BusyRetry()
			res.BusyRetries++
			hook(SiteBusy)
			r.poolSleep(ctx, id, sc, cfg.BusyRetryDelay, res)
			if ctx.Err() != nil {
				res.Stopped = true
				return nil, fetchStop
			}
		case buffer.AllPinned:
			// Every frame is pinned and no read is in flight: a frame
			// only frees when some scan releases one, which happens on
			// a page-processing timescale, not an I/O one. Back off
			// well past the busy delay instead of spinning.
			cfg.Collector.BusyRetry()
			res.BusyRetries++
			hook(SiteBusy)
			r.poolSleep(ctx, id, sc, allPinnedBackoff*cfg.BusyRetryDelay, res)
			if ctx.Err() != nil {
				res.Stopped = true
				return nil, fetchStop
			}
		default:
			res.Err = fmt.Errorf("realtime: unexpected acquire status %v", st)
			return nil, fetchStop
		}
	}
}

// poolSleep is a pool-contention backoff: the sleep is measured, accumulated
// in res.PoolWait, and emitted as a pool-wait span under the scan.
func (r *Runner) poolSleep(ctx context.Context, id core.ScanID, sc trace.SpanContext, d time.Duration, res *ScanResult) {
	cfg := &r.cfg
	t0 := cfg.Clock.Now()
	cfg.Sleep(ctx, d)
	wait := cfg.Clock.Now() - t0
	res.PoolWait += wait
	cfg.Tracer.EmitSpan(sc, trace.SpanPoolWait, int64(id), trace.NoID, wait)
}

// waitFlight blocks the scan on another caller's in-flight read of pid. On a
// successful fill it reports retry=true: the re-Acquire hits the now-valid
// frame and the waiter is accounted as an ordinary pool hit, having issued
// no physical I/O. A failed best-effort (prefetch) flight also reports
// retry=true — the frame was aborted, so the waiter's re-Acquire misses and
// runs this scan's own timeout/retry policy. A failed scan-led flight
// already spent the full retry budget, so its error propagates: the waiter
// records a degraded page (or fails) without duplicating retries, and
// without touching the pool — exactly one Abort (the leader's) is counted
// per failed coalesced read.
func (r *Runner) waitFlight(ctx context.Context, id core.ScanID, sc trace.SpanContext, pid disk.PageID, fl *flight, res *ScanResult) (out fetchOutcome, retry bool) {
	cfg := &r.cfg
	// Counted before blocking, so tests can gate the leader's store read
	// on the number of joined waiters.
	cfg.Collector.ReadCoalesced()
	res.CoalescedReads++
	cfg.Tracer.Emit(trace.Event{
		Kind: trace.KindReadCoalesced, Scan: int64(id), Page: int64(pid),
		Peer: trace.NoID, Table: trace.NoID, Prio: -1,
	})
	t0 := cfg.Clock.Now()
	stopped := false
	select {
	case <-ctx.Done():
		stopped = true
	case <-fl.done:
	}
	wait := cfg.Clock.Now() - t0
	res.PoolWait += wait
	cfg.Tracer.EmitSpan(sc, trace.SpanPoolWait, int64(id), trace.NoID, wait)
	if stopped {
		res.Stopped = true
		return fetchStop, false
	}
	if fl.err == nil || fl.fallback {
		return 0, true
	}
	if ctx.Err() != nil {
		// The leader's error was (or is indistinguishable from) run
		// cancellation; stop quietly like any cancelled scan.
		res.Stopped = true
		return fetchStop, false
	}
	cfg.Collector.CoalescedFailure()
	res.CoalescedFailures++
	cfg.Collector.PageFailed()
	cfg.Tracer.Emit(trace.Event{
		Kind: trace.KindPageFailed, Scan: int64(id), Page: int64(pid),
		Peer: trace.NoID, Table: trace.NoID, Prio: -1,
	})
	if cfg.ContinueOnPageFailure {
		res.DegradedPages++
		return fetchSkip, false
	}
	res.Err = fl.err
	return fetchStop, false
}

// readPage performs the store read for a missed page: each attempt is
// bounded by ReadTimeout, failures are retried up to MaxReadRetries with
// exponential backoff, and the scan's degradation state advances — crossing
// DetachAfterFailures consecutive failures detaches the scan from group
// coordination, the first successful read rejoins it.
func (r *Runner) readPage(ctx context.Context, id core.ScanID, pid disk.PageID, hook func(Site), res *ScanResult, deg *degradeState) ([]byte, error) {
	cfg := &r.cfg
	backoff := cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		readStart := cfg.Clock.Now()
		data, err := r.storeRead(ctx, pid, attempt)
		if err == nil {
			cfg.Collector.PageReadTimed(cfg.Clock.Now() - readStart)
			deg.consecutive = 0
			if deg.detached {
				deg.detached = false
				hook(SiteRejoin)
				rerr := cfg.Manager.RejoinScan(id, cfg.Clock.Now())
				hook(SiteRejoined)
				if rerr != nil && res.Err == nil {
					res.Err = rerr
				}
				if r.feedsPool() {
					cfg.Pool.SetScanActive(int64(id), true)
				}
				cfg.Collector.ScanRejoined()
				res.Rejoins++
			}
			return data, nil
		}
		if ctx.Err() != nil {
			return nil, err // run cancelled, not a device failure
		}
		if errors.Is(err, context.DeadlineExceeded) {
			cfg.Collector.ReadTimedOut()
			res.ReadTimeouts++
		}
		deg.consecutive++
		if cfg.DetachAfterFailures > 0 && !deg.detached &&
			deg.consecutive >= cfg.DetachAfterFailures {
			deg.detached = true
			hook(SiteDetach)
			derr := cfg.Manager.DetachScan(id, cfg.Clock.Now())
			hook(SiteDetached)
			if derr != nil && res.Err == nil {
				res.Err = derr
			}
			if r.feedsPool() {
				// A detached scan's reports stop; its stale position
				// must not keep protecting pages.
				cfg.Pool.SetScanActive(int64(id), false)
			}
			cfg.Collector.ScanDetached()
			res.Detaches++
		}
		if attempt >= cfg.MaxReadRetries {
			return nil, err
		}
		cfg.Collector.ReadRetried()
		res.ReadRetries++
		hook(SiteRetry)
		cfg.Sleep(ctx, backoff)
		if backoff *= 2; backoff > cfg.MaxRetryBackoff {
			backoff = cfg.MaxRetryBackoff
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
}

// storeRead performs one read attempt against the page store, bounded by
// ReadTimeout. Context-aware stores get the deadline through their context;
// plain stores are read through a helper goroutine the runner abandons at
// the deadline (the goroutine ends when the underlying read returns).
func (r *Runner) storeRead(ctx context.Context, pid disk.PageID, attempt int) ([]byte, error) {
	cfg := &r.cfg
	if cfg.ReadTimeout <= 0 {
		if r.ctxStore != nil {
			return r.ctxStore.ReadPageAt(ctx, pid, attempt)
		}
		return cfg.Store.ReadPage(pid)
	}
	rctx, cancel := context.WithTimeout(ctx, cfg.ReadTimeout)
	defer cancel()
	if r.ctxStore != nil {
		return r.ctxStore.ReadPageAt(rctx, pid, attempt)
	}
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		data, err := cfg.Store.ReadPage(pid)
		ch <- result{data, err}
	}()
	select {
	case out := <-ch:
		return out.data, out.err
	case <-rctx.Done():
		return nil, fmt.Errorf("realtime: read of page %d: %w", pid, rctx.Err())
	}
}

// releasePage unpins a processed page at the advised priority, recording
// bookkeeping errors (they indicate a runner bug, not a workload condition).
func (r *Runner) releasePage(pid disk.PageID, prio core.PagePriority, res *ScanResult) {
	if err := r.cfg.Pool.Release(pid, poolPriority(prio)); err != nil && res.Err == nil {
		res.Err = err
	}
}

// extentPIDs collects the device pages of the extent starting at scan-order
// index from, clipped to the scan's limit.
func (r *Runner) extentPIDs(spec ScanSpec, pageNo func(int) int, from, limit, interval int) []disk.PageID {
	if from >= limit {
		return nil
	}
	to := from + interval
	if to > limit {
		to = limit
	}
	pids := make([]disk.PageID, 0, to-from)
	for i := from; i < to; i++ {
		pids = append(pids, spec.PageID(pageNo(i)))
	}
	return pids
}
