package realtime

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
	"scanshare/internal/metrics"
)

// gateStore wraps every read in a gate: the read does not return until the
// collector has seen wantJoined coalesced waiters (or a liberal deadline
// passes, so a bug fails assertions instead of hanging the test). Because
// ReadsCoalesced is counted *before* a waiter blocks, holding the leader's
// read open until the count arrives guarantees every other scan joined this
// flight — making the one-physical-read assertion deterministic rather than
// timing-dependent.
type gateStore struct {
	col        *metrics.Collector
	wantJoined int64
	reads      atomic.Int64
	err        error // returned (after the gate) instead of data when set
}

func (s *gateStore) ReadPage(pid disk.PageID) ([]byte, error) {
	s.reads.Add(1)
	deadline := time.Now().Add(5 * time.Second)
	for s.col.Snapshot().ReadsCoalesced < s.wantJoined && time.Now().Before(deadline) {
		time.Sleep(20 * time.Microsecond)
	}
	if s.err != nil {
		return nil, s.err
	}
	return []byte{byte(pid), byte(pid >> 8)}, nil
}

func coalesceSpecs(n int) []ScanSpec {
	specs := make([]ScanSpec, n)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: 1,
			PageID:     func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
		}
	}
	return specs
}

// TestCoalesceSharesOneRead pins the singleflight guarantee: four scans miss
// on the same page and exactly one physical read happens — the leader's — with
// the other three joining its flight and then hitting the filled frame.
func TestCoalesceSharesOneRead(t *testing.T) {
	const scans = 4
	col := new(metrics.Collector)
	store := &gateStore{col: col, wantJoined: scans - 1}
	pool := buffer.MustNewPool(8)
	mgr := core.MustNewManager(testManagerConfig(8))
	r, err := NewRunner(Config{
		Pool:          pool,
		Manager:       mgr,
		Store:         store,
		Collector:     col,
		CoalesceReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	results, err := r.Run(context.Background(), coalesceSpecs(scans))
	if err != nil {
		t.Fatal(err)
	}
	pool.CheckInvariants()

	if n := store.reads.Load(); n != 1 {
		t.Errorf("%d physical reads of the shared page, want exactly 1", n)
	}
	var misses, hits, coalesced int64
	for i, res := range results {
		if res.PagesRead != 1 || res.Err != nil {
			t.Errorf("scan %d: read %d pages, err %v", i, res.PagesRead, res.Err)
		}
		misses += res.Misses
		hits += res.Hits
		coalesced += res.CoalescedReads
		if res.CoalescedFailures != 0 {
			t.Errorf("scan %d: %d coalesced failures on a healthy read", i, res.CoalescedFailures)
		}
	}
	if misses != 1 || hits != scans-1 || coalesced != scans-1 {
		t.Errorf("misses %d, hits %d, coalesced %d; want 1, %d, %d",
			misses, hits, coalesced, scans-1, scans-1)
	}
	ps := pool.Stats()
	if ps.Misses != 1 || ps.Fills != 1 || ps.Hits != scans-1 || ps.Aborts != 0 {
		t.Errorf("pool stats %+v: want 1 miss filled once, %d hits, no aborts", ps, scans-1)
	}
	cs := col.Snapshot()
	if cs.ReadsCoalesced != scans-1 || cs.CoalescedFailures != 0 {
		t.Errorf("collector: %d coalesced (%d failed), want %d (0)",
			cs.ReadsCoalesced, cs.CoalescedFailures, scans-1)
	}
}

// TestCoalescedFailurePropagates pins the failure side: when the leading read
// fails for good, every joined waiter observes the same error without
// re-running the leader's retries, and the pool records exactly one Abort —
// the leader's — for the whole coalesced group.
func TestCoalescedFailurePropagates(t *testing.T) {
	const scans = 4
	sentinel := errors.New("head crash")
	col := new(metrics.Collector)
	store := &gateStore{col: col, wantJoined: scans - 1, err: sentinel}
	pool := buffer.MustNewPool(8)
	mgr := core.MustNewManager(testManagerConfig(8))
	r, err := NewRunner(Config{
		Pool:          pool,
		Manager:       mgr,
		Store:         store,
		Collector:     col,
		CoalesceReads: true,
		// First error is final: one physical attempt total proves waiters
		// inherit the outcome instead of re-running a retry ladder each.
	})
	if err != nil {
		t.Fatal(err)
	}

	results, err := r.Run(context.Background(), coalesceSpecs(scans))
	if err == nil {
		t.Fatal("run with a permanently failing page reported success")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("run error %v does not wrap the store error", err)
	}
	pool.CheckInvariants()

	if n := store.reads.Load(); n != 1 {
		t.Errorf("%d physical reads, want 1: waiters duplicated the failed read", n)
	}
	for i, res := range results {
		if !errors.Is(res.Err, sentinel) {
			t.Errorf("scan %d: err %v, want the leader's store error", i, res.Err)
		}
		if res.PagesRead != 0 || res.DegradedPages != 0 {
			t.Errorf("scan %d: %d pages read, %d degraded after a fatal page failure",
				i, res.PagesRead, res.DegradedPages)
		}
	}
	ps := pool.Stats()
	if ps.Misses != 1 || ps.Aborts != 1 || ps.Fills != 0 || ps.Hits != 0 {
		t.Errorf("pool stats %+v: want exactly one miss, one abort, nothing delivered", ps)
	}
	if got := ps.PagesDelivered(); got != 0 {
		t.Errorf("pages delivered %d, want 0", got)
	}
	cs := col.Snapshot()
	if cs.ReadsCoalesced != scans-1 || cs.CoalescedFailures != scans-1 {
		t.Errorf("collector: %d coalesced, %d failed; want %d of each",
			cs.ReadsCoalesced, cs.CoalescedFailures, scans-1)
	}
	if cs.PagesFailed != scans {
		t.Errorf("collector pages failed %d, want %d (leader + every waiter)", cs.PagesFailed, scans)
	}
}

// TestCoalesceChaosStress is the coalescing-enabled, sharded-pool counterpart
// of TestChaosStress: 20 free-running scans over a multi-shard pool with
// coalescing on, driven through a fault plan with a permanently bad band,
// recovering stalls, transient errors, and latency spikes — run under -race.
// It asserts the adjusted accounting: a waiter whose flight failed records a
// degraded page with no miss of its own, so the per-scan identity becomes
// Hits + Misses == PagesRead + DegradedPages − CoalescedFailures, while the
// pool-side Misses == Fills + Aborts stays exact (one abort per failed read,
// never one per waiter).
func TestCoalesceChaosStress(t *testing.T) {
	const (
		tablePages = 400
		poolPages  = 200
		poolShards = 8
		pageBytes  = 64
		scans      = 20
		base       = disk.PageID(1000)

		badFirst, badLast = 300, 310
	)
	plan := fault.Plan{
		Seed: 11,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: base + badFirst, LastPage: base + badLast, Prob: 1},
			{Kind: fault.KindStall, FirstPage: base + 100, LastPage: base + 140, Prob: 0.3, UntilAttempt: 1},
			{Kind: fault.KindError, Prob: 0.15, UntilAttempt: 2},
			{Kind: fault.KindLatency, Prob: 0.05, Latency: 200 * time.Microsecond},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: pageBytes}, plan)

	pool := buffer.MustNewPoolShards(poolPages, poolShards)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	col := new(metrics.Collector)
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Collector:             col,
		PrefetchWorkers:       4,
		CoalesceReads:         true,
		ReadTimeout:           2 * time.Millisecond,
		MaxReadRetries:        3,
		RetryBackoff:          50 * time.Microsecond,
		MaxRetryBackoff:       200 * time.Microsecond,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }
	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            pageID,
			EstimatedDuration: 10 * time.Millisecond,
			Importance:        core.Importance(i % 3),
			StartDelay:        time.Duration(i) * 400 * time.Microsecond,
			PageDelay:         time.Duration(10+5*(i%4)) * time.Microsecond,
		}
	}

	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	pool.CheckInvariants()
	if n := mgr.ActiveScans(); n != 0 {
		t.Errorf("%d scans still registered", n)
	}

	// Pool-side accounting stays exact under coalescing: waiters never touch
	// the pool on a failed flight, so aborts count failed physical reads, not
	// failed waiters.
	ps := pool.Stats()
	if ps.Misses != ps.Fills+ps.Aborts {
		t.Errorf("pool accounting: misses %d != fills %d + aborts %d", ps.Misses, ps.Fills, ps.Aborts)
	}
	if ps.Aborts == 0 {
		t.Error("fault plan produced no aborted reads")
	}
	if got, want := ps.PagesDelivered(), ps.Hits+ps.Fills; got != want {
		t.Errorf("pages delivered %d, want hits %d + fills %d", got, ps.Hits, ps.Fills)
	}
	var shardSum buffer.Stats
	for _, s := range pool.ShardStats() {
		shardSum.LogicalReads += s.LogicalReads
		shardSum.Aborts += s.Aborts
	}
	if shardSum.LogicalReads != ps.LogicalReads || shardSum.Aborts != ps.Aborts {
		t.Errorf("per-shard stats (%d reads, %d aborts) disagree with aggregate (%d, %d)",
			shardSum.LogicalReads, shardSum.Aborts, ps.LogicalReads, ps.Aborts)
	}

	// Degradation is still deterministic per scan — only the bad band fails
	// permanently, whichever path (own read, coalesced wait, prefetch
	// fallback) a scan crossed it on — so counts and checksums stay exact.
	fullSum := wantChecksum(base, 0, tablePages, pageBytes) - wantChecksum(base, badFirst, badLast+1, pageBytes)
	var sumCoalesced, sumFailures int64
	for i, res := range results {
		if res.Hits+res.Misses != int64(res.PagesRead+res.DegradedPages)-res.CoalescedFailures {
			t.Errorf("scan %d: hits %d + misses %d != pages %d + degraded %d - coalesced failures %d",
				i, res.Hits, res.Misses, res.PagesRead, res.DegradedPages, res.CoalescedFailures)
		}
		if res.CoalescedFailures > int64(res.DegradedPages) {
			t.Errorf("scan %d: %d coalesced failures exceed %d degraded pages",
				i, res.CoalescedFailures, res.DegradedPages)
		}
		sumCoalesced += res.CoalescedReads
		sumFailures += res.CoalescedFailures
		if want := badLast - badFirst + 1; res.DegradedPages != want {
			t.Errorf("scan %d: %d degraded pages, want exactly the %d-page bad band",
				i, res.DegradedPages, want)
		}
		if res.Checksum != fullSum {
			t.Errorf("scan %d: checksum %d, want %d (read wrong or duplicate pages?)",
				i, res.Checksum, fullSum)
		}
	}
	if sumCoalesced == 0 {
		t.Error("no reads coalesced across 20 overlapping scans with stalls injected")
	}
	cs := col.Snapshot()
	if cs.ReadsCoalesced != sumCoalesced || cs.CoalescedFailures != sumFailures {
		t.Errorf("collector coalescing counters (%d, %d) disagree with result sums (%d, %d)",
			cs.ReadsCoalesced, cs.CoalescedFailures, sumCoalesced, sumFailures)
	}
}
