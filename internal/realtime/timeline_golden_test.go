package realtime

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
	"scanshare/internal/trace"
)

// goldenTimelineScript replays the chaos script shape with a Tracer wired
// into all three layers — manager decisions, pool evictions, runner page
// failures — and renders the merged journal as a timeline. Everything is
// stamped with the Sched's virtual clock and the harness serializes all
// workers, so the ring arrival order (and therefore the stable-sorted
// timeline) is a pure function of the seeds.
func goldenTimelineScript(t *testing.T) (string, *trace.Recorder) {
	t.Helper()
	const (
		tablePages = 100
		poolPages  = 64
		scans      = 4
	)
	plan := fault.Plan{
		Seed: 11,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: 70, LastPage: 72, Prob: 1},
			{Kind: fault.KindStall, FirstPage: 20, LastPage: 30, Prob: 0.3, UntilAttempt: 1},
			{Kind: fault.KindError, Prob: 0.1, UntilAttempt: 2},
			{Kind: fault.KindLatency, Prob: 0.15, Latency: 250 * time.Microsecond},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: 16}, plan)

	sched := NewSched(23, scans, 400*time.Microsecond)
	store.SetSleep(sched.Sleep)

	tracer := trace.NewTracerSize(sched.Clock(), 1<<16)
	rec := new(trace.Recorder)
	tracer.Attach(rec)

	pool := buffer.MustNewPool(poolPages)
	pool.SetTracer(tracer)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	mgr.SetOnEvent(trace.ManagerObserver(tracer))

	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Clock:                 sched.Clock(),
		Sleep:                 sched.Sleep,
		Hook:                  sched.Hook,
		Tracer:                tracer,
		ReadTimeout:           time.Millisecond,
		MaxReadRetries:        3,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
			EstimatedDuration: time.Duration(4+i) * time.Millisecond,
			StartDelay:        time.Duration(i) * 800 * time.Microsecond,
			PageDelay:         time.Duration(40+10*i) * time.Microsecond,
		}
	}
	specs[3].StartPage, specs[3].EndPage = 10, 90

	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	pool.CheckInvariants()
	tracer.Flush()
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if tracer.Dropped() != 0 {
		t.Fatalf("trace ring dropped %d events; enlarge the ring", tracer.Dropped())
	}

	evs := rec.Events()
	out := fmt.Sprintf("# golden timeline: 4 scans, fault plan seed 11, sched seed 23\n# %s\n\n%s",
		trace.SummarizeKinds(evs), trace.RenderTimeline(evs))
	return out, rec
}

// TestGoldenTimeline replays the instrumented chaos script and checks the
// journal two ways: structurally (the run must exhibit every event class the
// observability layer exists to capture) and byte-for-byte against
// testdata/timeline.golden. Regenerate with
//
//	go test ./internal/realtime -run TestGoldenTimeline -update
//
// and review the diff like code: it IS the observable decision record.
func TestGoldenTimeline(t *testing.T) {
	got, rec := goldenTimelineScript(t)

	for _, want := range []trace.Kind{
		trace.KindScanStart,
		trace.KindGroupForm,
		trace.KindGroupMerge,
		trace.KindThrottleWait,
		trace.KindEvict,
		trace.KindDetach,
		trace.KindRejoin,
		trace.KindPageFailed,
		trace.KindScanEnd,
	} {
		if rec.CountKind(want) == 0 {
			t.Errorf("timeline has no %v event", want)
		}
	}
	// The trailer's wake is what a loaded pool victimizes: at least one
	// eviction must have taken a page released at evict/low priority.
	lowVictims := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindEvict && ev.Prio <= int8(buffer.PriorityLow) {
			lowVictims++
		}
	}
	if lowVictims == 0 {
		t.Error("no eviction victimized an evict/low-priority page")
	}

	path := filepath.Join("testdata", "timeline.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline diverged from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}

	// The script must also replay itself within the same process.
	if again, _ := goldenTimelineScript(t); again != got {
		t.Error("back-to-back runs of the timeline script diverged in-process")
	}
}
