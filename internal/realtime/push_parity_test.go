package realtime

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/metrics"
	"scanshare/internal/trace"
	"scanshare/internal/vclock"
)

// The push-vs-pull differential parity harness: the same seeded scan
// workloads run through pull-mode group scanning and push-mode delivery,
// and the two must be observationally equivalent — byte-identical per-scan
// page content digests, identical checksums, exact footprint coverage —
// while the push run's trace journal proves exactly-once delivery and its
// pool proves the workload collapsed to one physical scan.

// paritySpec is the mode-independent description of one scan in a workload.
type paritySpec struct {
	start, end     int
	startDelay     time.Duration
	pageDelay      time.Duration
	stopAfterPages int
}

// parityWorkload is one generated differential test case.
type parityWorkload struct {
	tablePages int
	poolPages  int
	base       disk.PageID
	scans      []paritySpec
}

func genParityWorkload(seed int64) parityWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := parityWorkload{
		tablePages: 96 + rng.Intn(64),
		base:       disk.PageID(rng.Intn(1000)),
	}
	w.poolPages = w.tablePages + 32 // resident lap: misses count physical reads
	n := 4 + rng.Intn(5)
	for i := 0; i < n; i++ {
		s := paritySpec{
			startDelay: time.Duration(rng.Intn(2000)) * time.Microsecond,
			pageDelay:  time.Duration(rng.Intn(3)) * 100 * time.Microsecond,
		}
		if rng.Intn(3) == 0 { // partial footprint
			s.start = rng.Intn(w.tablePages - 1)
			s.end = s.start + 1 + rng.Intn(w.tablePages-s.start-1)
		} else {
			s.end = w.tablePages
		}
		w.scans = append(w.scans, s)
	}
	return w
}

// pageDigest is an order-normalized digest of every page a scan processed:
// (pageNo, fnv of content) pairs sorted by page number, serialized. Two
// runs that delivered the same bytes for the same footprint — in any order
// — produce equal digests.
type pageDigest struct {
	mu     sync.Mutex
	visits map[int]uint64
	dups   int
}

func (d *pageDigest) onPage(pageNo int, data []byte) {
	h := uint64(14695981039346656037)
	for _, c := range data {
		h ^= uint64(c)
		h *= 1099511628211
	}
	d.mu.Lock()
	if _, ok := d.visits[pageNo]; ok {
		d.dups++
	}
	d.visits[pageNo] = h
	d.mu.Unlock()
}

func (d *pageDigest) bytes() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	pages := make([]int, 0, len(d.visits))
	for p := range d.visits {
		pages = append(pages, p)
	}
	sort.Ints(pages)
	var out bytes.Buffer
	for _, p := range pages {
		fmt.Fprintf(&out, "%d:%016x\n", p, d.visits[p])
	}
	return out.Bytes()
}

// parityRun executes the workload in one delivery mode on a fresh stack.
type parityRun struct {
	results []ScanResult
	digests []*pageDigest
	pool    buffer.Stats
	col     metrics.CollectorStats
	events  []trace.Event
}

func runParity(t *testing.T, w parityWorkload, push bool) parityRun {
	t.Helper()
	pool := buffer.MustNewPool(w.poolPages)
	mgr := core.MustNewManager(testManagerConfig(w.poolPages))
	col := new(metrics.Collector)
	tracer := trace.NewTracerSize(new(vclock.Wall), 1<<16)
	rec := new(trace.Recorder)
	tracer.Attach(rec)
	r, err := NewRunner(Config{
		Pool:         pool,
		Manager:      mgr,
		Store:        testStore{pageBytes: 64},
		Collector:    col,
		Tracer:       tracer,
		PushDelivery: push,
	})
	if err != nil {
		t.Fatal(err)
	}
	pageID := func(pageNo int) disk.PageID { return w.base + disk.PageID(pageNo) }
	digests := make([]*pageDigest, len(w.scans))
	specs := make([]ScanSpec, len(w.scans))
	for i, ps := range w.scans {
		d := &pageDigest{visits: make(map[int]uint64)}
		digests[i] = d
		specs[i] = ScanSpec{
			Table:          1,
			TablePages:     w.tablePages,
			PageID:         pageID,
			StartPage:      ps.start,
			EndPage:        ps.end,
			StartDelay:     ps.startDelay,
			PageDelay:      ps.pageDelay,
			StopAfterPages: ps.stopAfterPages,
			OnPage:         d.onPage,
		}
	}
	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("push=%v: %v", push, err)
	}
	tracer.Close()
	return parityRun{
		results: results,
		digests: digests,
		pool:    pool.Stats(),
		col:     col.Snapshot(),
		events:  rec.Events(),
	}
}

// checkExactlyOnce replays the push run's trace journal and proves every
// subscriber was delivered each page of its footprint exactly once: the
// batch-push runs recorded for its scan ID must tile its footprint — full
// coverage, no overlap, nothing outside.
func checkExactlyOnce(t *testing.T, w parityWorkload, run parityRun) {
	t.Helper()
	byScan := make(map[int64][][2]int)
	for _, ev := range run.events {
		if ev.Kind == trace.KindBatchPush {
			byScan[ev.Scan] = append(byScan[ev.Scan], [2]int{int(ev.Page), int(ev.Page + ev.Gap)})
		}
	}
	for i, res := range run.results {
		spec := w.scans[i]
		end := spec.end
		if end == 0 {
			end = w.tablePages
		}
		runs := byScan[int64(res.ID)]
		sort.Slice(runs, func(a, b int) bool { return runs[a][0] < runs[b][0] })
		covered := 0
		next := spec.start
		for _, rg := range runs {
			if rg[0] < next {
				t.Errorf("scan %d (id %d): run [%d,%d) overlaps earlier delivery ending at %d",
					i, res.ID, rg[0], rg[1], next)
			}
			if rg[0] < spec.start || rg[1] > end {
				t.Errorf("scan %d (id %d): run [%d,%d) outside footprint [%d,%d)",
					i, res.ID, rg[0], rg[1], spec.start, end)
			}
			covered += rg[1] - rg[0]
			next = rg[1]
		}
		if spec.stopAfterPages == 0 && covered != end-spec.start {
			t.Errorf("scan %d (id %d): journal shows %d pages delivered, footprint is %d",
				i, res.ID, covered, end-spec.start)
		}
	}
}

// TestPushPullParity is the headline differential harness over a spread of
// seeded workloads.
func TestPushPullParity(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			w := genParityWorkload(seed)
			pull := runParity(t, w, false)
			push := runParity(t, w, true)

			for i := range w.scans {
				pr, sr := pull.results[i], push.results[i]
				if pr.Err != nil || sr.Err != nil {
					t.Fatalf("scan %d: pull err %v, push err %v", i, pr.Err, sr.Err)
				}
				if pr.PagesRead != sr.PagesRead {
					t.Errorf("scan %d: pages pull %d != push %d", i, pr.PagesRead, sr.PagesRead)
				}
				if pr.Checksum != sr.Checksum {
					t.Errorf("scan %d: checksum pull %#x != push %#x", i, pr.Checksum, sr.Checksum)
				}
				if d := pull.digests[i].dups + push.digests[i].dups; d != 0 {
					t.Errorf("scan %d: %d duplicate page deliveries", i, d)
				}
				if !bytes.Equal(pull.digests[i].bytes(), push.digests[i].bytes()) {
					t.Errorf("scan %d: page content digests differ between modes", i)
				}
			}

			// Result sets byte-identical -> collector page accounting must
			// agree too (the reader's own acquires are not double-counted).
			if pull.col.PagesRead != push.col.PagesRead {
				t.Errorf("collector pages_read: pull %d != push %d",
					pull.col.PagesRead, push.col.PagesRead)
			}

			// One physical scan: the push run reads each needed page from
			// the store at most once, and never more than pull did.
			if push.pool.Misses > int64(w.tablePages) {
				t.Errorf("push misses %d exceed table size %d: more than one physical lap",
					push.pool.Misses, w.tablePages)
			}
			if push.pool.Misses > pull.pool.Misses {
				t.Errorf("push misses %d exceed pull misses %d", push.pool.Misses, pull.pool.Misses)
			}

			checkExactlyOnce(t, w, push)

			if n := push.col.BatchesPushed; n == 0 {
				t.Error("push run recorded no pushed batches")
			}
			if n := pull.col.BatchesPushed; n != 0 {
				t.Errorf("pull run recorded %d pushed batches", n)
			}
		})
	}
}

// TestPushParityWithStops extends the harness with StopAfterPages scans:
// stopped subscribers stop at the same page budget in both modes and the
// journal shows no delivery outside any footprint.
func TestPushParityWithStops(t *testing.T) {
	w := parityWorkload{tablePages: 120, poolPages: 150, base: 300}
	w.scans = []paritySpec{
		{end: 120},
		{end: 120, stopAfterPages: 30},
		{start: 40, end: 100, stopAfterPages: 20, startDelay: time.Millisecond},
		{start: 10, end: 110},
	}
	pull := runParity(t, w, false)
	push := runParity(t, w, true)
	for i := range w.scans {
		pr, sr := pull.results[i], push.results[i]
		if pr.Err != nil || sr.Err != nil {
			t.Fatalf("scan %d: pull err %v, push err %v", i, pr.Err, sr.Err)
		}
		if w.scans[i].stopAfterPages != 0 {
			if !pr.Stopped || !sr.Stopped {
				t.Errorf("scan %d: stopped pull=%v push=%v", i, pr.Stopped, sr.Stopped)
			}
			if pr.PagesRead != w.scans[i].stopAfterPages || sr.PagesRead != w.scans[i].stopAfterPages {
				t.Errorf("scan %d: pages pull %d push %d, want %d",
					i, pr.PagesRead, sr.PagesRead, w.scans[i].stopAfterPages)
			}
			continue
		}
		if pr.Checksum != sr.Checksum || pr.PagesRead != sr.PagesRead {
			t.Errorf("scan %d: pull (%d, %#x) != push (%d, %#x)",
				i, pr.PagesRead, pr.Checksum, sr.PagesRead, sr.Checksum)
		}
		if !bytes.Equal(pull.digests[i].bytes(), push.digests[i].bytes()) {
			t.Errorf("scan %d: digests differ", i)
		}
	}
	checkExactlyOnce(t, w, push)
}
