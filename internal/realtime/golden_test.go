package realtime

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current output")

// goldenChaosScript runs the fixed 4-scan fault script under the Sched
// harness and renders everything observable — the scheduling trace, the
// manager decision events, and the per-scan outcomes — as one text artifact.
// Every timestamp is virtual, every fault decision is a pure hash, so the
// artifact is byte-identical across runs, machines, and -race: any diff is a
// real behavior change.
func goldenChaosScript(t *testing.T) string {
	return chaosScript(t, buffer.PolicyLRU)
}

// chaosScript is the golden script parameterized over the pool's replacement
// policy; the replay-determinism test runs it for every policy, the golden
// test pins the priority-LRU rendering byte-for-byte.
func chaosScript(t *testing.T, policy string) string {
	return chaosScriptXlate(t, policy, buffer.TranslationMap)
}

// chaosScriptXlate additionally parameterizes the translation table. Map
// translation renders the exact bytes the pre-array goldens pinned (the
// optimistic path is structurally absent there); array translation adds an
// "opt N" field per scan, which the translation-replay test uses to prove
// the lock-free path both fired and replayed deterministically under the
// cooperative scheduler.
func chaosScriptXlate(t *testing.T, policy, translation string) string {
	t.Helper()
	const (
		tablePages = 100
		poolPages  = 64
		scans      = 4
	)
	plan := fault.Plan{
		Seed: 11,
		Rules: []fault.Rule{
			{Kind: fault.KindError, FirstPage: 70, LastPage: 72, Prob: 1},
			{Kind: fault.KindStall, FirstPage: 20, LastPage: 30, Prob: 0.3, UntilAttempt: 1},
			{Kind: fault.KindError, Prob: 0.1, UntilAttempt: 2},
			{Kind: fault.KindLatency, Prob: 0.15, Latency: 250 * time.Microsecond},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: 16}, plan)

	pool := buffer.MustNewPoolOpts(buffer.PoolOptions{
		Capacity: poolPages, Shards: 1, Policy: policy, Translation: translation,
	})
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	var events []core.Event
	mgr.SetOnEvent(func(ev core.Event) { events = append(events, ev) })

	sched := NewSched(23, scans, 400*time.Microsecond)
	store.SetSleep(sched.Sleep)
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Clock:                 sched.Clock(),
		Sleep:                 sched.Sleep,
		Hook:                  sched.Hook,
		ReadTimeout:           time.Millisecond,
		MaxReadRetries:        3,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:             1,
			TablePages:        tablePages,
			PageID:            func(pageNo int) disk.PageID { return disk.PageID(pageNo) },
			EstimatedDuration: time.Duration(4+i) * time.Millisecond,
			StartDelay:        time.Duration(i) * 800 * time.Microsecond,
			PageDelay:         time.Duration(40+10*i) * time.Microsecond,
		}
	}
	specs[3].StartPage, specs[3].EndPage = 10, 90

	results, err := r.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	pool.CheckInvariants()

	var b strings.Builder
	b.WriteString("# golden chaos trace: 4 scans, fault plan seed 11, sched seed 23\n")
	b.WriteString("\n[schedule]\n")
	b.WriteString(FormatTrace(sched.Trace()))
	b.WriteString("\n[events]\n")
	for _, ev := range events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	b.WriteString("\n[results]\n")
	for i, res := range results {
		fmt.Fprintf(&b, "scan %d: pages %d hits %d misses %d degraded %d retries %d timeouts %d detaches %d rejoins %d checksum %d",
			i, res.PagesRead, res.Hits, res.Misses, res.DegradedPages,
			res.ReadRetries, res.ReadTimeouts, res.Detaches, res.Rejoins, res.Checksum)
		if res.OptimisticHits > 0 {
			// Only array translation can make this nonzero; under map the
			// line stays byte-identical to the pre-array goldens.
			fmt.Fprintf(&b, " opt %d", res.OptimisticHits)
		}
		b.WriteByte('\n')
	}
	fc := store.Counters()
	fmt.Fprintf(&b, "\n[faults]\n%s\n", fc)
	return b.String()
}

// TestGoldenChaosTrace replays the fixed fault script and compares the full
// trace byte-for-byte against testdata/chaos_trace.golden. Regenerate with
//
//	go test ./internal/realtime -run TestGoldenChaosTrace -update
//
// after an intentional behavior change, and review the diff like code: it IS
// the observable behavior of the failure path.
func TestGoldenChaosTrace(t *testing.T) {
	got := goldenChaosScript(t)
	path := filepath.Join("testdata", "chaos_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("chaos trace diverged from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}

	// And the script must replay itself within the same process too.
	if again := goldenChaosScript(t); again != got {
		t.Error("back-to-back runs of the golden script diverged in-process")
	}
}
