package realtime

import (
	"os"
	"path/filepath"
	"testing"

	"scanshare/internal/buffer"
)

// TestPolicyReplayDeterminism is the replay-determinism regression test for
// the replacement policies: two runs of the seeded chaos script must render
// byte-identical trace journals under every policy. Priority-LRU is fully
// deterministic by construction; the predictive policy must be too, because
// its only nondeterministic ingredient — scan-table map iteration — is
// neutralized by an order-independent estimator and a strict-max victim
// walk. A diff here means a policy let scheduling or map order leak into
// eviction decisions.
func TestPolicyReplayDeterminism(t *testing.T) {
	for _, policy := range buffer.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			first := chaosScript(t, policy)
			second := chaosScript(t, policy)
			if first != second {
				t.Errorf("two seeded runs under %s diverged:\n--- first ---\n%s\n--- second ---\n%s",
					policy, first, second)
			}
		})
	}
}

// TestPolicyReplayClassicMatchesGolden pins the refactor seam: the
// policy-parameterized script under priority-LRU must still produce the
// exact bytes of the pre-refactor golden artifact — the policy interface
// must not have changed classic eviction order at all.
func TestPolicyReplayClassicMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "chaos_trace.golden"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if got := chaosScript(t, buffer.PolicyLRU); got != string(want) {
		t.Error("priority-LRU chaos script diverged from the golden artifact")
	}
}
