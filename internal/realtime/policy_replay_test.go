package realtime

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scanshare/internal/buffer"
)

// TestPolicyReplayDeterminism is the replay-determinism regression test for
// the replacement policies: two runs of the seeded chaos script must render
// byte-identical trace journals under every policy. Priority-LRU is fully
// deterministic by construction; the predictive policy must be too, because
// its only nondeterministic ingredient — scan-table map iteration — is
// neutralized by an order-independent estimator and a strict-max victim
// walk. A diff here means a policy let scheduling or map order leak into
// eviction decisions.
func TestPolicyReplayDeterminism(t *testing.T) {
	for _, policy := range buffer.Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			first := chaosScript(t, policy)
			second := chaosScript(t, policy)
			if first != second {
				t.Errorf("two seeded runs under %s diverged:\n--- first ---\n%s\n--- second ---\n%s",
					policy, first, second)
			}
		})
	}
}

// TestTranslationReplayDeterminism extends the replay guarantee to the
// array translation table: under the cooperative scheduler exactly one
// goroutine runs at a time, so the optimistic read path — atomics and all —
// must behave as a pure function of the schedule, and two seeded runs must
// render byte-identical artifacts for every policy × translation cell. The
// array artifacts must also show the lock-free path actually fired ("opt"
// fields in the per-scan results); a deterministic replay of a path that
// never ran would prove nothing.
func TestTranslationReplayDeterminism(t *testing.T) {
	for _, translation := range buffer.Translations() {
		for _, policy := range buffer.Policies() {
			t.Run(translation+"/"+policy, func(t *testing.T) {
				first := chaosScriptXlate(t, policy, translation)
				second := chaosScriptXlate(t, policy, translation)
				if first != second {
					t.Errorf("two seeded runs under %s/%s diverged:\n--- first ---\n%s\n--- second ---\n%s",
						translation, policy, first, second)
				}
				hasOpt := strings.Contains(first, " opt ")
				if translation == buffer.TranslationArray && !hasOpt {
					t.Error("array-translation replay recorded no optimistic hits; the fast path went unexercised")
				}
				if translation == buffer.TranslationMap && hasOpt {
					t.Error("map-translation replay recorded optimistic hits; the goldens cannot hold")
				}
			})
		}
	}
}

// TestPolicyReplayClassicMatchesGolden pins the refactor seam: the
// policy-parameterized script under priority-LRU must still produce the
// exact bytes of the pre-refactor golden artifact — the policy interface
// must not have changed classic eviction order at all.
func TestPolicyReplayClassicMatchesGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "chaos_trace.golden"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	if got := chaosScript(t, buffer.PolicyLRU); got != string(want) {
		t.Error("priority-LRU chaos script diverged from the golden artifact")
	}
}
