package realtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/trace"
)

// Push-based delivery (Config.PushDelivery).
//
// Pull mode runs one fetch loop per scan: N group members issue N logical
// page streams and rely on coalescing, prefetch, and throttle advice to keep
// them overlapped. Push mode inverts the flow. One reader goroutine per
// scanned table drains the table's page range exactly once per demand lap,
// batches the immutable frame references, and fans each batch out through
// bounded per-subscriber channels:
//
//   - Group membership is subscription: a scan attaches mid-stream and is
//     admitted at the next batch boundary; its catch-up cursor is the stream
//     position at admission, and it completes after exactly one circular lap
//     over its footprint (KindSubscribe records the cursor).
//   - Throttling is flow control: the reader blocks on the slowest admitted
//     subscriber's full channel (KindBackpressureStall, counted as a
//     throttle wait), bounded per subscriber by the manager's fairness cap.
//     A subscriber that exhausts its stall budget is demoted — its channel
//     closes and it pulls its remaining footprint itself — so one stuck
//     consumer can never starve the group.
//   - Faults reuse the pull-mode machinery: the reader reads on behalf of an
//     owner subscriber, so retries, timeouts, and detach/rejoin hit that
//     subscriber's manager lifecycle. When the owner's retries are exhausted
//     the hub promotes the next subscriber to owner and re-issues the read;
//     only fully settled batches are ever delivered, so a torn read (an
//     error by construction) can never reach a consumer.
//
// Locking: the hub mutex guards only the subscriber lists, the stream
// position, and the reader-liveness flag. It is never held across I/O,
// channel sends, or pool calls; all per-subscriber stream accounting is
// reader-goroutine-only. See CONCURRENCY.md for the full ordering argument.

// pushBatch is one delivery unit: a run of consecutive table-relative pages
// starting at start. pages[i] holds the immutable frame reference of page
// start+i; a nil entry marks a page declared failed after every owner's
// retries were exhausted (consumers count it degraded, as in pull mode).
type pushBatch struct {
	start int
	pages [][]byte
}

// subReason says why a subscriber's channel was closed. It is written by the
// reader before close(ch); the channel close publishes it to the consumer.
type subReason uint8

const (
	// subDone: the stream covered the subscriber's footprint.
	subDone subReason = iota
	// subDemoted: the subscriber exhausted its stall budget and must pull
	// its remaining footprint itself.
	subDemoted
	// subFailed: the stream aborted on a hard read error (held in err).
	subFailed
	// subCancelled: the run's context was cancelled.
	subCancelled
)

// pushSub is one subscription. The channel pair is shared with the consumer;
// everything below the marker is touched only by the reader goroutine (or by
// the consumer strictly after the channel closed, which publishes it).
type pushSub struct {
	scan       int // index into the spec slice
	id         core.ScanID
	start, end int // footprint [start, end)

	ch   chan pushBatch
	gone chan struct{} // closed by the consumer when it stops reading

	// Reader-only stream accounting.
	cursor      int           // stream position of the first batch
	streamLeft  int           // stream positions until the lap returns to cursor
	remaining   int           // footprint pages not yet streamed to this sub
	stallBudget time.Duration // fairness cap on reader stalls for this sub
	stalled     time.Duration // accumulated reader stall on this sub
	deg         degradeState  // owner-side detach tracking
	detaches    int           // reader-side detach count, merged by the consumer
	rejoins     int
	retries     int64 // reader-side read retries attributed to this owner
	timeouts    int64
	// span is the subscriber's scan-span context; reads the sub owns emit
	// their read/pool-wait spans under it. readWait and poolWait are the
	// matching reader-side durations, merged by the consumer at close.
	span     trace.SpanContext
	readWait time.Duration
	poolWait time.Duration
	done     bool // channel closed

	// Published by close(ch).
	reason subReason
	err    error
}

// pushHub is one table's push stream within a Run: the subscription registry
// and the reader goroutine's state.
type pushHub struct {
	r      *Runner // reader-side runner: page hit/miss counting suppressed
	ctx    context.Context
	table  core.TableID
	pages  int
	pageID func(pageNo int) disk.PageID
	batch  int
	queue  int

	mu         sync.Mutex
	pos        int // next stream position (table-relative)
	subs       []*pushSub
	pending    []*pushSub
	readerLive bool

	wg sync.WaitGroup

	// Reader-only: round-robin owner cursor for read attribution and
	// promotion after permanent failures.
	ownerIdx int
}

// subscribe registers a consumer and makes sure a reader serves it. origin
// seeds the stream position when this subscription (re)starts the reader.
func (h *pushHub) subscribe(scan int, id core.ScanID, span trace.SpanContext, start, end, origin int, stallBudget time.Duration) *pushSub {
	s := &pushSub{
		scan: scan, id: id, start: start, end: end,
		ch:          make(chan pushBatch, h.queue),
		gone:        make(chan struct{}),
		streamLeft:  h.pages,
		remaining:   end - start,
		stallBudget: stallBudget,
		span:        span,
	}
	h.mu.Lock()
	h.pending = append(h.pending, s)
	if !h.readerLive {
		h.readerLive = true
		h.pos = origin % h.pages
		h.wg.Add(1)
		go h.readLoop()
	}
	h.mu.Unlock()
	return s
}

// readLoop drives the stream until no subscriber is left (or the stream
// aborts). scratch absorbs the fetch path's per-scan bookkeeping; its page
// counters are discarded — the consumers account delivered pages — but its
// Err/Stopped fields steer the abort paths.
func (h *pushHub) readLoop() {
	defer h.wg.Done()
	var scratch ScanResult
	for h.step(&scratch) {
	}
}

// step runs one reader iteration: admit and prune subscribers, skip
// stretches nobody needs, read one batch, deliver it. It returns false when
// the reader exits (no subscribers, cancellation, or a fatal stream error).
func (h *pushHub) step(scratch *ScanResult) bool {
	h.mu.Lock()
	h.pruneLocked()
	h.admitLocked()
	if len(h.subs) == 0 {
		h.readerLive = false
		h.mu.Unlock()
		return false
	}
	dist, ok := h.nextNeededLocked()
	if !ok {
		// Every live subscriber's window is exhausted — close them out.
		for _, s := range h.subs {
			h.closeSub(s, subDone, nil)
		}
		h.subs = nil
		h.readerLive = false
		h.mu.Unlock()
		return false
	}
	h.advanceLocked(dist)
	start := h.pos
	k := min(h.batch, h.pages-start)
	h.pos = (start + k) % h.pages
	// Snapshot only open subscriptions: a sub closed here (lap exhausted by
	// the skip) may already be past EndScan by the time the batch reads, so
	// it must neither own reads nor receive deliveries.
	live := make([]*pushSub, 0, len(h.subs))
	for _, s := range h.subs {
		if !s.done {
			live = append(live, s)
		}
	}
	h.mu.Unlock()
	if len(live) == 0 {
		return true // next step prunes and re-evaluates
	}

	b, ok := h.readBatch(scratch, start, k, live)
	if !ok {
		return false
	}
	h.deliver(b, live)
	return true
}

// pruneLocked drops subscribers that finished or went away.
func (h *pushHub) pruneLocked() {
	kept := h.subs[:0]
	for _, s := range h.subs {
		if s.done {
			continue
		}
		select {
		case <-s.gone:
			h.closeSub(s, subDone, nil)
			continue
		default:
		}
		kept = append(kept, s)
	}
	h.subs = kept
}

// admitLocked moves pending subscriptions into the live set at the current
// batch boundary; the stream position becomes their catch-up cursor.
func (h *pushHub) admitLocked() {
	for _, s := range h.pending {
		s.cursor = h.pos
		h.subs = append(h.subs, s)
		h.r.cfg.Tracer.Emit(trace.Event{
			Kind: trace.KindSubscribe, Scan: int64(s.id), Table: int64(h.table),
			Page: int64(h.pos), Count: int32(len(h.subs)), Peer: trace.NoID, Prio: -1,
		})
	}
	h.pending = nil
}

// nextNeededLocked finds the stream distance to the next position some live
// subscriber still needs: the position is inside its footprint and inside
// its remaining lap window. ok is false when no such position exists.
func (h *pushHub) nextNeededLocked() (dist int, ok bool) {
	for d := 0; d < h.pages; d++ {
		p := h.pos + d
		if p >= h.pages {
			p -= h.pages
		}
		for _, s := range h.subs {
			if s.remaining > 0 && p >= s.start && p < s.end && d < s.streamLeft {
				return d, true
			}
		}
	}
	return 0, false
}

// advanceLocked skips dist stream positions. Skipped positions count against
// every subscriber's lap window — the stream passed them — but cannot touch
// remaining, since nextNeededLocked proved no live subscriber needs them.
func (h *pushHub) advanceLocked(dist int) {
	if dist == 0 {
		return
	}
	h.pos = (h.pos + dist) % h.pages
	for _, s := range h.subs {
		s.streamLeft -= min(dist, s.streamLeft)
		if s.streamLeft == 0 {
			h.closeSub(s, subDone, nil)
		}
	}
}

// readBatch reads pages [start, start+k) on behalf of the current owner
// subscriber. ok=false means the stream aborted and every subscriber has
// been closed out.
func (h *pushHub) readBatch(scratch *ScanResult, start, k int, live []*pushSub) (pushBatch, bool) {
	b := pushBatch{start: start, pages: make([][]byte, k)}
	for i := 0; i < k; i++ {
		data, ok, fatal := h.readOne(scratch, h.pageID(start+i), live)
		if fatal {
			return pushBatch{}, false
		}
		if ok {
			b.pages[i] = data
		}
	}
	return b, true
}

// readOne fetches one page through the pull-mode fetch path, attributed to
// the current owner subscriber. A permanent failure promotes the next live
// subscriber to owner and re-issues the read; when every subscriber's
// retries are spent the page is degraded (ContinueOnPageFailure) or the
// stream aborts.
func (h *pushHub) readOne(scratch *ScanResult, pid disk.PageID, live []*pushSub) (data []byte, ok, fatal bool) {
	cfg := &h.r.cfg
	var lastErr error
	for tried := 0; ; tried++ {
		s := live[h.ownerIdx%len(live)]
		hook := func(site Site) {
			if cfg.Hook != nil {
				cfg.Hook(s.scan, site)
			}
		}
		d0, r0 := scratch.Detaches, scratch.Rejoins
		rr0, to0 := scratch.ReadRetries, scratch.ReadTimeouts
		rw0, pw0 := scratch.ReadWait, scratch.PoolWait
		data, out := h.r.fetchPage(h.ctx, s.id, s.span, pid, hook, scratch, &s.deg)
		s.detaches += scratch.Detaches - d0
		s.rejoins += scratch.Rejoins - r0
		s.retries += scratch.ReadRetries - rr0
		s.timeouts += scratch.ReadTimeouts - to0
		s.readWait += scratch.ReadWait - rw0
		s.poolWait += scratch.PoolWait - pw0
		if scratch.Err != nil && out != fetchStop {
			// Bookkeeping error (manager rejection) outside the normal
			// stop path — treat as fatal rather than limp on.
			h.shutdown(subFailed, scratch.Err)
			return nil, false, true
		}
		switch out {
		case fetchOK:
			// Collect the immutable frame reference, then unpin: pool
			// content cells are never rewritten in place, so the batch
			// stays valid past release (and even past eviction).
			h.r.releasePage(pid, core.PageNormal, scratch)
			if scratch.Err != nil {
				h.shutdown(subFailed, scratch.Err)
				return nil, false, true
			}
			return data, true, false
		case fetchOKOpt:
			return data, true, false
		case fetchSkip:
			lastErr = nil // degraded under ContinueOnPageFailure
		case fetchStop:
			if scratch.Stopped || h.ctx.Err() != nil {
				h.shutdown(subCancelled, nil)
				return nil, false, true
			}
			lastErr = scratch.Err
			scratch.Err = nil
		}
		// Promote the next subscriber to owner and retry the page with its
		// fresh degradation budget.
		h.ownerIdx++
		if tried+1 >= len(live) {
			if lastErr != nil {
				h.shutdown(subFailed, lastErr)
				return nil, false, true
			}
			return nil, false, false // degraded: nil batch entry
		}
	}
}

// deliver fans one batch out to the live subscribers, clipping each
// subscriber's view at its lap window so a wrapped stream never re-delivers
// pages past its catch-up cursor.
func (h *pushHub) deliver(b pushBatch, live []*pushSub) {
	for _, s := range live {
		if s.done {
			continue
		}
		kk := min(len(b.pages), s.streamLeft)
		if kk <= 0 {
			h.closeSub(s, subDone, nil)
			continue
		}
		if !h.send(s, pushBatch{start: b.start, pages: b.pages[:kk]}) {
			continue
		}
		s.streamLeft -= kk
		s.remaining -= overlap(b.start, b.start+kk, s.start, s.end)
		if s.remaining <= 0 || s.streamLeft <= 0 {
			h.closeSub(s, subDone, nil)
		}
	}
}

// send pushes one batch view into s's channel. A full channel is the flow-
// control moment: the stall is counted as a throttle wait and bounded by the
// subscriber's remaining fairness budget, past which the subscriber is
// demoted to pulling. Returns false when the batch was not delivered (the
// subscriber is gone, demoted, or the run is cancelled).
func (h *pushHub) send(s *pushSub, view pushBatch) bool {
	select {
	case s.ch <- view:
		return true
	case <-s.gone:
		return false
	default:
	}
	cfg := &h.r.cfg
	cfg.Collector.SubscriberStalled()
	t0 := cfg.Clock.Now()
	sent := false
	budget := s.stallBudget - s.stalled
	if budget > 0 {
		timer := time.NewTimer(budget)
		select {
		case s.ch <- view:
			sent = true
		case <-s.gone:
		case <-h.ctx.Done():
		case <-timer.C:
		}
		timer.Stop()
	}
	wait := cfg.Clock.Now() - t0
	s.stalled += wait
	if wait > 0 {
		cfg.Collector.Throttled(wait)
	}
	cfg.Tracer.Emit(trace.Event{
		Kind: trace.KindBackpressureStall, Scan: int64(s.id), Table: int64(h.table),
		Page: int64(view.start), Wait: wait, Peer: trace.NoID, Prio: -1,
	})
	if sent {
		return true
	}
	if h.ctx.Err() != nil || isGone(s.gone) {
		return false // cancellation or departure; no demotion implied
	}
	cfg.Collector.PushDemoted()
	h.closeSub(s, subDemoted, nil)
	return false
}

// closeSub publishes the close reason and closes the subscriber's channel.
// Reader-goroutine-only; idempotent.
func (h *pushHub) closeSub(s *pushSub, reason subReason, err error) {
	if s.done {
		return
	}
	s.reason, s.err = reason, err
	s.done = true
	close(s.ch)
}

// shutdown aborts the stream: every live and pending subscriber is closed
// with the given reason and the reader retires. A later subscribe starts a
// fresh stream, so stragglers cannot strand.
func (h *pushHub) shutdown(reason subReason, err error) {
	h.mu.Lock()
	subs := append(h.subs, h.pending...)
	h.subs, h.pending = nil, nil
	h.readerLive = false
	h.mu.Unlock()
	for _, s := range subs {
		h.closeSub(s, reason, err)
	}
}

func isGone(gone chan struct{}) bool {
	select {
	case <-gone:
		return true
	default:
		return false
	}
}

// overlap returns |[a0,a1) ∩ [b0,b1)|.
func overlap(a0, a1, b0, b1 int) int {
	lo, hi := max(a0, b0), min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// runPush is Run's push-mode body: one hub per table, one subscriber
// goroutine per spec. Prefetching is not started — the hub reader is the
// group's read-ahead stream.
func (r *Runner) runPush(ctx context.Context, specs []ScanSpec) ([]ScanResult, error) {
	// Hubs key on the table; every spec of one table must agree on its
	// geometry, since the hub reads with the first spec's page mapping.
	hubs := make(map[core.TableID]*pushHub)
	rr := *r
	rr.skipPageCount = true
	for i, spec := range specs {
		h, ok := hubs[spec.Table]
		if !ok {
			hubs[spec.Table] = &pushHub{
				r: &rr, ctx: ctx, table: spec.Table,
				pages: spec.TablePages, pageID: spec.PageID,
				batch: r.cfg.PushBatchPages, queue: r.cfg.SubscriberQueueBatches,
			}
			continue
		}
		if h.pages != spec.TablePages {
			return nil, fmt.Errorf("realtime: scan %d sizes table %v at %d pages, scan 0 at %d",
				i, spec.Table, spec.TablePages, h.pages)
		}
	}

	results := make([]ScanResult, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.runPushScan(ctx, i, specs[i], hubs[specs[i].Table], &results[i])
		}(i)
	}
	wg.Wait()
	for _, h := range hubs {
		h.wg.Wait()
	}

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, fmt.Errorf("scan %d: %w", i, results[i].Err))
		}
	}
	return results, errors.Join(errs...)
}

// pushStallBudget derives a subscriber's fairness cap on reader stalls: the
// explicit override, or MaxThrottleFraction of its estimated duration — the
// exact budget pull-mode throttling grants — with the manager's default
// speed standing in when the estimate is unknown.
func (r *Runner) pushStallBudget(spec ScanSpec, length int) time.Duration {
	if r.cfg.PushStallBudget > 0 {
		return r.cfg.PushStallBudget
	}
	mc := r.cfg.Manager.Config()
	est := spec.EstimatedDuration
	if est <= 0 {
		speed := mc.DefaultSpeedPagesPerSec
		if speed <= 0 {
			speed = 1000
		}
		est = time.Duration(float64(length) / speed * float64(time.Second))
	}
	return time.Duration(mc.MaxThrottleFraction * float64(est))
}

// runPushScan is the body of one push-mode subscriber: the same manager
// lifecycle as a pull scan, with the fetch loop replaced by batch
// consumption. Throttle advice is ignored — flow control replaces it — but
// progress reports still feed grouping, decision traces, and the predictive
// pool.
func (r *Runner) runPushScan(ctx context.Context, idx int, spec ScanSpec, hub *pushHub, res *ScanResult) {
	cfg := &r.cfg
	res.Scan = idx
	res.ID = core.NoScan
	hook := func(site Site) {
		if cfg.Hook != nil {
			cfg.Hook(idx, site)
		}
	}
	defer hook(SiteExit)

	hook(SiteSpawn)
	if spec.StartDelay > 0 {
		cfg.Sleep(ctx, spec.StartDelay)
	}
	if ctx.Err() != nil {
		res.Stopped = true
		return
	}

	end := spec.EndPage
	if end == 0 {
		end = spec.TablePages
	}
	length := end - spec.StartPage

	hook(SiteStartScan)
	id, pl, err := cfg.Manager.StartScan(core.ScanOpts{
		Table:             spec.Table,
		TablePages:        spec.TablePages,
		StartPage:         spec.StartPage,
		EndPage:           spec.EndPage,
		EstimatedDuration: spec.EstimatedDuration,
		Importance:        spec.Importance,
	}, cfg.Clock.Now())
	hook(SiteStarted)
	if err != nil {
		res.Err = err
		return
	}
	cfg.Collector.ScanStarted()
	res.ID = id
	res.Placement = pl
	res.Started = cfg.Clock.Now()

	// As in pull mode: the scan span closes after the EndScan defer below.
	span := cfg.Tracer.OpenSpan(spec.Span, trace.SpanScan, int64(id), int64(spec.Table))
	defer span.Close()
	sc := span.Context()

	feedPool := r.feedsPool()
	if feedPool {
		base := spec.PageID(spec.StartPage) - disk.PageID(spec.StartPage)
		var seed float64
		if f, ok := cfg.Manager.ScanFeed(id); ok {
			seed = f.SpeedPagesSec
		}
		cfg.Pool.RegisterScan(int64(id), buffer.ScanFootprint{
			Base: base, Start: spec.StartPage, End: end, Origin: pl.Origin,
		}, seed)
		cfg.Collector.ScanFeedRegistered()
	}
	defer func() {
		cfg.Pool.UnregisterScan(int64(id))
		hook(SiteEndScan)
		if err := cfg.Manager.EndScan(id, cfg.Clock.Now()); err != nil && res.Err == nil {
			res.Err = err
		}
		hook(SiteEnded)
		cfg.Collector.ScanEnded(res.Stopped)
		res.Done = cfg.Clock.Now()
	}()

	limit := length
	if spec.StopAfterPages > 0 && spec.StopAfterPages < length {
		limit = spec.StopAfterPages
		res.Stopped = true
	}

	sub := hub.subscribe(idx, id, sc, spec.StartPage, end, pl.Origin, r.pushStallBudget(spec, length))
	goneOnce := sync.OnceFunc(func() { close(sub.gone) })
	defer goneOnce()

	covered := make([]bool, length)
	processed := 0
	interval := cfg.Manager.Config().PrefetchExtentPages
	reportAt := interval

	// report sends one progress sample; false means the scan must stop.
	report := func() bool {
		hook(SiteReport)
		adv, err := cfg.Manager.ReportProgress(id, processed, cfg.Clock.Now())
		hook(SiteReported)
		if err != nil {
			res.Err = err
			return false
		}
		if cfg.OnAdvice != nil {
			cfg.OnAdvice(idx, processed, adv)
		}
		if feedPool {
			if f, ok := cfg.Manager.ScanFeed(id); ok {
				cfg.Pool.UpdateScan(int64(id), f.Processed, f.SpeedPagesSec)
				cfg.Collector.ScanFeedUpdated()
			}
		}
		next := adv.NextReportPages
		if next <= 0 {
			next = interval
		}
		reportAt = processed + next
		return true
	}
	// accept processes one footprint position: coverage, checksum, the
	// consumer callback, and the progress cadence. false stops the scan.
	// preCounted marks self-pulled pages, whose hit/miss accounting was
	// already done by fetchPage.
	accept := func(pageNo int, data []byte, preCounted bool) bool {
		if covered[pageNo-spec.StartPage] {
			if res.Err == nil {
				res.Err = fmt.Errorf("realtime: page %d delivered twice to scan %d", pageNo, idx)
			}
			return false
		}
		covered[pageNo-spec.StartPage] = true
		processed++
		if data == nil {
			res.DegradedPages++
			// Mirror pull-mode accounting: a degraded page cost the scan
			// one miss attempt there, so charge the subscriber the same
			// (fetchPage already did for self-pulled pages).
			if !preCounted {
				cfg.Collector.PageMiss()
				res.Misses++
			}
		} else {
			if len(data) > 0 {
				res.Checksum += uint64(data[0]) + uint64(data[len(data)-1])<<8
			}
			if spec.OnPage != nil {
				spec.OnPage(pageNo, data)
			}
			if !preCounted {
				cfg.Collector.PageHit()
				res.Hits++
			}
			res.PagesRead++
			if spec.PageDelay > 0 {
				cfg.Sleep(ctx, spec.PageDelay)
			}
		}
		if processed >= limit && limit < length {
			res.Stopped = true
			return false
		}
		if processed >= reportAt || processed == length {
			if !report() {
				return false
			}
		}
		return true
	}
	// selfPull finishes the footprint through the pull-mode fetch path
	// after a demotion: every uncovered page is fetched, accounted, and
	// traced like a delivered one, preserving exactly-once coverage.
	selfPull := func() {
		var deg degradeState
		for i := range covered {
			if covered[i] {
				continue
			}
			if ctx.Err() != nil {
				res.Stopped = true
				return
			}
			pageNo := spec.StartPage + i
			pid := spec.PageID(pageNo)
			data, out := r.fetchPage(ctx, id, sc, pid, hook, res, &deg)
			if out == fetchStop {
				return
			}
			cfg.Tracer.Emit(trace.Event{
				Kind: trace.KindBatchPush, Scan: int64(id), Table: int64(spec.Table),
				Page: int64(pageNo), Gap: 1, Peer: trace.NoID, Prio: -1,
			})
			res.PushSelfPulled++
			var ok bool
			if out == fetchOK {
				ok = accept(pageNo, data, true)
				r.releasePage(pid, core.PageNormal, res)
				if res.Err != nil {
					return
				}
			} else if out == fetchOKOpt {
				ok = accept(pageNo, data, true)
			} else { // fetchSkip: fetchPage already counted DegradedPages
				res.DegradedPages--
				ok = accept(pageNo, nil, true)
			}
			if !ok {
				return
			}
		}
	}

	for {
		recvStart := cfg.Clock.Now()
		select {
		case <-ctx.Done():
			res.Stopped = true
			return
		case b, ok := <-sub.ch:
			// Time blocked on the channel is push-mode delivery wait — the
			// consumer-side view of reader backpressure and read latency.
			recvWait := cfg.Clock.Now() - recvStart
			res.DeliveryWait += recvWait
			if ok {
				cfg.Tracer.EmitSpan(sc, trace.SpanDelivery, int64(id), int64(spec.Table), recvWait)
			}
			if !ok {
				// Buffered batches are always drained before the close is
				// observed, so the stream accounting is settled here.
				res.Detaches += sub.detaches
				res.Rejoins += sub.rejoins
				res.ReadRetries += sub.retries
				res.ReadTimeouts += sub.timeouts
				res.ReadWait += sub.readWait
				res.PoolWait += sub.poolWait
				switch sub.reason {
				case subDone:
					if processed != length && res.Err == nil && !res.Stopped {
						res.Err = fmt.Errorf("realtime: push stream closed with %d/%d pages delivered to scan %d",
							processed, length, idx)
					}
				case subDemoted:
					res.PushDemoted = true
					goneOnce()
					selfPull()
				case subFailed:
					if res.Err == nil {
						res.Err = sub.err
					}
				case subCancelled:
					res.Stopped = true
				}
				return
			}
			lo, hi := max(b.start, spec.StartPage), min(b.start+len(b.pages), end)
			if hi <= lo {
				continue
			}
			cfg.Tracer.Emit(trace.Event{
				Kind: trace.KindBatchPush, Scan: int64(id), Table: int64(spec.Table),
				Page: int64(lo), Gap: int64(hi - lo), Peer: trace.NoID, Prio: -1,
			})
			res.PushBatches++
			cfg.Collector.BatchPushed()
			for p := lo; p < hi; p++ {
				if !accept(p, b.pages[p-b.start], false) {
					return
				}
			}
		}
	}
}
