package realtime

import (
	"context"
	"sync"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/fault"
	"scanshare/internal/metrics"
)

// Chaos suite for push delivery (satellite of the push-vs-pull harness):
// seeded faults — errors, stalls, and torn reads — are injected under the
// group reader. The reader must detach the owning subscription, promote
// another subscriber to re-issue the read, and never deliver a torn batch;
// two replays of the same seed must agree byte for byte.

// pushChaosOutcome is the deterministic slice of one chaos run, for
// replay-identical comparison.
type pushChaosOutcome struct {
	PagesRead     int
	DegradedPages int
	Checksum      uint64
	Stopped       bool
	Failed        bool
}

func runPushChaos(t *testing.T, seed int64, continueOnFailure bool) ([]pushChaosOutcome, []ScanResult, fault.Counters) {
	t.Helper()
	const (
		tablePages = 300
		poolPages  = 360
		pageBytes  = 64
		scans      = 8
		base       = disk.PageID(2000)

		badFirst, badLast = 200, 207 // permanent failures: every owner's retries exhaust
	)
	plan := fault.Plan{
		Seed: seed,
		Rules: []fault.Rule{
			// The bad band fails every attempt by every promoted owner.
			{Kind: fault.KindError, FirstPage: base + badFirst, LastPage: base + badLast, Prob: 1},
			// Torn band: the first attempt of each page returns truncated
			// bytes with ErrTorn; the retry reads clean. No torn data may
			// ever reach a consumer.
			{Kind: fault.KindTorn, FirstPage: base + 50, LastPage: base + 90, Prob: 1, UntilAttempt: 1},
			// Stall band recovers on retry; the read timeout cuts it.
			{Kind: fault.KindStall, FirstPage: base + 120, LastPage: base + 140, Prob: 0.5, UntilAttempt: 1},
			// Transient error burst on early attempts anywhere.
			{Kind: fault.KindError, Prob: 0.1, UntilAttempt: 2},
		},
	}
	store := fault.MustNewStore(testStore{pageBytes: pageBytes}, plan)

	pool := buffer.MustNewPool(poolPages)
	mgr := core.MustNewManager(testManagerConfig(poolPages))
	col := new(metrics.Collector)
	r, err := NewRunner(Config{
		Pool:                  pool,
		Manager:               mgr,
		Store:                 store,
		Collector:             col,
		PushDelivery:          true,
		PushBatchPages:        8,
		ReadTimeout:           2 * time.Millisecond,
		MaxReadRetries:        3,
		RetryBackoff:          50 * time.Microsecond,
		MaxRetryBackoff:       200 * time.Microsecond,
		DetachAfterFailures:   2,
		ContinueOnPageFailure: continueOnFailure,
	})
	if err != nil {
		t.Fatal(err)
	}

	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }
	var mu sync.Mutex
	torn := 0
	specs := make([]ScanSpec, scans)
	for i := range specs {
		specs[i] = ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     pageID,
			StartDelay: time.Duration(i) * 300 * time.Microsecond,
			OnPage: func(pageNo int, data []byte) {
				if len(data) != pageBytes {
					mu.Lock()
					torn++
					mu.Unlock()
				}
			},
		}
	}
	// A partial range dodging the bad band, and a mid-flight stop.
	specs[5].StartPage, specs[5].EndPage = 0, 150
	specs[6].StopAfterPages = 40

	results, _ := r.Run(context.Background(), specs)
	pool.CheckInvariants()
	if n := mgr.ActiveScans(); n != 0 {
		t.Errorf("%d scans still registered after the run", n)
	}
	if torn != 0 {
		t.Fatalf("%d torn pages were delivered to consumers", torn)
	}

	out := make([]pushChaosOutcome, len(results))
	for i, res := range results {
		out[i] = pushChaosOutcome{
			PagesRead:     res.PagesRead,
			DegradedPages: res.DegradedPages,
			Checksum:      res.Checksum,
			Stopped:       res.Stopped,
			Failed:        res.Err != nil,
		}
	}
	return out, results, store.Counters()
}

// TestPushChaos: under the full fault plan with degraded-page continuation,
// coverage stays exact outside the bad band, torn reads are absorbed by
// retries, owners detach and hand the read to promoted subscribers, and the
// whole run replays byte-identically from the same seed.
func TestPushChaos(t *testing.T) {
	const (
		tablePages        = 300
		pageBytes         = 64
		base              = disk.PageID(2000)
		badFirst, badLast = 200, 207
		badBand           = badLast - badFirst + 1
	)
	out, results, fc := runPushChaos(t, 11, true)

	if fc.TornReads == 0 {
		t.Error("fault plan injected no torn reads")
	}
	fullSum := wantChecksum(base, 0, tablePages, pageBytes) - wantChecksum(base, badFirst, badLast+1, pageBytes)
	partialSum := wantChecksum(base, 0, 150, pageBytes)
	var detaches, rejoins, retries, timeouts int
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("scan %d: %v", i, res.Err)
		}
		detaches += res.Detaches
		rejoins += res.Rejoins
		retries += int(res.ReadRetries)
		timeouts += int(res.ReadTimeouts)
		switch i {
		case 5: // partial range misses the bad band
			if res.DegradedPages != 0 || res.Checksum != partialSum || res.PagesRead != 150 {
				t.Errorf("scan 5: pages %d degraded %d checksum %#x, want 150/0/%#x",
					res.PagesRead, res.DegradedPages, res.Checksum, partialSum)
			}
		case 6: // stopped before a full lap
			if !res.Stopped || res.PagesRead+res.DegradedPages > 40 {
				t.Errorf("scan 6: stopped=%v pages=%d degraded=%d",
					res.Stopped, res.PagesRead, res.DegradedPages)
			}
		default: // full lap: exactly the bad band degrades
			if res.DegradedPages != badBand {
				t.Errorf("scan %d: %d degraded pages, want the %d-page bad band",
					i, res.DegradedPages, badBand)
			}
			if res.PagesRead != tablePages-badBand {
				t.Errorf("scan %d: read %d pages, want %d", i, res.PagesRead, tablePages-badBand)
			}
			if res.Checksum != fullSum {
				t.Errorf("scan %d: checksum %#x, want %#x", i, res.Checksum, fullSum)
			}
		}
	}
	// Permanent failures must have exhausted owners into detaching, and the
	// hub must have promoted other subscribers to re-issue those reads:
	// more read retries than one owner alone could account for.
	if detaches == 0 {
		t.Error("no owner detached across the permanently bad band")
	}
	if retries == 0 || timeouts == 0 {
		t.Errorf("retries %d, timeouts %d: the retry/timeout machinery went unexercised", retries, timeouts)
	}

	// Replay determinism: the same seed reproduces the same coverage,
	// degradation, and checksums, byte for byte.
	out2, _, _ := runPushChaos(t, 11, true)
	for i := range out {
		a, b := out[i], out2[i]
		if a.Stopped && b.Stopped {
			// A stopped scan's page budget is exact, but which pages it
			// saw depends on its admission cursor — timing, not seed.
			a.Checksum, b.Checksum = 0, 0
		}
		if a != b {
			t.Errorf("scan %d diverged between same-seed replays: %+v vs %+v", i, a, b)
		}
	}
}

// TestPushChaosAbort: without degraded-page continuation a permanently bad
// page is a hard stream failure — every live subscriber observes the error
// instead of hanging or receiving partial batches.
func TestPushChaosAbort(t *testing.T) {
	const (
		tablePages = 120
		pageBytes  = 64
		base       = disk.PageID(4000)
	)
	plan := fault.Plan{
		Seed:  3,
		Rules: []fault.Rule{{Kind: fault.KindError, FirstPage: base + 60, LastPage: base + 60, Prob: 1}},
	}
	store := fault.MustNewStore(testStore{pageBytes: pageBytes}, plan)
	pool := buffer.MustNewPool(160)
	mgr := core.MustNewManager(testManagerConfig(160))
	r, err := NewRunner(Config{
		Pool:                pool,
		Manager:             mgr,
		Store:               store,
		PushDelivery:        true,
		ReadTimeout:         2 * time.Millisecond,
		MaxReadRetries:      1,
		RetryBackoff:        50 * time.Microsecond,
		DetachAfterFailures: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pageID := func(pageNo int) disk.PageID { return base + disk.PageID(pageNo) }
	specs := []ScanSpec{
		{Table: 1, TablePages: tablePages, PageID: pageID},
		{Table: 1, TablePages: tablePages, PageID: pageID},
		{Table: 1, TablePages: tablePages, PageID: pageID},
	}
	results, err := r.Run(context.Background(), specs)
	if err == nil {
		t.Fatal("permanent failure without continuation did not fail the run")
	}
	for i, res := range results {
		if res.Err == nil && !res.Stopped && res.PagesRead != tablePages {
			t.Errorf("scan %d: no error yet incomplete (%d pages)", i, res.PagesRead)
		}
	}
	if n := mgr.ActiveScans(); n != 0 {
		t.Errorf("%d scans leaked after stream abort", n)
	}
	pool.CheckInvariants()
}
