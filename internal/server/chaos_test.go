package server

import (
	"context"
	"testing"
	"time"

	"scanshare"
)

// TestServeChaosReleasesSlotsExactlyOnce drives the server with a fault plan
// that forces scans to fail reads, detach from their group, and rejoin —
// while admission keeps granting and releasing slots around them. Whatever
// path a request takes out of RunRealtime (success after retries, degraded
// pages, detach/rejoin churn), its admission ticket must fire exactly once:
// afterwards every running gauge is back to zero and the freed slots kept
// flowing (all requests completed). Run under -race this also shakes out
// ordering bugs between the dispatcher and the release path.
func TestServeChaosReleasesSlotsExactlyOnce(t *testing.T) {
	eng := testEngine(t, 32, 2000)
	tbl, err := eng.Lookup("rt")
	if err != nil {
		t.Fatal(err)
	}
	srv := startServer(t, Config{
		Engine: eng,
		Tenants: []TenantConfig{
			{Name: "t0", MaxConcurrent: 2, MaxQueueDepth: 3},
			{Name: "t1", MaxConcurrent: 2, MaxQueueDepth: 3},
		},
		PageDelay: 50 * time.Microsecond,
		Realtime: scanshare.RealtimeOptions{
			Faults: &scanshare.FaultPlan{
				Seed: 7,
				Rules: []scanshare.FaultRule{
					// Fail hard on first attempts across the whole
					// table; retries recover, so scans detach on the
					// failure streaks and rejoin on the retry.
					{Kind: scanshare.FaultError, Table: tbl, Prob: 0.3, UntilAttempt: 2},
					{Kind: scanshare.FaultLatency, Table: tbl, Prob: 0.1, Latency: 200 * time.Microsecond},
				},
			},
			MaxReadRetries:        4,
			RetryBackoff:          100 * time.Microsecond,
			ReadTimeout:           time.Second,
			DetachAfterFailures:   1,
			ContinueOnPageFailure: true,
		},
	})

	stats, err := RunDriver(context.Background(), DriverConfig{
		Addr:              srv.Addr(),
		Clients:           16,
		Tenants:           []string{"t0", "t1"},
		Queries:           []string{"SELECT count(*) FROM rt"},
		RequestsPerClient: 2,
		Seed:              7,
		RetryOnShed:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("driver: %s", stats)

	if stats.Completed != 32 || stats.Errors != 0 {
		t.Fatalf("completed %d, errors %d: %s", stats.Completed, stats.Errors, stats)
	}
	cs := srv.Collector().Snapshot()
	if cs.ScanDetaches == 0 || cs.ScanRejoins == 0 {
		t.Fatalf("fault plan injected no detach/rejoin churn: detaches=%d rejoins=%d retries=%d",
			cs.ScanDetaches, cs.ScanRejoins, cs.ReadRetries)
	}
	var admitted int64
	for _, st := range srv.TenantStats() {
		t.Logf("%s", st)
		if st.Running != 0 {
			t.Errorf("tenant %s: %d slots still held — a release was lost or doubled", st.Name, st.Running)
		}
		admitted += st.Admitted
	}
	if admitted != 32 {
		t.Errorf("admitted %d, want 32 (one per completed request)", admitted)
	}
	// The shared controller mirrors the same invariant.
	if all := srv.AllStats(); all.Running != 0 || all.Admitted != 32 {
		t.Errorf("aggregate = %+v", all)
	}
	// And the admission's own slot count must have drained: re-admitting
	// up to both tenants' full caps immediately proves no slot leaked.
	for i := 0; i < 2; i++ {
		for _, tenant := range []string{"t0", "t1"} {
			rel, wait, err := srv.adm.Acquire(context.Background(), tenant)
			if err != nil || wait != 0 {
				t.Fatalf("post-run Acquire(%s) #%d = wait %v, err %v — slots leaked", tenant, i, wait, err)
			}
			defer rel()
		}
	}
}
