package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// DriverConfig describes a deterministic multi-client load run against a
// serve endpoint. Client i uses rand.NewSource(Seed+i) for every choice it
// makes — query selection and think-time jitter — so a run is reproducible
// given the same config, in the same spirit as the realtime scheduler
// harness's seeded workloads.
type DriverConfig struct {
	// Addr is the server's "host:port".
	Addr string
	// Clients is the number of concurrent connections.
	Clients int
	// Tenants assigns client i to Tenants[i%len(Tenants)].
	Tenants []string
	// Queries is the statement pool each client draws from.
	Queries []string
	// RequestsPerClient is how many successful requests each client must
	// complete (shed responses don't count; see RetryOnShed).
	RequestsPerClient int
	// Seed is the base RNG seed.
	Seed int64
	// RetryOnShed makes clients honor the server's retry-after hint and
	// resend until admitted. When false a shed response consumes the
	// request slot.
	RetryOnShed bool
	// MaxRetryPause caps how long a client honors one retry-after hint, so
	// a pessimistic server estimate can't stall the run; 0 means 50ms. The
	// pause always aborts immediately on context cancellation regardless
	// of the cap.
	MaxRetryPause time.Duration
	// ThinkTime, when positive, sleeps a uniform random duration in
	// [0, ThinkTime) between a client's requests.
	ThinkTime time.Duration
	// OnResponse, when set, observes every response a client receives
	// (shed and error responses included) together with the request's
	// client-measured round trip. Called from the client goroutines
	// concurrently; the callback must be safe for concurrent use.
	OnResponse func(tenant string, resp Response, rtt time.Duration)
}

// DriverStats aggregates one driver run.
type DriverStats struct {
	// Completed counts requests answered OK.
	Completed int64
	// ShedResponses counts shed answers observed by clients (each may be
	// followed by a retry of the same request).
	ShedResponses int64
	// Errors counts non-shed failures.
	Errors int64
	// PagesRead sums the per-response page counts.
	PagesRead int64
	// PerTenantCompleted breaks Completed down by tenant.
	PerTenantCompleted map[string]int64
	// Wall is the whole run's duration, connection setup included.
	Wall time.Duration
}

// TenantSpread returns max/min of PerTenantCompleted — 1.0 is perfectly
// balanced. Infinity when some tenant completed nothing.
func (s DriverStats) TenantSpread() float64 {
	var lo, hi int64 = -1, 0
	for _, n := range s.PerTenantCompleted {
		if lo < 0 || n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo <= 0 {
		if hi == 0 {
			return 1
		}
		return float64(int64(^uint64(0) >> 1)) // effectively infinite spread
	}
	return float64(hi) / float64(lo)
}

// String renders the stats as one log line with tenants in name order.
func (s DriverStats) String() string {
	names := make([]string, 0, len(s.PerTenantCompleted))
	for n := range s.PerTenantCompleted {
		names = append(names, n)
	}
	sort.Strings(names)
	out := fmt.Sprintf("%d completed, %d shed responses, %d errors, %d pages in %s",
		s.Completed, s.ShedResponses, s.Errors, s.PagesRead, s.Wall.Round(time.Millisecond))
	for _, n := range names {
		out += fmt.Sprintf(" %s=%d", n, s.PerTenantCompleted[n])
	}
	return out
}

// RunDriver executes the configured client fleet and returns the aggregate
// stats. It fails fast on config errors and reports the first connection
// error; per-request failures are counted, not fatal. Cancelling ctx stops
// every client after its current request.
func RunDriver(ctx context.Context, cfg DriverConfig) (DriverStats, error) {
	if cfg.Clients <= 0 || cfg.RequestsPerClient <= 0 {
		return DriverStats{}, errors.New("server: driver needs Clients and RequestsPerClient > 0")
	}
	if len(cfg.Tenants) == 0 || len(cfg.Queries) == 0 {
		return DriverStats{}, errors.New("server: driver needs Tenants and Queries")
	}

	stats := DriverStats{PerTenantCompleted: make(map[string]int64, len(cfg.Tenants))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, cfg.Clients)
	start := time.Now()
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, err := runClient(ctx, cfg, i)
			mu.Lock()
			defer mu.Unlock()
			errs[i] = err
			stats.Completed += local.Completed
			stats.ShedResponses += local.ShedResponses
			stats.Errors += local.Errors
			stats.PagesRead += local.PagesRead
			for t, n := range local.PerTenantCompleted {
				stats.PerTenantCompleted[t] += n
			}
		}(i)
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	return stats, errors.Join(errs...)
}

// runClient is one connection's request loop.
func runClient(ctx context.Context, cfg DriverConfig, idx int) (DriverStats, error) {
	tenant := cfg.Tenants[idx%len(cfg.Tenants)]
	rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)))
	local := DriverStats{PerTenantCompleted: map[string]int64{tenant: 0}}

	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return local, fmt.Errorf("client %d: %w", idx, err)
	}
	defer conn.Close()

	for r := 0; r < cfg.RequestsPerClient; r++ {
		if ctx.Err() != nil {
			return local, nil
		}
		req := Request{Tenant: tenant, Query: cfg.Queries[rng.Intn(len(cfg.Queries))]}
		for {
			sent := time.Now()
			if err := WriteFrame(conn, &req); err != nil {
				return local, fmt.Errorf("client %d: %w", idx, err)
			}
			var resp Response
			if err := ReadFrame(conn, &resp); err != nil {
				return local, fmt.Errorf("client %d: %w", idx, err)
			}
			if cfg.OnResponse != nil {
				cfg.OnResponse(tenant, resp, time.Since(sent))
			}
			if resp.Shed {
				local.ShedResponses++
				if !cfg.RetryOnShed {
					break
				}
				// Honor the hint, bounded so a pessimistic estimate
				// can't stall the run.
				maxPause := cfg.MaxRetryPause
				if maxPause <= 0 {
					maxPause = 50 * time.Millisecond
				}
				pause := time.Duration(resp.RetryAfterMs) * time.Millisecond
				if pause > maxPause {
					pause = maxPause
				}
				timer := time.NewTimer(pause)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return local, nil
				}
				continue
			}
			if !resp.OK {
				local.Errors++
			} else {
				local.Completed++
				local.PerTenantCompleted[tenant]++
				local.PagesRead += int64(resp.PagesRead)
			}
			break
		}
		if cfg.ThinkTime > 0 {
			select {
			case <-time.After(time.Duration(rng.Int63n(int64(cfg.ThinkTime)))):
			case <-ctx.Done():
				return local, nil
			}
		}
	}
	return local, nil
}
