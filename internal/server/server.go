package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"scanshare"
	"scanshare/internal/metrics"
	"scanshare/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Engine executes admitted requests; its tables are the catalog
	// clients query. Required.
	Engine *scanshare.Engine
	// Tenants declares the admission limits; requests naming any other
	// tenant are rejected (not shed — rejection is permanent). Required.
	Tenants []TenantConfig
	// MaxConcurrent caps requests executing across all tenants; tenants
	// compete for these global slots under weighted round robin. <= 0
	// means the sum of the tenant caps.
	MaxConcurrent int
	// PageDelay models per-page processing cost for every executed scan,
	// as in RealtimeScan.PageDelay.
	PageDelay time.Duration
	// Realtime is the execution option template for every request. The
	// server forces Tracer to nil (concurrent RunRealtime calls must not
	// share a tracer attachment) and installs its own Collector when none
	// is set, so TelemetrySources observers see the aggregate load.
	Realtime scanshare.RealtimeOptions
	// Tracer, when non-nil, gives every request a span tree: a request
	// root spanning decode-to-response, with compile, admission-queue, and
	// scan children (the scan subtree comes from the runner). New attaches
	// it to the Engine once, before any request runs, so concurrent
	// RunRealtime calls share the attachment instead of racing on it —
	// which is why Realtime.Tracer stays forcibly nil.
	Tracer *trace.Tracer
}

// Server is the multi-tenant scan service: an accept loop feeding
// per-connection handlers that push every request through admission and the
// engine's realtime scan path. Start it with Serve, stop it with Shutdown.
type Server struct {
	cfg Config
	adm *admission
	all *metrics.TenantCollector

	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New validates cfg and builds the server. It does not listen yet.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	all := new(metrics.TenantCollector)
	adm, err := newAdmission(cfg.Tenants, cfg.MaxConcurrent, all)
	if err != nil {
		return nil, err
	}
	cfg.Realtime.Tracer = nil
	if cfg.Realtime.Collector == nil {
		cfg.Realtime.Collector = new(metrics.Collector)
	}
	if cfg.Tracer != nil {
		cfg.Engine.AttachTracer(cfg.Tracer)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		adm:     adm,
		all:     all,
		baseCtx: ctx,
		cancel:  cancel,
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// Serve starts listening on addr ("host:port"; ":0" picks a free port) and
// accepts connections until Shutdown. It returns once the listener is live —
// the accept loop runs in the background.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already serving")
	}
	s.ln = ln
	s.wg.Add(1)
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// TenantStats snapshots per-tenant admission counters sorted by tenant name.
// Its method value plugs straight into telemetry.Sources.Tenants.
func (s *Server) TenantStats() []metrics.TenantStats { return s.adm.TenantStats() }

// AllStats aggregates admission counters across every tenant under the name
// "all" — the serve-mode benchmark's headline numbers.
func (s *Server) AllStats() metrics.TenantStats { return s.all.Snapshot("all") }

// Collector returns the metrics collector every request's execution feeds.
func (s *Server) Collector() *metrics.Collector { return s.cfg.Realtime.Collector }

// Shutdown stops accepting, cancels in-flight request execution, and waits
// for connection handlers to drain. When ctx expires first the remaining
// connections are closed forcibly and Shutdown still waits for the handlers
// (which then exit promptly on the dead sockets).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			// Listener closed by Shutdown (or a fatal accept error
			// — either way the loop is over).
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		var req Request
		if err := ReadFrame(c, &req); err != nil {
			return // clean close, broken frame, or forced shutdown
		}
		resp := s.handle(s.baseCtx, &req)
		if err := WriteFrame(c, &resp); err != nil {
			return
		}
	}
}

// handle runs one request end to end: compile, admit, execute. Compilation
// precedes admission so malformed statements never consume a slot or skew
// the shed counters. With a tracer configured, the whole request runs under
// a root span whose children — compile, queue, and the runner's scan
// subtree — tile its critical path; every response carries the trace ID so
// clients can find their tree in the journal.
func (s *Server) handle(ctx context.Context, req *Request) Response {
	tr := s.cfg.Tracer
	root := tr.Root()
	reqSpan := tr.OpenSpan(root, trace.SpanRequest, trace.NoID, trace.NoID)
	defer reqSpan.Close()

	compileStart := time.Now()
	sc, err := s.cfg.Engine.CompileRealtimeScan(req.Query)
	compileWait := time.Since(compileStart)
	tr.EmitSpan(root, trace.SpanCompile, trace.NoID, trace.NoID, compileWait)
	if err != nil {
		return Response{Error: err.Error(), TraceID: root.Trace}
	}
	sc.PageDelay = s.cfg.PageDelay
	sc.Span = tr.Child(root)

	release, wait, err := s.adm.Acquire(ctx, req.Tenant)
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			return Response{
				Shed:         true,
				Error:        err.Error(),
				RetryAfterMs: max(1, shed.RetryAfter.Milliseconds()),
				TraceID:      root.Trace,
			}
		}
		return Response{Error: err.Error(), TraceID: root.Trace}
	}
	defer release()
	tr.EmitSpan(root, trace.SpanQueue, trace.NoID, trace.NoID, wait)

	rep, err := s.cfg.Engine.RunRealtime(ctx, s.cfg.Realtime, []scanshare.RealtimeScan{sc})
	if err != nil {
		return Response{Error: err.Error(), TraceID: root.Trace}
	}
	res := rep.Results[0]
	if res.Err != nil {
		return Response{Error: fmt.Sprintf("server: scan failed: %v", res.Err), TraceID: root.Trace}
	}
	s.adm.recordBreakdown(req.Tenant, compileWait,
		res.ThrottleWait, res.PoolWait, res.ReadWait, res.DeliveryWait)
	return Response{
		OK:                 true,
		PagesRead:          res.PagesRead,
		WallMicros:         rep.Wall.Microseconds(),
		QueueWaitMicros:    wait.Microseconds(),
		TraceID:            root.Trace,
		CompileMicros:      compileWait.Microseconds(),
		ThrottleWaitMicros: res.ThrottleWait.Microseconds(),
		PoolWaitMicros:     res.PoolWait.Microseconds(),
		ReadWaitMicros:     res.ReadWait.Microseconds(),
		DeliveryWaitMicros: res.DeliveryWait.Microseconds(),
	}
}
