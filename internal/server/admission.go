package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"scanshare/internal/metrics"
)

// TenantConfig declares one tenant's admission limits and dispatch share.
type TenantConfig struct {
	// Name identifies the tenant; requests carry it verbatim.
	Name string
	// MaxConcurrent caps the tenant's simultaneously executing requests.
	// Values below 1 mean 1.
	MaxConcurrent int
	// MaxQueueDepth bounds the tenant's admission FIFO. A request arriving
	// with the queue full is shed. Values below 0 mean 0 — no queueing,
	// shed as soon as the tenant is at its concurrency cap.
	MaxQueueDepth int
	// Weight is the tenant's share in cross-tenant dispatch when a global
	// execution slot frees up and several tenants have queued requests.
	// Values below 1 mean 1.
	Weight int
}

func (c TenantConfig) cap() int {
	if c.MaxConcurrent < 1 {
		return 1
	}
	return c.MaxConcurrent
}

func (c TenantConfig) depth() int {
	if c.MaxQueueDepth < 0 {
		return 0
	}
	return c.MaxQueueDepth
}

func (c TenantConfig) weight() int {
	if c.Weight < 1 {
		return 1
	}
	return c.Weight
}

// ShedError reports an admission rejection: the tenant's queue was at its
// depth limit. RetryAfter is the server's backoff hint, derived from the
// tenant's smoothed service time and current backlog.
type ShedError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("server: tenant %q overloaded, retry after %s", e.Tenant, e.RetryAfter)
}

// waiter is one request parked in a tenant's admission FIFO. All fields are
// guarded by the admission mutex except grant, which the dispatcher closes
// (under the mutex) and Acquire receives on (outside it).
type waiter struct {
	grant    chan struct{}
	granted  bool
	canceled bool
	enqueued time.Time
}

// tenantState is one tenant's live admission bookkeeping.
type tenantState struct {
	cfg   TenantConfig
	col   *metrics.TenantCollector
	queue []*waiter
	// running counts requests holding a slot; mirrored in col's gauge but
	// kept here as the authoritative value the caps compare against.
	running int
	// wrr is the smooth weighted-round-robin accumulator: every dispatch
	// round each eligible tenant gains its weight, the max wins and pays
	// back the round's total, so over time grants converge to the weight
	// ratio without bursts.
	wrr int
	// ewma is the smoothed request service time feeding retry-after hints.
	ewma time.Duration
}

// admission is the server's admission controller. One mutex guards all
// tenants: admission decisions are a few comparisons and never block under
// the lock (request execution happens outside it), so a single lock keeps
// the cross-tenant invariants — the global cap and fair dispatch — trivially
// consistent.
type admission struct {
	mu        sync.Mutex
	globalCap int
	running   int // total executing, all tenants
	tenants   map[string]*tenantState
	order     []string // sorted tenant names: deterministic dispatch scans
	all       *metrics.TenantCollector
}

// newAdmission builds the controller. globalCap <= 0 means the sum of the
// tenant caps (tenants then only compete with themselves).
func newAdmission(cfgs []TenantConfig, globalCap int, all *metrics.TenantCollector) (*admission, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("server: no tenants configured")
	}
	if all == nil {
		all = new(metrics.TenantCollector)
	}
	a := &admission{tenants: make(map[string]*tenantState, len(cfgs)), all: all}
	capSum := 0
	for _, c := range cfgs {
		if c.Name == "" {
			return nil, fmt.Errorf("server: tenant with empty name")
		}
		if _, dup := a.tenants[c.Name]; dup {
			return nil, fmt.Errorf("server: duplicate tenant %q", c.Name)
		}
		a.tenants[c.Name] = &tenantState{cfg: c, col: new(metrics.TenantCollector)}
		a.order = append(a.order, c.Name)
		capSum += c.cap()
	}
	sort.Strings(a.order)
	a.globalCap = globalCap
	if a.globalCap <= 0 {
		a.globalCap = capSum
	}
	return a, nil
}

// Acquire admits one request for tenant, blocking in the tenant's FIFO when
// it is at its concurrency cap (or the server at its global cap). It returns
// the release ticket and how long the request waited queued. The ticket is
// idempotent — calling it more than once releases the slot exactly once — so
// callers may defer it and also call it early on error paths.
//
// When the tenant's queue is at its depth limit the request is shed with a
// *ShedError. When ctx is done first the request leaves the queue and
// reports ctx's error; if a grant raced the cancellation the slot is
// returned before reporting it.
func (a *admission) Acquire(ctx context.Context, tenant string) (release func(), wait time.Duration, err error) {
	a.mu.Lock()
	ts := a.tenants[tenant]
	if ts == nil {
		a.mu.Unlock()
		return nil, 0, fmt.Errorf("server: unknown tenant %q", tenant)
	}
	// Fast path: a free slot and no one queued ahead (FIFO order holds
	// even against the dispatcher, which drains the queue before slots
	// reach new arrivals).
	if len(ts.queue) == 0 && ts.running < ts.cfg.cap() && a.running < a.globalCap {
		a.admitLocked(ts, 0)
		a.mu.Unlock()
		return a.ticket(ts, time.Now()), 0, nil
	}
	if len(ts.queue) >= ts.cfg.depth() {
		retry := a.retryAfterLocked(ts)
		ts.col.Shed()
		a.all.Shed()
		a.mu.Unlock()
		return nil, 0, &ShedError{Tenant: tenant, RetryAfter: retry}
	}
	w := &waiter{grant: make(chan struct{}), enqueued: time.Now()}
	ts.queue = append(ts.queue, w)
	ts.col.Queued()
	a.all.Queued()
	a.mu.Unlock()

	select {
	case <-w.grant:
		return a.ticket(ts, time.Now()), time.Since(w.enqueued), nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The dispatcher granted us concurrently; give the slot
			// straight back (which may grant the next waiter).
			a.mu.Unlock()
			a.ticket(ts, time.Now())()
			return nil, 0, ctx.Err()
		}
		w.canceled = true
		a.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// admitLocked moves one request into the running state and records the
// admission with its queue wait.
func (a *admission) admitLocked(ts *tenantState, wait time.Duration) {
	ts.running++
	a.running++
	ts.col.Admitted(wait)
	a.all.Admitted(wait)
}

// ticket builds the idempotent release closure for one admitted request.
// The sync.Once is what makes detach/rejoin and error unwinding safe: no
// matter how many paths call release, the slot returns exactly once.
func (a *admission) ticket(ts *tenantState, start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			served := time.Since(start)
			a.mu.Lock()
			defer a.mu.Unlock()
			ts.running--
			a.running--
			ts.col.Released()
			a.all.Released()
			// EWMA with α=1/4: stable enough for a hint, fresh enough
			// to track load shifts within a few requests.
			if ts.ewma == 0 {
				ts.ewma = served
			} else {
				ts.ewma += (served - ts.ewma) / 4
			}
			a.dispatchLocked()
		})
	}
}

// dispatchLocked grants freed slots to queued requests, choosing among
// tenants by smooth weighted round robin. Canceled waiters are dropped as
// they surface.
func (a *admission) dispatchLocked() {
	for a.running < a.globalCap {
		var best *tenantState
		total := 0
		for _, name := range a.order {
			ts := a.tenants[name]
			a.pruneLocked(ts)
			if len(ts.queue) == 0 || ts.running >= ts.cfg.cap() {
				continue
			}
			total += ts.cfg.weight()
			ts.wrr += ts.cfg.weight()
			if best == nil || ts.wrr > best.wrr {
				best = ts
			}
		}
		if best == nil {
			return
		}
		best.wrr -= total
		w := best.queue[0]
		best.queue = best.queue[1:]
		w.granted = true
		close(w.grant)
		a.admitLocked(best, time.Since(w.enqueued))
	}
}

// pruneLocked drops canceled waiters from the front of the queue. Canceled
// entries deeper in the queue are left for later passes — they block no one
// until they reach the front.
func (a *admission) pruneLocked(ts *tenantState) {
	for len(ts.queue) > 0 && ts.queue[0].canceled {
		ts.queue = ts.queue[1:]
	}
}

// retryAfterLocked estimates when the tenant's backlog will have drained
// enough to be worth retrying: the smoothed per-request service time scaled
// by the backlog ahead of a new arrival, divided by the tenant's concurrency,
// clamped to [1ms, 1s].
func (a *admission) retryAfterLocked(ts *tenantState) time.Duration {
	est := ts.ewma
	if est == 0 {
		est = 10 * time.Millisecond
	}
	backlog := len(ts.queue) + ts.running
	retry := est * time.Duration(backlog+1) / time.Duration(ts.cfg.cap())
	if retry < time.Millisecond {
		retry = time.Millisecond
	}
	if retry > time.Second {
		retry = time.Second
	}
	return retry
}

// recordBreakdown adds one completed request's latency attribution to its
// tenant's collector and the all-tenants aggregate.
func (a *admission) recordBreakdown(tenant string, compile, throttle, pool, read, delivery time.Duration) {
	a.mu.Lock()
	ts := a.tenants[tenant]
	a.mu.Unlock()
	if ts == nil {
		return
	}
	ts.col.RecordBreakdown(compile, throttle, pool, read, delivery)
	a.all.RecordBreakdown(compile, throttle, pool, read, delivery)
}

// TenantStats snapshots every tenant's counters, sorted by tenant name.
func (a *admission) TenantStats() []metrics.TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]metrics.TenantStats, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, a.tenants[name].col.Snapshot(name))
	}
	return out
}
