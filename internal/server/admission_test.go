package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestAdmission(t *testing.T, globalCap int, cfgs ...TenantConfig) *admission {
	t.Helper()
	a, err := newAdmission(cfgs, globalCap, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// waitQueued polls until the tenant reports n queued requests; the grant
// machinery is asynchronous, so tests order their phases through counters.
func waitQueued(t *testing.T, a *admission, tenant string, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, st := range a.TenantStats() {
			if st.Name == tenant && st.Queued >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q never reached %d queued: %v", tenant, n, a.TenantStats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionFastQueueShed(t *testing.T) {
	a := newTestAdmission(t, 0, TenantConfig{Name: "t", MaxConcurrent: 1, MaxQueueDepth: 1})

	rel1, wait, err := a.Acquire(context.Background(), "t")
	if err != nil || wait != 0 {
		t.Fatalf("fast-path Acquire = wait %v, err %v", wait, err)
	}

	// Second request must queue (cap 1); run it in a goroutine.
	got := make(chan error, 1)
	go func() {
		rel2, w, err := a.Acquire(context.Background(), "t")
		if err == nil {
			if w <= 0 {
				err = errors.New("queued admission reported zero wait")
			}
			rel2()
		}
		got <- err
	}()
	waitQueued(t, a, "t", 1)

	// Third request finds the queue full and is shed with a hint.
	_, _, err = a.Acquire(context.Background(), "t")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overflow Acquire error = %v, want *ShedError", err)
	}
	if shed.Tenant != "t" || shed.RetryAfter < time.Millisecond || shed.RetryAfter > time.Second {
		t.Errorf("shed = %+v", shed)
	}

	rel1()
	if err := <-got; err != nil {
		t.Fatalf("queued request: %v", err)
	}

	st := a.TenantStats()[0]
	if st.Admitted != 2 || st.Queued != 1 || st.Shed != 1 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.QueueWait.Count != 2 { // every admission observes its wait, fast path as 0
		t.Errorf("queue wait count = %d, want 2", st.QueueWait.Count)
	}
	if all := a.all.Snapshot("all"); all.Admitted != 2 || all.Shed != 1 {
		t.Errorf("aggregate stats = %+v", all)
	}
}

// TestAdmissionReleaseIdempotent hammers one ticket from many goroutines:
// the slot must come back exactly once, which is what keeps detach/rejoin
// and error-path double-releases harmless.
func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := newTestAdmission(t, 0, TenantConfig{Name: "t", MaxConcurrent: 1})
	rel, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); rel() }()
	}
	wg.Wait()
	st := a.TenantStats()[0]
	if st.Running != 0 {
		t.Fatalf("running = %d after concurrent releases, want 0", st.Running)
	}
	// The slot is usable again, and counters moved exactly one step.
	rel2, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	if st := a.TenantStats()[0]; st.Admitted != 2 || st.Running != 0 {
		t.Errorf("stats after reacquire = %+v", st)
	}
}

// TestAdmissionWeightedRoundRobin checks the smooth-WRR dispatch ratio: with
// weights 3:1 competing for one global slot, grants interleave a,a,b,a per
// cycle instead of starving b or bursting a.
func TestAdmissionWeightedRoundRobin(t *testing.T) {
	a := newTestAdmission(t, 1,
		TenantConfig{Name: "a", MaxConcurrent: 8, MaxQueueDepth: 16, Weight: 3},
		TenantConfig{Name: "b", MaxConcurrent: 8, MaxQueueDepth: 16, Weight: 1},
	)
	hold, _, err := a.Acquire(context.Background(), "a") // occupy the global slot
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, _, err := a.Acquire(context.Background(), tenant)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, tenant)
				mu.Unlock()
				rel()
			}()
		}
	}
	enqueue("a", 6)
	enqueue("b", 2)
	waitQueued(t, a, "a", 6)
	waitQueued(t, a, "b", 2)

	hold() // start the dispatch chain: each grant's release grants the next
	wg.Wait()

	if len(order) != 8 {
		t.Fatalf("granted %d, want 8: %v", len(order), order)
	}
	want := []string{"a", "a", "b", "a", "a", "a", "b", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newTestAdmission(t, 0, TenantConfig{Name: "t", MaxConcurrent: 1, MaxQueueDepth: 4})
	hold, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, _, err := a.Acquire(ctx, "t")
		got <- err
	}()
	waitQueued(t, a, "t", 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Acquire error = %v", err)
	}
	hold()
	// The canceled waiter must not absorb the freed slot.
	rel, _, err := a.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatalf("Acquire after cancel: %v", err)
	}
	rel()
	if st := a.TenantStats()[0]; st.Running != 0 || st.Admitted != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAdmissionConfigErrors(t *testing.T) {
	if _, err := newAdmission(nil, 0, nil); err == nil {
		t.Error("empty tenant list accepted")
	}
	if _, err := newAdmission([]TenantConfig{{Name: ""}}, 0, nil); err == nil {
		t.Error("empty tenant name accepted")
	}
	if _, err := newAdmission([]TenantConfig{{Name: "x"}, {Name: "x"}}, 0, nil); err == nil {
		t.Error("duplicate tenant accepted")
	}
	a := newTestAdmission(t, 0, TenantConfig{Name: "t"})
	if _, _, err := a.Acquire(context.Background(), "ghost"); err == nil {
		t.Error("unknown tenant admitted")
	}
}
