package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"scanshare"
)

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Tenant: "acme", Query: "SELECT count(*) FROM rt"}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	// Clean EOF at a frame boundary.
	if err := ReadFrame(&buf, &out); err != io.EOF {
		t.Errorf("empty read error = %v, want io.EOF", err)
	}
}

func TestWireRejectsBadFrames(t *testing.T) {
	// Oversized declared length dies before allocating the payload.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var v Request
	if err := ReadFrame(bytes.NewReader(hdr[:]), &v); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("oversized frame error = %v", err)
	}
	// Zero length is equally invalid.
	binary.BigEndian.PutUint32(hdr[:], 0)
	if err := ReadFrame(bytes.NewReader(hdr[:]), &v); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("zero frame error = %v", err)
	}
	// Truncated payload surfaces as unexpected EOF.
	binary.BigEndian.PutUint32(hdr[:], 100)
	if err := ReadFrame(bytes.NewReader(append(hdr[:], 'x')), &v); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated frame error = %v", err)
	}
	// Writer refuses payloads beyond the frame limit.
	big := Request{Query: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(io.Discard, &big); err == nil {
		t.Error("oversized write accepted")
	}
}

// testEngine builds a small engine with one synthetic table "rt", the shape
// the serve workload scans.
func testEngine(t testing.TB, poolPages, rows int) *scanshare.Engine {
	t.Helper()
	eng, err := scanshare.New(scanshare.Config{
		BufferPoolPages: poolPages,
		PoolShards:      4,
		Sharing:         scanshare.SharingConfig{PrefetchExtentPages: 4, MinSharePages: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := scanshare.MustSchema(
		scanshare.Field{Name: "id", Kind: scanshare.KindInt64},
		scanshare.Field{Name: "v", Kind: scanshare.KindFloat64},
	)
	_, err = eng.LoadTable("rt", schema, func(add func(scanshare.Tuple) error) error {
		for i := 0; i < rows; i++ {
			if err := add(scanshare.Tuple{scanshare.Int64(int64(i)), scanshare.Float64(float64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func startServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// TestServeOverloadAndFairness is the acceptance run: 64 seeded clients
// across 4 tenants against deliberately tight admission limits. The burst
// must shed some load, retries must drain everything, and the completed work
// must stay balanced across tenants.
func TestServeOverloadAndFairness(t *testing.T) {
	eng := testEngine(t, 48, 4000)
	tenants := []TenantConfig{
		{Name: "t0", MaxConcurrent: 2, MaxQueueDepth: 2},
		{Name: "t1", MaxConcurrent: 2, MaxQueueDepth: 2},
		{Name: "t2", MaxConcurrent: 2, MaxQueueDepth: 2},
		{Name: "t3", MaxConcurrent: 2, MaxQueueDepth: 2},
	}
	srv := startServer(t, Config{
		Engine:    eng,
		Tenants:   tenants,
		PageDelay: 200 * time.Microsecond,
	})

	stats, err := RunDriver(context.Background(), DriverConfig{
		Addr:    srv.Addr(),
		Clients: 64,
		Tenants: []string{"t0", "t1", "t2", "t3"},
		Queries: []string{
			"SELECT count(*) FROM rt",
			"SELECT id FROM rt LIMIT 10",
			"SELECT count(*) FROM rt WHERE v > 100",
		},
		RequestsPerClient: 3,
		Seed:              42,
		RetryOnShed:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("driver: %s", stats)

	const want = 64 * 3
	if stats.Completed != want || stats.Errors != 0 {
		t.Fatalf("completed %d (want %d), errors %d: %s", stats.Completed, want, stats.Errors, stats)
	}
	if stats.PagesRead == 0 {
		t.Error("no pages read")
	}

	ts := srv.TenantStats()
	if len(ts) != 4 {
		t.Fatalf("tenant stats = %v", ts)
	}
	var shed, minAdm, maxAdm int64
	for _, st := range ts {
		t.Logf("%s", st)
		shed += st.Shed
		if st.Running != 0 {
			t.Errorf("tenant %s still has %d running after drain", st.Name, st.Running)
		}
		if st.QueueWait.Count != st.Admitted {
			t.Errorf("tenant %s observed %d waits for %d admissions", st.Name, st.QueueWait.Count, st.Admitted)
		}
		if minAdm == 0 || st.Admitted < minAdm {
			minAdm = st.Admitted
		}
		if st.Admitted > maxAdm {
			maxAdm = st.Admitted
		}
	}
	// The startup burst (16 clients per tenant vs cap 2 + depth 2) must
	// overflow the queues.
	if shed == 0 {
		t.Error("overload run shed nothing; admission limits not biting")
	}
	// Every client completes the same request count, so per-tenant
	// admissions must balance within the 10% acceptance bound.
	if minAdm <= 0 || float64(maxAdm) > 1.10*float64(minAdm) {
		t.Errorf("admitted spread %d..%d exceeds 10%%", minAdm, maxAdm)
	}
	if spread := stats.TenantSpread(); spread > 1.10 {
		t.Errorf("completed spread = %.3f, want <= 1.10", spread)
	}

	all := srv.AllStats()
	if all.Admitted != int64(want) || all.Shed != shed {
		t.Errorf("aggregate = %+v, want admitted %d, shed %d", all, want, shed)
	}
	if srv.Collector().Snapshot().PagesRead == 0 {
		t.Error("engine collector saw no reads")
	}
}

// TestServeRequestErrors exercises the permanent-failure answers: malformed
// SQL, unknown tables, joins, and unknown tenants all fail without shedding
// or leaking slots.
func TestServeRequestErrors(t *testing.T) {
	eng := testEngine(t, 32, 500)
	srv := startServer(t, Config{
		Engine:  eng,
		Tenants: []TenantConfig{{Name: "t0", MaxConcurrent: 1}},
	})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	for _, tc := range []struct {
		req     Request
		wantSub string
	}{
		{Request{Tenant: "t0", Query: "SELECT FROM nothing"}, ""},
		{Request{Tenant: "t0", Query: "SELECT count(*) FROM ghosts"}, "ghosts"},
		{Request{Tenant: "nobody", Query: "SELECT count(*) FROM rt"}, "unknown tenant"},
	} {
		if err := WriteFrame(conn, &tc.req); err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := ReadFrame(conn, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Shed || !strings.Contains(resp.Error, tc.wantSub) {
			t.Errorf("%+v -> %+v, want error containing %q", tc.req, resp, tc.wantSub)
		}
	}
	// A good request on the same connection still works.
	if err := WriteFrame(conn, &Request{Tenant: "t0", Query: "SELECT count(*) FROM rt"}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.PagesRead == 0 {
		t.Errorf("good request -> %+v", resp)
	}
	if st := srv.TenantStats()[0]; st.Running != 0 || st.Admitted != 1 || st.Shed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServeLifecycle(t *testing.T) {
	eng := testEngine(t, 32, 500)
	srv, err := New(Config{Engine: eng, Tenants: []TenantConfig{{Name: "t"}}})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Addr() != "" {
		t.Errorf("Addr before Serve = %q", srv.Addr())
	}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve("127.0.0.1:0"); err == nil {
		t.Error("double Serve accepted")
	}
	addr := srv.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		t.Error("listener still accepting after Shutdown")
	}
	if err := srv.Serve("127.0.0.1:0"); err == nil {
		t.Error("Serve after Shutdown accepted")
	}
}

func TestDriverConfigErrors(t *testing.T) {
	for _, cfg := range []DriverConfig{
		{},
		{Clients: 1, RequestsPerClient: 1},
		{Clients: 1, RequestsPerClient: 1, Tenants: []string{"t"}},
	} {
		if _, err := RunDriver(context.Background(), cfg); err == nil {
			t.Errorf("RunDriver(%+v) accepted", cfg)
		}
	}
	// Unreachable address: the connection error must surface, tagged with
	// the client index.
	_, err := RunDriver(context.Background(), DriverConfig{
		Addr: "127.0.0.1:1", Clients: 1, RequestsPerClient: 1,
		Tenants: []string{"t"}, Queries: []string{"SELECT count(*) FROM rt"},
	})
	if err == nil || !strings.Contains(err.Error(), "client 0") {
		t.Errorf("unreachable driver error = %v", err)
	}
}
