// Package server is the multi-tenant scan front end: a long-lived TCP
// service that accepts SQL requests over a length-prefixed JSON protocol,
// admits them through per-tenant bounded queues with concurrency caps, and
// executes admitted scans through the engine's realtime path so concurrent
// clients share buffer pool contents and scan groups exactly as the paper's
// grouping/throttling machinery intends.
package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds one wire frame's JSON payload. Requests are a tenant name
// plus a SQL string and responses a handful of counters, so a megabyte is
// generous; anything larger is a corrupt or hostile length prefix and kills
// the connection before it allocates.
const MaxFrame = 1 << 20

// Request is one client→server message: run query on behalf of tenant.
type Request struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
}

// Response is the server's answer to one Request. Exactly one of three
// shapes comes back: success (OK true, counters filled), shed (Shed true,
// RetryAfterMs set — the request never ran and retrying after the hint is
// expected), or failure (Error set, Shed false — compile or execution error;
// retrying the same statement will fail again).
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Shed reports an admission rejection: the tenant's queue was full.
	Shed bool `json:"shed,omitempty"`
	// RetryAfterMs is the server's backoff hint for shed requests, from
	// the tenant's recent service times and backlog.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`

	// PagesRead and WallMicros describe the executed scan.
	PagesRead  int   `json:"pages_read,omitempty"`
	WallMicros int64 `json:"wall_us,omitempty"`
	// QueueWaitMicros is how long the request sat in its tenant's
	// admission FIFO before running (0 when a slot was free).
	QueueWaitMicros int64 `json:"queue_wait_us,omitempty"`

	// TraceID names the request's span tree in the server's trace journal;
	// 0 when the server runs without a tracer.
	TraceID int64 `json:"trace_id,omitempty"`
	// Latency attribution of the request, from the always-on inline wait
	// counters (present on OK responses whether or not tracing is on):
	// compile time, then the scan's throttle sleeps, buffer-pool
	// contention, physical reads, and push-delivery waits.
	CompileMicros      int64 `json:"compile_us,omitempty"`
	ThrottleWaitMicros int64 `json:"throttle_wait_us,omitempty"`
	PoolWaitMicros     int64 `json:"pool_wait_us,omitempty"`
	ReadWaitMicros     int64 `json:"read_wait_us,omitempty"`
	DeliveryWaitMicros int64 `json:"delivery_wait_us,omitempty"`
}

// WriteFrame marshals v and writes it as one frame: a 4-byte big-endian
// payload length followed by the JSON payload, in a single Write so a frame
// is never interleaved with another writer's bytes.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame payload %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r into v. A clean connection close before
// the first header byte surfaces as io.EOF; a close mid-frame as
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return fmt.Errorf("server: frame length %d out of range (0,%d]", n, MaxFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	return json.Unmarshal(buf, v)
}
