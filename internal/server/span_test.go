package server

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"scanshare/internal/trace"
)

// spanServerTracer builds a tracer draining into an unbounded recorder on a
// ring big enough that these tests drop nothing.
func spanServerTracer(t *testing.T) (*trace.Tracer, *trace.Recorder) {
	t.Helper()
	tr := trace.NewTracerSize(nil, 1<<14)
	rec := &trace.Recorder{}
	tr.Attach(rec)
	tr.Start(2 * time.Millisecond)
	return tr, rec
}

// childKinds returns the set of span kinds directly under a tree's root.
func childKinds(tree *trace.SpanTree) map[trace.SpanKind]int {
	kinds := make(map[trace.SpanKind]int)
	for _, c := range tree.Root.Children {
		kinds[c.Kind]++
	}
	return kinds
}

// TestSpanShedRequestTrees pins span behavior on the admission failure
// paths: a burst against a one-slot tenant sheds most of the load, and both
// shed and compile-error requests must still produce complete request trees
// — request root plus compile child, closed, no scan subtree — while the
// admitted requests carry the full compile/queue/scan shape.
func TestSpanShedRequestTrees(t *testing.T) {
	eng := testEngine(t, 32, 4000)
	tr, rec := spanServerTracer(t)
	srv := startServer(t, Config{
		Engine:    eng,
		Tenants:   []TenantConfig{{Name: "t0", MaxConcurrent: 1, MaxQueueDepth: 1}},
		PageDelay: 500 * time.Microsecond,
		Tracer:    tr,
	})

	const clients = 6
	const perClient = 3
	type outcome struct {
		traceID int64
		shed    bool
		ok      bool
	}
	var mu sync.Mutex
	var outcomes []outcome

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for r := 0; r < perClient; r++ {
				req := Request{Tenant: "t0", Query: "SELECT count(*) FROM rt"}
				if err := WriteFrame(conn, &req); err != nil {
					t.Error(err)
					return
				}
				var resp Response
				if err := ReadFrame(conn, &resp); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				outcomes = append(outcomes, outcome{resp.TraceID, resp.Shed, resp.OK})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// One malformed statement: fails in compile, before admission.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, &Request{Tenant: "t0", Query: "SELECT FROM"}); err != nil {
		t.Fatal(err)
	}
	var badResp Response
	if err := ReadFrame(conn, &badResp); err != nil {
		t.Fatal(err)
	}
	if badResp.OK || badResp.Shed || badResp.TraceID == 0 {
		t.Fatalf("malformed query response = %+v", badResp)
	}
	outcomes = append(outcomes, outcome{badResp.TraceID, false, false})

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events", d)
	}
	asm := trace.Assemble(rec.Events())
	if asm.Unclosed != 0 || asm.Orphans != 0 || asm.ExtraRoots != 0 {
		t.Fatalf("assembly not clean: %d unclosed, %d orphans, %d extra roots",
			asm.Unclosed, asm.Orphans, asm.ExtraRoots)
	}
	if len(asm.Trees) != len(outcomes) {
		t.Fatalf("%d trees for %d responses", len(asm.Trees), len(outcomes))
	}
	trees := make(map[int64]*trace.SpanTree, len(asm.Trees))
	for _, tree := range asm.Trees {
		trees[tree.Trace] = tree
	}

	var shed, admitted int
	for _, o := range outcomes {
		tree := trees[o.traceID]
		if tree == nil {
			t.Errorf("response trace %d has no tree", o.traceID)
			continue
		}
		if tree.Root.Kind != trace.SpanRequest {
			t.Errorf("trace %d root is %v, want request", o.traceID, tree.Root.Kind)
		}
		kinds := childKinds(tree)
		if kinds[trace.SpanCompile] != 1 {
			t.Errorf("trace %d has %d compile spans", o.traceID, kinds[trace.SpanCompile])
		}
		switch {
		case o.ok:
			admitted++
			if kinds[trace.SpanQueue] != 1 || kinds[trace.SpanScan] != 1 {
				t.Errorf("admitted trace %d children = %v, want queue and scan", o.traceID, kinds)
			}
		default:
			if o.shed {
				shed++
			}
			// Shed and compile-error requests never reached execution:
			// compile is the only child.
			if kinds[trace.SpanQueue] != 0 || kinds[trace.SpanScan] != 0 {
				t.Errorf("unadmitted trace %d children = %v, want compile only", o.traceID, kinds)
			}
		}
	}
	if shed == 0 {
		t.Error("burst shed nothing; admission limits not biting, shed-path spans unexercised")
	}
	if admitted == 0 {
		t.Error("no admitted requests")
	}
}

// TestSpanAcceptanceLatencyAttribution is the ISSUE's acceptance run: a
// seeded 16-request serve workload with tracing on, where for every
// completed query the assembled span tree must reproduce the driver-measured
// end-to-end latency within 1%, the per-component breakdown must sum to the
// tree total exactly, and the unattributed gap must stay under 2%.
func TestSpanAcceptanceLatencyAttribution(t *testing.T) {
	// ~50 pages at 20ms per page makes every query ~1s, so loopback framing
	// and client scheduling (the slack between driver-measured RTT and the
	// server-side request span, a fixed ~1-4ms under the race detector)
	// stay far inside the 1% budget.
	eng := testEngine(t, 64, 22000)
	tr, rec := spanServerTracer(t)
	srv := startServer(t, Config{
		Engine: eng,
		Tenants: []TenantConfig{
			{Name: "t0", MaxConcurrent: 2, MaxQueueDepth: 8},
			{Name: "t1", MaxConcurrent: 2, MaxQueueDepth: 8},
		},
		PageDelay: 20 * time.Millisecond,
		Tracer:    tr,
	})

	var mu sync.Mutex
	rtts := make(map[int64]time.Duration)
	skip := make(map[int64]bool) // shed or failed attempts: no scan subtree
	stats, err := RunDriver(context.Background(), DriverConfig{
		Addr:    srv.Addr(),
		Clients: 16,
		Tenants: []string{"t0", "t1"},
		Queries: []string{
			"SELECT count(*) FROM rt",
			"SELECT count(*) FROM rt WHERE v > 100",
		},
		RequestsPerClient: 1,
		Seed:              7,
		RetryOnShed:       true,
		OnResponse: func(tenant string, resp Response, rtt time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			if resp.TraceID == 0 {
				t.Errorf("response without trace ID: %+v", resp)
				return
			}
			if !resp.OK {
				skip[resp.TraceID] = true
				return
			}
			rtts[resp.TraceID] = rtt
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 16 {
		t.Fatalf("driver completed %d, want 16: %s", stats.Completed, stats)
	}

	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events", d)
	}
	asm := trace.Assemble(rec.Events())
	if asm.Unclosed != 0 || asm.Orphans != 0 || asm.ExtraRoots != 0 {
		t.Fatalf("assembly not clean: %d unclosed, %d orphans, %d extra roots",
			asm.Unclosed, asm.Orphans, asm.ExtraRoots)
	}

	matched := 0
	for _, tree := range asm.Trees {
		if skip[tree.Trace] {
			continue
		}
		rtt, ok := rtts[tree.Trace]
		if !ok {
			t.Errorf("tree %d matches no completed response", tree.Trace)
			continue
		}
		matched++
		total := tree.Root.Dur()

		// Acceptance bound 1: the tree's end-to-end latency reproduces the
		// driver's wall-clock measurement within 1%. The request span nests
		// strictly inside the RTT, so the slack is one-sided.
		if total > rtt {
			t.Errorf("trace %d: span total %v exceeds driver RTT %v", tree.Trace, total, rtt)
		}
		if slack := rtt - total; slack > rtt/100 {
			t.Errorf("trace %d: span total %v vs RTT %v — slack %v exceeds 1%%",
				tree.Trace, total, rtt, slack)
		}

		// Acceptance bound 2: the component breakdown tiles the total with
		// no unattributed gap beyond 2%.
		b := tree.Breakdown()
		var sum time.Duration
		for _, c := range b.Components() {
			sum += c.Dur
		}
		if sum != total {
			t.Errorf("trace %d: components sum %v != total %v", tree.Trace, sum, total)
		}
		if b.Gap > total/50 {
			t.Errorf("trace %d: unattributed gap %v exceeds 2%% of %v", tree.Trace, b.Gap, total)
		}
		if b.Scan == 0 || b.Process == 0 {
			t.Errorf("trace %d: breakdown missing scan/process time: %+v", tree.Trace, b)
		}
	}
	if matched != 16 {
		t.Errorf("matched %d trees to completed responses, want 16", matched)
	}
}
