package server

import (
	"context"
	"testing"
	"time"

	"scanshare"
)

// TestServePushDelivery proves the Realtime options template carries
// PushDelivery through to compiled requests: the same workload the pull-mode
// acceptance test runs completes over the push hubs, and the server's
// collector records pushed batches.
func TestServePushDelivery(t *testing.T) {
	eng := testEngine(t, 256, 4000)
	srv := startServer(t, Config{
		Engine: eng,
		Tenants: []TenantConfig{
			{Name: "t0", MaxConcurrent: 4, MaxQueueDepth: 4},
			{Name: "t1", MaxConcurrent: 4, MaxQueueDepth: 4},
		},
		Realtime: scanshare.RealtimeOptions{PushDelivery: true},
	})

	stats, err := RunDriver(context.Background(), DriverConfig{
		Addr:    srv.Addr(),
		Clients: 16,
		Tenants: []string{"t0", "t1"},
		Queries: []string{
			"SELECT count(*) FROM rt",
			"SELECT count(*) FROM rt WHERE v > 100",
		},
		RequestsPerClient: 2,
		Seed:              7,
		RetryOnShed:       true,
		MaxRetryPause:     20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const want = 16 * 2
	if stats.Completed != want || stats.Errors != 0 {
		t.Fatalf("completed %d (want %d), errors %d: %s", stats.Completed, want, stats.Errors, stats)
	}
	if stats.PagesRead == 0 {
		t.Error("no pages read")
	}

	snap := srv.Collector().Snapshot()
	if snap.BatchesPushed == 0 {
		t.Error("push-mode server recorded no pushed batches")
	}
	if snap.PagesRead == 0 {
		t.Error("engine collector saw no reads")
	}
}
