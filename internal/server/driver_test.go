package server

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// shedOnlyServer answers every request with a shed response carrying the
// given retry-after hint, counting the requests it sees.
func shedOnlyServer(t *testing.T, retryAfterMs int64) (addr string, requests *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	requests = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					var req Request
					if err := ReadFrame(conn, &req); err != nil {
						return
					}
					requests.Add(1)
					resp := Response{Shed: true, RetryAfterMs: retryAfterMs}
					if err := WriteFrame(conn, &resp); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), requests
}

// TestDriverShedRetryHonorsCancel is the regression test for the shed-retry
// pause: even with a huge server retry-after hint and a huge MaxRetryPause,
// cancelling the run context must end the driver promptly — the pause
// selects on the context rather than sleeping out the hint.
func TestDriverShedRetryHonorsCancel(t *testing.T) {
	addr, _ := shedOnlyServer(t, time.Hour.Milliseconds())

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	stats, err := RunDriver(ctx, DriverConfig{
		Addr:              addr,
		Clients:           4,
		Tenants:           []string{"t0"},
		Queries:           []string{"select count(*) from t"},
		RequestsPerClient: 1,
		RetryOnShed:       true,
		MaxRetryPause:     time.Hour,
	})
	wall := time.Since(start)
	if err != nil {
		t.Fatalf("cancelled driver run errored: %v", err)
	}
	if wall > 5*time.Second {
		t.Fatalf("driver took %v to notice cancellation; the retry pause is not context-aware", wall)
	}
	if stats.ShedResponses == 0 {
		t.Error("no shed responses observed; the retry path went unexercised")
	}
	if stats.Completed != 0 {
		t.Errorf("%d requests completed against a shed-only server", stats.Completed)
	}
}

// TestDriverShedRetryPauseCap: with no explicit MaxRetryPause the hint is
// clipped to the 50ms default, so a pessimistic hint cannot slow the retry
// loop to its face value.
func TestDriverShedRetryPauseCap(t *testing.T) {
	addr, requests := shedOnlyServer(t, time.Hour.Milliseconds())

	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	_, err := RunDriver(ctx, DriverConfig{
		Addr:              addr,
		Clients:           1,
		Tenants:           []string{"t0"},
		Queries:           []string{"q"},
		RequestsPerClient: 1,
		RetryOnShed:       true,
	})
	if err != nil {
		t.Fatalf("driver run errored: %v", err)
	}
	// At a 50ms cap the single client retries ~8 times in 400ms; at the
	// hinted pause (an hour) it would have sent exactly one request.
	if n := requests.Load(); n < 3 {
		t.Errorf("server saw %d requests in 400ms; hint cap is not applied (want >= 3)", n)
	}
}
