package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"scanshare/internal/vclock"
)

// DefaultRingSize is the journal capacity used by NewTracer. At 96 bytes per
// event that is ~400 KiB — deep enough that a drain every few milliseconds
// keeps up with full-tilt scanning.
const DefaultRingSize = 4096

// Tracer is the emission front end shared by every instrumented component.
// One Tracer is threaded through the manager, the buffer pool, and the
// realtime runner so that a whole run lands in a single ordered-enough
// journal.
//
// A Tracer starts disabled: Emit is a nil check, an atomic load, and a
// return. Attaching a sink enables it. All methods are safe for concurrent
// use, and all methods are safe on a nil Tracer, so components hold a
// *Tracer field without guarding call sites.
type Tracer struct {
	enabled atomic.Bool
	ring    *ring
	clock   vclock.Clock

	mu    sync.Mutex // guards sinks and serializes the single consumer
	sinks []Sink

	stop chan struct{}
	done chan struct{}
}

// NewTracer returns a disabled Tracer journaling into a ring of
// DefaultRingSize slots, timestamping with clk (vclock.Wall when nil).
func NewTracer(clk vclock.Clock) *Tracer {
	return NewTracerSize(clk, DefaultRingSize)
}

// NewTracerSize is NewTracer with an explicit ring capacity (rounded up to a
// power of two).
func NewTracerSize(clk vclock.Clock, ringSize int) *Tracer {
	if clk == nil {
		clk = new(vclock.Wall)
	}
	return &Tracer{ring: newRing(ringSize), clock: clk}
}

// Enabled reports whether at least one sink is attached. Components emitting
// events that are expensive to *construct* (not just to push) may check it
// first; Emit itself already returns immediately when disabled.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Emit journals ev, stamping ev.Time from the tracer's clock. It never
// blocks: with no sink attached it is a no-op, and with the ring full the
// event is dropped and counted.
func (t *Tracer) Emit(ev Event) {
	if t == nil || !t.enabled.Load() {
		return
	}
	ev.Time = t.clock.Now()
	t.ring.push(ev)
}

// EmitAt journals ev keeping its caller-supplied timestamp. Used by
// components that already stamp events on their own clock (the manager's
// decision events).
func (t *Tracer) EmitAt(ev Event) {
	if t == nil || !t.enabled.Load() {
		return
	}
	t.ring.push(ev)
}

// Attach adds a sink and enables the tracer. Events already in the ring are
// delivered on the next Flush.
func (t *Tracer) Attach(s Sink) {
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Flush drains every journaled event to the attached sinks and returns how
// many were delivered. Concurrent Flush calls serialize; emitters are never
// blocked by a flush.
func (t *Tracer) Flush() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() int {
	var batch []Event
	for {
		ev, ok := t.ring.pop()
		if !ok {
			break
		}
		batch = append(batch, ev)
	}
	if len(batch) == 0 {
		return 0
	}
	for _, s := range t.sinks {
		s.Consume(batch)
	}
	return len(batch)
}

// Dropped returns the number of events discarded because the ring was full
// (the consumer lagged a full ring behind the emitters).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.dropped()
}

// Start launches a background goroutine draining the ring every interval.
// Stop it with Close. Start panics if called twice without a Close.
func (t *Tracer) Start(interval time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stop != nil {
		panic("trace: Tracer.Start called twice")
	}
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	go t.drainLoop(interval, t.stop, t.done)
}

func (t *Tracer) drainLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Flush()
		case <-stop:
			return
		}
	}
}

// Close stops the background drainer (if any), performs a final Flush, and
// closes every sink. The tracer is disabled afterwards; further Emits are
// no-ops.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	t.enabled.Store(false)
	var first error
	for _, s := range t.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.sinks = nil
	return first
}
