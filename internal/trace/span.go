package trace

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Causal spans: query-scoped latency attribution on top of the event ring.
//
// A span is a (start, end, kind) interval tied into a tree by a propagated
// SpanContext: every request admitted by the server — and every bench or
// realtime scan — carries a trace ID and parent span ID through compile, the
// admission queue, the runner's page loop, buffer waits, push delivery, and
// shared-aggregation folds. Spans reuse the existing lock-free ring as their
// transport: opening emits one KindSpanOpen event, closing one KindSpanClose
// event, and the close event is self-sufficient (it carries the span's full
// duration in Wait), so the assembler reconstructs complete trees even when
// open events were dropped by a full ring.
//
// Emission cost follows the ring's contract: with no sink attached every
// span call is a nil-or-atomic check and returns a zero value, so the
// instrumentation stays compiled into the hot paths. With a sink attached, a
// span is two ring pushes; the runner only opens spans on slow paths (a
// throttle, a pool wait, a physical read), never on the pool-hit fast path.

// SpanKind classifies what a span measures — one kind per component of the
// critical-path breakdown.
type SpanKind uint8

const (
	// SpanNone marks a non-span event.
	SpanNone SpanKind = iota
	// SpanRequest covers one server request from decode to response write.
	SpanRequest
	// SpanCompile covers SQL parse and plan compilation.
	SpanCompile
	// SpanQueue covers the admission-queue wait.
	SpanQueue
	// SpanScan covers one runner scan from StartScan to EndScan.
	SpanScan
	// SpanThrottle covers one inserted group-throttle sleep.
	SpanThrottle
	// SpanPoolWait covers buffer-pool contention waits: busy retries,
	// all-pinned backoff, and coalesced-flight waits.
	SpanPoolWait
	// SpanRead covers one physical page read, including retries.
	SpanRead
	// SpanDelivery covers a push subscriber blocking on its batch channel.
	SpanDelivery
	// SpanFold covers shared-aggregation fold work inside OnPage callbacks.
	SpanFold

	numSpanKinds
)

// String returns the span kind's short name, used in trees and JSONL output.
func (k SpanKind) String() string {
	switch k {
	case SpanNone:
		return "none"
	case SpanRequest:
		return "request"
	case SpanCompile:
		return "compile"
	case SpanQueue:
		return "queue"
	case SpanScan:
		return "scan"
	case SpanThrottle:
		return "throttle"
	case SpanPoolWait:
		return "pool-wait"
	case SpanRead:
		return "read"
	case SpanDelivery:
		return "delivery"
	case SpanFold:
		return "fold"
	default:
		return fmt.Sprintf("SpanKind(%d)", int(k))
	}
}

// SpanContext is the propagated causal identity of one span: which trace it
// belongs to, its own span ID, and its parent's span ID (zero for a root).
// The zero SpanContext is "no span"; IDs are process-wide and start at 1.
type SpanContext struct {
	Trace  int64
	Span   int64
	Parent int64
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// spanIDs allocates trace and span IDs. One process-wide counter keeps every
// ID unique within a journal regardless of which tracer allocated it.
var spanIDs atomic.Int64

// Root allocates a new root span context (a fresh trace). On a nil or
// disabled tracer it returns the zero context, so every downstream span call
// short-circuits too.
func (t *Tracer) Root() SpanContext {
	if !t.Enabled() {
		return SpanContext{}
	}
	id := spanIDs.Add(1)
	return SpanContext{Trace: id, Span: id}
}

// Child allocates a span context under parent. Invalid parent (or a nil or
// disabled tracer) propagates the zero context.
func (t *Tracer) Child(parent SpanContext) SpanContext {
	if !t.Enabled() || !parent.Valid() {
		return SpanContext{}
	}
	return SpanContext{Trace: parent.Trace, Span: spanIDs.Add(1), Parent: parent.Span}
}

// Span is an open span handle. The zero Span is inert: Close on it is a
// no-op, so callers never guard span sites.
type Span struct {
	t     *Tracer
	ctx   SpanContext
	kind  SpanKind
	scan  int64
	table int64
	start time.Duration
}

// spanEvent builds the flat event shared by open and close emission.
func spanEvent(kind Kind, sc SpanContext, sk SpanKind, scan, table int64, at, dur time.Duration) Event {
	return Event{
		Time: at, Kind: kind, SpanKind: sk,
		Trace: sc.Trace, Span: sc.Span, Parent: sc.Parent,
		Scan: scan, Peer: NoID, Table: table, Page: NoID, Prio: -1,
		Wait: dur,
	}
}

// OpenSpan opens a span with the pre-allocated identity sc (from Root or
// Child), stamping its start on the tracer's clock. An invalid sc — the
// normal case when tracing is off — returns the inert zero Span without
// touching the clock or the ring.
func (t *Tracer) OpenSpan(sc SpanContext, kind SpanKind, scan, table int64) Span {
	if !t.Enabled() || !sc.Valid() {
		return Span{}
	}
	now := t.clock.Now()
	t.EmitAt(spanEvent(KindSpanOpen, sc, kind, scan, table, now, 0))
	return Span{t: t, ctx: sc, kind: kind, scan: scan, table: table, start: now}
}

// Context returns the span's identity, for parenting children under it.
func (s Span) Context() SpanContext { return s.ctx }

// Active reports whether the span will emit a close event.
func (s Span) Active() bool { return s.t != nil }

// Close ends the span, emitting the close event with the span's duration,
// and returns that duration. Safe (and free) on the zero Span.
func (s Span) Close() time.Duration {
	if s.t == nil {
		return 0
	}
	now := s.t.clock.Now()
	dur := now - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.EmitAt(spanEvent(KindSpanClose, s.ctx, s.kind, s.scan, s.table, now, dur))
	return dur
}

// EmitSpan records an already-measured span in one shot: a child of parent
// whose close lands now and whose open is back-dated by dur. The slow-path
// instrumentation (throttle sleeps, pool waits, physical reads, delivery
// stalls, fold totals) measures with its own monotonic deltas and reports
// here, keeping one clock-read out of the measured section.
func (t *Tracer) EmitSpan(parent SpanContext, kind SpanKind, scan, table int64, dur time.Duration) {
	if !t.Enabled() || !parent.Valid() {
		return
	}
	sc := SpanContext{Trace: parent.Trace, Span: spanIDs.Add(1), Parent: parent.Span}
	if dur < 0 {
		dur = 0
	}
	end := t.clock.Now()
	t.EmitAt(spanEvent(KindSpanOpen, sc, kind, scan, table, end-dur, 0))
	t.EmitAt(spanEvent(KindSpanClose, sc, kind, scan, table, end, dur))
}
