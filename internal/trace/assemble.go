package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Span assembly: reconstruct per-query span trees from a journal and compute
// the critical-path latency breakdown the ISSUE's "why was this request
// slow?" question needs.
//
// Assembly is driven by close events, which are self-sufficient (kind,
// identity, end time, and duration), so a tree is complete as long as every
// close survived the ring; a dropped open event costs nothing. An open event
// with no matching close marks a span that never finished (a crashed or
// still-running query) and is surfaced through Assembly.Unclosed rather than
// silently dropped.

// SpanNode is one reconstructed span.
type SpanNode struct {
	Trace  int64
	ID     int64
	Parent int64 // parent span ID, zero for a root
	Kind   SpanKind
	Scan   int64
	Table  int64
	Start  time.Duration
	End    time.Duration
	// Closed is false when only the open event was seen; End then equals
	// Start and the node contributes nothing to breakdowns.
	Closed bool
	// Adopted is true when the parent span never appeared in the journal
	// and the node was re-attached under the trace's root.
	Adopted  bool
	Children []*SpanNode
}

// Dur returns the span's duration (zero while unclosed).
func (n *SpanNode) Dur() time.Duration { return n.End - n.Start }

// SpanTree is the reconstructed span tree of one trace (one query).
type SpanTree struct {
	Trace int64
	Root  *SpanNode
	Nodes int
}

// Assembly is the result of reconstructing a journal's span trees.
type Assembly struct {
	// Trees holds one tree per trace ID, sorted by root start time (trace
	// ID breaking ties).
	Trees []*SpanTree
	// Unclosed counts spans whose close event never appeared.
	Unclosed int
	// Orphans counts spans whose parent never appeared; they were adopted
	// under their trace's root (or promoted to roots when none existed).
	Orphans int
	// ExtraRoots counts traces that reconstructed more than one root span;
	// the extras are adopted under the earliest root.
	ExtraRoots int
}

// Assemble reconstructs span trees from a journal. Non-span events are
// ignored, so the full mixed journal (scan lifecycle, evictions, spans) can
// be passed as-is.
func Assemble(evs []Event) *Assembly {
	nodes := make(map[int64]*SpanNode)
	var order []int64 // first-seen order for deterministic iteration
	node := func(ev Event) *SpanNode {
		n, ok := nodes[ev.Span]
		if !ok {
			n = &SpanNode{Trace: ev.Trace, ID: ev.Span, Parent: ev.Parent,
				Kind: ev.SpanKind, Scan: ev.Scan, Table: ev.Table}
			nodes[ev.Span] = n
			order = append(order, ev.Span)
		}
		return n
	}
	for _, ev := range evs {
		switch ev.Kind {
		case KindSpanOpen:
			n := node(ev)
			if !n.Closed {
				n.Start, n.End = ev.Time, ev.Time
			}
		case KindSpanClose:
			n := node(ev)
			n.Start, n.End = ev.Time-ev.Wait, ev.Time
			n.Closed = true
		}
	}

	a := &Assembly{}
	byTrace := make(map[int64][]*SpanNode)
	var traceOrder []int64
	for _, id := range order {
		n := nodes[id]
		if !n.Closed {
			a.Unclosed++
		}
		if _, ok := byTrace[n.Trace]; !ok {
			traceOrder = append(traceOrder, n.Trace)
		}
		byTrace[n.Trace] = append(byTrace[n.Trace], n)
	}

	for _, tid := range traceOrder {
		ns := byTrace[tid]
		var roots, orphans []*SpanNode
		for _, n := range ns {
			switch {
			case n.Parent == 0:
				roots = append(roots, n)
			default:
				p, ok := nodes[n.Parent]
				if !ok || p.Trace != n.Trace {
					orphans = append(orphans, n)
					continue
				}
				p.Children = append(p.Children, n)
			}
		}
		sort.SliceStable(roots, func(i, j int) bool { return roots[i].Start < roots[j].Start })
		if len(roots) == 0 {
			// No root survived at all; promote the orphans so the trace
			// still renders.
			if len(orphans) == 0 {
				continue
			}
			roots, orphans = orphans[:1], orphans[1:]
			roots[0].Adopted = true
			a.Orphans++
		}
		root := roots[0]
		for _, extra := range roots[1:] {
			extra.Adopted = true
			root.Children = append(root.Children, extra)
			a.ExtraRoots++
		}
		for _, o := range orphans {
			o.Adopted = true
			root.Children = append(root.Children, o)
			a.Orphans++
		}
		for _, n := range ns {
			sort.SliceStable(n.Children, func(i, j int) bool {
				return n.Children[i].Start < n.Children[j].Start
			})
		}
		a.Trees = append(a.Trees, &SpanTree{Trace: tid, Root: root, Nodes: len(ns)})
	}
	sort.SliceStable(a.Trees, func(i, j int) bool {
		ri, rj := a.Trees[i].Root, a.Trees[j].Root
		if ri.Start != rj.Start {
			return ri.Start < rj.Start
		}
		return a.Trees[i].Trace < a.Trees[j].Trace
	})
	return a
}

// Breakdown is the critical-path attribution of one query (or an aggregate
// over many): where its wall-clock time went, by component. Process is scan
// time not attributed to any wait (page decode, OnPage work, configured page
// delays); Gap is root time not attributed at all (wire framing, goroutine
// startup). Queue + Compile + Scan + Gap = Total, and Throttle + PoolWait +
// Read + Delivery + Fold + Process = Scan, up to the clamps documented on
// each field's computation.
type Breakdown struct {
	Total    time.Duration
	Queue    time.Duration
	Compile  time.Duration
	Scan     time.Duration
	Throttle time.Duration
	PoolWait time.Duration
	Read     time.Duration
	Delivery time.Duration
	Fold     time.Duration
	Process  time.Duration
	Gap      time.Duration
}

// Breakdown computes the tree's critical-path attribution. The pull-mode
// runner executes one scan's spans sequentially on the scan goroutine, so
// child durations do not overlap and subtraction is exact; in push mode a
// promoted owner's read spans cover pages delivered to its peers, so Process
// and Gap clamp at zero instead of going negative.
func (t *SpanTree) Breakdown() Breakdown {
	var b Breakdown
	if t == nil || t.Root == nil {
		return b
	}
	b.Total = t.Root.Dur()
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		if n != t.Root && n.Closed {
			switch n.Kind {
			case SpanQueue:
				b.Queue += n.Dur()
			case SpanCompile:
				b.Compile += n.Dur()
			case SpanScan:
				b.Scan += n.Dur()
			case SpanThrottle:
				b.Throttle += n.Dur()
			case SpanPoolWait:
				b.PoolWait += n.Dur()
			case SpanRead:
				b.Read += n.Dur()
			case SpanDelivery:
				b.Delivery += n.Dur()
			case SpanFold:
				b.Fold += n.Dur()
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	if t.Root.Kind == SpanScan {
		// A bench/realtime scan is its own root: everything ran inside it.
		b.Scan = b.Total
	}
	waits := b.Throttle + b.PoolWait + b.Read + b.Delivery + b.Fold
	if b.Process = b.Scan - waits; b.Process < 0 {
		b.Process = 0
	}
	if b.Gap = b.Total - b.Queue - b.Compile - b.Scan; b.Gap < 0 {
		b.Gap = 0
	}
	if t.Root.Kind == SpanScan {
		b.Gap = 0
	}
	return b
}

// Add accumulates o into b, for aggregating across trees.
func (b *Breakdown) Add(o Breakdown) {
	b.Total += o.Total
	b.Queue += o.Queue
	b.Compile += o.Compile
	b.Scan += o.Scan
	b.Throttle += o.Throttle
	b.PoolWait += o.PoolWait
	b.Read += o.Read
	b.Delivery += o.Delivery
	b.Fold += o.Fold
	b.Process += o.Process
	b.Gap += o.Gap
}

// Components returns the breakdown's leaf components — the parts that tile
// Total — in presentation order. Scan is excluded (it is the sum of the wait
// components plus Process).
func (b Breakdown) Components() []BreakdownComponent {
	return []BreakdownComponent{
		{"queue", b.Queue},
		{"compile", b.Compile},
		{"throttle", b.Throttle},
		{"pool-wait", b.PoolWait},
		{"read", b.Read},
		{"delivery", b.Delivery},
		{"fold", b.Fold},
		{"process", b.Process},
		{"gap", b.Gap},
	}
}

// BreakdownComponent is one named slice of a breakdown.
type BreakdownComponent struct {
	Name string
	Dur  time.Duration
}

// Aggregate sums the breakdown of every tree in the assembly.
func (a *Assembly) Aggregate() Breakdown {
	var agg Breakdown
	for _, t := range a.Trees {
		agg.Add(t.Breakdown())
	}
	return agg
}

// RenderTree renders one span tree as indented text, collapsing runs of
// closed same-kind siblings (a scan's dozens of read spans) into one line
// with a count. Unclosed spans render with "(unclosed)" and adopted orphans
// with "(adopted)".
func RenderTree(t *SpanTree) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %d: total %v (%d spans)\n", t.Trace, round(t.Root.Dur()), t.Nodes)
	var render func(n *SpanNode, depth int)
	render = func(n *SpanNode, depth int) {
		indent := strings.Repeat("  ", depth+1)
		label := n.Kind.String()
		fmt.Fprintf(&sb, "%s%s %v", indent, label, round(n.Dur()))
		if n.Kind == SpanScan || n.Kind == SpanRequest {
			if n.Scan != NoID {
				fmt.Fprintf(&sb, " [scan %d", n.Scan)
				if n.Table != NoID {
					fmt.Fprintf(&sb, " table %d", n.Table)
				}
				sb.WriteString("]")
			}
		}
		if !n.Closed {
			sb.WriteString(" (unclosed)")
		}
		if n.Adopted {
			sb.WriteString(" (adopted)")
		}
		sb.WriteString("\n")
		i := 0
		for i < len(n.Children) {
			c := n.Children[i]
			// Collapse a maximal run of closed, childless, same-kind
			// siblings into one aggregated line.
			j := i
			var sum time.Duration
			for j < len(n.Children) {
				s := n.Children[j]
				if s.Kind != c.Kind || !s.Closed || len(s.Children) > 0 || s.Adopted {
					break
				}
				sum += s.Dur()
				j++
			}
			if j-i > 1 {
				fmt.Fprintf(&sb, "%s  %s x%d total %v\n", indent, c.Kind, j-i, round(sum))
				i = j
				continue
			}
			render(c, depth+1)
			i++
		}
	}
	render(t.Root, 0)
	return sb.String()
}

// RenderBreakdown renders an aggregate breakdown as a fixed-width table of
// component totals and shares of Total.
func RenderBreakdown(b Breakdown, queries int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "breakdown over %d quer%s, total %v:\n",
		queries, plural(queries, "y", "ies"), round(b.Total))
	for _, c := range b.Components() {
		pct := 0.0
		if b.Total > 0 {
			pct = 100 * float64(c.Dur) / float64(b.Total)
		}
		fmt.Fprintf(&sb, "  %-9s %12v  %5.1f%%\n", c.Name, round(c.Dur), pct)
	}
	return sb.String()
}

func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
