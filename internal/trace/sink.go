package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sink receives batches of drained events. Consume is always called from one
// goroutine at a time (the tracer serializes drains), so sinks need no
// internal locking against the tracer — only against their own readers.
type Sink interface {
	// Consume receives a batch in journal order. The slice is reused by the
	// tracer only after Consume returns; a sink that retains events must
	// copy them (they are flat values, so a plain append copies).
	Consume(batch []Event)
	// Close releases any resources. The tracer calls it once from Close.
	Close() error
}

// Recorder is an in-memory sink for tests and for rendering timelines after
// a run. A non-zero Cap bounds memory: when exceeded, the oldest events are
// discarded so the recorder keeps the most recent Cap events.
type Recorder struct {
	// Cap limits retained events; 0 means unlimited. Set before attaching.
	Cap int

	mu  sync.Mutex
	evs []Event
}

// Consume implements Sink.
func (r *Recorder) Consume(batch []Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evs = append(r.evs, batch...)
	if r.Cap > 0 && len(r.evs) > r.Cap {
		keep := r.evs[len(r.evs)-r.Cap:]
		r.evs = append(r.evs[:0], keep...)
	}
}

// Close implements Sink; the recorded events stay readable after Close.
func (r *Recorder) Close() error { return nil }

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.evs))
	copy(out, r.evs)
	return out
}

// Tail returns a copy of the most recent n recorded events (all of them
// when fewer were recorded). The flight recorder uses it to attach the
// journal's tail to a post-mortem dump.
func (r *Recorder) Tail(n int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.evs) {
		n = len(r.evs)
	}
	if n <= 0 {
		return nil
	}
	out := make([]Event, n)
	copy(out, r.evs[len(r.evs)-n:])
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.evs)
}

// CountKind returns how many recorded events have the given kind.
func (r *Recorder) CountKind(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.evs {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// jsonEvent is the JSONL wire shape: the kind as its string name, numeric
// fields only when meaningful, durations in nanoseconds.
type jsonEvent struct {
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Scan  *int64 `json:"scan,omitempty"`
	Peer  *int64 `json:"peer,omitempty"`
	Table *int64 `json:"table,omitempty"`
	Page  *int64 `json:"page,omitempty"`
	Prio  *int8  `json:"prio,omitempty"`
	Count int32  `json:"count,omitempty"`
	Gap   int64  `json:"gap,omitempty"`
	Wait  int64  `json:"wait,omitempty"`
	// Span-layer identity; IDs start at 1, so zero simply omits the field.
	Trace    int64  `json:"trace,omitempty"`
	Span     int64  `json:"span,omitempty"`
	Parent   int64  `json:"parent,omitempty"`
	SpanKind string `json:"sk,omitempty"`
}

// encodeEvent converts one event to its JSONL wire shape.
func encodeEvent(ev Event) jsonEvent {
	je := jsonEvent{
		T:      int64(ev.Time),
		Kind:   ev.Kind.String(),
		Count:  ev.Count,
		Gap:    ev.Gap,
		Wait:   int64(ev.Wait),
		Trace:  ev.Trace,
		Span:   ev.Span,
		Parent: ev.Parent,
	}
	if ev.Scan != NoID {
		je.Scan = &ev.Scan
	}
	if ev.Peer != NoID {
		je.Peer = &ev.Peer
	}
	if ev.Table != NoID {
		je.Table = &ev.Table
	}
	if ev.Page != NoID {
		je.Page = &ev.Page
	}
	if ev.Prio >= 0 {
		je.Prio = &ev.Prio
	}
	if ev.SpanKind != SpanNone {
		je.SpanKind = ev.SpanKind.String()
	}
	return je
}

// kindNames and spanKindNames are the wire-name reverse maps, derived from
// the String methods so encode and decode cannot drift.
var kindNames = func() map[string]Kind {
	m := make(map[string]Kind, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

var spanKindNames = func() map[string]SpanKind {
	m := make(map[string]SpanKind, int(numSpanKinds))
	for k := SpanNone + 1; k < numSpanKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// decodeEvent converts one wire record back to the flat event, restoring the
// NoID/-1 conventions the encoder elided. Unknown kind names report ok=false.
func decodeEvent(je jsonEvent) (Event, bool) {
	kind, ok := kindNames[je.Kind]
	if !ok {
		return Event{}, false
	}
	ev := Event{
		Time:   time.Duration(je.T),
		Kind:   kind,
		Prio:   -1,
		Count:  je.Count,
		Scan:   NoID,
		Peer:   NoID,
		Table:  NoID,
		Page:   NoID,
		Gap:    je.Gap,
		Wait:   time.Duration(je.Wait),
		Trace:  je.Trace,
		Span:   je.Span,
		Parent: je.Parent,
	}
	if je.Scan != nil {
		ev.Scan = *je.Scan
	}
	if je.Peer != nil {
		ev.Peer = *je.Peer
	}
	if je.Table != nil {
		ev.Table = *je.Table
	}
	if je.Page != nil {
		ev.Page = *je.Page
	}
	if je.Prio != nil {
		ev.Prio = *je.Prio
	}
	if je.SpanKind != "" {
		ev.SpanKind = spanKindNames[je.SpanKind] // unknown name -> SpanNone
	}
	return ev, true
}

// DecodeJSONL reads a JSONL journal back into events. Lines that are not
// valid event records — a flight-record header, embedded telemetry samples,
// or records from a newer schema — are skipped and counted, so the same
// decoder reads both plain -rt-trace journals and flight-recorder dumps.
func DecodeJSONL(r io.Reader) (evs []Event, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if jerr := json.Unmarshal(line, &je); jerr != nil || je.Kind == "" {
			skipped++
			continue
		}
		ev, ok := decodeEvent(je)
		if !ok {
			skipped++
			continue
		}
		evs = append(evs, ev)
	}
	return evs, skipped, sc.Err()
}

// EncodeJSONL writes events to w in the journal's JSONL wire format, one
// JSON object per line — the same shape JSONLSink streams, for consumers
// (the flight recorder) that hold events in memory rather than sinking them
// live.
func EncodeJSONL(w io.Writer, evs []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		if err := enc.Encode(encodeEvent(ev)); err != nil {
			return err
		}
	}
	return nil
}

// JSONLSink streams events to w, one JSON object per line, for offline
// analysis. Write errors are sticky: the first one is remembered, later
// batches are discarded, and Close reports it.
type JSONLSink struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller keeps
// ownership of w; Close does not close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

// Consume implements Sink.
func (s *JSONLSink) Consume(batch []Event) {
	if s.err != nil {
		return
	}
	for _, ev := range batch {
		if s.err = s.enc.Encode(encodeEvent(ev)); s.err != nil {
			return
		}
	}
}

// Close implements Sink, reporting the first write error if any.
func (s *JSONLSink) Close() error { return s.err }
