package trace

import (
	"sync/atomic"
)

// ring is a bounded multi-producer single-consumer event queue in the style
// of Vyukov's MPMC array queue. Each cell carries a sequence number that
// encodes whose turn it is:
//
//	cell.seq == pos          the cell is free for the producer claiming pos
//	cell.seq == pos+1        the cell holds the event published at pos
//	cell.seq  < pos          the ring is full (consumer lagging >= size slots)
//
// A producer CAS-claims a position on head, stores the event, then publishes
// by setting seq = pos+1 with a release store; the consumer's acquire load of
// seq is what makes the event's plain stores visible. After consuming, the
// consumer re-arms the cell with seq = pos+size for the producer that will
// come around next lap. Producers never wait: if the claimed cell is still
// occupied the event is dropped and counted, which turns consumer lag into a
// visible Dropped counter instead of a stall on the scan path.
type ring struct {
	mask  uint64
	cells []cell
	head  atomic.Uint64 // next position to claim (producers)
	tail  uint64        // next position to consume (single consumer)
	drops atomic.Uint64
}

type cell struct {
	seq atomic.Uint64
	ev  Event
}

// newRing returns a ring with capacity rounded up to a power of two, at
// least 2.
func newRing(capacity int) *ring {
	size := 2
	for size < capacity {
		size <<= 1
	}
	r := &ring{mask: uint64(size - 1), cells: make([]cell, size)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// push publishes ev; it reports false (and counts a drop) when the ring is
// full. Safe for any number of concurrent callers.
func (r *ring) push(ev Event) bool {
	for {
		pos := r.head.Load()
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if !r.head.CompareAndSwap(pos, pos+1) {
				continue // lost the claim race; retry at the new head
			}
			c.ev = ev
			c.seq.Store(pos + 1)
			return true
		case seq < pos:
			// The cell still holds an event from a full lap ago: the ring
			// is full. Drop rather than block the emitter.
			r.drops.Add(1)
			return false
		default:
			// Another producer claimed pos and is mid-publish, or head
			// moved; reload and retry.
		}
	}
}

// pop removes the oldest event. It must only be called from one goroutine at
// a time (the Tracer serializes drains behind a mutex).
func (r *ring) pop() (Event, bool) {
	c := &r.cells[r.tail&r.mask]
	if c.seq.Load() != r.tail+1 {
		return Event{}, false // empty, or the producer at tail hasn't published yet
	}
	ev := c.ev
	c.seq.Store(r.tail + r.mask + 1) // re-arm for the next lap
	r.tail++
	return ev, true
}

// dropped returns the number of events discarded because the ring was full.
func (r *ring) dropped() uint64 { return r.drops.Load() }
