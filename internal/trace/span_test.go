package trace

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"scanshare/internal/vclock"
)

// spanHarness is a tracer on a manual clock with an unbounded recorder, the
// deterministic rig the span tests share.
func spanHarness(t *testing.T, ringSize int) (*Tracer, *Recorder, *vclock.Manual) {
	t.Helper()
	clk := vclock.NewManual(0)
	tr := NewTracerSize(clk, ringSize)
	rec := &Recorder{}
	tr.Attach(rec)
	t.Cleanup(func() { tr.Close() })
	return tr, rec, clk
}

// TestSpanLifecycleAndAssembly builds one request tree span by span on a
// manual clock and checks that assembly reproduces the exact shape and that
// the breakdown attributes every nanosecond.
func TestSpanLifecycleAndAssembly(t *testing.T) {
	tr, rec, clk := spanHarness(t, 1024)

	root := tr.Root()
	if !root.Valid() || root.Trace != root.Span || root.Parent != 0 {
		t.Fatalf("root context = %+v", root)
	}
	req := tr.OpenSpan(root, SpanRequest, NoID, NoID)
	if !req.Active() {
		t.Fatal("request span inactive with sink attached")
	}

	clk.Advance(2 * time.Millisecond) // compile
	tr.EmitSpan(root, SpanCompile, NoID, NoID, 2*time.Millisecond)
	clk.Advance(3 * time.Millisecond) // admission queue
	tr.EmitSpan(root, SpanQueue, NoID, NoID, 3*time.Millisecond)

	scanCtx := tr.Child(root)
	scan := tr.OpenSpan(scanCtx, SpanScan, 7, 1)
	clk.Advance(time.Millisecond)
	tr.EmitSpan(scan.Context(), SpanThrottle, 7, 1, time.Millisecond)
	clk.Advance(4 * time.Millisecond)
	tr.EmitSpan(scan.Context(), SpanRead, 7, 1, 4*time.Millisecond)
	clk.Advance(5 * time.Millisecond) // unattributed processing
	if got := scan.Close(); got != 10*time.Millisecond {
		t.Fatalf("scan duration = %v, want 10ms", got)
	}
	if got := req.Close(); got != 15*time.Millisecond {
		t.Fatalf("request duration = %v, want 15ms", got)
	}

	tr.Flush()
	asm := Assemble(rec.Events())
	if len(asm.Trees) != 1 || asm.Unclosed != 0 || asm.Orphans != 0 || asm.ExtraRoots != 0 {
		t.Fatalf("assembly = %+v", asm)
	}
	tree := asm.Trees[0]
	if tree.Trace != root.Trace || tree.Nodes != 6 {
		t.Fatalf("tree trace=%d nodes=%d, want trace %d with 6 nodes", tree.Trace, tree.Nodes, root.Trace)
	}
	if tree.Root.Kind != SpanRequest || len(tree.Root.Children) != 3 {
		t.Fatalf("root kind=%v children=%d", tree.Root.Kind, len(tree.Root.Children))
	}

	b := tree.Breakdown()
	want := Breakdown{
		Total: 15 * time.Millisecond, Queue: 3 * time.Millisecond,
		Compile: 2 * time.Millisecond, Scan: 10 * time.Millisecond,
		Throttle: time.Millisecond, Read: 4 * time.Millisecond,
		Process: 5 * time.Millisecond,
	}
	if b != want {
		t.Errorf("breakdown = %+v, want %+v", b, want)
	}
	var sum time.Duration
	for _, c := range b.Components() {
		sum += c.Dur
	}
	if sum != b.Total {
		t.Errorf("components sum %v != total %v", sum, b.Total)
	}
}

// TestSpanAssembleFromCloseOnly drops every open event, the failure mode of
// a full ring, and checks that close events alone rebuild the identical
// tree: closed, orphan-free, same breakdown.
func TestSpanAssembleFromCloseOnly(t *testing.T) {
	tr, rec, clk := spanHarness(t, 1024)
	root := tr.Root()
	req := tr.OpenSpan(root, SpanRequest, NoID, NoID)
	clk.Advance(2 * time.Millisecond)
	tr.EmitSpan(root, SpanQueue, NoID, NoID, 2*time.Millisecond)
	scan := tr.OpenSpan(tr.Child(root), SpanScan, 1, 1)
	clk.Advance(6 * time.Millisecond)
	scan.Close()
	req.Close()
	tr.Flush()

	var closesOnly []Event
	for _, ev := range rec.Events() {
		if ev.Kind == KindSpanClose {
			closesOnly = append(closesOnly, ev)
		}
	}
	full := Assemble(rec.Events())
	partial := Assemble(closesOnly)
	if partial.Unclosed != 0 || partial.Orphans != 0 || len(partial.Trees) != 1 {
		t.Fatalf("close-only assembly = %+v", partial)
	}
	if got, want := partial.Trees[0].Breakdown(), full.Trees[0].Breakdown(); got != want {
		t.Errorf("close-only breakdown = %+v, want %+v (same as full journal)", got, want)
	}
}

// TestSpanAssembleOrphanAdoption feeds a span whose parent never reached the
// journal and checks it is adopted under the trace's root instead of
// vanishing.
func TestSpanAssembleOrphanAdoption(t *testing.T) {
	evs := []Event{
		{Kind: KindSpanClose, SpanKind: SpanRequest, Trace: 100, Span: 100, Time: 10 * time.Millisecond, Wait: 10 * time.Millisecond},
		// Parent span 999 has no event of its own.
		{Kind: KindSpanClose, SpanKind: SpanRead, Trace: 100, Span: 101, Parent: 999, Time: 5 * time.Millisecond, Wait: time.Millisecond},
	}
	asm := Assemble(evs)
	if len(asm.Trees) != 1 || asm.Orphans != 1 {
		t.Fatalf("assembly = %+v", asm)
	}
	root := asm.Trees[0].Root
	if len(root.Children) != 1 || !root.Children[0].Adopted || root.Children[0].Kind != SpanRead {
		t.Fatalf("orphan not adopted under root: %+v", root.Children)
	}
	if b := asm.Trees[0].Breakdown(); b.Read != time.Millisecond {
		t.Errorf("adopted orphan lost from breakdown: %+v", b)
	}
}

// TestSpanAssembleUnclosed pins the other half of the drop-tolerance story:
// an open with no close is surfaced in Unclosed and contributes zero to the
// breakdown rather than a bogus duration.
func TestSpanAssembleUnclosed(t *testing.T) {
	evs := []Event{
		{Kind: KindSpanClose, SpanKind: SpanRequest, Trace: 200, Span: 200, Time: 8 * time.Millisecond, Wait: 8 * time.Millisecond},
		{Kind: KindSpanOpen, SpanKind: SpanScan, Trace: 200, Span: 201, Parent: 200, Time: time.Millisecond},
	}
	asm := Assemble(evs)
	if asm.Unclosed != 1 || len(asm.Trees) != 1 {
		t.Fatalf("assembly = %+v", asm)
	}
	if b := asm.Trees[0].Breakdown(); b.Scan != 0 || b.Total != 8*time.Millisecond {
		t.Errorf("unclosed span leaked into breakdown: %+v", b)
	}
	if out := RenderTree(asm.Trees[0]); !bytes.Contains([]byte(out), []byte("(unclosed)")) {
		t.Errorf("render missing unclosed marker:\n%s", out)
	}
}

// TestSpanDisabledTracerInert checks the no-tracing fast path end to end:
// nil and sink-less tracers produce invalid contexts, inert spans, and no
// events, so instrumented code needs no guards.
func TestSpanDisabledTracerInert(t *testing.T) {
	var nilTracer *Tracer
	disabled := NewTracer(nil)
	for name, tr := range map[string]*Tracer{"nil": nilTracer, "disabled": disabled} {
		root := tr.Root()
		if root.Valid() {
			t.Errorf("%s tracer allocated root %+v", name, root)
		}
		if child := tr.Child(SpanContext{Trace: 1, Span: 1}); child.Valid() {
			t.Errorf("%s tracer allocated child %+v", name, child)
		}
		sp := tr.OpenSpan(SpanContext{Trace: 1, Span: 1}, SpanScan, 0, 0)
		if sp.Active() || sp.Close() != 0 {
			t.Errorf("%s tracer opened a live span", name)
		}
		tr.EmitSpan(SpanContext{Trace: 1, Span: 1}, SpanRead, 0, 0, time.Millisecond)
	}
	if disabled.Flush() != 0 {
		t.Error("disabled tracer journaled span events")
	}
	// An enabled tracer still refuses invalid contexts.
	tr, rec, _ := spanHarness(t, 64)
	if sp := tr.OpenSpan(SpanContext{}, SpanScan, 0, 0); sp.Active() {
		t.Error("OpenSpan accepted the zero context")
	}
	tr.EmitSpan(SpanContext{}, SpanRead, 0, 0, time.Millisecond)
	tr.Flush()
	if n := rec.Len(); n != 0 {
		t.Errorf("invalid contexts emitted %d events", n)
	}
}

// TestSpanJSONLRoundTrip pushes span events through the JSONL journal format
// and back, pinning that the causal identity survives serialization.
func TestSpanJSONLRoundTrip(t *testing.T) {
	tr, rec, clk := spanHarness(t, 256)
	root := tr.Root()
	req := tr.OpenSpan(root, SpanRequest, NoID, NoID)
	clk.Advance(3 * time.Millisecond)
	tr.EmitSpan(root, SpanFold, 2, 5, time.Millisecond)
	req.Close()
	tr.Flush()

	var buf bytes.Buffer
	if err := EncodeJSONL(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := DecodeJSONL(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("decode: err=%v skipped=%d", err, skipped)
	}
	if len(back) != len(rec.Events()) {
		t.Fatalf("decoded %d events, want %d", len(back), len(rec.Events()))
	}
	for i, ev := range rec.Events() {
		if back[i] != ev {
			t.Errorf("event %d = %+v, want %+v", i, back[i], ev)
		}
	}
	asm := Assemble(back)
	if len(asm.Trees) != 1 || asm.Trees[0].Breakdown().Fold != time.Millisecond {
		t.Errorf("round-tripped assembly = %+v", asm)
	}
}

// TestSpanConcurrentEmission runs many goroutines building disjoint trees
// through one tracer and checks every tree assembles closed and orphan-free
// — the ordering contract the lock-free ring must honor. Sized to fit the
// ring, so nothing is dropped.
func TestSpanConcurrentEmission(t *testing.T) {
	const workers = 8
	const spansPerWorker = 3 // request + scan + one read
	tr, rec, _ := spanHarness(t, 1<<12)

	var wg sync.WaitGroup
	traces := make([]int64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := tr.Root()
			traces[w] = root.Trace
			req := tr.OpenSpan(root, SpanRequest, NoID, NoID)
			scan := tr.OpenSpan(tr.Child(root), SpanScan, int64(w), 1)
			tr.EmitSpan(scan.Context(), SpanRead, int64(w), 1, time.Microsecond)
			scan.Close()
			req.Close()
		}()
	}
	wg.Wait()
	tr.Flush()
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("ring dropped %d events; test rig undersized", d)
	}

	asm := Assemble(rec.Events())
	if len(asm.Trees) != workers || asm.Unclosed != 0 || asm.Orphans != 0 || asm.ExtraRoots != 0 {
		t.Fatalf("assembly = %+v, want %d clean trees", asm, workers)
	}
	seen := make(map[int64]bool)
	for _, tree := range asm.Trees {
		seen[tree.Trace] = true
		if tree.Nodes != spansPerWorker {
			t.Errorf("trace %d has %d nodes, want %d", tree.Trace, tree.Nodes, spansPerWorker)
		}
	}
	for _, id := range traces {
		if !seen[id] {
			t.Errorf("trace %d missing from assembly", id)
		}
	}
}

// TestSpanKindStrings pins the short names the trees, JSONL journal, and
// breakdown tables all share.
func TestSpanKindStrings(t *testing.T) {
	want := map[SpanKind]string{
		SpanNone: "none", SpanRequest: "request", SpanCompile: "compile",
		SpanQueue: "queue", SpanScan: "scan", SpanThrottle: "throttle",
		SpanPoolWait: "pool-wait", SpanRead: "read", SpanDelivery: "delivery",
		SpanFold: "fold",
	}
	for k := SpanNone; k < numSpanKinds; k++ {
		if k.String() != want[k] {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, k.String(), want[k])
		}
	}
	if got := numSpanKinds.String(); got != fmt.Sprintf("SpanKind(%d)", int(numSpanKinds)) {
		t.Errorf("out-of-range kind = %q", got)
	}
}
