package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"scanshare/internal/vclock"
)

func TestRingPushPopOrder(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 6; i++ {
		if !r.push(Event{Scan: int64(i)}) {
			t.Fatalf("push %d rejected on non-full ring", i)
		}
	}
	for i := 0; i < 6; i++ {
		ev, ok := r.pop()
		if !ok {
			t.Fatalf("pop %d: ring empty early", i)
		}
		if ev.Scan != int64(i) {
			t.Fatalf("pop %d = scan %d, want FIFO order", i, ev.Scan)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("pop on drained ring returned an event")
	}
}

// TestRingWraparound cycles the ring through several times its capacity to
// exercise the sequence re-arming on every cell.
func TestRingWraparound(t *testing.T) {
	r := newRing(4)
	next := int64(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !r.push(Event{Scan: int64(round*3 + i)}) {
				t.Fatalf("round %d push %d rejected", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			ev, ok := r.pop()
			if !ok {
				t.Fatalf("round %d pop %d: empty", round, i)
			}
			if ev.Scan != next {
				t.Fatalf("round %d pop %d = scan %d, want %d", round, i, ev.Scan, next)
			}
			next++
		}
	}
	if r.dropped() != 0 {
		t.Errorf("dropped = %d, want 0", r.dropped())
	}
}

// TestRingDropsNewestWhenFull pins the overflow policy: the ring keeps the
// oldest events (the root causes) and counts the rejected newcomers.
func TestRingDropsNewestWhenFull(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 7; i++ {
		r.push(Event{Scan: int64(i)})
	}
	if got := r.dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	for i := 0; i < 4; i++ {
		ev, ok := r.pop()
		if !ok || ev.Scan != int64(i) {
			t.Fatalf("pop %d = (%v, %v), want oldest events preserved", i, ev.Scan, ok)
		}
	}
}

// TestRingConcurrentPush hammers the ring from many producers while one
// consumer drains, and checks conservation: every event is either delivered
// exactly once or counted dropped. Run under -race this also exercises the
// publication ordering between push's data write and pop's read.
func TestRingConcurrentPush(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	r := newRing(64)

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		pr := pr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.push(Event{Scan: int64(pr*perProducer + i)})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	seen := make(map[int64]bool)
	for {
		ev, ok := r.pop()
		if ok {
			if seen[ev.Scan] {
				t.Errorf("event %d delivered twice", ev.Scan)
			}
			seen[ev.Scan] = true
			continue
		}
		select {
		case <-done:
			// Producers finished and the ring read empty; one final
			// drain pass picks up anything published in between.
			for {
				ev, ok := r.pop()
				if !ok {
					if got, want := uint64(len(seen))+r.dropped(), uint64(producers*perProducer); got != want {
						t.Fatalf("delivered %d + dropped %d = %d, want %d", len(seen), r.dropped(), got, want)
					}
					return
				}
				if seen[ev.Scan] {
					t.Errorf("event %d delivered twice", ev.Scan)
				}
				seen[ev.Scan] = true
			}
		default:
		}
	}
}

// TestEmitWithoutSinkIsOff checks the hot-path guarantee: with no sink
// attached the tracer journals nothing, so later consumers see an empty ring.
func TestEmitWithoutSinkIsOff(t *testing.T) {
	tr := NewTracer(new(vclock.Wall))
	for i := 0; i < 100; i++ {
		tr.Emit(Event{Kind: KindScanStart, Scan: int64(i)})
	}
	rec := new(Recorder)
	tr.Attach(rec)
	if n := tr.Flush(); n != 0 {
		t.Errorf("flush after sink-less emits delivered %d events, want 0", n)
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindScanStart})
	tr.EmitAt(Event{Kind: KindScanEnd})
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer reports drops")
	}
}

func TestTracerStampsTime(t *testing.T) {
	clk := new(vclock.Manual)
	clk.Advance(5 * time.Millisecond)
	tr := NewTracer(clk)
	rec := new(Recorder)
	tr.Attach(rec)
	tr.Emit(Event{Kind: KindScanStart, Scan: 1})
	clk.Advance(5 * time.Millisecond)
	tr.EmitAt(Event{Time: 42 * time.Millisecond, Kind: KindScanEnd, Scan: 1})
	tr.Flush()
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("recorded %d events, want 2", len(evs))
	}
	if evs[0].Time != 5*time.Millisecond {
		t.Errorf("Emit stamped %v, want the clock's 5ms", evs[0].Time)
	}
	if evs[1].Time != 42*time.Millisecond {
		t.Errorf("EmitAt rewrote the caller timestamp to %v", evs[1].Time)
	}
}

// TestTracerBackpressureDrops fills the ring faster than it is drained and
// checks emitters never block: the overflow is counted, the rest flows.
func TestTracerBackpressureDrops(t *testing.T) {
	tr := NewTracerSize(new(vclock.Wall), 16)
	rec := new(Recorder)
	tr.Attach(rec)
	const total = 500
	for i := 0; i < total; i++ {
		tr.Emit(Event{Kind: KindThrottleWait, Scan: int64(i)})
	}
	tr.Flush()
	if tr.Dropped() == 0 {
		t.Error("expected drops when emitting 500 events into a 16-slot ring with no drainer")
	}
	if got := uint64(rec.Len()) + tr.Dropped(); got != total {
		t.Errorf("delivered %d + dropped %d = %d, want %d", rec.Len(), tr.Dropped(), got, total)
	}
}

// TestTracerConcurrentEmitters runs emitters against the background drainer
// (as the realtime runner does) and checks conservation after Close.
func TestTracerConcurrentEmitters(t *testing.T) {
	tr := NewTracerSize(new(vclock.Wall), 256)
	rec := new(Recorder)
	tr.Attach(rec)
	tr.Start(time.Millisecond)

	const workers = 4
	const each = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(Event{Kind: KindPageFailed, Scan: int64(w), Page: int64(i)})
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := uint64(rec.Len()) + tr.Dropped(); got != workers*each {
		t.Errorf("delivered %d + dropped %d = %d, want %d", rec.Len(), tr.Dropped(), got, workers*each)
	}
}

func TestRecorderKeepsMostRecent(t *testing.T) {
	rec := &Recorder{Cap: 4}
	for i := 0; i < 10; i++ {
		rec.Consume([]Event{{Scan: int64(i)}})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("kept %d events, want cap 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Scan != want {
			t.Errorf("kept[%d] = scan %d, want %d (most recent)", i, ev.Scan, want)
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(new(vclock.Manual))
	tr.Attach(NewJSONLSink(&buf))
	tr.Emit(Event{Kind: KindEvict, Page: 17, Prio: 1, Scan: NoID, Peer: NoID, Table: NoID})
	tr.Emit(Event{Kind: KindThrottleWait, Scan: 3, Table: 2, Peer: NoID, Wait: 250 * time.Microsecond})
	tr.Flush()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "evict" || lines[0]["page"] != float64(17) || lines[0]["prio"] != float64(1) {
		t.Errorf("evict line = %v", lines[0])
	}
	if _, has := lines[0]["scan"]; has {
		t.Errorf("evict line carries a scan id despite NoID: %v", lines[0])
	}
	if lines[1]["kind"] != "throttle-wait" || lines[1]["scan"] != float64(3) || lines[1]["wait"] != float64(250*time.Microsecond) {
		t.Errorf("throttle line = %v", lines[1])
	}
}

func TestRenderTimeline(t *testing.T) {
	evs := []Event{
		{Time: 3 * time.Millisecond, Kind: KindEvict, Page: 9, Prio: 1, Scan: NoID, Peer: NoID, Table: NoID},
		{Time: 1 * time.Millisecond, Kind: KindScanStart, Scan: 2, Table: 0, Peer: NoID},
	}
	out := RenderTimeline(evs)
	want := "" +
		"     1.000ms  scan-start       scan 2 on table 0 started at page 0 (cold)\n" +
		"     3.000ms  evict            evicted page 9 (released at low)\n"
	if out != want {
		t.Errorf("timeline:\n%s\nwant:\n%s", out, want)
	}
	if got := SummarizeKinds(evs); got != "scan-start=1 evict=1" {
		t.Errorf("SummarizeKinds = %q", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func BenchmarkEmitNoSink(b *testing.B) {
	tr := NewTracer(new(vclock.Wall))
	ev := Event{Kind: KindThrottleWait, Scan: 1, Table: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

func BenchmarkEmitWithRecorder(b *testing.B) {
	tr := NewTracer(new(vclock.Wall))
	tr.Attach(&Recorder{Cap: 1024})
	tr.Start(time.Millisecond)
	defer tr.Close()
	ev := Event{Kind: KindThrottleWait, Scan: 1, Table: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

// TestTimelineStampFormats pins the sub-second/second switchover.
func TestTimelineStampFormats(t *testing.T) {
	if got := formatStamp(1500 * time.Microsecond); got != "1.500ms" {
		t.Errorf("formatStamp(1.5ms) = %q", got)
	}
	if got := formatStamp(2300 * time.Millisecond); got != "2.300s" {
		t.Errorf("formatStamp(2.3s) = %q", got)
	}
}
