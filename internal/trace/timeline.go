package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderTimeline formats a recorded event stream as the compact text
// timeline printed by scanshare-bench: one line per event, a right-aligned
// timestamp column, and stable ordering (by time, then by journal order for
// ties) so that deterministic runs render byte-identical timelines.
func RenderTimeline(evs []Event) string {
	if len(evs) == 0 {
		return "(no events)\n"
	}
	// Stable sort keeps journal order inside each timestamp; under the
	// virtual clock many events share an instant.
	sorted := make([]Event, len(evs))
	copy(sorted, evs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	var b strings.Builder
	for _, ev := range sorted {
		fmt.Fprintf(&b, "%12s  %-16s %s\n", formatStamp(ev.Time), ev.Kind, ev)
	}
	return b.String()
}

// formatStamp renders a timestamp with fixed precision so columns line up:
// microseconds under a second, milliseconds after.
func formatStamp(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// SummarizeKinds returns a one-line "kind=count" breakdown of an event
// stream in kind order, e.g. "scan-start=4 throttle-wait=2 evict=31".
func SummarizeKinds(evs []Event) string {
	var counts [numKinds]int
	for _, ev := range evs {
		if int(ev.Kind) < len(counts) {
			counts[ev.Kind]++
		}
	}
	var parts []string
	for k, n := range counts {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", Kind(k), n))
		}
	}
	if len(parts) == 0 {
		return "(no events)"
	}
	return strings.Join(parts, " ")
}
