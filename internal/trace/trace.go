// Package trace is the engine's structured observability layer: a lock-free
// ring-buffer journal of scan-sharing decision events with pluggable sinks.
//
// The paper's mechanism — grouping, throttling, priority-tagged eviction — is
// all about *temporal* behavior: a leader that waits, a trailer whose pages
// are victimized first, a group that merges when two scans converge. End-of-
// run aggregate counters cannot show any of that; this package records the
// individual events as they happen, cheaply enough to leave compiled in.
//
// The design point is that emission must be free when nobody listens and
// non-blocking when somebody does:
//
//   - With no sink attached, Emit is one atomic load and a branch. Hot paths
//     (the buffer pool's eviction loop, the manager's throttle decision) can
//     call it unconditionally.
//   - With a sink attached, events go through a bounded lock-free ring
//     (a Vyukov-style MPMC queue with a single consumer). Producers never
//     block: when the ring is full because the consumer is behind, the event
//     is dropped and counted. Backpressure becomes a visible Dropped counter
//     instead of a stall in the scan path.
//
// Sinks consume drained batches: a Recorder accumulates events in memory for
// tests and timeline rendering, a JSONL writer streams them to a file for
// offline analysis, and RenderTimeline turns a recorded stream into the
// compact text timeline scanshare-bench prints. See CONCURRENCY.md for the
// ring's memory-model argument.
package trace

import (
	"fmt"
	"time"

	"scanshare/internal/core"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds. The scan lifecycle and throttling kinds mirror the manager's
// decision events; group kinds record composition changes; pool kinds record
// buffer activity the manager never sees.
const (
	// KindScanStart: a scan registered; Page is its placement origin, Peer
	// the scan it joined or trails (or -1).
	KindScanStart Kind = iota
	// KindScanEnd: a scan deregistered.
	KindScanEnd
	// KindGroupForm: a group appeared whose members shared no previous
	// group. Scan is the leader, Peer the trailer, Count the member count,
	// Gap the extent in pages.
	KindGroupForm
	// KindGroupMerge: a group absorbed members of two or more previous
	// groups. Fields as for KindGroupForm.
	KindGroupMerge
	// KindGroupSplit: a previous group's members no longer share one group.
	// Scan is the old leader, Peer the old trailer, Count the old size.
	KindGroupSplit
	// KindLeaderHandoff: a continuing group changed leaders. Scan is the
	// new leader, Peer the old one.
	KindLeaderHandoff
	// KindTrailerHandoff: a continuing group changed trailers. Scan is the
	// new trailer, Peer the old one.
	KindTrailerHandoff
	// KindThrottleWait: the manager inserted Wait into the leader Scan;
	// Gap is the leader-trailer distance in pages.
	KindThrottleWait
	// KindFairnessExempt: a warranted throttle was skipped because Scan's
	// fairness allowance is exhausted.
	KindFairnessExempt
	// KindDetach: Scan was excluded from group coordination after
	// persistent read failures; Page is its position.
	KindDetach
	// KindRejoin: a detached Scan was re-admitted; Page is its position.
	KindRejoin
	// KindEvict: the buffer pool evicted Page, which had been released at
	// priority Prio. This is the paper's direct evidence of trailer pages
	// being victimized first.
	KindEvict
	// KindPageFailed: a scan declared Page permanently failed after
	// exhausting read retries and continued degraded.
	KindPageFailed
	// KindReadCoalesced: Scan missed on Page but found another caller's
	// physical read already in flight and joined it instead of issuing a
	// duplicate I/O. This is the singleflight layer's direct evidence that
	// grouped scans share reads, not just frames.
	KindReadCoalesced
	// KindSubscribe: Scan attached to a push-delivery stream on Table;
	// Page is the catch-up cursor (the stream position of its first
	// batch), Count the number of live subscribers after admission.
	KindSubscribe
	// KindBatchPush: push-delivery accepted a contiguous page run into
	// Scan's footprint; Page is the first table-relative page of the run,
	// Gap its length in pages. The union of a subscriber's batch-push runs
	// is its delivered coverage — the parity harness's exactly-once input.
	KindBatchPush
	// KindBackpressureStall: the push reader blocked Wait on Scan's full
	// subscriber channel before delivering the batch starting at Page.
	// This is flow control standing in for the paper's throttle waits.
	KindBackpressureStall
	// KindSpanOpen: a causal span opened. Trace/Span/Parent carry the span
	// identity, SpanKind what it measures, Time its start.
	KindSpanOpen
	// KindSpanClose: a causal span closed. Time is the end; Wait carries the
	// span's full duration, so a close event alone reconstructs the span
	// even when its open event was dropped by a full ring.
	KindSpanClose

	numKinds
)

// String returns the kind's short name, used in timelines and JSONL output.
func (k Kind) String() string {
	switch k {
	case KindScanStart:
		return "scan-start"
	case KindScanEnd:
		return "scan-end"
	case KindGroupForm:
		return "group-form"
	case KindGroupMerge:
		return "group-merge"
	case KindGroupSplit:
		return "group-split"
	case KindLeaderHandoff:
		return "leader-handoff"
	case KindTrailerHandoff:
		return "trailer-handoff"
	case KindThrottleWait:
		return "throttle-wait"
	case KindFairnessExempt:
		return "fairness-exempt"
	case KindDetach:
		return "detach"
	case KindRejoin:
		return "rejoin"
	case KindEvict:
		return "evict"
	case KindPageFailed:
		return "page-failed"
	case KindReadCoalesced:
		return "read-coalesced"
	case KindSubscribe:
		return "subscribe"
	case KindBatchPush:
		return "batch-push"
	case KindBackpressureStall:
		return "backpressure-stall"
	case KindSpanOpen:
		return "span-open"
	case KindSpanClose:
		return "span-close"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NoID marks an unset Scan, Peer, Table, or Page field.
const NoID int64 = -1

// Event is one observability record. It is a flat value — no pointers, no
// slices — so producing one is a handful of stores and the ring can hold
// events by value. Only the fields relevant to the Kind are meaningful; the
// rest are NoID or zero.
type Event struct {
	// Time is the event timestamp on the emitting component's clock —
	// virtual under the deterministic harnesses, wall offset otherwise.
	Time time.Duration
	Kind Kind
	// Prio is the release priority of an evicted page (KindEvict), else -1.
	Prio int8
	// Count is the group member count for group events.
	Count int32
	// Scan and Peer identify the primary and secondary scans involved.
	Scan, Peer int64
	// Table is the scanned table, Page a table or device page number.
	Table, Page int64
	// Gap is a page distance (group extent, throttle gap).
	Gap int64
	// Wait is an inserted throttle wait; for KindSpanClose it carries the
	// span's duration.
	Wait time.Duration
	// Trace, Span, and Parent are the span-layer causal identity
	// (KindSpanOpen/KindSpanClose). Span IDs start at 1, so zero means
	// "not a span event" and pre-span emitters need no changes.
	Trace, Span, Parent int64
	// SpanKind classifies what a span measures (span events only).
	SpanKind SpanKind
}

// String renders the event as one timeline line (without the timestamp; the
// renderer owns time formatting).
func (e Event) String() string {
	switch e.Kind {
	case KindScanStart:
		how := "cold"
		if e.Peer != NoID {
			how = fmt.Sprintf("with scan %d", e.Peer)
		}
		return fmt.Sprintf("scan %d on table %d started at page %d (%s)", e.Scan, e.Table, e.Page, how)
	case KindScanEnd:
		return fmt.Sprintf("scan %d on table %d ended", e.Scan, e.Table)
	case KindGroupForm:
		return fmt.Sprintf("group formed on table %d: %d scans, trailer %d leader %d, extent %d pages",
			e.Table, e.Count, e.Peer, e.Scan, e.Gap)
	case KindGroupMerge:
		return fmt.Sprintf("groups merged on table %d: %d scans, trailer %d leader %d, extent %d pages",
			e.Table, e.Count, e.Peer, e.Scan, e.Gap)
	case KindGroupSplit:
		return fmt.Sprintf("group split on table %d: %d scans, was trailer %d leader %d",
			e.Table, e.Count, e.Peer, e.Scan)
	case KindLeaderHandoff:
		return fmt.Sprintf("leader handoff on table %d: %d -> %d", e.Table, e.Peer, e.Scan)
	case KindTrailerHandoff:
		return fmt.Sprintf("trailer handoff on table %d: %d -> %d", e.Table, e.Peer, e.Scan)
	case KindThrottleWait:
		return fmt.Sprintf("scan %d throttled %v (gap %d pages)", e.Scan, e.Wait, e.Gap)
	case KindFairnessExempt:
		return fmt.Sprintf("scan %d exempt from throttling (fairness cap)", e.Scan)
	case KindDetach:
		return fmt.Sprintf("scan %d detached at page %d (degraded)", e.Scan, e.Page)
	case KindRejoin:
		return fmt.Sprintf("scan %d rejoined at page %d", e.Scan, e.Page)
	case KindEvict:
		return fmt.Sprintf("evicted page %d (released at %s)", e.Page, prioName(e.Prio))
	case KindPageFailed:
		return fmt.Sprintf("scan %d gave up on page %d (degraded)", e.Scan, e.Page)
	case KindReadCoalesced:
		return fmt.Sprintf("scan %d joined in-flight read of page %d", e.Scan, e.Page)
	case KindSubscribe:
		return fmt.Sprintf("scan %d subscribed to push stream on table %d at page %d (%d live)",
			e.Scan, e.Table, e.Page, e.Count)
	case KindBatchPush:
		return fmt.Sprintf("scan %d accepted pushed pages [%d,%d)", e.Scan, e.Page, e.Page+e.Gap)
	case KindBackpressureStall:
		return fmt.Sprintf("push reader stalled %v on scan %d (batch at page %d)", e.Wait, e.Scan, e.Page)
	case KindSpanOpen:
		return fmt.Sprintf("span %s opened (trace %d span %d parent %d, scan %d)",
			e.SpanKind, e.Trace, e.Span, e.Parent, e.Scan)
	case KindSpanClose:
		return fmt.Sprintf("span %s closed after %v (trace %d span %d parent %d, scan %d)",
			e.SpanKind, e.Wait, e.Trace, e.Span, e.Parent, e.Scan)
	default:
		return fmt.Sprintf("scan %d: %s", e.Scan, e.Kind)
	}
}

// prioName names a buffer release priority without importing the buffer
// package (which imports this one).
func prioName(p int8) string {
	switch p {
	case 0:
		return "evict"
	case 1:
		return "low"
	case 2:
		return "normal"
	case 3:
		return "high"
	default:
		return fmt.Sprintf("prio(%d)", p)
	}
}

// ManagerObserver adapts a Tracer to the manager's Config.OnEvent contract:
// every SSM decision event is translated into the trace vocabulary and
// emitted with the manager's own timestamp. The returned function is safe to
// chain after another observer.
func ManagerObserver(t *Tracer) func(core.Event) {
	return func(ev core.Event) { t.EmitAt(FromManagerEvent(ev)) }
}

// FromManagerEvent translates one manager decision event.
func FromManagerEvent(ev core.Event) Event {
	out := Event{
		Time:  ev.Time,
		Scan:  int64(ev.Scan),
		Peer:  NoID,
		Table: int64(ev.Table),
		Page:  NoID,
		Prio:  -1,
	}
	switch ev.Kind {
	case core.EventScanStarted:
		out.Kind = KindScanStart
		out.Page = int64(ev.Placement.Origin)
		if ev.Placement.JoinedScan != core.NoScan {
			out.Peer = int64(ev.Placement.JoinedScan)
		} else if ev.Placement.TrailingScan != core.NoScan {
			out.Peer = int64(ev.Placement.TrailingScan)
		}
	case core.EventScanEnded:
		out.Kind = KindScanEnd
	case core.EventThrottled:
		out.Kind = KindThrottleWait
		out.Wait = ev.Wait
		out.Gap = int64(ev.GapPages)
	case core.EventFairnessExempted:
		out.Kind = KindFairnessExempt
	case core.EventScanDetached:
		out.Kind = KindDetach
		out.Page = int64(ev.GapPages)
	case core.EventScanRejoined:
		out.Kind = KindRejoin
		out.Page = int64(ev.GapPages)
	case core.EventGroupFormed, core.EventGroupMerged, core.EventGroupSplit:
		switch ev.Kind {
		case core.EventGroupFormed:
			out.Kind = KindGroupForm
		case core.EventGroupMerged:
			out.Kind = KindGroupMerge
		default:
			out.Kind = KindGroupSplit
		}
		out.Scan = int64(ev.Scan) // leader
		out.Peer = int64(ev.Peer) // trailer
		out.Count = int32(len(ev.Members))
		out.Gap = int64(ev.GapPages)
	case core.EventLeaderHandoff:
		out.Kind = KindLeaderHandoff
		out.Peer = int64(ev.Peer)
	case core.EventTrailerHandoff:
		out.Kind = KindTrailerHandoff
		out.Peer = int64(ev.Peer)
	}
	return out
}
