package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"scanshare/internal/metrics"
	"scanshare/internal/trace"
)

// FlightSchema identifies the dump format; bump it when the header or line
// shapes change incompatibly.
const FlightSchema = "scanshare-flight/1"

// DefaultTailEvents is how many trace events a dump attaches when the
// recorder's TailEvents is zero.
const DefaultTailEvents = 256

// FlightRecorder turns the sampler's ring and the trace journal's tail
// into a post-mortem artifact. It holds no state of its own beyond
// configuration: the "black box" is the bounded memory the sampler and
// trace recorder already maintain, so arming the recorder costs nothing
// until the moment something goes wrong and Dump is called.
type FlightRecorder struct {
	// Sampler supplies the time-series tail. Optional: with no sampler the
	// dump carries only trace events.
	Sampler *Sampler
	// Events returns the most recent n trace events, typically
	// (*trace.Recorder).Tail. Optional.
	Events func(n int) []trace.Event
	// TailEvents caps how many trace events a dump includes;
	// DefaultTailEvents when zero.
	TailEvents int
	// Dir is where DumpFile writes; the current directory when empty.
	Dir string
	// Prefix names the dump files: <Prefix>-<stamp>.jsonl. "flight" when
	// empty.
	Prefix string
	// Stamp supplies the dump timestamp; time.Now when nil. Tests pin it.
	Stamp func() time.Time

	// QueueWaitSLO, when nonzero, arms latency-triggered dumps: CheckSLO
	// writes a flight record the first time a tenant's p99 admission-queue
	// wait reaches it. Optional.
	QueueWaitSLO time.Duration
	// Tenants supplies the per-tenant admission snapshots CheckSLO
	// evaluates, typically (*server.Server).TenantStats. Optional.
	Tenants func() []metrics.TenantStats

	// tripped latches tenants that already triggered a dump so a sustained
	// breach produces one artifact, not one per check interval. The queue
	// histogram is cumulative, so a tripped tenant's p99 cannot recover
	// within a run; once per tenant is once per breach.
	mu      sync.Mutex
	tripped map[string]bool
}

// flightHeader is the first JSONL line of a dump.
type flightHeader struct {
	Schema  string `json:"schema"`
	Reason  string `json:"reason"`
	At      string `json:"at"` // RFC3339Nano wall time of the dump
	Samples int    `json:"samples"`
	Events  int    `json:"events"`
}

// flightSampleLine wraps one sampler snapshot so sample and event lines
// remain distinguishable when the file is read back line by line.
type flightSampleLine struct {
	Sample Sample `json:"sample"`
}

// Dump writes the flight record to w: a header line, the sampler's ring
// oldest-first (each wrapped in {"sample":...}), then the trace tail in
// the journal's own JSONL shape.
func (f *FlightRecorder) Dump(w io.Writer, reason string) error {
	var samples []Sample
	if f.Sampler != nil {
		f.Sampler.SampleNow() // capture the state at the moment of failure
		samples = f.Sampler.Samples()
	}
	var evs []trace.Event
	if f.Events != nil {
		n := f.TailEvents
		if n <= 0 {
			n = DefaultTailEvents
		}
		evs = f.Events(n)
	}
	stamp := time.Now
	if f.Stamp != nil {
		stamp = f.Stamp
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(flightHeader{
		Schema:  FlightSchema,
		Reason:  reason,
		At:      stamp().UTC().Format(time.RFC3339Nano),
		Samples: len(samples),
		Events:  len(evs),
	}); err != nil {
		return err
	}
	for _, s := range samples {
		if err := enc.Encode(flightSampleLine{Sample: s}); err != nil {
			return err
		}
	}
	return trace.EncodeJSONL(w, evs)
}

// CheckSLO compares every tenant's p99 admission-queue wait against
// QueueWaitSLO and dumps the flight record on each first-time breach. It
// returns the paths of any dumps written and the last write error. Callers
// poll it on their sampling cadence; an unarmed recorder (zero SLO or no
// Tenants source) returns nothing.
func (f *FlightRecorder) CheckSLO() ([]string, error) {
	if f.QueueWaitSLO <= 0 || f.Tenants == nil {
		return nil, nil
	}
	var paths []string
	var lastErr error
	for _, ts := range f.Tenants() {
		if ts.QueueWait.P99 < f.QueueWaitSLO {
			continue
		}
		f.mu.Lock()
		already := f.tripped[ts.Name]
		if !already {
			if f.tripped == nil {
				f.tripped = make(map[string]bool)
			}
			f.tripped[ts.Name] = true
		}
		f.mu.Unlock()
		if already {
			continue
		}
		reason := fmt.Sprintf("slo-breach: tenant %s p99 queue wait %v >= %v",
			ts.Name, ts.QueueWait.P99, f.QueueWaitSLO)
		path, err := f.DumpFile(reason)
		if err != nil {
			lastErr = err
			continue
		}
		paths = append(paths, path)
	}
	return paths, lastErr
}

// DumpFile writes the flight record to a timestamped file in Dir and
// returns its path. The stamp has second granularity plus a disambiguating
// suffix drawn from the sampler's sequence, so two dumps in the same
// second (a violation followed by SIGQUIT, say) do not clobber each other.
func (f *FlightRecorder) DumpFile(reason string) (string, error) {
	stamp := time.Now
	if f.Stamp != nil {
		stamp = f.Stamp
	}
	prefix := f.Prefix
	if prefix == "" {
		prefix = "flight"
	}
	seq := uint64(0)
	if f.Sampler != nil {
		seq = f.Sampler.Taken()
	}
	name := fmt.Sprintf("%s-%s-%d.jsonl", prefix, stamp().UTC().Format("20060102T150405Z"), seq)
	path := filepath.Join(f.Dir, name)
	if f.Dir != "" {
		if err := os.MkdirAll(f.Dir, 0o755); err != nil {
			return "", err
		}
	}
	file, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := f.Dump(file, reason); err != nil {
		file.Close()
		return path, err
	}
	return path, file.Close()
}
