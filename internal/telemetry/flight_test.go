package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"scanshare/internal/metrics"
	"scanshare/internal/trace"
)

func fixedStamp() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

// TestFlightDumpFormat checks the dump's line structure: a schema header
// with accurate counts, then samples oldest-first, then the trace tail in
// the journal's JSONL shape.
func TestFlightDumpFormat(t *testing.T) {
	col := new(metrics.Collector)
	s := NewSampler(Sources{Collector: col}, time.Hour, 16)
	var now time.Duration
	s.SetClock(func() time.Duration { now += time.Millisecond; return now })
	col.PageHit()
	s.SampleNow()
	col.PageMiss()
	s.SampleNow()

	rec := &trace.Recorder{}
	rec.Consume([]trace.Event{
		{Time: 1, Kind: trace.KindScanStart, Scan: 1, Table: 7, Page: 0, Prio: -1, Peer: trace.NoID},
		{Time: 2, Kind: trace.KindScanEnd, Scan: 1, Table: 7, Page: 0, Prio: -1, Peer: trace.NoID},
	})

	f := &FlightRecorder{
		Sampler: s,
		Events:  rec.Tail,
		Stamp:   fixedStamp,
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf, "test-reason"); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var hdr flightHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Schema != FlightSchema {
		t.Errorf("schema %q, want %q", hdr.Schema, FlightSchema)
	}
	if hdr.Reason != "test-reason" {
		t.Errorf("reason %q", hdr.Reason)
	}
	// Dump takes one extra sample at the moment of failure: 2 manual + 1.
	if hdr.Samples != 3 || hdr.Events != 2 {
		t.Errorf("header counts samples=%d events=%d, want 3 and 2", hdr.Samples, hdr.Events)
	}
	if hdr.At != "2026-08-05T12:00:00Z" {
		t.Errorf("stamp %q", hdr.At)
	}

	var lastSeq uint64
	for i := 0; i < hdr.Samples; i++ {
		if !sc.Scan() {
			t.Fatalf("dump truncated at sample %d", i)
		}
		var line flightSampleLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("sample line %d: %v", i, err)
		}
		if line.Sample.Seq <= lastSeq {
			t.Errorf("sample line %d: seq %d not ascending", i, line.Sample.Seq)
		}
		lastSeq = line.Sample.Seq
	}
	var kinds []string
	for i := 0; i < hdr.Events; i++ {
		if !sc.Scan() {
			t.Fatalf("dump truncated at event %d", i)
		}
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %d: %v", i, err)
		}
		kinds = append(kinds, ev.Kind)
	}
	if sc.Scan() {
		t.Fatalf("unexpected trailing line %q", sc.Text())
	}
	if strings.Join(kinds, ",") != "scan-start,scan-end" {
		t.Errorf("event kinds = %v", kinds)
	}
}

func TestFlightDumpFile(t *testing.T) {
	dir := t.TempDir()
	col := new(metrics.Collector)
	s := NewSampler(Sources{Collector: col}, time.Hour, 4)
	f := &FlightRecorder{Sampler: s, Dir: dir, Prefix: "probe", Stamp: fixedStamp}

	path, err := f.DumpFile("sigquit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(path, dir) || !strings.Contains(path, "probe-20260805T120000Z") {
		t.Errorf("unexpected dump path %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), FlightSchema) {
		t.Error("dump file missing schema header")
	}

	// A second dump in the same second must not clobber the first: the
	// sampler sequence in the name advances with the dump-time sample.
	path2, err := f.DumpFile("violation")
	if err != nil {
		t.Fatal(err)
	}
	if path2 == path {
		t.Errorf("second dump reused path %q", path)
	}
}
