package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/metrics"
)

// This file is a hand-rolled Prometheus text-format (version 0.0.4)
// exporter — no client library dependency, because the engine's metric
// surface is small and fixed and the format is plain text. Counters map to
// `_total` counters, live state to gauges, and the latency histograms to
// Prometheus summaries (pre-computed quantiles, which is what the
// fixed-footprint log-bucket histogram can answer exactly).
//
// Output order is deterministic: metric families in the order written
// below, pool label sets sorted by pool name, shard labels in shard order.
// The golden test pins the exposition byte-for-byte, so renames here are a
// reviewed, visible diff — dashboards break loudly, not silently.

// Handler returns an http.Handler serving the current state of src as
// Prometheus text exposition, for mounting at /metrics.
func Handler(src Sources) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		WriteMetrics(bw, src)
		bw.Flush()
	})
}

// WriteMetrics renders one exposition of src to w.
func WriteMetrics(w io.Writer, src Sources) {
	var cs metrics.CollectorStats
	if src.Collector != nil {
		cs = src.Collector.Snapshot()
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	// Scan worker activity (the realtime collector).
	counter("scanshare_pages_read_total", "Pages fetched and processed by scan workers.", cs.PagesRead)
	counter("scanshare_page_hits_total", "Buffer pool hits observed by scan workers.", cs.Hits)
	counter("scanshare_optimistic_hits_total", "Hits scan workers took over the pool's lock-free read path.", cs.OptimisticHits)
	counter("scanshare_page_misses_total", "Buffer pool misses filled by scan workers.", cs.Misses)
	counter("scanshare_busy_retries_total", "Acquire backoffs on in-flight reads or full shards.", cs.BusyRetries)
	counter("scanshare_scans_started_total", "Scans registered with the sharing manager.", cs.ScansStarted)
	counter("scanshare_scans_ended_total", "Scans deregistered.", cs.ScansEnded)
	counter("scanshare_scans_stopped_total", "Scans terminated mid-flight.", cs.ScansStopped)
	counter("scanshare_throttle_events_total", "SSM-inserted leader waits.", cs.ThrottleEvents)
	seconds("scanshare_throttle_wait_seconds_total", "Total SSM-inserted wait time.", w, cs.ThrottleWait)
	counter("scanshare_prefetch_enqueued_total", "Extents accepted into the prefetch queue.", cs.PrefetchEnqueued)
	counter("scanshare_prefetch_picked_total", "Extents a prefetch worker started on.", cs.PrefetchPicked)
	counter("scanshare_prefetch_dropped_total", "Extents dropped because the prefetch queue was full.", cs.PrefetchDropped)
	counter("scanshare_prefetch_filled_total", "Pages prefetch workers brought into the pool.", cs.PrefetchFilled)
	counter("scanshare_prefetch_failed_total", "Pages whose prefetch read failed.", cs.PrefetchFailed)
	counter("scanshare_reads_coalesced_total", "Misses that joined another caller's in-flight read.", cs.ReadsCoalesced)
	counter("scanshare_coalesced_failures_total", "Coalesced waits that inherited the leader's read error.", cs.CoalescedFailures)
	counter("scanshare_read_retries_total", "Store read attempts retried after an error or timeout.", cs.ReadRetries)
	counter("scanshare_read_timeouts_total", "Store reads that exceeded the per-read timeout.", cs.ReadTimeouts)
	counter("scanshare_pages_failed_total", "Pages declared failed after exhausting retries.", cs.PagesFailed)
	counter("scanshare_scan_detaches_total", "Scans detached from group coordination.", cs.ScanDetaches)
	counter("scanshare_scan_rejoins_total", "Detached scans re-admitted.", cs.ScanRejoins)
	counter("scanshare_scan_feed_registrations_total", "Scan footprints registered with a scan-aware (predictive) pool.", cs.FeedRegistrations)
	counter("scanshare_scan_feed_updates_total", "Position/speed samples fed to a scan-aware pool.", cs.FeedUpdates)
	counter("scanshare_batches_pushed_total", "Page batches accepted by push-delivery subscribers.", cs.BatchesPushed)
	counter("scanshare_subscriber_stalls_total", "Push reader blocks on a full subscriber channel.", cs.SubscriberStalls)
	counter("scanshare_push_demotions_total", "Subscribers demoted to self-pulling after exhausting the stall budget.", cs.PushDemotions)
	counter("scanshare_shared_agg_folds_total", "Tuple folds into a shared (cross-consumer) aggregation table.", cs.SharedAggFolds)
	counter("scanshare_trace_dropped_total", "Events the trace ring discarded because it was full.", cs.TraceDropped)
	gauge("scanshare_prefetch_queue_depth", "Extents currently waiting in the prefetch queue.", cs.PrefetchQueueDepth())

	// Latency distributions as summaries.
	summary(w, "scanshare_page_read_latency_seconds", "Physical read time of missed pages.", cs.PageReadLatency)
	summary(w, "scanshare_throttle_wait_latency_seconds", "Per-event SSM-inserted wait durations.", cs.ThrottleWaitDist)
	summary(w, "scanshare_prefetch_queue_delay_seconds", "Enqueue-to-pickup delay of prefetch extents.", cs.PrefetchQueueDelay)

	// Buffer pools: aggregate counters per pool, occupancy per shard.
	pools := make([]PoolSource, len(src.Pools))
	copy(pools, src.Pools)
	sort.Slice(pools, func(i, j int) bool { return pools[i].Name < pools[j].Name })
	writePools(w, pools)

	// Per-tenant admission control (serve mode): families appear only when a
	// tenant source is wired, so the pre-serve exposition — and its golden —
	// is byte-identical.
	if src.Tenants != nil {
		writeTenants(w, src.Tenants())
	}

	// Scan sharing state: live gauges from one consistent snapshot.
	if src.Sharing != nil {
		snap := src.Sharing()
		gauge("scanshare_scans_active", "Scans currently registered with a sharing manager.", int64(len(snap.Scans)))
		gauge("scanshare_scans_detached", "Registered scans currently detached from group coordination.", int64(snap.DetachedScans()))
		gauge("scanshare_scan_groups", "Scan groups currently formed.", int64(len(snap.Groups)))
		gauge("scanshare_grouped_scans", "Scans currently members of some group.", int64(snap.GroupedScans()))
		gauge("scanshare_group_max_gap_pages", "Largest leader-trailer distance across groups, in pages.", int64(snap.MaxGroupGap()))
	}
}

// writeTenants renders the per-tenant admission families: counters for the
// admitted/queued/shed decisions, a running gauge, and the queue-wait
// summary. Tenant order is the source's (sorted by name upstream), so the
// exposition is deterministic.
func writeTenants(w io.Writer, tenants []metrics.TenantStats) {
	if len(tenants) == 0 {
		return
	}
	tenantCounter := func(name, help string, field func(metrics.TenantStats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, t.Name, field(t))
		}
	}
	tenantCounter("scanshare_tenant_admitted_total", "Requests granted an execution slot.", func(t metrics.TenantStats) int64 { return t.Admitted })
	tenantCounter("scanshare_tenant_queued_total", "Requests that waited in the admission FIFO before a slot freed.", func(t metrics.TenantStats) int64 { return t.Queued })
	tenantCounter("scanshare_tenant_shed_total", "Requests rejected because the admission queue was at its depth limit.", func(t metrics.TenantStats) int64 { return t.Shed })

	fmt.Fprintf(w, "# HELP scanshare_tenant_running Requests currently holding an execution slot.\n# TYPE scanshare_tenant_running gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "scanshare_tenant_running{tenant=%q} %d\n", t.Name, t.Running)
	}

	fmt.Fprintf(w, "# HELP scanshare_tenant_queue_wait_seconds Admission-queue wait of admitted requests.\n# TYPE scanshare_tenant_queue_wait_seconds summary\n")
	for _, t := range tenants {
		for _, q := range []struct {
			label string
			v     time.Duration
		}{
			{"0.5", t.QueueWait.P50}, {"0.9", t.QueueWait.P90}, {"0.99", t.QueueWait.P99}, {"1", t.QueueWait.Max},
		} {
			fmt.Fprintf(w, "scanshare_tenant_queue_wait_seconds{tenant=%q,quantile=%q} %s\n", t.Name, q.label, formatFloat(q.v.Seconds()))
		}
		fmt.Fprintf(w, "scanshare_tenant_queue_wait_seconds_sum{tenant=%q} %s\n", t.Name, formatFloat(t.QueueWait.Sum.Seconds()))
		fmt.Fprintf(w, "scanshare_tenant_queue_wait_seconds_count{tenant=%q} %d\n", t.Name, t.QueueWait.Count)
	}

	// Per-tenant latency breakdown: cumulative seconds per component, the
	// live counterpart of the span assembler's per-query attribution.
	tenantSeconds := func(name, help string, field func(metrics.TenantStats) time.Duration) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, t := range tenants {
			fmt.Fprintf(w, "%s{tenant=%q} %s\n", name, t.Name, formatFloat(field(t).Seconds()))
		}
	}
	tenantSeconds("scanshare_tenant_compile_seconds_total", "SQL parse and plan time of the tenant's requests.", func(t metrics.TenantStats) time.Duration { return t.CompileWait })
	tenantSeconds("scanshare_tenant_throttle_wait_seconds_total", "SSM-inserted sleeps inside the tenant's scans.", func(t metrics.TenantStats) time.Duration { return t.ThrottleWait })
	tenantSeconds("scanshare_tenant_pool_wait_seconds_total", "Buffer-pool contention waits inside the tenant's scans.", func(t metrics.TenantStats) time.Duration { return t.PoolWait })
	tenantSeconds("scanshare_tenant_read_wait_seconds_total", "Physical page-read time inside the tenant's scans.", func(t metrics.TenantStats) time.Duration { return t.ReadWait })
	tenantSeconds("scanshare_tenant_delivery_wait_seconds_total", "Push-delivery batch-channel waits inside the tenant's scans.", func(t metrics.TenantStats) time.Duration { return t.DeliveryWait })
}

// poolLabel renders the pool-name label value; the default pool's empty
// name becomes "default" so the label is never empty.
func poolLabel(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// writePools renders the per-pool counter and gauge families. Each family
// is declared once with every pool's (and shard's) label set under it, as
// the exposition format requires.
func writePools(w io.Writer, pools []PoolSource) {
	if len(pools) == 0 {
		return
	}
	type poolState struct {
		name        string
		policy      string
		translation string
		agg         buffer.Stats
		occ         []int
		cap         int
	}
	states := make([]poolState, 0, len(pools))
	for _, p := range pools {
		policy := p.Policy
		if policy == "" {
			policy = buffer.PolicyLRU
		}
		translation := p.Translation
		if translation == "" {
			translation = buffer.TranslationMap
		}
		st := poolState{name: poolLabel(p.Name), policy: policy, translation: translation, cap: p.Capacity}
		if p.Shards != nil {
			for _, sh := range p.Shards() {
				st.agg.Add(sh)
			}
		}
		if p.Occupancy != nil {
			st.occ = p.Occupancy()
		}
		states = append(states, st)
	}

	poolCounter := func(name, help string, field func(buffer.Stats) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, st := range states {
			fmt.Fprintf(w, "%s{pool=%q} %d\n", name, st.name, field(st.agg))
		}
	}
	poolCounter("scanshare_pool_logical_reads_total", "Pool acquires that returned hit or miss.", func(s buffer.Stats) int64 { return s.LogicalReads })
	poolCounter("scanshare_pool_hits_total", "Pool acquires served from a resident frame.", func(s buffer.Stats) int64 { return s.Hits })
	poolCounter("scanshare_pool_misses_total", "Pool acquires that reserved a frame for a physical read.", func(s buffer.Stats) int64 { return s.Misses })
	poolCounter("scanshare_pool_aborts_total", "Misses whose physical read failed.", func(s buffer.Stats) int64 { return s.Aborts })
	poolCounter("scanshare_pool_busy_retries_total", "Pool acquires that returned busy.", func(s buffer.Stats) int64 { return s.BusyRetries })
	poolCounter("scanshare_pool_all_pinned_total", "Pool acquires that found every frame pinned.", func(s buffer.Stats) int64 { return s.AllPinned })
	poolCounter("scanshare_pool_optimistic_hits_total", "Hits served by the lock-free optimistic read path (array translation).", func(s buffer.Stats) int64 { return s.OptHits })
	poolCounter("scanshare_pool_optimistic_retries_total", "Optimistic read validations that failed and retried.", func(s buffer.Stats) int64 { return s.OptRetries })
	poolCounter("scanshare_pool_optimistic_fallbacks_total", "Optimistic reads that fell back to the locked path.", func(s buffer.Stats) int64 { return s.OptFallbacks })

	fmt.Fprintf(w, "# HELP scanshare_pool_evictions_total Frames victimized, by the priority the page was released at.\n# TYPE scanshare_pool_evictions_total counter\n")
	for _, st := range states {
		for pr, n := range st.agg.EvictionsByPr {
			fmt.Fprintf(w, "scanshare_pool_evictions_total{pool=%q,priority=%q} %d\n",
				st.name, buffer.Priority(pr).String(), n)
		}
	}

	fmt.Fprintf(w, "# HELP scanshare_pool_policy_info Replacement policy of each pool; the value is always 1.\n# TYPE scanshare_pool_policy_info gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "scanshare_pool_policy_info{pool=%q,policy=%q} 1\n", st.name, st.policy)
	}

	fmt.Fprintf(w, "# HELP scanshare_pool_translation_info Page translation structure of each pool; the value is always 1.\n# TYPE scanshare_pool_translation_info gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "scanshare_pool_translation_info{pool=%q,translation=%q} 1\n", st.name, st.translation)
	}

	fmt.Fprintf(w, "# HELP scanshare_pool_capacity_pages Pool frame capacity.\n# TYPE scanshare_pool_capacity_pages gauge\n")
	for _, st := range states {
		fmt.Fprintf(w, "scanshare_pool_capacity_pages{pool=%q} %d\n", st.name, st.cap)
	}

	fmt.Fprintf(w, "# HELP scanshare_pool_occupancy_pages Resident pages (valid or pending).\n# TYPE scanshare_pool_occupancy_pages gauge\n")
	for _, st := range states {
		total := 0
		for _, n := range st.occ {
			total += n
		}
		fmt.Fprintf(w, "scanshare_pool_occupancy_pages{pool=%q} %d\n", st.name, total)
	}

	fmt.Fprintf(w, "# HELP scanshare_pool_shard_occupancy_pages Resident pages per lock-striped shard.\n# TYPE scanshare_pool_shard_occupancy_pages gauge\n")
	for _, st := range states {
		for i, n := range st.occ {
			fmt.Fprintf(w, "scanshare_pool_shard_occupancy_pages{pool=%q,shard=\"%d\"} %d\n", st.name, i, n)
		}
	}
}

// seconds renders one float counter of accumulated seconds.
func seconds(name, help string, w io.Writer, d time.Duration) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, formatFloat(d.Seconds()))
}

// summary renders one latency distribution as a Prometheus summary:
// pre-computed quantiles plus _sum and _count.
func summary(w io.Writer, name, help string, st metrics.HistogramStats) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, q := range []struct {
		label string
		v     time.Duration
	}{
		{"0.5", st.P50}, {"0.9", st.P90}, {"0.99", st.P99}, {"1", st.Max},
	} {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, q.label, formatFloat(q.v.Seconds()))
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(st.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, st.Count)
}

// formatFloat renders a float the way Prometheus clients do: 'g' with full
// precision, so integers stay short ("0", "3") and sub-second latencies
// keep their digits.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
