package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestIntrospectionRestart is the regression test for the -http / serve-mode
// lifecycle bug: a second server start after Shutdown — or a second engine
// publishing the same expvar names in one process — used to panic on
// duplicate expvar.Publish or duplicate mux patterns. Two full
// start-scrape-shutdown cycles must work, and the second cycle must see the
// second provider's values.
func TestIntrospectionRestart(t *testing.T) {
	get := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", url, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	for cycle := 1; cycle <= 2; cycle++ {
		cycle := cycle
		// Re-publishing the same name each cycle must swap the provider,
		// never re-Publish.
		PublishExpvar("test_restart_value", func() any { return cycle * 100 })
		src := Sources{}
		srv, err := StartIntrospection("127.0.0.1:0", NewDebugMux(&src))
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		base := "http://" + srv.Addr()

		vars := get(base + "/debug/vars")
		var decoded map[string]json.RawMessage
		if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
			t.Fatalf("cycle %d: /debug/vars is not JSON: %v", cycle, err)
		}
		if got := strings.TrimSpace(string(decoded["test_restart_value"])); got != fmt.Sprint(cycle*100) {
			t.Errorf("cycle %d: test_restart_value = %s, want %d", cycle, got, cycle*100)
		}
		if metrics := get(base + "/metrics"); !strings.Contains(metrics, "scanshare_") {
			t.Errorf("cycle %d: /metrics has no scanshare families:\n%s", cycle, metrics)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("cycle %d shutdown: %v", cycle, err)
		}
		cancel()
	}
}

// TestPublishExpvarNilProvider checks that unhooking a provider leaves the
// name published but inert — the pattern a shutting-down server uses so a
// late scrape cannot reach engine state that is being torn down.
func TestPublishExpvarNilProvider(t *testing.T) {
	PublishExpvar("test_nil_provider", func() any { return 7 })
	PublishExpvar("test_nil_provider", nil)
	srv, err := StartIntrospection("127.0.0.1:0", NewDebugMux(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()
	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if got := strings.TrimSpace(string(decoded["test_nil_provider"])); got != "null" {
		t.Errorf("unhooked provider rendered %s, want null", got)
	}
}
