// Introspection HTTP plumbing shared by scanshare-bench -http and
// scanshare-serve: a duplicate-safe expvar registry and a standard debug mux
// behind a gracefully restartable server.
//
// The trap this file exists for: expvar.Publish panics on a duplicate name
// and http.ServeMux panics on a duplicate pattern, but both the bench's
// runRealtime and a serve process can start, shut down, and start an
// introspection endpoint more than once per process (tests do, and a served
// engine can be cycled). Names are therefore published to expvar exactly
// once per process, as thin Funcs that forward through a mutable provider
// registry; restarting swaps providers and never re-publishes. Muxes are
// built fresh per server instance, so patterns are never re-registered on a
// shared mux.
package telemetry

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarReg is the process-wide provider registry behind every name this
// package publishes. The expvar.Func closures read it under RLock, so a
// swapped provider takes effect on the next scrape with no republish.
var expvarReg = struct {
	sync.RWMutex
	providers map[string]func() any
	published map[string]bool
}{providers: map[string]func() any{}, published: map[string]bool{}}

// PublishExpvar registers fn as the provider for the expvar name. The first
// call for a name performs the real expvar.Publish; every later call — a
// second server start after Shutdown, a second engine in the same process —
// only swaps the provider, so the duplicate-name panic cannot happen. A nil
// fn unhooks the name (the published Func then renders null) without
// unpublishing it, which expvar does not support.
func PublishExpvar(name string, fn func() any) {
	expvarReg.Lock()
	defer expvarReg.Unlock()
	expvarReg.providers[name] = fn
	if expvarReg.published[name] {
		return
	}
	expvarReg.published[name] = true
	expvar.Publish(name, expvar.Func(func() any {
		expvarReg.RLock()
		f := expvarReg.providers[name]
		expvarReg.RUnlock()
		if f == nil {
			return nil
		}
		return f()
	}))
}

// NewDebugMux builds the standard introspection handler set on a fresh mux:
// /debug/vars (expvar), /debug/pprof/*, and — when src is non-nil —
// /metrics in Prometheus text format. A fresh mux per server start is the
// other half of the restart story: patterns are never added to a mux that
// already has them.
func NewDebugMux(src *Sources) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if src != nil {
		mux.Handle("/metrics", Handler(*src))
	}
	return mux
}

// IntrospectionServer is one started instance of the debug endpoint. It owns
// its listener and http.Server; Shutdown is graceful and the instance is
// then dead — start a new one (with a new mux) to come back up.
type IntrospectionServer struct {
	ln  net.Listener
	srv *http.Server
	// errCh reports the Serve loop's exit; Shutdown drains it so the
	// goroutine never leaks past the instance.
	errCh chan error
}

// StartIntrospection listens on addr and serves handler until Shutdown.
// addr follows net.Listen("tcp", ...) conventions; ":0" picks a free port
// (see Addr). The serve loop runs in its own goroutine; its terminal error,
// if any, is returned by Shutdown.
func StartIntrospection(addr string, handler http.Handler) (*IntrospectionServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &IntrospectionServer{
		ln:    ln,
		srv:   &http.Server{Handler: handler},
		errCh: make(chan error, 1),
	}
	go func() {
		err := s.srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.errCh <- err
	}()
	return s, nil
}

// Addr returns the bound listen address (resolving a ":0" request).
func (s *IntrospectionServer) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain within ctx's deadline. It returns the serve loop's error
// if it died before shutdown was requested.
func (s *IntrospectionServer) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if serveErr := <-s.errCh; serveErr != nil && err == nil {
		err = serveErr
	}
	return err
}
