package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scanshare/internal/metrics"
)

func baselineResult() BenchResult {
	return BenchResult{
		Name:        "smoke",
		Params:      BenchParams{Pages: 400, Scans: 8, Workers: 2, PoolPages: 200, Shards: 4},
		WallSeconds: 2.0,
		PagesRead:   3200,
		PagesPerSec: 1600,
		HitRatio:    0.85,
	}
}

// TestCompareBenchRegression injects a 10% throughput regression and
// checks the comparator flags it — the acceptance scenario for the
// bench-smoke tripwire.
func TestCompareBenchRegression(t *testing.T) {
	old := baselineResult()

	same := old
	if regs := CompareBench(old, same, 0.10); len(regs) != 0 {
		t.Fatalf("identical results flagged: %v", regs)
	}

	slight := old
	slight.PagesPerSec = old.PagesPerSec * 0.95 // 5% slower: inside tolerance
	if regs := CompareBench(old, slight, 0.10); len(regs) != 0 {
		t.Fatalf("5%% drop flagged at 10%% tolerance: %v", regs)
	}

	slow := old
	slow.PagesPerSec = old.PagesPerSec * 0.89 // just past the 10% line
	slow.WallSeconds = float64(slow.PagesRead) / slow.PagesPerSec
	regs := CompareBench(old, slow, 0.10)
	if len(regs) != 1 {
		t.Fatalf("10%%+ drop: got %d regressions (%v), want 1", len(regs), regs)
	}
	if regs[0].Metric != "pages_per_sec" {
		t.Errorf("flagged %q, want pages_per_sec", regs[0].Metric)
	}
	if !strings.Contains(regs[0].Detail, "throughput dropped 11.0%") {
		t.Errorf("detail %q lacks the drop percentage", regs[0].Detail)
	}

	cold := old
	cold.HitRatio = 0.60 // locality collapse with throughput intact
	regs = CompareBench(old, cold, 0.10)
	if len(regs) != 1 || regs[0].Metric != "hit_ratio" {
		t.Fatalf("hit-ratio collapse: got %v", regs)
	}

	drifted := old
	drifted.PagesRead = old.PagesRead * 2 // different workload entirely
	drifted.PagesPerSec = old.PagesPerSec
	regs = CompareBench(old, drifted, 0.10)
	if len(regs) != 1 || regs[0].Metric != "pages_read" {
		t.Fatalf("workload drift: got %v", regs)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	res := baselineResult()
	res.GitRev = "abc1234"
	res.RecordedAt = "2026-08-05T12:00:00Z"
	res.Histograms = map[string]HistSummary{
		"page_read": SummarizeHist(metrics.HistogramStats{
			Count: 10, Sum: 20 * time.Millisecond, Max: 5 * time.Millisecond,
			P50: time.Millisecond, P90: 3 * time.Millisecond, P99: 5 * time.Millisecond,
		}),
	}
	if err := WriteBench(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema {
		t.Errorf("schema %q", got.Schema)
	}
	if got.Name != res.Name || got.PagesRead != res.PagesRead || got.PagesPerSec != res.PagesPerSec {
		t.Errorf("round trip mismatch: %+v vs %+v", got, res)
	}
	if h := got.Histograms["page_read"]; h.Count != 10 || h.P99NS != int64(5*time.Millisecond) || h.MeanNS != int64(2*time.Millisecond) {
		t.Errorf("histogram round trip: %+v", h)
	}
}

func TestReadBenchRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	res := baselineResult()
	if err := WriteBench(path, res); err != nil {
		t.Fatal(err)
	}
	// Corrupt the schema in place.
	data := `{"schema":"scanshare-bench/999","name":"x"}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}
