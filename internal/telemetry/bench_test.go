package telemetry

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scanshare/internal/metrics"
)

func baselineResult() BenchResult {
	return BenchResult{
		Name:        "smoke",
		Params:      BenchParams{Pages: 400, Scans: 8, Workers: 2, PoolPages: 200, Shards: 4},
		WallSeconds: 2.0,
		PagesRead:   3200,
		PagesPerSec: 1600,
		HitRatio:    0.85,
	}
}

// TestCompareBenchRegression injects a 10% throughput regression and
// checks the comparator flags it — the acceptance scenario for the
// bench-smoke tripwire.
func TestCompareBenchRegression(t *testing.T) {
	old := baselineResult()

	same := old
	if regs := CompareBench(old, same, 0.10); len(regs) != 0 {
		t.Fatalf("identical results flagged: %v", regs)
	}

	slight := old
	slight.PagesPerSec = old.PagesPerSec * 0.95 // 5% slower: inside tolerance
	if regs := CompareBench(old, slight, 0.10); len(regs) != 0 {
		t.Fatalf("5%% drop flagged at 10%% tolerance: %v", regs)
	}

	slow := old
	slow.PagesPerSec = old.PagesPerSec * 0.89 // just past the 10% line
	slow.WallSeconds = float64(slow.PagesRead) / slow.PagesPerSec
	regs := CompareBench(old, slow, 0.10)
	if len(regs) != 1 {
		t.Fatalf("10%%+ drop: got %d regressions (%v), want 1", len(regs), regs)
	}
	if regs[0].Metric != "pages_per_sec" {
		t.Errorf("flagged %q, want pages_per_sec", regs[0].Metric)
	}
	if !strings.Contains(regs[0].Detail, "throughput dropped 11.0%") {
		t.Errorf("detail %q lacks the drop percentage", regs[0].Detail)
	}

	cold := old
	cold.HitRatio = 0.60 // locality collapse with throughput intact
	regs = CompareBench(old, cold, 0.10)
	if len(regs) != 1 || regs[0].Metric != "hit_ratio" {
		t.Fatalf("hit-ratio collapse: got %v", regs)
	}

	drifted := old
	drifted.PagesRead = old.PagesRead * 2 // different workload entirely
	drifted.PagesPerSec = old.PagesPerSec
	regs = CompareBench(old, drifted, 0.10)
	if len(regs) != 1 || regs[0].Metric != "pages_read" {
		t.Fatalf("workload drift: got %v", regs)
	}
}

// TestCompareBenchMalformedInputs is the table test for the comparator's
// defensive gates: zero-throughput baselines, NaN/Inf rates from
// zero-duration runs, and schema mismatches must each produce an explicit
// named finding (so runCompare exits non-zero deterministically) instead of
// a silent pass through NaN comparisons.
func TestCompareBenchMalformedInputs(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	mutate := func(f func(r *BenchResult)) BenchResult {
		r := baselineResult()
		f(&r)
		return r
	}
	cases := []struct {
		name       string
		old, new   BenchResult
		metric     string // metric of the finding that must appear
		detailFrag string // substring the diagnostic must carry
	}{
		{
			name:       "zero baseline throughput",
			old:        mutate(func(r *BenchResult) { r.PagesPerSec = 0 }),
			new:        baselineResult(),
			metric:     "pages_per_sec",
			detailFrag: "nothing to compare against",
		},
		{
			name:       "NaN baseline rate",
			old:        mutate(func(r *BenchResult) { r.PagesPerSec = nan }),
			new:        baselineResult(),
			metric:     "pages_per_sec",
			detailFrag: "zero-duration or corrupt",
		},
		{
			name:       "Inf current rate",
			old:        baselineResult(),
			new:        mutate(func(r *BenchResult) { r.PagesPerSec = inf }),
			metric:     "pages_per_sec",
			detailFrag: "current pages_per_sec",
		},
		{
			name:       "NaN hit ratio hides a collapse",
			old:        baselineResult(),
			new:        mutate(func(r *BenchResult) { r.HitRatio = nan }),
			metric:     "hit_ratio",
			detailFrag: "hit_ratio",
		},
		{
			name:       "schema mismatch",
			old:        mutate(func(r *BenchResult) { r.Schema = BenchSchema }),
			new:        mutate(func(r *BenchResult) { r.Schema = "scanshare-bench/999" }),
			metric:     "schema",
			detailFrag: "not comparable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs := CompareBench(tc.old, tc.new, 0.10)
			if len(regs) == 0 {
				t.Fatal("malformed input passed the comparator")
			}
			found := false
			for _, r := range regs {
				if r.Metric == tc.metric && strings.Contains(r.Detail, tc.detailFrag) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %q finding containing %q in %v", tc.metric, tc.detailFrag, regs)
			}
			// Determinism: the same inputs must yield the same findings.
			again := CompareBench(tc.old, tc.new, 0.10)
			if len(again) != len(regs) {
				t.Fatalf("comparator nondeterministic: %d then %d findings", len(regs), len(again))
			}
		})
	}

	// A NaN rate must not double-report: the plain throughput/hit-ratio
	// comparisons are skipped when the rates are unusable.
	old := baselineResult()
	bad := baselineResult()
	bad.PagesPerSec = nan
	bad.HitRatio = 0 // would trip the hit-ratio check if it ran
	for _, r := range CompareBench(old, bad, 0.10) {
		if r.Metric == "hit_ratio" && !strings.Contains(r.Detail, "skipped") {
			t.Fatalf("rate comparison ran on unusable inputs: %v", r)
		}
	}
}

func TestBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	res := baselineResult()
	res.GitRev = "abc1234"
	res.RecordedAt = "2026-08-05T12:00:00Z"
	res.Histograms = map[string]HistSummary{
		"page_read": SummarizeHist(metrics.HistogramStats{
			Count: 10, Sum: 20 * time.Millisecond, Max: 5 * time.Millisecond,
			P50: time.Millisecond, P90: 3 * time.Millisecond, P99: 5 * time.Millisecond,
		}),
	}
	if err := WriteBench(path, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchema {
		t.Errorf("schema %q", got.Schema)
	}
	if got.Name != res.Name || got.PagesRead != res.PagesRead || got.PagesPerSec != res.PagesPerSec {
		t.Errorf("round trip mismatch: %+v vs %+v", got, res)
	}
	if h := got.Histograms["page_read"]; h.Count != 10 || h.P99NS != int64(5*time.Millisecond) || h.MeanNS != int64(2*time.Millisecond) {
		t.Errorf("histogram round trip: %+v", h)
	}
}

func TestReadBenchRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	res := baselineResult()
	if err := WriteBench(path, res); err != nil {
		t.Fatal(err)
	}
	// Corrupt the schema in place.
	data := `{"schema":"scanshare-bench/999","name":"x"}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}
