// Package telemetry is the engine's continuous observability layer: a
// low-overhead periodic sampler over the live metric sources, a hand-rolled
// Prometheus text-format exporter, a flight recorder that dumps the recent
// past on failure, and a schema-versioned benchmark-result format with a
// regression comparator.
//
// The trace journal (internal/trace) records discrete *events*; the
// end-of-run reports aggregate *totals*. Neither can answer "was the
// throttle actually holding the groups together at t=40s?" — that needs the
// state, sampled on a clock: per-group leader–trailer distance, throttle
// duty cycle, pool hit rate, shard occupancy skew, coalesce rate, prefetch
// queue depth. The Sampler snapshots all of it at a configurable interval
// into a bounded in-memory ring, and delta-encoding between consecutive
// samples turns the monotonic counters into rates (hits/sec, pages/sec)
// for free.
//
// Everything the sampler reads is already lock-free or
// consistent-per-source: the metrics.Collector is atomics, the pool's
// per-shard stats are exact snapshots under each shard's own mutex, and the
// manager snapshot is one consistent view under its lock. A sample is
// therefore "consistent enough" in the same sense as CollectorStats — each
// source is internally coherent, the set is not taken at one instant — and
// sampling never blocks a scan worker.
package telemetry

import (
	"math"
	"sync"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/metrics"
	"scanshare/internal/vclock"
)

// PoolSource names one buffer pool and provides its live counters. Shards
// must return one exact snapshot per shard (buffer.Pool.ShardStats) and
// Occupancy the per-shard resident page counts (buffer.Pool.ShardOccupancy);
// either may be nil, which samples as empty.
type PoolSource struct {
	Name        string
	Capacity    int
	Policy      string // replacement policy name; "" means the default priority-LRU
	Translation string // page translation kind; "" means the default map
	Shards      func() []buffer.Stats
	Occupancy   func() []int
}

// Sources bundles the live inputs one Sampler (and the Prometheus exporter)
// reads. Any field may be nil/empty; the corresponding sample sections stay
// zero.
type Sources struct {
	// Collector is the realtime run's activity counter block.
	Collector *metrics.Collector
	// Pools lists every buffer pool to sample.
	Pools []PoolSource
	// Sharing returns a consistent scan/group snapshot (Engine.SharingSnapshot
	// or Manager.Snapshot).
	Sharing func() core.Snapshot
	// Tenants returns one admission snapshot per tenant, sorted by name
	// (server.Server.TenantStats). Nil outside serve mode, which keeps every
	// pre-serve sample, Prometheus exposition, and flight record shape
	// unchanged.
	Tenants func() []metrics.TenantStats
}

// PoolSample is one pool's state in one sample.
type PoolSample struct {
	Name        string       `json:"name"`
	Capacity    int          `json:"capacity"`
	Policy      string       `json:"policy,omitempty"`      // replacement policy name
	Translation string       `json:"translation,omitempty"` // page translation kind
	Stats       buffer.Stats `json:"stats"`                 // aggregate over shards
	Occupancy   []int        `json:"occupancy,omitempty"`   // resident pages per shard
}

// OccupancySkew measures how unevenly pages are spread over the shards:
// max/mean − 1, so 0 is perfectly balanced and 1 means the fullest shard
// holds twice the mean. Single-shard pools and empty pools report 0.
func (p PoolSample) OccupancySkew() float64 {
	if len(p.Occupancy) < 2 {
		return 0
	}
	sum, max := 0, 0
	for _, n := range p.Occupancy {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(p.Occupancy))
	return float64(max)/mean - 1
}

// GroupSample is one scan group's state in one sample.
type GroupSample struct {
	Table    int64 `json:"table"`
	Members  int   `json:"members"`
	GapPages int   `json:"gap_pages"` // leader–trailer distance
}

// Sample is one periodic snapshot of the engine's dynamic state.
type Sample struct {
	// At is the sample time on the sampler's clock (wall offset from the
	// sampler's creation by default).
	At time.Duration `json:"at"`
	// Seq numbers samples from 1; gaps never occur (the ring drops old
	// samples, not new ones).
	Seq uint64 `json:"seq"`

	Counters metrics.CollectorStats `json:"counters"`
	Pools    []PoolSample           `json:"pools,omitempty"`

	// ScansActive and ScansDetached count registered scans; Groups holds
	// one entry per scan group, trailer order.
	ScansActive   int           `json:"scans_active"`
	ScansDetached int           `json:"scans_detached"`
	Groups        []GroupSample `json:"groups,omitempty"`

	// PrefetchQueueDepth is the live extent backlog (enqueued − picked).
	PrefetchQueueDepth int64 `json:"prefetch_queue_depth"`

	// Tenants holds one admission snapshot per tenant in serve mode, sorted
	// by name; empty (and omitted) otherwise.
	Tenants []metrics.TenantStats `json:"tenants,omitempty"`
}

// MaxGroupGap returns the largest leader–trailer distance across the
// sample's groups, or 0 with none.
func (s Sample) MaxGroupGap() int {
	max := 0
	for _, g := range s.Groups {
		if g.GapPages > max {
			max = g.GapPages
		}
	}
	return max
}

// Rates is the delta-encoding of two consecutive samples: every monotonic
// counter becomes a rate over the elapsed interval, which is how drift
// (a hit rate sagging at t=40s, a coalesce rate collapsing after a split)
// becomes visible without any extra instrumentation on the hot paths.
type Rates struct {
	// Interval is the elapsed time between the two samples.
	Interval time.Duration `json:"interval"`

	PagesPerSec     float64 `json:"pages_per_sec"`
	HitsPerSec      float64 `json:"hits_per_sec"`
	MissesPerSec    float64 `json:"misses_per_sec"`
	EvictionsPerSec float64 `json:"evictions_per_sec"`
	CoalescedPerSec float64 `json:"coalesced_per_sec"`
	// BatchesPerSec is the push-delivery batch acceptance rate; zero (and
	// omitted) for pull-mode runs.
	BatchesPerSec float64 `json:"batches_per_sec,omitempty"`

	// HitRate is the interval's pool hit fraction (delta hits over delta
	// pages), NaN-free: 0 when no page was read in the interval.
	HitRate float64 `json:"hit_rate"`
	// ThrottleDuty is the fraction of the interval spent in SSM-inserted
	// waits, summed over all scans (so with 4 scans throttled the whole
	// interval it reads 4.0).
	ThrottleDuty float64 `json:"throttle_duty"`
}

// Delta computes the rates from prev to s. A non-positive elapsed interval
// (identical or reordered samples) returns zero Rates.
func (s Sample) Delta(prev Sample) Rates {
	dt := s.At - prev.At
	if dt <= 0 {
		return Rates{}
	}
	secs := dt.Seconds()
	per := func(now, then int64) float64 { return float64(now-then) / secs }

	var evNow, evThen int64
	for _, p := range s.Pools {
		evNow += p.Stats.Evictions
	}
	for _, p := range prev.Pools {
		evThen += p.Stats.Evictions
	}

	r := Rates{
		Interval:        dt,
		PagesPerSec:     per(s.Counters.PagesRead, prev.Counters.PagesRead),
		HitsPerSec:      per(s.Counters.Hits, prev.Counters.Hits),
		MissesPerSec:    per(s.Counters.Misses, prev.Counters.Misses),
		EvictionsPerSec: per(evNow, evThen),
		CoalescedPerSec: per(s.Counters.ReadsCoalesced, prev.Counters.ReadsCoalesced),
		BatchesPerSec:   per(s.Counters.BatchesPushed, prev.Counters.BatchesPushed),
		ThrottleDuty:    (s.Counters.ThrottleWait - prev.Counters.ThrottleWait).Seconds() / secs,
	}
	if dp := s.Counters.PagesRead - prev.Counters.PagesRead; dp > 0 {
		r.HitRate = float64(s.Counters.Hits-prev.Counters.Hits) / float64(dp)
	}
	if math.IsNaN(r.ThrottleDuty) || r.ThrottleDuty < 0 {
		r.ThrottleDuty = 0
	}
	return r
}

// DefaultInterval is the sampling cadence Start uses when none was
// configured: frequent enough to see drift, cheap enough to forget about
// (one sample costs a few microseconds; see BenchmarkSampleNow).
const DefaultInterval = 100 * time.Millisecond

// DefaultRingSamples bounds the in-memory sample ring: at the default
// interval it retains the last minute of history.
const DefaultRingSamples = 600

// Sampler periodically snapshots the sources into a bounded ring. Create
// one with NewSampler, Start it for ticker-driven sampling (or call
// SampleNow from your own cadence), and Stop it when the run ends; the ring
// stays readable after Stop.
type Sampler struct {
	src      Sources
	interval time.Duration
	clock    func() time.Duration

	mu   sync.Mutex
	ring []Sample // circular, ring[(seq-1)%cap] is sample seq
	seq  uint64   // samples taken so far
	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a stopped sampler over src. interval <= 0 picks
// DefaultInterval; ringSamples <= 0 picks DefaultRingSamples. The sampler's
// clock starts at its creation.
func NewSampler(src Sources, interval time.Duration, ringSamples int) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if ringSamples <= 0 {
		ringSamples = DefaultRingSamples
	}
	w := new(vclock.Wall)
	w.Now() // pin the epoch to creation time
	return &Sampler{
		src:      src,
		interval: interval,
		clock:    w.Now,
		ring:     make([]Sample, 0, ringSamples),
	}
}

// SetClock substitutes the sample timestamp source; for deterministic
// tests. Call before Start.
func (s *Sampler) SetClock(fn func() time.Duration) { s.clock = fn }

// Interval returns the configured sampling interval.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Start launches the ticker-driven sampling goroutine. It panics if called
// twice without a Stop, mirroring trace.Tracer.Start.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		panic("telemetry: Sampler.Start called twice")
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.SampleNow()
		case <-stop:
			return
		}
	}
}

// Stop halts the sampling goroutine and takes one final sample, so the ring
// always ends with the run's last state. Stopping a never-started or
// already-stopped sampler just takes the sample.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.SampleNow()
}

// SampleNow reads every source, appends the sample to the ring (evicting
// the oldest when full), and returns it.
func (s *Sampler) SampleNow() Sample {
	smp := s.read()

	s.mu.Lock()
	s.seq++
	smp.Seq = s.seq
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, smp)
	} else {
		s.ring[int((s.seq-1)%uint64(cap(s.ring)))] = smp
	}
	s.mu.Unlock()
	return smp
}

// read collects one sample from the sources without touching the ring.
func (s *Sampler) read() Sample {
	smp := Sample{At: s.clock()}
	if s.src.Collector != nil {
		smp.Counters = s.src.Collector.Snapshot()
		smp.PrefetchQueueDepth = smp.Counters.PrefetchQueueDepth()
	}
	for _, ps := range s.src.Pools {
		sample := PoolSample{Name: ps.Name, Capacity: ps.Capacity, Policy: ps.Policy, Translation: ps.Translation}
		if ps.Shards != nil {
			for _, st := range ps.Shards() {
				sample.Stats.Add(st)
			}
		}
		if ps.Occupancy != nil {
			sample.Occupancy = ps.Occupancy()
		}
		smp.Pools = append(smp.Pools, sample)
	}
	if s.src.Tenants != nil {
		smp.Tenants = s.src.Tenants()
	}
	if s.src.Sharing != nil {
		snap := s.src.Sharing()
		smp.ScansActive = len(snap.Scans)
		smp.ScansDetached = snap.DetachedScans()
		for _, g := range snap.Groups {
			smp.Groups = append(smp.Groups, GroupSample{
				Table:    int64(g.Table),
				Members:  len(g.Members),
				GapPages: g.GapPages(),
			})
		}
	}
	return smp
}

// Samples returns a copy of the retained samples, oldest first.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.ring))
	if len(s.ring) < cap(s.ring) {
		return append(out, s.ring...)
	}
	head := int(s.seq % uint64(cap(s.ring))) // oldest sample's slot
	out = append(out, s.ring[head:]...)
	return append(out, s.ring[:head]...)
}

// Last returns the most recent sample, if any was taken.
func (s *Sampler) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seq == 0 {
		return Sample{}, false
	}
	return s.ring[int((s.seq-1)%uint64(cap(s.ring)))], true
}

// Taken returns how many samples were taken over the sampler's lifetime
// (>= len(Samples()); the ring only retains the most recent ones).
func (s *Sampler) Taken() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}
