package telemetry

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"scanshare/internal/metrics"
	"scanshare/internal/trace"
)

// readDump loads one flight dump as text.
func readDump(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

// TestSpanRingOverflowDroppedCount is the regression test for the dropped-
// event accounting chain: overflow the trace ring with span events, then
// check the count survives into the collector snapshot and the Prometheus
// exposition as scanshare_trace_dropped_total.
func TestSpanRingOverflowDroppedCount(t *testing.T) {
	const ringSize = 64
	const spans = 1000 // 2000 events against 64 slots
	tr := trace.NewTracerSize(nil, ringSize)
	tr.Attach(&trace.Recorder{}) // enable; no Start, so nothing drains
	root := tr.Root()
	for i := 0; i < spans; i++ {
		tr.EmitSpan(root, trace.SpanRead, 1, 1, time.Microsecond)
	}
	// Single-threaded with no consumer the arithmetic is exact: every push
	// past the ring's capacity is dropped.
	wantDropped := uint64(2*spans - ringSize)
	if got := tr.Dropped(); got != wantDropped {
		t.Fatalf("Dropped() = %d, want %d", got, wantDropped)
	}

	col := new(metrics.Collector)
	col.SetTraceDropped(int64(tr.Dropped()))
	if got := col.Snapshot().TraceDropped; got != int64(wantDropped) {
		t.Fatalf("collector TraceDropped = %d, want %d", got, wantDropped)
	}
	// Syncs are monotonic: a stale lower observation must not regress the
	// counter (concurrent runs sync the same tracer at different times).
	col.SetTraceDropped(5)
	if got := col.Snapshot().TraceDropped; got != int64(wantDropped) {
		t.Fatalf("stale sync regressed TraceDropped to %d", got)
	}

	var buf bytes.Buffer
	WriteMetrics(&buf, Sources{Collector: col})
	want := fmt.Sprintf("scanshare_trace_dropped_total %d", wantDropped)
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q", want)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpanSLOBreachFlightDump checks the latency SLO satellite: the first
// tenant p99 queue-wait breach dumps one flight record, a sustained breach
// does not dump again, and a second tenant crossing later gets its own dump.
func TestSpanSLOBreachFlightDump(t *testing.T) {
	dir := t.TempDir()
	fast := new(metrics.TenantCollector)
	slow := new(metrics.TenantCollector)
	fast.Admitted(time.Millisecond)
	breached := false
	tenants := func() []metrics.TenantStats {
		out := []metrics.TenantStats{fast.Snapshot("fast")}
		if breached {
			out = append(out, slow.Snapshot("slow"))
		}
		return out
	}

	f := &FlightRecorder{
		Dir:          dir,
		Prefix:       "slo",
		Stamp:        fixedStamp,
		QueueWaitSLO: 100 * time.Millisecond,
		Tenants:      tenants,
	}
	// Below threshold: no dump.
	paths, err := f.CheckSLO()
	if err != nil || len(paths) != 0 {
		t.Fatalf("pre-breach CheckSLO = %v, %v", paths, err)
	}

	// slow crosses the SLO: exactly one dump, reason naming the tenant.
	breached = true
	slow.Admitted(250 * time.Millisecond)
	paths, err = f.CheckSLO()
	if err != nil || len(paths) != 1 {
		t.Fatalf("breach CheckSLO = %v, %v", paths, err)
	}
	data, err := readDump(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "slo-breach: tenant slow") || !strings.Contains(data, FlightSchema) {
		t.Errorf("dump missing breach reason or schema:\n%s", data)
	}

	// Sustained breach: the latch holds, no second artifact.
	for i := 0; i < 3; i++ {
		if paths, _ := f.CheckSLO(); len(paths) != 0 {
			t.Fatalf("check %d re-dumped %v for a latched tenant", i, paths)
		}
	}

	// A different tenant breaching later still triggers its own dump.
	fast.Admitted(300 * time.Millisecond)
	paths, err = f.CheckSLO()
	if err != nil || len(paths) != 1 {
		t.Fatalf("second-tenant CheckSLO = %v, %v", paths, err)
	}
	if data, err := readDump(paths[0]); err != nil || !strings.Contains(data, "tenant fast") {
		t.Errorf("second dump = %v, %v", data, err)
	}

	// An unarmed recorder never dumps.
	idle := &FlightRecorder{Dir: dir, Tenants: tenants}
	if paths, _ := idle.CheckSLO(); len(paths) != 0 {
		t.Errorf("unarmed recorder dumped %v", paths)
	}
}
