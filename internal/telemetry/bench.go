package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"scanshare/internal/metrics"
)

// BenchSchema identifies the persisted benchmark-result format. Readers
// reject other schemas outright rather than guessing at fields, so the
// trajectory of BENCH_*.json files at the repo root stays comparable (or
// fails loudly) as the format evolves.
const BenchSchema = "scanshare-bench/1"

// BenchParams records the knobs a benchmark ran with, so a comparator (or
// a human reading the trajectory) can tell a regression from a changed
// workload.
type BenchParams struct {
	Pages       int           `json:"pages"`
	Scans       int           `json:"scans"`
	Workers     int           `json:"workers"`
	PoolPages   int           `json:"pool_pages"`
	Shards      int           `json:"shards"`
	Policy      string        `json:"policy,omitempty"`      // pool replacement policy; "" means priority-lru
	Translation string        `json:"translation,omitempty"` // pool page translation; "" means map
	PageDelay   time.Duration `json:"page_delay_ns"`
	ReadDelay   time.Duration `json:"read_delay_ns"`
	Coalescing  bool          `json:"coalescing"`
	// Push records that the run used push-based delivery (one reader per
	// scan group feeding subscriber channels) instead of pull-mode group
	// scans; false and omitted for pull runs.
	Push bool `json:"push,omitempty"`
	// Spans records that the run emitted causal span events into the trace
	// ring (the tracing-overhead A/B pivots on this); false and omitted
	// when the span layer was off.
	Spans bool `json:"spans,omitempty"`
}

// HistSummary is a latency distribution flattened for JSON: integer
// nanoseconds, schema-stable field names.
type HistSummary struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// SummarizeHist flattens a histogram snapshot into the persisted shape.
func SummarizeHist(st metrics.HistogramStats) HistSummary {
	return HistSummary{
		Count:  st.Count,
		MeanNS: int64(st.Mean()),
		P50NS:  int64(st.P50),
		P90NS:  int64(st.P90),
		P99NS:  int64(st.P99),
		MaxNS:  int64(st.Max),
	}
}

// BenchResult is one benchmark run, persisted as schema-versioned JSON.
type BenchResult struct {
	Schema     string      `json:"schema"`
	Name       string      `json:"name"`
	GitRev     string      `json:"git_rev,omitempty"`
	RecordedAt string      `json:"recorded_at,omitempty"` // RFC3339
	Params     BenchParams `json:"params"`

	WallSeconds float64 `json:"wall_seconds"`
	PagesRead   int64   `json:"pages_read"`
	PagesPerSec float64 `json:"pages_per_sec"`
	HitRatio    float64 `json:"hit_ratio"`

	ThrottleEvents      int64   `json:"throttle_events"`
	ThrottleWaitSeconds float64 `json:"throttle_wait_seconds"`
	ReadsCoalesced      int64   `json:"reads_coalesced"`
	Evictions           int64   `json:"evictions"`
	// Optimistic read-path counters; zero (and omitted) under map
	// translation.
	OptimisticHits      int64 `json:"optimistic_hits,omitempty"`
	OptimisticRetries   int64 `json:"optimistic_retries,omitempty"`
	OptimisticFallbacks int64 `json:"optimistic_fallbacks,omitempty"`

	// Push-delivery counters; zero and omitted for pull-mode runs.
	BatchesPushed    int64 `json:"batches_pushed,omitempty"`
	SubscriberStalls int64 `json:"subscriber_stalls,omitempty"`
	PushDemotions    int64 `json:"push_demotions,omitempty"`
	SharedAggFolds   int64 `json:"shared_agg_folds,omitempty"`

	// Serve-mode admission counters (scanshare-serve / bench -serve-clients);
	// zero and omitted for plain realtime runs. ShedRate is
	// Shed / (Admitted + Shed): the fraction of requests turned away.
	RequestsAdmitted int64   `json:"requests_admitted,omitempty"`
	RequestsShed     int64   `json:"requests_shed,omitempty"`
	ShedRate         float64 `json:"shed_rate,omitempty"`

	// BreakdownSeconds sums the per-scan latency-attribution counters
	// (throttle, pool-wait, read, delivery, fold) across the run, in
	// seconds; absent when nothing was measured. The keys match the span
	// assembler's component names so offline trees and persisted bench
	// results speak the same vocabulary.
	BreakdownSeconds map[string]float64 `json:"breakdown_seconds,omitempty"`

	// TraceDropped counts events the trace ring discarded during the run;
	// zero and omitted when tracing was off or nothing was lost.
	TraceDropped int64 `json:"trace_dropped,omitempty"`

	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// WriteBench writes r as indented JSON to path (atomically enough for a
// build artifact: full truncate-and-write).
func WriteBench(path string, r BenchResult) error {
	r.Schema = BenchSchema
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBench reads and validates one persisted benchmark result.
func ReadBench(path string) (BenchResult, error) {
	var r BenchResult
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != BenchSchema {
		return r, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, BenchSchema)
	}
	return r, nil
}

// Regression is one comparator finding.
type Regression struct {
	Metric string  // what regressed
	Old    float64 // baseline value
	New    float64 // current value
	Detail string  // human-readable one-liner
}

func (r Regression) String() string { return r.Detail }

// CompareBench checks new against old and returns the regressions found,
// empty when new is acceptable. tolerance is the allowed fractional
// throughput drop (0.10 = new may be up to 10% slower).
//
// Malformed inputs are findings, not silent passes: a schema mismatch, a
// NaN/Inf rate (the fingerprint of a zero-duration run), or a baseline with
// zero throughput each produce an explicit diagnostic — every float
// comparison against NaN is false, so without these gates a corrupt result
// would sail through the tripwire looking healthy. When either side's rates
// are unusable the rate comparisons are skipped (their outcome would be
// noise), but the diagnostics still make the overall comparison fail.
//
// For well-formed inputs, three checks in decreasing order of "this is
// definitely wrong":
//
//   - pages_read must match to within 1%: it is deterministic for a fixed
//     workload, so a drift means the two results ran different workloads
//     and the throughput comparison would be meaningless.
//   - pages_per_sec must not drop more than tolerance.
//   - hit_ratio must not drop more than 0.10 absolute: locality is the
//     paper's whole point, so a collapse is flagged even if raw throughput
//     happens to survive it.
func CompareBench(old, new BenchResult, tolerance float64) []Regression {
	var regs []Regression

	if old.Schema != new.Schema {
		regs = append(regs, Regression{
			Metric: "schema",
			Detail: fmt.Sprintf("schema mismatch: baseline %q vs current %q — results are not comparable",
				old.Schema, new.Schema),
		})
	}

	rates := []struct {
		side  string
		which string
		v     float64
	}{
		{"baseline", "pages_per_sec", old.PagesPerSec},
		{"current", "pages_per_sec", new.PagesPerSec},
		{"baseline", "hit_ratio", old.HitRatio},
		{"current", "hit_ratio", new.HitRatio},
	}
	ratesOK := true
	for _, r := range rates {
		if math.IsNaN(r.v) || math.IsInf(r.v, 0) {
			ratesOK = false
			regs = append(regs, Regression{
				Metric: r.which,
				Old:    old.PagesPerSec,
				New:    new.PagesPerSec,
				Detail: fmt.Sprintf("%s %s is %v — zero-duration or corrupt run; rate comparison skipped",
					r.side, r.which, r.v),
			})
		}
	}
	if ratesOK && old.PagesPerSec <= 0 {
		ratesOK = false
		regs = append(regs, Regression{
			Metric: "pages_per_sec",
			Old:    old.PagesPerSec,
			New:    new.PagesPerSec,
			Detail: fmt.Sprintf("baseline throughput is %.0f pages/s — nothing to compare against (empty or failed baseline run?)",
				old.PagesPerSec),
		})
	}

	if old.PagesRead > 0 {
		drift := math.Abs(float64(new.PagesRead-old.PagesRead)) / float64(old.PagesRead)
		if drift > 0.01 {
			regs = append(regs, Regression{
				Metric: "pages_read",
				Old:    float64(old.PagesRead),
				New:    float64(new.PagesRead),
				Detail: fmt.Sprintf("pages_read drifted %.1f%% (%d -> %d): results are not the same workload",
					drift*100, old.PagesRead, new.PagesRead),
			})
		}
	}

	if ratesOK && new.PagesPerSec < old.PagesPerSec*(1-tolerance) {
		drop := 1 - new.PagesPerSec/old.PagesPerSec
		regs = append(regs, Regression{
			Metric: "pages_per_sec",
			Old:    old.PagesPerSec,
			New:    new.PagesPerSec,
			Detail: fmt.Sprintf("throughput dropped %.1f%% (%.0f -> %.0f pages/s, tolerance %.0f%%)",
				drop*100, old.PagesPerSec, new.PagesPerSec, tolerance*100),
		})
	}

	if ratesOK && old.HitRatio-new.HitRatio > 0.10 {
		regs = append(regs, Regression{
			Metric: "hit_ratio",
			Old:    old.HitRatio,
			New:    new.HitRatio,
			Detail: fmt.Sprintf("hit ratio dropped %.1f points (%.1f%% -> %.1f%%)",
				(old.HitRatio-new.HitRatio)*100, old.HitRatio*100, new.HitRatio*100),
		})
	}

	return regs
}
