package telemetry

import (
	"context"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/disk"
	"scanshare/internal/metrics"
	"scanshare/internal/realtime"
)

func TestOccupancySkew(t *testing.T) {
	cases := []struct {
		name string
		occ  []int
		want float64
	}{
		{"empty", nil, 0},
		{"single", []int{7}, 0},
		{"balanced", []int{5, 5, 5, 5}, 0},
		{"all-empty", []int{0, 0}, 0},
		{"one-hot", []int{8, 0}, 1},      // max 8, mean 4
		{"mild", []int{6, 2, 4, 4}, 0.5}, // max 6, mean 4
	}
	for _, tc := range cases {
		got := PoolSample{Occupancy: tc.occ}.OccupancySkew()
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: skew = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSampleDelta(t *testing.T) {
	prev := Sample{
		At: 1 * time.Second,
		Counters: metrics.CollectorStats{
			PagesRead: 100, Hits: 60, Misses: 40,
			ReadsCoalesced: 10, ThrottleWait: 100 * time.Millisecond,
		},
		Pools: []PoolSample{{Stats: buffer.Stats{Evictions: 5}}},
	}
	cur := Sample{
		At: 3 * time.Second,
		Counters: metrics.CollectorStats{
			PagesRead: 300, Hits: 210, Misses: 90,
			ReadsCoalesced: 30, ThrottleWait: 600 * time.Millisecond,
		},
		Pools: []PoolSample{{Stats: buffer.Stats{Evictions: 9}}},
	}
	r := cur.Delta(prev)
	if r.Interval != 2*time.Second {
		t.Fatalf("Interval = %v", r.Interval)
	}
	if r.PagesPerSec != 100 || r.HitsPerSec != 75 || r.MissesPerSec != 25 {
		t.Errorf("rates = %v/%v/%v pages/hits/misses per sec, want 100/75/25",
			r.PagesPerSec, r.HitsPerSec, r.MissesPerSec)
	}
	if r.EvictionsPerSec != 2 {
		t.Errorf("EvictionsPerSec = %v, want 2", r.EvictionsPerSec)
	}
	if r.CoalescedPerSec != 10 {
		t.Errorf("CoalescedPerSec = %v, want 10", r.CoalescedPerSec)
	}
	if r.HitRate != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", r.HitRate)
	}
	if r.ThrottleDuty != 0.25 {
		t.Errorf("ThrottleDuty = %v, want 0.25", r.ThrottleDuty)
	}

	// Degenerate cases must stay NaN-free and non-panicking.
	if r := prev.Delta(prev); r != (Rates{}) {
		t.Errorf("self-delta = %+v, want zero", r)
	}
	if r := prev.Delta(cur); r != (Rates{}) {
		t.Errorf("reversed delta = %+v, want zero", r)
	}
	idle := Sample{At: 2 * time.Second, Counters: prev.Counters}
	if r := idle.Delta(prev); r.HitRate != 0 {
		t.Errorf("idle-interval HitRate = %v, want 0", r.HitRate)
	}
}

// TestSamplerRing proves the ring is bounded, evicts oldest-first, and that
// Samples returns contiguous ascending sequence numbers after wrapping.
func TestSamplerRing(t *testing.T) {
	col := new(metrics.Collector)
	s := NewSampler(Sources{Collector: col}, time.Hour, 4)
	var now time.Duration
	s.SetClock(func() time.Duration { now += time.Millisecond; return now })

	for i := 0; i < 10; i++ {
		s.SampleNow()
	}
	if got := s.Taken(); got != 10 {
		t.Fatalf("Taken = %d, want 10", got)
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("len(Samples) = %d, want ring cap 4", len(samples))
	}
	for i, smp := range samples {
		if want := uint64(7 + i); smp.Seq != want {
			t.Errorf("sample %d: Seq = %d, want %d", i, smp.Seq, want)
		}
		if i > 0 && samples[i].At <= samples[i-1].At {
			t.Errorf("sample %d: At %v not after %v", i, samples[i].At, samples[i-1].At)
		}
	}
	last, ok := s.Last()
	if !ok || last.Seq != 10 {
		t.Fatalf("Last = %+v, %v; want seq 10", last, ok)
	}
}

func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(Sources{}, 0, 0)
	s.Stop() // must not hang or panic; takes the final sample
	if s.Taken() != 1 {
		t.Fatalf("Taken = %d after bare Stop, want 1", s.Taken())
	}
}

// monotonicInt64 lists the counter fields that must never decrease between
// consecutive samples of one run.
func monotonicFields(c metrics.CollectorStats) []int64 {
	return []int64{
		c.PagesRead, c.Hits, c.Misses, c.BusyRetries,
		c.ScansStarted, c.ScansEnded, c.ScansStopped,
		c.ThrottleEvents, int64(c.ThrottleWait),
		c.PrefetchEnqueued, c.PrefetchPicked, c.PrefetchDropped,
		c.PrefetchFilled, c.PrefetchFailed,
		c.ReadRetries, c.ReadTimeouts, c.PagesFailed,
		c.ScanDetaches, c.ScanRejoins,
		c.ReadsCoalesced, c.CoalescedFailures,
		c.PageReadLatency.Count, c.ThrottleWaitDist.Count, c.PrefetchQueueDelay.Count,
	}
}

// testStore serves synthetic pages; first/last bytes encode the page ID
// (the same shape the realtime runner tests use).
type testStore struct{ pageBytes int }

func (s testStore) ReadPage(pid disk.PageID) ([]byte, error) {
	n := s.pageBytes
	if n < 2 {
		n = 2
	}
	data := make([]byte, n)
	data[0] = byte(pid)
	data[n-1] = byte(pid >> 8)
	return data, nil
}

// TestSamplerConcurrentMonotonic drives the sampler at a 1ms interval
// against 20 concurrent realtime scans and asserts that every monotonic
// counter never decreases between consecutive samples, that the derived
// prefetch queue depth never goes negative, and that the ring stays
// bounded. Run under -race this is also the proof that sampling the live
// sources is data-race-free with scan workers writing them.
func TestSamplerConcurrentMonotonic(t *testing.T) {
	const (
		tablePages = 300
		poolPages  = 150
		scans      = 20
	)
	pool := buffer.MustNewPool(poolPages)
	cfg := core.DefaultConfig(poolPages)
	cfg.PrefetchExtentPages = 8
	cfg.MinSharePages = 4
	cfg.MaxWaitPerUpdate = 300 * time.Microsecond
	mgr := core.MustNewManager(cfg)
	col := new(metrics.Collector)

	r, err := realtime.NewRunner(realtime.Config{
		Pool:            pool,
		Manager:         mgr,
		Store:           testStore{pageBytes: 64},
		Collector:       col,
		PrefetchWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	s := NewSampler(Sources{
		Collector: col,
		Pools: []PoolSource{{
			Name:      "test",
			Capacity:  pool.Capacity(),
			Shards:    pool.ShardStats,
			Occupancy: pool.ShardOccupancy,
		}},
		Sharing: mgr.Snapshot,
	}, time.Millisecond, 4096)
	s.Start()

	specs := make([]realtime.ScanSpec, scans)
	for i := range specs {
		specs[i] = realtime.ScanSpec{
			Table:      1,
			TablePages: tablePages,
			PageID:     func(pageNo int) disk.PageID { return 1000 + disk.PageID(pageNo) },
			StartDelay: time.Duration(i) * 300 * time.Microsecond,
			PageDelay:  time.Duration(10+5*(i%4)) * time.Microsecond,
		}
	}
	if _, err := r.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	s.Stop()

	samples := s.Samples()
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want at least start+final", len(samples))
	}
	if len(samples) > 4096 {
		t.Fatalf("ring exceeded its bound: %d samples", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		prev, cur := samples[i-1], samples[i]
		if cur.Seq != prev.Seq+1 {
			t.Fatalf("sample %d: seq %d after %d, want contiguous", i, cur.Seq, prev.Seq)
		}
		pf, cf := monotonicFields(prev.Counters), monotonicFields(cur.Counters)
		for j := range cf {
			if cf[j] < pf[j] {
				t.Errorf("sample seq %d: monotonic counter %d decreased %d -> %d",
					cur.Seq, j, pf[j], cf[j])
			}
		}
		if cur.PrefetchQueueDepth < 0 {
			t.Errorf("sample seq %d: negative prefetch queue depth %d", cur.Seq, cur.PrefetchQueueDepth)
		}
		for pi := range cur.Pools {
			ps, cs := prev.Pools[pi].Stats, cur.Pools[pi].Stats
			if cs.LogicalReads < ps.LogicalReads || cs.Hits < ps.Hits ||
				cs.Misses < ps.Misses || cs.Evictions < ps.Evictions {
				t.Errorf("sample seq %d: pool %q counters decreased", cur.Seq, cur.Pools[pi].Name)
			}
		}
	}
	final := samples[len(samples)-1]
	if final.Counters.PagesRead != int64(scans*tablePages) {
		t.Errorf("final sample PagesRead = %d, want %d", final.Counters.PagesRead, scans*tablePages)
	}
	if final.ScansActive != 0 {
		t.Errorf("final sample ScansActive = %d, want 0 after the run", final.ScansActive)
	}
}

// BenchmarkSampleNow measures the cost of one sample against live sources —
// the number behind the "<=2% overhead at the default 100ms interval" claim
// in EXPERIMENTS.md (a few microseconds per sample, so ~10^-5 duty).
func BenchmarkSampleNow(b *testing.B) {
	pool := buffer.MustNewPoolShards(256, 8)
	mgr := core.MustNewManager(core.DefaultConfig(256))
	col := new(metrics.Collector)
	for i := 0; i < 1000; i++ {
		col.PageHit()
		col.PageReadTimed(time.Duration(i) * time.Microsecond)
	}
	s := NewSampler(Sources{
		Collector: col,
		Pools: []PoolSource{{
			Name:      "bench",
			Capacity:  pool.Capacity(),
			Shards:    pool.ShardStats,
			Occupancy: pool.ShardOccupancy,
		}},
		Sharing: mgr.Snapshot,
	}, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleNow()
	}
}
