package telemetry

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scanshare/internal/buffer"
	"scanshare/internal/core"
	"scanshare/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenSources builds a fully deterministic Sources: a collector driven by
// a fixed op script, two fake pools with hand-set counters, and a
// hand-built sharing snapshot. No wall clock anywhere, so the exposition
// is byte-stable.
func goldenSources() Sources {
	col := new(metrics.Collector)
	for i := 0; i < 60; i++ {
		col.PageHit()
	}
	for i := 0; i < 40; i++ {
		col.PageMiss()
		col.PageReadTimed(2 * time.Millisecond)
	}
	col.BusyRetry()
	col.ScanStarted()
	col.ScanStarted()
	col.ScanEnded(false)
	col.Throttled(10 * time.Millisecond)
	col.Throttled(30 * time.Millisecond)
	col.PrefetchEnqueued()
	col.PrefetchEnqueued()
	col.PrefetchEnqueued()
	col.PrefetchPicked()
	col.PrefetchDelayed(500 * time.Microsecond)
	col.PrefetchFilled()
	col.ReadCoalesced()
	col.ScanDetached()
	col.ScanRejoined()
	col.ScanFeedRegistered()
	col.ScanFeedUpdated()
	col.ScanFeedUpdated()

	mainStats := buffer.Stats{LogicalReads: 100, Hits: 60, Misses: 40, Evictions: 12}
	mainStats.EvictionsByPr[buffer.PriorityEvict] = 9
	mainStats.EvictionsByPr[buffer.PriorityLow] = 3
	sideStats := buffer.Stats{LogicalReads: 10, Hits: 10}

	snap := core.Snapshot{
		Scans: []core.ScanInfo{
			{ID: 1, Table: 7, Position: 120},
			{ID: 2, Table: 7, Position: 100},
			{ID: 3, Table: 9, Position: 5, Detached: true},
		},
		Groups: []core.GroupInfo{
			{Table: 7, Members: []core.ScanID{2, 1}, Trailer: 2, Leader: 1, ExtentPages: 20},
		},
	}

	return Sources{
		Collector: col,
		Pools: []PoolSource{
			{
				Name:     "", // default pool: label must render as "default"
				Capacity: 128,
				Shards: func() []buffer.Stats {
					half := mainStats
					half.LogicalReads, half.Hits, half.Misses = 50, 30, 20
					half.Evictions = 6
					half.EvictionsByPr[buffer.PriorityEvict] = 4
					half.EvictionsByPr[buffer.PriorityLow] = 2
					other := mainStats
					other.LogicalReads, other.Hits, other.Misses = 50, 30, 20
					other.Evictions = 6
					other.EvictionsByPr[buffer.PriorityEvict] = 5
					other.EvictionsByPr[buffer.PriorityLow] = 1
					return []buffer.Stats{half, other}
				},
				Occupancy: func() []int { return []int{70, 50} },
			},
			{
				Name:      "side",
				Capacity:  32,
				Policy:    buffer.PolicyPredictive,
				Shards:    func() []buffer.Stats { return []buffer.Stats{sideStats} },
				Occupancy: func() []int { return []int{10} },
			},
		},
		Sharing: func() core.Snapshot { return snap },
	}
}

// TestWriteMetricsGolden pins the whole Prometheus exposition byte-for-byte.
// Regenerate with: go test ./internal/telemetry -run Golden -update
func TestWriteMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, goldenSources())
	got := buf.Bytes()

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl, wl := strings.Split(string(got), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("exposition differs from golden at line %d:\n  got:  %q\n  want: %q\n(run with -update after a reviewed format change)", i+1, g, w)
			}
		}
		t.Fatal("exposition differs from golden (length only)")
	}
}

// TestWriteMetricsFormat sanity-checks structural properties of the text
// format independent of the golden bytes: every sample line's metric is
// declared by HELP+TYPE lines first, and key families are present.
func TestWriteMetricsFormat(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, goldenSources())
	declared := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				t.Fatalf("malformed comment line %q", line)
			}
			declared[fields[2]] = true
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !declared[name] && !declared[base] {
			t.Errorf("sample line %q has no preceding HELP/TYPE declaration", line)
		}
	}
	for _, want := range []string{
		"scanshare_pages_read_total",
		"scanshare_prefetch_queue_depth",
		"scanshare_page_read_latency_seconds",
		"scanshare_pool_hits_total",
		"scanshare_pool_shard_occupancy_pages",
		"scanshare_group_max_gap_pages",
	} {
		if !declared[want] {
			t.Errorf("missing metric family %s", want)
		}
	}
}

// TestHandler exercises the HTTP wrapper: content type and a 200 with the
// same body WriteMetrics renders.
func TestHandler(t *testing.T) {
	src := goldenSources()
	rr := httptest.NewRecorder()
	Handler(src).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var want bytes.Buffer
	WriteMetrics(&want, src)
	if rr.Body.String() != want.String() {
		t.Fatal("handler body differs from WriteMetrics output")
	}
}
