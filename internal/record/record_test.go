package record

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{"id", KindInt64},
		Field{"price", KindFloat64},
		Field{"comment", KindString},
		Field{"shipdate", KindDate},
	)
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Field{"", KindInt64}); err == nil {
		t.Error("empty field name accepted")
	}
	if _, err := NewSchema(Field{"a", Kind(42)}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := NewSchema(Field{"a", KindInt64}, Field{"a", KindString}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.NumFields() != 4 {
		t.Fatalf("NumFields = %d", s.NumFields())
	}
	if s.Field(2).Name != "comment" {
		t.Errorf("Field(2) = %+v", s.Field(2))
	}
	i, err := s.Ordinal("shipdate")
	if err != nil || i != 3 {
		t.Errorf("Ordinal(shipdate) = %d, %v", i, err)
	}
	if _, err := s.Ordinal("nope"); err == nil {
		t.Error("Ordinal of missing field succeeded")
	}
	if s.MustOrdinal("price") != 1 {
		t.Error("MustOrdinal(price) != 1")
	}
	want := "(id bigint, price double, comment varchar, shipdate date)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
}

func TestMustOrdinalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustOrdinal of missing field did not panic")
		}
	}()
	testSchema(t).MustOrdinal("ghost")
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	in := Tuple{Int64(-42), Float64(3.25), String("hello, página"), Date(9131)}
	buf, err := Encode(nil, s, in)
	if err != nil {
		t.Fatal(err)
	}
	size, err := EncodedSize(s, in)
	if err != nil {
		t.Fatal(err)
	}
	if size != len(buf) {
		t.Errorf("EncodedSize = %d, Encode produced %d bytes", size, len(buf))
	}
	out, n, err := Decode(nil, s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("Decode consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

func TestEncodeValidatesArityAndKinds(t *testing.T) {
	s := testSchema(t)
	if _, err := Encode(nil, s, Tuple{Int64(1)}); err == nil {
		t.Error("short tuple accepted")
	}
	bad := Tuple{String("x"), Float64(1), String("y"), Date(0)}
	if _, err := Encode(nil, s, bad); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := EncodedSize(s, Tuple{Int64(1)}); err == nil {
		t.Error("EncodedSize accepted short tuple")
	}
	if _, err := EncodedSize(s, bad); err == nil {
		t.Error("EncodedSize accepted kind mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := testSchema(t)
	in := Tuple{Int64(7), Float64(1.5), String("abcdef"), Date(100)}
	buf, _ := Encode(nil, s, in)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := Decode(nil, s, buf[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(buf))
		}
	}
}

func TestDecodeConsumesExactlyOneTuple(t *testing.T) {
	s := testSchema(t)
	a := Tuple{Int64(1), Float64(2), String("first"), Date(3)}
	b := Tuple{Int64(4), Float64(5), String("second"), Date(6)}
	buf, _ := Encode(nil, s, a)
	buf, _ = Encode(buf, s, b)
	gotA, n, err := Decode(nil, s, buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, _, err := Decode(nil, s, buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotA, a) || !reflect.DeepEqual(gotB, b) {
		t.Error("consecutive decode mismatch")
	}
}

func TestDecodeReusesBuffer(t *testing.T) {
	s := testSchema(t)
	in := Tuple{Int64(1), Float64(2), String("x"), Date(3)}
	buf, _ := Encode(nil, s, in)
	scratch := make(Tuple, 0, 8)
	out, _, err := Decode(scratch, s, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &scratch[:1][0] {
		t.Error("Decode did not reuse the provided backing array")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(2), 0},
		{Int64(3), Int64(2), 1},
		{Date(10), Date(20), -1},
		{Float64(1.5), Float64(1.5), 0},
		{Float64(-1), Float64(1), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("b"), 0},
		{String("c"), String("b"), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%#v, %#v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cross-kind compare did not panic")
		}
	}()
	Compare(Int64(1), String("1"))
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindInt64: "bigint", KindFloat64: "double", KindString: "varchar", KindDate: "date", Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Errorf("Kind.String() = %q, want %q", k.String(), want)
		}
	}
}

func TestValueGoString(t *testing.T) {
	if got := Int64(5).GoString(); got != "5" {
		t.Errorf("Int64 GoString = %q", got)
	}
	if got := String("x").GoString(); got != `"x"` {
		t.Errorf("String GoString = %q", got)
	}
	if got := Date(12).GoString(); got != "date(12)" {
		t.Errorf("Date GoString = %q", got)
	}
	if !strings.Contains(Float64(1.5).GoString(), "1.5") {
		t.Errorf("Float64 GoString = %q", Float64(1.5).GoString())
	}
}

// TestRoundTripProperty checks Encode/Decode over random tuples, including
// large strings, NaN-adjacent floats, and extreme ints.
func TestRoundTripProperty(t *testing.T) {
	s := testSchema(t)
	f := func(id int64, price float64, comment string, days int64) bool {
		if math.IsNaN(price) {
			price = 0 // NaN != NaN would fail DeepEqual for the wrong reason
		}
		in := Tuple{Int64(id), Float64(price), String(comment), Date(days)}
		buf, err := Encode(nil, s, in)
		if err != nil {
			return false
		}
		out, n, err := Decode(nil, s, buf)
		return err == nil && n == len(buf) && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCompareIsAntisymmetricProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int64(a), Int64(b)) == -Compare(Int64(b), Int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(String(a), String(b)) == -Compare(String(b), String(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
