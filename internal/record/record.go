// Package record defines tuple schemas and a compact binary tuple codec.
//
// The storage engine stores real encoded tuples in heap pages so that a scan
// does the work a scan actually does: copy a page through the buffer pool,
// walk its slot directory, decode tuples, and evaluate predicates over typed
// values. That keeps the CPU/IO balance of the simulated queries honest —
// the paper's Q1-like queries are CPU-bound precisely because per-tuple
// expression work dominates.
//
// The encoding is little-endian and self-delimiting per field:
//
//	int64   -> 8 bytes
//	float64 -> 8 bytes (IEEE 754 bits)
//	date    -> 8 bytes (days since epoch, as int64)
//	string  -> uvarint length + bytes
//
// Schemas are flat and fixed per table; nullability is out of scope (the
// TPC-H columns the workload uses are all NOT NULL).
package record

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Kind enumerates field types.
type Kind int

// Supported field kinds.
const (
	KindInt64 Kind = iota
	KindFloat64
	KindString
	KindDate // stored as days since an arbitrary epoch
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "bigint"
	case KindFloat64:
		return "double"
	case KindString:
		return "varchar"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k is a defined kind.
func (k Kind) Valid() bool { return k >= KindInt64 && k <= KindDate }

// Field is one column of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of fields.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from fields. Field names must be unique and
// non-empty, and kinds valid.
func NewSchema(fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("record: empty schema")
	}
	s := &Schema{fields: append([]Field(nil), fields...), index: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("record: field %d has empty name", i)
		}
		if !f.Kind.Valid() {
			return nil, fmt.Errorf("record: field %q has invalid kind %d", f.Name, f.Kind)
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("record: duplicate field name %q", f.Name)
		}
		s.index[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema for known-good definitions; it panics on error.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the column count.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Ordinal returns the position of the named field, or an error.
func (s *Schema) Ordinal(name string) (int, error) {
	i, ok := s.index[name]
	if !ok {
		return 0, fmt.Errorf("record: no field %q in schema", name)
	}
	return i, nil
}

// MustOrdinal is Ordinal for known-present fields; it panics on error.
func (s *Schema) MustOrdinal(name string) int {
	i, err := s.Ordinal(name)
	if err != nil {
		panic(err)
	}
	return i
}

// String renders the schema as "(name type, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Value is a dynamically typed field value. Exactly the member selected by
// Kind is meaningful.
type Value struct {
	Kind Kind
	I    int64 // KindInt64 and KindDate
	F    float64
	S    string
}

// Int64 returns a bigint value.
func Int64(v int64) Value { return Value{Kind: KindInt64, I: v} }

// Float64 returns a double value.
func Float64(v float64) Value { return Value{Kind: KindFloat64, F: v} }

// String returns a varchar value.
func String(v string) Value { return Value{Kind: KindString, S: v} }

// Date returns a date value expressed as days since the epoch.
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }

// Compare orders two values of the same kind: -1, 0, or +1. Comparing
// different kinds panics; the executor only compares like with like.
func Compare(a, b Value) int {
	if a.Kind != b.Kind {
		panic(fmt.Sprintf("record: comparing %v with %v", a.Kind, b.Kind))
	}
	switch a.Kind {
	case KindInt64, KindDate:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	case KindFloat64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(a.S, b.S)
	default:
		panic(fmt.Sprintf("record: comparing invalid kind %d", a.Kind))
	}
}

// GoString renders the value for debugging.
func (v Value) GoString() string {
	switch v.Kind {
	case KindInt64:
		return fmt.Sprintf("%d", v.I)
	case KindDate:
		return fmt.Sprintf("date(%d)", v.I)
	case KindFloat64:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return fmt.Sprintf("%q", v.S)
	default:
		return fmt.Sprintf("Value{kind %d}", v.Kind)
	}
}

// Tuple is one row: values in schema order.
type Tuple []Value

// Encode appends the tuple's binary form to dst and returns the extended
// slice. The tuple must match the schema.
func Encode(dst []byte, s *Schema, t Tuple) ([]byte, error) {
	if len(t) != s.NumFields() {
		return nil, fmt.Errorf("record: tuple has %d values, schema has %d fields", len(t), s.NumFields())
	}
	for i, v := range t {
		want := s.Field(i).Kind
		if v.Kind != want {
			return nil, fmt.Errorf("record: field %q: value kind %v, want %v", s.Field(i).Name, v.Kind, want)
		}
		switch v.Kind {
		case KindInt64, KindDate:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I))
		case KindFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F))
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.S)))
			dst = append(dst, v.S...)
		}
	}
	return dst, nil
}

// EncodedSize returns the number of bytes Encode will produce for t.
func EncodedSize(s *Schema, t Tuple) (int, error) {
	if len(t) != s.NumFields() {
		return 0, fmt.Errorf("record: tuple has %d values, schema has %d fields", len(t), s.NumFields())
	}
	n := 0
	for i, v := range t {
		if v.Kind != s.Field(i).Kind {
			return 0, fmt.Errorf("record: field %q kind mismatch", s.Field(i).Name)
		}
		switch v.Kind {
		case KindInt64, KindDate, KindFloat64:
			n += 8
		case KindString:
			n += uvarintLen(uint64(len(v.S))) + len(v.S)
		}
	}
	return n, nil
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Decode parses one tuple of schema s from buf, reusing dst's backing array
// when it has capacity. It returns the tuple and the number of bytes
// consumed.
func Decode(dst Tuple, s *Schema, buf []byte) (Tuple, int, error) {
	t := dst[:0]
	off := 0
	for i := 0; i < s.NumFields(); i++ {
		f := s.Field(i)
		switch f.Kind {
		case KindInt64, KindDate:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated %s field %q", f.Kind, f.Name)
			}
			u := binary.LittleEndian.Uint64(buf[off:])
			t = append(t, Value{Kind: f.Kind, I: int64(u)})
			off += 8
		case KindFloat64:
			if off+8 > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated double field %q", f.Name)
			}
			u := binary.LittleEndian.Uint64(buf[off:])
			t = append(t, Float64(math.Float64frombits(u)))
			off += 8
		case KindString:
			n, vn := binary.Uvarint(buf[off:])
			if vn <= 0 {
				return nil, 0, fmt.Errorf("record: bad varchar length for field %q", f.Name)
			}
			off += vn
			if off+int(n) > len(buf) {
				return nil, 0, fmt.Errorf("record: truncated varchar field %q", f.Name)
			}
			t = append(t, String(string(buf[off:off+int(n)])))
			off += int(n)
		}
	}
	return t, off, nil
}
