// Package catalog is the engine's table registry. It assigns each table a
// stable numeric ID (the scan sharing manager identifies tables by ID, not by
// pointer, to stay decoupled from the storage layer) and serves the basic
// statistics — page and tuple counts — that stand in for the optimizer
// estimates the paper's SISCAN operators receive from the query compiler.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"scanshare/internal/heap"
)

// TableID identifies a registered table.
type TableID int

// Entry is a registered table with its ID.
type Entry struct {
	ID    TableID
	Table *heap.Table
}

// Catalog maps table names and IDs to tables. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	byName map[string]*Entry
	byID   []*Entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{byName: make(map[string]*Entry)}
}

// Register adds a table and returns its assigned ID. Table names must be
// unique.
func (c *Catalog) Register(t *heap.Table) (TableID, error) {
	if t == nil {
		return 0, fmt.Errorf("catalog: nil table")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[t.Name()]; dup {
		return 0, fmt.Errorf("catalog: table %q already registered", t.Name())
	}
	e := &Entry{ID: TableID(len(c.byID)), Table: t}
	c.byName[t.Name()] = e
	c.byID = append(c.byID, e)
	return e.ID, nil
}

// MustRegister is Register for known-good tables; it panics on error.
func (c *Catalog) MustRegister(t *heap.Table) TableID {
	id, err := c.Register(t)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the entry for the named table.
func (c *Catalog) Lookup(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q", name)
	}
	return e, nil
}

// ByID returns the entry with the given ID.
func (c *Catalog) ByID(id TableID) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if id < 0 || int(id) >= len(c.byID) {
		return nil, fmt.Errorf("catalog: no table with id %d", id)
	}
	return c.byID[id], nil
}

// Tables returns all entries sorted by name.
func (c *Catalog) Tables() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, len(c.byID))
	copy(out, c.byID)
	sort.Slice(out, func(i, j int) bool { return out[i].Table.Name() < out[j].Table.Name() })
	return out
}

// TotalPages returns the page count summed over all registered tables; the
// experiment harness sizes buffer pools as a fraction of it (the paper uses
// a bufferpool of about 5% of the database size).
func (c *Catalog) TotalPages() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, e := range c.byID {
		total += e.Table.NumPages()
	}
	return total
}
