package catalog

import (
	"fmt"
	"testing"
	"time"

	"scanshare/internal/disk"
	"scanshare/internal/heap"
	"scanshare/internal/record"
)

func makeTable(t *testing.T, dev *disk.Device, name string, rows int) *heap.Table {
	t.Helper()
	schema := record.MustSchema(record.Field{Name: "k", Kind: record.KindInt64})
	b, err := heap.NewBuilder(dev, name, schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := b.Append(record.Tuple{record.Int64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tbl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func testDevice() *disk.Device {
	return disk.MustNew(disk.Model{SeekTime: time.Millisecond, TransferPerPage: time.Microsecond, PageSize: 256}, 0)
}

func TestRegisterAndLookup(t *testing.T) {
	dev := testDevice()
	c := New()
	ta := makeTable(t, dev, "a", 10)
	tb := makeTable(t, dev, "b", 10)
	ida := c.MustRegister(ta)
	idb := c.MustRegister(tb)
	if ida == idb {
		t.Error("duplicate IDs assigned")
	}
	e, err := c.Lookup("a")
	if err != nil || e.Table != ta || e.ID != ida {
		t.Errorf("Lookup(a) = %+v, %v", e, err)
	}
	e, err = c.ByID(idb)
	if err != nil || e.Table != tb {
		t.Errorf("ByID = %+v, %v", e, err)
	}
}

func TestRegisterRejectsNilAndDuplicates(t *testing.T) {
	dev := testDevice()
	c := New()
	if _, err := c.Register(nil); err == nil {
		t.Error("nil table accepted")
	}
	c.MustRegister(makeTable(t, dev, "x", 5))
	if _, err := c.Register(makeTable(t, dev, "x", 5)); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestLookupMissing(t *testing.T) {
	c := New()
	if _, err := c.Lookup("ghost"); err == nil {
		t.Error("missing lookup succeeded")
	}
	if _, err := c.ByID(0); err == nil {
		t.Error("missing ByID succeeded")
	}
	if _, err := c.ByID(-1); err == nil {
		t.Error("negative ByID succeeded")
	}
}

func TestTablesSortedByName(t *testing.T) {
	dev := testDevice()
	c := New()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		c.MustRegister(makeTable(t, dev, name, 3))
	}
	got := c.Tables()
	if len(got) != 3 {
		t.Fatalf("Tables() returned %d entries", len(got))
	}
	want := []string{"alpha", "mid", "zeta"}
	for i, e := range got {
		if e.Table.Name() != want[i] {
			t.Errorf("Tables()[%d] = %q, want %q", i, e.Table.Name(), want[i])
		}
	}
}

func TestTotalPages(t *testing.T) {
	dev := testDevice()
	c := New()
	total := 0
	for i, rows := range []int{50, 120, 7} {
		tbl := makeTable(t, dev, fmt.Sprintf("t%d", i), rows)
		c.MustRegister(tbl)
		total += tbl.NumPages()
	}
	if c.TotalPages() != total {
		t.Errorf("TotalPages = %d, want %d", c.TotalPages(), total)
	}
}
