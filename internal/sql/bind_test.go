package sql

import (
	"fmt"
	"strings"
	"testing"

	"scanshare/internal/exec"
	"scanshare/internal/record"
)

// fakeMeta is a Meta for binder tests: a 100-page "lineitem" clustered on
// l_shipdate over days [0, 699].
type fakeMeta struct{}

func (fakeMeta) Name() string  { return "lineitem" }
func (fakeMeta) NumPages() int { return 100 }
func (fakeMeta) Schema() *record.Schema {
	return record.MustSchema(
		record.Field{Name: "l_shipdate", Kind: record.KindDate},
		record.Field{Name: "l_quantity", Kind: record.KindFloat64},
		record.Field{Name: "l_returnflag", Kind: record.KindString},
		record.Field{Name: "l_orderkey", Kind: record.KindInt64},
	)
}
func (fakeMeta) ColumnRange(col string) (record.Value, record.Value, bool) {
	switch col {
	case "l_shipdate":
		return record.Date(0), record.Date(699), true
	case "l_orderkey":
		return record.Int64(1), record.Int64(1000), true
	}
	return record.Value{}, record.Value{}, false
}
func (fakeMeta) Clustered(col string) bool { return col == "l_shipdate" }

// fakeLookup resolves "lineitem" to fakeMeta and "suppliers" to a small
// second table for join tests.
func fakeLookup(table string) (Meta, error) {
	switch table {
	case "lineitem":
		return fakeMeta{}, nil
	case "suppliers":
		return fakeSuppliers{}, nil
	}
	return nil, fmt.Errorf("sql: no table %q", table)
}

// fakeSuppliers is the join partner: s_key matches l_orderkey's kind.
type fakeSuppliers struct{}

func (fakeSuppliers) Name() string  { return "suppliers" }
func (fakeSuppliers) NumPages() int { return 10 }
func (fakeSuppliers) Schema() *record.Schema {
	return record.MustSchema(
		record.Field{Name: "s_key", Kind: record.KindInt64},
		record.Field{Name: "s_name", Kind: record.KindString},
	)
}
func (fakeSuppliers) ColumnRange(string) (record.Value, record.Value, bool) {
	return record.Value{}, record.Value{}, false
}
func (fakeSuppliers) Clustered(string) bool { return false }

func compile(t *testing.T, stmt string) *Spec {
	t.Helper()
	sel, err := Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compile(sel, fakeLookup)
	if err != nil {
		t.Fatalf("Compile(%q): %v", stmt, err)
	}
	return spec
}

func TestCompileStarFullScan(t *testing.T) {
	spec := compile(t, "SELECT * FROM lineitem")
	if spec.StartFrac != 0 || spec.EndFrac != 1 {
		t.Errorf("range = [%g,%g]", spec.StartFrac, spec.EndFrac)
	}
	if spec.Pred != nil || len(spec.Select) != 0 || len(spec.Aggs) != 0 || spec.HasLimit {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Weight != 1 {
		t.Errorf("weight = %g, want 1 for a bare scan", spec.Weight)
	}
}

func TestCompileAggregatesAndGroups(t *testing.T) {
	spec := compile(t, `SELECT l_returnflag, count(*), sum(l_quantity), min(l_shipdate)
		FROM lineitem GROUP BY l_returnflag`)
	if len(spec.Aggs) != 3 {
		t.Fatalf("aggs = %v", spec.Aggs)
	}
	if spec.Aggs[0].Kind != exec.AggCount || spec.Aggs[0].Column != "" {
		t.Errorf("agg 0 = %+v", spec.Aggs[0])
	}
	if spec.Aggs[1].Kind != exec.AggSum || spec.Aggs[1].Column != "l_quantity" {
		t.Errorf("agg 1 = %+v", spec.Aggs[1])
	}
	if spec.Aggs[2].Kind != exec.AggMin || spec.Aggs[2].Column != "l_shipdate" {
		t.Errorf("agg 2 = %+v", spec.Aggs[2])
	}
	if len(spec.GroupBy) != 1 || spec.GroupBy[0] != "l_returnflag" {
		t.Errorf("group by = %v", spec.GroupBy)
	}
	if len(spec.Select) != 0 {
		t.Errorf("plain select next to aggregates: %v", spec.Select)
	}
}

func TestCompileProjection(t *testing.T) {
	spec := compile(t, "SELECT l_orderkey, l_returnflag FROM lineitem LIMIT 7")
	if len(spec.Select) != 2 || spec.Select[0] != "l_orderkey" {
		t.Errorf("select = %v", spec.Select)
	}
	if !spec.HasLimit || spec.Limit != 7 {
		t.Errorf("limit = %v %v", spec.HasLimit, spec.Limit)
	}
}

func TestCompilePushdownOnClusteredColumn(t *testing.T) {
	// Days [0,699]; predicate selects the last ~100 days -> roughly the
	// last 1/7 of the pages, padded by a page on each side.
	spec := compile(t, "SELECT count(*) FROM lineitem WHERE l_shipdate >= DATE '1993-08-25'")
	if spec.Pred == nil {
		t.Fatal("predicate missing")
	}
	if spec.StartFrac < 0.8 || spec.StartFrac > 0.9 {
		t.Errorf("StartFrac = %g, want ~0.85", spec.StartFrac)
	}
	if spec.EndFrac != 1 {
		t.Errorf("EndFrac = %g, want 1", spec.EndFrac)
	}
}

func TestCompilePushdownBothBounds(t *testing.T) {
	spec := compile(t, `SELECT count(*) FROM lineitem
		WHERE l_shipdate BETWEEN DATE '1992-12-01' AND DATE '1993-02-01' AND l_quantity < 10`)
	if spec.StartFrac <= 0 || spec.EndFrac >= 1 {
		t.Errorf("range = [%g,%g], want interior", spec.StartFrac, spec.EndFrac)
	}
	if spec.EndFrac-spec.StartFrac > 0.2 {
		t.Errorf("range too wide: [%g,%g]", spec.StartFrac, spec.EndFrac)
	}
}

func TestCompileNoPushdownOnUnclusteredColumn(t *testing.T) {
	spec := compile(t, "SELECT count(*) FROM lineitem WHERE l_orderkey >= 900")
	if spec.StartFrac != 0 || spec.EndFrac != 1 {
		t.Errorf("pushdown on unclustered column: [%g,%g]", spec.StartFrac, spec.EndFrac)
	}
	if spec.Pred == nil {
		t.Error("predicate missing")
	}
}

func TestCompileNoPushdownUnderOr(t *testing.T) {
	// OR disjuncts cannot restrict the scan.
	spec := compile(t, `SELECT count(*) FROM lineitem
		WHERE l_shipdate >= DATE '1993-08-25' OR l_quantity > 40`)
	if spec.StartFrac != 0 || spec.EndFrac != 1 {
		t.Errorf("pushdown under OR: [%g,%g]", spec.StartFrac, spec.EndFrac)
	}
}

func TestCompilePushdownFlippedComparison(t *testing.T) {
	spec := compile(t, "SELECT count(*) FROM lineitem WHERE DATE '1993-08-25' <= l_shipdate")
	if spec.StartFrac < 0.8 {
		t.Errorf("flipped comparison not pushed down: start %g", spec.StartFrac)
	}
}

func TestCompileWeightGrowsWithComplexity(t *testing.T) {
	simple := compile(t, "SELECT count(*) FROM lineitem")
	complexQ := compile(t, `SELECT l_returnflag, sum(l_quantity), avg(l_quantity)
		FROM lineitem
		WHERE l_quantity * 2 + 1 > 10 AND NOT l_returnflag = 'R'
		GROUP BY l_returnflag`)
	if complexQ.Weight <= simple.Weight {
		t.Errorf("weights: complex %g <= simple %g", complexQ.Weight, simple.Weight)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := map[string]string{
		"SELECT * FROM orders":                               "no table",
		"SELECT *, l_orderkey FROM lineitem":                 "cannot be combined",
		"SELECT sum(l_quantity + 1) FROM lineitem":           "not supported",
		"SELECT l_orderkey + 1 FROM lineitem":                "computed select items",
		"SELECT ghost FROM lineitem":                         "unknown column",
		"SELECT sum(ghost) FROM lineitem":                    "unknown column",
		"SELECT count(*) FROM lineitem GROUP BY ghost":       "unknown GROUP BY column",
		"SELECT l_orderkey, count(*) FROM lineitem":          "must appear in GROUP BY",
		"SELECT count(*) FROM lineitem WHERE l_quantity + 1": "boolean",
		"SELECT count(*) FROM lineitem WHERE ghost = 1":      "unknown column",
	}
	for stmt, wantSub := range bad {
		sel, err := Parse(stmt)
		if err != nil {
			t.Fatalf("parse %q: %v", stmt, err)
		}
		_, err = Compile(sel, fakeLookup)
		if err == nil {
			t.Errorf("Compile(%q) succeeded", stmt)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Compile(%q) error %q lacks %q", stmt, err, wantSub)
		}
	}
}

func TestCompileGroupByWithoutAggsIsDistinct(t *testing.T) {
	spec := compile(t, "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag")
	if len(spec.GroupBy) != 1 || len(spec.Aggs) != 0 {
		t.Errorf("spec = %+v", spec)
	}
}

func TestPredicateCompiledFromSpecWorks(t *testing.T) {
	spec := compile(t, "SELECT count(*) FROM lineitem WHERE l_quantity BETWEEN 10 AND 20")
	in := record.Tuple{record.Date(5), record.Float64(15), record.String("N"), record.Int64(1)}
	out := record.Tuple{record.Date(5), record.Float64(25), record.String("N"), record.Int64(1)}
	if !spec.Pred(in) || spec.Pred(out) {
		t.Error("compiled predicate wrong")
	}
}

func TestDegenerateRangeFallsBackToFullScan(t *testing.T) {
	// Contradictory bounds collapse; the binder must not emit an empty or
	// inverted range (the predicate still filters everything out).
	spec := compile(t, `SELECT count(*) FROM lineitem
		WHERE l_shipdate >= DATE '1993-08-25' AND l_shipdate <= DATE '1992-02-01'`)
	if spec.StartFrac != 0 || spec.EndFrac != 1 {
		t.Errorf("degenerate range = [%g,%g], want full scan", spec.StartFrac, spec.EndFrac)
	}
}

func TestCompileJoin(t *testing.T) {
	spec := compile(t, `SELECT s_name, count(*) FROM lineitem JOIN suppliers ON l_orderkey = s_key
		WHERE l_quantity > 5 GROUP BY s_name`)
	if spec.Join == nil {
		t.Fatal("join not compiled")
	}
	if spec.Join.RightFrom != "suppliers" || spec.Join.LeftCol != "l_orderkey" || spec.Join.RightCol != "s_key" {
		t.Errorf("join spec = %+v", spec.Join)
	}
	if spec.StartFrac != 0 || spec.EndFrac != 1 {
		t.Errorf("join must not push ranges down: [%g,%g]", spec.StartFrac, spec.EndFrac)
	}
	// The predicate resolves over the combined schema (l_quantity is
	// ordinal 1 of the left table).
	in := record.Tuple{record.Date(0), record.Float64(9), record.String("N"), record.Int64(7),
		record.Int64(7), record.String("acme")}
	if !spec.Pred(in) {
		t.Error("combined predicate rejected a matching tuple")
	}
	// s_name resolves at combined ordinal 5 through GROUP BY validation
	// (already checked by compile succeeding).
	if len(spec.GroupBy) != 1 || spec.GroupBy[0] != "s_name" {
		t.Errorf("group by = %v", spec.GroupBy)
	}
}

func TestCompileJoinErrors(t *testing.T) {
	for stmt, wantSub := range map[string]string{
		"SELECT count(*) FROM lineitem JOIN ghost ON l_orderkey = s_key":         "no table",
		"SELECT count(*) FROM lineitem JOIN suppliers ON ghost = s_key":          "not in",
		"SELECT count(*) FROM lineitem JOIN suppliers ON l_orderkey = ghost":     "not in",
		"SELECT count(*) FROM lineitem JOIN suppliers ON l_quantity = s_key":     "compares",
		"SELECT count(*) FROM lineitem JOIN suppliers ON l_orderkey = s_name":    "compares",
		"SELECT count(*) FROM lineitem JOIN lineitem ON l_orderkey = l_orderkey": "share column names",
	} {
		sel, err := Parse(stmt)
		if err != nil {
			t.Fatalf("parse %q: %v", stmt, err)
		}
		if _, err := Compile(sel, fakeLookup); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Compile(%q) error %v, want %q", stmt, err, wantSub)
		}
	}
}
