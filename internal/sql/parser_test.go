package sql

import (
	"strings"
	"testing"

	"scanshare/internal/record"
)

func mustParse(t *testing.T, input string) *Select {
	t.Helper()
	sel, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return sel
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, sum(b) FROM t WHERE x >= 1.5 AND s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ",", "SUM", "(", "b", ")", "FROM", "t", "WHERE", "x", ">=", "1.5", "AND", "s", "=", "it's", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT a ; b"); err == nil {
		t.Error("unknown character accepted")
	}
}

func TestParseMinimal(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM lineitem")
	if sel.From != "lineitem" || len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Errorf("parsed %+v", sel)
	}
	if sel.Where != nil || len(sel.GroupBy) != 0 || sel.HasLim {
		t.Errorf("unexpected clauses: %+v", sel)
	}
}

func TestParseFullStatement(t *testing.T) {
	sel := mustParse(t, `
		SELECT l_returnflag, count(*), sum(l_extendedprice) AS revenue
		FROM lineitem
		WHERE l_shipdate >= DATE '1997-01-01' AND l_discount BETWEEN 0.05 AND 0.07
		GROUP BY l_returnflag
		LIMIT 10`)
	if len(sel.Items) != 3 {
		t.Fatalf("items = %v", sel.Items)
	}
	if sel.Items[1].Agg != "count" || !sel.Items[1].Star {
		t.Errorf("item 1 = %+v", sel.Items[1])
	}
	if sel.Items[2].Agg != "sum" || sel.Items[2].Alias != "revenue" {
		t.Errorf("item 2 = %+v", sel.Items[2])
	}
	if sel.Where == nil {
		t.Fatal("missing WHERE")
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "l_returnflag" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
	if !sel.HasLim || sel.Limit != 10 {
		t.Errorf("limit = %v %v", sel.HasLim, sel.Limit)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3")
	// Must parse as (a=1) OR ((b=2) AND (NOT (c=3))).
	want := "((a = 1) OR ((b = 2) AND (NOT (c = 3))))"
	if got := sel.Where.String(); got != want {
		t.Errorf("parsed %s, want %s", got, want)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a + b * 2 - -c / 4 > 0")
	want := "(((a + (b * 2)) - ((- c) / 4)) > 0)"
	if got := sel.Where.String(); got != want {
		t.Errorf("parsed %s, want %s", got, want)
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE x BETWEEN 1 AND 5")
	want := "((x >= 1) AND (x <= 5))"
	if got := sel.Where.String(); got != want {
		t.Errorf("parsed %s, want %s", got, want)
	}
}

func TestParseDateLiteral(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE d >= DATE '1992-01-02'")
	b := sel.Where.(Binary)
	lit := b.R.(Literal)
	if lit.Val.Kind != record.KindDate || lit.Val.I != 1 {
		t.Errorf("date literal = %#v, want day 1", lit.Val)
	}
	if FormatDate(1) != "1992-01-02" {
		t.Errorf("FormatDate(1) = %q", FormatDate(1))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP x",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT sum(*) FROM t",
		"SELECT avg(*) FROM t",
		"SELECT a FROM t trailing",
		"SELECT (a FROM t",
		"SELECT * FROM t WHERE d >= DATE '97-1-1'",
		"SELECT * FROM t WHERE d >= DATE 5",
		"SELECT * FROM t WHERE x BETWEEN 1",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded", input)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	sel := mustParse(t, "select Count(*) from t where a and b group by c limit 3")
	if sel.Items[0].Agg != "count" || sel.From != "t" || len(sel.GroupBy) != 1 || sel.Limit != 3 {
		t.Errorf("parsed %+v", sel)
	}
}

func TestSelectStringRoundTrips(t *testing.T) {
	inputs := []string{
		"SELECT * FROM t",
		"SELECT a, sum(b) AS s FROM t WHERE (a > 1) GROUP BY a LIMIT 5",
	}
	for _, in := range inputs {
		sel := mustParse(t, in)
		again, err := Parse(sel.String())
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", sel.String(), err)
			continue
		}
		if again.String() != sel.String() {
			t.Errorf("round trip: %q -> %q", sel.String(), again.String())
		}
	}
}

func TestNodeCount(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE a + 1 > 2 AND NOT b")
	// AND(1) + >(1) + +(1) + a,1,2,b(4) + NOT(1) = 8
	if got := nodeCount(sel.Where); got != 8 {
		t.Errorf("nodeCount = %d, want 8", got)
	}
	if nodeCount(nil) != 0 {
		t.Error("nodeCount(nil) != 0")
	}
}

func TestParseErrorsMentionOffset(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE !")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error %v lacks offset", err)
	}
}
