package sql

import (
	"fmt"

	"scanshare/internal/record"
)

// The evaluator compiles a type-checked expression tree into a closure tree
// over tuples. Types are resolved once at compile time, so per-tuple
// evaluation does no reflection or kind switching beyond the closures
// themselves.

// valKind is the evaluator's type domain. Dates live in kInt (days since
// epoch); record distinguishes them only for rendering.
type valKind int

const (
	kBool valKind = iota
	kInt
	kFloat
	kStr
)

func (k valKind) String() string {
	switch k {
	case kBool:
		return "boolean"
	case kInt:
		return "integer"
	case kFloat:
		return "double"
	case kStr:
		return "varchar"
	default:
		return "?"
	}
}

// value is one runtime value; only the member for its compile-time kind is
// meaningful.
type value struct {
	b bool
	i int64
	f float64
	s string
}

// typed is a compiled expression: its static kind plus an evaluator.
type typed struct {
	kind valKind
	eval func(record.Tuple) value
}

// compileExpr type-checks e against the schema and returns its compiled
// form.
func compileExpr(e Expr, schema *record.Schema) (typed, error) {
	switch x := e.(type) {
	case ColRef:
		ord, err := schema.Ordinal(x.Name)
		if err != nil {
			return typed{}, fmt.Errorf("sql: unknown column %q", x.Name)
		}
		switch schema.Field(ord).Kind {
		case record.KindInt64, record.KindDate:
			return typed{kind: kInt, eval: func(t record.Tuple) value { return value{i: t[ord].I} }}, nil
		case record.KindFloat64:
			return typed{kind: kFloat, eval: func(t record.Tuple) value { return value{f: t[ord].F} }}, nil
		case record.KindString:
			return typed{kind: kStr, eval: func(t record.Tuple) value { return value{s: t[ord].S} }}, nil
		default:
			return typed{}, fmt.Errorf("sql: column %q has unsupported type", x.Name)
		}
	case Literal:
		v := x.Val
		switch v.Kind {
		case record.KindInt64, record.KindDate:
			return typed{kind: kInt, eval: func(record.Tuple) value { return value{i: v.I} }}, nil
		case record.KindFloat64:
			return typed{kind: kFloat, eval: func(record.Tuple) value { return value{f: v.F} }}, nil
		case record.KindString:
			return typed{kind: kStr, eval: func(record.Tuple) value { return value{s: v.S} }}, nil
		default:
			return typed{}, fmt.Errorf("sql: unsupported literal kind")
		}
	case Bool:
		v := x.Val
		return typed{kind: kBool, eval: func(record.Tuple) value { return value{b: v} }}, nil
	case Unary:
		inner, err := compileExpr(x.X, schema)
		if err != nil {
			return typed{}, err
		}
		switch x.Op {
		case "NOT":
			if inner.kind != kBool {
				return typed{}, fmt.Errorf("sql: NOT applied to %s", inner.kind)
			}
			return typed{kind: kBool, eval: func(t record.Tuple) value { return value{b: !inner.eval(t).b} }}, nil
		case "-":
			switch inner.kind {
			case kInt:
				return typed{kind: kInt, eval: func(t record.Tuple) value { return value{i: -inner.eval(t).i} }}, nil
			case kFloat:
				return typed{kind: kFloat, eval: func(t record.Tuple) value { return value{f: -inner.eval(t).f} }}, nil
			}
			return typed{}, fmt.Errorf("sql: unary minus applied to %s", inner.kind)
		default:
			return typed{}, fmt.Errorf("sql: unknown unary operator %q", x.Op)
		}
	case Binary:
		return compileBinary(x, schema)
	default:
		return typed{}, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func compileBinary(x Binary, schema *record.Schema) (typed, error) {
	l, err := compileExpr(x.L, schema)
	if err != nil {
		return typed{}, err
	}
	r, err := compileExpr(x.R, schema)
	if err != nil {
		return typed{}, err
	}
	switch x.Op {
	case "AND":
		if l.kind != kBool || r.kind != kBool {
			return typed{}, fmt.Errorf("sql: AND over %s and %s", l.kind, r.kind)
		}
		return typed{kind: kBool, eval: func(t record.Tuple) value {
			return value{b: l.eval(t).b && r.eval(t).b}
		}}, nil
	case "OR":
		if l.kind != kBool || r.kind != kBool {
			return typed{}, fmt.Errorf("sql: OR over %s and %s", l.kind, r.kind)
		}
		return typed{kind: kBool, eval: func(t record.Tuple) value {
			return value{b: l.eval(t).b || r.eval(t).b}
		}}, nil
	case "+", "-", "*", "/":
		return compileArith(x.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compileCompare(x.Op, l, r)
	default:
		return typed{}, fmt.Errorf("sql: unknown operator %q", x.Op)
	}
}

// asFloat adapts a numeric operand to float evaluation.
func asFloat(t typed) (func(record.Tuple) float64, bool) {
	switch t.kind {
	case kInt:
		return func(tp record.Tuple) float64 { return float64(t.eval(tp).i) }, true
	case kFloat:
		return func(tp record.Tuple) float64 { return t.eval(tp).f }, true
	default:
		return nil, false
	}
}

func compileArith(op string, l, r typed) (typed, error) {
	// Integer arithmetic stays integral except division, which always
	// yields a double (TPC-H expressions are decimal).
	if l.kind == kInt && r.kind == kInt && op != "/" {
		var f func(a, b int64) int64
		switch op {
		case "+":
			f = func(a, b int64) int64 { return a + b }
		case "-":
			f = func(a, b int64) int64 { return a - b }
		case "*":
			f = func(a, b int64) int64 { return a * b }
		}
		return typed{kind: kInt, eval: func(t record.Tuple) value {
			return value{i: f(l.eval(t).i, r.eval(t).i)}
		}}, nil
	}
	lf, okL := asFloat(l)
	rf, okR := asFloat(r)
	if !okL || !okR {
		return typed{}, fmt.Errorf("sql: arithmetic %q over %s and %s", op, l.kind, r.kind)
	}
	var f func(a, b float64) float64
	switch op {
	case "+":
		f = func(a, b float64) float64 { return a + b }
	case "-":
		f = func(a, b float64) float64 { return a - b }
	case "*":
		f = func(a, b float64) float64 { return a * b }
	case "/":
		f = func(a, b float64) float64 {
			if b == 0 {
				return 0 // SQL NULL territory; the dialect has no NULLs
			}
			return a / b
		}
	}
	return typed{kind: kFloat, eval: func(t record.Tuple) value {
		return value{f: f(lf(t), rf(t))}
	}}, nil
}

func compileCompare(op string, l, r typed) (typed, error) {
	cmp, err := comparator(l, r)
	if err != nil {
		return typed{}, fmt.Errorf("sql: comparison %q: %w", op, err)
	}
	var test func(int) bool
	switch op {
	case "=":
		test = func(c int) bool { return c == 0 }
	case "<>":
		test = func(c int) bool { return c != 0 }
	case "<":
		test = func(c int) bool { return c < 0 }
	case "<=":
		test = func(c int) bool { return c <= 0 }
	case ">":
		test = func(c int) bool { return c > 0 }
	case ">=":
		test = func(c int) bool { return c >= 0 }
	}
	return typed{kind: kBool, eval: func(t record.Tuple) value {
		return value{b: test(cmp(t))}
	}}, nil
}

// comparator builds a three-way comparison over two compiled operands.
func comparator(l, r typed) (func(record.Tuple) int, error) {
	if l.kind == kStr && r.kind == kStr {
		return func(t record.Tuple) int {
			a, b := l.eval(t).s, r.eval(t).s
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}, nil
	}
	if l.kind == kBool && r.kind == kBool {
		return func(t record.Tuple) int {
			a, b := l.eval(t).b, r.eval(t).b
			switch {
			case a == b:
				return 0
			case b:
				return -1
			}
			return 1
		}, nil
	}
	if l.kind == kInt && r.kind == kInt {
		return func(t record.Tuple) int {
			a, b := l.eval(t).i, r.eval(t).i
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}, nil
	}
	lf, okL := asFloat(l)
	rf, okR := asFloat(r)
	if okL && okR {
		return func(t record.Tuple) int {
			a, b := lf(t), rf(t)
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		}, nil
	}
	return nil, fmt.Errorf("incompatible types %s and %s", l.kind, r.kind)
}

// CompilePredicate compiles a boolean expression into a tuple predicate.
func CompilePredicate(e Expr, schema *record.Schema) (func(record.Tuple) bool, error) {
	t, err := compileExpr(e, schema)
	if err != nil {
		return nil, err
	}
	if t.kind != kBool {
		return nil, fmt.Errorf("sql: WHERE expression has type %s, want boolean", t.kind)
	}
	return func(tp record.Tuple) bool { return t.eval(tp).b }, nil
}
