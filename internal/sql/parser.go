package sql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"scanshare/internal/record"
)

// Parse parses one SELECT statement.
func Parse(input string) (*Select, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

// at reports whether the current token matches kind (and text, if non-empty).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

// expect consumes a required token.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errf("expected %q, found %q", text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

func (p *parser) parseSelect() (*Select, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, p.errf("expected table name after FROM")
	}
	sel.From = from.text

	if p.accept(tokKeyword, "JOIN") {
		rt, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected table name after JOIN")
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		lc, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected column name in ON")
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		rc, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, p.errf("expected column name after = in ON")
		}
		sel.Join = &Join{Table: rt.text, LeftCol: lc.text, RightCol: rc.text}
	}

	if p.accept(tokKeyword, "WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, p.errf("expected column name in GROUP BY")
			}
			sel.GroupBy = append(sel.GroupBy, col.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, p.errf("expected column name in ORDER BY")
			}
			term := OrderTerm{Col: col.text}
			if p.accept(tokKeyword, "DESC") {
				term.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, term)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.ParseInt(num.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", num.text)
		}
		sel.Limit = n
		sel.HasLim = true
	}
	return sel, nil
}

func (p *parser) parseItem() (SelectItem, error) {
	// SELECT *
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregate call?
	if p.cur().kind == tokKeyword && aggNames[p.cur().text] {
		agg := strings.ToLower(p.next().text)
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: agg}
		if p.accept(tokSymbol, "*") {
			if agg != "count" {
				return SelectItem{}, p.errf("%s(*) is not valid; only COUNT(*)", agg)
			}
			item.Star = true
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return SelectItem{}, err
			}
			item.Expr = e
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		item.Alias = p.parseAlias()
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e, Alias: p.parseAlias()}, nil
}

func (p *parser) parseAlias() string {
	if p.accept(tokKeyword, "AS") {
		if p.cur().kind == tokIdent {
			return p.next().text
		}
	}
	return ""
}

// Expression precedence, loosest first: OR, AND, NOT, comparison/BETWEEN,
// additive, multiplicative, unary minus, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: "AND",
			L: Binary{Op: ">=", L: l, R: lo},
			R: Binary{Op: "<=", L: l, R: hi},
		}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			canon := op
			if canon == "!=" {
				canon = "<>"
			}
			return Binary{Op: canon, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.text)
			}
			return Literal{Val: record.Float64(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.text)
		}
		return Literal{Val: record.Int64(n)}, nil
	case t.kind == tokString:
		p.next()
		return Literal{Val: record.String(t.text)}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return Bool{Val: true}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return Bool{Val: false}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.next()
		if p.cur().kind != tokString {
			return nil, p.errf("expected 'YYYY-MM-DD' after DATE")
		}
		lit := p.next().text
		days, err := parseDate(lit)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return Literal{Val: record.Date(days)}, nil
	case t.kind == tokIdent:
		p.next()
		return ColRef{Name: t.text}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("unexpected %q in expression", t.text)
	}
}

// dateEpoch anchors DATE literals: day 0 is 1992-01-01, the start of the
// TPC-H date range, so the generated seven-year history maps onto
// 1992..1998.
var dateEpoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// parseDate converts 'YYYY-MM-DD' into days since the epoch.
func parseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("invalid date %q (want YYYY-MM-DD)", s)
	}
	return int64(t.Sub(dateEpoch).Hours() / 24), nil
}

// FormatDate renders days-since-epoch as 'YYYY-MM-DD' (the inverse of DATE
// literals); exported for tools that print date values.
func FormatDate(days int64) string {
	return dateEpoch.Add(time.Duration(days) * 24 * time.Hour).Format("2006-01-02")
}
