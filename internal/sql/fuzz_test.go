package sql

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse throws arbitrary input at the parser. Two properties must hold
// for every input:
//
//  1. Totality: Parse never panics — it returns a *Select or an error, on
//     garbage as on SQL.
//  2. Round-trip stability: an accepted statement renders to a string that
//     parses again, and that second parse renders identically. (String() is
//     the canonical form, so one render must be a fixed point.)
//
// Run a long session with:
//
//	go test ./internal/sql -fuzz FuzzParse -fuzztime 5m
func FuzzParse(f *testing.F) {
	// Seeds: the statements the unit tests exercise, both well-formed and
	// malformed, so the fuzzer starts at the grammar's interesting edges.
	seeds := []string{
		"SELECT * FROM lineitem",
		"SELECT a, sum(b) FROM t WHERE x >= 1.5 AND s = 'it''s'",
		`SELECT l_returnflag, count(*), sum(l_extendedprice) AS revenue
			FROM lineitem
			WHERE l_shipdate >= DATE '1997-01-01' AND l_discount BETWEEN 0.05 AND 0.07
			GROUP BY l_returnflag
			LIMIT 10`,
		"SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3",
		"SELECT * FROM t WHERE a + b * 2 - -c / 4 > 0",
		"SELECT * FROM t WHERE x BETWEEN 1 AND 5",
		"SELECT * FROM t WHERE d >= DATE '1992-01-02'",
		"select Count(*) from t where a and b group by c limit 3",
		"SELECT a, sum(b) AS s FROM t WHERE (a > 1) GROUP BY a LIMIT 5",
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM t WHERE",
		"SELECT sum(*) FROM t",
		"SELECT (a FROM t",
		"SELECT * FROM t WHERE d >= DATE '97-1-1'",
		"SELECT * FROM t WHERE x BETWEEN 1",
		"SELECT * FROM t LIMIT -1",
		"SELECT 'unterminated",
		"SELECT a ; b",
		"SELECT * FROM t WHERE !",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		sel, err := Parse(input) // must not panic
		if err != nil {
			return
		}
		if sel == nil {
			t.Fatalf("Parse(%q) returned nil without error", input)
		}

		rendered := sel.String()
		if !utf8.ValidString(rendered) && utf8.ValidString(input) {
			t.Fatalf("String() of valid-UTF-8 input %q produced invalid UTF-8 %q", input, rendered)
		}
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", input, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("canonical form is not a fixed point:\n first %q\nsecond %q", rendered, got)
		}
	})
}
