package sql

import (
	"testing"

	"scanshare/internal/record"
)

func evalSchema() *record.Schema {
	return record.MustSchema(
		record.Field{Name: "i", Kind: record.KindInt64},
		record.Field{Name: "f", Kind: record.KindFloat64},
		record.Field{Name: "s", Kind: record.KindString},
		record.Field{Name: "d", Kind: record.KindDate},
	)
}

func sampleTuple() record.Tuple {
	return record.Tuple{record.Int64(10), record.Float64(2.5), record.String("abc"), record.Date(100)}
}

// predOf compiles the WHERE clause of "SELECT * FROM t WHERE <cond>".
func predOf(t *testing.T, cond string) func(record.Tuple) bool {
	t.Helper()
	sel := mustParse(t, "SELECT * FROM t WHERE "+cond)
	pred, err := CompilePredicate(sel.Where, evalSchema())
	if err != nil {
		t.Fatalf("compile %q: %v", cond, err)
	}
	return pred
}

func TestPredicateEvaluation(t *testing.T) {
	tup := sampleTuple()
	cases := []struct {
		cond string
		want bool
	}{
		{"i = 10", true},
		{"i <> 10", false},
		{"i != 10", false},
		{"i < 11", true},
		{"i <= 10", true},
		{"i > 10", false},
		{"i >= 11", false},
		{"10 < i + 1", true},
		{"f = 2.5", true},
		{"f * 2 = 5.0", true},
		{"f * 2 = 5", true}, // int/float promotion
		{"i + f > 12", true},
		{"i / 4 = 2.5", true}, // division is always double
		{"i - 4 = 6", true},
		{"-i = -10", true},
		{"s = 'abc'", true},
		{"s < 'abd'", true},
		{"s <> 'xyz'", true},
		{"d >= DATE '1992-04-01'", true}, // day 100 is 1992-04-10
		{"d BETWEEN DATE '1992-01-01' AND DATE '1992-06-01'", true},
		{"TRUE", true},
		{"FALSE", false},
		{"NOT FALSE", true},
		{"i = 10 AND f > 2", true},
		{"i = 10 AND f > 3", false},
		{"i = 99 OR s = 'abc'", true},
		{"NOT (i = 99 OR s = 'zzz')", true},
		{"i BETWEEN 5 AND 15", true},
		{"i BETWEEN 11 AND 15", false},
		{"TRUE = TRUE", true},
		{"TRUE <> FALSE", true},
	}
	for _, c := range cases {
		if got := predOf(t, c.cond)(tup); got != c.want {
			t.Errorf("%q = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestDivisionByZeroYieldsZero(t *testing.T) {
	// The dialect has no NULLs; x/0 evaluates to 0 by definition.
	if got := predOf(t, "i / 0 = 0")(sampleTuple()); !got {
		t.Error("division by zero did not yield 0")
	}
}

func TestTypeErrors(t *testing.T) {
	schema := evalSchema()
	bad := []string{
		"i + s > 2",    // arithmetic over string
		"s > 2",        // string vs number comparison
		"NOT i",        // NOT over number
		"i AND TRUE",   // AND over number
		"TRUE + 1 > 0", // arithmetic over boolean
		"-s = 'x'",     // unary minus over string
		"ghost = 1",    // unknown column
		"s = 1",        // string vs int equality
	}
	for _, cond := range bad {
		sel, err := Parse("SELECT * FROM t WHERE " + cond)
		if err != nil {
			t.Fatalf("parse %q: %v", cond, err)
		}
		if _, err := CompilePredicate(sel.Where, schema); err == nil {
			t.Errorf("compile %q succeeded", cond)
		}
	}
}

func TestPredicateMustBeBoolean(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t WHERE i + 1")
	if _, err := CompilePredicate(sel.Where, evalSchema()); err == nil {
		t.Error("numeric WHERE accepted")
	}
}
