package sql

import (
	"fmt"

	"scanshare/internal/exec"
	"scanshare/internal/record"
)

// Meta is the table metadata the binder needs: the schema, optimizer-style
// column statistics for range pushdown, and clustering information. The
// engine's Table satisfies it.
type Meta interface {
	// Name returns the table name.
	Name() string
	// NumPages returns the table's page count.
	NumPages() int
	// Schema returns the table schema.
	Schema() *record.Schema
	// ColumnRange returns the min/max a column held at load time.
	ColumnRange(column string) (min, max record.Value, ok bool)
	// Clustered reports whether the table is physically ordered on the
	// column.
	Clustered(column string) bool
}

// AggTerm is one aggregate of the compiled query.
type AggTerm struct {
	Kind   exec.AggKind
	Column string // empty for COUNT(*)
}

// SpecJoin describes a compiled equi-join.
type SpecJoin struct {
	RightFrom string
	LeftCol   string
	RightCol  string
}

// Spec is the binder's output: everything the engine's query builder needs.
// Keeping it a plain struct (rather than returning an engine query directly)
// decouples this package from the public API.
type Spec struct {
	From string
	// Join is set for FROM a JOIN b ON ... statements. Projections,
	// grouping and predicates then resolve over the concatenated schema
	// (left table's columns followed by the right table's).
	Join *SpecJoin
	// StartFrac and EndFrac bound the scan as fractions of the table's
	// pages, derived from range predicates on a clustered column; the
	// full predicate still applies on top.
	StartFrac, EndFrac float64
	// Weight is the CPU weight derived from expression complexity.
	Weight float64
	// Pred is the compiled WHERE predicate, or nil.
	Pred func(record.Tuple) bool
	// Select lists projected columns when the query has no aggregates.
	Select []string
	// GroupBy and Aggs describe the aggregation, if any.
	GroupBy []string
	Aggs    []AggTerm
	// OrderBy sorts the output by the named columns. With aggregation,
	// only GROUP BY columns can be ordered on.
	OrderBy []OrderTerm
	// Limit caps the row count when HasLimit.
	Limit    int64
	HasLimit bool
}

// aggKinds maps parser aggregate names to executor kinds.
var aggKinds = map[string]exec.AggKind{
	"count": exec.AggCount,
	"sum":   exec.AggSum,
	"avg":   exec.AggAvg,
	"min":   exec.AggMin,
	"max":   exec.AggMax,
}

// Compile binds a parsed statement, resolving table names through lookup.
func Compile(sel *Select, lookup func(table string) (Meta, error)) (*Spec, error) {
	meta, err := lookup(sel.From)
	if err != nil {
		return nil, err
	}
	schema := meta.Schema()
	spec := &Spec{From: sel.From, StartFrac: 0, EndFrac: 1, Weight: 1}

	if sel.Join != nil {
		right, err := lookup(sel.Join.Table)
		if err != nil {
			return nil, err
		}
		lo, err := schema.Ordinal(sel.Join.LeftCol)
		if err != nil {
			return nil, fmt.Errorf("sql: ON column %q not in %q", sel.Join.LeftCol, sel.From)
		}
		ro, err := right.Schema().Ordinal(sel.Join.RightCol)
		if err != nil {
			return nil, fmt.Errorf("sql: ON column %q not in %q", sel.Join.RightCol, sel.Join.Table)
		}
		if schema.Field(lo).Kind != right.Schema().Field(ro).Kind {
			return nil, fmt.Errorf("sql: join compares %s with %s",
				schema.Field(lo).Kind, right.Schema().Field(ro).Kind)
		}
		// All further resolution happens over the concatenated schema;
		// duplicate column names across the two tables are rejected
		// (the dialect has no qualified names).
		var fields []record.Field
		for i := 0; i < schema.NumFields(); i++ {
			fields = append(fields, schema.Field(i))
		}
		rs := right.Schema()
		for i := 0; i < rs.NumFields(); i++ {
			fields = append(fields, rs.Field(i))
		}
		combined, err := record.NewSchema(fields...)
		if err != nil {
			return nil, fmt.Errorf("sql: joined tables share column names; rename a column (%w)", err)
		}
		schema = combined
		spec.Join = &SpecJoin{RightFrom: sel.Join.Table, LeftCol: sel.Join.LeftCol, RightCol: sel.Join.RightCol}
	}

	// Projections and aggregates.
	hasAgg := false
	star := false
	var plain []string
	for _, item := range sel.Items {
		switch {
		case item.Agg != "":
			hasAgg = true
		case item.Star:
			star = true
		}
	}
	if star && (hasAgg || len(sel.Items) > 1) {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with other select items")
	}
	complexity := 0
	for _, item := range sel.Items {
		complexity += nodeCount(item.Expr)
		switch {
		case item.Star && item.Agg == "":
			// SELECT *: no projection.
		case item.Agg != "":
			kind := aggKinds[item.Agg]
			if item.Star {
				spec.Aggs = append(spec.Aggs, AggTerm{Kind: exec.AggCount})
				continue
			}
			col, ok := item.Expr.(ColRef)
			if !ok {
				return nil, fmt.Errorf("sql: %s over an expression is not supported; aggregate a plain column", item.Agg)
			}
			if _, err := schema.Ordinal(col.Name); err != nil {
				return nil, fmt.Errorf("sql: unknown column %q", col.Name)
			}
			spec.Aggs = append(spec.Aggs, AggTerm{Kind: kind, Column: col.Name})
		default:
			col, ok := item.Expr.(ColRef)
			if !ok {
				return nil, fmt.Errorf("sql: computed select items are not supported; select plain columns or aggregates")
			}
			if _, err := schema.Ordinal(col.Name); err != nil {
				return nil, fmt.Errorf("sql: unknown column %q", col.Name)
			}
			plain = append(plain, col.Name)
		}
	}

	// GROUP BY columns must exist; with aggregates, plain select columns
	// must be grouped (standard SQL).
	grouped := map[string]bool{}
	for _, col := range sel.GroupBy {
		if _, err := schema.Ordinal(col); err != nil {
			return nil, fmt.Errorf("sql: unknown GROUP BY column %q", col)
		}
		grouped[col] = true
	}
	if hasAgg || len(sel.GroupBy) > 0 {
		for _, col := range plain {
			if !grouped[col] {
				return nil, fmt.Errorf("sql: column %q must appear in GROUP BY", col)
			}
		}
		spec.GroupBy = sel.GroupBy
	} else {
		spec.Select = plain
	}

	// WHERE: compile the predicate and, for single-table statements, push
	// clustered range conjuncts down to a page range (a join's post-join
	// predicate cannot restrict either scan soundly).
	if sel.Where != nil {
		pred, err := CompilePredicate(sel.Where, schema)
		if err != nil {
			return nil, err
		}
		spec.Pred = pred
		complexity += nodeCount(sel.Where)
		if spec.Join == nil {
			col, lo, hi := clusteredBounds(sel.Where, meta)
			spec.StartFrac, spec.EndFrac = fracRange(col, lo, hi, meta)
		}
	}

	// ORDER BY: with aggregation only grouping columns are addressable;
	// otherwise any projected (or, for SELECT *, any schema) column.
	for _, term := range sel.OrderBy {
		if hasAgg || len(sel.GroupBy) > 0 {
			if !grouped[term.Col] {
				return nil, fmt.Errorf("sql: ORDER BY %q must be a GROUP BY column", term.Col)
			}
		} else if len(spec.Select) > 0 {
			found := false
			for _, col := range spec.Select {
				if col == term.Col {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("sql: ORDER BY %q must be a selected column", term.Col)
			}
		} else if _, err := schema.Ordinal(term.Col); err != nil {
			return nil, fmt.Errorf("sql: unknown ORDER BY column %q", term.Col)
		}
		spec.OrderBy = append(spec.OrderBy, term)
	}

	// CPU weight heuristic: a scan's per-tuple cost grows with the
	// expression work it evaluates.
	spec.Weight = 1 + 0.15*float64(complexity+2*len(sel.GroupBy))

	if sel.HasLim {
		spec.Limit = sel.Limit
		spec.HasLimit = true
	}
	return spec, nil
}

// bound is one side of a clustered-column restriction.
type bound struct {
	ok  bool
	val float64
}

// clusteredBounds walks the WHERE clause's AND-conjuncts for comparisons
// between a clustered numeric/date column and a literal, and returns the
// column plus the tightest [lo, hi] value bounds found (each may be absent).
// Only one clustered column is tracked — a table has a single physical
// order, so bounds on a second clustered column would be redundant anyway.
func clusteredBounds(e Expr, meta Meta) (boundCol string, lo, hi bound) {
	var walk func(Expr)
	apply := func(col string, op string, lit float64) {
		if !meta.Clustered(col) {
			return
		}
		if boundCol == "" {
			boundCol = col
		}
		if col != boundCol {
			return
		}
		switch op {
		case ">=", ">":
			if !lo.ok || lit > lo.val {
				lo = bound{ok: true, val: lit}
			}
		case "<=", "<":
			if !hi.ok || lit < hi.val {
				hi = bound{ok: true, val: lit}
			}
		case "=":
			if !lo.ok || lit > lo.val {
				lo = bound{ok: true, val: lit}
			}
			if !hi.ok || lit < hi.val {
				hi = bound{ok: true, val: lit}
			}
		}
	}
	walk = func(e Expr) {
		b, ok := e.(Binary)
		if !ok {
			return
		}
		if b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		col, lit, op, ok := normalizeComparison(b)
		if ok {
			apply(col, op, lit)
		}
	}
	walk(e)
	return boundCol, lo, hi
}

// normalizeComparison extracts (column, literal, op) from col-op-lit or
// lit-op-col comparisons over numeric/date literals.
func normalizeComparison(b Binary) (col string, lit float64, op string, ok bool) {
	litVal := func(e Expr) (float64, bool) {
		l, isLit := e.(Literal)
		if !isLit {
			return 0, false
		}
		switch l.Val.Kind {
		case record.KindInt64, record.KindDate:
			return float64(l.Val.I), true
		case record.KindFloat64:
			return l.Val.F, true
		}
		return 0, false
	}
	flip := map[string]string{"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
	if c, isCol := b.L.(ColRef); isCol {
		if v, isLit := litVal(b.R); isLit {
			return c.Name, v, b.Op, b.Op == "=" || flip[b.Op] != ""
		}
	}
	if c, isCol := b.R.(ColRef); isCol {
		if v, isLit := litVal(b.L); isLit {
			f, known := flip[b.Op]
			return c.Name, v, f, known
		}
	}
	return "", 0, "", false
}

// fracRange converts value bounds on the clustered column into page-range
// fractions via linear interpolation over the column's min/max, padded by
// one page on each side to absorb page-boundary straddling. The predicate
// still filters exactly; the range only bounds the scan.
func fracRange(col string, lo, hi bound, meta Meta) (float64, float64) {
	if col == "" || (!lo.ok && !hi.ok) {
		return 0, 1
	}
	minV, maxV, ok := meta.ColumnRange(col)
	if !ok {
		return 0, 1
	}
	var mn, mx float64
	switch minV.Kind {
	case record.KindInt64, record.KindDate:
		mn, mx = float64(minV.I), float64(maxV.I)
	case record.KindFloat64:
		mn, mx = minV.F, maxV.F
	default:
		return 0, 1
	}
	if mx <= mn {
		return 0, 1
	}
	span := mx - mn
	start, end := 0.0, 1.0
	if lo.ok {
		start = (lo.val - mn) / span
	}
	if hi.ok {
		end = (hi.val - mn) / span
	}
	pad := 1.0 / float64(max(meta.NumPages(), 1))
	start -= pad
	end += pad
	if start < 0 {
		start = 0
	}
	if end > 1 {
		end = 1
	}
	if start >= end {
		return 0, 1 // degenerate: fall back to a full scan
	}
	return start, end
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
