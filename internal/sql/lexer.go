// Package sql implements a small SQL dialect for the engine: single-table
// SELECT with aggregates, arithmetic and boolean expressions, GROUP BY, and
// LIMIT. The paper's workload is SQL (TPC-H), so a SQL front end is part of
// the substrate a downstream user expects; it compiles onto the same query
// builder the Go API uses and feeds the scan sharing manager the same
// optimizer-style information (range pushdown on clustered columns, CPU
// weight derived from expression complexity).
//
// Grammar (case-insensitive keywords):
//
//	SELECT item [, item]... FROM ident [JOIN ident ON ident = ident]
//	       [WHERE expr] [GROUP BY ident [, ident]...]
//	       [ORDER BY ident [ASC|DESC] [, ...]] [LIMIT number]
//	item  := * | expr [AS ident] | agg ( expr | * )
//	agg   := COUNT | SUM | AVG | MIN | MAX
//	expr  := disjunctions of conjunctions of comparisons over
//	         +,-,*,/ arithmetic, column refs, numbers, 'strings',
//	         DATE 'YYYY-MM-DD', TRUE/FALSE, BETWEEN ... AND ...,
//	         NOT, parentheses
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical element. Keywords are upper-cased; symbols hold the
// operator text (e.g. "<=", ",", "(").
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// keywords recognized by the lexer (upper-case canonical form).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"LIMIT": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DATE": true, "TRUE": true, "FALSE": true, "BETWEEN": true,
	"ORDER": true, "ASC": true, "DESC": true, "JOIN": true, "ON": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(input) {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					// '' escapes a quote.
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case unicode.IsDigit(c) || (c == '.' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < len(input) {
				d := input[i]
				if d == '.' {
					if seenDot {
						break
					}
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			start := i
			two := ""
			if i+1 < len(input) {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
				i += 2
				continue
			}
			switch c {
			case ',', '(', ')', '*', '+', '-', '/', '=', '<', '>':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", pos: len(input)})
	return toks, nil
}
