package sql

import (
	"fmt"
	"strconv"
	"strings"

	"scanshare/internal/record"
)

// Expr is a parsed expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Literal is a constant: a number, string, date, or boolean.
type Literal struct{ Val record.Value }

// Bool wraps a boolean literal (record has no bool kind; the evaluator keeps
// booleans in its own domain).
type Bool struct{ Val bool }

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or logical (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

func (ColRef) exprNode()  {}
func (Literal) exprNode() {}
func (Bool) exprNode()    {}
func (Unary) exprNode()   {}
func (Binary) exprNode()  {}

// String renders the expression with full parenthesization.
func (e ColRef) String() string { return e.Name }

// String renders the literal in the dialect's own syntax, so rendered
// statements re-parse: strings get SQL quoting ('' escapes), dates the DATE
// prefix, and floats keep a decimal point (the parser types by its presence).
func (e Literal) String() string {
	switch e.Val.Kind {
	case record.KindString:
		return "'" + strings.ReplaceAll(e.Val.S, "'", "''") + "'"
	case record.KindDate:
		return "DATE '" + FormatDate(e.Val.I) + "'"
	case record.KindFloat64:
		s := strconv.FormatFloat(e.Val.F, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case record.KindInt64:
		return strconv.FormatInt(e.Val.I, 10)
	default:
		return e.Val.GoString()
	}
}

func (e Bool) String() string {
	if e.Val {
		return "TRUE"
	}
	return "FALSE"
}

func (e Unary) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.X) }

func (e Binary) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// SelectItem is one projection: a plain expression or an aggregate call.
// Agg is "" for plain expressions, or one of count/sum/avg/min/max; Star
// marks COUNT(*).
type SelectItem struct {
	Agg   string
	Star  bool // SELECT * (Agg=="") or COUNT(*) (Agg=="count")
	Expr  Expr // nil when Star
	Alias string
}

// String renders the item.
func (s SelectItem) String() string {
	inner := "*"
	if s.Expr != nil {
		inner = s.Expr.String()
	}
	out := inner
	if s.Agg != "" {
		out = fmt.Sprintf("%s(%s)", s.Agg, inner)
	}
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// OrderTerm is one ORDER BY column.
type OrderTerm struct {
	Col  string
	Desc bool
}

// Join is the parsed JOIN clause: the right table and the two equi-join
// columns (left column from the FROM table, right column from the joined
// table).
type Join struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Select is a parsed statement.
type Select struct {
	Items   []SelectItem
	From    string
	Join    *Join // nil when absent
	Where   Expr  // nil when absent
	GroupBy []string
	OrderBy []OrderTerm
	Limit   int64
	HasLim  bool
}

// String renders the statement back to SQL-ish text.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(item.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From)
	if s.Join != nil {
		fmt.Fprintf(&b, " JOIN %s ON %s = %s", s.Join.Table, s.Join.LeftCol, s.Join.RightCol)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(s.GroupBy, ", "))
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Col)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.HasLim {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// nodeCount returns the number of nodes in an expression tree; the binder
// derives the scan's CPU weight from it.
func nodeCount(e Expr) int {
	switch x := e.(type) {
	case nil:
		return 0
	case Unary:
		return 1 + nodeCount(x.X)
	case Binary:
		return 1 + nodeCount(x.L) + nodeCount(x.R)
	default:
		return 1
	}
}
