package sql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scanshare/internal/record"
)

// genExpr builds a random well-typed boolean expression as SQL text, along
// with a Go reference evaluator, over schema (i int, f float, s string).
type genCtx struct {
	rng   *rand.Rand
	depth int
}

type refFn func(i int64, f float64, s string) bool

func (g *genCtx) boolExpr() (string, refFn) {
	if g.depth > 4 || g.rng.Intn(3) == 0 {
		return g.comparison()
	}
	g.depth++
	defer func() { g.depth-- }()
	switch g.rng.Intn(3) {
	case 0:
		l, lf := g.boolExpr()
		r, rf := g.boolExpr()
		return fmt.Sprintf("(%s AND %s)", l, r), func(i int64, f float64, s string) bool {
			return lf(i, f, s) && rf(i, f, s)
		}
	case 1:
		l, lf := g.boolExpr()
		r, rf := g.boolExpr()
		return fmt.Sprintf("(%s OR %s)", l, r), func(i int64, f float64, s string) bool {
			return lf(i, f, s) || rf(i, f, s)
		}
	default:
		x, xf := g.boolExpr()
		return fmt.Sprintf("NOT %s", x), func(i int64, f float64, s string) bool {
			return !xf(i, f, s)
		}
	}
}

func (g *genCtx) comparison() (string, refFn) {
	ops := []string{"=", "<>", "<", "<=", ">", ">="}
	op := ops[g.rng.Intn(len(ops))]
	test := func(c int) bool {
		switch op {
		case "=":
			return c == 0
		case "<>":
			return c != 0
		case "<":
			return c < 0
		case "<=":
			return c <= 0
		case ">":
			return c > 0
		default:
			return c >= 0
		}
	}
	switch g.rng.Intn(3) {
	case 0: // integer arithmetic comparison
		a, b := int64(g.rng.Intn(21)-10), int64(g.rng.Intn(21)-10)
		expr := fmt.Sprintf("i + %d %s %d * 2", a, op, b)
		return expr, func(i int64, f float64, s string) bool {
			l, r := i+a, b*2
			switch {
			case l < r:
				return test(-1)
			case l > r:
				return test(1)
			}
			return test(0)
		}
	case 1: // float comparison
		a := float64(g.rng.Intn(100)) / 4
		expr := fmt.Sprintf("f %s %.2f", op, a)
		return expr, func(i int64, f float64, s string) bool {
			switch {
			case f < a:
				return test(-1)
			case f > a:
				return test(1)
			}
			return test(0)
		}
	default: // string comparison
		lit := []string{"a", "b", "c", "mm", "zz"}[g.rng.Intn(5)]
		expr := fmt.Sprintf("s %s '%s'", op, lit)
		return expr, func(i int64, f float64, s string) bool {
			c := strings.Compare(s, lit)
			return test(c)
		}
	}
}

// TestRandomExpressionsMatchReference generates random boolean expressions
// and checks the compiled predicate against a Go reference over random
// tuples.
func TestRandomExpressionsMatchReference(t *testing.T) {
	schema := record.MustSchema(
		record.Field{Name: "i", Kind: record.KindInt64},
		record.Field{Name: "f", Kind: record.KindFloat64},
		record.Field{Name: "s", Kind: record.KindString},
	)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &genCtx{rng: rng}
		text, ref := g.boolExpr()
		sel, err := Parse("SELECT * FROM t WHERE " + text)
		if err != nil {
			t.Logf("generated %q failed to parse: %v", text, err)
			return false
		}
		pred, err := CompilePredicate(sel.Where, schema)
		if err != nil {
			t.Logf("generated %q failed to compile: %v", text, err)
			return false
		}
		for k := 0; k < 20; k++ {
			i := int64(rng.Intn(41) - 20)
			f := float64(rng.Intn(100)) / 4
			s := []string{"a", "b", "c", "mm", "zz", ""}[rng.Intn(6)]
			tup := record.Tuple{record.Int64(i), record.Float64(f), record.String(s)}
			if pred(tup) != ref(i, f, s) {
				t.Logf("%q diverges at i=%d f=%g s=%q", text, i, f, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics feeds the parser mangled statements; errors are
// fine, panics are not.
func TestParserNeverPanics(t *testing.T) {
	base := "SELECT a, sum(b) FROM t WHERE x >= 1.5 AND s = 'q' GROUP BY a LIMIT 3"
	rng := rand.New(rand.NewSource(1))
	mutations := []func(string) string{
		func(s string) string { // drop a random chunk
			if len(s) < 4 {
				return s
			}
			i := rng.Intn(len(s) - 2)
			j := i + 1 + rng.Intn(len(s)-i-1)
			return s[:i] + s[j:]
		},
		func(s string) string { // duplicate a random chunk
			i := rng.Intn(len(s))
			return s[:i] + s[i:] + s[i:]
		},
		func(s string) string { // sprinkle random symbol
			syms := ")(*,='<>"
			i := rng.Intn(len(s))
			return s[:i] + string(syms[rng.Intn(len(syms))]) + s[i:]
		},
	}
	for n := 0; n < 2000; n++ {
		s := base
		for m := 0; m <= rng.Intn(3); m++ {
			s = mutations[rng.Intn(len(mutations))](s)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", s, r)
				}
			}()
			Parse(s) // error is fine
		}()
	}
}
